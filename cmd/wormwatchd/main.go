// Command wormwatchd is the long-running detection daemon: it feeds the
// streaming watch engine from an update source and serves the engine's
// state as JSON while ingesting.
//
// Endpoints:
//
//	GET /healthz      liveness + ingest counters (never cached)
//	GET /stats        engine statistics snapshot
//	GET /alerts       every alert so far, ingest order; ?detector= filters
//	GET /prefix/{p}   window state and alerts for one prefix
//	GET /dict         index of ASes with inferred dictionary entries
//	GET /dict/stats   dictionary-inference engine statistics
//	GET /dict/{asn}   one AS's inferred community dictionary
//	GET /metrics      Prometheus text exposition (watch, semantics,
//	                  simnet, HTTP-layer series)
//	GET /debug/pprof/ Go profiling endpoints (only with -pprof)
//
// Unless -dict=false, every ingested event also feeds a semantics
// dictionary-inference engine; its snapshots power the /dict endpoints
// and the dictionary-aware detectors (dict-squat,
// unknown-action-community), whose dictionary refreshes on the flush
// heartbeat.
//
// Feed modes (combine freely; each runs on its own goroutine):
//
//	-scenario rtbh      replay a registered attack scenario through a
//	                    live engine tap (the whole simulated world is
//	                    observed, world construction included)
//	-mrt file|dir       stream MRT update archives (a directory means
//	                    every updates.*.mrt under it)
//	-follow             with -mrt FILE: tail the file as it grows
//
// Example:
//
//	wormwatchd -addr 127.0.0.1:8571 -scenario rtbh &
//	curl -s http://127.0.0.1:8571/alerts | jq .
//
// Responses are rendered once per engine change and then served from a
// cached snapshot, so concurrent readers cost one JSON encoding, not
// one per request.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"net/netip"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	_ "bgpworms/internal/attack" // registers the builtin scenarios
	"bgpworms/internal/gen"
	"bgpworms/internal/mrt"
	"bgpworms/internal/obs"
	"bgpworms/internal/scenario"
	"bgpworms/internal/semantics"
	"bgpworms/internal/watch"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8571", "HTTP listen address")
		scen      = flag.String("scenario", "", "replay a registered attack scenario through the engine")
		scale     = flag.String("scale", "", "gen preset for -scenario (tiny, small, medium, large, internet; default tiny)")
		seed      = flag.Int64("seed", 0, "generator seed for -scenario (default 1)")
		mrtPath   = flag.String("mrt", "", "MRT update archive to stream (file, or dir of updates.*.mrt)")
		follow    = flag.Bool("follow", false, "with -mrt FILE: keep reading as the file grows")
		shards    = flag.Int("shards", 0, "engine prefix shards (0 = one per CPU)")
		window    = flag.Duration("window", 0, "detection window horizon (default 15m)")
		winEvts   = flag.Int("window-events", 0, "per-prefix ring capacity (default 32)")
		maxAlerts = flag.Int("max-alerts", 0, "retained alert cap (0 = default 100000, negative = unlimited)")
		detNames  = flag.String("detectors", "", "comma-separated detector subset (default: all registered)")
		dict      = flag.Bool("dict", true, "infer per-AS community dictionaries and enable the dictionary-aware detectors")
		dictWk    = flag.Int("dict-workers", 0, "dictionary-inference workers (0 = one per CPU)")
		pprofOn   = flag.Bool("pprof", false, "serve Go profiling endpoints under /debug/pprof/")
	)
	flag.Parse()

	// Validate feed parameters before the listener comes up, so a typo
	// fails the process instead of leaving a healthy-looking daemon
	// with no feed.
	if *scen != "" {
		if _, ok := scenario.Get(*scen); !ok {
			fail(fmt.Errorf("unknown scenario %q (have %v)", *scen, scenario.Names()))
		}
	}
	if *scale != "" {
		if _, err := gen.Preset(*scale); err != nil {
			fail(err)
		}
	}

	// The process registry already carries the package-level simnet /
	// collector / gen series; the watch and semantics engines attach
	// their own here, and /metrics serves the whole page.
	reg := obs.Default
	cfg := watch.Config{Shards: *shards, Window: *window, WindowEvents: *winEvts, MaxAlerts: *maxAlerts, Metrics: reg}
	// The dictionary stack: a semantics engine fed by event mirroring,
	// and a holder the detectors read — refreshed on the flush heartbeat,
	// so detection always consults a recent frozen snapshot.
	var sem *semantics.Engine
	var holder *semantics.Holder
	if *dict {
		sem = semantics.NewEngine(semantics.Config{Workers: *dictWk, Metrics: reg})
		holder = &semantics.Holder{}
		cfg.Semantics = sem
		cfg.Dict = holder
	}
	if *detNames != "" {
		for _, name := range strings.Split(*detNames, ",") {
			d, ok := watch.LookupDetector(strings.TrimSpace(name))
			if !ok {
				fail(fmt.Errorf("unknown detector %q (have %v)", name, watch.DetectorNames()))
			}
			cfg.Detectors = append(cfg.Detectors, d)
		}
		// An explicit -detectors subset is respected verbatim: the
		// dictionary-aware pair joins only the default set.
	}
	eng := watch.NewEngine(cfg)

	srv := newServer(eng, sem, holder, reg)
	srv.pprof = *pprofOn
	httpSrv := &http.Server{Addr: *addr, Handler: srv.handler()}
	go func() {
		log.Printf("wormwatchd: listening on http://%s", *addr)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fail(err)
		}
	}()

	var feeds sync.WaitGroup
	if *scen != "" {
		feeds.Add(1)
		go func() {
			defer feeds.Done()
			replayScenario(eng, *scen, *scale, *seed)
		}()
	}
	// The tail reader is created here, before the feed goroutine starts,
	// so shutdown can always reach Stop — otherwise a signal racing feed
	// startup could leave IngestMRT blocked in the tail forever.
	var tail *mrt.TailReader
	if *mrtPath != "" {
		paths, tailable, err := mrtInputs(*mrtPath)
		if err != nil {
			fail(err)
		}
		if *follow && !tailable {
			fail(fmt.Errorf("-follow needs a single MRT file, not a directory"))
		}
		if *follow {
			f, err := os.Open(paths[0])
			if err != nil {
				fail(err)
			}
			defer f.Close()
			tail = mrt.NewTailReader(f, 200*time.Millisecond)
		}
		feeds.Add(1)
		go func() {
			defer feeds.Done()
			for _, p := range paths {
				if stopping.Load() {
					return // shutdown between archives
				}
				src := "mrt:" + filepath.Base(p)
				var n int
				var err error
				if tail != nil {
					n, err = eng.IngestMRT(tail, src)
				} else {
					f, err2 := os.Open(p)
					if err2 != nil {
						log.Printf("wormwatchd: skipping %s: %v", p, err2)
						continue
					}
					n, err = eng.IngestMRT(f, src)
					f.Close()
				}
				if err != nil {
					// Keep whatever decoded before the error and move on
					// to the next archive; the log is the record of the
					// partial ingest.
					log.Printf("wormwatchd: %s: %d events, then: %v", p, n, err)
					continue
				}
				log.Printf("wormwatchd: %s: %d events ingested", p, n)
			}
			eng.Flush()
		}()
	}

	// While any feed is live, surface partial batches on a heartbeat:
	// without it a slow -follow source could sit under the engine's
	// batching granularity and never show its alerts.
	flusherDone := make(chan struct{})
	feeds.Add(1)
	go func() {
		defer feeds.Done()
		tick := time.NewTicker(500 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-flusherDone:
				return
			case <-tick.C:
				eng.Flush()
				if sem != nil {
					// Snapshot caches by version: a quiet engine makes
					// this a no-op, a busy one refreshes the detectors'
					// dictionary.
					holder.Store(sem.Snapshot())
				}
			}
		}
	}()

	stop := make(chan os.Signal, 2)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Printf("wormwatchd: shutting down (again or wait %s to force)", forceExitAfter)
	stopping.Store(true)
	if tail != nil {
		tail.Stop()
	}
	close(flusherDone)
	// Graceful drain can only stop feeds at their boundaries (a scenario
	// replay or a single large archive runs to completion); a second
	// signal or the deadline forces exit so supervisors never hang on us.
	go func() {
		deadline := time.After(forceExitAfter)
		select {
		case <-stop:
		case <-deadline:
		}
		log.Printf("wormwatchd: forced exit with feeds still running")
		os.Exit(1)
	}()
	feeds.Wait()
	eng.Close()
	if sem != nil {
		sem.Close()
	}
	_ = httpSrv.Close()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "wormwatchd:", err)
	os.Exit(1)
}

// stopping flips at the first shutdown signal; feed loops check it at
// their boundaries.
var stopping atomic.Bool

// forceExitAfter bounds a graceful shutdown whose feeds cannot be
// interrupted mid-item.
const forceExitAfter = 15 * time.Second

// replayScenario drives a registered scenario with a live (lossy,
// non-blocking) engine tap and logs the Table-3 outcome.
func replayScenario(eng *watch.Engine, name, scale string, seed int64) {
	ctx := &scenario.Context{Tap: eng.LiveTap("scenario:" + name)}
	if scale != "" {
		p, err := gen.Preset(scale)
		if err != nil {
			log.Printf("wormwatchd: %v", err)
			return
		}
		ctx.Gen = p
	}
	if seed != 0 {
		if ctx.Gen.Stubs == 0 {
			ctx.Gen, _ = gen.Preset(scenario.DefaultScale)
		}
		ctx.Gen.Seed = seed
	}
	res, err := scenario.Run(name, ctx)
	if err != nil {
		log.Printf("wormwatchd: scenario %s: %v", name, err)
		return
	}
	eng.Flush()
	st := eng.Stats()
	log.Printf("wormwatchd: scenario %s success=%v; %d events, %d dropped, %d alerts",
		name, res.Success, st.Ingested, st.Dropped, st.Alerts)
}

// mrtInputs expands -mrt into concrete archive paths; tailable reports
// whether the input was a single file (the only -follow shape).
func mrtInputs(path string) (paths []string, tailable bool, err error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, false, err
	}
	if !info.IsDir() {
		return []string{path}, true, nil
	}
	paths, err = filepath.Glob(filepath.Join(path, "updates.*.mrt"))
	if err != nil {
		return nil, false, err
	}
	if len(paths) == 0 {
		return nil, false, fmt.Errorf("no updates.*.mrt files in %s", path)
	}
	sort.Strings(paths)
	return paths, false, nil
}

// server wraps the engines with version-keyed JSON snapshot caches: a
// response body is rendered once per engine change and shared by every
// concurrent reader at that version.
type server struct {
	eng       *watch.Engine
	sem       *semantics.Engine
	holder    *semantics.Holder
	reg       *obs.Registry
	pprof     bool
	start     time.Time
	alerts    snapshotCache
	stats     snapshotCache
	dictIndex snapshotCache
	dictStats snapshotCache
}

func newServer(eng *watch.Engine, sem *semantics.Engine, holder *semantics.Holder, reg *obs.Registry) *server {
	return &server{eng: eng, sem: sem, holder: holder, reg: reg, start: time.Now()}
}

func (s *server) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("/healthz", s.handleHealthz)
	m.HandleFunc("/stats", s.handleStats)
	m.HandleFunc("/alerts", s.handleAlerts)
	m.HandleFunc("/prefix/", s.handlePrefix)
	m.HandleFunc("/dict", s.handleDictIndex)
	m.HandleFunc("/dict/stats", s.handleDictStats)
	m.HandleFunc("/dict/", s.handleDictAS)
	m.Handle("/metrics", s.reg.Handler())
	if s.pprof {
		m.HandleFunc("/debug/pprof/", pprof.Index)
		m.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		m.HandleFunc("/debug/pprof/profile", pprof.Profile)
		m.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		m.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return m
}

// handler wraps the mux with the HTTP-layer instrumentation: a request
// counter per route class and one latency histogram. Routes are
// labeled by their fixed first segment (parameterized tails collapse),
// so series cardinality is bounded by the endpoint table above.
func (s *server) handler() http.Handler {
	m := s.mux()
	hist := s.reg.Histogram("http_request_seconds",
		"HTTP request service time", obs.DurationBuckets)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		m.ServeHTTP(w, r)
		hist.ObserveSince(start)
		s.reg.Counter(`http_requests_total{path="`+routeLabel(r.URL.Path)+`"}`,
			"HTTP requests by route").Inc()
	})
}

// routeLabel collapses a request path to its route class.
func routeLabel(path string) string {
	switch {
	case path == "/healthz", path == "/stats", path == "/alerts", path == "/metrics", path == "/dict", path == "/dict/stats":
		return path
	case strings.HasPrefix(path, "/prefix/"):
		return "/prefix"
	case strings.HasPrefix(path, "/dict/"):
		return "/dict/{asn}"
	case strings.HasPrefix(path, "/debug/pprof"):
		return "/debug/pprof"
	default:
		return "other"
	}
}

// dictSnapshot returns the dictionary view requests are served from:
// the holder's heartbeat copy (at most one heartbeat stale — the same
// snapshot the detectors consult), computed directly only on cold
// start before the first heartbeat. Serving the heartbeat snapshot
// keeps /dict reads from stalling ingest on flush barriers.
func (s *server) dictSnapshot() *semantics.Snapshot {
	if snap := s.holder.Load(); snap != nil {
		return snap
	}
	snap := s.sem.Snapshot()
	s.holder.Store(snap)
	return snap
}

// snapshotCache is a version-keyed rendered-JSON cache safe for
// concurrent readers: the fast path is a shared read lock and a byte
// slice copy-free write.
type snapshotCache struct {
	mu      sync.RWMutex
	version uint64
	valid   bool
	body    []byte
}

func (c *snapshotCache) get(version uint64, render func() ([]byte, error)) ([]byte, error) {
	c.mu.RLock()
	if c.valid && c.version == version {
		body := c.body
		c.mu.RUnlock()
		return body, nil
	}
	c.mu.RUnlock()
	body, err := render()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	// Last writer at the newest version wins; stale renders are simply
	// not cached over a fresher one.
	if !c.valid || version >= c.version {
		c.version, c.valid, c.body = version, true, body
	}
	c.mu.Unlock()
	return body, nil
}

func writeJSON(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
	if len(body) == 0 || body[len(body)-1] != '\n' {
		w.Write([]byte("\n"))
	}
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	build := obs.BuildInfo()
	body, _ := json.Marshal(map[string]any{
		"status":         "ok",
		"start_time":     s.start.UTC().Format(time.RFC3339),
		"uptime_seconds": int64(time.Since(s.start).Seconds()),
		"go_version":     build.GoVersion,
		"git_sha":        build.GitSHA,
		"ingested":       st.Ingested,
		"dropped":        st.Dropped,
		"alerts":         st.Alerts,
	})
	writeJSON(w, body)
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	body, err := s.stats.get(s.eng.Version(), func() ([]byte, error) {
		return json.MarshalIndent(s.eng.Stats(), "", "  ")
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, body)
}

// alertsPayload is the /alerts response shape.
type alertsPayload struct {
	Count  int           `json:"count"`
	Alerts []watch.Alert `json:"alerts"`
}

func (s *server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	if det := r.URL.Query().Get("detector"); det != "" {
		// Filtered views are per-query; only the full view is cached.
		var filtered []watch.Alert
		for _, a := range s.eng.Alerts() {
			if a.Detector == det {
				filtered = append(filtered, a)
			}
		}
		body, err := json.MarshalIndent(alertsPayload{Count: len(filtered), Alerts: filtered}, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, body)
		return
	}
	body, err := s.alerts.get(s.eng.Version(), func() ([]byte, error) {
		alerts := s.eng.Alerts()
		return json.MarshalIndent(alertsPayload{Count: len(alerts), Alerts: alerts}, "", "  ")
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, body)
}

// dictIndexPayload is the /dict response shape.
type dictIndexPayload struct {
	Observations uint64          `json:"observations"`
	Communities  int             `json:"communities"`
	ASes         []dictIndexItem `json:"ases"`
}

type dictIndexItem struct {
	ASN     uint16 `json:"asn"`
	Entries int    `json:"entries"`
}

// handleDictIndex lists every AS with inferred entries — the discovery
// entry point for /dict/{asn}.
func (s *server) handleDictIndex(w http.ResponseWriter, r *http.Request) {
	if s.sem == nil {
		http.Error(w, "dictionary inference disabled (-dict=false)", http.StatusNotFound)
		return
	}
	snap := s.dictSnapshot()
	body, err := s.dictIndex.get(snap.Version, func() ([]byte, error) {
		payload := dictIndexPayload{Observations: snap.Observations, Communities: snap.Len()}
		for _, asn := range snap.ASNs() {
			payload.ASes = append(payload.ASes, dictIndexItem{ASN: asn, Entries: len(snap.AS(asn))})
		}
		return json.MarshalIndent(payload, "", "  ")
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, body)
}

func (s *server) handleDictStats(w http.ResponseWriter, r *http.Request) {
	if s.sem == nil {
		http.Error(w, "dictionary inference disabled (-dict=false)", http.StatusNotFound)
		return
	}
	snap := s.dictSnapshot()
	body, err := s.dictStats.get(snap.Version, func() ([]byte, error) {
		return json.MarshalIndent(s.sem.StatsOf(snap), "", "  ")
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, body)
}

// dictASPayload is the /dict/{asn} response shape.
type dictASPayload struct {
	ASN     uint16             `json:"asn"`
	Count   int                `json:"count"`
	Entries []*semantics.Entry `json:"entries"`
}

func (s *server) handleDictAS(w http.ResponseWriter, r *http.Request) {
	if s.sem == nil {
		http.Error(w, "dictionary inference disabled (-dict=false)", http.StatusNotFound)
		return
	}
	raw := strings.TrimPrefix(r.URL.Path, "/dict/")
	asn, err := strconv.ParseUint(raw, 10, 16)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad ASN %q: %v", raw, err), http.StatusBadRequest)
		return
	}
	snap := s.dictSnapshot()
	entries := snap.AS(uint16(asn))
	if len(entries) == 0 {
		http.Error(w, fmt.Sprintf("no dictionary entries for AS%d", asn), http.StatusNotFound)
		return
	}
	body, err := json.MarshalIndent(dictASPayload{ASN: uint16(asn), Count: len(entries), Entries: entries}, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, body)
}

func (s *server) handlePrefix(w http.ResponseWriter, r *http.Request) {
	raw := strings.TrimPrefix(r.URL.Path, "/prefix/")
	p, err := netip.ParsePrefix(raw)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad prefix %q: %v", raw, err), http.StatusBadRequest)
		return
	}
	info, ok := s.eng.PrefixInfo(p)
	if !ok {
		http.Error(w, fmt.Sprintf("prefix %s not tracked", p), http.StatusNotFound)
		return
	}
	body, err := json.MarshalIndent(info, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, body)
}
