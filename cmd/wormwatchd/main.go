// Command wormwatchd is the long-running detection daemon: it feeds the
// streaming watch engine from an update source and serves the engine's
// state as JSON while ingesting (the HTTP layer lives in
// internal/serve).
//
// Endpoints:
//
//	GET /healthz      liveness + ingest counters (never cached)
//	GET /stats        engine statistics snapshot
//	GET /alerts       every alert so far, ingest order; ?detector= filters
//	GET /prefix/{p}   window state and alerts for one prefix
//	GET /durable      durability watermarks (WAL, checkpoints) + shard identity
//	GET /dict         index of ASes with inferred dictionary entries
//	GET /dict/stats   dictionary-inference engine statistics
//	GET /dict/export  the whole inferred dictionary (the scatter unit)
//	GET /dict/{asn}   one AS's inferred community dictionary
//	GET /metrics      Prometheus text exposition (watch, semantics,
//	                  simnet, WAL, HTTP-layer series)
//	GET /debug/pprof/ Go profiling endpoints (only with -pprof)
//
// Unless -dict=false, every ingested event also feeds a semantics
// dictionary-inference engine; its snapshots power the /dict endpoints
// and the dictionary-aware detectors (dict-squat,
// unknown-action-community), whose dictionary refreshes on the flush
// heartbeat.
//
// Feed modes (combine freely; each runs on its own goroutine):
//
//	-scenario rtbh      replay a registered attack scenario through a
//	                    live engine tap (the whole simulated world is
//	                    observed, world construction included)
//	-mrt file|dir       stream MRT update archives (a directory means
//	                    every updates.*.mrt under it)
//	-follow             with -mrt FILE: tail the file as it grows
//	-feed-listen A      accept live MRT update streams on address A
//	                    (host:port, or a unix socket path containing
//	                    "/"); every connection feeds the engine
//
// Durability (-wal DIR) journals every ingested event to a segmented
// write-ahead log and checkpoints engine state on -snapshot-interval;
// a daemon killed mid-feed restarts into restore-from-snapshot plus
// replay of the WAL tail, with zero loss of durable alerts. Feeds are
// lossless in durable mode (the WAL is the backpressure point).
//
// -scenario and -mrt are re-readable: a restarted daemon re-reads them
// from the beginning and resume-skips everything recovery already
// applied. A -feed-listen stream is not — the bytes are gone once
// read — so with -wal the WAL alone is the recovery source, sequence
// numbering continues where the previous life stopped, and combining
// -feed-listen with a re-readable feed under -wal is refused.
//
// Sharding splits the prefix space across N processes:
//
//	wormwatchd -shards 3 -shard-index 0 -addr :8581 -scenario rtbh -wal wal0 &
//	wormwatchd -shards 3 -shard-index 1 -addr :8582 -scenario rtbh -wal wal1 &
//	wormwatchd -shards 3 -shard-index 2 -addr :8583 -scenario rtbh -wal wal2 &
//	wormwatchd -frontend http://:8581,http://:8582,http://:8583 -addr :8580
//
// Every shard consumes the full feed and assigns identical global
// sequence numbers, but journals and processes only its prefix range;
// the -frontend process scatter-gathers /alerts, /prefix/{p}, /dict,
// and /stats, merging version-keyed shard snapshots into responses
// byte-identical to a single-process daemon's (dictionary detectors
// see per-shard partial dictionaries; run -dict=false for exact
// cross-shard alert equality).
//
// Each -frontend element may list "|"-separated replica URLs for its
// prefix range (independent shard processes over the same feed slice):
// the frontend sticks to a healthy replica, fails over on fetch errors
// and upstream 5xx (counted by frontend_failover_total), and a range
// degrades /healthz only when every one of its replicas is down.
//
// Responses are rendered once per engine change and then served from a
// cached snapshot, so concurrent readers cost one JSON encoding, not
// one per request.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	_ "bgpworms/internal/attack" // registers the builtin scenarios
	"bgpworms/internal/durable"
	"bgpworms/internal/gen"
	"bgpworms/internal/mrt"
	"bgpworms/internal/obs"
	"bgpworms/internal/scenario"
	"bgpworms/internal/semantics"
	"bgpworms/internal/serve"
	"bgpworms/internal/watch"
)

// config is the daemon's parsed command line, shaped so tests can run
// the same code path in-process (runDaemon / runFrontend) without a
// flag.Parse.
type config struct {
	addr     string
	scenario string
	scale    string
	seed     int64
	mrtPath  string
	follow   bool
	// feedListen accepts live MRT streams on a socket — the one feed
	// that cannot be re-read after a crash.
	feedListen string

	engineShards int
	window       time.Duration
	windowEvents int
	maxAlerts    int
	detectors    string
	dict         bool
	dictWorkers  int
	pprofOn      bool

	walDir       string
	fsync        time.Duration
	snapInterval time.Duration
	walSegment   int64

	shardCount int
	shardIndex int
	frontend   string

	// reg defaults to obs.Default; tests inject a private registry.
	reg *obs.Registry
	// signals overrides OS signal delivery in tests; nil installs the
	// real SIGINT/SIGTERM handler.
	signals chan os.Signal
	// ready, when set, receives the bound listen address once the HTTP
	// listener is up (tests bind :0).
	ready func(addr string)
	// feedReady mirrors ready for the -feed-listen socket.
	feedReady func(addr string)
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:8571", "HTTP listen address")
	flag.StringVar(&cfg.scenario, "scenario", "", "replay a registered attack scenario through the engine")
	flag.StringVar(&cfg.scale, "scale", "", "gen preset for -scenario (tiny, small, medium, large, internet; default tiny)")
	flag.Int64Var(&cfg.seed, "seed", 0, "generator seed for -scenario (default 1)")
	flag.StringVar(&cfg.mrtPath, "mrt", "", "MRT update archive to stream (file, or dir of updates.*.mrt)")
	flag.BoolVar(&cfg.follow, "follow", false, "with -mrt FILE: keep reading as the file grows")
	flag.StringVar(&cfg.feedListen, "feed-listen", "", "accept live MRT update streams on this address (host:port, or a unix socket path containing \"/\"); not re-readable — with -wal, recovery replays the WAL alone")
	flag.IntVar(&cfg.engineShards, "engine-shards", 0, "in-process engine prefix shards (0 = one per CPU)")
	flag.DurationVar(&cfg.window, "window", 0, "detection window horizon (default 15m)")
	flag.IntVar(&cfg.windowEvents, "window-events", 0, "per-prefix ring capacity (default 32)")
	flag.IntVar(&cfg.maxAlerts, "max-alerts", 0, "retained alert cap (0 = default 100000, negative = unlimited)")
	flag.StringVar(&cfg.detectors, "detectors", "", "comma-separated detector subset (default: all registered)")
	flag.BoolVar(&cfg.dict, "dict", true, "infer per-AS community dictionaries and enable the dictionary-aware detectors")
	flag.IntVar(&cfg.dictWorkers, "dict-workers", 0, "dictionary-inference workers (0 = one per CPU)")
	flag.BoolVar(&cfg.pprofOn, "pprof", false, "serve Go profiling endpoints under /debug/pprof/")
	flag.StringVar(&cfg.walDir, "wal", "", "durability directory: journal events to a WAL and checkpoint engine state (empty = in-memory only)")
	flag.DurationVar(&cfg.fsync, "fsync", 0, "WAL group-commit fsync interval (default 50ms; negative disables fsync)")
	flag.DurationVar(&cfg.snapInterval, "snapshot-interval", 30*time.Second, "checkpoint cadence with -wal (0 disables automatic checkpoints)")
	flag.Int64Var(&cfg.walSegment, "wal-segment-bytes", 0, "WAL segment rotation threshold (default 64MiB)")
	flag.IntVar(&cfg.shardCount, "shards", 1, "total shard processes in the deployment (prefix-range split)")
	flag.IntVar(&cfg.shardIndex, "shard-index", 0, "this process's shard index in [0, -shards)")
	flag.StringVar(&cfg.frontend, "frontend", "", "run as a scatter-gather frontend over these comma-separated shard base URLs (no engines, no feeds)")
	flag.Parse()
	cfg.reg = obs.Default

	var err error
	if cfg.frontend != "" {
		err = runFrontend(cfg)
	} else {
		err = runDaemon(cfg)
	}
	if err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "wormwatchd:", err)
	os.Exit(1)
}

// forceExitAfter bounds a graceful shutdown whose feeds cannot be
// interrupted mid-item.
const forceExitAfter = 15 * time.Second

// listen binds cfg.addr and reports the concrete address to any test
// hook.
func listen(cfg *config) (net.Listener, error) {
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return nil, err
	}
	if cfg.ready != nil {
		cfg.ready(ln.Addr().String())
	}
	return ln, nil
}

// stopSignals returns the channel shutdown waits on: the test override,
// or a real SIGINT/SIGTERM subscription.
func stopSignals(cfg *config) chan os.Signal {
	if cfg.signals != nil {
		return cfg.signals
	}
	stop := make(chan os.Signal, 2)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	return stop
}

// runFrontend serves the scatter-gather tier: no engines, no feeds,
// just the shard URL list and the merge logic in internal/serve.
func runFrontend(cfg config) error {
	urls := strings.Split(cfg.frontend, ",")
	for i := range urls {
		urls[i] = strings.TrimSpace(urls[i])
	}
	ln, err := listen(&cfg)
	if err != nil {
		return err
	}
	fe := serve.NewFrontend(urls, cfg.reg)
	httpSrv := &http.Server{Handler: fe.Handler()}
	errs := make(chan error, 1)
	go func() {
		log.Printf("wormwatchd: frontend for %d shards listening on http://%s", len(urls), ln.Addr())
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			errs <- err
		}
	}()
	select {
	case err := <-errs:
		return err
	case <-stopSignals(&cfg):
	}
	log.Printf("wormwatchd: frontend shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return httpSrv.Shutdown(ctx)
}

// runDaemon is the whole shard (or standalone) daemon life cycle:
// build engines, recover durable state, start feeds, serve, and on
// SIGINT/SIGTERM drain the feeds, flush the WAL, write a final
// checkpoint, and close the listener.
func runDaemon(cfg config) error {
	// Validate feed parameters before the listener comes up, so a typo
	// fails the process instead of leaving a healthy-looking daemon
	// with no feed.
	if cfg.scenario != "" {
		if _, ok := scenario.Get(cfg.scenario); !ok {
			return fmt.Errorf("unknown scenario %q (have %v)", cfg.scenario, scenario.Names())
		}
	}
	if cfg.scale != "" {
		if _, err := gen.Preset(cfg.scale); err != nil {
			return err
		}
	}
	if cfg.shardCount < 1 {
		return fmt.Errorf("-shards must be >= 1, got %d", cfg.shardCount)
	}
	if cfg.shardIndex < 0 || cfg.shardIndex >= cfg.shardCount {
		return fmt.Errorf("-shard-index %d outside [0, %d)", cfg.shardIndex, cfg.shardCount)
	}
	if cfg.shardCount > 1 && cfg.walDir == "" {
		return fmt.Errorf("sharded mode needs -wal (shards must journal their slice of the feed)")
	}
	if cfg.feedListen != "" && cfg.walDir != "" && (cfg.scenario != "" || cfg.mrtPath != "") {
		return fmt.Errorf("-feed-listen cannot share -wal with -scenario/-mrt: re-readable feeds resume by re-reading and skipping, the live feed must resume from the WAL alone")
	}

	reg := cfg.reg
	wcfg := watch.Config{
		Shards: cfg.engineShards, Window: cfg.window, WindowEvents: cfg.windowEvents,
		MaxAlerts: cfg.maxAlerts, Metrics: reg,
	}
	// The dictionary stack: a semantics engine fed by event mirroring,
	// and a holder the detectors read — refreshed on the flush
	// heartbeat, so detection always consults a recent frozen snapshot.
	var sem *semantics.Engine
	var holder *semantics.Holder
	if cfg.dict {
		sem = semantics.NewEngine(semantics.Config{Workers: cfg.dictWorkers, Metrics: reg})
		holder = &semantics.Holder{}
		wcfg.Semantics = sem
		wcfg.Dict = holder
	}
	if cfg.detectors != "" {
		for _, name := range strings.Split(cfg.detectors, ",") {
			d, ok := watch.LookupDetector(strings.TrimSpace(name))
			if !ok {
				return fmt.Errorf("unknown detector %q (have %v)", name, watch.DetectorNames())
			}
			wcfg.Detectors = append(wcfg.Detectors, d)
		}
		// An explicit -detectors subset is respected verbatim: the
		// dictionary-aware pair joins only the default set.
	}
	eng := watch.NewEngine(wcfg)
	defer eng.Close()
	if sem != nil {
		defer sem.Close()
	}

	// The durable store sits between the feeds and the engine: it
	// assigns global sequence numbers, journals owned events, and (in
	// sharded mode) filters to this shard's prefix range. The
	// re-readable feeds (-scenario, -mrt) re-read from their beginning
	// on restart, so the store resumes by skipping what recovery
	// already applied; a -feed-listen stream cannot be re-read, so
	// there the WAL alone is the recovery source and sequence
	// numbering continues from the recovered watermark.
	var store *durable.Store
	sink := eng.Ingest
	if cfg.walDir != "" {
		opts := durable.Options{
			Dir:              cfg.walDir,
			FsyncInterval:    cfg.fsync,
			SegmentBytes:     cfg.walSegment,
			SnapshotInterval: cfg.snapInterval,
			ResumeSkip:       cfg.feedListen == "",
			Metrics:          reg,
		}
		if cfg.shardCount > 1 {
			opts.Owner = serve.NewRangeMap(cfg.shardCount).OwnerFunc(cfg.shardIndex)
		}
		var recInfo durable.Recovery
		var err error
		store, recInfo, err = durable.Open(eng, sem, opts)
		if err != nil {
			return err
		}
		sink = store.Sink()
		log.Printf("wormwatchd: durable: recovered seq %d (checkpoint %d + %d WAL records, %d torn bytes)",
			recInfo.Seq, recInfo.CheckpointSeq, recInfo.Replayed, recInfo.TornBytes)
	}

	srv := serve.New(serve.Options{
		Watch: eng, Semantics: sem, Holder: holder, Registry: reg,
		Store: store, ShardIndex: cfg.shardIndex, ShardCount: cfg.shardCount,
		Pprof: cfg.pprofOn,
	})
	ln, err := listen(&cfg)
	if err != nil {
		if store != nil {
			store.Close()
		}
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() {
		log.Printf("wormwatchd: shard %d/%d listening on http://%s", cfg.shardIndex, cfg.shardCount, ln.Addr())
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fail(err)
		}
	}()

	// stopping flips at the first shutdown signal; feed loops check it
	// at their boundaries.
	var stopping atomic.Bool

	var feeds sync.WaitGroup
	if cfg.scenario != "" {
		feeds.Add(1)
		go func() {
			defer feeds.Done()
			replayScenario(eng, sink, store != nil, cfg.scenario, cfg.scale, cfg.seed)
		}()
	}
	// The tail reader is created here, before the feed goroutine starts,
	// so shutdown can always reach Stop — otherwise a signal racing feed
	// startup could leave the MRT stream blocked in the tail forever.
	var tail *mrt.TailReader
	if cfg.mrtPath != "" {
		paths, tailable, err := mrtInputs(cfg.mrtPath)
		if err != nil {
			return err
		}
		if cfg.follow && !tailable {
			return fmt.Errorf("-follow needs a single MRT file, not a directory")
		}
		if cfg.follow {
			f, err := os.Open(paths[0])
			if err != nil {
				return err
			}
			defer f.Close()
			tail = mrt.NewTailReader(f, 200*time.Millisecond)
		}
		feeds.Add(1)
		go func() {
			defer feeds.Done()
			for _, p := range paths {
				if stopping.Load() {
					return // shutdown between archives
				}
				src := "mrt:" + filepath.Base(p)
				var n int
				var err error
				if tail != nil {
					n, err = watch.StreamMRT(tail, src, sink)
				} else {
					f, err2 := os.Open(p)
					if err2 != nil {
						log.Printf("wormwatchd: skipping %s: %v", p, err2)
						continue
					}
					n, err = watch.StreamMRT(f, src, sink)
					f.Close()
				}
				if err != nil {
					// Keep whatever decoded before the error and move on
					// to the next archive; the log is the record of the
					// partial ingest.
					log.Printf("wormwatchd: %s: %d events, then: %v", p, n, err)
					continue
				}
				log.Printf("wormwatchd: %s: %d events ingested", p, n)
			}
			eng.Flush()
		}()
	}

	// The live feed: accept raw MRT byte streams on a socket, one
	// goroutine per connection. Connections are tracked so shutdown can
	// unblock their reads — a live stream has no item boundary to drain
	// to, and whatever was journaled by then is exactly what recovery
	// will serve.
	var feedLn net.Listener
	var feedConns connSet
	if cfg.feedListen != "" {
		network := "tcp"
		if strings.Contains(cfg.feedListen, "/") {
			network = "unix"
			// A previous life killed hard leaves the socket file behind.
			os.Remove(cfg.feedListen)
		}
		feedLn, err = net.Listen(network, cfg.feedListen)
		if err != nil {
			if store != nil {
				store.Close()
			}
			return err
		}
		if cfg.feedReady != nil {
			cfg.feedReady(feedLn.Addr().String())
		}
		log.Printf("wormwatchd: live feed listening on %s://%s", network, feedLn.Addr())
		feeds.Add(1)
		go func() {
			defer feeds.Done()
			for {
				conn, err := feedLn.Accept()
				if err != nil {
					return // listener closed by shutdown
				}
				if !feedConns.add(conn) {
					conn.Close() // raced shutdown
					continue
				}
				feeds.Add(1)
				go func() {
					defer feeds.Done()
					defer feedConns.remove(conn)
					// The source label is constant across connections so a
					// reconnecting sender produces the same event bytes a
					// WAL replay would.
					n, err := watch.StreamMRT(conn, "mrt:feed", sink)
					if err != nil && !stopping.Load() {
						log.Printf("wormwatchd: live feed: %d events, then: %v", n, err)
					} else {
						log.Printf("wormwatchd: live feed: %d events ingested", n)
					}
					eng.Flush()
				}()
			}
		}()
	}

	// While any feed is live, surface partial batches on a heartbeat:
	// without it a slow -follow source could sit under the engine's
	// batching granularity and never show its alerts.
	flusherDone := make(chan struct{})
	feeds.Add(1)
	go func() {
		defer feeds.Done()
		tick := time.NewTicker(500 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-flusherDone:
				return
			case <-tick.C:
				eng.Flush()
				if sem != nil {
					// Snapshot caches by version: a quiet engine makes
					// this a no-op, a busy one refreshes the detectors'
					// dictionary.
					holder.Store(sem.Snapshot())
				}
			}
		}
	}()

	stop := stopSignals(&cfg)
	<-stop
	log.Printf("wormwatchd: shutting down (again or wait %s to force)", forceExitAfter)
	stopping.Store(true)
	if tail != nil {
		tail.Stop()
	}
	if feedLn != nil {
		// Unblock the accept loop, then every in-flight read.
		feedLn.Close()
		feedConns.closeAll()
	}
	close(flusherDone)
	// Graceful drain can only stop feeds at their boundaries (a scenario
	// replay or a single large archive runs to completion); a second
	// signal or the deadline forces exit so supervisors never hang on
	// us. A clean drain cancels the watchdog.
	drained := make(chan struct{})
	go func() {
		deadline := time.After(forceExitAfter)
		select {
		case <-stop:
		case <-deadline:
		case <-drained:
			return
		}
		log.Printf("wormwatchd: forced exit with feeds still running")
		os.Exit(1)
	}()
	feeds.Wait()
	close(drained)
	eng.Flush()
	if store != nil {
		// Final checkpoint + WAL fsync: the next start restores instead
		// of replaying the whole feed.
		if err := store.Close(); err != nil {
			log.Printf("wormwatchd: durable close: %v", err)
		} else {
			log.Printf("wormwatchd: durable: final checkpoint at seq %d", store.Status().SnapshotSeq)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return httpSrv.Shutdown(ctx)
}

// replayScenario drives a registered scenario through sink and logs the
// Table-3 outcome. Without a durable store the tap is lossy
// (non-blocking TryIngest, the live-observation semantics); with one,
// the feed is lossless — the WAL is the record and must see every
// event.
func replayScenario(eng *watch.Engine, sink func(watch.Event), durableFeed bool, name, scale string, seed int64) {
	tapSink := sink
	if !durableFeed {
		tapSink = eng.TryIngest
	}
	ctx := &scenario.Context{Tap: watch.EventTap("scenario:"+name, tapSink)}
	if scale != "" {
		p, err := gen.Preset(scale)
		if err != nil {
			log.Printf("wormwatchd: %v", err)
			return
		}
		ctx.Gen = p
	}
	if seed != 0 {
		if ctx.Gen.Stubs == 0 {
			ctx.Gen, _ = gen.Preset(scenario.DefaultScale)
		}
		ctx.Gen.Seed = seed
	}
	res, err := scenario.Run(name, ctx)
	if err != nil {
		log.Printf("wormwatchd: scenario %s: %v", name, err)
		return
	}
	eng.Flush()
	st := eng.Stats()
	log.Printf("wormwatchd: scenario %s success=%v; %d events, %d dropped, %d alerts",
		name, res.Success, st.Ingested, st.Dropped, st.Alerts)
}

// connSet tracks live feed connections so shutdown can unblock their
// reads; add refuses new connections once closeAll has run.
type connSet struct {
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

func (c *connSet) add(conn net.Conn) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false
	}
	if c.conns == nil {
		c.conns = make(map[net.Conn]struct{})
	}
	c.conns[conn] = struct{}{}
	return true
}

func (c *connSet) remove(conn net.Conn) {
	conn.Close()
	c.mu.Lock()
	delete(c.conns, conn)
	c.mu.Unlock()
}

func (c *connSet) closeAll() {
	c.mu.Lock()
	c.closed = true
	for conn := range c.conns {
		conn.Close()
	}
	c.mu.Unlock()
}

// mrtInputs expands -mrt into concrete archive paths; tailable reports
// whether the input was a single file (the only -follow shape).
func mrtInputs(path string) (paths []string, tailable bool, err error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, false, err
	}
	if !info.IsDir() {
		return []string{path}, true, nil
	}
	paths, err = filepath.Glob(filepath.Join(path, "updates.*.mrt"))
	if err != nil {
		return nil, false, err
	}
	if len(paths) == 0 {
		return nil, false, fmt.Errorf("no updates.*.mrt files in %s", path)
	}
	sort.Strings(paths)
	return paths, false, nil
}
