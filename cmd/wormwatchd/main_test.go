package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"bgpworms/internal/bgp"
	"bgpworms/internal/obs"
	"bgpworms/internal/semantics"
	"bgpworms/internal/serve"
	"bgpworms/internal/watch"
)

// newTestServer assembles the daemon's HTTP stack on fresh engines and
// a private registry (never obs.Default — tests must not cross-talk).
func newTestServer(t *testing.T) (*watch.Engine, *semantics.Engine, http.Handler) {
	t.Helper()
	reg := obs.NewRegistry()
	sem := semantics.NewEngine(semantics.Config{Workers: 2, Metrics: reg})
	holder := &semantics.Holder{}
	eng := watch.NewEngine(watch.Config{Shards: 4, Metrics: reg, Semantics: sem, Dict: holder})
	srv := serve.New(serve.Options{Watch: eng, Semantics: sem, Holder: holder, Registry: reg, Pprof: true})
	return eng, sem, srv.Handler()
}

func testEvent(i int) watch.Event {
	return watch.Event{
		PeerAS:      65001,
		Prefix:      netip.MustParsePrefix("10.0.0.0/24"),
		ASPath:      []uint32{65001, 65000, uint32(7000 + i%4)},
		Communities: bgp.NewCommunitySet(bgp.C(65000, uint16(i%8))),
	}
}

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	b, _ := io.ReadAll(rec.Result().Body)
	return rec.Code, string(b)
}

// TestMetricsAndStatsDuringIngest hammers /metrics and /stats while a
// concurrent feed is mid-flight; under -race this is the daemon-level
// thread-safety proof for the scrape path.
func TestMetricsAndStatsDuringIngest(t *testing.T) {
	eng, sem, h := newTestServer(t)
	defer sem.Close()
	defer eng.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if code, _ := get(t, h, "/metrics"); code != http.StatusOK {
					t.Errorf("/metrics status %d", code)
					return
				}
				if code, _ := get(t, h, "/stats"); code != http.StatusOK {
					t.Errorf("/stats status %d", code)
					return
				}
			}
		}()
	}
	for i := 0; i < 20000; i++ {
		eng.Ingest(testEvent(i))
	}
	eng.Flush()
	close(stop)
	wg.Wait()

	code, body := get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, series := range []string{
		"watch_ingested_total 20000",
		"semantics_ingested_total 20000",
		"# TYPE watch_batch_seconds histogram",
		"# TYPE http_request_seconds histogram",
		`http_requests_total{path="/metrics"}`,
	} {
		if !strings.Contains(body, series) {
			t.Fatalf("/metrics missing %q:\n%s", series, body)
		}
	}
}

// TestHealthzBuildInfo pins the /healthz shape: liveness counters plus
// the build record shared with suite provenance.
func TestHealthzBuildInfo(t *testing.T) {
	eng, sem, h := newTestServer(t)
	defer sem.Close()
	defer eng.Close()
	code, body := get(t, h, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d", code)
	}
	var payload map[string]any
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, body)
	}
	for _, key := range []string{"status", "start_time", "uptime_seconds", "go_version", "git_sha", "ingested"} {
		if _, ok := payload[key]; !ok {
			t.Fatalf("/healthz missing %q: %s", key, body)
		}
	}
	if payload["go_version"] == "" || payload["git_sha"] == "" {
		t.Fatalf("empty build info: %s", body)
	}
}

// TestPprofGate pins that the profiling mux is flag-gated.
func TestPprofGate(t *testing.T) {
	reg := obs.NewRegistry()
	eng := watch.NewEngine(watch.Config{Shards: 1, Metrics: reg})
	defer eng.Close()
	srv := serve.New(serve.Options{Watch: eng, Registry: reg})
	if code, _ := get(t, srv.Handler(), "/debug/pprof/"); code != http.StatusNotFound {
		t.Fatalf("pprof served without -pprof: %d", code)
	}
	srv = serve.New(serve.Options{Watch: eng, Registry: reg, Pprof: true})
	if code, _ := get(t, srv.Handler(), "/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("pprof gated despite -pprof: %d", code)
	}
}

// daemon runs runDaemon in-process with injected signals and reports
// the bound address — the harness for daemon-lifecycle tests.
type daemon struct {
	cfg     config
	signals chan os.Signal
	addr    chan string
	done    chan error
}

func startDaemon(t *testing.T, cfg config) *daemon {
	t.Helper()
	d := &daemon{
		cfg:     cfg,
		signals: make(chan os.Signal, 2),
		addr:    make(chan string, 1),
		done:    make(chan error, 1),
	}
	d.cfg.addr = "127.0.0.1:0"
	if d.cfg.shardCount == 0 {
		d.cfg.shardCount = 1
	}
	d.cfg.reg = obs.NewRegistry()
	d.cfg.signals = d.signals
	d.cfg.ready = func(a string) { d.addr <- a }
	go func() { d.done <- runDaemon(d.cfg) }()
	return d
}

// url blocks until the listener is up.
func (d *daemon) url(t *testing.T) string {
	t.Helper()
	select {
	case a := <-d.addr:
		return "http://" + a
	case err := <-d.done:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon never bound a listener")
	}
	return ""
}

// stop sends SIGTERM and waits for the graceful-shutdown path to run to
// completion.
func (d *daemon) stop(t *testing.T) {
	t.Helper()
	d.signals <- syscall.SIGTERM
	select {
	case err := <-d.done:
		if err != nil {
			t.Fatalf("daemon shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not shut down after SIGTERM")
	}
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, string(b)
}

// waitStable polls url until fn(body) is true and the body stops
// changing between polls — "the feed finished and the render settled".
func waitStable(t *testing.T, url string, fn func(string) bool) string {
	t.Helper()
	var last string
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		_, body := httpGet(t, url)
		if fn(body) && body == last {
			return body
		}
		last = body
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("%s never stabilized; last body:\n%s", url, last)
	return ""
}

// TestDaemonGracefulShutdownAndRestart is the daemon-level durability
// test: a SIGTERM'd daemon must drain its feed, write a final
// checkpoint, and close its listener; a restart on the same WAL
// directory must recover and serve the identical alert set without
// re-processing the feed.
func TestDaemonGracefulShutdownAndRestart(t *testing.T) {
	walDir := t.TempDir()
	cfg := config{
		scenario:     "rtbh",
		walDir:       walDir,
		snapInterval: 0, // only the shutdown checkpoint
		fsync:        5 * time.Millisecond,
	}

	d1 := startDaemon(t, cfg)
	base := d1.url(t)
	alerts1 := waitStable(t, base+"/alerts", func(body string) bool {
		return !strings.Contains(body, `"count": 0`)
	})
	stats1 := waitStable(t, base+"/stats", func(string) bool { return true })
	d1.stop(t)

	// Graceful shutdown closed the listener...
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatalf("listener still serving after shutdown")
	}
	// ...and left a final checkpoint behind.
	snaps, err := filepath.Glob(filepath.Join(walDir, "snap-*.ckpt"))
	if err != nil || len(snaps) == 0 {
		t.Fatalf("no checkpoint after graceful shutdown (err=%v)", err)
	}

	// Restart on the same directory: recovery restores the full state
	// before the listener comes up, and the re-fed scenario is entirely
	// skipped (resume-skip), so /alerts is byte-identical immediately.
	d2 := startDaemon(t, cfg)
	base2 := d2.url(t)
	defer d2.stop(t)

	_, alerts2 := httpGet(t, base2+"/alerts")
	if alerts2 != alerts1 {
		t.Fatalf("restart lost or changed alerts:\nbefore: %.300s\nafter: %.300s", alerts1, alerts2)
	}
	_, durableBody := httpGet(t, base2+"/durable")
	var dp struct {
		Enabled bool `json:"enabled"`
		Status  struct {
			Recovered uint64 `json:"recovered"`
		} `json:"status"`
	}
	if err := json.Unmarshal([]byte(durableBody), &dp); err != nil {
		t.Fatalf("/durable: %v\n%s", err, durableBody)
	}
	if !dp.Enabled || dp.Status.Recovered == 0 {
		t.Fatalf("restart did not recover from checkpoint: %s", durableBody)
	}

	// The skipped re-feed must not change /stats beyond the resume
	// bookkeeping: ingested counts match the first run's final state.
	// The snapshot version counter restarts on restore, so compare
	// everything but "version".
	stats2 := waitStable(t, base2+"/stats", func(string) bool { return true })
	if got, want := statsSansVersion(t, stats2), statsSansVersion(t, stats1); got != want {
		t.Fatalf("restart stats diverged:\nbefore: %s\nafter: %s", want, got)
	}
}

// statsSansVersion canonicalizes a /stats body with the snapshot
// version dropped (restores restart the version counter).
func statsSansVersion(t *testing.T, body string) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("stats unmarshal: %v\n%s", err, body)
	}
	delete(m, "version")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("stats marshal: %v", err)
	}
	return string(out)
}
