package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"sync"
	"testing"

	"bgpworms/internal/bgp"
	"bgpworms/internal/obs"
	"bgpworms/internal/semantics"
	"bgpworms/internal/watch"
)

// newTestServer assembles the daemon's HTTP stack on fresh engines and
// a private registry (never obs.Default — tests must not cross-talk).
func newTestServer(t *testing.T) (*watch.Engine, *semantics.Engine, http.Handler) {
	t.Helper()
	reg := obs.NewRegistry()
	sem := semantics.NewEngine(semantics.Config{Workers: 2, Metrics: reg})
	holder := &semantics.Holder{}
	eng := watch.NewEngine(watch.Config{Shards: 4, Metrics: reg, Semantics: sem, Dict: holder})
	srv := newServer(eng, sem, holder, reg)
	srv.pprof = true
	return eng, sem, srv.handler()
}

func testEvent(i int) watch.Event {
	return watch.Event{
		PeerAS:      65001,
		Prefix:      netip.MustParsePrefix("10.0.0.0/24"),
		ASPath:      []uint32{65001, 65000, uint32(7000 + i%4)},
		Communities: bgp.NewCommunitySet(bgp.C(65000, uint16(i%8))),
	}
}

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	b, _ := io.ReadAll(rec.Result().Body)
	return rec.Code, string(b)
}

// TestMetricsAndStatsDuringIngest hammers /metrics and /stats while a
// concurrent feed is mid-flight; under -race this is the daemon-level
// thread-safety proof for the scrape path.
func TestMetricsAndStatsDuringIngest(t *testing.T) {
	eng, sem, h := newTestServer(t)
	defer sem.Close()
	defer eng.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if code, _ := get(t, h, "/metrics"); code != http.StatusOK {
					t.Errorf("/metrics status %d", code)
					return
				}
				if code, _ := get(t, h, "/stats"); code != http.StatusOK {
					t.Errorf("/stats status %d", code)
					return
				}
			}
		}()
	}
	for i := 0; i < 20000; i++ {
		eng.Ingest(testEvent(i))
	}
	eng.Flush()
	close(stop)
	wg.Wait()

	code, body := get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, series := range []string{
		"watch_ingested_total 20000",
		"semantics_ingested_total 20000",
		"# TYPE watch_batch_seconds histogram",
		"# TYPE http_request_seconds histogram",
		`http_requests_total{path="/metrics"}`,
	} {
		if !strings.Contains(body, series) {
			t.Fatalf("/metrics missing %q:\n%s", series, body)
		}
	}
}

// TestHealthzBuildInfo pins the /healthz shape: liveness counters plus
// the build record shared with suite provenance.
func TestHealthzBuildInfo(t *testing.T) {
	eng, sem, h := newTestServer(t)
	defer sem.Close()
	defer eng.Close()
	code, body := get(t, h, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d", code)
	}
	var payload map[string]any
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, body)
	}
	for _, key := range []string{"status", "start_time", "uptime_seconds", "go_version", "git_sha", "ingested"} {
		if _, ok := payload[key]; !ok {
			t.Fatalf("/healthz missing %q: %s", key, body)
		}
	}
	if payload["go_version"] == "" || payload["git_sha"] == "" {
		t.Fatalf("empty build info: %s", body)
	}
}

// TestPprofGate pins that the profiling mux is flag-gated.
func TestPprofGate(t *testing.T) {
	reg := obs.NewRegistry()
	eng := watch.NewEngine(watch.Config{Shards: 1, Metrics: reg})
	defer eng.Close()
	srv := newServer(eng, nil, nil, reg)
	if code, _ := get(t, srv.handler(), "/debug/pprof/"); code != http.StatusNotFound {
		t.Fatalf("pprof served without -pprof: %d", code)
	}
	srv.pprof = true
	if code, _ := get(t, srv.handler(), "/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("pprof gated despite -pprof: %d", code)
	}
}
