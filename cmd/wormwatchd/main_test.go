package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"bgpworms/internal/bgp"
	"bgpworms/internal/gen"
	"bgpworms/internal/obs"
	"bgpworms/internal/semantics"
	"bgpworms/internal/serve"
	"bgpworms/internal/watch"
)

// TestMain doubles as the kill -9 helper: with WORMWATCHD_HELPER set,
// the test binary IS the daemon, so SIGKILL genuinely loses everything
// that is not in the WAL.
func TestMain(m *testing.M) {
	if os.Getenv("WORMWATCHD_HELPER") == "1" {
		helperMain()
		return
	}
	os.Exit(m.Run())
}

// helperMain runs the real daemon life cycle in durable feed-listen
// mode, reporting the bound addresses on stdout for the parent test.
func helperMain() {
	cfg := config{
		addr:       "127.0.0.1:0",
		feedListen: "127.0.0.1:0",
		walDir:     os.Getenv("WORMWATCHD_WAL"),
		fsync:      2 * time.Millisecond,
		shardCount: 1,
		reg:        obs.NewRegistry(),
		ready:      func(a string) { fmt.Printf("ADDR %s\n", a) },
		feedReady:  func(a string) { fmt.Printf("FEED %s\n", a) },
	}
	if err := runDaemon(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
}

// newTestServer assembles the daemon's HTTP stack on fresh engines and
// a private registry (never obs.Default — tests must not cross-talk).
func newTestServer(t *testing.T) (*watch.Engine, *semantics.Engine, http.Handler) {
	t.Helper()
	reg := obs.NewRegistry()
	sem := semantics.NewEngine(semantics.Config{Workers: 2, Metrics: reg})
	holder := &semantics.Holder{}
	eng := watch.NewEngine(watch.Config{Shards: 4, Metrics: reg, Semantics: sem, Dict: holder})
	srv := serve.New(serve.Options{Watch: eng, Semantics: sem, Holder: holder, Registry: reg, Pprof: true})
	return eng, sem, srv.Handler()
}

func testEvent(i int) watch.Event {
	return watch.Event{
		PeerAS:      65001,
		Prefix:      netip.MustParsePrefix("10.0.0.0/24"),
		ASPath:      []uint32{65001, 65000, uint32(7000 + i%4)},
		Communities: bgp.NewCommunitySet(bgp.C(65000, uint16(i%8))),
	}
}

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	b, _ := io.ReadAll(rec.Result().Body)
	return rec.Code, string(b)
}

// TestMetricsAndStatsDuringIngest hammers /metrics and /stats while a
// concurrent feed is mid-flight; under -race this is the daemon-level
// thread-safety proof for the scrape path.
func TestMetricsAndStatsDuringIngest(t *testing.T) {
	eng, sem, h := newTestServer(t)
	defer sem.Close()
	defer eng.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if code, _ := get(t, h, "/metrics"); code != http.StatusOK {
					t.Errorf("/metrics status %d", code)
					return
				}
				if code, _ := get(t, h, "/stats"); code != http.StatusOK {
					t.Errorf("/stats status %d", code)
					return
				}
			}
		}()
	}
	for i := 0; i < 20000; i++ {
		eng.Ingest(testEvent(i))
	}
	eng.Flush()
	close(stop)
	wg.Wait()

	code, body := get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, series := range []string{
		"watch_ingested_total 20000",
		"semantics_ingested_total 20000",
		"# TYPE watch_batch_seconds histogram",
		"# TYPE http_request_seconds histogram",
		`http_requests_total{path="/metrics"}`,
	} {
		if !strings.Contains(body, series) {
			t.Fatalf("/metrics missing %q:\n%s", series, body)
		}
	}
}

// TestHealthzBuildInfo pins the /healthz shape: liveness counters plus
// the build record shared with suite provenance.
func TestHealthzBuildInfo(t *testing.T) {
	eng, sem, h := newTestServer(t)
	defer sem.Close()
	defer eng.Close()
	code, body := get(t, h, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d", code)
	}
	var payload map[string]any
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, body)
	}
	for _, key := range []string{"status", "start_time", "uptime_seconds", "go_version", "git_sha", "ingested"} {
		if _, ok := payload[key]; !ok {
			t.Fatalf("/healthz missing %q: %s", key, body)
		}
	}
	if payload["go_version"] == "" || payload["git_sha"] == "" {
		t.Fatalf("empty build info: %s", body)
	}
}

// TestPprofGate pins that the profiling mux is flag-gated.
func TestPprofGate(t *testing.T) {
	reg := obs.NewRegistry()
	eng := watch.NewEngine(watch.Config{Shards: 1, Metrics: reg})
	defer eng.Close()
	srv := serve.New(serve.Options{Watch: eng, Registry: reg})
	if code, _ := get(t, srv.Handler(), "/debug/pprof/"); code != http.StatusNotFound {
		t.Fatalf("pprof served without -pprof: %d", code)
	}
	srv = serve.New(serve.Options{Watch: eng, Registry: reg, Pprof: true})
	if code, _ := get(t, srv.Handler(), "/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("pprof gated despite -pprof: %d", code)
	}
}

// daemon runs runDaemon in-process with injected signals and reports
// the bound address — the harness for daemon-lifecycle tests.
type daemon struct {
	cfg      config
	signals  chan os.Signal
	addr     chan string
	feedAddr chan string
	done     chan error
}

func startDaemon(t *testing.T, cfg config) *daemon {
	t.Helper()
	d := &daemon{
		cfg:      cfg,
		signals:  make(chan os.Signal, 2),
		addr:     make(chan string, 1),
		feedAddr: make(chan string, 1),
		done:     make(chan error, 1),
	}
	d.cfg.addr = "127.0.0.1:0"
	if d.cfg.shardCount == 0 {
		d.cfg.shardCount = 1
	}
	d.cfg.reg = obs.NewRegistry()
	d.cfg.signals = d.signals
	d.cfg.ready = func(a string) { d.addr <- a }
	if d.cfg.feedListen != "" {
		d.cfg.feedReady = func(a string) { d.feedAddr <- a }
	}
	go func() { d.done <- runDaemon(d.cfg) }()
	return d
}

// feed blocks until the -feed-listen socket is up.
func (d *daemon) feed(t *testing.T) string {
	t.Helper()
	select {
	case a := <-d.feedAddr:
		return a
	case err := <-d.done:
		t.Fatalf("daemon exited before the feed listener was up: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon never bound the feed listener")
	}
	return ""
}

// url blocks until the listener is up.
func (d *daemon) url(t *testing.T) string {
	t.Helper()
	select {
	case a := <-d.addr:
		return "http://" + a
	case err := <-d.done:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon never bound a listener")
	}
	return ""
}

// stop sends SIGTERM and waits for the graceful-shutdown path to run to
// completion.
func (d *daemon) stop(t *testing.T) {
	t.Helper()
	d.signals <- syscall.SIGTERM
	select {
	case err := <-d.done:
		if err != nil {
			t.Fatalf("daemon shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not shut down after SIGTERM")
	}
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, string(b)
}

// waitStable polls url until fn(body) is true and the body stops
// changing between polls — "the feed finished and the render settled".
func waitStable(t *testing.T, url string, fn func(string) bool) string {
	t.Helper()
	var last string
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		_, body := httpGet(t, url)
		if fn(body) && body == last {
			return body
		}
		last = body
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("%s never stabilized; last body:\n%s", url, last)
	return ""
}

// TestDaemonGracefulShutdownAndRestart is the daemon-level durability
// test: a SIGTERM'd daemon must drain its feed, write a final
// checkpoint, and close its listener; a restart on the same WAL
// directory must recover and serve the identical alert set without
// re-processing the feed.
func TestDaemonGracefulShutdownAndRestart(t *testing.T) {
	walDir := t.TempDir()
	cfg := config{
		scenario:     "rtbh",
		walDir:       walDir,
		snapInterval: 0, // only the shutdown checkpoint
		fsync:        5 * time.Millisecond,
	}

	d1 := startDaemon(t, cfg)
	base := d1.url(t)
	alerts1 := waitStable(t, base+"/alerts", func(body string) bool {
		return !strings.Contains(body, `"count": 0`)
	})
	stats1 := waitStable(t, base+"/stats", func(string) bool { return true })
	d1.stop(t)

	// Graceful shutdown closed the listener...
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatalf("listener still serving after shutdown")
	}
	// ...and left a final checkpoint behind.
	snaps, err := filepath.Glob(filepath.Join(walDir, "snap-*.ckpt"))
	if err != nil || len(snaps) == 0 {
		t.Fatalf("no checkpoint after graceful shutdown (err=%v)", err)
	}

	// Restart on the same directory: recovery restores the full state
	// before the listener comes up, and the re-fed scenario is entirely
	// skipped (resume-skip), so /alerts is byte-identical immediately.
	d2 := startDaemon(t, cfg)
	base2 := d2.url(t)
	defer d2.stop(t)

	_, alerts2 := httpGet(t, base2+"/alerts")
	if alerts2 != alerts1 {
		t.Fatalf("restart lost or changed alerts:\nbefore: %.300s\nafter: %.300s", alerts1, alerts2)
	}
	_, durableBody := httpGet(t, base2+"/durable")
	var dp struct {
		Enabled bool `json:"enabled"`
		Status  struct {
			Recovered uint64 `json:"recovered"`
		} `json:"status"`
	}
	if err := json.Unmarshal([]byte(durableBody), &dp); err != nil {
		t.Fatalf("/durable: %v\n%s", err, durableBody)
	}
	if !dp.Enabled || dp.Status.Recovered == 0 {
		t.Fatalf("restart did not recover from checkpoint: %s", durableBody)
	}

	// The skipped re-feed must not change /stats beyond the resume
	// bookkeeping: ingested counts match the first run's final state.
	// The snapshot version counter restarts on restore, so compare
	// everything but "version".
	stats2 := waitStable(t, base2+"/stats", func(string) bool { return true })
	if got, want := statsSansVersion(t, stats2), statsSansVersion(t, stats1); got != want {
		t.Fatalf("restart stats diverged:\nbefore: %s\nafter: %s", want, got)
	}
}

// statsSansVersion canonicalizes a /stats body with the snapshot
// version dropped (restores restart the version counter).
func statsSansVersion(t *testing.T, body string) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("stats unmarshal: %v\n%s", err, body)
	}
	delete(m, "version")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("stats marshal: %v", err)
	}
	return string(out)
}

// mrtParts synthesizes two MRT byte streams for the live feed tests:
// a deterministic tiny Internet's churn, split across its collectors so
// each part starts on a record boundary.
func mrtParts(t *testing.T) (part1, part2 []byte) {
	t.Helper()
	w, err := gen.Build(gen.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.RunChurn(); err != nil {
		t.Fatal(err)
	}
	if len(w.Collectors) < 2 {
		t.Fatalf("tiny world has %d collectors, need 2", len(w.Collectors))
	}
	var a, b bytes.Buffer
	for i, c := range w.Collectors {
		buf := &a
		if i == len(w.Collectors)-1 {
			buf = &b
		}
		if _, err := c.WriteUpdatesMRT(buf); err != nil {
			t.Fatal(err)
		}
	}
	return a.Bytes(), b.Bytes()
}

// eventCount decodes an MRT byte stream locally to learn how many
// events the daemon will ingest from it.
func eventCount(t *testing.T, raw []byte) uint64 {
	t.Helper()
	n, err := watch.StreamMRT(bytes.NewReader(raw), "mrt:feed", func(watch.Event) {})
	if err != nil {
		t.Fatal(err)
	}
	return uint64(n)
}

// streamFeed writes one MRT byte stream over a fresh feed connection
// and closes it (a clean end-of-stream for the daemon side).
func streamFeed(t *testing.T, addr string, raw []byte) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial feed %s: %v", addr, err)
	}
	defer conn.Close()
	if _, err := conn.Write(raw); err != nil {
		t.Fatalf("stream feed: %v", err)
	}
}

// durableStatus is the /durable slice the live-feed tests assert on.
type durableStatus struct {
	Enabled bool `json:"enabled"`
	Status  struct {
		Seq       uint64 `json:"seq"`
		Recovered uint64 `json:"recovered"`
		Durable   uint64 `json:"wal_durable_seq"`
	} `json:"status"`
}

func getDurable(t *testing.T, base string) durableStatus {
	t.Helper()
	_, body := httpGet(t, base+"/durable")
	var dp durableStatus
	if err := json.Unmarshal([]byte(body), &dp); err != nil {
		t.Fatalf("/durable: %v\n%s", err, body)
	}
	return dp
}

// waitDurable polls /durable until the sequence watermark reaches want
// and every journaled record is fsynced — the point where SIGKILL can
// no longer lose anything.
func waitDurable(t *testing.T, base string, want uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var last durableStatus
	for time.Now().Before(deadline) {
		last = getDurable(t, base)
		if last.Status.Seq >= want && last.Status.Durable == last.Status.Seq {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("durable watermark never reached %d (last %+v)", want, last)
}

// TestDaemonFeedListenRejectsRereadableFeeds pins the resume-semantics
// guard: a WAL cannot serve two recovery disciplines at once.
func TestDaemonFeedListenRejectsRereadableFeeds(t *testing.T) {
	cfg := config{
		scenario:   "rtbh",
		walDir:     t.TempDir(),
		feedListen: "127.0.0.1:0",
		shardCount: 1,
		reg:        obs.NewRegistry(),
	}
	err := runDaemon(cfg)
	if err == nil || !strings.Contains(err.Error(), "-feed-listen") {
		t.Fatalf("scenario+feed-listen+wal accepted: %v", err)
	}
}

// TestDaemonFeedListenGracefulShutdown covers the live feed's clean
// path: a SIGTERM with a connection still open must unblock the stream,
// checkpoint, and exit; a restart serves the identical alerts without
// any feed connected (the WAL, not a re-read, is the source of truth).
func TestDaemonFeedListenGracefulShutdown(t *testing.T) {
	part1, _ := mrtParts(t)
	n1 := eventCount(t, part1)
	walDir := t.TempDir()
	cfg := config{
		feedListen: "127.0.0.1:0",
		walDir:     walDir,
		fsync:      2 * time.Millisecond,
	}

	d1 := startDaemon(t, cfg)
	base := d1.url(t)
	conn, err := net.Dial("tcp", d1.feed(t))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(part1); err != nil {
		t.Fatal(err)
	}
	// The connection stays OPEN: shutdown must not wait for the sender.
	waitDurable(t, base, n1)
	alerts1 := waitStable(t, base+"/alerts", func(body string) bool {
		return strings.Contains(body, `"detector"`)
	})
	d1.stop(t)

	snaps, err := filepath.Glob(filepath.Join(walDir, "snap-*.ckpt"))
	if err != nil || len(snaps) == 0 {
		t.Fatalf("no checkpoint after graceful shutdown (err=%v)", err)
	}

	d2 := startDaemon(t, cfg)
	base2 := d2.url(t)
	defer d2.stop(t)
	_, alerts2 := httpGet(t, base2+"/alerts")
	if alerts2 != alerts1 {
		t.Fatalf("restart changed alerts:\nbefore: %.300s\nafter: %.300s", alerts1, alerts2)
	}
	dp := getDurable(t, base2)
	if !dp.Enabled || dp.Status.Recovered != n1 {
		t.Fatalf("recovered watermark %d, want %d", dp.Status.Recovered, n1)
	}
}

// helper is the out-of-process daemon the kill -9 test targets.
type helper struct {
	cmd  *exec.Cmd
	http string
	feed string
}

func startHelper(t *testing.T, walDir string) *helper {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "WORMWATCHD_HELPER=1", "WORMWATCHD_WAL="+walDir)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	h := &helper{cmd: cmd}
	t.Cleanup(func() { h.kill(t) })
	sc := bufio.NewScanner(stdout)
	for (h.http == "" || h.feed == "") && sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) != 2 {
			continue
		}
		switch f[0] {
		case "ADDR":
			h.http = "http://" + f[1]
		case "FEED":
			h.feed = f[1]
		}
	}
	if h.http == "" || h.feed == "" {
		t.Fatalf("helper daemon exited before reporting its addresses")
	}
	return h
}

// kill SIGKILLs the helper — the whole point: no shutdown hook runs, no
// final checkpoint is written, userspace buffers are simply gone.
func (h *helper) kill(t *testing.T) {
	t.Helper()
	if h.cmd.ProcessState != nil {
		return // already reaped
	}
	h.cmd.Process.Kill()
	h.cmd.Wait()
}

// TestDaemonFeedListenKill9Recovery is the tentpole acceptance test for
// the non-re-readable feed: stream half the feed, SIGKILL the daemon
// process, restart on the same WAL directory, and require (a) the
// byte-identical /alerts with nothing re-fed, and (b) sequence
// numbering that continues — the second half streamed to the new life
// must land exactly after the recovered watermark and converge to the
// same state as an uninterrupted daemon fed both halves.
func TestDaemonFeedListenKill9Recovery(t *testing.T) {
	part1, part2 := mrtParts(t)
	n1, n2 := eventCount(t, part1), eventCount(t, part2)
	walDir := t.TempDir()

	h1 := startHelper(t, walDir)
	streamFeed(t, h1.feed, part1)
	waitDurable(t, h1.http, n1)
	alerts1 := waitStable(t, h1.http+"/alerts", func(body string) bool {
		return strings.Contains(body, `"detector"`)
	})
	h1.kill(t)

	// No graceful path ran: recovery is pure WAL replay.
	if snaps, _ := filepath.Glob(filepath.Join(walDir, "snap-*.ckpt")); len(snaps) != 0 {
		t.Fatalf("SIGKILL'd daemon left checkpoints %v", snaps)
	}

	h2 := startHelper(t, walDir)
	dp := getDurable(t, h2.http)
	if !dp.Enabled || dp.Status.Recovered != n1 {
		t.Fatalf("recovered watermark %d, want %d", dp.Status.Recovered, n1)
	}
	_, alerts2 := httpGet(t, h2.http+"/alerts")
	if alerts2 != alerts1 {
		t.Fatalf("kill -9 restart lost or changed alerts:\nbefore: %.300s\nafter: %.300s", alerts1, alerts2)
	}

	// The second half continues the global numbering on a new conn.
	streamFeed(t, h2.feed, part2)
	waitDurable(t, h2.http, n1+n2)
	dp = getDurable(t, h2.http)
	if dp.Status.Seq != n1+n2 {
		t.Fatalf("seq %d after part 2, want %d (numbering must continue, not restart)", dp.Status.Seq, n1+n2)
	}
	alertsFinal := waitStable(t, h2.http+"/alerts", func(string) bool { return true })
	h2.kill(t)

	// Control: an uninterrupted daemon fed both halves over sequential
	// connections reaches the same surface. Waiting for the part-1
	// watermark before the second connection mirrors the killed run's
	// ordering — two live connections would otherwise interleave.
	d := startDaemon(t, config{feedListen: "127.0.0.1:0", walDir: t.TempDir(), fsync: 2 * time.Millisecond})
	defer d.stop(t)
	base, feed := d.url(t), d.feed(t)
	streamFeed(t, feed, part1)
	waitDurable(t, base, n1)
	streamFeed(t, feed, part2)
	waitDurable(t, base, n1+n2)
	want := waitStable(t, base+"/alerts", func(body string) bool {
		return body == alertsFinal
	})
	if want != alertsFinal {
		t.Fatal("unreachable: waitStable returned a non-matching body")
	}
}
