// Command genesis builds a synthetic Internet (topology, policies, IXPs,
// collectors), simulates a month of routing churn, and writes the
// resulting measurement artifacts:
//
//	<out>/as-rel.txt            CAIDA serial-1 relationships
//	<out>/updates.<name>.mrt    per-collector BGP4MP update archives
//	<out>/rib.<name>.mrt        per-collector TABLE_DUMP_V2 snapshots
//
// Usage:
//
//	genesis -scale small -seed 1 -out ./data
//	genesis -scale medium -workers 8 -out ./data
//
// -workers selects the simulation engine: 0 or 1 the serial FIFO
// engine; >1 the round-based parallel engine with that many workers; a
// negative value the parallel engine with one worker per CPU. The
// parallel engine is deterministic under a fixed seed with identical
// output for any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"bgpworms/internal/gen"
	"bgpworms/internal/topo"
)

func main() {
	scale := flag.String("scale", "small", "internet scale: tiny|small|medium")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "data", "output directory")
	workers := flag.Int("workers", 0, "simulation engine workers (0 or 1 = serial; >1 = parallel rounds; <0 = parallel rounds, one worker per CPU)")
	flag.Parse()

	p, err := gen.Preset(*scale)
	if err != nil {
		fail(err)
	}
	p.Seed = *seed
	p.Workers = *workers

	fmt.Printf("building %s internet (seed %d)...\n", *scale, *seed)
	w, err := gen.Build(p)
	if err != nil {
		fail(err)
	}
	rep, err := w.RunChurn()
	if err != nil {
		fail(err)
	}
	fmt.Printf("topology: %d ASes, %d links, %d prefixes\n",
		w.Graph.NumASes(), w.Graph.NumLinks(), len(w.AllPrefixes()))
	fmt.Printf("churn: %d re-announcements, %d retags, %d RTBH episodes, %d IXP-tagged\n",
		rep.Reannouncements, rep.Retagged, len(rep.RTBH), rep.IXPTagged)

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}

	relPath := filepath.Join(*out, "as-rel.txt")
	rf, err := os.Create(relPath)
	if err != nil {
		fail(err)
	}
	if err := topo.WriteCAIDA(rf, w.Graph); err != nil {
		fail(err)
	}
	rf.Close()
	fmt.Println("wrote", relPath)

	for _, c := range w.Collectors {
		upath := filepath.Join(*out, fmt.Sprintf("updates.%s.mrt", c.Name))
		uf, err := os.Create(upath)
		if err != nil {
			fail(err)
		}
		n, err := c.WriteUpdatesMRT(uf)
		uf.Close()
		if err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%d records)\n", upath, n)

		rpath := filepath.Join(*out, fmt.Sprintf("rib.%s.mrt", c.Name))
		rff, err := os.Create(rpath)
		if err != nil {
			fail(err)
		}
		n, err = c.WriteRIBSnapshotMRT(rff, gen.BaseTime.AddDate(0, 1, 0))
		rff.Close()
		if err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%d records)\n", rpath, n)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "genesis:", err)
	os.Exit(1)
}
