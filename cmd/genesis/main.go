// Command genesis builds a synthetic Internet (topology, policies, IXPs,
// collectors), simulates a month of routing churn, and writes the
// resulting measurement artifacts:
//
//	<out>/as-rel.txt            CAIDA serial-1 relationships
//	<out>/updates.<name>.mrt    per-collector BGP4MP update archives
//	<out>/rib.<name>.mrt        per-collector TABLE_DUMP_V2 snapshots
//
// Usage:
//
//	genesis -scale small -seed 1 -out ./data
//	genesis -scale internet -workers 8 -out ./data
//	genesis -sample-rel as-rel.txt -sample-size 5000 -out ./data
//
// -workers selects the simulation engine parallelism: 0 or 1 the serial
// FIFO engine; >1 the delta-driven parallel engine with that many
// workers; a negative value the parallel engine with one worker per
// CPU. -engine pins a specific engine (serial, rounds, delta). The
// parallel engines are deterministic under a fixed seed with identical
// output for any worker count.
//
// -sample-rel switches to sampler mode: read a CAIDA serial-1
// relationship file (real data or a previous genesis export), apply the
// degree-preserving sampler (topo.Sample) down to -sample-size ASes,
// and write the sampled as-rel.txt — the bridge from real 63k-AS
// relationship dumps to worlds the simulator converges quickly.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"bgpworms/internal/gen"
	"bgpworms/internal/topo"
)

func main() {
	scale := flag.String("scale", "small", "internet scale: "+strings.Join(gen.PresetNames(), "|"))
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "data", "output directory")
	workers := flag.Int("workers", 0, "simulation engine workers (0 or 1 = serial; >1 = parallel delta; <0 = parallel delta, one worker per CPU)")
	engine := flag.String("engine", "auto", "simulation engine: auto|serial|rounds|delta")
	sampleRel := flag.String("sample-rel", "", "sampler mode: CAIDA serial-1 relationship file to downsample (skips world building)")
	sampleSize := flag.Int("sample-size", 5000, "sampler mode: target AS count")
	flag.Parse()

	if *sampleRel != "" {
		if err := runSample(*sampleRel, *sampleSize, *seed, *out); err != nil {
			fail(err)
		}
		return
	}

	p, err := gen.Preset(*scale)
	if err != nil {
		fail(err)
	}
	p.Seed = *seed
	p.Workers = *workers
	p.Engine = *engine

	fmt.Printf("building %s internet (seed %d)...\n", *scale, *seed)
	w, err := gen.Build(p)
	if err != nil {
		fail(err)
	}
	rep, err := w.RunChurn()
	if err != nil {
		fail(err)
	}
	fmt.Printf("topology: %d ASes, %d links, %d prefixes\n",
		w.Graph.NumASes(), w.Graph.NumLinks(), len(w.AllPrefixes()))
	fmt.Printf("churn: %d re-announcements, %d retags, %d RTBH episodes, %d IXP-tagged\n",
		rep.Reannouncements, rep.Retagged, len(rep.RTBH), rep.IXPTagged)

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}

	relPath := filepath.Join(*out, "as-rel.txt")
	rf, err := os.Create(relPath)
	if err != nil {
		fail(err)
	}
	if err := topo.WriteCAIDA(rf, w.Graph); err != nil {
		fail(err)
	}
	rf.Close()
	fmt.Println("wrote", relPath)

	for _, c := range w.Collectors {
		upath := filepath.Join(*out, fmt.Sprintf("updates.%s.mrt", c.Name))
		uf, err := os.Create(upath)
		if err != nil {
			fail(err)
		}
		n, err := c.WriteUpdatesMRT(uf)
		uf.Close()
		if err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%d records)\n", upath, n)

		rpath := filepath.Join(*out, fmt.Sprintf("rib.%s.mrt", c.Name))
		rff, err := os.Create(rpath)
		if err != nil {
			fail(err)
		}
		n, err = c.WriteRIBSnapshotMRT(rff, gen.BaseTime.AddDate(0, 1, 0))
		rff.Close()
		if err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%d records)\n", rpath, n)
	}
}

// runSample reads a serial-1 relationship file, downsamples it with the
// degree-preserving sampler, and writes the sampled as-rel.txt.
func runSample(relPath string, size int, seed int64, out string) error {
	f, err := os.Open(relPath)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := topo.ReadCAIDA(f)
	if err != nil {
		return err
	}
	s := topo.Sample(g, size, seed)
	fmt.Printf("sampled %d ASes / %d links down to %d ASes / %d links\n",
		g.NumASes(), g.NumLinks(), s.NumASes(), s.NumLinks())
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	outPath := filepath.Join(out, "as-rel.txt")
	of, err := os.Create(outPath)
	if err != nil {
		return err
	}
	defer of.Close()
	if err := topo.WriteCAIDA(of, s); err != nil {
		return err
	}
	fmt.Println("wrote", outPath)
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "genesis:", err)
	os.Exit(1)
}
