// Command commdict infers per-AS community dictionaries from an update
// source and prints them with usage classes — the CLI face of
// internal/semantics.
//
// Two feed modes:
//
//	commdict -mrt dir|file.mrt          infer from MRT update archives
//	commdict -scenario rtbh             replay a registered attack
//	                                    scenario and score the inferred
//	                                    dictionary against the world's
//	                                    ground truth
//
// Examples:
//
//	genesis -scale tiny -out /tmp/gdata
//	commdict -mrt /tmp/gdata                  # whole dictionary
//	commdict -mrt /tmp/gdata -asn 1003        # one AS's vocabulary
//	commdict -scenario blackhole-squatting    # inference vs ground truth
//	commdict -mrt /tmp/gdata -json | jq .
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	_ "bgpworms/internal/attack" // registers the builtin scenarios
	"bgpworms/internal/core"
	"bgpworms/internal/gen"
	"bgpworms/internal/scenario"
	"bgpworms/internal/semantics"
	"bgpworms/internal/watch"
)

func main() {
	var (
		mrtPath = flag.String("mrt", "", "MRT update archive to infer from (file, or dir of updates.*.mrt)")
		scen    = flag.String("scenario", "", "replay a registered attack scenario and score inference against ground truth")
		scale   = flag.String("scale", "", "gen preset for -scenario (tiny, small, medium; default tiny)")
		seed    = flag.Int64("seed", 0, "generator seed for -scenario (default 1)")
		workers = flag.Int("workers", 0, "inference workers (0 = one per CPU)")
		asn     = flag.Int("asn", -1, "print only this AS's dictionary")
		asJSON  = flag.Bool("json", false, "emit JSON instead of tables")
	)
	flag.Parse()

	switch {
	case *scen != "" && *mrtPath != "":
		fail(fmt.Errorf("-mrt and -scenario are exclusive"))
	case *scen != "":
		runScenario(*scen, *scale, *seed, *workers, *asn, *asJSON)
	case *mrtPath != "":
		runMRT(*mrtPath, *workers, *asn, *asJSON)
	default:
		fail(fmt.Errorf("need -mrt or -scenario (see -h)"))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "commdict:", err)
	os.Exit(1)
}

// jsonPayload is the -json output shape.
type jsonPayload struct {
	Stats   semantics.Stats       `json:"stats"`
	Score   *semantics.Score      `json:"score,omitempty"`
	Entries []*semantics.Entry    `json:"entries"`
	Eval    *watch.DictEvalReport `json:"eval,omitempty"`
}

func emit(snap *semantics.Snapshot, stats semantics.Stats, rep *watch.DictEvalReport, asn int, asJSON bool) {
	if asJSON {
		payload := jsonPayload{Stats: stats, Eval: rep}
		if rep != nil {
			payload.Score = &rep.Score
		}
		if asn >= 0 {
			payload.Entries = snap.AS(uint16(asn))
		} else {
			payload.Entries = snap.Entries()
		}
		b, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			fail(err)
		}
		fmt.Println(string(b))
		return
	}
	fmt.Print(semantics.RenderDictionary(snap, asn))
	if rep != nil {
		fmt.Println()
		fmt.Print(watch.RenderDictEval(rep))
	}
}

func runScenario(name, scale string, seed int64, workers, asn int, asJSON bool) {
	ctx := &scenario.Context{}
	if scale != "" {
		p, err := gen.Preset(scale)
		if err != nil {
			fail(err)
		}
		ctx.Gen = p
	}
	if seed != 0 {
		if ctx.Gen.Stubs == 0 {
			ctx.Gen, _ = gen.Preset(scenario.DefaultScale)
		}
		ctx.Gen.Seed = seed
	}
	rep, snap, err := watch.EvalDictionaryScenario(name, ctx, semantics.Config{Workers: workers})
	if err != nil {
		fail(err)
	}
	emit(snap, rep.Stats, rep, asn, asJSON)
}

func runMRT(path string, workers, asn int, asJSON bool) {
	paths, err := mrtInputs(path)
	if err != nil {
		fail(err)
	}
	eng := semantics.NewEngine(semantics.Config{Workers: workers})
	defer eng.Close()
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			fail(err)
		}
		_, err = core.StreamMRTUpdates("mrt", filepath.Base(p), f, func(u *core.Update) error {
			if u.Withdraw {
				return nil
			}
			eng.Ingest(semantics.Observation{
				Time: u.Time, PeerAS: u.PeerAS, Prefix: u.Prefix,
				ASPath: u.ASPath, Communities: u.Communities,
			})
			return nil
		})
		f.Close()
		if err != nil {
			fail(fmt.Errorf("%s: %w", p, err))
		}
	}
	emit(eng.Snapshot(), eng.Stats(), nil, asn, asJSON)
}

// mrtInputs expands the -mrt argument into concrete archive paths.
func mrtInputs(path string) ([]string, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return []string{path}, nil
	}
	paths, err := filepath.Glob(filepath.Join(path, "updates.*.mrt"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no updates.*.mrt files in %s", path)
	}
	sort.Strings(paths)
	return paths, nil
}
