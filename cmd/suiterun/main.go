// Command suiterun executes declarative scenario suites (suites/*.json)
// and applies their statistical release gates: multi-seed detector
// quality thresholds, cross-seed variance bounds, and Table-3 outcome
// checks. It emits suite_report.json (byte-stable across reruns and
// worker counts) plus provenance.json, and doubles as the paired A/B
// judge two detector configurations are compared under.
//
// Gate a release:
//
//	suiterun -suite suites/release.json
//
// Prove a detector change (the detector-PR workflow):
//
//	suiterun -suite suites/release.json -out old/                      # baseline arm
//	suiterun -suite suites/release.json -dict -arm new -out new/       # candidate arm
//	suiterun -ab old/suite_report.json,new/suite_report.json
//
// Exit status: 0 when every gate passes (or the A/B verdict is
// accept), 1 on gate breach or reject, 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"bgpworms/internal/obs"
	"bgpworms/internal/suite"
)

func main() {
	var (
		suitePath = flag.String("suite", "", "suite file to run (suites/*.json)")
		jsonOut   = flag.Bool("json", false, "print the machine-readable report instead of tables")
		outDir    = flag.String("out", ".", "directory for suite_report.json + provenance.json (empty: don't write)")
		workers   = flag.Int("workers", 0, "harness workers (0: one per CPU; reports are identical for any value)")
		armName   = flag.String("arm", "", "label for the detector arm under test")
		detectors = flag.String("detectors", "", "comma-separated detector names overriding the suite's arm")
		dict      = flag.Bool("dict", false, "train per-(scale,seed) dictionaries and enable the dictionary-aware detectors")
		ab        = flag.String("ab", "", "old.json,new.json: compare two suite reports with the paired decision rule")
		traceOut  = flag.String("trace", "", "write a JSON span trace of the run (per-cell build/eval breakdown)")
		verbose   = flag.Bool("v", false, "report per-cell progress on stderr and print the span summary")
		recallTol = flag.Float64("recall-tol", 0, "A/B: tolerated per-cell recall drop")
		precTol   = flag.Float64("precision-tol", 0, "A/B: tolerated per-cell precision drop")
		noiseTol  = flag.Int("noise-tol", 0, "A/B: tolerated per-cell noise-alert increase")
		updateBL  = flag.Bool("update-baseline", false, "record this run as <suite>.baseline.json for future paired comparisons")
	)
	flag.Parse()

	if *ab != "" {
		os.Exit(runAB(*ab, suite.ABOptions{
			RecallTolerance:    *recallTol,
			PrecisionTolerance: *precTol,
			NoiseTolerance:     *noiseTol,
		}, *jsonOut))
	}
	if *suitePath == "" {
		fmt.Fprintln(os.Stderr, "usage: suiterun -suite suites/release.json | suiterun -ab old.json,new.json")
		flag.PrintDefaults()
		os.Exit(2)
	}

	data, err := os.ReadFile(*suitePath)
	if err != nil {
		fatal(err)
	}
	s, err := suite.Parse(data)
	if err != nil {
		fatal(err)
	}
	// The trace is always collected: it is cheap, and provenance.json
	// carries the per-cell span breakdown whether or not -trace asked
	// for a standalone file.
	tr := obs.NewTrace("suiterun " + s.Name)
	opt := suite.Options{Workers: *workers, Trace: tr}
	if *verbose {
		var mu sync.Mutex
		opt.Progress = func(done, total int, c *suite.CellResult, d time.Duration) {
			mu.Lock()
			defer mu.Unlock()
			fmt.Fprintf(os.Stderr, "[%d/%d] %s (%v)\n", done, total, c.Key, d.Round(time.Millisecond))
		}
	}
	if *detectors != "" || *dict {
		arm := &suite.Arm{Name: *armName, Dict: *dict}
		if *detectors != "" {
			arm.Detectors = strings.Split(*detectors, ",")
		}
		opt.Arm = arm
	} else if *armName != "" && s.Arm != nil {
		s.Arm.Name = *armName
	}

	start := time.Now()
	rep, err := suite.Run(s, opt)
	if err != nil {
		fatal(err)
	}
	prov := suite.NewProvenance(s, *suitePath, data, rep, *workers, time.Since(start))
	prov.Spans = tr.Records()
	if *traceOut != "" {
		if err := tr.WriteFile(*traceOut); err != nil {
			fatal(err)
		}
	}
	if *verbose {
		fmt.Fprint(os.Stderr, tr.Summary())
	}
	if rep.SnapshotBuilds > 0 {
		fmt.Fprintf(os.Stderr, "warm worlds: %d built, %d cell runs forked\n",
			rep.SnapshotBuilds, rep.SnapshotForks)
	}

	if *outDir != "" {
		if err := writeJSON(filepath.Join(*outDir, "suite_report.json"), rep); err != nil {
			fatal(err)
		}
		if err := writeJSON(filepath.Join(*outDir, "provenance.json"), prov); err != nil {
			fatal(err)
		}
	}
	if *updateBL {
		bl := baselinePath(*suitePath)
		if err := writeJSON(bl, rep); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "baseline recorded: %s\n", bl)
	} else if old, err := loadReport(baselinePath(*suitePath)); err == nil {
		// A recorded baseline makes every run a paired comparison for
		// free — informational here; -ab gates explicitly.
		if abRep, err := suite.Compare(old, rep, suite.ABOptions{}); err == nil {
			fmt.Fprintf(os.Stderr, "vs baseline %s: %s\n", baselinePath(*suitePath),
				verdict(abRep.Accept))
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	} else {
		fmt.Print(suite.Render(rep))
	}
	if !rep.Pass {
		os.Exit(1)
	}
}

func runAB(spec string, opt suite.ABOptions, jsonOut bool) int {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		fmt.Fprintln(os.Stderr, "-ab wants exactly old.json,new.json")
		return 2
	}
	old, err := loadReport(parts[0])
	if err != nil {
		fatal(err)
	}
	new, err := loadReport(parts[1])
	if err != nil {
		fatal(err)
	}
	rep, err := suite.Compare(old, new, opt)
	if err != nil {
		fatal(err)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	} else {
		fmt.Print(suite.RenderAB(rep))
	}
	if !rep.Accept {
		return 1
	}
	return 0
}

func baselinePath(suitePath string) string {
	return strings.TrimSuffix(suitePath, ".json") + ".baseline.json"
}

func loadReport(path string) (*suite.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep suite.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func verdict(ok bool) string {
	if ok {
		return "ACCEPT (no quality loss, noise sign test held)"
	}
	return "REJECT"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "suiterun:", err)
	os.Exit(2)
}
