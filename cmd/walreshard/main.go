// Command walreshard changes a wormwatchd fleet's shape offline: it
// scatters N per-shard durability directories (WAL segments plus
// checkpoints) into M new directories by re-evaluating prefix-range
// ownership per record, preserving global sequence numbers. The
// resharded fleet serves a merged /alerts surface byte-identical to
// the old one — no feed replay required.
//
// Usage:
//
//	walreshard -from wal-a,wal-b -to wal-0,wal-1,wal-2
//
// Stop every source shard first (a graceful shutdown writes the final
// checkpoint each source needs); boot the new fleet with
// -shards M -shard-index k pointing at the matching destination.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bgpworms/internal/durable"
	"bgpworms/internal/serve"
)

func main() {
	var (
		from         = flag.String("from", "", "comma-separated source shard directories, in old shard-index order")
		to           = flag.String("to", "", "comma-separated destination shard directories, in new shard-index order")
		segmentBytes = flag.Int64("segment-bytes", 0, "destination WAL segment rotation threshold (0 = default)")
		quiet        = flag.Bool("q", false, "suppress the per-destination report")
	)
	flag.Parse()
	srcs := splitDirs(*from)
	dsts := splitDirs(*to)
	if len(srcs) == 0 || len(dsts) == 0 {
		fmt.Fprintln(os.Stderr, "walreshard: both -from and -to need at least one directory")
		flag.Usage()
		os.Exit(2)
	}
	if err := durable.ValidateDirs(srcs); err != nil {
		fmt.Fprintf(os.Stderr, "walreshard: %v\n", err)
		os.Exit(1)
	}
	// The new fleet's ownership function: the same RangeMap every shard
	// daemon and the frontend compute from the destination shard count.
	rm := serve.NewRangeMap(len(dsts))
	rep, err := durable.Reshard(durable.ReshardOptions{
		SrcDirs:      srcs,
		DstDirs:      dsts,
		Owner:        rm.Owner,
		SegmentBytes: *segmentBytes,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "walreshard: %v\n", err)
		os.Exit(1)
	}
	if *quiet {
		return
	}
	fmt.Printf("resharded %d -> %d shards: %d records (%d checkpoint-covered dropped, %d cross-shard duplicates collapsed)\n",
		len(srcs), len(dsts), rep.Records, rep.Covered, rep.Duplicates)
	if rep.CheckpointSeq > 0 {
		fmt.Printf("destination checkpoints cover seq %d\n", rep.CheckpointSeq)
	} else {
		fmt.Println("no source checkpoints; destinations recover by full WAL replay")
	}
	for i, n := range rep.PerDst {
		fmt.Printf("  shard %d  %-24s %d records\n", i, dsts[i], n)
	}
}

// splitDirs parses a comma-separated directory list, dropping empty
// elements so a trailing comma is harmless.
func splitDirs(s string) []string {
	var out []string
	for _, d := range strings.Split(s, ",") {
		if d = strings.TrimSpace(d); d != "" {
			out = append(out, d)
		}
	}
	return out
}
