// Command attacklab runs the paper's active experiments (§6–§7) against a
// synthetic Internet: the vendor lab matrix, benign-community propagation
// checks, the Table 3 scenario × hijack matrix, and the §7.6 automated
// blackhole-community sweep.
//
// Usage:
//
//	attacklab -scale small -vps 48
package main

import (
	"flag"
	"fmt"
	"os"

	"bgpworms/internal/attack"
	"bgpworms/internal/bgp"
	"bgpworms/internal/gen"
	"bgpworms/internal/netx"
	"bgpworms/internal/policy"
	"bgpworms/internal/router"
	"bgpworms/internal/stats"
	"bgpworms/internal/topo"
)

func main() {
	scale := flag.String("scale", "small", "internet scale: tiny|small|medium")
	seed := flag.Int64("seed", 1, "generator seed")
	vps := flag.Int("vps", 48, "atlas vantage points")
	verbose := flag.Bool("v", false, "print per-scenario evidence")
	flag.Parse()

	var p gen.Params
	switch *scale {
	case "tiny":
		p = gen.Tiny()
	case "small":
		p = gen.Small()
	case "medium":
		p = gen.Medium()
	default:
		fail(fmt.Errorf("unknown scale %q", *scale))
	}
	p.Seed = *seed

	fmt.Println("== §6.1: vendor lab matrix ==")
	fmt.Println(vendorMatrix())

	fmt.Printf("building lab (%s internet, %d VPs)...\n\n", *scale, *vps)
	lab, err := attack.NewLab(p, *vps)
	if err != nil {
		fail(err)
	}

	fmt.Println("== §7.2: benign community propagation ==")
	var reps []*attack.PropagationReport
	for _, inj := range []*attack.Injector{lab.Research, lab.Peering} {
		r, err := lab.PropagationCheck(inj)
		if err != nil {
			fail(err)
		}
		reps = append(reps, r)
	}
	fmt.Println(attack.RenderPropagation(reps))

	fmt.Println("== Table 3: attack matrix ==")
	results, err := lab.Table3()
	if err != nil {
		fail(err)
	}
	fmt.Println(attack.RenderTable3(results))
	if *verbose {
		for _, r := range results {
			fmt.Printf("-- %s (hijack=%v, success=%v)\n", r.Scenario, r.Hijack, r.Success)
			for _, e := range r.Evidence {
				fmt.Println("   ", e)
			}
			for _, i := range r.Insights {
				fmt.Println("    insight:", i)
			}
		}
		fmt.Println()
	}

	fmt.Println("== §7.6: automated blackhole community sweep ==")
	sweep, err := lab.BlackholeSweep(lab.W.Registry.All())
	if err != nil {
		fail(err)
	}
	fmt.Println(attack.RenderSweep(sweep))
	if *verbose {
		for _, e := range sweep.InducingCommunities() {
			fmt.Printf("  %s: %d VPs lost, target on %d traces, hop distances %v\n",
				e.Community, len(e.LostVPs), e.TargetOnPath, e.HopDistances)
		}
	}
}

// vendorMatrix reproduces the §6.1 default-behaviour findings as a table.
func vendorMatrix() string {
	pfx := netx.MustPrefix("203.0.113.0/24")
	t := stats.NewTable("Vendor", "send-community", "communities forwarded")
	for _, vendor := range []router.Vendor{router.VendorJuniper, router.VendorCisco} {
		for _, send := range []bool{false, true} {
			cfg := router.Config{ASN: 65001, Vendor: vendor}
			if send {
				cfg.SendCommunity = map[topo.ASN]bool{64501: true}
			}
			r := router.New(cfg)
			r.AddNeighbor(64500, topo.RelCustomer)
			r.AddNeighbor(64501, topo.RelCustomer)
			in := policy.NewLocalRoute(pfx)
			in.ASPath = bgp.Path(64500, 1)
			in.Communities = bgp.NewCommunitySet(bgp.C(7, 7))
			r.ReceiveUpdate(64500, in)
			out, _ := r.ExportTo(64501, pfx)
			name := "Juniper"
			if vendor == router.VendorCisco {
				name = "Cisco"
			}
			t.Row(name, send, out != nil && out.Communities.Has(bgp.C(7, 7)))
		}
	}
	return t.String()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "attacklab:", err)
	os.Exit(1)
}
