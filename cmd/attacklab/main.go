// Command attacklab is the CLI over the attack-scenario registry
// (internal/scenario). It can catalog the registered scenarios, run one
// scenario with typed parameters, sweep a scenario grid over a parallel
// harness, or reproduce the paper's full §6–§7 report.
//
// Usage:
//
//	attacklab                         # full §6–§7 report (vendor matrix, §7.2, Table 3, §7.6)
//	attacklab -list [-json]           # scenario catalog
//	attacklab -run rtbh -p hijack=true [-json]
//	attacklab -sweep -scenarios rtbh,blackhole-sweep -seeds 1,2,3 \
//	          -engine-workers 1,8 -sets verified,all -workers 8 [-json]
//
// Sweep output is bit-identical for any -workers value: cells land at
// their grid index and the fold runs in grid order.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"bgpworms/internal/attack"
	"bgpworms/internal/bgp"
	"bgpworms/internal/gen"
	"bgpworms/internal/netx"
	"bgpworms/internal/obs"
	"bgpworms/internal/policy"
	"bgpworms/internal/router"
	"bgpworms/internal/scenario"
	"bgpworms/internal/stats"
	"bgpworms/internal/topo"
)

// multiFlag collects repeated -p k=v arguments.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var (
		list   = flag.Bool("list", false, "print the scenario catalog and exit")
		run    = flag.String("run", "", "run one registered scenario by name")
		sweep  = flag.Bool("sweep", false, "sweep a scenario grid (see -scenarios/-scales/-seeds/-engine-workers/-sets)")
		asJSON = flag.Bool("json", false, "emit JSON instead of tables")

		scale = flag.String("scale", "small", "internet scale: "+strings.Join(gen.PresetNames(), "|")+" (single run / full report)")
		seed  = flag.Int64("seed", 1, "generator seed (single run / full report)")
		eng   = flag.String("engine", "auto", "simnet engine: auto|serial|rounds|delta (single run / full report)")
		vps   = flag.Int("vps", 48, "atlas vantage points")
		set   = flag.String("set", "verified", "community set for candidate-driven scenarios: verified|likely|all")

		scenarios     = flag.String("scenarios", "", "sweep: comma-separated scenario names (empty = all)")
		scales        = flag.String("scales", "tiny", "sweep: comma-separated scales")
		seeds         = flag.String("seeds", "1", "sweep: comma-separated generator seeds")
		engineWorkers = flag.String("engine-workers", "1", "sweep: comma-separated simnet engine worker counts per cell")
		engines       = flag.String("engines", "auto", "sweep: comma-separated simnet engines (auto|serial|rounds|delta)")
		sets          = flag.String("sets", "verified", "sweep: comma-separated community sets")
		workers       = flag.Int("workers", 0, "sweep harness worker pool (0 = one per CPU)")
		cold          = flag.Bool("cold", false, "sweep: build every cell's world from scratch instead of forking warm snapshots (bisection/benchmark escape hatch)")

		traceOut = flag.String("trace", "", "sweep: write a JSON span trace with one span per grid cell")
		verbose  = flag.Bool("v", false, "print per-scenario evidence (sweep: per-cell progress on stderr)")
		params   multiFlag
	)
	flag.Var(&params, "p", "scenario parameter as name=value (repeatable)")
	flag.Parse()

	switch {
	case *list:
		runList(*asJSON)
	case *run != "":
		runOne(*run, *scale, *eng, *seed, *vps, *set, params, *asJSON, *verbose)
	case *sweep:
		runSweep(*scenarios, *scales, *seeds, *engineWorkers, *engines, *sets, *vps, *workers, *cold, params, *asJSON, *traceOut, *verbose)
	default:
		fullReport(*scale, *eng, *seed, *vps, *verbose)
	}
}

func runList(asJSON bool) {
	all := scenario.All()
	if asJSON {
		emitJSON(all)
		return
	}
	fmt.Println(scenario.RenderCatalog(all))
}

func runOne(name, scale, engine string, seed int64, vps int, set string, params multiFlag, asJSON, verbose bool) {
	p, err := gen.Preset(scale)
	if err != nil {
		fail(err)
	}
	p.Seed = seed
	p.Engine = engine
	ctx := &scenario.Context{Gen: p, VPs: vps, CommunitySet: set, Values: parseParams(params)}
	res, err := scenario.Run(name, ctx)
	if err != nil {
		fail(err)
	}
	if asJSON {
		emitJSON(res)
		return
	}
	fmt.Println(attack.RenderTable3([]*attack.Result{res}))
	if verbose {
		printEvidence(res)
	}
}

func runSweep(scenarios, scales, seeds, engineWorkers, engines, sets string, vps, workers int, cold bool, params multiFlag, asJSON bool, traceOut string, verbose bool) {
	g := scenario.Grid{
		Scenarios:     splitList(scenarios),
		Scales:        splitList(scales),
		Engines:       splitList(engines),
		CommunitySets: splitList(sets),
		VPs:           vps,
		Values:        parseParams(params),
		Cold:          cold,
	}
	for _, s := range splitList(seeds) {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			fail(fmt.Errorf("bad -seeds entry %q: %w", s, err))
		}
		g.Seeds = append(g.Seeds, n)
	}
	for _, s := range splitList(engineWorkers) {
		n, err := strconv.Atoi(s)
		if err != nil {
			fail(fmt.Errorf("bad -engine-workers entry %q: %w", s, err))
		}
		g.EngineWorkers = append(g.EngineWorkers, n)
	}
	var opt scenario.SweepOpt
	if traceOut != "" {
		opt.Trace = obs.NewTrace("attacklab sweep")
	}
	if verbose {
		var mu sync.Mutex
		opt.Progress = func(done, total int, c *scenario.Cell, d time.Duration) {
			mu.Lock()
			defer mu.Unlock()
			fmt.Fprintf(os.Stderr, "[%d/%d] %s/%s seed=%d (%v)\n",
				done, total, c.Scenario, c.Scale, c.Seed, d.Round(time.Millisecond))
		}
	}
	rep, err := scenario.SweepOpts(g, workers, opt)
	if err != nil {
		fail(err)
	}
	if traceOut != "" {
		if err := opt.Trace.WriteFile(traceOut); err != nil {
			fail(err)
		}
	}
	if asJSON {
		emitJSON(rep)
		return
	}
	fmt.Println(scenario.RenderSweep(rep))
	if rep.SnapshotBuilds > 0 {
		fmt.Printf("warm worlds: %d built, %d cell runs forked\n", rep.SnapshotBuilds, rep.SnapshotForks)
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseParams(params multiFlag) scenario.Values {
	if len(params) == 0 {
		return nil
	}
	v := scenario.Values{}
	for _, kv := range params {
		name, val, ok := strings.Cut(kv, "=")
		if !ok {
			fail(fmt.Errorf("bad -p %q: want name=value", kv))
		}
		v[name] = val
	}
	return v
}

func printEvidence(res *attack.Result) {
	fmt.Printf("-- %s (hijack=%v, success=%v)\n", res.Scenario, res.Hijack, res.Success)
	for _, e := range res.Evidence {
		fmt.Println("   ", e)
	}
	for _, i := range res.Insights {
		fmt.Println("    insight:", i)
	}
	fmt.Println()
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fail(err)
	}
}

// fullReport reproduces the paper's §6–§7 narrative end to end on one
// lab, exactly as the pre-registry attacklab did.
func fullReport(scale, engine string, seed int64, vps int, verbose bool) {
	p, err := gen.Preset(scale)
	if err != nil {
		fail(err)
	}
	p.Seed = seed
	p.Engine = engine

	fmt.Println("== §6.1: vendor lab matrix ==")
	fmt.Println(vendorMatrix())

	fmt.Printf("building lab (%s internet, %d VPs)...\n\n", scale, vps)
	lab, err := attack.NewLab(p, vps)
	if err != nil {
		fail(err)
	}

	fmt.Println("== §7.2: benign community propagation ==")
	var reps []*attack.PropagationReport
	for _, inj := range []*attack.Injector{lab.Research, lab.Peering} {
		r, err := lab.PropagationCheck(inj)
		if err != nil {
			fail(err)
		}
		reps = append(reps, r)
	}
	fmt.Println(attack.RenderPropagation(reps))

	fmt.Println("== Table 3: attack matrix ==")
	results, err := lab.Table3()
	if err != nil {
		fail(err)
	}
	fmt.Println(attack.RenderTable3(results))
	if verbose {
		for _, r := range results {
			printEvidence(r)
		}
	}

	fmt.Println("== §7.6: automated blackhole community sweep ==")
	sweep, err := lab.BlackholeSweep(lab.W.Registry.All())
	if err != nil {
		fail(err)
	}
	fmt.Println(attack.RenderSweep(sweep))
	if verbose {
		for _, e := range sweep.InducingCommunities() {
			fmt.Printf("  %s: %d VPs lost, target on %d traces, hop distances %v\n",
				e.Community, len(e.LostVPs), e.TargetOnPath, e.HopDistances)
		}
	}
}

// vendorMatrix reproduces the §6.1 default-behaviour findings as a table.
func vendorMatrix() string {
	pfx := netx.MustPrefix("203.0.113.0/24")
	t := stats.NewTable("Vendor", "send-community", "communities forwarded")
	for _, vendor := range []router.Vendor{router.VendorJuniper, router.VendorCisco} {
		for _, send := range []bool{false, true} {
			cfg := router.Config{ASN: 65001, Vendor: vendor}
			if send {
				cfg.SendCommunity = map[topo.ASN]bool{64501: true}
			}
			r := router.New(cfg)
			r.AddNeighbor(64500, topo.RelCustomer)
			r.AddNeighbor(64501, topo.RelCustomer)
			in := policy.NewLocalRoute(pfx)
			in.ASPath = bgp.Path(64500, 1)
			in.Communities = bgp.NewCommunitySet(bgp.C(7, 7))
			r.ReceiveUpdate(64500, in)
			out, _ := r.ExportTo(64501, pfx)
			name := "Juniper"
			if vendor == router.VendorCisco {
				name = "Cisco"
			}
			t.Row(name, send, out != nil && out.Communities.Has(bgp.C(7, 7)))
		}
	}
	return t.String()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "attacklab:", err)
	os.Exit(1)
}
