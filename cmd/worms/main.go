// Command worms runs the paper's §4 measurement pipeline and prints every
// table and figure of the passive analysis: Table 1, Table 2, Figure 3,
// Figures 4a/4b, Figures 5a/5b/5c, the §4.3 transit-propagator count, and
// the Figure 6 filter inference.
//
// By default it generates a synthetic Internet in memory. With -mrt it
// instead consumes the MRT archives written by genesis, exercising the
// same wire-format path the paper's pipeline used.
//
// Usage:
//
//	worms -scale small
//	genesis -scale small -out data && worms -mrt data
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"bgpworms/internal/bgp"
	"bgpworms/internal/core"
	"bgpworms/internal/gen"
	"bgpworms/internal/stats"
)

func main() {
	scale := flag.String("scale", "small", "internet scale: tiny|small|medium")
	seed := flag.Int64("seed", 1, "generator seed")
	mrtDir := flag.String("mrt", "", "read updates.*.mrt archives from this directory instead of simulating")
	years := flag.Bool("evolution", true, "compute the Figure 3 time series (builds one Internet per year)")
	flag.Parse()

	var (
		ds        *core.Dataset
		blackhole []bgp.Community
	)
	if *mrtDir != "" {
		var err error
		ds, err = loadMRT(*mrtDir)
		if err != nil {
			fail(err)
		}
	} else {
		w, err := buildWorld(*scale, *seed)
		if err != nil {
			fail(err)
		}
		ds = core.FromCollectors(w.Collectors)
		blackhole = w.Registry.All()
	}

	fmt.Println("== Table 1: dataset overview ==")
	fmt.Println(core.RenderTable1(core.Table1(ds)))

	fmt.Println("== Table 2: ASes with observed communities ==")
	fmt.Println(core.RenderTable2(core.Table2(ds)))

	fmt.Println("== Figure 4a: updates with communities, per collector ==")
	fmt.Println(core.RenderFigure4a(core.Figure4a(ds)))
	fmt.Printf("overall share of announcements with >=1 community: %.1f%%\n\n",
		core.OverallCommunityShare(ds)*100)

	fmt.Println("== Figure 4b: communities and associated ASes per update ==")
	fmt.Println(core.RenderFigure4b(core.ComputeFigure4b(ds)))

	pa := core.AnalyzePropagation(ds, blackhole)
	all, bh := pa.Figure5a()
	fmt.Println("== Figure 5a: propagation distance ECDF (all vs blackholing) ==")
	fmt.Println(core.RenderFigure5a(all, bh))
	fmt.Printf("mean distance: all=%.2f blackholing=%.2f hops\n\n", all.Mean(), bh.Mean())

	fmt.Println("== Figure 5b: relative propagation distance by path length ==")
	fmt.Println(core.RenderFigure5b(pa.Figure5b(3, 10)))

	off, on := pa.Figure5c(10)
	fmt.Println("== Figure 5c: top-10 community values off-path vs on-path ==")
	fmt.Println(core.RenderFigure5c(off, on))

	rep := core.TransitPropagators(ds)
	fmt.Println("== §4.3: transit ASes relaying foreign communities ==")
	fmt.Printf("%d of %d transit ASes (%s) forward received communities onward\n\n",
		rep.Propagators, rep.TransitASes, stats.Pct(rep.Propagators, rep.TransitASes))

	fmt.Println("== Figure 6: community forwarding vs filtering ==")
	fi := core.InferFiltering(ds)
	fmt.Println(core.RenderFilterSummary(fi.Summarize(10)))
	fmt.Println("Figure 6b log-log bins (x=filtered, y=forwarded, count):")
	for _, b := range fi.Hexbin(1, 2) {
		fmt.Printf("  (%.1f, %.1f) -> %d\n", b.X, b.Y, b.Count)
	}
	fmt.Println()

	if *years && *mrtDir == "" {
		fmt.Println("== Figure 3: community use over time ==")
		base := gen.Tiny()
		base.Seed = *seed
		pts, err := gen.Evolution(base, []int{2010, 2012, 2014, 2016, 2018}, func(w *gen.Internet) (int, int, int, int) {
			return core.EvolutionMetrics(core.FromCollectors(w.Collectors))
		})
		if err != nil {
			fail(err)
		}
		t := stats.NewTable("Year", "UniqueASes", "UniqueCommunities", "AbsoluteCommunities", "TableEntries")
		for _, p := range pts {
			t.Row(p.Year, p.UniqueASes, p.UniqueCommunities, p.AbsoluteCommunities, p.TableEntries)
		}
		fmt.Println(t.String())
	}
}

func buildWorld(scale string, seed int64) (*gen.Internet, error) {
	var p gen.Params
	switch scale {
	case "tiny":
		p = gen.Tiny()
	case "small":
		p = gen.Small()
	case "medium":
		p = gen.Medium()
	default:
		return nil, fmt.Errorf("unknown scale %q", scale)
	}
	p.Seed = seed
	w, err := gen.Build(p)
	if err != nil {
		return nil, err
	}
	if _, err := w.RunChurn(); err != nil {
		return nil, err
	}
	return w, nil
}

func loadMRT(dir string) (*core.Dataset, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "updates.*.mrt"))
	if err != nil {
		return nil, err
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("no updates.*.mrt files in %s", dir)
	}
	ds := &core.Dataset{}
	for _, path := range matches {
		name := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(path), "updates."), ".mrt")
		platform := name
		if i := strings.Index(name, "-"); i > 0 {
			platform = name[:i]
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		part, err := core.ReadMRTUpdates(platform, name, f)
		f.Close()
		if err != nil {
			return nil, err
		}
		ds.Merge(part)
	}
	return ds, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "worms:", err)
	os.Exit(1)
}
