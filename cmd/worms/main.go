// Command worms runs the paper's §4 measurement pipeline and prints every
// table and figure of the passive analysis: Table 1, Table 2, Figure 3,
// Figures 4a/4b, Figures 5a/5b/5c, the §4.3 transit-propagator count, and
// the Figure 6 filter inference.
//
// By default it generates a synthetic Internet in memory. With -mrt it
// instead consumes the MRT archives written by genesis, exercising the
// same wire-format path the paper's pipeline used; add -stream to
// classify the byte streams without materializing the update slice.
// -workers sizes the analysis worker pool (0 = one per CPU); analysis
// results are bit-identical for every worker count. When generating, the
// same flag also selects the simulation engine: 0 or 1 keeps the serial
// FIFO engine, while >1 (or any negative value, meaning one worker per
// CPU) runs the round-based parallel engine — deterministic under a
// fixed seed, with identical output for any parallel worker count, but
// the two engines interleave deliveries differently, so their recorded
// update streams are not comparable to each other.
//
// Usage:
//
//	worms -scale small
//	worms -scale small -workers 8
//	genesis -scale small -out data && worms -mrt data -stream
package main

import (
	"flag"
	"fmt"
	"os"

	"strings"

	"bgpworms/internal/bgp"
	"bgpworms/internal/core"
	"bgpworms/internal/gen"
	"bgpworms/internal/obs"
	"bgpworms/internal/stats"
)

func main() {
	scale := flag.String("scale", "small", "internet scale: "+strings.Join(gen.PresetNames(), "|"))
	seed := flag.Int64("seed", 1, "generator seed")
	mrtDir := flag.String("mrt", "", "read updates.*.mrt archives from this directory instead of simulating")
	stream := flag.Bool("stream", false, "with -mrt: stream-classify the archives without materializing updates")
	workers := flag.Int("workers", 0, "analysis worker pool size (0 = one per CPU); simulation engine parallelism when generating")
	engine := flag.String("engine", "auto", "simulation engine: auto|serial|rounds|delta")
	years := flag.Bool("evolution", true, "compute the Figure 3 time series (builds one Internet per year)")
	traceOut := flag.String("trace", "", "write a JSON span trace of the pipeline phases (build/churn/load/analyze/evolution)")
	flag.Parse()

	// tr stays nil without -trace; obs span calls on a nil trace are
	// no-ops, so the pipeline below needs no conditionals.
	var tr *obs.Trace
	if *traceOut != "" {
		tr = obs.NewTrace("worms")
		defer func() {
			if err := tr.WriteFile(*traceOut); err != nil {
				fail(err)
			}
		}()
	}

	if *stream && *mrtDir == "" {
		fail(fmt.Errorf("-stream requires -mrt (there is no byte stream to classify when simulating in memory)"))
	}

	pipe := core.NewPipeline(*workers)

	var (
		ds        *core.Dataset
		blackhole []bgp.Community
	)
	switch {
	case *mrtDir != "" && *stream:
		sp := tr.Start("stream")
		a, err := pipe.StreamMRTDir(*mrtDir, nil)
		sp.End()
		if err != nil {
			fail(err)
		}
		printAnalysis(a)
		return
	case *mrtDir != "":
		sp := tr.Start("load")
		var err error
		ds, err = pipe.LoadMRTDir(*mrtDir)
		sp.End()
		if err != nil {
			fail(err)
		}
	default:
		w, err := buildWorld(*scale, *engine, *seed, *workers, tr)
		if err != nil {
			fail(err)
		}
		ds = core.FromCollectors(w.Collectors)
		blackhole = w.Registry.All()
	}

	sp := tr.Start("analyze")
	a := pipe.Analyze(ds, blackhole)
	sp.End()
	printAnalysis(a)

	if *years && *mrtDir == "" {
		evoSp := tr.Start("evolution")
		defer evoSp.End()
		fmt.Println("== Figure 3: community use over time ==")
		base := gen.Tiny()
		base.Seed = *seed
		base.Workers = *workers
		base.Engine = *engine
		pts, err := gen.Evolution(base, []int{2010, 2012, 2014, 2016, 2018}, func(w *gen.Internet) (int, int, int, int) {
			return pipe.EvolutionMetrics(core.FromCollectors(w.Collectors))
		})
		if err != nil {
			fail(err)
		}
		t := stats.NewTable("Year", "UniqueASes", "UniqueCommunities", "AbsoluteCommunities", "TableEntries")
		for _, p := range pts {
			t.Row(p.Year, p.UniqueASes, p.UniqueCommunities, p.AbsoluteCommunities, p.TableEntries)
		}
		fmt.Println(t.String())
	}
}

func printAnalysis(a *core.Analysis) {
	fmt.Println("== Table 1: dataset overview ==")
	fmt.Println(core.RenderTable1(a.Table1))

	fmt.Println("== Table 2: ASes with observed communities ==")
	fmt.Println(core.RenderTable2(a.Table2))

	fmt.Println("== Figure 4a: updates with communities, per collector ==")
	fmt.Println(core.RenderFigure4a(a.Fig4a))
	fmt.Printf("overall share of announcements with >=1 community: %.1f%%\n\n", a.Share*100)

	fmt.Println("== Figure 4b: communities and associated ASes per update ==")
	fmt.Println(core.RenderFigure4b(a.Fig4b))

	all, bh := a.Prop.Figure5a()
	fmt.Println("== Figure 5a: propagation distance ECDF (all vs blackholing) ==")
	fmt.Println(core.RenderFigure5a(all, bh))
	fmt.Printf("mean distance: all=%.2f blackholing=%.2f hops\n\n", all.Mean(), bh.Mean())

	fmt.Println("== Figure 5b: relative propagation distance by path length ==")
	fmt.Println(core.RenderFigure5b(a.Prop.Figure5b(3, 10)))

	off, on := a.Prop.Figure5c(10)
	fmt.Println("== Figure 5c: top-10 community values off-path vs on-path ==")
	fmt.Println(core.RenderFigure5c(off, on))

	fmt.Println("== §4.3: transit ASes relaying foreign communities ==")
	fmt.Printf("%d of %d transit ASes (%s) forward received communities onward\n\n",
		a.Transit.Propagators, a.Transit.TransitASes, stats.Pct(a.Transit.Propagators, a.Transit.TransitASes))

	fmt.Println("== Figure 6: community forwarding vs filtering ==")
	fmt.Println(core.RenderFilterSummary(a.Filter.Summarize(10)))
	fmt.Println("Figure 6b log-log bins (x=filtered, y=forwarded, count):")
	for _, b := range a.Filter.Hexbin(1, 2) {
		fmt.Printf("  (%.1f, %.1f) -> %d\n", b.X, b.Y, b.Count)
	}
	fmt.Println()
}

func buildWorld(scale, engine string, seed int64, workers int, tr *obs.Trace) (*gen.Internet, error) {
	p, err := gen.Preset(scale)
	if err != nil {
		return nil, err
	}
	p.Seed = seed
	p.Workers = workers
	p.Engine = engine
	sp := tr.Start("build")
	sp.SetAttr("scale", scale)
	w, err := gen.Build(p)
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = tr.Start("churn")
	_, err = w.RunChurn()
	sp.End()
	if err != nil {
		return nil, err
	}
	return w, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "worms:", err)
	os.Exit(1)
}
