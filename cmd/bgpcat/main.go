// Command bgpcat decodes MRT files (BGP4MP update streams and
// TABLE_DUMP_V2 RIB snapshots) to human-readable text, in the spirit of
// bgpdump. Well-known communities render by their RFC names (NO_EXPORT,
// BLACKHOLE, …).
//
// Usage:
//
//	bgpcat file.mrt [file2.mrt ...]
//	genesis -out dir && bgpcat dir/updates.RIS-00.mrt
//	bgpcat -follow live.mrt               # tail a growing archive (^C to stop)
//	bgpcat -community 3356:666 file.mrt   # only routes carrying that community
//	bgpcat -community blackhole file.mrt  # symbolic names work too
//
// With no arguments it reads one stream from stdin. -follow keeps
// reading at end of file, printing records as a live writer appends
// them (tail -f for MRT). -community asn:value prints only announced
// routes (and RIB entries) carrying that community.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"bgpworms/internal/bgp"
	"bgpworms/internal/mrt"
)

func main() {
	follow := flag.Bool("follow", false, "keep reading at EOF, printing records as the file grows")
	poll := flag.Duration("poll", 200*time.Millisecond, "poll interval for -follow")
	commFlag := flag.String("community", "", `only print routes carrying this community ("asn:value" or a well-known name)`)
	flag.Parse()
	args := flag.Args()

	var p printer
	if *commFlag != "" {
		c, err := bgp.ParseCommunity(*commFlag)
		if err != nil {
			fail(err)
		}
		p.filter, p.hasFilter = c, true
	}

	if len(args) == 0 {
		if *follow {
			// A pipe's EOF is final; tailing stdin would spin forever.
			fail(errors.New("-follow tails a file, not stdin"))
		}
		if err := p.dump(os.Stdin, "stdin"); err != nil {
			fail(err)
		}
		return
	}
	if *follow && len(args) > 1 {
		fail(errors.New("-follow tails a single file"))
	}
	for _, path := range args {
		f, err := os.Open(path)
		if err != nil {
			fail(err)
		}
		err = p.dump(stream(f, *follow, *poll), path)
		f.Close()
		if err != nil {
			fail(err)
		}
	}
}

// stream wraps r in a tail reader when following; the tail ends only
// when the process does.
func stream(r io.Reader, follow bool, poll time.Duration) io.Reader {
	if !follow {
		return r
	}
	return mrt.NewTailReader(r, poll)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bgpcat:", err)
	os.Exit(1)
}

// printer renders records, optionally keeping only routes carrying one
// community.
type printer struct {
	filter    bgp.Community
	hasFilter bool
	matched   int
}

func (p *printer) keep(cs bgp.CommunitySet) bool {
	return !p.hasFilter || cs.Has(p.filter)
}

func (p *printer) dump(r io.Reader, name string) error {
	mr := mrt.NewReader(r)
	n := 0
	start := p.matched // per-file delta: matched accumulates across files
	for {
		rec, err := mr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return fmt.Errorf("%s: record %d: %w", name, n, err)
		}
		n++
		p.printRecord(rec, mr.PeerTable())
	}
	if p.hasFilter {
		fmt.Printf("# %s: %d records, %d routes carrying %s\n", name, n, p.matched-start, p.filter.Display())
		return nil
	}
	fmt.Printf("# %s: %d records\n", name, n)
	return nil
}

func (p *printer) printRecord(rec mrt.Record, peers []mrt.PeerEntry) {
	ts := rec.Time().Format("2006-01-02 15:04:05")
	switch m := rec.(type) {
	case *mrt.BGP4MPMessage:
		u, ok := m.Message.(*bgp.Update)
		if !ok {
			if !p.hasFilter {
				fmt.Printf("%s|BGP4MP|AS%d|%s|type=%d\n", ts, m.PeerAS, m.PeerIP, m.Message.Type())
			}
			return
		}
		if p.keep(u.Attrs.Communities) {
			for _, pfx := range u.AllAnnounced() {
				if p.hasFilter {
					p.matched++
				}
				fmt.Printf("%s|A|%s|AS%d|%s|%s|%s|%s\n",
					ts, m.PeerIP, m.PeerAS, pfx, u.Attrs.ASPath, u.Attrs.Origin, u.Attrs.Communities.Display())
			}
		}
		if !p.hasFilter {
			for _, pfx := range u.AllWithdrawn() {
				fmt.Printf("%s|W|%s|AS%d|%s\n", ts, m.PeerIP, m.PeerAS, pfx)
			}
		}
	case *mrt.StateChange:
		if !p.hasFilter {
			fmt.Printf("%s|STATE|AS%d|%s|%d->%d\n", ts, m.PeerAS, m.PeerIP, m.OldState, m.NewState)
		}
	case *mrt.PeerIndexTable:
		if !p.hasFilter {
			fmt.Printf("%s|PEER_INDEX_TABLE|%s|%q|%d peers\n", ts, m.CollectorID, m.ViewName, len(m.Peers))
		}
	case *mrt.RIB:
		for _, e := range m.Entries {
			if !p.keep(e.Attrs.Communities) {
				continue
			}
			if p.hasFilter {
				p.matched++
			}
			peer := fmt.Sprintf("idx%d", e.PeerIndex)
			if int(e.PeerIndex) < len(peers) {
				peer = fmt.Sprintf("AS%d", peers[e.PeerIndex].AS)
			}
			fmt.Printf("%s|TABLE_DUMP_V2|%s|%s|%s|%s\n",
				ts, m.Prefix, peer, e.Attrs.ASPath, e.Attrs.Communities.Display())
		}
	default:
		if !p.hasFilter {
			fmt.Printf("%s|UNKNOWN|type=%d subtype=%d\n", ts, rec.RecordType(), rec.RecordSubtype())
		}
	}
}
