// Command bgpcat decodes MRT files (BGP4MP update streams and
// TABLE_DUMP_V2 RIB snapshots) to human-readable text, in the spirit of
// bgpdump.
//
// Usage:
//
//	bgpcat file.mrt [file2.mrt ...]
//	genesis -out dir && bgpcat dir/updates.RIS-00.mrt
//	bgpcat -follow live.mrt     # tail a growing archive (^C to stop)
//
// With no arguments it reads one stream from stdin. -follow keeps
// reading at end of file, printing records as a live writer appends
// them (tail -f for MRT).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"bgpworms/internal/bgp"
	"bgpworms/internal/mrt"
)

func main() {
	follow := flag.Bool("follow", false, "keep reading at EOF, printing records as the file grows")
	poll := flag.Duration("poll", 200*time.Millisecond, "poll interval for -follow")
	flag.Parse()
	args := flag.Args()

	if len(args) == 0 {
		if *follow {
			// A pipe's EOF is final; tailing stdin would spin forever.
			fail(errors.New("-follow tails a file, not stdin"))
		}
		if err := dump(os.Stdin, "stdin"); err != nil {
			fail(err)
		}
		return
	}
	if *follow && len(args) > 1 {
		fail(errors.New("-follow tails a single file"))
	}
	for _, path := range args {
		f, err := os.Open(path)
		if err != nil {
			fail(err)
		}
		err = dump(stream(f, *follow, *poll), path)
		f.Close()
		if err != nil {
			fail(err)
		}
	}
}

// stream wraps r in a tail reader when following; the tail ends only
// when the process does.
func stream(r io.Reader, follow bool, poll time.Duration) io.Reader {
	if !follow {
		return r
	}
	return mrt.NewTailReader(r, poll)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bgpcat:", err)
	os.Exit(1)
}

func dump(r io.Reader, name string) error {
	mr := mrt.NewReader(r)
	n := 0
	for {
		rec, err := mr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return fmt.Errorf("%s: record %d: %w", name, n, err)
		}
		n++
		printRecord(rec, mr.PeerTable())
	}
	fmt.Printf("# %s: %d records\n", name, n)
	return nil
}

func printRecord(rec mrt.Record, peers []mrt.PeerEntry) {
	ts := rec.Time().Format("2006-01-02 15:04:05")
	switch m := rec.(type) {
	case *mrt.BGP4MPMessage:
		u, ok := m.Message.(*bgp.Update)
		if !ok {
			fmt.Printf("%s|BGP4MP|AS%d|%s|type=%d\n", ts, m.PeerAS, m.PeerIP, m.Message.Type())
			return
		}
		for _, p := range u.AllAnnounced() {
			fmt.Printf("%s|A|%s|AS%d|%s|%s|%s|%s\n",
				ts, m.PeerIP, m.PeerAS, p, u.Attrs.ASPath, u.Attrs.Origin, u.Attrs.Communities)
		}
		for _, p := range u.AllWithdrawn() {
			fmt.Printf("%s|W|%s|AS%d|%s\n", ts, m.PeerIP, m.PeerAS, p)
		}
	case *mrt.StateChange:
		fmt.Printf("%s|STATE|AS%d|%s|%d->%d\n", ts, m.PeerAS, m.PeerIP, m.OldState, m.NewState)
	case *mrt.PeerIndexTable:
		fmt.Printf("%s|PEER_INDEX_TABLE|%s|%q|%d peers\n", ts, m.CollectorID, m.ViewName, len(m.Peers))
	case *mrt.RIB:
		for _, e := range m.Entries {
			peer := fmt.Sprintf("idx%d", e.PeerIndex)
			if int(e.PeerIndex) < len(peers) {
				peer = fmt.Sprintf("AS%d", peers[e.PeerIndex].AS)
			}
			fmt.Printf("%s|TABLE_DUMP_V2|%s|%s|%s|%s\n",
				ts, m.Prefix, peer, e.Attrs.ASPath, e.Attrs.Communities)
		}
	default:
		fmt.Printf("%s|UNKNOWN|type=%d subtype=%d\n", ts, rec.RecordType(), rec.RecordSubtype())
	}
}
