#!/bin/sh
# benchgate.sh — the perf ratchet.
#
#   ci/benchgate.sh              run the gated benchmarks and compare
#                                against ci/bench_baseline.json
#   ci/benchgate.sh -update      re-measure and rewrite the baseline
#   ci/benchgate.sh compare CUR [BASE]
#                                compare two benchjson files directly
#                                (no benchmarks run; used by the tests)
#
# The gate compares ns_per_op and allocs/op for the benchmarks listed
# in GATED below. A regression beyond BENCHGATE_TOLERANCE (default
# 0.15 = 15%) fails; an improvement beyond the same bound passes but
# prints the -update suggestion so the ratchet only moves down on
# purpose. CPU-count suffixes (-8) are stripped, so baselines recorded
# on one machine shape still pair with runs on another.
set -eu

cd "$(dirname "$0")/.."

TOL="${BENCHGATE_TOLERANCE:-0.15}"
BASELINE="ci/bench_baseline.json"
# One canonical representative per subsystem: the delta simulation
# engine, the watch ingest hot loop (bare and with the metrics registry
# attached, bounding the observability tax), the semantics ingest hot
# loop, the obs counter primitive, and the serving-path query fast path
# (mux + cache hit + response copy).
GATED="BenchmarkSimnetEngines/delta/toy BenchmarkWatchIngest BenchmarkWatchIngestWithMetrics BenchmarkSemanticsIngest BenchmarkObsCounter BenchmarkServingQuery"
# 100 measured iterations per benchmark: the ingest loops finish in
# well under a millisecond, so the sample needs repetitions before
# scheduler jitter stays inside the tolerance. Still ~2s total.
BENCHTIME="${BENCHGATE_BENCHTIME:-100x}"

# Two -bench invocations: slash components in a bench regex filter
# sub-benchmark levels, which would exclude the flat ingest benchmarks
# from a combined pattern.
run_bench() {
    out="$1"
    go test -run '^$' -bench '^BenchmarkSimnetEngines$/^delta$/^toy$' \
        -benchtime "$BENCHTIME" -benchmem -timeout 20m . > bench_gate.out
    go test -run '^$' -bench '^(BenchmarkWatchIngest|BenchmarkWatchIngestWithMetrics|BenchmarkSemanticsIngest)$' \
        -benchtime "$BENCHTIME" -benchmem -timeout 20m . >> bench_gate.out
    # The counter op is single-digit nanoseconds, so it needs far more
    # iterations than the ingest loops before clock granularity stays
    # inside the tolerance.
    go test -run '^$' -bench '^BenchmarkObsCounter$' \
        -benchtime 1000000x -benchmem -timeout 20m . >> bench_gate.out
    # The cached query is tens of microseconds; give it enough
    # iterations to average out allocator noise.
    go test -run '^$' -bench '^BenchmarkServingQuery$' \
        -benchtime 2000x -benchmem -timeout 20m . >> bench_gate.out
    ./ci/benchjson.sh bench_gate.out "$out"
}

mode="${1:-gate}"
case "$mode" in
-update)
    run_bench "$BASELINE"
    echo "benchgate: baseline rewritten: $BASELINE"
    exit 0
    ;;
compare)
    current="${2:?usage: benchgate.sh compare CURRENT.json [BASELINE.json]}"
    baseline="${3:-$BASELINE}"
    ;;
gate)
    current="bench_gate.json"
    baseline="$BASELINE"
    run_bench "$current"
    ;;
*)
    echo "usage: benchgate.sh [-update | compare CURRENT.json [BASELINE.json]]" >&2
    exit 2
    ;;
esac

[ -f "$baseline" ] || { echo "benchgate: no baseline at $baseline (run ci/benchgate.sh -update)" >&2; exit 1; }

awk -v tol="$TOL" -v gated="$GATED" -v basefile="$baseline" '
function strip(name) { sub(/-[0-9]+$/, "", name); return name }
function metric(s, m,   v) {
    # pull "<m>": <number> out of the JSON line; "" when absent
    if (match(s, "\"" m "\": [0-9.eE+-]+") == 0) return ""
    v = substr(s, RSTART, RLENGTH)
    sub(/^.*: /, "", v)
    return v
}
/^  "Bench/ {
    split($0, q, "\"")
    name = strip(q[2])
    if (FILENAME == basefile) {
        base_ns[name] = metric($0, "ns_per_op")
        base_al[name] = metric($0, "allocs/op")
    } else {
        cur_ns[name] = metric($0, "ns_per_op")
        cur_al[name] = metric($0, "allocs/op")
    }
}
function check(name, what, old, new,   ratio) {
    if (old == "" || new == "") return
    if (old == 0) return
    ratio = new / old
    if (ratio > 1 + tol) {
        printf "FAIL  %-40s %-9s %12.0f -> %12.0f  (%+.1f%% > %.0f%% tolerance)\n", \
            name, what, old, new, (ratio - 1) * 100, tol * 100
        failed = 1
    } else if (ratio < 1 - tol) {
        printf "GOOD  %-40s %-9s %12.0f -> %12.0f  (%+.1f%%)\n", \
            name, what, old, new, (ratio - 1) * 100
        improved = 1
    } else {
        printf "ok    %-40s %-9s %12.0f -> %12.0f  (%+.1f%%)\n", \
            name, what, old, new, (ratio - 1) * 100
    }
}
END {
    n = split(gated, names, " ")
    for (i = 1; i <= n; i++) {
        name = names[i]
        if (!(name in base_ns)) {
            printf "FAIL  %-40s missing from baseline (run ci/benchgate.sh -update)\n", name
            failed = 1
            continue
        }
        if (!(name in cur_ns)) {
            printf "FAIL  %-40s missing from current run\n", name
            failed = 1
            continue
        }
        check(name, "ns/op", base_ns[name], cur_ns[name])
        check(name, "allocs/op", base_al[name], cur_al[name])
    }
    if (failed) {
        print "benchgate: FAIL — performance regressed beyond tolerance"
        exit 1
    }
    if (improved) {
        print "benchgate: PASS — improvement detected; consider ci/benchgate.sh -update to ratchet the baseline down"
        exit 0
    }
    print "benchgate: PASS"
}
' "$baseline" "$current"
