#!/bin/sh
# coverage.sh — run the test suite with coverage over internal/... and
# enforce the ratchet stored in ci/coverage.txt. The ratchet only moves
# up: raise it when a PR lands meaningful coverage, never lower it to
# make a PR pass.
set -eu

threshold=$(cat ci/coverage.txt)
log=$(mktemp)
if ! go test -count=1 -coverprofile=cover.out -coverpkg=./internal/... ./... > "$log" 2>&1; then
    echo "test suite failed under coverage instrumentation:" >&2
    cat "$log" >&2
    rm -f "$log"
    exit 1
fi
rm -f "$log"
total=$(go tool cover -func=cover.out | awk '/^total:/ { sub(/%/, "", $3); print $3 }')
echo "coverage: ${total}% of internal/... statements (ratchet: ${threshold}%)"
if awk -v t="$total" -v th="$threshold" 'BEGIN { exit !(t+0 < th+0) }'; then
    echo "coverage ${total}% fell below the ratchet ${threshold}%" >&2
    exit 1
fi
