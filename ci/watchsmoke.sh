#!/bin/sh
# watchsmoke.sh — end-to-end wormwatchd smoke: start the daemon, replay
# an attack scenario feed through the live engine tap, and assert the
# HTTP surface serves at least one alert. This is the CI gate that keeps
# the daemon's boot path, feed wiring, and JSON endpoints honest.
set -eu

ADDR="${WATCHSMOKE_ADDR:-127.0.0.1:8571}"
SCENARIO="${WATCHSMOKE_SCENARIO:-rtbh}"
BIN="$(mktemp -d)/wormwatchd"

go build -o "$BIN" ./cmd/wormwatchd

"$BIN" -addr "$ADDR" -scenario "$SCENARIO" &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# Wait for the listener.
i=0
until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -ge 50 ] && { echo "watchsmoke: daemon never became healthy"; exit 1; }
    sleep 0.2
done

# Wait for the scenario replay to raise alerts.
count=0
i=0
while [ "$i" -lt 150 ]; do
    count=$(curl -fsS "http://$ADDR/alerts" | sed -n 's/.*"count": *\([0-9]*\).*/\1/p' | head -1)
    [ "${count:-0}" -ge 1 ] && break
    i=$((i + 1))
    sleep 0.2
done

echo "== /stats"
curl -fsS "http://$ADDR/stats"
echo "== /healthz"
curl -fsS "http://$ADDR/healthz"

if [ "${count:-0}" -lt 1 ]; then
    echo "watchsmoke: FAIL — no alerts after scenario replay"
    exit 1
fi
echo "watchsmoke: OK — $count alerts from scenario $SCENARIO"
