#!/bin/sh
# watchsmoke.sh — end-to-end wormwatchd smoke: start the daemon, replay
# an attack scenario feed through the live engine tap, and assert the
# HTTP surface serves at least one alert. This is the CI gate that keeps
# the daemon's boot path, feed wiring, and JSON endpoints honest.
set -eu

ADDR="${WATCHSMOKE_ADDR:-127.0.0.1:8571}"
SCENARIO="${WATCHSMOKE_SCENARIO:-rtbh}"
BIN="$(mktemp -d)/wormwatchd"

go build -o "$BIN" ./cmd/wormwatchd

"$BIN" -addr "$ADDR" -scenario "$SCENARIO" &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# Wait for the listener.
i=0
until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -ge 50 ] && { echo "watchsmoke: daemon never became healthy"; exit 1; }
    sleep 0.2
done

# Wait for the scenario replay to raise alerts.
count=0
i=0
while [ "$i" -lt 150 ]; do
    count=$(curl -fsS "http://$ADDR/alerts" | sed -n 's/.*"count": *\([0-9]*\).*/\1/p' | head -1)
    [ "${count:-0}" -ge 1 ] && break
    i=$((i + 1))
    sleep 0.2
done

echo "== /stats"
curl -fsS "http://$ADDR/stats"
echo "== /healthz"
curl -fsS "http://$ADDR/healthz"

if [ "${count:-0}" -lt 1 ]; then
    echo "watchsmoke: FAIL — no alerts after scenario replay"
    exit 1
fi

# Dictionary endpoints: the same replay must have inferred a community
# dictionary; /dict names the ASes, /dict/{asn} serves one of them.
echo "== /dict/stats"
curl -fsS "http://$ADDR/dict/stats"
comms=$(curl -fsS "http://$ADDR/dict/stats" | sed -n 's/.*"communities": *\([0-9]*\).*/\1/p' | head -1)
if [ "${comms:-0}" -lt 1 ]; then
    echo "watchsmoke: FAIL — dictionary inference produced no communities"
    exit 1
fi
asn=$(curl -fsS "http://$ADDR/dict" | sed -n 's/.*"asn": *\([0-9]*\).*/\1/p' | head -1)
if [ -z "$asn" ]; then
    echo "watchsmoke: FAIL — /dict index lists no ASes"
    exit 1
fi
echo "== /dict/$asn"
curl -fsS "http://$ADDR/dict/$asn" | head -30

# Metrics: the Prometheus endpoint must serve the watch/semantics/HTTP
# series, and the watch counters must reflect the replay that just ran.
echo "== /metrics (head)"
metrics=$(curl -fsS "http://$ADDR/metrics")
echo "$metrics" | head -20
for series in watch_ingested_total watch_alerts_total semantics_ingested_total http_requests_total; do
    if ! echo "$metrics" | grep -q "^$series"; then
        echo "watchsmoke: FAIL — /metrics missing series $series"
        exit 1
    fi
done
ingested=$(echo "$metrics" | sed -n 's/^watch_ingested_total \([0-9]*\)$/\1/p')
if [ "${ingested:-0}" -lt 1 ]; then
    echo "watchsmoke: FAIL — watch_ingested_total is zero after scenario replay"
    exit 1
fi

echo "watchsmoke: stage 1 OK — $count alerts, $comms dictionary communities, $ingested updates scraped from scenario $SCENARIO"
kill "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true

# ---------------------------------------------------------------------
# Stage 2 — durability: hard-kill the daemon mid-feed, restart it on the
# same WAL directory, and assert recovery converges on a stable alert
# set that a further kill -9 + restart reproduces byte-for-byte (zero
# alert loss through recovery).
ADDR2="${WATCHSMOKE_ADDR2:-127.0.0.1:8572}"
WALDIR=$(mktemp -d)
PID2=""
trap 'kill "$PID2" 2>/dev/null || true; rm -rf "$WALDIR"' EXIT

start_durable() {
    "$BIN" -addr "$ADDR2" -scenario "$SCENARIO" \
        -wal "$WALDIR" -fsync 5ms -snapshot-interval 2s &
    PID2=$!
    i=0
    until curl -fsS "http://$ADDR2/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -ge 50 ] && { echo "watchsmoke: durable daemon never became healthy"; exit 1; }
        sleep 0.2
    done
}

# wait_stable polls $1/alerts until two consecutive reads agree and
# show at least one alert, then prints the stable body.
wait_stable() {
    prev=""
    i=0
    while [ "$i" -lt 150 ]; do
        body=$(curl -fsS "http://$1/alerts")
        if [ -n "$prev" ] && [ "$body" = "$prev" ]; then
            case "$body" in *'"count": 0'*) ;; *) printf '%s' "$body"; return 0 ;; esac
        fi
        prev="$body"
        i=$((i + 1))
        sleep 0.2
    done
    echo "watchsmoke: /alerts never stabilized" >&2
    return 1
}

echo "== durability: start with -wal, kill -9 mid-feed"
start_durable
# Kill as soon as the first alert lands — the feed is still running.
i=0
while [ "$i" -lt 150 ]; do
    c=$(curl -fsS "http://$ADDR2/alerts" | sed -n 's/.*"count": *\([0-9]*\).*/\1/p' | head -1)
    [ "${c:-0}" -ge 1 ] && break
    i=$((i + 1))
    sleep 0.1
done
kill -9 "$PID2"
wait "$PID2" 2>/dev/null || true

echo "== durability: restart 1 — recover + resume the feed"
start_durable
alerts_a=$(wait_stable "$ADDR2")
recovered=$(curl -fsS "http://$ADDR2/durable" | sed -n 's/.*"recovered": *\([0-9]*\).*/\1/p' | head -1)
if [ "${recovered:-0}" -lt 1 ]; then
    echo "watchsmoke: FAIL — restart did not recover from the WAL"
    exit 1
fi
# Let the WAL group-commit absorb the tail, then hard-kill again.
sleep 1
kill -9 "$PID2"
wait "$PID2" 2>/dev/null || true

echo "== durability: restart 2 — recovered state must be byte-identical"
start_durable
alerts_b=$(wait_stable "$ADDR2")
if [ "$alerts_a" != "$alerts_b" ]; then
    echo "watchsmoke: FAIL — alert set changed across kill -9 + recovery"
    exit 1
fi
metrics=$(curl -fsS "http://$ADDR2/metrics")
for series in wal_records_total wal_bytes wal_last_seq durable_seq snapshot_seq durable_snapshots_total; do
    if ! echo "$metrics" | grep -q "^$series"; then
        echo "watchsmoke: FAIL — /metrics missing durability series $series"
        exit 1
    fi
done
kill "$PID2" 2>/dev/null || true
wait "$PID2" 2>/dev/null || true
count2=$(printf '%s' "$alerts_b" | sed -n 's/.*"count": *\([0-9]*\).*/\1/p' | head -1)
echo "watchsmoke: stage 2 OK — $count2 alerts stable across two kill -9 recoveries (recovered seq $recovered)"

# ---------------------------------------------------------------------
# Stage 3 — sharding: two shard daemons on a prefix-range split behind
# the scatter-gather frontend; the merged surface must serve alerts, a
# healthy fleet view, and the frontend metrics series.
SADDR0="${WATCHSMOKE_SADDR0:-127.0.0.1:8573}"
SADDR1="${WATCHSMOKE_SADDR1:-127.0.0.1:8574}"
FADDR="${WATCHSMOKE_FADDR:-127.0.0.1:8575}"
SHDIR=$(mktemp -d)
SPID0="" SPID1="" FPID=""
trap 'kill "$SPID0" "$SPID1" "$FPID" 2>/dev/null || true; wait "$SPID0" "$SPID1" "$FPID" 2>/dev/null || true; rm -rf "$WALDIR" "$SHDIR"' EXIT

echo "== sharding: 2 shards + frontend"
"$BIN" -addr "$SADDR0" -scenario "$SCENARIO" -shards 2 -shard-index 0 -wal "$SHDIR/s0" -fsync 5ms &
SPID0=$!
"$BIN" -addr "$SADDR1" -scenario "$SCENARIO" -shards 2 -shard-index 1 -wal "$SHDIR/s1" -fsync 5ms &
SPID1=$!
"$BIN" -addr "$FADDR" -frontend "http://$SADDR0,http://$SADDR1" &
FPID=$!
i=0
until curl -fsS "http://$FADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -ge 100 ] && { echo "watchsmoke: frontend never became healthy"; exit 1; }
    sleep 0.2
done
i=0
fcount=0
while [ "$i" -lt 150 ]; do
    fcount=$(curl -fsS "http://$FADDR/alerts" | sed -n 's/.*"count": *\([0-9]*\).*/\1/p' | head -1)
    [ "${fcount:-0}" -ge 1 ] && break
    i=$((i + 1))
    sleep 0.2
done
if [ "${fcount:-0}" -lt 1 ]; then
    echo "watchsmoke: FAIL — frontend served no merged alerts"
    exit 1
fi
healthy=$(curl -fsS "http://$FADDR/healthz" | sed -n 's/.*"shards_healthy": *\([0-9]*\).*/\1/p' | head -1)
if [ "${healthy:-0}" -ne 2 ]; then
    echo "watchsmoke: FAIL — frontend sees $healthy healthy shards, want 2"
    exit 1
fi
fmetrics=$(curl -fsS "http://$FADDR/metrics")
for series in frontend_scatter_seconds frontend_upstream_errors_total http_requests_total; do
    if ! echo "$fmetrics" | grep -q "$series"; then
        echo "watchsmoke: FAIL — frontend /metrics missing series $series"
        exit 1
    fi
done

echo "watchsmoke: stage 3 OK — $fcount merged alerts from 2 shards"

# ---------------------------------------------------------------------
# Stage 4 — fleet reshaping + replication: capture the stable merged
# surface, stop the 2-shard fleet gracefully (final checkpoints), run
# walreshard 2→3, boot the new fleet feed-less, and require the
# byte-identical merge. Then replicate shard 0 ("url|url"), kill -9 one
# replica, and require the frontend to fail over; kill the whole set
# and require the honest 502 + degraded /healthz.
TADDR0="${WATCHSMOKE_TADDR0:-127.0.0.1:8576}"
TADDR1="${WATCHSMOKE_TADDR1:-127.0.0.1:8577}"
TADDR2="${WATCHSMOKE_TADDR2:-127.0.0.1:8578}"
F2ADDR="${WATCHSMOKE_F2ADDR:-127.0.0.1:8579}"
RADDR="${WATCHSMOKE_RADDR:-127.0.0.1:8580}"
F3ADDR="${WATCHSMOKE_F3ADDR:-127.0.0.1:8581}"
TPID0="" TPID1="" TPID2="" F2PID="" RPID="" F3PID=""
trap 'kill "$SPID0" "$SPID1" "$FPID" "$TPID0" "$TPID1" "$TPID2" "$F2PID" "$RPID" "$F3PID" 2>/dev/null || true; wait 2>/dev/null || true; rm -rf "$WALDIR" "$SHDIR"' EXIT

echo "== resharding: capture, graceful stop, walreshard 2 -> 3"
pre=$(wait_stable "$FADDR")
kill "$SPID0" "$SPID1" 2>/dev/null || true
wait "$SPID0" "$SPID1" 2>/dev/null || true
kill "$FPID" 2>/dev/null || true
wait "$FPID" 2>/dev/null || true

RBIN="${BIN%/*}/walreshard"
go build -o "$RBIN" ./cmd/walreshard
mkdir -p "$SHDIR/t0" "$SHDIR/t1" "$SHDIR/t2"
"$RBIN" -from "$SHDIR/s0,$SHDIR/s1" -to "$SHDIR/t0,$SHDIR/t1,$SHDIR/t2"

# The new fleet boots with no feed at all: recovery is the only source.
"$BIN" -addr "$TADDR0" -shards 3 -shard-index 0 -wal "$SHDIR/t0" &
TPID0=$!
"$BIN" -addr "$TADDR1" -shards 3 -shard-index 1 -wal "$SHDIR/t1" &
TPID1=$!
"$BIN" -addr "$TADDR2" -shards 3 -shard-index 2 -wal "$SHDIR/t2" &
TPID2=$!
"$BIN" -addr "$F2ADDR" -frontend "http://$TADDR0,http://$TADDR1,http://$TADDR2" &
F2PID=$!
i=0
until healthy=$(curl -fsS "http://$F2ADDR/healthz" 2>/dev/null | sed -n 's/.*"shards_healthy": *\([0-9]*\).*/\1/p' | head -1) \
    && [ "${healthy:-0}" -eq 3 ]; do
    i=$((i + 1))
    [ "$i" -ge 100 ] && { echo "watchsmoke: FAIL — resharded fleet never became healthy"; exit 1; }
    sleep 0.2
done
post=$(curl -fsS "http://$F2ADDR/alerts")
if [ "$pre" != "$post" ]; then
    echo "watchsmoke: FAIL — resharded fleet /alerts diverged from the pre-reshard capture"
    exit 1
fi
kill "$F2PID" 2>/dev/null || true
wait "$F2PID" 2>/dev/null || true

echo "== replication: shard 0 replica set, kill -9 one replica"
cp -r "$SHDIR/t0" "$SHDIR/t0b"
"$BIN" -addr "$RADDR" -shards 3 -shard-index 0 -wal "$SHDIR/t0b" &
RPID=$!
"$BIN" -addr "$F3ADDR" -frontend "http://$TADDR0|http://$RADDR,http://$TADDR1,http://$TADDR2" &
F3PID=$!
i=0
until healthy=$(curl -fsS "http://$F3ADDR/healthz" 2>/dev/null | sed -n 's/.*"shards_healthy": *\([0-9]*\).*/\1/p' | head -1) \
    && [ "${healthy:-0}" -eq 3 ]; do
    i=$((i + 1))
    [ "$i" -ge 100 ] && { echo "watchsmoke: FAIL — replicated fleet never became healthy"; exit 1; }
    sleep 0.2
done
kill -9 "$TPID0"
wait "$TPID0" 2>/dev/null || true
r=$(curl -fsS "http://$F3ADDR/alerts")
if [ "$r" != "$pre" ]; then
    echo "watchsmoke: FAIL — /alerts changed (or failed) after killing one replica"
    exit 1
fi
failovers=$(curl -fsS "http://$F3ADDR/metrics" | sed -n 's/^frontend_failover_total \([0-9]*\).*/\1/p' | head -1)
if [ "${failovers:-0}" -lt 1 ]; then
    echo "watchsmoke: FAIL — replica kill not counted by frontend_failover_total"
    exit 1
fi
hcode=$(curl -s -o /dev/null -w '%{http_code}' "http://$F3ADDR/healthz")
if [ "$hcode" != "200" ]; then
    echo "watchsmoke: FAIL — /healthz $hcode with one replica still up, want 200"
    exit 1
fi

# Whole set down: no silent partial merge.
kill -9 "$RPID"
wait "$RPID" 2>/dev/null || true
acode=$(curl -s -o /dev/null -w '%{http_code}' "http://$F3ADDR/alerts")
hcode=$(curl -s -o /dev/null -w '%{http_code}' "http://$F3ADDR/healthz")
if [ "$acode" != "502" ] || [ "$hcode" != "503" ]; then
    echo "watchsmoke: FAIL — whole replica set down: /alerts $acode (want 502), /healthz $hcode (want 503)"
    exit 1
fi

echo "watchsmoke: OK — stage 1 ($count alerts), stage 2 ($count2 alerts through recovery), stage 3 ($fcount merged alerts from 2 shards), stage 4 (2->3 reshard byte-identical, replica failover with $failovers failover(s))"
