#!/bin/sh
# watchsmoke.sh — end-to-end wormwatchd smoke: start the daemon, replay
# an attack scenario feed through the live engine tap, and assert the
# HTTP surface serves at least one alert. This is the CI gate that keeps
# the daemon's boot path, feed wiring, and JSON endpoints honest.
set -eu

ADDR="${WATCHSMOKE_ADDR:-127.0.0.1:8571}"
SCENARIO="${WATCHSMOKE_SCENARIO:-rtbh}"
BIN="$(mktemp -d)/wormwatchd"

go build -o "$BIN" ./cmd/wormwatchd

"$BIN" -addr "$ADDR" -scenario "$SCENARIO" &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# Wait for the listener.
i=0
until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -ge 50 ] && { echo "watchsmoke: daemon never became healthy"; exit 1; }
    sleep 0.2
done

# Wait for the scenario replay to raise alerts.
count=0
i=0
while [ "$i" -lt 150 ]; do
    count=$(curl -fsS "http://$ADDR/alerts" | sed -n 's/.*"count": *\([0-9]*\).*/\1/p' | head -1)
    [ "${count:-0}" -ge 1 ] && break
    i=$((i + 1))
    sleep 0.2
done

echo "== /stats"
curl -fsS "http://$ADDR/stats"
echo "== /healthz"
curl -fsS "http://$ADDR/healthz"

if [ "${count:-0}" -lt 1 ]; then
    echo "watchsmoke: FAIL — no alerts after scenario replay"
    exit 1
fi

# Dictionary endpoints: the same replay must have inferred a community
# dictionary; /dict names the ASes, /dict/{asn} serves one of them.
echo "== /dict/stats"
curl -fsS "http://$ADDR/dict/stats"
comms=$(curl -fsS "http://$ADDR/dict/stats" | sed -n 's/.*"communities": *\([0-9]*\).*/\1/p' | head -1)
if [ "${comms:-0}" -lt 1 ]; then
    echo "watchsmoke: FAIL — dictionary inference produced no communities"
    exit 1
fi
asn=$(curl -fsS "http://$ADDR/dict" | sed -n 's/.*"asn": *\([0-9]*\).*/\1/p' | head -1)
if [ -z "$asn" ]; then
    echo "watchsmoke: FAIL — /dict index lists no ASes"
    exit 1
fi
echo "== /dict/$asn"
curl -fsS "http://$ADDR/dict/$asn" | head -30

# Metrics: the Prometheus endpoint must serve the watch/semantics/HTTP
# series, and the watch counters must reflect the replay that just ran.
echo "== /metrics (head)"
metrics=$(curl -fsS "http://$ADDR/metrics")
echo "$metrics" | head -20
for series in watch_ingested_total watch_alerts_total semantics_ingested_total http_requests_total; do
    if ! echo "$metrics" | grep -q "^$series"; then
        echo "watchsmoke: FAIL — /metrics missing series $series"
        exit 1
    fi
done
ingested=$(echo "$metrics" | sed -n 's/^watch_ingested_total \([0-9]*\)$/\1/p')
if [ "${ingested:-0}" -lt 1 ]; then
    echo "watchsmoke: FAIL — watch_ingested_total is zero after scenario replay"
    exit 1
fi

echo "watchsmoke: OK — $count alerts, $comms dictionary communities, $ingested updates scraped from scenario $SCENARIO"
