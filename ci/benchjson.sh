#!/bin/sh
# benchjson.sh <go-bench-output> <out.json>
# Converts `go test -bench` text output into a JSON artifact so the perf
# trajectory across PRs is diffable (BENCH_pr1.json, BENCH_pr2.json, ...).
set -eu

in="${1:?usage: benchjson.sh <bench.out> <out.json>}"
out="${2:?usage: benchjson.sh <bench.out> <out.json>}"

awk '
/^goos:/    { goos = $2 }
/^goarch:/  { goarch = $2 }
/^cpu:/     { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
    if ($4 != "ns/op") next
    line = sprintf("  \"%s\": {\"iterations\": %s, \"ns_per_op\": %s", $1, $2, $3)
    # optional custom metrics and allocation columns, pairwise value unit
    for (i = 5; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/[^A-Za-z0-9_%\/]/, "_", unit)
        line = line sprintf(", \"%s\": %s", unit, $i)
    }
    bench[n++] = line "}"
}
END {
    print "{"
    printf "  \"_meta\": {\"goos\": \"%s\", \"goarch\": \"%s\", \"cpu\": \"%s\"}", goos, goarch, cpu
    for (i = 0; i < n; i++) printf ",\n%s", bench[i]
    print ""
    print "}"
}
' "$in" > "$out"

echo "wrote $out"
