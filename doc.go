// Package bgpworms reproduces "BGP Communities: Even more Worms in the
// Routing Can" (Streibelt et al., ACM IMC 2018) as a self-contained Go
// system: a BGP/MRT codec, an AS-level routing simulator with per-AS
// community policy, route-collector platforms, the paper's measurement
// pipeline (internal/core), and the attack-scenario engine — lab and
// attack implementations in internal/attack, registered as named,
// self-describing scenarios in the internal/scenario registry with a
// parallel sweep harness on top.
//
// # Module layout
//
// The module (bgpworms, Go 1.24) is organised bottom-up: internal/bgp
// and internal/mrt implement the wire formats; internal/topo,
// internal/policy and internal/router implement AS-level routing;
// internal/simnet runs networks of routers to convergence;
// internal/collector and internal/gen produce the measurement vantage
// (synthetic Internets recorded into MRT archives); internal/core
// consumes those archives and computes every table and figure of §4.
// Above the simulator, internal/attack builds injection-platform labs
// and internal/scenario catalogs every attack for enumeration,
// parameterized runs, and grid sweeps; internal/watch ingests live
// update feeds (simnet taps, collector exports, MRT streams) into a
// sharded sliding-window detection engine; internal/semantics infers
// per-AS community dictionaries from the same feeds and classifies
// every value's usage (informational, action-blackhole,
// action-steering, action-prepend, well-known, unknown), scoreable
// against the generator's exported ground truth (gen.Registry.Dict)
// and feeding the dictionary-aware watch detectors. The cmd/ tree
// exposes the halves as binaries: genesis writes archives, worms
// analyses them, attacklab lists/runs/sweeps the §5–§7 scenarios,
// bgpcat pretty-prints MRT (with -follow tailing growing archives and
// -community filtering), commdict prints inferred dictionaries, and
// wormwatchd serves the detection engine's alerts and the live
// dictionary (/dict endpoints) over HTTP while ingesting.
// ARCHITECTURE.md maps every paper section to its package.
//
// # Concurrency
//
// The measurement pipeline (core.Pipeline) fans out over a worker pool:
// per-update analyses fold contiguous chunks of the update stream into
// partial aggregates merged deterministically in chunk order, and the
// Figure 6 inference shards the concurrent route view by prefix.
// Results are bit-identical for every worker count. A streaming path
// (core.StreamMRTUpdates, core.Accumulator) classifies MRT byte streams
// without materializing the update slice. The simulator offers three
// engines (simnet.Network.SetEngine): the serial FIFO queue, the
// delta-driven event engine that scales to the large/internet presets
// (per-router dirty sets, class-shared export slabs, copy-on-write
// receives), and the legacy rounds engine kept as the delta engine's
// differential oracle. The parallel engines' convergence counts, tap
// ordering, archives, and final RIBs are invariant across worker counts
// under a fixed seed — and bit-identical to each other, a property the
// randomized differential suite (internal/simnet/differential_test.go)
// enforces with shrinking.
// The watch and semantics engines extend the same discipline to the
// online side: prefix-sharded windows make alert sets shard-count
// invariant, and the dictionary engine's commutative evidence folds
// make inferred dictionaries worker-count invariant.
// Converged worlds can be frozen into immutable snapshots
// (simnet.Network.Freeze, gen.BuildSnapshot) and forked copy-on-write,
// so a sweep or release suite builds each (scale, seed, engine) world
// once and every cell perturbs a cheap fork; warm runs are held
// bit-identical to scratch builds by a differential equivalence suite
// (internal/simnet and internal/attack warm tests).
//
// # Verification
//
// The benchmark harness in bench_test.go regenerates every table and
// figure of the paper's evaluation and converges the paper-scale
// presets (BenchmarkLargeWorldBuild). CI runs the Makefile targets
// (build, lint, race, coverage ratchet, fuzz smoke, examples, bench)
// on every push; BENCHMARKS.md tracks the performance trajectory across
// PRs, golden files (internal/core/testdata/golden) pin the
// paper-facing numbers, native fuzzers with checked-in corpora
// (FuzzCommunityText, FuzzMRTRecord) harden the codecs, and runnable
// Example tests pin the documented entry points (core.Pipeline.Analyze,
// scenario.Run, scenario.Sweep).
package bgpworms
