// Package bgpworms reproduces "BGP Communities: Even more Worms in the
// Routing Can" (Streibelt et al., ACM IMC 2018) as a self-contained Go
// system: a BGP/MRT codec, an AS-level routing simulator with per-AS
// community policy, route-collector platforms, the paper's measurement
// pipeline (internal/core), and the attack-scenario framework
// (internal/attack).
//
// The benchmark harness in bench_test.go regenerates every table and
// figure of the paper's evaluation; see DESIGN.md for the per-experiment
// index and EXPERIMENTS.md for paper-vs-measured values.
package bgpworms
