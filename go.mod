module bgpworms

go 1.24
