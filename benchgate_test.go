package bgpworms

// Tests for the perf ratchet (ci/benchgate.sh) in its pure comparison
// mode: synthetic baseline/current pairs drive the gate without
// running any benchmarks, proving a >15% regression fails the build
// and the recorded baseline passes against itself.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

const benchgateBaseline = `{
  "_meta": {"goos": "linux", "goarch": "amd64", "cpu": "test"},
  "BenchmarkSimnetEngines/delta/toy": {"iterations": 100, "ns_per_op": 10000000, "allocs/op": 45000},
  "BenchmarkWatchIngest": {"iterations": 100, "ns_per_op": 500000, "allocs/op": 3000},
  "BenchmarkWatchIngestWithMetrics": {"iterations": 100, "ns_per_op": 510000, "allocs/op": 3000},
  "BenchmarkSemanticsIngest": {"iterations": 100, "ns_per_op": 150000, "allocs/op": 60},
  "BenchmarkObsCounter": {"iterations": 1000000, "ns_per_op": 6.0, "allocs/op": 0},
  "BenchmarkServingQuery": {"iterations": 2000, "ns_per_op": 13500, "allocs/op": 22}
}
`

func writeBenchJSON(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runBenchgate(t *testing.T, current, baseline string) (string, error) {
	t.Helper()
	cmd := exec.Command("./ci/benchgate.sh", "compare", current, baseline)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	err := cmd.Run()
	return out.String(), err
}

func TestBenchgateIdenticalPasses(t *testing.T) {
	base := writeBenchJSON(t, "base.json", benchgateBaseline)
	cur := writeBenchJSON(t, "cur.json", benchgateBaseline)
	out, err := runBenchgate(t, cur, base)
	if err != nil {
		t.Fatalf("identical run failed: %v\n%s", err, out)
	}
	if !bytes.Contains([]byte(out), []byte("benchgate: PASS")) {
		t.Fatalf("no PASS in output:\n%s", out)
	}
}

func TestBenchgateRegressionFails(t *testing.T) {
	base := writeBenchJSON(t, "base.json", benchgateBaseline)
	// +20% ns/op on the watch ingest loop: beyond the 15% tolerance.
	cur := writeBenchJSON(t, "cur.json", `{
  "_meta": {"goos": "linux", "goarch": "amd64", "cpu": "test"},
  "BenchmarkSimnetEngines/delta/toy": {"iterations": 100, "ns_per_op": 10000000, "allocs/op": 45000},
  "BenchmarkWatchIngest": {"iterations": 100, "ns_per_op": 600000, "allocs/op": 3000},
  "BenchmarkWatchIngestWithMetrics": {"iterations": 100, "ns_per_op": 510000, "allocs/op": 3000},
  "BenchmarkSemanticsIngest": {"iterations": 100, "ns_per_op": 150000, "allocs/op": 60},
  "BenchmarkObsCounter": {"iterations": 1000000, "ns_per_op": 6.0, "allocs/op": 0},
  "BenchmarkServingQuery": {"iterations": 2000, "ns_per_op": 13500, "allocs/op": 22}
}
`)
	out, err := runBenchgate(t, cur, base)
	if err == nil {
		t.Fatalf("20%% ns/op regression passed the gate:\n%s", out)
	}
	if !bytes.Contains([]byte(out), []byte("FAIL  BenchmarkWatchIngest")) {
		t.Fatalf("failure does not name the regressed benchmark:\n%s", out)
	}
}

func TestBenchgateAllocRegressionFails(t *testing.T) {
	base := writeBenchJSON(t, "base.json", benchgateBaseline)
	cur := writeBenchJSON(t, "cur.json", `{
  "_meta": {"goos": "linux", "goarch": "amd64", "cpu": "test"},
  "BenchmarkSimnetEngines/delta/toy": {"iterations": 100, "ns_per_op": 10000000, "allocs/op": 45000},
  "BenchmarkWatchIngest": {"iterations": 100, "ns_per_op": 500000, "allocs/op": 4000},
  "BenchmarkWatchIngestWithMetrics": {"iterations": 100, "ns_per_op": 510000, "allocs/op": 3000},
  "BenchmarkSemanticsIngest": {"iterations": 100, "ns_per_op": 150000, "allocs/op": 60},
  "BenchmarkObsCounter": {"iterations": 1000000, "ns_per_op": 6.0, "allocs/op": 0},
  "BenchmarkServingQuery": {"iterations": 2000, "ns_per_op": 13500, "allocs/op": 22}
}
`)
	out, err := runBenchgate(t, cur, base)
	if err == nil {
		t.Fatalf("33%% allocs/op regression passed the gate:\n%s", out)
	}
	if !bytes.Contains([]byte(out), []byte("allocs/op")) {
		t.Fatalf("failure does not mention allocs/op:\n%s", out)
	}
}

func TestBenchgateImprovementSuggestsUpdate(t *testing.T) {
	base := writeBenchJSON(t, "base.json", benchgateBaseline)
	cur := writeBenchJSON(t, "cur.json", `{
  "_meta": {"goos": "linux", "goarch": "amd64", "cpu": "test"},
  "BenchmarkSimnetEngines/delta/toy": {"iterations": 100, "ns_per_op": 5000000, "allocs/op": 45000},
  "BenchmarkWatchIngest": {"iterations": 100, "ns_per_op": 500000, "allocs/op": 3000},
  "BenchmarkWatchIngestWithMetrics": {"iterations": 100, "ns_per_op": 510000, "allocs/op": 3000},
  "BenchmarkSemanticsIngest": {"iterations": 100, "ns_per_op": 150000, "allocs/op": 60},
  "BenchmarkObsCounter": {"iterations": 1000000, "ns_per_op": 6.0, "allocs/op": 0},
  "BenchmarkServingQuery": {"iterations": 2000, "ns_per_op": 13500, "allocs/op": 22}
}
`)
	out, err := runBenchgate(t, cur, base)
	if err != nil {
		t.Fatalf("improvement failed the gate: %v\n%s", err, out)
	}
	if !bytes.Contains([]byte(out), []byte("-update")) {
		t.Fatalf("no baseline-update suggestion on improvement:\n%s", out)
	}
}

func TestBenchgateMissingBenchmarkFails(t *testing.T) {
	base := writeBenchJSON(t, "base.json", benchgateBaseline)
	cur := writeBenchJSON(t, "cur.json", `{
  "_meta": {"goos": "linux", "goarch": "amd64", "cpu": "test"},
  "BenchmarkWatchIngest": {"iterations": 100, "ns_per_op": 500000, "allocs/op": 3000}
}
`)
	out, err := runBenchgate(t, cur, base)
	if err == nil {
		t.Fatalf("run missing gated benchmarks passed:\n%s", out)
	}
	if !bytes.Contains([]byte(out), []byte("missing from current run")) {
		t.Fatalf("failure does not flag the missing benchmark:\n%s", out)
	}
}

// TestBenchgateStripsCPUSuffix pins the portability rule: a multi-core
// runner emits BenchmarkWatchIngest-8 while GOMAXPROCS=1 emits a bare
// name, and both must pair with the same baseline row.
func TestBenchgateStripsCPUSuffix(t *testing.T) {
	base := writeBenchJSON(t, "base.json", benchgateBaseline)
	cur := writeBenchJSON(t, "cur.json", `{
  "_meta": {"goos": "linux", "goarch": "amd64", "cpu": "test"},
  "BenchmarkSimnetEngines/delta/toy-8": {"iterations": 100, "ns_per_op": 10000000, "allocs/op": 45000},
  "BenchmarkWatchIngest-8": {"iterations": 100, "ns_per_op": 500000, "allocs/op": 3000},
  "BenchmarkWatchIngestWithMetrics-8": {"iterations": 100, "ns_per_op": 510000, "allocs/op": 3000},
  "BenchmarkSemanticsIngest-8": {"iterations": 100, "ns_per_op": 150000, "allocs/op": 60},
  "BenchmarkObsCounter-8": {"iterations": 1000000, "ns_per_op": 6.0, "allocs/op": 0},
  "BenchmarkServingQuery-8": {"iterations": 2000, "ns_per_op": 13500, "allocs/op": 22}
}
`)
	out, err := runBenchgate(t, cur, base)
	if err != nil {
		t.Fatalf("suffixed names failed to pair: %v\n%s", err, out)
	}
}

// TestBenchgateRecordedBaselinePasses compares the committed baseline
// against itself, proving the checked-in file is well-formed and the
// gate accepts the current recorded state.
func TestBenchgateRecordedBaselinePasses(t *testing.T) {
	data, err := os.ReadFile("ci/bench_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	cur := writeBenchJSON(t, "cur.json", string(data))
	out, err := runBenchgate(t, cur, "ci/bench_baseline.json")
	if err != nil {
		t.Fatalf("committed baseline rejected: %v\n%s", err, out)
	}
}
