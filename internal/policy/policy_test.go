package policy

import (
	"testing"

	"bgpworms/internal/bgp"
	"bgpworms/internal/netx"
	"bgpworms/internal/topo"
)

func TestPrefixRuleSemantics(t *testing.T) {
	cases := []struct {
		rule  PrefixRule
		pfx   string
		want  bool
		label string
	}{
		{PrefixRule{Prefix: netx.MustPrefix("10.0.0.0/8")}, "10.0.0.0/8", true, "exact"},
		{PrefixRule{Prefix: netx.MustPrefix("10.0.0.0/8")}, "10.1.0.0/16", false, "exact rejects longer"},
		{PrefixRule{Prefix: netx.MustPrefix("10.0.0.0/8"), Ge: 9, Le: 24}, "10.1.0.0/16", true, "range"},
		{PrefixRule{Prefix: netx.MustPrefix("10.0.0.0/8"), Ge: 9, Le: 24}, "10.1.1.0/25", false, "over le"},
		{PrefixRule{Prefix: netx.MustPrefix("10.0.0.0/8"), Ge: 16}, "10.1.2.3/32", true, "ge only opens to host"},
		{PrefixRule{Prefix: netx.MustPrefix("10.0.0.0/8"), Ge: 16}, "10.0.0.0/12", false, "under ge"},
		{PrefixRule{Prefix: netx.MustPrefix("10.0.0.0/8"), Ge: 9, Le: 24}, "11.0.0.0/16", false, "outside"},
	}
	for _, c := range cases {
		if got := c.rule.Matches(netx.MustPrefix(c.pfx)); got != c.want {
			t.Errorf("%s: Matches(%s)=%v want %v", c.label, c.pfx, got, c.want)
		}
	}
}

func TestPrefixListFirstMatch(t *testing.T) {
	var l PrefixList
	l.Add(netx.MustPrefix("192.0.2.0/24")).AddRange(netx.MustPrefix("10.0.0.0/8"), 8, 24)
	if !l.Matches(netx.MustPrefix("192.0.2.0/24")) || !l.Matches(netx.MustPrefix("10.2.0.0/16")) {
		t.Fatal("expected matches")
	}
	if l.Matches(netx.MustPrefix("172.16.0.0/12")) {
		t.Fatal("unexpected match")
	}
	var nilList *PrefixList
	if nilList.Matches(netx.MustPrefix("10.0.0.0/8")) {
		t.Fatal("nil list matches nothing")
	}
}

func TestCommunityPatterns(t *testing.T) {
	cases := []struct {
		pat  string
		comm bgp.Community
		want bool
	}{
		{"3320:666", bgp.C(3320, 666), true},
		{"3320:666", bgp.C(3320, 667), false},
		{"3320:*", bgp.C(3320, 1), true},
		{"3320:*", bgp.C(3321, 1), false},
		{"*:666", bgp.C(1, 666), true},
		{"*:666", bgp.C(1, 665), false},
		{"*:*", bgp.C(9, 9), true},
	}
	for _, c := range cases {
		p := MustCommunityPattern(c.pat)
		if got := p.Matches(c.comm); got != c.want {
			t.Errorf("%s vs %s: %v want %v", c.pat, c.comm, got, c.want)
		}
	}
	for _, bad := range []string{"nocolon", "x:1", "1:x", "70000:1", "1:70000"} {
		if _, err := ParseCommunityPattern(bad); err == nil {
			t.Errorf("pattern %q should fail", bad)
		}
	}
}

func TestCommunityListMatchFilter(t *testing.T) {
	var l CommunityList
	l.AddExact(bgp.C(10, 1)).AddPattern("20:*")
	cs := bgp.NewCommunitySet(bgp.C(10, 1), bgp.C(20, 5), bgp.C(30, 9))
	if !l.MatchesAny(cs) {
		t.Fatal("should match")
	}
	got := l.Filter(cs)
	if len(got) != 2 || !got.Has(bgp.C(10, 1)) || !got.Has(bgp.C(20, 5)) || got.Has(bgp.C(30, 9)) {
		t.Fatalf("Filter=%v", got)
	}
	var nilList *CommunityList
	if nilList.MatchesAny(cs) {
		t.Fatal("nil list matches nothing")
	}
}

func mkRoute() *Route {
	r := NewLocalRoute(netx.MustPrefix("203.0.113.0/24"))
	r.ASPath = bgp.Path(64500, 64501)
	r.Communities = bgp.NewCommunitySet(bgp.C(64500, 100))
	r.NextHopAS = 64500
	r.FromRel = topo.RelCustomer
	return r
}

func TestRouteCloneIndependence(t *testing.T) {
	r := mkRoute()
	c := r.Clone()
	c.Communities = c.Communities.Add(bgp.C(1, 1))
	c.ASPath = c.ASPath.Prepend(9, 1)
	c.LocalPref = 50
	if r.Communities.Has(bgp.C(1, 1)) || r.ASPath.HopLength() != 2 || r.LocalPref != DefaultLocalPref {
		t.Fatal("clone aliases original")
	}
	if r.OriginAS() != 64501 {
		t.Fatalf("OriginAS=%d", r.OriginAS())
	}
}

func TestRouteMapBasicPermitDeny(t *testing.T) {
	rm := &RouteMap{Terms: []Term{
		{Name: "deny-long", MatchMinLen: 25, Deny: true},
		{Name: "tag", AddCommunities: []bgp.Community{bgp.C(9, 9)}},
	}}
	r := mkRoute()
	if !rm.Apply(r, 65001) {
		t.Fatal("should accept /24")
	}
	if !r.Communities.Has(bgp.C(9, 9)) {
		t.Fatal("tag term not applied")
	}
	long := NewLocalRoute(netx.MustPrefix("203.0.113.0/28"))
	if rm.Apply(long, 65001) {
		t.Fatal("should reject /28")
	}
}

func TestRouteMapDefaultDeny(t *testing.T) {
	pl := (&PrefixList{}).Add(netx.MustPrefix("192.0.2.0/24"))
	rm := &RouteMap{DefaultDeny: true, Terms: []Term{{Name: "cust", MatchPrefix: pl}}}
	ok := rm.Apply(NewLocalRoute(netx.MustPrefix("192.0.2.0/24")), 1)
	if !ok {
		t.Fatal("listed prefix should pass")
	}
	if rm.Apply(NewLocalRoute(netx.MustPrefix("198.51.100.0/24")), 1) {
		t.Fatal("unlisted prefix should be dropped by default-deny")
	}
	var nilMap *RouteMap
	if !nilMap.Apply(mkRoute(), 1) {
		t.Fatal("nil route-map accepts")
	}
}

func TestRouteMapSetActions(t *testing.T) {
	var del CommunityList
	del.AddPattern("64500:*")
	rm := &RouteMap{Terms: []Term{{
		SetLocalPref:      Uint32(250),
		AddCommunities:    []bgp.Community{bgp.C(1, 2)},
		DeleteCommunities: &del,
		PrependSelf:       2,
		SetBlackhole:      true,
	}}}
	r := mkRoute()
	if !rm.Apply(r, 65001) {
		t.Fatal("accept expected")
	}
	if r.LocalPref != 250 || !r.Blackhole {
		t.Fatalf("lp=%d bh=%v", r.LocalPref, r.Blackhole)
	}
	if !r.Communities.Has(bgp.C(1, 2)) || r.Communities.Has(bgp.C(64500, 100)) {
		t.Fatalf("communities=%v", r.Communities)
	}
	seq := r.ASPath.Sequence()
	if len(seq) != 4 || seq[0] != 65001 || seq[1] != 65001 {
		t.Fatalf("path=%v", seq)
	}
}

// The §6.3 misconfiguration: a blackhole term evaluated before customer
// prefix validation lets a hijacked prefix through when tagged with the
// blackhole community. Swapping term order closes the hole — same terms,
// different outcome.
func TestRouteMapEvaluationOrderRTBHMisconfig(t *testing.T) {
	customer := (&PrefixList{}).AddRange(netx.MustPrefix("203.0.113.0/24"), 24, 32)
	var bhList CommunityList
	bhList.AddExact(bgp.C(65001, 666))

	blackholeTerm := Term{Name: "rtbh", MatchCommunity: &bhList, SetBlackhole: true, SetLocalPref: Uint32(200)}
	validateTerm := Term{Name: "validate", MatchPrefix: customer, Continue: true}

	// Misconfigured (NANOG tutorial shape): the blackhole term fires on the
	// community alone, before any prefix validation.
	misconfigured := &RouteMap{DefaultDeny: true, Terms: []Term{blackholeTerm, validateTerm}}
	// Corrected: blackhole processing is constrained to validated customer
	// prefixes.
	correctedBH := blackholeTerm
	correctedBH.MatchPrefix = customer
	corrected := &RouteMap{DefaultDeny: true, Terms: []Term{validateTerm, correctedBH}}

	hijack := NewLocalRoute(netx.MustPrefix("198.51.100.0/24")) // not a customer prefix
	hijack.Communities = bgp.NewCommunitySet(bgp.C(65001, 666))

	if ok := misconfigured.Apply(hijack.Clone(), 65001); !ok {
		t.Fatal("misconfigured map must accept the tagged hijack")
	}
	if ok := corrected.Apply(hijack.Clone(), 65001); ok {
		t.Fatal("corrected map must reject the tagged hijack")
	}

	// A legitimate tagged customer prefix passes both.
	legit := NewLocalRoute(netx.MustPrefix("203.0.113.5/32"))
	legit.Communities = bgp.NewCommunitySet(bgp.C(65001, 666))
	out := legit.Clone()
	if ok := corrected.Apply(out, 65001); !ok || !out.Blackhole {
		t.Fatalf("legit blackhole rejected or not marked: ok=%v bh=%v", ok, out.Blackhole)
	}
}

func TestRouteMapMatchRelAndNeighbor(t *testing.T) {
	rm := &RouteMap{DefaultDeny: true, Terms: []Term{
		{MatchRel: topo.RelCustomer, MatchNeighbor: 64500},
	}}
	r := mkRoute()
	if !rm.Apply(r, 1) {
		t.Fatal("customer route from 64500 should pass")
	}
	r2 := mkRoute()
	r2.FromRel = topo.RelPeer
	if rm.Apply(r2, 1) {
		t.Fatal("peer route should fail")
	}
	r3 := mkRoute()
	r3.NextHopAS = 999
	if rm.Apply(r3, 1) {
		t.Fatal("wrong neighbor should fail")
	}
}

func TestCatalogLookupAndOrder(t *testing.T) {
	cat := NewCatalog(65001).
		Add(Service{Community: bgp.C(65001, 0), Kind: SvcNoAnnounceTo, Param: 7}).
		Add(Service{Community: bgp.C(65001, 1), Kind: SvcAnnounceTo, Param: 7}).
		Add(Service{Community: bgp.C(65001, 666), Kind: SvcBlackhole})

	if _, ok := cat.Lookup(bgp.C(65001, 2)); ok {
		t.Fatal("unexpected service")
	}
	if s, ok := cat.Lookup(bgp.C(65001, 666)); !ok || s.Kind != SvcBlackhole {
		t.Fatal("blackhole lookup failed")
	}
	bh, ok := cat.BlackholeCommunity()
	if !ok || bh != bgp.C(65001, 666) {
		t.Fatal("BlackholeCommunity failed")
	}
	cs := bgp.NewCommunitySet(bgp.C(65001, 0), bgp.C(65001, 1))
	active := cat.Active(cs, true)
	if len(active) != 2 || active[0].Kind != SvcNoAnnounceTo {
		t.Fatalf("Active order wrong: %v", active)
	}

	var nilCat *Catalog
	if _, ok := nilCat.Lookup(bgp.C(1, 1)); ok {
		t.Fatal("nil catalog lookup")
	}
	if nilCat.Active(cs, true) != nil {
		t.Fatal("nil catalog active")
	}
	if _, ok := nilCat.BlackholeCommunity(); ok {
		t.Fatal("nil catalog blackhole")
	}
}

func TestCatalogCustomerOnlyGating(t *testing.T) {
	cat := NewCatalog(65001).Add(Service{
		Community: bgp.C(65001, 80), Kind: SvcLocalPref, Param: 80, CustomerOnly: true,
	})
	cs := bgp.NewCommunitySet(bgp.C(65001, 80))
	if got := cat.Active(cs, false); len(got) != 0 {
		t.Fatal("non-customer must not trigger CustomerOnly service")
	}
	if got := cat.Active(cs, true); len(got) != 1 {
		t.Fatal("customer must trigger service")
	}
}

func TestApplyPropagationModes(t *testing.T) {
	cs := bgp.NewCommunitySet(bgp.C(100, 1), bgp.C(200, 2), bgp.CommunityBlackhole)
	if got := ApplyPropagation(PropForwardAll, 100, cs); len(got) != 3 {
		t.Fatalf("forward-all: %v", got)
	}
	if got := ApplyPropagation(PropStripAll, 100, cs); len(got) != 0 {
		t.Fatalf("strip-all: %v", got)
	}
	got := ApplyPropagation(PropActStripOwn, 100, cs)
	if got.Has(bgp.C(100, 1)) || !got.Has(bgp.C(200, 2)) || !got.Has(bgp.CommunityBlackhole) {
		t.Fatalf("act-strip-own: %v", got)
	}
	got = ApplyPropagation(PropStripForeign, 100, cs)
	if !got.Has(bgp.C(100, 1)) || got.Has(bgp.C(200, 2)) || !got.Has(bgp.CommunityBlackhole) {
		t.Fatalf("strip-foreign: %v", got)
	}
	// Original untouched.
	if len(cs) != 3 {
		t.Fatal("ApplyPropagation mutated input")
	}
}

func TestKindAndModeStrings(t *testing.T) {
	kinds := []ServiceKind{SvcBlackhole, SvcPrepend, SvcLocalPref, SvcAnnounceTo, SvcNoAnnounceTo, SvcNoExport, SvcLocation, ServiceKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Fatal("empty kind string")
		}
	}
	modes := []PropagationMode{PropForwardAll, PropStripAll, PropActStripOwn, PropStripForeign, PropagationMode(99)}
	for _, m := range modes {
		if m.String() == "" {
			t.Fatal("empty mode string")
		}
	}
}
