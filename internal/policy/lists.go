package policy

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"

	"bgpworms/internal/bgp"
	"bgpworms/internal/netx"
)

// PrefixRule is one prefix-list entry with router-style ge/le length
// bounds: a candidate matches if it is covered by Prefix and its length is
// within [Ge, Le]. Zero Ge/Le default to the entry prefix's own length
// (exact-match), mirroring IOS/JunOS semantics.
type PrefixRule struct {
	Prefix netip.Prefix
	Ge, Le int
}

// Matches reports whether p satisfies the rule.
func (r PrefixRule) Matches(p netip.Prefix) bool {
	if !netx.Covers(r.Prefix, p) {
		return false
	}
	ge, le := r.Ge, r.Le
	if ge == 0 {
		ge = r.Prefix.Bits()
	}
	if le == 0 {
		le = r.Prefix.Bits()
		if r.Ge != 0 {
			le = p.Addr().BitLen()
		}
	}
	return p.Bits() >= ge && p.Bits() <= le
}

// PrefixList is an ordered list of rules; first match wins, like vendor
// prefix-lists. An empty list matches nothing.
type PrefixList struct {
	Rules []PrefixRule
}

// Add appends an exact-match rule for p.
func (l *PrefixList) Add(p netip.Prefix) *PrefixList {
	l.Rules = append(l.Rules, PrefixRule{Prefix: p.Masked()})
	return l
}

// AddRange appends a rule covering p with lengths in [ge, le].
func (l *PrefixList) AddRange(p netip.Prefix, ge, le int) *PrefixList {
	l.Rules = append(l.Rules, PrefixRule{Prefix: p.Masked(), Ge: ge, Le: le})
	return l
}

// Matches reports whether any rule matches p.
func (l *PrefixList) Matches(p netip.Prefix) bool {
	if l == nil {
		return false
	}
	for _, r := range l.Rules {
		if r.Matches(p) {
			return true
		}
	}
	return false
}

// CommunityPattern matches communities: exact value, any value of an ASN
// ("asn:*"), any ASN with a value ("*:value"), or everything ("*:*").
type CommunityPattern struct {
	ASN      uint16
	Value    uint16
	AnyASN   bool
	AnyValue bool
}

// ParseCommunityPattern parses "a:v" with either side possibly "*".
func ParseCommunityPattern(s string) (CommunityPattern, error) {
	a, v, ok := strings.Cut(s, ":")
	if !ok {
		return CommunityPattern{}, fmt.Errorf("policy: pattern %q: missing colon", s)
	}
	var p CommunityPattern
	if a == "*" {
		p.AnyASN = true
	} else {
		n, err := strconv.ParseUint(a, 10, 16)
		if err != nil {
			return CommunityPattern{}, fmt.Errorf("policy: pattern %q: %v", s, err)
		}
		p.ASN = uint16(n)
	}
	if v == "*" {
		p.AnyValue = true
	} else {
		n, err := strconv.ParseUint(v, 10, 16)
		if err != nil {
			return CommunityPattern{}, fmt.Errorf("policy: pattern %q: %v", s, err)
		}
		p.Value = uint16(n)
	}
	return p, nil
}

// MustCommunityPattern is ParseCommunityPattern that panics on error.
func MustCommunityPattern(s string) CommunityPattern {
	p, err := ParseCommunityPattern(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Matches reports whether c satisfies the pattern.
func (p CommunityPattern) Matches(c bgp.Community) bool {
	if !p.AnyASN && c.ASN() != p.ASN {
		return false
	}
	if !p.AnyValue && c.Value() != p.Value {
		return false
	}
	return true
}

// CommunityList is a set of patterns; a community set matches if any of
// its members matches any pattern.
type CommunityList struct {
	Patterns []CommunityPattern
}

// AddExact appends an exact-community pattern.
func (l *CommunityList) AddExact(c bgp.Community) *CommunityList {
	l.Patterns = append(l.Patterns, CommunityPattern{ASN: c.ASN(), Value: c.Value()})
	return l
}

// AddPattern appends a parsed wildcard pattern.
func (l *CommunityList) AddPattern(s string) *CommunityList {
	l.Patterns = append(l.Patterns, MustCommunityPattern(s))
	return l
}

// MatchesAny reports whether any community in cs matches any pattern.
func (l *CommunityList) MatchesAny(cs bgp.CommunitySet) bool {
	if l == nil {
		return false
	}
	for _, c := range cs {
		for _, p := range l.Patterns {
			if p.Matches(c) {
				return true
			}
		}
	}
	return false
}

// Filter returns the members of cs matching any pattern.
func (l *CommunityList) Filter(cs bgp.CommunitySet) bgp.CommunitySet {
	var out bgp.CommunitySet
	for _, c := range cs {
		for _, p := range l.Patterns {
			if p.Matches(c) {
				out = out.Add(c)
				break
			}
		}
	}
	return out
}
