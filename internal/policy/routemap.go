package policy

import (
	"bgpworms/internal/bgp"
	"bgpworms/internal/topo"
)

// Term is one route-map clause. All non-zero match conditions must hold
// for the term to fire. When it fires, the term's set-actions are applied
// and evaluation stops unless Continue is set — exactly the first-match
// semantics whose ordering §6.3 shows to be security-relevant.
type Term struct {
	Name string

	// Match conditions; zero values mean "any".
	MatchPrefix    *PrefixList
	MatchCommunity *CommunityList
	MatchMinLen    int
	MatchMaxLen    int
	MatchNeighbor  topo.ASN
	MatchRel       topo.Rel // topo.RelNone = any

	// Deny rejects the route outright when the term fires.
	Deny bool

	// Set-actions, applied on a permit.
	SetLocalPref      *uint32
	AddCommunities    []bgp.Community
	DeleteCommunities *CommunityList
	PrependSelf       int
	SetBlackhole      bool

	// Continue proceeds to the next term after applying actions.
	Continue bool
}

func (t *Term) matches(rt *Route) bool {
	if t.MatchPrefix != nil && !t.MatchPrefix.Matches(rt.Prefix) {
		return false
	}
	if t.MatchCommunity != nil && !t.MatchCommunity.MatchesAny(rt.Communities) {
		return false
	}
	if t.MatchMinLen != 0 && rt.Prefix.Bits() < t.MatchMinLen {
		return false
	}
	if t.MatchMaxLen != 0 && rt.Prefix.Bits() > t.MatchMaxLen {
		return false
	}
	if t.MatchNeighbor != 0 && rt.NextHopAS != t.MatchNeighbor {
		return false
	}
	if t.MatchRel != topo.RelNone && rt.FromRel != t.MatchRel {
		return false
	}
	return true
}

func (t *Term) apply(rt *Route, localASN topo.ASN) {
	if t.SetLocalPref != nil {
		rt.LocalPref = *t.SetLocalPref
	}
	if len(t.AddCommunities) > 0 {
		rt.Communities = rt.Communities.AddAll(t.AddCommunities...)
	}
	if t.DeleteCommunities != nil {
		rt.Communities = rt.Communities.RemoveIf(func(c bgp.Community) bool {
			for _, p := range t.DeleteCommunities.Patterns {
				if p.Matches(c) {
					return true
				}
			}
			return false
		})
	}
	if t.PrependSelf > 0 {
		rt.ASPath = rt.ASPath.Prepend(localASN, t.PrependSelf)
	}
	if t.SetBlackhole {
		rt.Blackhole = true
	}
}

// RouteMap is an ordered list of terms with a configurable default.
// Term order is preserved verbatim: routers evaluate rules "in a specified
// order that is independent of the community value" (§6.3), so swapping
// two terms can change security outcomes — see the RTBH misconfiguration.
type RouteMap struct {
	Name string
	// Terms in evaluation order.
	Terms []Term
	// DefaultDeny rejects routes matched by no term (vendor default);
	// unset means permit-unmatched.
	DefaultDeny bool
}

// Apply evaluates rm against rt, mutating it in place, and reports whether
// the route is accepted. localASN is used by prepend actions.
func (rm *RouteMap) Apply(rt *Route, localASN topo.ASN) bool {
	if rm == nil {
		return true
	}
	matchedAny := false
	for i := range rm.Terms {
		t := &rm.Terms[i]
		if !t.matches(rt) {
			continue
		}
		matchedAny = true
		if t.Deny {
			return false
		}
		t.apply(rt, localASN)
		if !t.Continue {
			return true
		}
	}
	if matchedAny {
		return true
	}
	return !rm.DefaultDeny
}

// Uint32 returns a pointer to v; helper for SetLocalPref literals.
func Uint32(v uint32) *uint32 { return &v }
