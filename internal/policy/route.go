// Package policy implements the routing-policy machinery the paper's
// scenarios hinge on: prefix lists with ge/le semantics, community lists,
// ordered route-maps whose term order is observable behaviour (§6.3),
// community-triggered services (RTBH, prepend, local-pref, selective
// announcement, location tagging — the Bonaventure/Donnet taxonomy from
// §2), and per-neighbor community propagation modes (§4.4).
package policy

import (
	"fmt"
	"net/netip"

	"bgpworms/internal/bgp"
	"bgpworms/internal/topo"
)

// DefaultLocalPref is the local preference assigned to routes when no
// policy overrides it.
const DefaultLocalPref uint32 = 100

// Route is the AS-level unit of routing state flowing between policy,
// router, and simulator. NextHopAS identifies the neighbor the route was
// learned from (0 for locally originated prefixes).
type Route struct {
	Prefix      netip.Prefix
	ASPath      bgp.ASPath
	Communities bgp.CommunitySet
	Origin      bgp.Origin
	MED         uint32
	LocalPref   uint32
	NextHopAS   topo.ASN
	// FromRel is the business relationship of the neighbor the route was
	// learned from, as seen locally.
	FromRel topo.Rel
	// Blackhole marks the route as null-routed at this AS: it attracts
	// traffic and drops it (§5.1).
	Blackhole bool
}

// NewLocalRoute originates prefix locally.
func NewLocalRoute(prefix netip.Prefix) *Route {
	return &Route{
		Prefix:    prefix.Masked(),
		Origin:    bgp.OriginIGP,
		LocalPref: DefaultLocalPref,
	}
}

// Clone deep-copies the route so policy actions never alias RIB state.
func (r *Route) Clone() *Route {
	out := *r
	out.ASPath = r.ASPath.Clone()
	out.Communities = r.Communities.Clone()
	return &out
}

// OriginAS returns the originating AS of the path (0 if locally originated
// with an empty path).
func (r *Route) OriginAS() topo.ASN { return r.ASPath.Origin() }

// String renders a compact single-line view for looking glasses.
func (r *Route) String() string {
	bh := ""
	if r.Blackhole {
		bh = " [blackhole]"
	}
	return fmt.Sprintf("%s via AS%d path [%s] lp %d comm [%s]%s",
		r.Prefix, r.NextHopAS, r.ASPath, r.LocalPref, r.Communities, bh)
}
