package policy

import (
	"bgpworms/internal/bgp"
	"bgpworms/internal/topo"
)

// ServiceKind enumerates the community-triggered service classes of the
// Bonaventure/Donnet taxonomy the paper uses in §2: route selection
// (local-pref, prepending), selective announcement, route suppression,
// blackholing, and location tagging.
type ServiceKind int

// Service kinds.
const (
	// SvcBlackhole null-routes the tagged prefix (RTBH, §5.1).
	SvcBlackhole ServiceKind = iota
	// SvcPrepend prepends the provider's ASN Param times on export.
	SvcPrepend
	// SvcLocalPref sets local preference to Param on ingress.
	SvcLocalPref
	// SvcAnnounceTo restricts export of the route to neighbor Param
	// (selective announcement; at IXP route servers "announce to peer").
	SvcAnnounceTo
	// SvcNoAnnounceTo suppresses export of the route to neighbor Param.
	SvcNoAnnounceTo
	// SvcNoExport suppresses export to everyone (provider-scoped
	// NO_EXPORT equivalent).
	SvcNoExport
	// SvcLocation is informational ingress tagging (Param is an opaque
	// location code); it triggers no routing action.
	SvcLocation
)

// String names the kind.
func (k ServiceKind) String() string {
	switch k {
	case SvcBlackhole:
		return "blackhole"
	case SvcPrepend:
		return "prepend"
	case SvcLocalPref:
		return "local-pref"
	case SvcAnnounceTo:
		return "announce-to"
	case SvcNoAnnounceTo:
		return "no-announce-to"
	case SvcNoExport:
		return "no-export"
	case SvcLocation:
		return "location"
	default:
		return "unknown"
	}
}

// Service binds a community value owned by an AS to an action.
type Service struct {
	Community bgp.Community
	Kind      ServiceKind
	// Param is kind-specific: prepend count, local-pref value, or target
	// neighbor ASN.
	Param uint32
	// CustomerOnly restricts the action to routes received from BGP
	// customers — the relationship gating that §7.4 found makes steering
	// attacks hard ("providers only act on communities set by their
	// customers").
	CustomerOnly bool
}

// Catalog is the ordered list of community services an AS offers. Order is
// the evaluation order, which §5.3/§7.5 show to be observable and
// exploitable when services conflict (no-announce vs announce at an IXP
// route server).
type Catalog struct {
	Owner    topo.ASN
	Services []Service
}

// NewCatalog returns an empty catalog for owner.
func NewCatalog(owner topo.ASN) *Catalog { return &Catalog{Owner: owner} }

// Clone returns a copy with a privately owned service list, so a forked
// world can Add services without reaching the snapshot it forked from.
func (c *Catalog) Clone() *Catalog {
	if c == nil {
		return nil
	}
	return &Catalog{Owner: c.Owner, Services: append([]Service(nil), c.Services...)}
}

// Add appends svc to the evaluation order.
func (c *Catalog) Add(svc Service) *Catalog {
	c.Services = append(c.Services, svc)
	return c
}

// Lookup returns the first service bound to community, honoring order.
func (c *Catalog) Lookup(comm bgp.Community) (Service, bool) {
	if c == nil {
		return Service{}, false
	}
	for _, s := range c.Services {
		if s.Community == comm {
			return s, true
		}
	}
	return Service{}, false
}

// Active returns every service triggered by the route's communities, in
// catalog order. fromCustomer gates CustomerOnly services.
func (c *Catalog) Active(cs bgp.CommunitySet, fromCustomer bool) []Service {
	if c == nil {
		return nil
	}
	var out []Service
	for _, s := range c.Services {
		if s.CustomerOnly && !fromCustomer {
			continue
		}
		if cs.Has(s.Community) {
			out = append(out, s)
		}
	}
	return out
}

// BlackholeCommunity returns the catalog's blackhole trigger, if any.
func (c *Catalog) BlackholeCommunity() (bgp.Community, bool) {
	if c == nil {
		return 0, false
	}
	for _, s := range c.Services {
		if s.Kind == SvcBlackhole {
			return s.Community, true
		}
	}
	return 0, false
}

// PropagationMode captures the per-AS community forwarding behaviour whose
// diversity §4.4 measures: "some remove all communities, some do not
// tamper with them at all, while others act upon and remove communities
// directed at them and leave the rest in place."
type PropagationMode int

// Propagation modes.
const (
	// PropForwardAll relays every received community untouched (the
	// JunOS-style default, §6.1).
	PropForwardAll PropagationMode = iota
	// PropStripAll removes all communities on export (the Cisco-style
	// behaviour when send-community is not configured, §6.1).
	PropStripAll
	// PropActStripOwn removes communities addressed to this AS and
	// forwards the rest.
	PropActStripOwn
	// PropStripForeign keeps only communities this AS itself owns or
	// well-known values, stripping foreign ones.
	PropStripForeign
)

// String names the mode.
func (m PropagationMode) String() string {
	switch m {
	case PropForwardAll:
		return "forward-all"
	case PropStripAll:
		return "strip-all"
	case PropActStripOwn:
		return "act-strip-own"
	case PropStripForeign:
		return "strip-foreign"
	default:
		return "unknown"
	}
}

// ApplyPropagation transforms an outgoing community set per mode for an AS
// with the given 16-bit community-ASN identity.
func ApplyPropagation(mode PropagationMode, self uint16, cs bgp.CommunitySet) bgp.CommunitySet {
	switch mode {
	case PropStripAll:
		return nil
	case PropActStripOwn:
		return cs.Clone().RemoveASN(self)
	case PropStripForeign:
		return cs.Clone().RemoveIf(func(c bgp.Community) bool {
			return c.ASN() != self && !c.IsWellKnown()
		})
	default:
		return cs.Clone()
	}
}
