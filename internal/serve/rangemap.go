package serve

import "net/netip"

// RangeMap is the prefix-range ownership function for the sharded
// daemon: the address space is cut into N contiguous ranges by the
// first 32 bits of the address, and a prefix belongs to exactly one
// shard. Contiguity (instead of hashing) keeps each shard's slice of
// the routing table a literal range — operators can say "shard 2 owns
// 85.0.0.0 through 170.255.255.255" — and covering prefixes land near
// their more-specifics.
//
// Every shard daemon and the frontend must agree on N; ownership is a
// pure function, so there is no assignment state to coordinate.
type RangeMap struct {
	n int
}

// NewRangeMap builds the ownership map for n shards (n < 1 is treated
// as 1).
func NewRangeMap(n int) *RangeMap {
	if n < 1 {
		n = 1
	}
	return &RangeMap{n: n}
}

// Shards returns the shard count.
func (m *RangeMap) Shards() int { return m.n }

// Owner maps a prefix to its shard index: the top 32 address bits
// scaled into [0, n). IPv4 uses the whole address; IPv6 uses its top
// 32 bits (enough spread for range semantics, and cheap). An
// IPv4-mapped IPv6 address (::ffff:a.b.c.d) is unmapped first so it
// lands on the owner of the equivalent IPv4 prefix — Is4 is false for
// mapped addresses, and without the unmap their leading zero bytes
// would send every one of them to shard 0. An invalid prefix maps to
// shard 0 so every event has exactly one owner.
func (m *RangeMap) Owner(p netip.Prefix) int {
	if !p.IsValid() {
		return 0
	}
	addr := p.Addr().Unmap()
	var top uint32
	if addr.Is4() {
		a := addr.As4()
		top = uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3])
	} else {
		a := addr.As16()
		top = uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3])
	}
	return int(uint64(top) * uint64(m.n) >> 32)
}

// OwnerFunc returns the membership predicate for one shard — the shape
// durable.Options.Owner takes.
func (m *RangeMap) OwnerFunc(index int) func(netip.Prefix) bool {
	return func(p netip.Prefix) bool { return m.Owner(p) == index }
}
