package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"sync"
	"testing"

	"bgpworms/internal/durable"
	"bgpworms/internal/gen"
	"bgpworms/internal/obs"
	"bgpworms/internal/semantics"
	"bgpworms/internal/watch"
)

// churnEvents flattens the deterministic churn feed into an event list
// (the same harness the watch state and durable tests use), so shard
// equivalence tests feed every process the identical stream.
func churnEvents(t testing.TB) []watch.Event {
	t.Helper()
	w, err := gen.Build(gen.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.RunChurn(); err != nil {
		t.Fatal(err)
	}
	var events []watch.Event
	for _, c := range w.Collectors {
		obs := c.Observations()
		for i := range obs {
			ob := &obs[i]
			ev := watch.Event{
				Time:   ob.Time,
				Source: c.Name,
				PeerAS: uint32(ob.PeerAS),
				Prefix: ob.Prefix,
			}
			if ob.Route == nil {
				ev.Withdraw = true
			} else {
				ev.ASPath = ob.Route.ASPath.Sequence()
				ev.Communities = ob.Route.Communities.Clone()
			}
			events = append(events, ev)
		}
	}
	if len(events) < 300 {
		t.Fatalf("churn feed too small to shard meaningfully: %d events", len(events))
	}
	return spreadPrefixes(events)
}

// spreadPrefixes deterministically remaps each v4 prefix's first octet
// to a hash of its address: the gen worlds cluster their prefixes into
// one corner of the address space, which would put every event on one
// RangeMap slice and make shard-equivalence tests vacuous. The remap is
// a pure function of the original prefix, so identical prefixes stay
// identical and every process sees the same transformed feed.
func spreadPrefixes(events []watch.Event) []watch.Event {
	out := make([]watch.Event, len(events))
	for i, ev := range events {
		if ev.Prefix.IsValid() && ev.Prefix.Addr().Is4() && ev.Prefix.Bits() >= 8 {
			a := ev.Prefix.Addr().As4()
			h := fnv.New32a()
			h.Write(a[:])
			a[0] = byte(h.Sum32())
			ev.Prefix = netip.PrefixFrom(netip.AddrFrom4(a), ev.Prefix.Bits())
		}
		out[i] = ev
	}
	return out
}

// proc is one fully fed shard (or standalone) serving process: engines,
// durable store, and the Server handler over them.
type proc struct {
	eng   *watch.Engine
	sem   *semantics.Engine
	store *durable.Store
	srv   *Server
}

// startProc builds a daemon-shaped process (durable store included, so
// sequence assignment matches production), feeds it every event, and
// returns it flushed. owner nil = standalone reference.
func startProc(t testing.TB, events []watch.Event, idx, count int) *proc {
	t.Helper()
	reg := obs.NewRegistry()
	sem := semantics.NewEngine(semantics.Config{Workers: 2, Metrics: reg})
	holder := &semantics.Holder{}
	eng := watch.NewEngine(watch.Config{Shards: 4, Semantics: sem, Metrics: reg})
	opts := durable.Options{Dir: t.TempDir(), FsyncInterval: -1}
	if count > 1 {
		opts.Owner = NewRangeMap(count).OwnerFunc(idx)
	}
	store, _, err := durable.Open(eng, sem, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close(); eng.Close(); sem.Close() })
	sink := store.Sink()
	for _, ev := range events {
		sink(ev)
	}
	if err := store.Err(); err != nil {
		t.Fatal(err)
	}
	eng.Flush()
	return &proc{eng: eng, sem: sem, store: store, srv: New(Options{
		Watch: eng, Semantics: sem, Holder: holder, Registry: reg,
		Store: store, ShardIndex: idx, ShardCount: count,
	})}
}

func get(t testing.TB, h http.Handler, path string, hdr map[string]string) (int, http.Header, []byte) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Result().Header, rec.Body.Bytes()
}

func mustGet(t testing.TB, h http.Handler, path string) []byte {
	t.Helper()
	code, _, body := get(t, h, path, nil)
	if code != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, code, body)
	}
	return body
}

// statusCounter counts response codes per path — the proof that the
// frontend's second gather really revalidated (304) instead of
// refetching (200).
type statusCounter struct {
	h     http.Handler
	mu    sync.Mutex
	codes map[string]map[int]int
}

type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) { w.code = code; w.ResponseWriter.WriteHeader(code) }

func (c *statusCounter) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	c.h.ServeHTTP(sw, r)
	c.mu.Lock()
	if c.codes == nil {
		c.codes = map[string]map[int]int{}
	}
	if c.codes[r.URL.Path] == nil {
		c.codes[r.URL.Path] = map[int]int{}
	}
	c.codes[r.URL.Path][sw.code]++
	c.mu.Unlock()
}

func (c *statusCounter) count(path string, code int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.codes[path][code]
}

// TestServerDurableEndpoint pins the /durable shape with and without a
// store attached.
func TestServerDurableEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	eng := watch.NewEngine(watch.Config{Shards: 1, Metrics: reg})
	defer eng.Close()
	bare := New(Options{Watch: eng, Registry: reg})
	var p durablePayload
	if err := json.Unmarshal(mustGet(t, bare.Handler(), "/durable"), &p); err != nil {
		t.Fatal(err)
	}
	if p.Enabled || p.Status != nil || p.Shards != 1 {
		t.Fatalf("bare /durable: %+v", p)
	}

	events := churnEvents(t)
	ref := startProc(t, events[:50], 0, 1)
	if err := json.Unmarshal(mustGet(t, ref.srv.Handler(), "/durable"), &p); err != nil {
		t.Fatal(err)
	}
	if !p.Enabled || p.Status == nil || p.Status.Seq != 50 {
		t.Fatalf("durable /durable: %+v (status %+v)", p, p.Status)
	}
}

// TestServerETagRevalidation pins the shard-side revalidation contract:
// versioned endpoints serve an ETag, honor If-None-Match with an empty
// 304, and the ETag rides headers only — bodies stay byte-identical
// across revalidating and plain requests.
func TestServerETagRevalidation(t *testing.T) {
	events := churnEvents(t)
	p := startProc(t, events, 0, 1)
	h := p.srv.Handler()
	for _, path := range []string{"/alerts", "/stats", "/dict/export"} {
		code, hdr, body := get(t, h, path, nil)
		if code != http.StatusOK {
			t.Fatalf("GET %s: %d", path, code)
		}
		etag := hdr.Get("ETag")
		if !strings.HasPrefix(etag, `"v`) {
			t.Fatalf("%s: no version ETag, got %q", path, etag)
		}
		code2, _, body2 := get(t, h, path, map[string]string{"If-None-Match": etag})
		if code2 != http.StatusNotModified || len(body2) != 0 {
			t.Fatalf("%s: revalidation got %d with %d body bytes", path, code2, len(body2))
		}
		code3, _, body3 := get(t, h, path, map[string]string{"If-None-Match": `"v999999"`})
		if code3 != http.StatusOK || !bytes.Equal(body3, body) {
			t.Fatalf("%s: stale-ETag refetch diverged (code %d)", path, code3)
		}
	}
}

// TestFrontendByteIdentity is the sharding acceptance test: three shard
// processes (prefix-range split, durable stores, full feed each) behind
// the scatter-gather frontend must serve /alerts byte-identical to one
// standalone process fed the same stream — plus exact /dict and
// aggregate /stats invariants.
func TestFrontendByteIdentity(t *testing.T) {
	events := churnEvents(t)
	ref := startProc(t, events, 0, 1)
	refH := ref.srv.Handler()

	const n = 3
	var urls []string
	shardProcs := make([]*proc, n)
	for i := 0; i < n; i++ {
		shardProcs[i] = startProc(t, events, i, n)
		ts := httptest.NewServer(shardProcs[i].srv.Handler())
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
	}
	fe := NewFrontend(urls, obs.NewRegistry())
	feH := fe.Handler()

	// Sanity: the split is real — every shard saw the whole feed but
	// ingested only its slice, and the slices sum to the whole.
	var ingested uint64
	for i, sp := range shardProcs {
		st := sp.eng.Stats()
		if st.Ingested == 0 || st.Ingested == uint64(len(events)) {
			t.Fatalf("shard %d ingested %d of %d — not a real split", i, st.Ingested, len(events))
		}
		ingested += st.Ingested
	}
	if ingested != uint64(len(events)) {
		t.Fatalf("shard ingest sums to %d, want %d", ingested, len(events))
	}

	// /alerts: byte-identical.
	refAlerts := mustGet(t, refH, "/alerts")
	feAlerts := mustGet(t, feH, "/alerts")
	if !bytes.Equal(refAlerts, feAlerts) {
		t.Fatalf("sharded /alerts diverged from single-process:\nref %d bytes, frontend %d bytes", len(refAlerts), len(feAlerts))
	}
	var ap alertsPayload
	if err := json.Unmarshal(refAlerts, &ap); err != nil {
		t.Fatal(err)
	}
	if ap.Count == 0 {
		t.Fatal("no alerts in reference run — equality is vacuous")
	}

	// Filtered view too.
	det := ap.Alerts[0].Detector
	if !bytes.Equal(mustGet(t, refH, "/alerts?detector="+det), mustGet(t, feH, "/alerts?detector="+det)) {
		t.Fatalf("sharded /alerts?detector=%s diverged", det)
	}

	// /prefix/{p}: routed to the owning shard, byte-identical.
	for _, a := range ap.Alerts[:min(5, len(ap.Alerts))] {
		path := "/prefix/" + a.Prefix.String()
		if !bytes.Equal(mustGet(t, refH, path), mustGet(t, feH, path)) {
			t.Fatalf("sharded %s diverged", path)
		}
	}

	// /dict: the merged dictionary index is byte-identical (entry sets
	// are exact under prefix sharding; only Peers is an upper bound).
	if !bytes.Equal(mustGet(t, refH, "/dict"), mustGet(t, feH, "/dict")) {
		t.Fatalf("sharded /dict diverged")
	}

	// /dict/{asn}: identical modulo the documented Peers upper bound.
	var refExport dictExportPayload
	if err := json.Unmarshal(mustGet(t, refH, "/dict/export"), &refExport); err != nil {
		t.Fatal(err)
	}
	if refExport.Count == 0 {
		t.Fatal("reference dictionary empty — equality is vacuous")
	}
	asn := refExport.Entries[0].Community.ASN()
	path := fmt.Sprintf("/dict/%d", asn)
	var refAS, feAS dictASPayload
	if err := json.Unmarshal(mustGet(t, refH, path), &refAS); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(mustGet(t, feH, path), &feAS); err != nil {
		t.Fatal(err)
	}
	if got, want := canonDict(t, &feAS), canonDict(t, &refAS); got != want {
		t.Fatalf("sharded %s diverged:\nref: %s\nfrontend: %s", path, want, got)
	}

	// /dict/stats: merged shape matches the reference dictionary.
	var ds frontendDictStats
	if err := json.Unmarshal(mustGet(t, feH, "/dict/stats"), &ds); err != nil {
		t.Fatal(err)
	}
	if ds.Observations != refExport.Observations || ds.Communities != refExport.Count {
		t.Fatalf("frontend /dict/stats %+v vs reference export obs=%d count=%d",
			ds, refExport.Observations, refExport.Count)
	}

	// /stats: totals are additive over the shards.
	var fs frontendStats
	if err := json.Unmarshal(mustGet(t, feH, "/stats"), &fs); err != nil {
		t.Fatal(err)
	}
	if len(fs.Shards) != n || fs.Total.Ingested != uint64(len(events)) || fs.Total.Alerts != uint64(ap.Count) {
		t.Fatalf("frontend /stats totals: %d shards, ingested %d (want %d), alerts %d (want %d)",
			len(fs.Shards), fs.Total.Ingested, len(events), fs.Total.Alerts, ap.Count)
	}

	// /healthz: all shards up.
	code, _, health := get(t, feH, "/healthz", nil)
	if code != http.StatusOK || !strings.Contains(string(health), `"shards_healthy": 3`) {
		t.Fatalf("frontend /healthz: %d\n%s", code, health)
	}
}

// canonDict renders a dictionary payload with the Peers upper bound
// neutralized — the one field prefix sharding cannot merge exactly.
func canonDict(t *testing.T, p *dictASPayload) string {
	t.Helper()
	for _, e := range p.Entries {
		e.Peers = 0
	}
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestFrontendRevalidation proves the gather's second pass rides 304s:
// the shard serves the body once, then only revalidations.
func TestFrontendRevalidation(t *testing.T) {
	events := churnEvents(t)
	p := startProc(t, events, 0, 1)
	counter := &statusCounter{h: p.srv.Handler()}
	ts := httptest.NewServer(counter)
	defer ts.Close()
	fe := NewFrontend([]string{ts.URL}, obs.NewRegistry())
	h := fe.Handler()

	first := mustGet(t, h, "/alerts")
	second := mustGet(t, h, "/alerts")
	if !bytes.Equal(first, second) {
		t.Fatal("cached merge diverged from first render")
	}
	if got := counter.count("/alerts", http.StatusOK); got != 1 {
		t.Fatalf("shard served %d full /alerts bodies, want 1", got)
	}
	if got := counter.count("/alerts", http.StatusNotModified); got != 1 {
		t.Fatalf("shard served %d /alerts revalidations, want 1", got)
	}
}

// TestFrontendShardFailure pins the no-partial-merge rule: with one
// shard down, merged endpoints refuse (502) rather than silently serve
// a view missing a slice of the prefix space, and /healthz degrades.
func TestFrontendShardFailure(t *testing.T) {
	events := churnEvents(t)
	var urls []string
	var servers []*httptest.Server
	for i := 0; i < 2; i++ {
		sp := startProc(t, events, i, 2)
		ts := httptest.NewServer(sp.srv.Handler())
		servers = append(servers, ts)
		urls = append(urls, ts.URL)
	}
	defer servers[0].Close()
	fe := NewFrontend(urls, obs.NewRegistry())
	h := fe.Handler()
	mustGet(t, h, "/alerts")

	servers[1].Close()
	if code, _, _ := get(t, h, "/alerts", nil); code != http.StatusBadGateway {
		t.Fatalf("/alerts with a dead shard: %d, want 502", code)
	}
	code, _, body := get(t, h, "/healthz", nil)
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), `"status": "degraded"`) {
		t.Fatalf("/healthz with a dead shard: %d\n%s", code, body)
	}
}
