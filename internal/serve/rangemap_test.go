package serve

import (
	"net/netip"
	"testing"
)

// TestRangeMapOwnerUnmapsV4Mapped is the regression test for the
// IPv4-mapped IPv6 bug: ::ffff:a.b.c.d prefixes must land on the owner
// of the equivalent IPv4 prefix, not on shard 0 (where the mapped
// form's leading zero bytes would put them).
func TestRangeMapOwnerUnmapsV4Mapped(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16} {
		m := NewRangeMap(n)
		cases := []struct{ v4, mapped string }{
			{"10.0.0.0/8", "::ffff:10.0.0.0/104"},
			{"85.0.0.0/8", "::ffff:85.0.0.0/104"},
			{"203.0.113.0/24", "::ffff:203.0.113.0/120"},
			{"255.255.255.0/24", "::ffff:255.255.255.0/120"},
		}
		for _, c := range cases {
			v4 := m.Owner(netip.MustParsePrefix(c.v4))
			mapped := m.Owner(netip.MustParsePrefix(c.mapped))
			if v4 != mapped {
				t.Errorf("n=%d: Owner(%s)=%d but Owner(%s)=%d", n, c.mapped, mapped, c.v4, v4)
			}
		}
		// The high half of the v4 space must not collapse onto shard 0
		// via the mapped form.
		if n > 1 {
			if got := m.Owner(netip.MustParsePrefix("::ffff:255.0.0.0/104")); got != n-1 {
				t.Errorf("n=%d: Owner(::ffff:255.0.0.0/104)=%d, want %d", n, got, n-1)
			}
		}
	}
}

// TestRangeMapOwnerPartition pins that Owner is a total function onto
// [0, n) and contiguous over the v4 space (range semantics: ascending
// addresses map to non-decreasing shard indices).
func TestRangeMapOwnerPartition(t *testing.T) {
	m := NewRangeMap(3)
	prev := 0
	for top := 0; top < 256; top++ {
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(top), 0, 0, 0}), 8)
		got := m.Owner(p)
		if got < 0 || got >= 3 {
			t.Fatalf("Owner(%s)=%d outside [0,3)", p, got)
		}
		if got < prev {
			t.Fatalf("Owner not contiguous: %s maps to %d after %d", p, got, prev)
		}
		prev = got
	}
	if m.Owner(netip.Prefix{}) != 0 {
		t.Fatal("invalid prefix must map to shard 0")
	}
}
