package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"bgpworms/internal/durable"
	"bgpworms/internal/obs"
	"bgpworms/internal/semantics"
	"bgpworms/internal/watch"
)

// metricValue scrapes one counter/gauge from the frontend's /metrics
// exposition.
func metricValue(t *testing.T, h http.Handler, name string) float64 {
	t.Helper()
	body := mustGet(t, h, "/metrics")
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + `(?:\{[^}]*\})? ([0-9.e+-]+)$`)
	m := re.FindSubmatch(body)
	if m == nil {
		return 0
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		t.Fatalf("metric %s: %v", name, err)
	}
	return v
}

// TestFrontendReplicaFailover is the replication acceptance test: with
// two replicas serving range 0, killing one mid-hammer must keep the
// merged /alerts byte-identical and /healthz ok (with a failover
// counted); killing the whole set must degrade to 502 + 503.
func TestFrontendReplicaFailover(t *testing.T) {
	events := churnEvents(t)
	// Range 0: two replicas — independent processes over the same feed
	// slice, which the deterministic engine makes byte-equivalent.
	repA := httptest.NewServer(startProc(t, events, 0, 2).srv.Handler())
	repB := httptest.NewServer(startProc(t, events, 0, 2).srv.Handler())
	other := httptest.NewServer(startProc(t, events, 1, 2).srv.Handler())
	defer repB.Close()
	defer other.Close()

	fe := NewFrontend([]string{repA.URL + "|" + repB.URL, other.URL}, obs.NewRegistry())
	h := fe.Handler()

	want := mustGet(t, h, "/alerts")
	const rounds = 6
	for i := 0; i < rounds; i++ {
		if i == rounds/2 {
			repA.Close() // kill one replica mid-hammer
		}
		if got := mustGet(t, h, "/alerts"); !bytes.Equal(got, want) {
			t.Fatalf("round %d: merged /alerts changed during replica failover", i)
		}
	}
	if v := metricValue(t, h, "frontend_failover_total"); v == 0 {
		t.Fatal("no failovers counted after killing a replica")
	}
	code, _, body := get(t, h, "/healthz", nil)
	if code != http.StatusOK || !strings.Contains(string(body), `"shards_healthy": 2`) {
		t.Fatalf("/healthz with one dead replica: %d\n%s", code, body)
	}

	// Whole set down: no silent partial merge.
	repB.Close()
	if code, _, _ := get(t, h, "/alerts", nil); code != http.StatusBadGateway {
		t.Fatalf("/alerts with a whole replica set down: %d, want 502", code)
	}
	code, _, body = get(t, h, "/healthz", nil)
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), `"status": "degraded"`) {
		t.Fatalf("/healthz with a whole replica set down: %d\n%s", code, body)
	}
}

// TestFrontendPrefixStatuses pins the /prefix proxy contract: upstream
// 200, 304, and 404 pass through to the client; 5xx triggers replica
// failover and only becomes 502 when every replica errors.
func TestFrontendPrefixStatuses(t *testing.T) {
	events := churnEvents(t)
	p := startProc(t, events, 0, 1)
	shard := httptest.NewServer(p.srv.Handler())
	defer shard.Close()
	fe := NewFrontend([]string{shard.URL}, obs.NewRegistry())
	h := fe.Handler()

	// A tracked prefix for the 200/304 legs.
	alerts := p.eng.Alerts()
	if len(alerts) == 0 {
		t.Fatal("no alerts — no known-tracked prefix to probe")
	}
	tracked := "/prefix/" + alerts[0].Prefix.String()
	code, hdr, body := get(t, h, tracked, nil)
	if code != http.StatusOK || len(body) == 0 {
		t.Fatalf("GET %s: %d", tracked, code)
	}
	etag := hdr.Get("ETag")
	if !strings.HasPrefix(etag, `"v`) {
		t.Fatalf("%s: no version ETag through the frontend, got %q", tracked, etag)
	}
	code, _, body = get(t, h, tracked, map[string]string{"If-None-Match": etag})
	if code != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("%s revalidation: %d with %d body bytes, want empty 304", tracked, code, len(body))
	}

	// An untracked (but valid) prefix must surface the shard's 404, not
	// a 502.
	untracked := "/prefix/192.0.2.0/30"
	if code, _, _ := get(t, p.srv.Handler(), untracked, nil); code != http.StatusNotFound {
		t.Fatalf("shard should 404 %s (feed unexpectedly tracks it)", untracked)
	}
	if code, _, body := get(t, h, untracked, nil); code != http.StatusNotFound {
		t.Fatalf("frontend %s: %d (%s), want the upstream 404", untracked, code, body)
	}

	// A malformed prefix stays a client error.
	if code, _, _ := get(t, h, "/prefix/not-a-prefix", nil); code != http.StatusBadRequest {
		t.Fatal("malformed prefix must 400")
	}

	// 5xx replica: with a healthy sibling the request fails over...
	boom := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "synthetic shard failure", http.StatusInternalServerError)
	}))
	defer boom.Close()
	reg2 := obs.NewRegistry()
	fe2 := NewFrontend([]string{boom.URL + "|" + shard.URL}, reg2)
	h2 := fe2.Handler()
	code, _, body = get(t, h2, tracked, nil)
	if code != http.StatusOK {
		t.Fatalf("%s with a 500ing preferred replica: %d (%s), want failover to 200", tracked, code, body)
	}
	if v := metricValue(t, h2, "frontend_failover_total"); v == 0 {
		t.Fatal("5xx failover not counted")
	}

	// ...and with no replica left, the set's failure is a 502.
	fe3 := NewFrontend([]string{boom.URL}, obs.NewRegistry())
	code, _, _ = get(t, fe3.Handler(), tracked, nil)
	if code != http.StatusBadGateway {
		t.Fatalf("%s with every replica 500ing: %d, want 502", tracked, code)
	}
}

// durableShard is one explicit-directory shard process for the reshard
// round trip: unlike startProc it exposes its durability directory and
// can be shut down gracefully mid-test.
type durableShard struct {
	eng   *watch.Engine
	sem   *semantics.Engine
	store *durable.Store
	srv   *Server
	ts    *httptest.Server
}

func startDurableShard(t *testing.T, dir string, idx, count int, events []watch.Event) *durableShard {
	t.Helper()
	reg := obs.NewRegistry()
	sem := semantics.NewEngine(semantics.Config{Workers: 2, Metrics: reg})
	eng := watch.NewEngine(watch.Config{Shards: 4, Semantics: sem, Metrics: reg})
	opts := durable.Options{Dir: dir, FsyncInterval: -1}
	if count > 1 {
		opts.Owner = NewRangeMap(count).OwnerFunc(idx)
	}
	store, _, err := durable.Open(eng, sem, opts)
	if err != nil {
		t.Fatal(err)
	}
	sink := store.Sink()
	for _, ev := range events {
		sink(ev)
	}
	if err := store.Err(); err != nil {
		t.Fatal(err)
	}
	eng.Flush()
	srv := New(Options{Watch: eng, Semantics: sem, Holder: &semantics.Holder{}, Registry: reg,
		Store: store, ShardIndex: idx, ShardCount: count})
	s := &durableShard{eng: eng, sem: sem, store: store, srv: srv}
	s.ts = httptest.NewServer(srv.Handler())
	return s
}

// stop shuts the shard down gracefully: the store's Close writes the
// final checkpoint walreshard relies on.
func (s *durableShard) stop(t *testing.T) {
	t.Helper()
	s.ts.Close()
	if err := s.store.Close(); err != nil {
		t.Fatal(err)
	}
	s.eng.Close()
	s.sem.Close()
}

// TestFrontendReshardByteIdentity is the end-to-end acceptance path:
// run a 2-shard durable fleet, capture the merged /alerts, stop the
// fleet, reshard its directories 2→3 with the exact ownership function
// cmd/walreshard wires (RangeMap over the destination count), boot the
// new fleet feed-less, and require the byte-identical merged surface.
func TestFrontendReshardByteIdentity(t *testing.T) {
	events := churnEvents(t)

	srcDirs := []string{t.TempDir(), t.TempDir()}
	var pre []byte
	{
		var urls []string
		shards := make([]*durableShard, len(srcDirs))
		for i, dir := range srcDirs {
			shards[i] = startDurableShard(t, dir, i, len(srcDirs), events)
			urls = append(urls, shards[i].ts.URL)
		}
		fe := NewFrontend(urls, obs.NewRegistry())
		pre = mustGet(t, fe.Handler(), "/alerts")
		for _, s := range shards {
			s.stop(t)
		}
	}
	if !strings.Contains(string(pre), `"detector"`) {
		t.Fatal("pre-reshard /alerts holds no alerts — identity would be vacuous")
	}

	dstDirs := []string{t.TempDir(), t.TempDir(), t.TempDir()}
	rm := NewRangeMap(len(dstDirs))
	rep, err := durable.Reshard(durable.ReshardOptions{SrcDirs: srcDirs, DstDirs: dstDirs, Owner: rm.Owner})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CheckpointSeq == 0 {
		t.Fatal("gracefully stopped fleet produced no checkpoint to split")
	}

	var urls []string
	for i, dir := range dstDirs {
		s := startDurableShard(t, dir, i, len(dstDirs), nil) // no feed: recovery only
		defer s.stop(t)
		urls = append(urls, s.ts.URL)
	}
	fe := NewFrontend(urls, obs.NewRegistry())
	h := fe.Handler()
	post := mustGet(t, h, "/alerts")
	if !bytes.Equal(pre, post) {
		t.Fatalf("resharded fleet /alerts diverged: pre %d bytes, post %d bytes", len(pre), len(post))
	}
	code, _, body := get(t, h, "/healthz", nil)
	if code != http.StatusOK || !strings.Contains(string(body), fmt.Sprintf(`"shards_healthy": %d`, len(dstDirs))) {
		t.Fatalf("resharded fleet /healthz: %d\n%s", code, body)
	}
}
