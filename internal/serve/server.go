// Package serve is wormwatchd's HTTP layer, split out of the command so
// the serving path is testable and benchmarkable without a process
// boundary. It has two faces:
//
//   - Server wraps one engine pair (watch + semantics) with
//     version-keyed JSON snapshot caches: a response body is rendered
//     once per engine change and shared by every concurrent reader at
//     that version. When a durable.Store is attached, /durable reports
//     its watermarks.
//   - Frontend (frontend.go) is the thin scatter-gather tier for the
//     sharded daemon: prefix-range ownership (rangemap.go) maps feeds
//     to N shard processes, and the frontend merges their version-keyed
//     snapshots into single-process-identical responses.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"net/netip"
	"strconv"
	"strings"
	"sync"
	"time"

	"bgpworms/internal/durable"
	"bgpworms/internal/obs"
	"bgpworms/internal/semantics"
	"bgpworms/internal/watch"
)

// Options assembles a shard server. Watch and Registry are required;
// the rest are optional.
type Options struct {
	Watch *watch.Engine
	// Semantics + Holder power the /dict endpoints; nil disables them.
	Semantics *semantics.Engine
	Holder    *semantics.Holder
	Registry  *obs.Registry
	// Store, when non-nil, surfaces the durability subsystem on
	// /durable.
	Store *durable.Store
	// ShardIndex / ShardCount identify this process in a sharded
	// deployment (0 / 1 when standalone); served on /healthz and
	// /durable so operators and the frontend can tell shards apart.
	ShardIndex int
	ShardCount int
	// Pprof exposes /debug/pprof/.
	Pprof bool
}

// Server wraps the engines with version-keyed JSON snapshot caches.
type Server struct {
	opts      Options
	start     time.Time
	alerts    snapshotCache
	stats     snapshotCache
	dictIndex snapshotCache
	dictStats snapshotCache
	dictExp   snapshotCache
}

// New builds the server. It does not start listening — mount Handler
// on an http.Server (or hit it directly in tests and benchmarks).
func New(opts Options) *Server {
	if opts.ShardCount <= 0 {
		opts.ShardCount = 1
	}
	return &Server{opts: opts, start: time.Now()}
}

func (s *Server) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("/healthz", s.handleHealthz)
	m.HandleFunc("/stats", s.handleStats)
	m.HandleFunc("/alerts", s.handleAlerts)
	m.HandleFunc("/prefix/", s.handlePrefix)
	m.HandleFunc("/durable", s.handleDurable)
	m.HandleFunc("/dict", s.handleDictIndex)
	m.HandleFunc("/dict/stats", s.handleDictStats)
	m.HandleFunc("/dict/export", s.handleDictExport)
	m.HandleFunc("/dict/", s.handleDictAS)
	m.Handle("/metrics", s.opts.Registry.Handler())
	if s.opts.Pprof {
		m.HandleFunc("/debug/pprof/", pprof.Index)
		m.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		m.HandleFunc("/debug/pprof/profile", pprof.Profile)
		m.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		m.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return m
}

// Handler wraps the mux with the HTTP-layer instrumentation: a request
// counter per route class and one latency histogram. Routes are
// labeled by their fixed first segment (parameterized tails collapse),
// so series cardinality is bounded by the endpoint table.
func (s *Server) Handler() http.Handler {
	m := s.mux()
	hist := s.opts.Registry.Histogram("http_request_seconds",
		"HTTP request service time", obs.DurationBuckets)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		m.ServeHTTP(w, r)
		hist.ObserveSince(start)
		s.opts.Registry.Counter(`http_requests_total{path="`+routeLabel(r.URL.Path)+`"}`,
			"HTTP requests by route").Inc()
	})
}

// routeLabel collapses a request path to its route class.
func routeLabel(path string) string {
	switch {
	case path == "/healthz", path == "/stats", path == "/alerts", path == "/metrics",
		path == "/durable", path == "/dict", path == "/dict/stats", path == "/dict/export":
		return path
	case strings.HasPrefix(path, "/prefix/"):
		return "/prefix"
	case strings.HasPrefix(path, "/dict/"):
		return "/dict/{asn}"
	case strings.HasPrefix(path, "/debug/pprof"):
		return "/debug/pprof"
	default:
		return "other"
	}
}

// dictSnapshot returns the dictionary view requests are served from:
// the holder's heartbeat copy (at most one heartbeat stale — the same
// snapshot the detectors consult), computed directly only on cold
// start before the first heartbeat. Serving the heartbeat snapshot
// keeps /dict reads from stalling ingest on flush barriers.
func (s *Server) dictSnapshot() *semantics.Snapshot {
	if snap := s.opts.Holder.Load(); snap != nil {
		return snap
	}
	snap := s.opts.Semantics.Snapshot()
	s.opts.Holder.Store(snap)
	return snap
}

// snapshotCache is a version-keyed rendered-JSON cache safe for
// concurrent readers: the fast path is a shared read lock and a byte
// slice copy-free write.
type snapshotCache struct {
	mu      sync.RWMutex
	version uint64
	valid   bool
	body    []byte
}

func (c *snapshotCache) get(version uint64, render func() ([]byte, error)) ([]byte, error) {
	c.mu.RLock()
	if c.valid && c.version == version {
		body := c.body
		c.mu.RUnlock()
		return body, nil
	}
	c.mu.RUnlock()
	body, err := render()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	// Last writer at the newest version wins; stale renders are simply
	// not cached over a fresher one.
	if !c.valid || version >= c.version {
		c.version, c.valid, c.body = version, true, body
	}
	c.mu.Unlock()
	return body, nil
}

func writeJSON(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
	if len(body) == 0 || body[len(body)-1] != '\n' {
		w.Write([]byte("\n"))
	}
}

// versionedJSON writes body with an ETag derived from version, honoring
// If-None-Match — the frontend's cheap revalidation path: an unchanged
// shard answers 304 with no body. The ETag rides a header rather than
// the payload so the body stays byte-identical to a single-process
// render.
func versionedJSON(w http.ResponseWriter, r *http.Request, version uint64, body []byte) {
	etag := `"v` + strconv.FormatUint(version, 10) + `"`
	w.Header().Set("ETag", etag)
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	writeJSON(w, body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.opts.Watch.Stats()
	build := obs.BuildInfo()
	payload := map[string]any{
		"status":         "ok",
		"start_time":     s.start.UTC().Format(time.RFC3339),
		"uptime_seconds": int64(time.Since(s.start).Seconds()),
		"go_version":     build.GoVersion,
		"git_sha":        build.GitSHA,
		"ingested":       st.Ingested,
		"dropped":        st.Dropped,
		"alerts":         st.Alerts,
	}
	if s.opts.ShardCount > 1 {
		payload["shard"] = s.opts.ShardIndex
		payload["shards"] = s.opts.ShardCount
	}
	body, _ := json.Marshal(payload)
	writeJSON(w, body)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	version := s.opts.Watch.Version()
	body, err := s.stats.get(version, func() ([]byte, error) {
		return json.MarshalIndent(s.opts.Watch.Stats(), "", "  ")
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	versionedJSON(w, r, version, body)
}

// durablePayload is the /durable response shape.
type durablePayload struct {
	Enabled bool `json:"enabled"`
	// Shard / Shards identify this process in a sharded deployment.
	Shard  int             `json:"shard"`
	Shards int             `json:"shards"`
	Status *durable.Status `json:"status,omitempty"`
}

// handleDurable reports the durability subsystem's watermarks (WAL
// size, checkpoint coverage, sticky errors) and this process's shard
// identity.
func (s *Server) handleDurable(w http.ResponseWriter, r *http.Request) {
	payload := durablePayload{
		Enabled: s.opts.Store != nil,
		Shard:   s.opts.ShardIndex,
		Shards:  s.opts.ShardCount,
	}
	if s.opts.Store != nil {
		st := s.opts.Store.Status()
		payload.Status = &st
	}
	body, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, body)
}

// alertsPayload is the /alerts response shape.
type alertsPayload struct {
	Count  int           `json:"count"`
	Alerts []watch.Alert `json:"alerts"`
}

func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	version := s.opts.Watch.Version()
	if det := r.URL.Query().Get("detector"); det != "" {
		// Filtered views are per-query; only the full view is cached.
		var filtered []watch.Alert
		for _, a := range s.opts.Watch.Alerts() {
			if a.Detector == det {
				filtered = append(filtered, a)
			}
		}
		body, err := json.MarshalIndent(alertsPayload{Count: len(filtered), Alerts: filtered}, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		versionedJSON(w, r, version, body)
		return
	}
	body, err := s.alerts.get(version, func() ([]byte, error) {
		alerts := s.opts.Watch.Alerts()
		return json.MarshalIndent(alertsPayload{Count: len(alerts), Alerts: alerts}, "", "  ")
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	versionedJSON(w, r, version, body)
}

// dictIndexPayload is the /dict response shape.
type dictIndexPayload struct {
	Observations uint64          `json:"observations"`
	Communities  int             `json:"communities"`
	ASes         []dictIndexItem `json:"ases"`
}

type dictIndexItem struct {
	ASN     uint16 `json:"asn"`
	Entries int    `json:"entries"`
}

// handleDictIndex lists every AS with inferred entries — the discovery
// entry point for /dict/{asn}.
func (s *Server) handleDictIndex(w http.ResponseWriter, r *http.Request) {
	if s.opts.Semantics == nil {
		http.Error(w, "dictionary inference disabled (-dict=false)", http.StatusNotFound)
		return
	}
	snap := s.dictSnapshot()
	body, err := s.dictIndex.get(snap.Version, func() ([]byte, error) {
		payload := dictIndexPayload{Observations: snap.Observations, Communities: snap.Len()}
		for _, asn := range snap.ASNs() {
			payload.ASes = append(payload.ASes, dictIndexItem{ASN: asn, Entries: len(snap.AS(asn))})
		}
		return json.MarshalIndent(payload, "", "  ")
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, body)
}

func (s *Server) handleDictStats(w http.ResponseWriter, r *http.Request) {
	if s.opts.Semantics == nil {
		http.Error(w, "dictionary inference disabled (-dict=false)", http.StatusNotFound)
		return
	}
	snap := s.dictSnapshot()
	body, err := s.dictStats.get(snap.Version, func() ([]byte, error) {
		return json.MarshalIndent(s.opts.Semantics.StatsOf(snap), "", "  ")
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, body)
}

// dictExportPayload is the /dict/export response shape: the whole
// dictionary in one page, the scatter unit the frontend merges.
type dictExportPayload struct {
	Version      uint64             `json:"version"`
	Observations uint64             `json:"observations"`
	Count        int                `json:"count"`
	Entries      []*semantics.Entry `json:"entries"`
}

// handleDictExport serves the full inferred dictionary. The frontend
// fetches this from every shard (with If-None-Match revalidation) and
// merges the partials; it is also a bulk-download convenience for
// operators.
func (s *Server) handleDictExport(w http.ResponseWriter, r *http.Request) {
	if s.opts.Semantics == nil {
		http.Error(w, "dictionary inference disabled (-dict=false)", http.StatusNotFound)
		return
	}
	snap := s.dictSnapshot()
	body, err := s.dictExp.get(snap.Version, func() ([]byte, error) {
		entries := snap.Entries()
		return json.MarshalIndent(dictExportPayload{
			Version:      snap.Version,
			Observations: snap.Observations,
			Count:        len(entries),
			Entries:      entries,
		}, "", "  ")
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	versionedJSON(w, r, snap.Version, body)
}

// dictASPayload is the /dict/{asn} response shape.
type dictASPayload struct {
	ASN     uint16             `json:"asn"`
	Count   int                `json:"count"`
	Entries []*semantics.Entry `json:"entries"`
}

func (s *Server) handleDictAS(w http.ResponseWriter, r *http.Request) {
	if s.opts.Semantics == nil {
		http.Error(w, "dictionary inference disabled (-dict=false)", http.StatusNotFound)
		return
	}
	raw := strings.TrimPrefix(r.URL.Path, "/dict/")
	asn, err := strconv.ParseUint(raw, 10, 16)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad ASN %q: %v", raw, err), http.StatusBadRequest)
		return
	}
	snap := s.dictSnapshot()
	entries := snap.AS(uint16(asn))
	if len(entries) == 0 {
		http.Error(w, fmt.Sprintf("no dictionary entries for AS%d", asn), http.StatusNotFound)
		return
	}
	body, err := json.MarshalIndent(dictASPayload{ASN: uint16(asn), Count: len(entries), Entries: entries}, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	versionedJSON(w, r, snap.Version, body)
}

func (s *Server) handlePrefix(w http.ResponseWriter, r *http.Request) {
	raw := strings.TrimPrefix(r.URL.Path, "/prefix/")
	p, err := netip.ParsePrefix(raw)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad prefix %q: %v", raw, err), http.StatusBadRequest)
		return
	}
	version := s.opts.Watch.Version()
	info, ok := s.opts.Watch.PrefixInfo(p)
	if !ok {
		http.Error(w, fmt.Sprintf("prefix %s not tracked", p), http.StatusNotFound)
		return
	}
	body, err := json.MarshalIndent(info, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	versionedJSON(w, r, version, body)
}
