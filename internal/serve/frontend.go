package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/netip"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"bgpworms/internal/obs"
	"bgpworms/internal/semantics"
	"bgpworms/internal/watch"
)

// Frontend is the thin scatter-gather tier of the sharded daemon: it
// owns no engine, only the shard URL list and the same RangeMap the
// shards run, and merges their version-keyed snapshots.
//
//   - /alerts        scatter to every shard, merge by global sequence.
//     Because shards assign identical global sequence numbers and own
//     disjoint prefix ranges, the merged body is byte-identical to a
//     single-process daemon's (TestFrontendByteIdentity).
//   - /prefix/{p}    route to the owning shard (pure function of the
//     prefix), proxy its response verbatim.
//   - /dict, /dict/stats, /dict/{asn}  scatter /dict/export, merge the
//     partial dictionaries with semantics.MergeEntries. Counters and
//     classes merge exactly; Peers is an upper bound (one session can
//     observe several shards' prefixes).
//   - /stats         scatter, serve per-shard snapshots plus sums.
//
// Revalidation rides ETags: every gather remembers each replica's ETag
// and body, sends If-None-Match, and an unchanged replica answers 304
// with no payload — so a quiet fleet serves cached merges at the cost
// of N tiny round trips. Caches are per-replica because shard ETags are
// engine version counters, which are not comparable across replicas of
// the same range.
type Frontend struct {
	sets   []*replicaSet
	rm     *RangeMap
	reg    *obs.Registry
	client *http.Client
	start  time.Time

	alerts  gatherCache
	stats   gatherCache
	dict    gatherCache
	dictMu  sync.Mutex
	dictKey string
	merged  []*semantics.Entry
	dictObs uint64

	scatterHist *obs.Histogram
	upstreamErr *obs.Counter
	failovers   *obs.Counter
}

// replicaSet is one prefix range's replicas: every URL serves the same
// RangeMap slice (daemons fed the same feed with the same -shard-index,
// or booted from copies of the same durability directory). The
// preferred index is sticky — it follows the last replica that answered
// — so a healthy fleet pays no failover probes.
type replicaSet struct {
	urls []string

	mu        sync.Mutex
	preferred int
	down      []bool
}

// order returns the replica indices in attempt order: the sticky
// preferred replica first, then the rest ascending.
func (rs *replicaSet) order() []int {
	rs.mu.Lock()
	p := rs.preferred
	rs.mu.Unlock()
	out := make([]int, 0, len(rs.urls))
	out = append(out, p)
	for i := range rs.urls {
		if i != p {
			out = append(out, i)
		}
	}
	return out
}

// mark records one replica attempt's outcome; a success also makes the
// replica preferred.
func (rs *replicaSet) mark(i int, ok bool) {
	rs.mu.Lock()
	rs.down[i] = !ok
	if ok {
		rs.preferred = i
	}
	rs.mu.Unlock()
}

// NewFrontend builds the scatter-gather tier over the given shard base
// URLs (e.g. "http://127.0.0.1:8581"). The shard order must match the
// shard indices the daemons were started with (-shard-index i serves
// RangeMap slice i and must be the i-th URL). An element may carry
// several replica URLs separated by "|" ("http://a:8581|http://b:8581");
// the frontend fails over between them and only reports a range down
// when every replica is.
func NewFrontend(shardURLs []string, reg *obs.Registry) *Frontend {
	sets := make([]*replicaSet, len(shardURLs))
	for i, u := range shardURLs {
		var urls []string
		for _, r := range strings.Split(u, "|") {
			if r = strings.TrimRight(strings.TrimSpace(r), "/"); r != "" {
				urls = append(urls, r)
			}
		}
		if len(urls) == 0 {
			urls = []string{""}
		}
		sets[i] = &replicaSet{urls: urls, down: make([]bool, len(urls))}
	}
	f := &Frontend{
		sets:   sets,
		rm:     NewRangeMap(len(sets)),
		reg:    reg,
		client: &http.Client{Timeout: 30 * time.Second},
		start:  time.Now(),
	}
	f.alerts.init(sets)
	f.stats.init(sets)
	f.dict.init(sets)
	f.scatterHist = reg.Histogram("frontend_scatter_seconds",
		"full scatter-gather round trip latency", obs.DurationBuckets)
	f.upstreamErr = reg.Counter("frontend_upstream_errors_total",
		"failed shard sub-requests")
	f.failovers = reg.Counter("frontend_failover_total",
		"replica fetch failures that moved the request to another replica")
	return f
}

// Handler returns the frontend's HTTP surface, instrumented like the
// shard server's.
func (f *Frontend) Handler() http.Handler {
	m := http.NewServeMux()
	m.HandleFunc("/healthz", f.handleHealthz)
	m.HandleFunc("/stats", f.handleStats)
	m.HandleFunc("/alerts", f.handleAlerts)
	m.HandleFunc("/prefix/", f.handlePrefix)
	m.HandleFunc("/dict", f.handleDictIndex)
	m.HandleFunc("/dict/stats", f.handleDictStats)
	m.HandleFunc("/dict/", f.handleDictAS)
	m.Handle("/metrics", f.reg.Handler())
	hist := f.reg.Histogram("http_request_seconds",
		"HTTP request service time", obs.DurationBuckets)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		m.ServeHTTP(w, r)
		hist.ObserveSince(start)
		f.reg.Counter(`http_requests_total{path="`+routeLabel(r.URL.Path)+`"}`,
			"HTTP requests by route").Inc()
	})
}

// gatherCache remembers, per shard per replica, the last ETag+body a
// path served, plus one merged render keyed by the joined
// replica:ETag vector (ETags from different replicas of a range are
// distinct version-counter spaces, so the replica index is part of the
// key).
type gatherCache struct {
	mu     sync.Mutex
	etags  [][]string
	bodies [][][]byte

	mergedKey  string
	mergedBody []byte
}

func (c *gatherCache) init(sets []*replicaSet) {
	c.etags = make([][]string, len(sets))
	c.bodies = make([][][]byte, len(sets))
	for i, s := range sets {
		c.etags[i] = make([]string, len(s.urls))
		c.bodies[i] = make([][]byte, len(s.urls))
	}
}

// shardResult is one fetch's outcome. fetch fills etag with the raw
// upstream ETag; fetchSet rewrites it to "replica:ETag" before the
// gather joins it into the merged-render key.
type shardResult struct {
	body []byte
	etag string
	err  error
}

// gather fetches path from every range concurrently — failing over
// inside each replica set — and returns the bodies plus the
// version-vector key. A range whose every replica fails fails the
// whole gather: a partial merge would silently drop a slice of the
// prefix space.
func (f *Frontend) gather(path string, c *gatherCache) ([][]byte, string, error) {
	start := time.Now()
	results := make([]shardResult, len(f.sets))
	var wg sync.WaitGroup
	for i := range f.sets {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = f.fetchSet(i, path, c)
		}(i)
	}
	wg.Wait()
	f.scatterHist.ObserveSince(start)

	bodies := make([][]byte, len(results))
	keys := make([]string, len(results))
	for i, res := range results {
		if res.err != nil {
			return nil, "", fmt.Errorf("shard %d: %w", i, res.err)
		}
		bodies[i] = res.body
		keys[i] = res.etag
	}
	return bodies, strings.Join(keys, "|"), nil
}

// fetchSet fetches path for one range, walking its replicas in sticky
// preferred-first order. Each failed attempt that still has a
// candidate behind it counts as a failover; the error only surfaces
// when the whole set is down.
func (f *Frontend) fetchSet(si int, path string, c *gatherCache) shardResult {
	set := f.sets[si]
	attempts := set.order()
	var errs []string
	for n, ri := range attempts {
		c.mu.Lock()
		etag, cached := c.etags[si][ri], c.bodies[si][ri]
		c.mu.Unlock()
		res := f.fetch(set.urls[ri]+path, etag, cached)
		if res.err != nil {
			f.upstreamErr.Inc()
			set.mark(ri, false)
			errs = append(errs, fmt.Sprintf("%s: %v", set.urls[ri], res.err))
			if n < len(attempts)-1 {
				f.failovers.Inc()
			}
			continue
		}
		set.mark(ri, true)
		c.mu.Lock()
		c.etags[si][ri], c.bodies[si][ri] = res.etag, res.body
		c.mu.Unlock()
		return shardResult{body: res.body, etag: fmt.Sprintf("%d:%s", ri, res.etag)}
	}
	return shardResult{err: fmt.Errorf("all %d replicas failed: %s", len(set.urls), strings.Join(errs, "; "))}
}

// fetch GETs url, revalidating against etag; a 304 answer reuses the
// cached body.
func (f *Frontend) fetch(url, etag string, cached []byte) shardResult {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return shardResult{err: err}
	}
	if etag != "" && cached != nil {
		req.Header.Set("If-None-Match", etag)
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return shardResult{err: err}
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotModified:
		return shardResult{body: cached, etag: etag}
	case http.StatusOK:
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return shardResult{err: err}
		}
		return shardResult{body: body, etag: resp.Header.Get("ETag")}
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return shardResult{err: fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))}
	}
}

// merged returns the cached render for key, or computes and caches it.
func (c *gatherCache) mergedFor(key string, render func() ([]byte, error)) ([]byte, error) {
	c.mu.Lock()
	if c.mergedKey == key && c.mergedBody != nil {
		body := c.mergedBody
		c.mu.Unlock()
		return body, nil
	}
	c.mu.Unlock()
	body, err := render()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.mergedKey, c.mergedBody = key, body
	c.mu.Unlock()
	return body, nil
}

func (f *Frontend) handleAlerts(w http.ResponseWriter, r *http.Request) {
	// Filters are applied after the merge so the filtered view is
	// consistent with the cached full view.
	detector := r.URL.Query().Get("detector")
	bodies, key, err := f.gather("/alerts", &f.alerts)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	mergeAll := func() ([]byte, error) {
		merged, err := mergeAlerts(bodies, "")
		if err != nil {
			return nil, err
		}
		return json.MarshalIndent(alertsPayload{Count: len(merged), Alerts: merged}, "", "  ")
	}
	if detector != "" {
		merged, err := mergeAlerts(bodies, detector)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		body, err := json.MarshalIndent(alertsPayload{Count: len(merged), Alerts: merged}, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, body)
		return
	}
	body, err := f.alerts.mergedFor(key, mergeAll)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	writeJSON(w, body)
}

// mergeAlerts decodes per-shard /alerts payloads and merges them by
// global sequence. Shards own disjoint prefix ranges, so sequence
// numbers never collide and a stable sort by Seq reconstructs the exact
// global order a single process would have produced.
func mergeAlerts(bodies [][]byte, detector string) ([]watch.Alert, error) {
	var merged []watch.Alert
	for i, b := range bodies {
		var p alertsPayload
		if err := json.Unmarshal(b, &p); err != nil {
			return nil, fmt.Errorf("shard %d /alerts: %w", i, err)
		}
		for _, a := range p.Alerts {
			if detector == "" || a.Detector == detector {
				merged = append(merged, a)
			}
		}
	}
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].Seq < merged[j].Seq })
	return merged, nil
}

func (f *Frontend) handlePrefix(w http.ResponseWriter, r *http.Request) {
	raw := strings.TrimPrefix(r.URL.Path, "/prefix/")
	p, err := netip.ParsePrefix(raw)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad prefix %q: %v", raw, err), http.StatusBadRequest)
		return
	}
	owner := f.rm.Owner(p.Masked())
	set := f.sets[owner]
	attempts := set.order()
	var errs []string
	for n, ri := range attempts {
		req, err := http.NewRequest(http.MethodGet, set.urls[ri]+"/prefix/"+raw, nil)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		// Forward the client's revalidation. ETags are engine version
		// counters, which the deterministic replay model makes consistent
		// across replicas at the same feed position: equal version means
		// equal bytes, and a lagging replica has a different version, so
		// the 304 can never lie.
		if inm := r.Header.Get("If-None-Match"); inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		resp, err := f.client.Do(req)
		if err == nil && resp.StatusCode >= 500 {
			// An erroring replica is indistinguishable from a dead one for
			// routing purposes: drain the reason and try the next.
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			err = fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
		} else if err == nil {
			// Any non-5xx answer is authoritative for the range — 200, 304,
			// and 404 (prefix not tracked) all propagate to the client.
			set.mark(ri, true)
			for _, h := range []string{"Content-Type", "ETag"} {
				if v := resp.Header.Get(h); v != "" {
					w.Header().Set(h, v)
				}
			}
			w.WriteHeader(resp.StatusCode)
			_, _ = io.Copy(w, resp.Body)
			resp.Body.Close()
			return
		}
		f.upstreamErr.Inc()
		set.mark(ri, false)
		errs = append(errs, fmt.Sprintf("%s: %v", set.urls[ri], err))
		if n < len(attempts)-1 {
			f.failovers.Inc()
		}
	}
	http.Error(w, fmt.Sprintf("shard %d: all %d replicas failed: %s",
		owner, len(set.urls), strings.Join(errs, "; ")), http.StatusBadGateway)
}

// frontendStats is the /stats response shape: each shard's snapshot
// plus the additive totals.
type frontendStats struct {
	Shards []watch.Stats `json:"shards"`
	Total  watch.Stats   `json:"total"`
}

func (f *Frontend) handleStats(w http.ResponseWriter, r *http.Request) {
	bodies, key, err := f.gather("/stats", &f.stats)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	body, err := f.stats.mergedFor(key, func() ([]byte, error) {
		payload := frontendStats{Total: watch.Stats{ByDetector: map[string]uint64{}}}
		for i, b := range bodies {
			var st watch.Stats
			if err := json.Unmarshal(b, &st); err != nil {
				return nil, fmt.Errorf("shard %d /stats: %w", i, err)
			}
			payload.Shards = append(payload.Shards, st)
			t := &payload.Total
			t.Ingested += st.Ingested
			t.Processed += st.Processed
			t.Dropped += st.Dropped
			t.Pending += st.Pending
			t.Alerts += st.Alerts
			t.AlertsTruncated += st.AlertsTruncated
			t.TrackedPrefixes += st.TrackedPrefixes
			t.Shards += st.Shards
			t.Version += st.Version
			t.WindowEvents, t.Window = st.WindowEvents, st.Window
			for k, v := range st.ByDetector {
				t.ByDetector[k] += v
			}
		}
		return json.MarshalIndent(payload, "", "  ")
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	writeJSON(w, body)
}

// mergedDict gathers /dict/export from every shard and returns the
// merged dictionary, cached on the shard version vector.
func (f *Frontend) mergedDict() ([]*semantics.Entry, uint64, error) {
	bodies, key, err := f.gather("/dict/export", &f.dict)
	if err != nil {
		return nil, 0, err
	}
	f.dictMu.Lock()
	defer f.dictMu.Unlock()
	if f.dictKey == key {
		return f.merged, f.dictObs, nil
	}
	lists := make([][]*semantics.Entry, len(bodies))
	var observations uint64
	for i, b := range bodies {
		var p dictExportPayload
		if err := json.Unmarshal(b, &p); err != nil {
			return nil, 0, fmt.Errorf("shard %d /dict/export: %w", i, err)
		}
		lists[i] = p.Entries
		observations += p.Observations
	}
	f.merged = semantics.MergeEntries(lists...)
	f.dictKey, f.dictObs = key, observations
	return f.merged, observations, nil
}

func (f *Frontend) handleDictIndex(w http.ResponseWriter, r *http.Request) {
	entries, observations, err := f.mergedDict()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	payload := dictIndexPayload{Observations: observations, Communities: len(entries)}
	perAS := map[uint16]int{}
	var order []uint16
	for _, e := range entries {
		asn := e.Community.ASN()
		if perAS[asn] == 0 {
			order = append(order, asn)
		}
		perAS[asn]++
	}
	// MergeEntries sorts by (ASN, community), so first-appearance order
	// is ascending ASN — the same order a shard's /dict serves.
	for _, asn := range order {
		payload.ASes = append(payload.ASes, dictIndexItem{ASN: asn, Entries: perAS[asn]})
	}
	body, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, body)
}

// frontendDictStats is the merged /dict/stats shape: dictionary shape
// from the merged entries, fleet-wide observation count from the
// shards.
type frontendDictStats struct {
	Observations uint64         `json:"observations"`
	Communities  int            `json:"communities"`
	ASes         int            `json:"ases"`
	ByClass      map[string]int `json:"by_class"`
}

func (f *Frontend) handleDictStats(w http.ResponseWriter, r *http.Request) {
	entries, observations, err := f.mergedDict()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	st := frontendDictStats{
		Observations: observations,
		Communities:  len(entries),
		ByClass:      map[string]int{},
	}
	seen := map[uint16]bool{}
	for _, e := range entries {
		st.ByClass[e.Class.String()]++
		seen[e.Community.ASN()] = true
	}
	st.ASes = len(seen)
	body, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, body)
}

func (f *Frontend) handleDictAS(w http.ResponseWriter, r *http.Request) {
	raw := strings.TrimPrefix(r.URL.Path, "/dict/")
	asn, err := strconv.ParseUint(raw, 10, 16)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad ASN %q: %v", raw, err), http.StatusBadRequest)
		return
	}
	entries, _, err := f.mergedDict()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	var own []*semantics.Entry
	for _, e := range entries {
		if e.Community.ASN() == uint16(asn) {
			own = append(own, e)
		}
	}
	if len(own) == 0 {
		http.Error(w, fmt.Sprintf("no dictionary entries for AS%d", asn), http.StatusNotFound)
		return
	}
	body, err := json.MarshalIndent(dictASPayload{ASN: uint16(asn), Count: len(own), Entries: own}, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, body)
}

func (f *Frontend) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// A range is healthy while at least one replica answers; the
	// frontend only degrades (and 503s) when a whole replica set is
	// down, mirroring the serving paths' failover.
	type replicaHealth struct {
		URL    string `json:"url"`
		Status string `json:"status"`
	}
	type shardHealth struct {
		URL      string          `json:"url"`
		Status   string          `json:"status"`
		Detail   json.RawMessage `json:"detail,omitempty"`
		Replicas []replicaHealth `json:"replicas,omitempty"`
	}
	payload := struct {
		Status        string        `json:"status"`
		Role          string        `json:"role"`
		UptimeSeconds int64         `json:"uptime_seconds"`
		ShardCount    int           `json:"shards"`
		ShardsHealthy int           `json:"shards_healthy"`
		ShardStatuses []shardHealth `json:"shard_statuses"`
	}{Status: "ok", Role: "frontend", UptimeSeconds: int64(time.Since(f.start).Seconds()), ShardCount: len(f.sets)}
	for _, set := range f.sets {
		h := shardHealth{URL: set.urls[0], Status: "ok"}
		healthy := false
		var firstErr string
		for ri, base := range set.urls {
			res := f.fetch(base+"/healthz", "", nil)
			status := "ok"
			if res.err != nil {
				f.upstreamErr.Inc()
				set.mark(ri, false)
				status = res.err.Error()
				if firstErr == "" {
					firstErr = status
				}
			} else {
				set.mark(ri, true)
				if !healthy {
					h.URL, h.Detail = base, json.RawMessage(res.body)
				}
				healthy = true
			}
			if len(set.urls) > 1 {
				h.Replicas = append(h.Replicas, replicaHealth{URL: base, Status: status})
			}
		}
		if healthy {
			payload.ShardsHealthy++
		} else {
			h.Status = firstErr
			payload.Status = "degraded"
		}
		payload.ShardStatuses = append(payload.ShardStatuses, h)
	}
	body, _ := json.MarshalIndent(payload, "", "  ")
	if payload.Status != "ok" {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write(append(body, '\n'))
		return
	}
	writeJSON(w, body)
}
