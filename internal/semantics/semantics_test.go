package semantics

import (
	"encoding/json"
	"net/netip"
	"testing"

	"bgpworms/internal/bgp"
	"bgpworms/internal/netx"
)

func TestPathFacts(t *testing.T) {
	cases := []struct {
		name    string
		path    []uint32
		asn     uint32
		onPath  bool
		travel  int
		prepend bool
	}{
		{"empty", nil, 7, false, -1, false},
		{"absent", []uint32{1, 2, 3}, 7, false, -1, false},
		{"peer", []uint32{7, 2, 3}, 7, true, 0, false},
		{"origin", []uint32{1, 2, 7}, 7, true, 2, false},
		{"prepended", []uint32{1, 7, 7, 7, 3}, 7, true, 1, true},
		{"prepending-before", []uint32{1, 1, 1, 7, 3}, 7, true, 1, false},
		{"stripped-distance", []uint32{9, 9, 1, 7}, 7, true, 2, false},
	}
	for _, tc := range cases {
		on, travel, prep := pathFacts(tc.path, tc.asn)
		if on != tc.onPath || travel != tc.travel || prep != tc.prepend {
			t.Errorf("%s: pathFacts(%v, %d) = (%v, %d, %v), want (%v, %d, %v)",
				tc.name, tc.path, tc.asn, on, travel, prep, tc.onPath, tc.travel, tc.prepend)
		}
	}
}

func TestClassifyRules(t *testing.T) {
	ev := func(mut func(*evidence)) *evidence {
		e := newEvidence()
		e.count = 10
		mut(e)
		return e
	}
	cases := []struct {
		name string
		c    bgp.Community
		e    *evidence
		want Class
	}{
		{"well-known", bgp.CommunityNoExport, ev(func(e *evidence) { e.onPath = 10 }), ClassWellKnown},
		{"host-route-majority", bgp.C(9, 999), ev(func(e *evidence) { e.hostRoute = 6; e.onPath = 10 }), ClassActionBlackhole},
		{"value-pattern-666", bgp.C(9, 666), ev(func(e *evidence) { e.offPath = 10 }), ClassActionBlackhole},
		{"prepend-majority", bgp.C(9, 101), ev(func(e *evidence) { e.onPath = 6; e.prepended = 4; e.offPath = 4 }), ClassActionPrepend},
		{"steering-mixed", bgp.C(9, 70), ev(func(e *evidence) { e.onPath = 6; e.offPath = 4 }), ClassActionSteering},
		{"informational-on-path", bgp.C(9, 100), ev(func(e *evidence) { e.onPath = 10; e.atOrigin = 10 }), ClassInformational},
		{"off-path-only", bgp.C(9, 40001), ev(func(e *evidence) { e.offPath = 10 }), ClassUnknown},
	}
	for _, tc := range cases {
		if got := classify(tc.c, tc.e); got != tc.want {
			t.Errorf("%s: classify(%s) = %s, want %s", tc.name, tc.c, got, tc.want)
		}
	}
}

// synthFeed builds a deterministic observation mix exercising every
// classification rule: origin tags, ingress tags, a blackhole trigger
// on host routes, a prepend service, a steering request, a squat.
func synthFeed(n int) []Observation {
	obs := make([]Observation, 0, n)
	for i := 0; i < n; i++ {
		pfxIdx := i % 512
		peer := uint32(100 + i%11)
		mid := uint32(1000 + i%31)
		origin := uint32(10000 + pfxIdx)
		ob := Observation{
			PeerAS: peer,
			Prefix: netip.PrefixFrom(netx.V4(10, byte(pfxIdx>>8), byte(pfxIdx), 0), 24),
			ASPath: []uint32{peer, mid, origin},
		}
		switch i % 8 {
		case 0: // blackhole trigger on a host route
			ob.Prefix = netip.PrefixFrom(netx.V4(10, byte(pfxIdx>>8), byte(pfxIdx), 9), 32)
			ob.Communities = bgp.NewCommunitySet(bgp.C(uint16(mid), 666))
		case 1: // prepend request, acted on (mid prepended)
			ob.ASPath = []uint32{peer, mid, mid, mid, origin}
			ob.Communities = bgp.NewCommunitySet(bgp.C(uint16(mid), 103))
		case 2: // steering request still below its definer (off-path)
			ob.ASPath = []uint32{origin}
			ob.PeerAS = origin
			ob.Communities = bgp.NewCommunitySet(bgp.C(uint16(mid), 70))
		case 3: // the same steering value past the definer (on-path)
			ob.Communities = bgp.NewCommunitySet(bgp.C(uint16(mid), 70))
		case 4: // off-path-only private tag
			ob.Communities = bgp.NewCommunitySet(bgp.C(uint16(64512+i%1023), 100))
		case 5: // well-known
			ob.Communities = bgp.NewCommunitySet(bgp.CommunityNoExport)
		default: // origin + ingress informational tags
			ob.Communities = bgp.NewCommunitySet(
				bgp.C(uint16(origin), 100), bgp.C(uint16(mid), 1000))
		}
		obs = append(obs, ob)
	}
	return obs
}

// TestSemanticsDeterminismAcrossWorkers is the engine's core contract:
// the snapshot — entries, evidence counters, classes, fan-out — is
// bit-identical for 1, 4, and 16 workers.
func TestSemanticsDeterminismAcrossWorkers(t *testing.T) {
	feed := synthFeed(20000)
	var want []byte
	for _, workers := range []int{1, 4, 16} {
		e := NewEngine(Config{Workers: workers, BatchSize: 64})
		for i := range feed {
			e.Ingest(feed[i])
		}
		snap := e.Snapshot()
		e.Close()
		got, err := json.Marshal(snap.Entries())
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			if snap.Len() == 0 {
				t.Fatal("empty dictionary")
			}
			continue
		}
		if string(got) != string(want) {
			t.Fatalf("workers=%d: snapshot differs from workers=1", workers)
		}
	}
}

// TestSynthFeedClasses pins the classifier's behavior on the synthetic
// mix end to end.
func TestSynthFeedClasses(t *testing.T) {
	e := NewEngine(Config{Workers: 4})
	defer e.Close()
	for _, ob := range synthFeed(20000) {
		e.Ingest(ob)
	}
	snap := e.Snapshot()
	expect := map[bgp.Community]Class{
		bgp.C(1000, 666):      ClassActionBlackhole,
		bgp.C(1000, 103):      ClassActionPrepend,
		bgp.C(1000, 70):       ClassActionSteering,
		bgp.C(1000, 1000):     ClassInformational,
		bgp.C(10006, 100):     ClassInformational,
		bgp.CommunityNoExport: ClassWellKnown,
	}
	for c, want := range expect {
		entry, ok := snap.Lookup(c)
		if !ok {
			t.Fatalf("community %s not inferred", c)
		}
		if entry.Class != want {
			t.Errorf("community %s classified %s, want %s (evidence %+v)", c, entry.Class, want, entry)
		}
	}
	// Private tags stay unknown: off-path only.
	if entry, ok := snap.Lookup(bgp.C(64512, 100)); ok && entry.Class != ClassUnknown {
		t.Errorf("private tag classified %s, want unknown", entry.Class)
	}
	if snap.Version == 0 || snap.Observations == 0 {
		t.Fatalf("snapshot meta not populated: %+v", snap)
	}
	// The per-AS view is sorted and consistent with Lookup.
	for _, asn := range snap.ASNs() {
		es := snap.AS(asn)
		for i, en := range es {
			if en.Community.ASN() != asn {
				t.Fatalf("AS %d view holds %s", asn, en.Community)
			}
			if i > 0 && es[i-1].Community >= en.Community {
				t.Fatalf("AS %d view not sorted", asn)
			}
		}
	}
}

// TestScoreAgainst checks the precision/recall/class-accuracy math on a
// hand-built truth.
func TestScoreAgainst(t *testing.T) {
	e := NewEngine(Config{Workers: 2})
	defer e.Close()
	for _, ob := range synthFeed(4000) {
		e.Ingest(ob)
	}
	snap := e.Snapshot()
	truth := make(Truth)
	for _, asn := range snap.ASNs() {
		for _, en := range snap.AS(asn) {
			truth.Add(en.Community, en.Class)
		}
	}
	sc := ScoreAgainst(snap, truth)
	if sc.Precision() != 1 || sc.Recall() != 1 || sc.ClassAccuracy() != 1 {
		t.Fatalf("self-score should be perfect: %+v", sc)
	}
	// A truth entry inference never saw lowers recall but not precision.
	truth.Add(bgp.C(42, 4242), ClassInformational)
	sc = ScoreAgainst(snap, truth)
	if sc.Recall() >= 1 || sc.Precision() != 1 {
		t.Fatalf("recall should drop, precision hold: %+v", sc)
	}
	// An inferred entry outside truth (a squat) lowers precision.
	delete(truth, bgp.C(42, 4242))
	victim := snap.Entries()[0].Community
	delete(truth, victim)
	sc = ScoreAgainst(snap, truth)
	if sc.Precision() >= 1 {
		t.Fatalf("precision should drop: %+v", sc)
	}
	if RenderScore(sc) == "" {
		t.Fatal("empty render")
	}
}

// TestTruthAddKeepsAction pins the action-over-informational rule.
func TestTruthAddKeepsAction(t *testing.T) {
	tr := make(Truth)
	c := bgp.C(9, 666)
	tr.Add(c, ClassActionBlackhole)
	tr.Add(c, ClassInformational)
	if tr[c] != ClassActionBlackhole {
		t.Fatalf("action downgraded to %s", tr[c])
	}
	if got := sortedTruth(tr); len(got) != 1 || got[0] != c {
		t.Fatalf("sortedTruth = %v", got)
	}
}

// TestTryIngestUnloaded: with headroom, the lossy path folds the same
// dictionary as the blocking one and drops nothing.
func TestTryIngestUnloaded(t *testing.T) {
	feed := synthFeed(4000)
	blocking := NewEngine(Config{Workers: 2})
	lossy := NewEngine(Config{Workers: 2})
	defer blocking.Close()
	defer lossy.Close()
	for i := range feed {
		blocking.Ingest(feed[i])
		lossy.TryIngest(feed[i])
	}
	a, _ := json.Marshal(blocking.Snapshot().Entries())
	b, _ := json.Marshal(lossy.Snapshot().Entries())
	if string(a) != string(b) {
		t.Fatal("lossy and blocking paths diverged without load")
	}
	if st := lossy.Stats(); st.Dropped != 0 {
		t.Fatalf("unloaded TryIngest dropped %d", st.Dropped)
	}
}

// TestHolder exercises the atomic snapshot cell.
func TestHolder(t *testing.T) {
	var h Holder
	if _, ok := h.Lookup(bgp.C(1, 1)); ok {
		t.Fatal("empty holder resolved a community")
	}
	e := NewEngine(Config{Workers: 1})
	defer e.Close()
	e.Ingest(Observation{
		PeerAS: 1, Prefix: netx.MustPrefix("10.0.0.0/24"),
		ASPath:      []uint32{1, 2},
		Communities: bgp.NewCommunitySet(bgp.C(2, 100)),
	})
	h.Store(e.Snapshot())
	if _, ok := h.Lookup(bgp.C(2, 100)); !ok {
		t.Fatal("holder missed stored entry")
	}
}
