package semantics_test

import (
	"bytes"
	"encoding/json"
	"net/netip"
	"testing"

	"bgpworms/internal/bgp"
	"bgpworms/internal/semantics"
)

// synthObs builds a deterministic observation stream exercising every
// evidence dimension: on/off path, host routes, prepending, fan-out.
func synthObs(n int) []semantics.Observation {
	out := make([]semantics.Observation, 0, n)
	for i := 0; i < n; i++ {
		asn := uint16(65000 + i%4)
		path := []uint32{uint32(65100 + i%3), uint32(asn), uint32(7000 + i%5)}
		if i%7 == 0 {
			path = []uint32{uint32(65100 + i%3), uint32(asn), uint32(asn), uint32(7000 + i%5)}
		}
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i % 11), byte(i % 200), 0}), 24)
		if i%13 == 0 {
			p = netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i % 11), byte(i % 200), 1}), 32)
		}
		out = append(out, semantics.Observation{
			PeerAS: uint32(65100 + i%3),
			Prefix: p,
			ASPath: path,
			Communities: bgp.NewCommunitySet(
				bgp.C(asn, uint16(i%9)),
				bgp.C(65000+uint16(i%2), 666),
			),
		})
	}
	return out
}

func snapshotJSON(t testing.TB, e *semantics.Engine) []byte {
	t.Helper()
	b, err := json.Marshal(e.Snapshot().Entries())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSemanticsExportRestoreRoundTrip mirrors the watch-engine proof:
// an export → JSON → restore → remainder run must end with the same
// dictionary as an uninterrupted run.
func TestSemanticsExportRestoreRoundTrip(t *testing.T) {
	obs := synthObs(5000)
	cut := len(obs) / 3

	ref := semantics.NewEngine(semantics.Config{Workers: 3})
	for _, ob := range obs {
		ref.Ingest(ob)
	}
	want := snapshotJSON(t, ref)
	ref.Close()

	first := semantics.NewEngine(semantics.Config{Workers: 3})
	for _, ob := range obs[:cut] {
		first.Ingest(ob)
	}
	st := first.ExportState()
	first.Close()

	blob, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var decoded semantics.State
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}

	second := semantics.NewEngine(semantics.Config{Workers: 5})
	defer second.Close()
	if err := second.RestoreState(&decoded); err != nil {
		t.Fatal(err)
	}
	for _, ob := range obs[cut:] {
		second.Ingest(ob)
	}
	if got := snapshotJSON(t, second); !bytes.Equal(got, want) {
		t.Fatalf("restored dictionary differs from uninterrupted run (%d vs %d bytes)", len(got), len(want))
	}
}

// TestSemanticsExportDeterministic pins byte-stable exports.
func TestSemanticsExportDeterministic(t *testing.T) {
	e := semantics.NewEngine(semantics.Config{Workers: 4})
	defer e.Close()
	for _, ob := range synthObs(2000) {
		e.Ingest(ob)
	}
	a, _ := json.Marshal(e.ExportState())
	b, _ := json.Marshal(e.ExportState())
	if !bytes.Equal(a, b) {
		t.Fatal("ExportState is not byte-stable across calls")
	}
}

// TestSemanticsRestoreGuard pins the fresh-engine-only contract.
func TestSemanticsRestoreGuard(t *testing.T) {
	e := semantics.NewEngine(semantics.Config{Workers: 1})
	defer e.Close()
	e.Ingest(synthObs(1)[0])
	if err := e.RestoreState(&semantics.State{Seq: 5}); err == nil {
		t.Fatal("RestoreState accepted an engine that already ingested")
	}
}

// TestMergeEntriesMatchesSingleRun splits a stream by prefix shard (the
// frontend's scatter-gather shape), infers per-shard dictionaries, and
// checks the merged entries against a single-process run: every counter
// field, bound, and the re-derived class must match exactly; Peers may
// only exceed (distinct counts do not add across shards).
func TestMergeEntriesMatchesSingleRun(t *testing.T) {
	obs := synthObs(5000)

	single := semantics.NewEngine(semantics.Config{Workers: 2})
	for _, ob := range obs {
		single.Ingest(ob)
	}
	want := single.Snapshot().Entries()
	single.Close()

	const shards = 3
	parts := make([][]*semantics.Entry, shards)
	for s := 0; s < shards; s++ {
		e := semantics.NewEngine(semantics.Config{Workers: 2})
		for i, ob := range obs {
			if int(ob.Prefix.Addr().As4()[2])%shards == s {
				o := ob
				o.Seq = uint64(i + 1)
				e.Ingest(o)
			}
		}
		parts[s] = e.Snapshot().Entries()
		e.Close()
	}
	got := semantics.MergeEntries(parts...)

	if len(got) != len(want) {
		t.Fatalf("merged %d entries, single run has %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Community != g.Community {
			t.Fatalf("entry %d: community %s vs %s", i, w.Name, g.Name)
		}
		if g.Class != w.Class || g.Count != w.Count || g.OnPath != w.OnPath ||
			g.OffPath != w.OffPath || g.AtOrigin != w.AtOrigin || g.HostRoute != w.HostRoute ||
			g.Prepended != w.Prepended || g.MaxTravel != w.MaxTravel || g.Prefixes != w.Prefixes {
			t.Fatalf("entry %s merged mismatch:\nwant %+v\ngot  %+v", w.Name, w, g)
		}
		if g.Peers < w.Peers {
			t.Fatalf("entry %s merged peers %d < single-run %d", w.Name, g.Peers, w.Peers)
		}
	}
}
