package semantics

import (
	"fmt"
	"sort"

	"bgpworms/internal/bgp"
	"bgpworms/internal/stats"
)

// Truth is a ground-truth dictionary: every community a world's
// policies legitimately define or attach, with its true usage class.
// gen.Internet exports one (Registry.Dict / TruthDict), which is what
// makes inference precision and recall measurable per scenario.
type Truth map[bgp.Community]Class

// Add records one truth entry. Action classes win over informational on
// duplicates (a value can be both tagged and acted on; the action is
// the security-relevant meaning).
func (t Truth) Add(c bgp.Community, cl Class) {
	if prev, ok := t[c]; ok && prev.IsAction() && !cl.IsAction() {
		return
	}
	t[c] = cl
}

// ClassScore is the per-class confusion slice of a Score.
type ClassScore struct {
	Class Class `json:"class"`
	// TruthTotal is how many truth entries carry this class; Inferred
	// how many of those inference surfaced at all; Matched how many it
	// surfaced with the correct class.
	TruthTotal int `json:"truth_total"`
	Inferred   int `json:"inferred"`
	Matched    int `json:"matched"`
}

// Score grades an inferred dictionary against ground truth.
type Score struct {
	// InferredTotal is the dictionary size; InferredInTruth how many of
	// its entries correspond to a legitimately defined community.
	// Precision = InferredInTruth / InferredTotal: squats, decoys, and
	// poison values push it down.
	InferredTotal   int `json:"inferred_total"`
	InferredInTruth int `json:"inferred_in_truth"`
	// TruthTotal is the ground-truth size; TruthInferred how many truth
	// entries inference surfaced. Recall = TruthInferred / TruthTotal:
	// communities never used on the wire (offered services nobody
	// requested, stripped tags) bound it below 1 — the visibility limit
	// §4.4 measures from the other side.
	TruthTotal    int `json:"truth_total"`
	TruthInferred int `json:"truth_inferred"`
	// ClassMatched counts truth-and-inferred entries whose inferred
	// class equals the true class; ClassAccuracy is its share of
	// TruthInferred.
	ClassMatched int          `json:"class_matched"`
	PerClass     []ClassScore `json:"per_class"`
}

// Precision is the share of inferred entries backed by ground truth.
func (s Score) Precision() float64 {
	if s.InferredTotal == 0 {
		return 1
	}
	return float64(s.InferredInTruth) / float64(s.InferredTotal)
}

// Recall is the share of ground-truth entries inference surfaced.
func (s Score) Recall() float64 {
	if s.TruthTotal == 0 {
		return 1
	}
	return float64(s.TruthInferred) / float64(s.TruthTotal)
}

// ClassAccuracy is the share of surfaced truth entries whose class was
// inferred correctly.
func (s Score) ClassAccuracy() float64 {
	if s.TruthInferred == 0 {
		return 1
	}
	return float64(s.ClassMatched) / float64(s.TruthInferred)
}

// ScoreSummary is the flat, structured slice of a Score a suite
// harness aggregates and gates on: the three quality ratios plus the
// sizes they were computed from.
type ScoreSummary struct {
	Precision     float64 `json:"precision"`
	Recall        float64 `json:"recall"`
	ClassAccuracy float64 `json:"class_accuracy"`
	Inferred      int     `json:"inferred"`
	TruthTotal    int     `json:"truth_total"`
}

// Summary flattens the score into its gateable ratios.
func (s Score) Summary() ScoreSummary {
	return ScoreSummary{
		Precision:     s.Precision(),
		Recall:        s.Recall(),
		ClassAccuracy: s.ClassAccuracy(),
		Inferred:      s.InferredTotal,
		TruthTotal:    s.TruthTotal,
	}
}

// ScoreAgainst grades snap against truth.
func ScoreAgainst(snap *Snapshot, truth Truth) Score {
	sc := Score{InferredTotal: snap.Len(), TruthTotal: len(truth)}
	per := make(map[Class]*ClassScore)
	for _, cl := range Classes() {
		per[cl] = &ClassScore{Class: cl}
	}
	for c, cl := range truth {
		per[cl].TruthTotal++
		e, ok := snap.Lookup(c)
		if !ok {
			continue
		}
		sc.TruthInferred++
		per[cl].Inferred++
		if e.Class == cl {
			sc.ClassMatched++
			per[cl].Matched++
		}
	}
	for _, e := range snap.Entries() {
		if _, ok := truth[e.Community]; ok {
			sc.InferredInTruth++
		}
	}
	for _, cl := range Classes() {
		sc.PerClass = append(sc.PerClass, *per[cl])
	}
	return sc
}

// RenderScore renders the score as a per-class table plus summary line.
func RenderScore(s Score) string {
	t := stats.NewTable("Class", "Truth", "Inferred", "ClassMatch")
	for _, cs := range s.PerClass {
		t.Row(cs.Class.String(), cs.TruthTotal, cs.Inferred, cs.Matched)
	}
	out := t.String()
	out += fmt.Sprintf("\nentries=%d truth=%d precision=%.2f recall=%.2f class-accuracy=%.2f\n",
		s.InferredTotal, s.TruthTotal, s.Precision(), s.Recall(), s.ClassAccuracy())
	return out
}

// RenderDictionary renders a snapshot (optionally one AS) as the table
// cmd/commdict prints.
func RenderDictionary(snap *Snapshot, asn int) string {
	t := stats.NewTable("Community", "Class", "Count", "OnPath", "OffPath", "HostRt", "Peers", "Prefixes", "Travel")
	entries := snap.Entries()
	if asn >= 0 {
		entries = snap.AS(uint16(asn))
	}
	for _, e := range entries {
		t.Row(e.Name, e.Class.String(), e.Count, e.OnPath, e.OffPath, e.HostRoute, e.Peers, e.Prefixes, e.MaxTravel)
	}
	out := t.String()
	out += fmt.Sprintf("\n%d entries across %d ASes from %d observations (version %d)\n",
		snap.Len(), len(snap.ASNs()), snap.Observations, snap.Version)
	return out
}

// sortedTruth lists truth communities in canonical order (tests and
// renders).
func sortedTruth(t Truth) []bgp.Community {
	out := make([]bgp.Community, 0, len(t))
	for c := range t {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
