// Package semantics is the community dictionary-inference engine: it
// consumes routing observation streams (core MRT paths, collector
// exports, simnet/watch taps) and maintains per-AS community
// dictionaries — which 16-bit values each AS has been observed using,
// what usage class the evidence implies (informational, blackhole
// trigger, steering, prepend, well-known), how far and wide each value
// propagates, and when it was first and last seen. This is the
// AS-level usage-classification direction of Krenc et al. crossed with
// CommunityWatch's inferred dictionaries: communities are opaque 32-bit
// values to every AS except their definer, so the only dictionary a
// third party can hold is the one inference builds from what the wire
// shows.
//
// The engine shares the repo's determinism discipline (core.Pipeline,
// watch.Engine): ingestion fans observation batches over a worker pool,
// each worker folds a private partial dictionary, and Snapshot merges
// the partials. Every fold is commutative and associative (counter
// sums, min/max of sequence numbers and timestamps, set unions), so the
// merged dictionary — and the classification computed from it — is
// bit-identical for any worker count and any batch interleaving
// (TestSemanticsDeterminismAcrossWorkers).
//
// Classification is fused into the snapshot merge: one pass over the
// merged evidence assigns each community its Class; there is no second
// scan of the observation stream. The classifier is wire-honest — it
// uses only signals a passive observer has (path position, prefix
// shape, prepending, value patterns), which is why it over-counts
// blackhole triggers on squatted :666 values exactly as §7.6 describes,
// and why Score against gen ground truth is the interesting number.
package semantics

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"sort"
	"time"

	"bgpworms/internal/bgp"
	"bgpworms/internal/policy"
)

// Class is the inferred usage class of one community value, the
// Krenc-style taxonomy reduced to what this repo's worlds exercise.
type Class uint8

// Usage classes.
const (
	// ClassUnknown marks insufficient or contradictory evidence —
	// off-path-only sightings (private-ASN tags, squats) land here.
	ClassUnknown Class = iota
	// ClassInformational marks tagging with no routing action: origin,
	// ingress, and location tags (the dominant class, §4.2).
	ClassInformational
	// ClassActionBlackhole marks RTBH triggers (§5.1/§7.3).
	ClassActionBlackhole
	// ClassActionSteering marks route-selection actions that leave no
	// path trace: local-pref, selective announce/suppress (§5.2/§7.4).
	ClassActionSteering
	// ClassActionPrepend marks prepend services, visible as path
	// inflation at the defining AS (§7.4).
	ClassActionPrepend
	// ClassWellKnown marks the reserved 65535:* and 0:* ranges.
	ClassWellKnown
)

// String names the class (kebab-case, stable for JSON).
func (c Class) String() string {
	switch c {
	case ClassInformational:
		return "informational"
	case ClassActionBlackhole:
		return "action-blackhole"
	case ClassActionSteering:
		return "action-steering"
	case ClassActionPrepend:
		return "action-prepend"
	case ClassWellKnown:
		return "well-known"
	default:
		return "unknown"
	}
}

// MarshalJSON renders the class as its name.
func (c Class) MarshalJSON() ([]byte, error) { return []byte(`"` + c.String() + `"`), nil }

// UnmarshalJSON parses a class name (the scatter-gather frontend
// decodes shard dictionary exports).
func (c *Class) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "unknown":
		*c = ClassUnknown
	case "informational":
		*c = ClassInformational
	case "action-blackhole":
		*c = ClassActionBlackhole
	case "action-steering":
		*c = ClassActionSteering
	case "action-prepend":
		*c = ClassActionPrepend
	case "well-known":
		*c = ClassWellKnown
	default:
		return fmt.Errorf("semantics: unknown class %q", name)
	}
	return nil
}

// IsAction reports whether the class triggers a routing action.
func (c Class) IsAction() bool {
	return c == ClassActionBlackhole || c == ClassActionSteering || c == ClassActionPrepend
}

// Classes lists every class in declaration order (for stable reports).
func Classes() []Class {
	return []Class{ClassUnknown, ClassInformational, ClassActionBlackhole,
		ClassActionSteering, ClassActionPrepend, ClassWellKnown}
}

// ClassOfService maps a policy catalog service kind to the usage class
// its community belongs to — the ground-truth side of Score.
func ClassOfService(k policy.ServiceKind) Class {
	switch k {
	case policy.SvcBlackhole:
		return ClassActionBlackhole
	case policy.SvcPrepend:
		return ClassActionPrepend
	case policy.SvcLocalPref, policy.SvcAnnounceTo, policy.SvcNoAnnounceTo, policy.SvcNoExport:
		return ClassActionSteering
	case policy.SvcLocation:
		return ClassInformational
	default:
		return ClassUnknown
	}
}

// Observation is one normalized routing sighting entering the engine.
// Withdrawals carry no communities and are ignored; feeds may skip them.
type Observation struct {
	// Seq orders the observation in its stream; 0 means "assign": the
	// engine stamps its own ingest sequence.
	Seq uint64
	// Time is the sighting timestamp. Zero means "synthesize" from Seq,
	// keeping clockless feeds (simnet taps) deterministic.
	Time time.Time
	// PeerAS is the session the sighting arrived on (fan-out evidence).
	PeerAS uint32
	Prefix netip.Prefix
	// ASPath is nearest-AS-first (peer first, origin last), raw.
	ASPath []uint32
	// Communities is the normalized community set.
	Communities bgp.CommunitySet
}

// Entry is one inferred dictionary entry: a community, its evidence
// counters, and the class the classifier assigns to that evidence.
type Entry struct {
	Community bgp.Community `json:"community"`
	// Name is the presentation form ("ASN:value", or the well-known
	// symbolic name).
	Name  string `json:"name"`
	Class Class  `json:"class"`
	// Count is the number of announcements the community appeared on.
	Count uint64 `json:"count"`
	// OnPath / OffPath split sightings by whether the defining AS was on
	// the (stripped) AS path; AtOrigin counts sightings where it was the
	// origin itself.
	OnPath   uint64 `json:"on_path"`
	OffPath  uint64 `json:"off_path"`
	AtOrigin uint64 `json:"at_origin"`
	// HostRoute counts sightings on full-length (host) prefixes — the
	// RTBH announcement shape.
	HostRoute uint64 `json:"host_route"`
	// Prepended counts sightings where the defining AS appeared two or
	// more consecutive times on the raw path.
	Prepended uint64 `json:"prepended"`
	// Peers / Prefixes are the propagation fan-out: distinct observing
	// sessions and distinct tagged prefixes.
	Peers    int `json:"peers"`
	Prefixes int `json:"prefixes"`
	// MaxTravel is the maximum AS-hop distance beyond the defining AS
	// the community was seen at (-1 when the AS was never on path).
	MaxTravel int `json:"max_travel"`
	// FirstSeq/LastSeq and FirstSeen/LastSeen bound the sighting span.
	FirstSeq  uint64    `json:"first_seq"`
	LastSeq   uint64    `json:"last_seq"`
	FirstSeen time.Time `json:"first_seen"`
	LastSeen  time.Time `json:"last_seen"`
}

// Snapshot is an immutable point-in-time dictionary: every inferred
// entry, classified, indexed by community and grouped per defining AS.
// Snapshots are safe for concurrent readers and implement the Provider
// interface the watch detectors consume.
type Snapshot struct {
	// Version is the engine version the snapshot was taken at.
	Version uint64
	// Observations is the number of observations folded so far.
	Observations uint64

	entries map[bgp.Community]*Entry
	byAS    map[uint16][]*Entry
	asns    []uint16
}

// Lookup returns the dictionary entry for c, if inference has one.
func (s *Snapshot) Lookup(c bgp.Community) (*Entry, bool) {
	e, ok := s.entries[c]
	return e, ok
}

// AS returns the dictionary of one defining AS, sorted by value.
func (s *Snapshot) AS(asn uint16) []*Entry { return s.byAS[asn] }

// ASNs returns every defining AS with at least one entry, ascending.
func (s *Snapshot) ASNs() []uint16 { return s.asns }

// Len is the total number of dictionary entries.
func (s *Snapshot) Len() int { return len(s.entries) }

// Entries returns every entry sorted by (ASN, value) — the canonical
// render order.
func (s *Snapshot) Entries() []*Entry {
	out := make([]*Entry, 0, len(s.entries))
	for _, asn := range s.asns {
		out = append(out, s.byAS[asn]...)
	}
	return out
}

// ByClass counts entries per class name.
func (s *Snapshot) ByClass() map[string]int {
	out := make(map[string]int)
	for _, e := range s.entries {
		out[e.Class.String()]++
	}
	return out
}

// Provider is the read interface dictionary consumers (the watch
// detectors, the /dict endpoints) depend on. *Snapshot implements it
// directly; *Holder implements it over an atomically swapped snapshot.
type Provider interface {
	Lookup(c bgp.Community) (*Entry, bool)
}

// newSnapshot indexes a merged entry map into an immutable snapshot.
func newSnapshot(version, observations uint64, entries map[bgp.Community]*Entry) *Snapshot {
	s := &Snapshot{
		Version:      version,
		Observations: observations,
		entries:      entries,
		byAS:         make(map[uint16][]*Entry),
	}
	for c, e := range entries {
		s.byAS[c.ASN()] = append(s.byAS[c.ASN()], e)
	}
	for asn, es := range s.byAS {
		sort.Slice(es, func(i, j int) bool { return es[i].Community < es[j].Community })
		s.asns = append(s.asns, asn)
	}
	sort.Slice(s.asns, func(i, j int) bool { return s.asns[i] < s.asns[j] })
	return s
}
