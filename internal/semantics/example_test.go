package semantics_test

import (
	"fmt"
	"net/netip"

	"bgpworms/internal/bgp"
	"bgpworms/internal/semantics"
)

// ExampleEngine infers a small dictionary from a handful of sightings
// and classifies each value: AS 3356's :666 appears on host routes (an
// RTBH trigger), its :100 travels as an ordinary ingress tag, and a
// squatted community naming an off-path AS stays unknown.
func ExampleEngine() {
	eng := semantics.NewEngine(semantics.Config{Workers: 2})
	defer eng.Close()

	path := []uint32{174, 3356, 9009}
	for i := 0; i < 4; i++ {
		// Ingress tag: on-path, ordinary /24 announcements.
		eng.Ingest(semantics.Observation{
			PeerAS: 174, Prefix: netip.MustParsePrefix("203.0.113.0/24"),
			ASPath:      path,
			Communities: bgp.NewCommunitySet(bgp.C(3356, 100)),
		})
		// RTBH trigger: host routes tagged 3356:666.
		eng.Ingest(semantics.Observation{
			PeerAS: 174, Prefix: netip.MustParsePrefix("203.0.113.9/32"),
			ASPath:      path,
			Communities: bgp.NewCommunitySet(bgp.C(3356, 666)),
		})
	}
	// A community naming an AS that is never on the path: a squat.
	eng.Ingest(semantics.Observation{
		PeerAS: 174, Prefix: netip.MustParsePrefix("203.0.113.0/24"),
		ASPath:      path,
		Communities: bgp.NewCommunitySet(bgp.C(65001, 666)),
	})

	snap := eng.Snapshot()
	for _, asn := range snap.ASNs() {
		for _, e := range snap.AS(asn) {
			fmt.Printf("%s %s count=%d on-path=%d\n", e.Name, e.Class, e.Count, e.OnPath)
		}
	}
	// Output:
	// 3356:100 informational count=4 on-path=4
	// 3356:666 action-blackhole count=4 on-path=4
	// 65001:666 action-blackhole count=1 on-path=0
}
