package semantics

import (
	"net/netip"

	"bgpworms/internal/collector"
	"bgpworms/internal/policy"
	"bgpworms/internal/simnet"
	"bgpworms/internal/topo"
)

// This file adapts the repo's update sources onto the engine: collector
// exports and simnet session taps. MRT byte streams ride the watch
// engine's mirroring (watch.Config.Semantics + Engine.IngestMRT), which
// keeps this package below core in the import graph. Withdrawals carry
// no communities and never reach the fold.

// IngestObservations replays a collector's recorded observations in
// sequence order, returning how many announcements were ingested.
func (e *Engine) IngestObservations(c *collector.Collector) int {
	n := 0
	for _, ob := range c.Observations() {
		if ob.Route == nil {
			continue
		}
		e.Ingest(Observation{
			Time:        ob.Time,
			PeerAS:      uint32(ob.PeerAS),
			Prefix:      ob.Prefix,
			ASPath:      ob.Route.ASPath.Sequence(),
			Communities: ob.Route.Communities.Clone(),
		})
		n++
	}
	return n
}

// Tap returns a simnet session tap feeding the engine: every delivered
// announcement in the simulated network becomes dictionary evidence.
// Attach via gen.Params.Tap / scenario.Context.Tap — or Network.Tap for
// a world that is already built.
func (e *Engine) Tap() simnet.UpdateTap {
	return func(from, to topo.ASN, prefix netip.Prefix, rt *policy.Route) {
		if rt == nil {
			return
		}
		e.Ingest(Observation{
			PeerAS:      uint32(from),
			Prefix:      prefix,
			ASPath:      rt.ASPath.Sequence(),
			Communities: rt.Communities.Clone(),
		})
	}
}
