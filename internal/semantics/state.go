package semantics

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"bgpworms/internal/bgp"
)

// State is the engine's persistable snapshot: the merged evidence for
// every community, plus the ingest counters. The durable store writes
// it next to the watch engine's state so a restarted daemon resumes
// with the dictionary it had. Because every fold is commutative,
// restoring is just preloading one worker's partial with the merged
// evidence — subsequent folds land on top and the next Snapshot is
// identical to one from an uninterrupted run.
type State struct {
	// Seq is the engine's last assigned observation sequence number.
	Seq       uint64 `json:"seq"`
	Ingested  uint64 `json:"ingested"`
	Processed uint64 `json:"processed"`
	Dropped   uint64 `json:"dropped"`
	// Communities is the merged evidence, sorted by community so the
	// export is byte-stable.
	Communities []EvidenceState `json:"communities,omitempty"`
}

// EvidenceState is one community's persisted evidence accumulator —
// the full fold state, not the classified Entry, so restoring loses
// nothing.
type EvidenceState struct {
	Community bgp.Community  `json:"community"`
	Count     uint64         `json:"count"`
	OnPath    uint64         `json:"on_path"`
	OffPath   uint64         `json:"off_path"`
	AtOrigin  uint64         `json:"at_origin"`
	HostRoute uint64         `json:"host_route"`
	Prepended uint64         `json:"prepended"`
	MaxTravel int            `json:"max_travel"`
	FirstSeq  uint64         `json:"first_seq"`
	LastSeq   uint64         `json:"last_seq"`
	FirstSeen time.Time      `json:"first_seen"`
	LastSeen  time.Time      `json:"last_seen"`
	Peers     []uint32       `json:"peers,omitempty"`
	Prefixes  []netip.Prefix `json:"prefixes,omitempty"`
}

// ExportState flushes pending folds and snapshots the merged evidence.
func (e *Engine) ExportState() *State {
	e.Flush()
	e.mu.Lock()
	seq := e.seq
	e.mu.Unlock()
	merged := make(map[bgp.Community]*evidence)
	for _, w := range e.workers {
		w.mu.Lock()
		for c, ev := range w.acc {
			m := merged[c]
			if m == nil {
				m = newEvidence()
				merged[c] = m
			}
			m.merge(ev)
		}
		w.mu.Unlock()
	}
	st := &State{
		Seq:       seq,
		Ingested:  e.ingested.Load(),
		Processed: e.processed.Load(),
		Dropped:   e.dropped.Load(),
	}
	for c, ev := range merged {
		es := EvidenceState{
			Community: c,
			Count:     ev.count,
			OnPath:    ev.onPath,
			OffPath:   ev.offPath,
			AtOrigin:  ev.atOrigin,
			HostRoute: ev.hostRoute,
			Prepended: ev.prepended,
			MaxTravel: ev.maxTravel,
			FirstSeq:  ev.firstSeq,
			LastSeq:   ev.lastSeq,
			FirstSeen: ev.firstTime,
			LastSeen:  ev.lastTime,
		}
		for p := range ev.peers {
			es.Peers = append(es.Peers, p)
		}
		sort.Slice(es.Peers, func(i, j int) bool { return es.Peers[i] < es.Peers[j] })
		for p := range ev.prefixes {
			es.Prefixes = append(es.Prefixes, p)
		}
		sort.Slice(es.Prefixes, func(i, j int) bool {
			a, b := es.Prefixes[i], es.Prefixes[j]
			if c := a.Addr().Compare(b.Addr()); c != 0 {
				return c < 0
			}
			return a.Bits() < b.Bits()
		})
		st.Communities = append(st.Communities, es)
	}
	sort.Slice(st.Communities, func(i, j int) bool {
		return st.Communities[i].Community < st.Communities[j].Community
	})
	return st
}

// RestoreState loads a previously exported State into a fresh engine
// (one that has never ingested). The merged evidence lands on worker
// 0's partial; commutativity makes that indistinguishable from having
// folded the original stream.
func (e *Engine) RestoreState(st *State) error {
	if st == nil {
		return nil
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return fmt.Errorf("semantics: restore into closed engine")
	}
	if e.seq != 0 || e.ingested.Load() != 0 {
		e.mu.Unlock()
		return fmt.Errorf("semantics: restore into engine that already ingested (seq=%d)", e.seq)
	}
	e.seq = st.Seq
	e.mu.Unlock()
	e.ingested.Store(st.Ingested)
	e.processed.Store(st.Processed)
	e.dropped.Store(st.Dropped)
	w := e.workers[0]
	w.mu.Lock()
	for i := range st.Communities {
		es := &st.Communities[i]
		ev := newEvidence()
		ev.count = es.Count
		ev.onPath = es.OnPath
		ev.offPath = es.OffPath
		ev.atOrigin = es.AtOrigin
		ev.hostRoute = es.HostRoute
		ev.prepended = es.Prepended
		ev.maxTravel = es.MaxTravel
		ev.firstSeq, ev.firstTime = es.FirstSeq, es.FirstSeen
		ev.lastSeq, ev.lastTime = es.LastSeq, es.LastSeen
		for _, p := range es.Peers {
			ev.peers[p] = struct{}{}
		}
		for _, p := range es.Prefixes {
			ev.prefixes[p] = struct{}{}
		}
		w.acc[es.Community] = ev
	}
	w.mu.Unlock()
	e.version.Add(1)
	return nil
}

// MergeEntries merges already-classified dictionary entries for the
// same communities — the scatter-gather path, where each shard holds a
// partial dictionary built from a disjoint slice of the prefix space.
// Counter fields add exactly, first/last bounds take min/max, and the
// class is re-derived from the merged counters (classification uses
// only additive evidence, so the merged class equals the class a
// single-process run would assign). Two caveats, both documented on
// the frontend: Peers sums to an upper bound (the same session can
// observe more than one shard's prefixes), while Prefixes is exact
// under prefix sharding (prefix sets are disjoint by construction).
// The result is sorted by (ASN, community), the canonical render order.
func MergeEntries(lists ...[]*Entry) []*Entry {
	merged := make(map[bgp.Community]*Entry)
	for _, list := range lists {
		for _, in := range list {
			m := merged[in.Community]
			if m == nil {
				cp := *in
				merged[in.Community] = &cp
				continue
			}
			if in.Count > 0 && (m.Count == 0 || in.FirstSeq < m.FirstSeq) {
				m.FirstSeq, m.FirstSeen = in.FirstSeq, in.FirstSeen
			}
			if in.LastSeq > m.LastSeq {
				m.LastSeq, m.LastSeen = in.LastSeq, in.LastSeen
			}
			m.Count += in.Count
			m.OnPath += in.OnPath
			m.OffPath += in.OffPath
			m.AtOrigin += in.AtOrigin
			m.HostRoute += in.HostRoute
			m.Prepended += in.Prepended
			m.Peers += in.Peers
			m.Prefixes += in.Prefixes
			if in.MaxTravel > m.MaxTravel {
				m.MaxTravel = in.MaxTravel
			}
		}
	}
	out := make([]*Entry, 0, len(merged))
	for _, m := range merged {
		m.Class = classify(m.Community, &evidence{
			count:     m.Count,
			onPath:    m.OnPath,
			offPath:   m.OffPath,
			atOrigin:  m.AtOrigin,
			hostRoute: m.HostRoute,
			prepended: m.Prepended,
			maxTravel: m.MaxTravel,
		})
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Community.ASN() != b.Community.ASN() {
			return a.Community.ASN() < b.Community.ASN()
		}
		return a.Community < b.Community
	})
	return out
}
