package semantics

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bgpworms/internal/bgp"
	"bgpworms/internal/obs"
)

// Config sizes the engine. The zero value is usable: every field has a
// default.
type Config struct {
	// Workers is the number of fold workers, each with a private partial
	// dictionary; 0 means one per available CPU. The snapshot is
	// invariant to this knob.
	Workers int
	// BatchSize is the ingest batching granularity (default 256
	// observations per worker dispatch).
	BatchSize int
	// QueueDepth is the per-worker batch queue (default 64 batches).
	QueueDepth int
	// Metrics, when non-nil, exposes the engine on that registry:
	// ingest/drop counters, a fold-batch latency histogram, and a
	// snapshot-merge counter. The scrape collector reads only the
	// engine's atomics — never Snapshot or Stats, which flush and could
	// stall a scrape behind a full worker queue. Metrics are
	// observational only; the dictionary is bit-identical either way.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	return c
}

// worker owns one partial dictionary. Its map is touched only by its
// goroutine during folds; Snapshot locks mu to read a quiesced partial.
type worker struct {
	ch  chan workBatch
	mu  sync.Mutex
	acc map[bgp.Community]*evidence
}

// workBatch is one unit of worker input: a run of observations, or a
// flush token (ack non-nil) closed once everything before it is folded.
type workBatch struct {
	obs []Observation
	ack chan struct{}
}

// logicalBase / logicalTick anchor the synthesized clock for clockless
// feeds (the same nominal month the generator and watch engine use).
var logicalBase = time.Date(2018, 4, 1, 0, 0, 0, 0, time.UTC)

const logicalTick = 37 * time.Millisecond

// Engine is the concurrent dictionary-inference engine. Create with
// NewEngine; feed with Ingest or the adapters in feed.go; read with
// Snapshot (which flushes and merges) at any time. Close releases the
// workers; the last snapshot stays readable.
type Engine struct {
	cfg     Config
	workers []*worker
	wg      sync.WaitGroup
	pool    sync.Pool

	mu      sync.Mutex // ingest path: seq, pending, next, closed
	seq     uint64
	pending []Observation
	next    int
	closed  bool

	ingested  atomic.Uint64
	processed atomic.Uint64
	dropped   atomic.Uint64
	version   atomic.Uint64
	merges    atomic.Uint64

	// Metrics plumbing (nil when Config.Metrics is unset).
	foldHist  *obs.Histogram
	collector *obs.CollectorHandle

	snapMu sync.Mutex
	snap   *Snapshot
}

// NewEngine starts an engine with cfg.Workers fold goroutines.
func NewEngine(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{cfg: cfg}
	e.pool.New = func() any {
		buf := make([]Observation, 0, cfg.BatchSize)
		return &buf
	}
	e.pending = *e.pool.Get().(*[]Observation)
	e.workers = make([]*worker, cfg.Workers)
	for i := range e.workers {
		w := &worker{
			ch:  make(chan workBatch, cfg.QueueDepth),
			acc: make(map[bgp.Community]*evidence),
		}
		e.workers[i] = w
		e.wg.Add(1)
		go e.run(w)
	}
	if cfg.Metrics != nil {
		e.bindMetrics(cfg.Metrics)
	}
	return e
}

// bindMetrics attaches the engine to a registry. The collector touches
// only atomics, so scrapes never block on worker queues.
func (e *Engine) bindMetrics(reg *obs.Registry) {
	e.foldHist = reg.Histogram("semantics_fold_seconds",
		"worker fold-batch latency", obs.DurationBuckets)
	e.collector = reg.RegisterCollector(func(emit func(obs.Sample)) {
		counter := func(name, help string, v uint64) {
			emit(obs.Sample{Name: name, Help: help, Type: obs.TypeCounter, Value: float64(v)})
		}
		counter("semantics_ingested_total", "observations accepted for folding", e.ingested.Load())
		counter("semantics_processed_total", "observations folded by workers", e.processed.Load())
		counter("semantics_dropped_total", "observations shed by the non-blocking ingest path", e.dropped.Load())
		counter("semantics_merges_total", "snapshot merges of worker partials", e.merges.Load())
	})
}

func (e *Engine) run(w *worker) {
	defer e.wg.Done()
	for b := range w.ch {
		if len(b.obs) > 0 {
			var start time.Time
			if e.foldHist != nil {
				start = time.Now()
			}
			w.mu.Lock()
			for i := range b.obs {
				ob := &b.obs[i]
				for _, c := range ob.Communities {
					ev := w.acc[c]
					if ev == nil {
						ev = newEvidence()
						w.acc[c] = ev
					}
					ev.fold(ob, c)
				}
			}
			w.mu.Unlock()
			if e.foldHist != nil {
				e.foldHist.ObserveSince(start)
			}
			e.processed.Add(uint64(len(b.obs)))
			e.version.Add(1)
			buf := b.obs[:0]
			e.pool.Put(&buf)
		}
		if b.ack != nil {
			close(b.ack)
		}
	}
}

// Ingest feeds one observation. Withdrawals and community-free
// sightings fold nothing and are skipped before the lock. Ingest after
// Close is a silent no-op.
//
// Dispatch happens under the ingest lock: worker channel sends never
// race Close's channel close, at the price of a blocked ingest when a
// worker queue is full (the workers drain independently, so this is
// backpressure, not deadlock).
func (e *Engine) Ingest(ob Observation) {
	e.ingest(ob, true)
}

// TryIngest feeds one observation without ever blocking: when the next
// worker's queue is full, the pending run is shed and counted in
// Stats.Dropped. This is the path lossy feeds (the watch engine's
// TryIngest mirror) ride — dictionary inference can never stall a live
// producer.
func (e *Engine) TryIngest(ob Observation) {
	e.ingest(ob, false)
}

func (e *Engine) ingest(ob Observation, block bool) {
	if len(ob.Communities) == 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.seq++
	if ob.Seq == 0 {
		ob.Seq = e.seq
	}
	if ob.Time.IsZero() {
		ob.Time = logicalBase.Add(time.Duration(ob.Seq) * logicalTick)
	}
	e.pending = append(e.pending, ob)
	e.ingested.Add(1)
	if len(e.pending) >= e.cfg.BatchSize {
		e.dispatchLocked(block)
	}
}

// dispatchLocked hands the pending run to the next worker round-robin;
// a non-blocking dispatch sheds the run when that worker's queue is
// full. Caller holds e.mu.
func (e *Engine) dispatchLocked(block bool) {
	if len(e.pending) == 0 {
		return
	}
	batch := e.pending
	e.pending = *e.pool.Get().(*[]Observation)
	w := e.workers[e.next]
	e.next = (e.next + 1) % len(e.workers)
	if block {
		w.ch <- workBatch{obs: batch}
		return
	}
	select {
	case w.ch <- workBatch{obs: batch}:
	default:
		e.dropped.Add(uint64(len(batch)))
		buf := batch[:0]
		e.pool.Put(&buf)
	}
}

// Flush dispatches the pending run and blocks until every worker has
// folded everything ingested before the call.
func (e *Engine) Flush() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.dispatchLocked(true)
	acks := make([]chan struct{}, len(e.workers))
	for i, wk := range e.workers {
		acks[i] = make(chan struct{})
		wk.ch <- workBatch{ack: acks[i]}
	}
	e.mu.Unlock()
	for _, a := range acks {
		<-a
	}
}

// Close flushes, stops the workers, and marks the engine closed.
// Snapshot remains valid after Close.
func (e *Engine) Close() {
	e.Flush()
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	for _, w := range e.workers {
		close(w.ch)
	}
	e.wg.Wait()
	e.collector.Unregister()
}

// Version is a monotone token advancing whenever folded state may have
// changed; snapshot caches key on it.
func (e *Engine) Version() uint64 { return e.version.Load() }

// Snapshot flushes pending work, merges every worker's partial
// dictionary, classifies each entry in the same pass, and returns the
// immutable result. The snapshot is bit-identical for any worker count
// (every fold is commutative); repeated calls at an unchanged version
// return the cached snapshot.
func (e *Engine) Snapshot() *Snapshot {
	e.Flush()
	e.snapMu.Lock()
	defer e.snapMu.Unlock()
	v := e.version.Load()
	if e.snap != nil && e.snap.Version == v {
		return e.snap
	}
	e.merges.Add(1)
	merged := make(map[bgp.Community]*evidence)
	for _, w := range e.workers {
		w.mu.Lock()
		for c, ev := range w.acc {
			m := merged[c]
			if m == nil {
				m = newEvidence()
				merged[c] = m
			}
			m.merge(ev)
		}
		w.mu.Unlock()
	}
	entries := make(map[bgp.Community]*Entry, len(merged))
	for c, ev := range merged {
		entries[c] = ev.entry(c)
	}
	e.snap = newSnapshot(v, e.processed.Load(), entries)
	return e.snap
}

// Stats is the engine's operational snapshot.
type Stats struct {
	Ingested  uint64 `json:"ingested"`
	Processed uint64 `json:"processed"`
	// Dropped counts observations shed by the non-blocking TryIngest
	// path when a worker queue was full.
	Dropped     uint64         `json:"dropped"`
	Workers     int            `json:"workers"`
	Communities int            `json:"communities"`
	ASes        int            `json:"ases"`
	ByClass     map[string]int `json:"by_class"`
	Version     uint64         `json:"version"`
}

// Stats flushes and reports counters plus dictionary shape (it takes a
// snapshot, reusing the cache when nothing changed).
func (e *Engine) Stats() Stats {
	return e.StatsOf(e.Snapshot())
}

// StatsOf reports the live counters against the shape of an existing
// snapshot, without flushing or re-merging — the daemon serves its
// heartbeat snapshot this way, so /dict/stats never stalls ingest.
func (e *Engine) StatsOf(s *Snapshot) Stats {
	return Stats{
		Ingested:    e.ingested.Load(),
		Processed:   e.processed.Load(),
		Dropped:     e.dropped.Load(),
		Workers:     len(e.workers),
		Communities: s.Len(),
		ASes:        len(s.ASNs()),
		ByClass:     s.ByClass(),
		Version:     s.Version,
	}
}

// Holder is an atomically swapped snapshot cell: a live daemon stores
// fresh snapshots on a heartbeat while detectors read the current one
// lock-free. A nil or empty holder looks like an empty dictionary.
type Holder struct {
	p atomic.Pointer[Snapshot]
}

// Store publishes a snapshot.
func (h *Holder) Store(s *Snapshot) { h.p.Store(s) }

// Load returns the current snapshot (nil before the first Store).
func (h *Holder) Load() *Snapshot { return h.p.Load() }

// Lookup implements Provider over the current snapshot.
func (h *Holder) Lookup(c bgp.Community) (*Entry, bool) {
	if s := h.p.Load(); s != nil {
		return s.Lookup(c)
	}
	return nil, false
}
