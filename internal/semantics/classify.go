package semantics

import (
	"net/netip"
	"time"

	"bgpworms/internal/bgp"
)

// evidence is the per-community accumulator one worker folds. Every
// field is a commutative/associative fold (sums, min/max, set unions),
// which is what makes the merged dictionary invariant to how the
// observation stream was partitioned across workers.
type evidence struct {
	count     uint64
	onPath    uint64
	offPath   uint64
	atOrigin  uint64
	hostRoute uint64
	prepended uint64
	maxTravel int
	firstSeq  uint64
	lastSeq   uint64
	firstTime time.Time
	lastTime  time.Time
	peers     map[uint32]struct{}
	prefixes  map[netip.Prefix]struct{}
}

func newEvidence() *evidence {
	return &evidence{
		maxTravel: -1,
		peers:     make(map[uint32]struct{}),
		prefixes:  make(map[netip.Prefix]struct{}),
	}
}

// pathFacts is what one raw AS path says about one defining AS, scanned
// once without allocating: whether the AS is on the path, its hop
// distance on the prepending-stripped path (§4.1 normalization), and
// whether it appeared prepended (≥2 consecutive copies).
func pathFacts(path []uint32, asn uint32) (onPath bool, travel int, prepended bool) {
	travel = -1
	stripped := -1 // index on the stripped path of the element under scan
	var prev uint32
	run := 0
	for i, a := range path {
		if i == 0 || a != prev {
			stripped++
			run = 1
		} else {
			run++
		}
		prev = a
		if a == asn {
			if travel < 0 {
				travel = stripped
			}
			onPath = true
			if run >= 2 {
				prepended = true
			}
		}
	}
	return onPath, travel, prepended
}

// isHostRoute reports whether the prefix is a full-length (host) route
// — the shape RTBH announcements take.
func isHostRoute(p netip.Prefix) bool {
	return p.IsValid() && p.Bits() == p.Addr().BitLen()
}

// fold updates the community's evidence with one sighting. Classified
// lazily at snapshot time; the hot path is counters and set inserts.
func (e *evidence) fold(ob *Observation, c bgp.Community) {
	asn := uint32(c.ASN())
	onPath, travel, prepended := pathFacts(ob.ASPath, asn)
	e.count++
	if onPath {
		e.onPath++
		if travel > e.maxTravel {
			e.maxTravel = travel
		}
		if prepended {
			e.prepended++
		}
		if len(ob.ASPath) > 0 && ob.ASPath[len(ob.ASPath)-1] == asn {
			e.atOrigin++
		}
	} else {
		e.offPath++
	}
	if isHostRoute(ob.Prefix) {
		e.hostRoute++
	}
	if e.count == 1 || ob.Seq < e.firstSeq {
		e.firstSeq, e.firstTime = ob.Seq, ob.Time
	}
	if ob.Seq > e.lastSeq {
		e.lastSeq, e.lastTime = ob.Seq, ob.Time
	}
	e.peers[ob.PeerAS] = struct{}{}
	e.prefixes[ob.Prefix] = struct{}{}
}

// merge folds another worker's evidence for the same community into e.
// Commutative: merge order never changes the result.
func (e *evidence) merge(o *evidence) {
	if o.count == 0 {
		return
	}
	if e.count == 0 || o.firstSeq < e.firstSeq {
		e.firstSeq, e.firstTime = o.firstSeq, o.firstTime
	}
	if o.lastSeq > e.lastSeq {
		e.lastSeq, e.lastTime = o.lastSeq, o.lastTime
	}
	e.count += o.count
	e.onPath += o.onPath
	e.offPath += o.offPath
	e.atOrigin += o.atOrigin
	e.hostRoute += o.hostRoute
	e.prepended += o.prepended
	if o.maxTravel > e.maxTravel {
		e.maxTravel = o.maxTravel
	}
	for p := range o.peers {
		e.peers[p] = struct{}{}
	}
	for p := range o.prefixes {
		e.prefixes[p] = struct{}{}
	}
}

// BlackholePattern reports whether the value looks like a blackhole
// trigger by convention: the RFC 7999 value/:666 label, or the :999
// label some providers substitute. It is the single definition shared
// by the classifier and the unknown-action-community detector, so the
// two cannot drift apart.
func BlackholePattern(c bgp.Community) bool {
	return c.IsBlackhole() || c.Value() == 999
}

// classify is the fused classifier: a pure function of one community's
// merged evidence, evaluated during the snapshot merge pass. The rules
// are wire-honest — only signals a passive observer has:
//
//  1. reserved ranges are well-known;
//  2. blackhole: host-route-majority sightings (the /32 RTBH shape), or
//     a conventional blackhole value with any sighting — the §7.6
//     value-pattern inference, which deliberately over-counts squatted
//     decoys (Score against ground truth quantifies exactly that);
//  3. prepend: the defining AS shows prepended on the majority of its
//     on-path sightings;
//  4. steering: the community was seen both below its defining AS
//     (off-path: traveling toward the AS that will act) and above it
//     (on-path: past the actor), never prepended, never at the origin —
//     the shape of a customer-set action request;
//  5. otherwise: on-path sightings mean informational tagging; off-path-
//     only sightings (private tags, bundles, squats) stay unknown.
func classify(c bgp.Community, e *evidence) Class {
	if c.IsWellKnown() {
		return ClassWellKnown
	}
	if e.count == 0 {
		return ClassUnknown
	}
	if e.hostRoute*2 >= e.count || BlackholePattern(c) {
		return ClassActionBlackhole
	}
	if e.onPath > 0 && e.prepended*2 >= e.onPath {
		return ClassActionPrepend
	}
	if e.onPath > 0 && e.offPath > 0 && e.atOrigin == 0 && e.prepended == 0 {
		return ClassActionSteering
	}
	if e.onPath > 0 {
		return ClassInformational
	}
	return ClassUnknown
}

// entry materializes the public Entry from merged evidence, with its
// class — the single classification point of the engine.
func (e *evidence) entry(c bgp.Community) *Entry {
	return &Entry{
		Community: c,
		Name:      c.Display(),
		Class:     classify(c, e),
		Count:     e.count,
		OnPath:    e.onPath,
		OffPath:   e.offPath,
		AtOrigin:  e.atOrigin,
		HostRoute: e.hostRoute,
		Prepended: e.prepended,
		Peers:     len(e.peers),
		Prefixes:  len(e.prefixes),
		MaxTravel: e.maxTravel,
		FirstSeq:  e.firstSeq,
		LastSeq:   e.lastSeq,
		FirstSeen: e.firstTime,
		LastSeen:  e.lastTime,
	}
}
