// Package conc holds the small concurrency primitives shared by the
// measurement pipeline (internal/core) and the simulation engine
// (internal/simnet): a bounded worker-pool loop and contiguous range
// chunking. Both packages depend on deterministic merges layered on top
// of these primitives; keeping one copy keeps their scheduling behavior
// identical.
package conc

import "sync"

// Do runs fn(i) for every i in [0, n) over at most workers goroutines.
// workers <= 1 (or n <= 1) degenerates to a serial loop on the calling
// goroutine.
func Do(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// Chunks splits [0, n) into at most w near-equal contiguous [lo, hi)
// ranges, in order.
func Chunks(n, w int) [][2]int {
	if n == 0 {
		return nil
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	out := make([][2]int, 0, w)
	for i := 0; i < w; i++ {
		lo := i * n / w
		hi := (i + 1) * n / w
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}
