package watch_test

import (
	"testing"

	_ "bgpworms/internal/attack" // registers the builtin scenarios
	"bgpworms/internal/watch"
)

// TestEvalPerfectRecall is the acceptance gate: replaying the paper's
// blackholing attack and the route-leak amplification through the watch
// engine must trigger every detector their ground truth requires.
func TestEvalPerfectRecall(t *testing.T) {
	for _, name := range []string{"rtbh", "route-leak-amplification"} {
		t.Run(name, func(t *testing.T) {
			rep, err := watch.EvalScenario(name, nil, watch.Config{Shards: 4})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Known {
				t.Fatalf("scenario %s declares no detection ground truth", name)
			}
			if rep.Stats.Dropped != 0 {
				t.Fatalf("lossless replay dropped %d events", rep.Stats.Dropped)
			}
			if rep.Recall != 1 {
				t.Fatalf("recall = %.2f, want 1\n%s", rep.Recall, watch.RenderEval(rep))
			}
			truth, _ := watch.ScenarioTruth(name)
			fired := map[string]int{}
			for _, s := range rep.Scores {
				fired[s.Detector] = s.Fired
			}
			for _, must := range truth.Must {
				if fired[must] == 0 {
					t.Fatalf("detector %s never fired\n%s", must, watch.RenderEval(rep))
				}
			}
			if rep.Result == nil || !rep.Result.Success {
				t.Fatalf("scenario itself failed: %+v", rep.Result)
			}
		})
	}
}

// TestEvalSquatOvercount reproduces §7.6's inference lesson live: the
// value-pattern blackhole detector fires on a squatted decoy community
// too, and the ground truth expects exactly that.
func TestEvalSquatOvercount(t *testing.T) {
	rep, err := watch.EvalScenario("blackhole-squatting", nil, watch.Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recall != 1 {
		t.Fatalf("recall = %.2f, want 1\n%s", rep.Recall, watch.RenderEval(rep))
	}
	for _, s := range rep.Scores {
		if s.Detector == "blackhole-onset" && s.Fired == 0 {
			t.Fatalf("decoy :666 did not trip the value-pattern detector\n%s", watch.RenderEval(rep))
		}
	}
}

// TestEvalUnknownScenarioTolerant pins that scenarios without declared
// truth still replay and report descriptive scores.
func TestEvalUnknownScenarioTolerant(t *testing.T) {
	rep, err := watch.EvalScenario("propagation-distance", nil, watch.Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Known {
		t.Fatal("propagation-distance should declare no truth")
	}
	if rep.Precision != 1 || rep.Recall != 1 {
		t.Fatalf("unknown truth must not charge precision/recall: %+v", rep)
	}
	if len(rep.Scores) == 0 {
		t.Fatal("descriptive scores missing")
	}
}
