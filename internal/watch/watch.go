// Package watch is the online streaming detection subsystem: it ingests
// a live BGP update feed and answers queries while ingesting, the
// CommunityWatch direction (Giotsas, 2018) layered on this repo's attack
// lab. Where internal/core is batch — a month of updates in, the §4
// figures out — watch maintains per-prefix sliding-window state in
// prefix-sharded ring buffers and runs a registry of detectors over
// every observation as it arrives: blackhole-community onset, community
// squatting, propagation-distance spikes, and route-leak signatures.
//
// The engine shares the repo's two load-bearing disciplines:
//
//   - prefix sharding (the core.Pipeline shape): each prefix's state
//     lives wholly inside one shard and detectors read only that state,
//     so the alert set is bit-identical for any shard count
//     (TestWatchDeterminismAcrossShards);
//   - non-blocking ingest for live sources: TryIngest and LiveTap never
//     block the producer — when the engine falls behind, events are
//     dropped and counted, so a tapped simnet run cannot stall on its
//     observer.
//
// Feeds come from adapters in feed.go (MRT byte streams via
// core.StreamMRTUpdates, collector exports, live simnet taps); eval.go
// closes the loop with scenario ground truth, replaying a registered
// attack through the engine and scoring each detector's precision and
// recall.
package watch

import (
	"net/netip"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"bgpworms/internal/bgp"
	"bgpworms/internal/obs"
	"bgpworms/internal/semantics"
)

// Event is one normalized routing observation entering the engine: an
// announcement or withdrawal seen on some feed session.
type Event struct {
	// Seq is the ingest sequence number (1-based). Callers normally
	// leave it zero and the engine assigns it in call order; a non-zero
	// Seq is trusted verbatim (the durable replay and sharded-feed
	// paths pre-assign global sequence numbers) and must arrive in
	// increasing order.
	Seq uint64 `json:"seq"`
	// Time is the observation timestamp. Zero means "synthesize": the
	// engine stamps a logical clock derived from Seq, which keeps
	// clockless feeds (simnet taps) deterministic.
	Time time.Time `json:"time"`
	// Source names the feed the event arrived on.
	Source string `json:"source,omitempty"`
	// PeerAS is the session peer (for simnet taps, the exporting AS).
	PeerAS uint32       `json:"peer_as"`
	Prefix netip.Prefix `json:"prefix"`
	// ASPath is nearest-AS-first (peer first, origin last), raw.
	ASPath []uint32 `json:"as_path,omitempty"`
	// Communities is the normalized community set.
	Communities bgp.CommunitySet `json:"communities,omitempty"`
	// Withdraw marks withdrawals; path and communities are empty.
	Withdraw bool `json:"withdraw,omitempty"`
}

// Origin returns the originating AS (0 for empty paths).
func (ev *Event) Origin() uint32 {
	if len(ev.ASPath) == 0 {
		return 0
	}
	return ev.ASPath[len(ev.ASPath)-1]
}

// onPath reports whether asn appears anywhere in the raw AS path.
func (ev *Event) onPath(asn uint32) bool {
	for _, a := range ev.ASPath {
		if a == asn {
			return true
		}
	}
	return false
}

// logicalBase anchors the synthesized clock for clockless feeds (the
// same nominal month the generator uses).
var logicalBase = time.Date(2018, 4, 1, 0, 0, 0, 0, time.UTC)

// logicalTick is the synthesized inter-event spacing.
const logicalTick = 37 * time.Millisecond

// Config sizes the engine. The zero value is usable: every field has a
// default.
type Config struct {
	// Shards is the number of prefix shards, each with its own worker
	// goroutine and state map; 0 means one per available CPU. The alert
	// set is invariant to this knob.
	Shards int
	// WindowEvents caps the per-prefix ring buffer (default 32): the
	// window holds at most this many recent events.
	WindowEvents int
	// Window is the time horizon (default 15m): events older than the
	// newest arrival minus Window are evicted from the ring.
	Window time.Duration
	// BatchSize is the ingest batching granularity (default 128 events
	// per shard dispatch).
	BatchSize int
	// QueueDepth is the per-shard batch queue (default 64 batches);
	// TryIngest drops when a shard's queue is full.
	QueueDepth int
	// MaxAlerts bounds retained alerts so a long-running daemon cannot
	// grow without limit (default 100000; negative = unlimited). When a
	// shard's share overflows, its oldest alerts are discarded and
	// counted in Stats.AlertsTruncated. Shard-count invariance of the
	// alert set holds as long as the cap is never hit.
	MaxAlerts int
	// Detectors overrides the detector list (default: every registered
	// detector, in name order, plus the dictionary-aware pair when Dict
	// is set).
	Detectors []Detector
	// Dict enables the dictionary-aware detectors (dict-squat,
	// unknown-action-community) bound to this provider. Pass a frozen
	// *semantics.Snapshot for deterministic alert sets, or a
	// *semantics.Holder a daemon refreshes while ingesting.
	Dict semantics.Provider
	// Metrics, when non-nil, exposes the engine on that registry:
	// ingest/drop/alert counters, queue-depth and tracked-prefix gauges,
	// per-detector firing counts, and a batch-latency histogram. Almost
	// everything is pulled at scrape time from counters the engine
	// already maintains, so the only hot-path cost is one histogram
	// observation per shard batch. Metrics are observational only — the
	// alert set is bit-identical with or without a registry attached.
	Metrics *obs.Registry
	// Semantics, when non-nil, mirrors every ingested event into the
	// dictionary-inference engine. With lossless feeds (Ingest,
	// BlockingTap) dictionaries build from exactly the stream the
	// detectors see; under TryIngest overload the two sides shed
	// independently (each counts its own drops), so the dictionary may
	// include events the detectors shed and vice versa. The semantics
	// folds are order-insensitive, so mirroring preserves both engines'
	// determinism. Mirroring and Dict are deliberately separate: a
	// dictionary consulted mid-build would make alerts depend on shard
	// timing.
	Semantics *semantics.Engine
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.WindowEvents <= 0 {
		c.WindowEvents = 32
	}
	if c.Window <= 0 {
		c.Window = 15 * time.Minute
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 128
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxAlerts == 0 {
		c.MaxAlerts = 100000
	}
	if c.Detectors == nil {
		c.Detectors = Detectors()
		if c.Dict != nil {
			c.Detectors = append(c.Detectors, DictDetectors(c.Dict)...)
		}
	}
	return c
}

// batch is one unit of shard work: a run of events, or a flush token
// (ack non-nil) the worker closes once everything before it is applied.
type batch struct {
	events []Event
	ack    chan struct{}
}

// shard owns a disjoint slice of the prefix space: its state map, its
// alerts, and one worker goroutine draining its queue. Queries lock mu
// and read while ingestion continues on the other shards.
type shard struct {
	ch chan batch
	// sendMu serializes batch dispatch into ch (and gates it against
	// Close). It is never held while e.mu is, so a blocked lossless
	// sender stalls only its own shard's dispatch — the lossy path
	// TryLocks and sheds instead of waiting.
	sendMu sync.Mutex
	closed bool // guarded by sendMu

	mu         sync.Mutex
	prefixes   map[netip.Prefix]*PrefixState
	alerts     []Alert
	byDetector map[string]uint64

	// emit plumbing, reused across events to keep the hot path
	// allocation-free.
	curEv  *Event
	curDet Detector
	emit   func(Alert)
}

// Engine is the streaming detection engine. Create with NewEngine; feed
// with Ingest / TryIngest or the adapters in feed.go; query Alerts,
// Stats, and PrefixInfo at any time, including mid-ingest.
type Engine struct {
	cfg       Config
	detectors []Detector
	shards    []*shard
	wg        sync.WaitGroup
	batchPool sync.Pool

	mu      sync.Mutex // ingest path: seq, pending, closed
	seq     uint64
	pending [][]Event
	closed  bool

	ingested  atomic.Uint64
	processed atomic.Uint64
	dropped   atomic.Uint64
	alerts    atomic.Uint64
	truncated atomic.Uint64
	version   atomic.Uint64

	// Metrics plumbing (nil when Config.Metrics is unset).
	batchHist *obs.Histogram
	collector *obs.CollectorHandle
}

// NewEngine starts an engine with one worker goroutine per shard. Close
// releases them.
func NewEngine(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{cfg: cfg, detectors: cfg.Detectors}
	e.batchPool.New = func() any {
		buf := make([]Event, 0, cfg.BatchSize)
		return &buf
	}
	e.shards = make([]*shard, cfg.Shards)
	e.pending = make([][]Event, cfg.Shards)
	for i := range e.shards {
		s := &shard{
			ch:         make(chan batch, cfg.QueueDepth),
			prefixes:   make(map[netip.Prefix]*PrefixState),
			byDetector: make(map[string]uint64),
		}
		maxRetained := -1
		if cfg.MaxAlerts > 0 {
			maxRetained = cfg.MaxAlerts/cfg.Shards + 1
		}
		s.emit = func(a Alert) {
			ev := s.curEv
			a.Seq, a.Time, a.Prefix, a.PeerAS, a.Source = ev.Seq, ev.Time, ev.Prefix, ev.PeerAS, ev.Source
			if a.Origin == 0 {
				a.Origin = ev.Origin()
			}
			if a.Detector == "" {
				a.Detector = s.curDet.Name()
			}
			if maxRetained > 0 && len(s.alerts) >= maxRetained {
				// Shed the oldest half of this shard's share: the daemon
				// stays bounded, recent alerts stay queryable.
				drop := len(s.alerts) / 2
				s.alerts = append(s.alerts[:0], s.alerts[drop:]...)
				e.truncated.Add(uint64(drop))
			}
			s.alerts = append(s.alerts, a)
			s.byDetector[a.Detector]++
			e.alerts.Add(1)
		}
		e.pending[i] = *e.batchPool.Get().(*[]Event)
		e.shards[i] = s
		e.wg.Add(1)
		go e.runShard(s)
	}
	if cfg.Metrics != nil {
		e.bindMetrics(cfg.Metrics)
	}
	return e
}

// bindMetrics attaches the engine to a registry: one batch-latency
// histogram written by the shard workers, and a scrape-time collector
// for everything the engine already counts. The collector takes the
// shard locks exactly like Stats does, so a scrape is as safe (and as
// cheap) as a /stats query.
func (e *Engine) bindMetrics(reg *obs.Registry) {
	e.batchHist = reg.Histogram("watch_batch_seconds",
		"shard batch apply latency", obs.DurationBuckets)
	e.collector = reg.RegisterCollector(func(emit func(obs.Sample)) {
		counter := func(name, help string, v uint64) {
			emit(obs.Sample{Name: name, Help: help, Type: obs.TypeCounter, Value: float64(v)})
		}
		gauge := func(name, help string, v float64) {
			emit(obs.Sample{Name: name, Help: help, Type: obs.TypeGauge, Value: v})
		}
		ingested, processed, dropped := e.ingested.Load(), e.processed.Load(), e.dropped.Load()
		counter("watch_ingested_total", "events accepted for processing", ingested)
		counter("watch_processed_total", "events applied by shard workers", processed)
		counter("watch_dropped_total", "events shed by the non-blocking ingest path", dropped)
		counter("watch_alerts_total", "alerts raised across all detectors", e.alerts.Load())
		counter("watch_alerts_truncated_total", "old alerts discarded under the retention cap", e.truncated.Load())
		var pending uint64
		if ingested > processed+dropped {
			pending = ingested - processed - dropped
		}
		gauge("watch_pending_events", "events ingested but not yet applied", float64(pending))
		tracked := 0
		byDet := make(map[string]uint64)
		for _, s := range e.shards {
			s.mu.Lock()
			tracked += len(s.prefixes)
			for k, v := range s.byDetector {
				byDet[k] += v
			}
			s.mu.Unlock()
		}
		gauge("watch_tracked_prefixes", "prefixes with live window state", float64(tracked))
		for det, v := range byDet {
			counter(`watch_detector_alerts_total{detector="`+det+`"}`,
				"alerts raised, by detector", v)
		}
		for i, s := range e.shards {
			gauge(`watch_shard_queue_depth{shard="`+strconv.Itoa(i)+`"}`,
				"batches queued per shard", float64(len(s.ch)))
		}
	})
}

// shardOf maps a prefix to its home shard (FNV-1a over address+length,
// the hashing discipline collector.partialKeeps uses).
func (e *Engine) shardOf(p netip.Prefix) int {
	a := p.Addr().As16()
	h := uint32(2166136261)
	for _, b := range a {
		h = (h ^ uint32(b)) * 16777619
	}
	h = (h ^ uint32(p.Bits())) * 16777619
	return int(h % uint32(len(e.shards)))
}

// Ingest feeds one event, blocking if the home shard's queue is full.
// The engine assigns Seq in call order: feed from a single goroutine
// (every adapter in feed.go does) and the alert set is deterministic.
// Ingesting after Close is a silent no-op.
func (e *Engine) Ingest(ev Event) {
	e.ingest(ev, true)
}

// TryIngest feeds one event without ever blocking: when the home
// shard's queue is full — or its dispatch lock is held by a blocked
// lossless sender — the shard's pending run is shed and counted in
// Stats.Dropped (in mixed blocking/non-blocking use, shed runs can
// include events a blocking feed queued on the same shard). This is
// the backpressure path live simnet taps ride — a slow engine can
// never stall the simulation.
func (e *Engine) TryIngest(ev Event) {
	e.ingest(ev, false)
}

func (e *Engine) ingest(ev Event, block bool) {
	ev.Prefix = ev.Prefix.Masked()
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	if ev.Seq == 0 {
		e.seq++
		ev.Seq = e.seq
	} else if ev.Seq > e.seq {
		// Callers may pre-assign sequence numbers (the durable store and
		// the sharded daemon do, so restarts and shard unions keep the
		// global order); they must be monotone per engine.
		e.seq = ev.Seq
	}
	if ev.Time.IsZero() {
		ev.Time = logicalBase.Add(time.Duration(e.seq) * logicalTick)
	}
	si := e.shardOf(ev.Prefix)
	e.pending[si] = append(e.pending[si], ev)
	full := len(e.pending[si]) >= e.cfg.BatchSize
	e.ingested.Add(1)
	e.mu.Unlock()
	if e.cfg.Semantics != nil && len(ev.Communities) > 0 {
		// Mirror into the dictionary engine with the watch-assigned
		// sequence and timestamp, so both engines agree on first/last
		// seen. Folds are order-insensitive; determinism survives. The
		// lossy watch path mirrors lossily too (semantics.TryIngest),
		// so dictionary inference can never stall a live tap.
		ob := semantics.Observation{
			Seq: ev.Seq, Time: ev.Time, PeerAS: ev.PeerAS,
			Prefix: ev.Prefix, ASPath: ev.ASPath, Communities: ev.Communities,
		}
		if block {
			e.cfg.Semantics.Ingest(ob)
		} else {
			e.cfg.Semantics.TryIngest(ob)
		}
	}
	if full {
		e.dispatch(e.shards[si], si, block)
	}
}

// dispatch detaches the shard's pending run and hands it to the worker.
// Detach and send happen under the shard's dispatch lock (never under
// e.mu), which keeps two guarantees at once: a lossless sender blocked
// on a full shard cannot stall TryIngest — the never-block path live
// simnet taps ride only TryLocks this lock and sheds on contention —
// and concurrent producers cannot reorder batches within a shard, since
// no batch leaves e.pending except in dispatch order (per-shard FIFO is
// what keeps per-prefix windows chronological).
func (e *Engine) dispatch(s *shard, si int, block bool) {
	if block {
		s.sendMu.Lock()
	} else if !s.sendMu.TryLock() {
		e.shedPending(si)
		return
	}
	defer s.sendMu.Unlock()
	e.mu.Lock()
	events := e.pending[si]
	if len(events) == 0 {
		// Another producer dispatched (or shed) this run first.
		e.mu.Unlock()
		return
	}
	e.pending[si] = *e.batchPool.Get().(*[]Event)
	e.mu.Unlock()
	if s.closed {
		e.shed(events)
		return
	}
	if block {
		s.ch <- batch{events: events}
		return
	}
	select {
	case s.ch <- batch{events: events}:
	default:
		e.shed(events)
	}
}

// shedPending drops a shard's pending run in place (the lossy path's
// response to dispatch contention).
func (e *Engine) shedPending(si int) {
	e.mu.Lock()
	n := len(e.pending[si])
	e.pending[si] = e.pending[si][:0]
	e.mu.Unlock()
	e.dropped.Add(uint64(n))
}

func (e *Engine) shed(events []Event) {
	e.dropped.Add(uint64(len(events)))
	buf := events[:0]
	e.batchPool.Put(&buf)
}

// runShard is the per-shard worker: it applies batches in arrival order
// (per-shard FIFO is what makes per-prefix windows chronological).
func (e *Engine) runShard(s *shard) {
	defer e.wg.Done()
	for b := range s.ch {
		if len(b.events) > 0 {
			var start time.Time
			if e.batchHist != nil {
				start = time.Now()
			}
			s.mu.Lock()
			for i := range b.events {
				e.process(s, &b.events[i])
			}
			s.mu.Unlock()
			if e.batchHist != nil {
				e.batchHist.ObserveSince(start)
			}
			e.processed.Add(uint64(len(b.events)))
			e.version.Add(1)
			buf := b.events[:0]
			e.batchPool.Put(&buf)
		}
		if b.ack != nil {
			close(b.ack)
		}
	}
}

// process runs every detector over the event against the prefix's
// window state (the window holds only *prior* events while detectors
// run), then folds the event into the window.
func (e *Engine) process(s *shard, ev *Event) {
	st := s.prefixes[ev.Prefix]
	if st == nil {
		st = newPrefixState(ev.Prefix, e.cfg.WindowEvents)
		s.prefixes[ev.Prefix] = st
	}
	s.curEv = ev
	for _, d := range e.detectors {
		s.curDet = d
		d.Observe(st, ev, s.emit)
	}
	st.push(ev, e.cfg.Window)
}

// Flush dispatches every pending run and blocks until all shards have
// applied everything ingested before the call. Like dispatch, each
// shard's detach+send happens under its dispatch lock, so flushes slot
// into the per-shard FIFO instead of racing concurrent producers.
func (e *Engine) Flush() {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return
	}
	acks := make([]chan struct{}, 0, len(e.shards))
	for si, s := range e.shards {
		s.sendMu.Lock()
		e.mu.Lock()
		var events []Event
		if len(e.pending[si]) > 0 {
			events = e.pending[si]
			e.pending[si] = *e.batchPool.Get().(*[]Event)
		}
		e.mu.Unlock()
		if s.closed {
			if events != nil {
				e.shed(events)
			}
			s.sendMu.Unlock()
			continue
		}
		if events != nil {
			s.ch <- batch{events: events}
		}
		a := make(chan struct{})
		s.ch <- batch{ack: a}
		s.sendMu.Unlock()
		acks = append(acks, a)
	}
	for _, a := range acks {
		<-a
	}
}

// Close drains everything pending, stops the shard workers, and marks
// the engine closed. Queries remain valid after Close; further ingest
// is dropped silently.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	for si, s := range e.shards {
		s.sendMu.Lock()
		if !s.closed {
			// closed=true stops new appends, and every dispatch runs
			// under sendMu, so this detach sees the shard's final run.
			e.mu.Lock()
			remaining := e.pending[si]
			e.pending[si] = nil
			e.mu.Unlock()
			if len(remaining) > 0 {
				s.ch <- batch{events: remaining}
			}
			s.closed = true
			close(s.ch)
		}
		s.sendMu.Unlock()
	}
	e.wg.Wait()
	// Detach from the registry so a closed engine's series stop
	// rendering (daemons that rebuild engines would otherwise scrape
	// stale shards). Counter totals live in the collector, so they
	// vanish with it — long-lived processes keep the engine open.
	e.collector.Unregister()
}

// Version is a monotone snapshot token: it advances whenever queryable
// state (processed events, alerts) may have changed. HTTP servers key
// their render caches on it.
func (e *Engine) Version() uint64 { return e.version.Load() }

// Alerts snapshots every alert so far, ordered by ingest sequence of
// the triggering event (detector registration order breaks ties within
// one event). Safe to call while ingesting.
func (e *Engine) Alerts() []Alert {
	var out []Alert
	for _, s := range e.shards {
		s.mu.Lock()
		out = append(out, s.alerts...)
		s.mu.Unlock()
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Stats is the engine's operational snapshot.
type Stats struct {
	Ingested  uint64 `json:"ingested"`
	Processed uint64 `json:"processed"`
	// Dropped counts events shed by the non-blocking ingest path when a
	// shard queue was full.
	Dropped uint64 `json:"dropped"`
	Pending uint64 `json:"pending"`
	Alerts  uint64 `json:"alerts"`
	// AlertsTruncated counts old alerts discarded under the retention
	// cap (Config.MaxAlerts).
	AlertsTruncated uint64            `json:"alerts_truncated"`
	TrackedPrefixes int               `json:"tracked_prefixes"`
	Shards          int               `json:"shards"`
	WindowEvents    int               `json:"window_events"`
	Window          string            `json:"window"`
	ByDetector      map[string]uint64 `json:"alerts_by_detector"`
	Version         uint64            `json:"version"`
}

// Stats snapshots the counters. Safe to call while ingesting.
func (e *Engine) Stats() Stats {
	st := Stats{
		Ingested:        e.ingested.Load(),
		Processed:       e.processed.Load(),
		Dropped:         e.dropped.Load(),
		Alerts:          e.alerts.Load(),
		AlertsTruncated: e.truncated.Load(),
		Shards:          len(e.shards),
		WindowEvents:    e.cfg.WindowEvents,
		Window:          e.cfg.Window.String(),
		ByDetector:      make(map[string]uint64),
		Version:         e.version.Load(),
	}
	if st.Ingested > st.Processed+st.Dropped {
		st.Pending = st.Ingested - st.Processed - st.Dropped
	}
	for _, s := range e.shards {
		s.mu.Lock()
		st.TrackedPrefixes += len(s.prefixes)
		for k, v := range s.byDetector {
			st.ByDetector[k] += v
		}
		s.mu.Unlock()
	}
	return st
}

// PrefixInfo is the queryable per-prefix view: current window summary
// plus every alert the prefix has raised.
type PrefixInfo struct {
	Prefix netip.Prefix `json:"prefix"`
	// WindowEvents is the current ring occupancy.
	WindowEvents int `json:"window_events"`
	// TotalEvents counts every event ever folded for the prefix.
	TotalEvents uint64    `json:"total_events"`
	LastSeq     uint64    `json:"last_seq"`
	LastTime    time.Time `json:"last_time"`
	// Origin is the origin AS of the newest windowed announcement.
	Origin uint32 `json:"origin_as,omitempty"`
	// Withdrawn reports whether the newest event was a withdrawal.
	Withdrawn bool `json:"withdrawn"`
	// Communities is the union over the window, presentation-form.
	Communities []string `json:"communities,omitempty"`
	Alerts      []Alert  `json:"alerts,omitempty"`
}

// PrefixInfo reports the tracked state for p (false if the engine has
// never processed an event for it). Safe to call while ingesting.
func (e *Engine) PrefixInfo(p netip.Prefix) (PrefixInfo, bool) {
	p = p.Masked()
	s := e.shards[e.shardOf(p)]
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.prefixes[p]
	if !ok {
		return PrefixInfo{}, false
	}
	info := PrefixInfo{
		Prefix:       p,
		WindowEvents: st.Len(),
		TotalEvents:  st.total,
	}
	var comms bgp.CommunitySet
	for i := 0; i < st.Len(); i++ {
		ev := st.At(i)
		info.LastSeq, info.LastTime, info.Withdrawn = ev.Seq, ev.Time, ev.Withdraw
		if !ev.Withdraw {
			info.Origin = ev.Origin()
		}
		comms = comms.AddAll(ev.Communities...)
	}
	for _, c := range comms {
		info.Communities = append(info.Communities, c.String())
	}
	for _, a := range s.alerts {
		if a.Prefix == p {
			info.Alerts = append(info.Alerts, a)
		}
	}
	return info, true
}
