package watch

import (
	"fmt"
	"sort"

	"bgpworms/internal/scenario"
	"bgpworms/internal/stats"
)

// This file closes the detect-what-you-attack loop: a registered attack
// scenario replays through the engine via a session tap, and every
// detector is scored against the scenario's declared ground truth.

// Truth declares which detectors a scenario's feed is expected to
// trigger. Must detectors count toward recall; May detectors are
// tolerated (no false-positive charge) because the scenario's machinery
// plausibly trips them; anything else that fires is a false positive.
type Truth struct {
	Must []string `json:"must"`
	May  []string `json:"may,omitempty"`
}

// scenarioTruth maps registry scenario names to detection ground truth.
// Probe announcements with off-path action communities legitimately
// trip community-squat and prop-distance, so most entries tolerate
// both.
var scenarioTruth = map[string]Truth{
	// §7.3: the attack is the blackhole community appearing on the
	// victim prefix. The hijack variant additionally shifts the origin.
	"rtbh": {
		Must: []string{"blackhole-onset"},
		May: []string{"community-squat", "prop-distance", "route-leak",
			DictSquatName, UnknownActionName},
	},
	// The leak re-originates a remote stub's prefix: the origin-shift
	// signature is the attack. The raise community names an off-path AS
	// until the amplifier propagates it, so squat alerts are expected
	// noise.
	"route-leak-amplification": {
		Must: []string{"route-leak"},
		May: []string{"community-squat", "prop-distance",
			DictSquatName, UnknownActionName},
	},
	// The squat announces a decoy :666 value, which the value-pattern
	// blackhole detector cannot distinguish from a real trigger — the
	// §7.6 over-counting, reproduced live. With a trained dictionary the
	// dict-aware pair catches the decoy too (their Must status depends
	// on training, so they stay tolerated here; the dedicated tests
	// assert their behavior).
	"blackhole-squatting": {
		Must: []string{"blackhole-onset", "community-squat"},
		May:  []string{"prop-distance", DictSquatName, UnknownActionName},
	},
	// The sweep announces real triggers and decoys alike.
	"blackhole-sweep": {
		Must: []string{"blackhole-onset"},
		May:  []string{"community-squat", "prop-distance", DictSquatName, UnknownActionName},
	},
	// The poisoning probes carry fabricated off-path communities of the
	// victim AS — squat noise is the attack itself. The scenario runs
	// churn for a realistic training baseline, so churn's RTBH episodes
	// may raise blackhole alerts too.
	"dictionary-poisoning": {
		Must: []string{"community-squat"},
		May: []string{"blackhole-onset", "prop-distance", "route-leak",
			DictSquatName, UnknownActionName},
	},
	// The hygiene sweep fires an RTBH attempt per filtering rate; the
	// first-hop delivery always carries the blackhole-valued trigger.
	"hygiene-filtering": {
		Must: []string{"blackhole-onset"},
		May: []string{"community-squat", "prop-distance",
			DictSquatName, UnknownActionName},
	},
}

// ScenarioTruth returns the detection ground truth for a registered
// scenario (false when the scenario makes no detection claims).
func ScenarioTruth(name string) (Truth, bool) {
	t, ok := scenarioTruth[name]
	return t, ok
}

// DetectorScore grades one detector against one replayed scenario.
type DetectorScore struct {
	Detector string `json:"detector"`
	Expected bool   `json:"expected"`
	// Fired counts the detector's alerts during the replay.
	Fired int `json:"fired"`
	TP    int `json:"tp"`
	FP    int `json:"fp"`
	FN    int `json:"fn"`
}

// EvalReport is the outcome of replaying one scenario through the
// engine: the scenario's own Table-3 result plus per-detector scores.
type EvalReport struct {
	Scenario string           `json:"scenario"`
	Result   *scenario.Result `json:"result"`
	Stats    Stats            `json:"stats"`
	Alerts   []Alert          `json:"alerts,omitempty"`
	// Known reports whether the scenario declares detection ground
	// truth; scores carry TP/FP/FN only when it does.
	Known  bool            `json:"truth_known"`
	Scores []DetectorScore `json:"scores"`
	// Precision and Recall aggregate over the scored detectors
	// (micro-averaged; 1.0 when nothing was expected or fired).
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
}

// EvalScenario replays the named registered scenario with a lossless
// engine tap observing the full simulated update stream — world
// construction, probes, and the attack itself — then scores each
// detector against the scenario's ground truth. A nil ctx replays with
// scenario defaults; any caller tap on ctx is replaced.
func EvalScenario(name string, ctx *scenario.Context, cfg Config) (*EvalReport, error) {
	if ctx == nil {
		ctx = &scenario.Context{}
	}
	eng := NewEngine(cfg)
	defer eng.Close()
	ctx.Tap = eng.BlockingTap("scenario:" + name)
	res, err := scenario.Run(name, ctx)
	if err != nil {
		return nil, err
	}
	eng.Flush()
	rep := &EvalReport{Scenario: name, Result: res, Stats: eng.Stats(), Alerts: eng.Alerts()}
	truth, known := ScenarioTruth(name)
	rep.Known = known
	rep.score(eng.detectors, truth)
	return rep, nil
}

func (r *EvalReport) score(dets []Detector, truth Truth) {
	must := make(map[string]bool, len(truth.Must))
	for _, d := range truth.Must {
		must[d] = true
	}
	may := make(map[string]bool, len(truth.May))
	for _, d := range truth.May {
		may[d] = true
	}
	fired := make(map[string]int)
	for _, a := range r.Alerts {
		fired[a.Detector]++
	}
	var tp, fp, fn int
	for _, d := range dets {
		s := DetectorScore{Detector: d.Name(), Fired: fired[d.Name()]}
		if r.Known {
			s.Expected = must[s.Detector]
			switch {
			case s.Expected && s.Fired > 0:
				s.TP = 1
			case s.Expected:
				s.FN = 1
			case s.Fired > 0 && !may[s.Detector]:
				s.FP = 1
			}
			tp, fp, fn = tp+s.TP, fp+s.FP, fn+s.FN
		}
		r.Scores = append(r.Scores, s)
	}
	sort.Slice(r.Scores, func(i, j int) bool { return r.Scores[i].Detector < r.Scores[j].Detector })
	r.Precision, r.Recall = 1, 1
	if tp+fp > 0 {
		r.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		r.Recall = float64(tp) / float64(tp+fn)
	}
}

// RenderEval renders the report as a text table plus summary line.
func RenderEval(r *EvalReport) string {
	t := stats.NewTable("Detector", "Expected", "Fired", "TP", "FP", "FN")
	for _, s := range r.Scores {
		t.Row(s.Detector, s.Expected, s.Fired, s.TP, s.FP, s.FN)
	}
	out := t.String()
	out += fmt.Sprintf("\nscenario=%s success=%v alerts=%d precision=%.2f recall=%.2f\n",
		r.Scenario, r.Result != nil && r.Result.Success, len(r.Alerts), r.Precision, r.Recall)
	return out
}
