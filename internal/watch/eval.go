package watch

import (
	"fmt"
	"sort"

	"bgpworms/internal/scenario"
	"bgpworms/internal/stats"
)

// This file closes the detect-what-you-attack loop: a registered attack
// scenario replays through the engine via a session tap, and every
// detector is scored against the scenario's declared ground truth.

// Truth declares which detectors a scenario's feed is expected to
// trigger. Must detectors count toward recall; each AnyOf group counts
// toward recall once and is satisfied when any member fires (the
// groups express detector families — the value-pattern and the
// dictionary-aware squat detectors are interchangeable evidence of the
// same squat, so an arm may carry either); May detectors are tolerated
// (no false-positive charge) because the scenario's machinery plausibly
// trips them; anything else that fires is a false positive.
type Truth struct {
	Must  []string   `json:"must"`
	AnyOf [][]string `json:"any_of,omitempty"`
	May   []string   `json:"may,omitempty"`
}

// scenarioTruth maps registry scenario names to detection ground truth.
// Probe announcements with off-path action communities legitimately
// trip community-squat and prop-distance, so most entries tolerate
// both.
var scenarioTruth = map[string]Truth{
	// §7.3: the attack is the blackhole community appearing on the
	// victim prefix. The hijack variant additionally shifts the origin.
	"rtbh": {
		Must: []string{"blackhole-onset"},
		May: []string{"community-squat", "prop-distance", "route-leak",
			DictSquatName, UnknownActionName},
	},
	// The leak re-originates a remote stub's prefix: the origin-shift
	// signature is the attack. The raise community names an off-path AS
	// until the amplifier propagates it, so squat alerts are expected
	// noise.
	"route-leak-amplification": {
		Must: []string{"route-leak"},
		May: []string{"community-squat", "prop-distance",
			DictSquatName, UnknownActionName},
	},
	// The squat announces a decoy :666 value, which the value-pattern
	// blackhole detector cannot distinguish from a real trigger — the
	// §7.6 over-counting, reproduced live. The squat itself must be
	// caught by either squat detector: the value-pattern rule or (when
	// a dictionary is trained) the dict-aware one — they are
	// interchangeable evidence, so an A/B arm may carry either.
	"blackhole-squatting": {
		Must:  []string{"blackhole-onset"},
		AnyOf: [][]string{{"community-squat", DictSquatName}},
		May:   []string{"prop-distance", UnknownActionName},
	},
	// The sweep announces real triggers and decoys alike.
	"blackhole-sweep": {
		Must: []string{"blackhole-onset"},
		May:  []string{"community-squat", "prop-distance", DictSquatName, UnknownActionName},
	},
	// The poisoning probes carry fabricated off-path communities of the
	// victim AS — squat noise is the attack itself, and either squat
	// detector counts as catching it. The scenario runs churn for a
	// realistic training baseline, so churn's RTBH episodes may raise
	// blackhole alerts too.
	"dictionary-poisoning": {
		AnyOf: [][]string{{"community-squat", DictSquatName}},
		May: []string{"blackhole-onset", "prop-distance", "route-leak",
			UnknownActionName},
	},
	// The hygiene sweep fires an RTBH attempt per filtering rate; the
	// first-hop delivery always carries the blackhole-valued trigger.
	"hygiene-filtering": {
		Must: []string{"blackhole-onset"},
		May: []string{"community-squat", "prop-distance",
			DictSquatName, UnknownActionName},
	},
}

// ScenarioTruth returns the detection ground truth for a registered
// scenario (false when the scenario makes no detection claims).
func ScenarioTruth(name string) (Truth, bool) {
	t, ok := scenarioTruth[name]
	return t, ok
}

// DetectorScore grades one detector against one replayed scenario.
type DetectorScore struct {
	Detector string `json:"detector"`
	Expected bool   `json:"expected"`
	// Fired counts the detector's alerts during the replay.
	Fired int `json:"fired"`
	TP    int `json:"tp"`
	FP    int `json:"fp"`
	FN    int `json:"fn"`
}

// EvalReport is the outcome of replaying one scenario through the
// engine: the scenario's own Table-3 result plus per-detector scores.
type EvalReport struct {
	Scenario string           `json:"scenario"`
	Result   *scenario.Result `json:"result"`
	Stats    Stats            `json:"stats"`
	Alerts   []Alert          `json:"alerts,omitempty"`
	// Known reports whether the scenario declares detection ground
	// truth; scores carry TP/FP/FN only when it does.
	Known  bool            `json:"truth_known"`
	Scores []DetectorScore `json:"scores"`
	// Precision and Recall aggregate over the scored detectors
	// (micro-averaged; 1.0 when nothing was expected or fired).
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	// TP/FP/FN are the micro counts behind Precision and Recall:
	// required detectors (and AnyOf groups) that fired / unexpected
	// untolerated detectors that fired / required ones that stayed
	// silent — detectors absent from the evaluated configuration
	// included, so a thinned-out arm is charged for what it cannot see.
	TP int `json:"tp"`
	FP int `json:"fp"`
	FN int `json:"fn"`
	// NoiseAlerts counts alerts the ground truth did not require:
	// everything fired by detectors outside Must and outside every
	// AnyOf group (tolerated May noise included), and — for scenarios
	// with no declared truth — every alert. It is the false-positive
	// alert volume the suite harness gates and A/B-compares.
	NoiseAlerts int `json:"noise_alerts"`
}

// Metrics is the flat, structured slice of an EvalReport a suite
// harness aggregates: quality ratios, micro counts, and per-detector
// alert volume. Fired maps detector name to alert count (absent
// detectors that the truth required appear with count 0).
type Metrics struct {
	Precision   float64        `json:"precision"`
	Recall      float64        `json:"recall"`
	TP          int            `json:"tp"`
	FP          int            `json:"fp"`
	FN          int            `json:"fn"`
	Alerts      int            `json:"alerts"`
	NoiseAlerts int            `json:"noise_alerts"`
	Fired       map[string]int `json:"fired"`
}

// Metrics flattens the report for aggregation.
func (r *EvalReport) Metrics() Metrics {
	m := Metrics{
		Precision: r.Precision, Recall: r.Recall,
		TP: r.TP, FP: r.FP, FN: r.FN,
		Alerts: len(r.Alerts), NoiseAlerts: r.NoiseAlerts,
		Fired: make(map[string]int, len(r.Scores)),
	}
	for _, s := range r.Scores {
		m.Fired[s.Detector] = s.Fired
	}
	return m
}

// EvalScenario replays the named registered scenario with a lossless
// engine tap observing the full simulated update stream — world
// construction, probes, and the attack itself — then scores each
// detector against the scenario's ground truth. A nil ctx replays with
// scenario defaults; any caller tap on ctx is replaced.
func EvalScenario(name string, ctx *scenario.Context, cfg Config) (*EvalReport, error) {
	if ctx == nil {
		ctx = &scenario.Context{}
	}
	eng := NewEngine(cfg)
	defer eng.Close()
	ctx.Tap = eng.BlockingTap("scenario:" + name)
	res, err := scenario.Run(name, ctx)
	if err != nil {
		return nil, err
	}
	eng.Flush()
	rep := &EvalReport{Scenario: name, Result: res, Stats: eng.Stats(), Alerts: eng.Alerts()}
	truth, known := ScenarioTruth(name)
	rep.Known = known
	rep.score(eng.detectors, truth)
	return rep, nil
}

func (r *EvalReport) score(dets []Detector, truth Truth) {
	must := make(map[string]bool, len(truth.Must))
	for _, d := range truth.Must {
		must[d] = true
	}
	may := make(map[string]bool, len(truth.May))
	for _, d := range truth.May {
		may[d] = true
	}
	// AnyOf members are tolerated individually; the group is scored
	// once below.
	member := make(map[string]bool)
	for _, g := range truth.AnyOf {
		for _, d := range g {
			member[d] = true
		}
	}
	fired := make(map[string]int)
	for _, a := range r.Alerts {
		fired[a.Detector]++
	}
	var tp, fp, fn int
	have := make(map[string]bool, len(dets))
	for _, d := range dets {
		have[d.Name()] = true
		s := DetectorScore{Detector: d.Name(), Fired: fired[d.Name()]}
		if r.Known {
			s.Expected = must[s.Detector]
			switch {
			case s.Expected && s.Fired > 0:
				s.TP = 1
			case s.Expected:
				s.FN = 1
			case s.Fired > 0 && !may[s.Detector] && !member[s.Detector]:
				s.FP = 1
			}
			tp, fp, fn = tp+s.TP, fp+s.FP, fn+s.FN
		}
		r.Scores = append(r.Scores, s)
	}
	if r.Known {
		// A Must detector the evaluated configuration does not carry is
		// still a miss: the arm cannot see what the truth requires. A
		// synthetic zero-fire row keeps the gap visible in reports.
		for _, d := range truth.Must {
			if !have[d] {
				r.Scores = append(r.Scores, DetectorScore{Detector: d, Expected: true, FN: 1})
				fn++
			}
		}
		// Each AnyOf group counts once: satisfied by any member firing,
		// missed otherwise (even when no member is configured).
		for _, g := range truth.AnyOf {
			sat := false
			for _, d := range g {
				if fired[d] > 0 {
					sat = true
				}
			}
			if sat {
				tp++
			} else {
				fn++
			}
		}
	}
	sort.Slice(r.Scores, func(i, j int) bool { return r.Scores[i].Detector < r.Scores[j].Detector })
	for _, s := range r.Scores {
		if !r.Known {
			// No truth: every alert is unrequested volume.
			r.NoiseAlerts += s.Fired
			continue
		}
		if !must[s.Detector] && !member[s.Detector] {
			r.NoiseAlerts += s.Fired
		}
	}
	r.TP, r.FP, r.FN = tp, fp, fn
	r.Precision, r.Recall = 1, 1
	if tp+fp > 0 {
		r.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		r.Recall = float64(tp) / float64(tp+fn)
	}
}

// RenderEval renders the report as a text table plus summary line.
func RenderEval(r *EvalReport) string {
	t := stats.NewTable("Detector", "Expected", "Fired", "TP", "FP", "FN")
	for _, s := range r.Scores {
		t.Row(s.Detector, s.Expected, s.Fired, s.TP, s.FP, s.FN)
	}
	out := t.String()
	out += fmt.Sprintf("\nscenario=%s success=%v alerts=%d precision=%.2f recall=%.2f\n",
		r.Scenario, r.Result != nil && r.Result.Success, len(r.Alerts), r.Precision, r.Recall)
	return out
}
