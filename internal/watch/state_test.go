package watch_test

import (
	"bytes"
	"encoding/json"
	"net/netip"
	"testing"

	"bgpworms/internal/collector"
	"bgpworms/internal/gen"
	"bgpworms/internal/watch"
)

// churnEvents flattens the deterministic churn feed into an event list,
// in exactly the order IngestObservations would deliver it, so tests
// can split the stream at an arbitrary cut point.
func churnEvents(t testing.TB) []watch.Event {
	t.Helper()
	w, err := gen.Build(gen.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.RunChurn(); err != nil {
		t.Fatal(err)
	}
	var events []watch.Event
	for _, c := range w.Collectors {
		obs := c.Observations()
		for i := range obs {
			events = append(events, eventFromObs(c, &obs[i]))
		}
	}
	if len(events) < 100 {
		t.Fatalf("churn feed too small to split: %d events", len(events))
	}
	return events
}

func eventFromObs(c *collector.Collector, ob *collector.Observation) watch.Event {
	ev := watch.Event{
		Time:   ob.Time,
		Source: c.Name,
		PeerAS: uint32(ob.PeerAS),
		Prefix: ob.Prefix,
	}
	if ob.Route == nil {
		ev.Withdraw = true
	} else {
		ev.ASPath = ob.Route.ASPath.Sequence()
		ev.Communities = ob.Route.Communities.Clone()
	}
	return ev
}

func mustPrefix(t testing.TB, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func alertsJSON(t testing.TB, e *watch.Engine) []byte {
	t.Helper()
	b, err := json.Marshal(e.Alerts())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestExportRestoreRoundTrip is the durability equivalence proof at the
// engine level: run a feed to completion in one engine; run the same
// feed split at an arbitrary cut through export → JSON → restore → the
// remaining events; the final alert sets and counters must be
// byte-identical. The JSON round-trip is deliberate — it is exactly
// what a durable snapshot file does.
func TestExportRestoreRoundTrip(t *testing.T) {
	events := churnEvents(t)
	cut := len(events) / 3

	// Uninterrupted reference run.
	ref := watch.NewEngine(watch.Config{Shards: 4})
	for _, ev := range events {
		ref.Ingest(ev)
	}
	ref.Flush()
	wantAlerts := alertsJSON(t, ref)
	wantStats := ref.Stats()
	ref.Close()

	// First life: ingest up to the cut, export, "crash".
	first := watch.NewEngine(watch.Config{Shards: 4})
	for _, ev := range events[:cut] {
		first.Ingest(ev)
	}
	st := first.ExportState()
	first.Close()
	if st.Seq != uint64(cut) {
		t.Fatalf("export seq = %d, want %d", st.Seq, cut)
	}

	// Snapshot file round trip.
	blob, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var decoded watch.State
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}

	// Second life: restore with a different shard count (state is
	// shard-layout independent), then the rest of the feed.
	second := watch.NewEngine(watch.Config{Shards: 7})
	defer second.Close()
	if err := second.RestoreState(&decoded); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events[cut:] {
		second.Ingest(ev)
	}
	second.Flush()

	if got := alertsJSON(t, second); !bytes.Equal(got, wantAlerts) {
		t.Fatalf("restored run alert set differs from uninterrupted run:\nwant %d bytes\ngot  %d bytes", len(wantAlerts), len(got))
	}
	gotStats := second.Stats()
	if gotStats.Ingested != wantStats.Ingested || gotStats.Alerts != wantStats.Alerts ||
		gotStats.TrackedPrefixes != wantStats.TrackedPrefixes {
		t.Fatalf("restored stats differ: got %+v want %+v", gotStats, wantStats)
	}
}

// TestExportStateDeterministic pins that two exports of the same
// quiesced engine state are byte-identical — snapshot files must not
// depend on map iteration order.
func TestExportStateDeterministic(t *testing.T) {
	events := churnEvents(t)
	e := watch.NewEngine(watch.Config{Shards: 4})
	defer e.Close()
	for _, ev := range events {
		e.Ingest(ev)
	}
	a, err := json.Marshal(e.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(e.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("ExportState is not byte-stable across calls")
	}
}

// TestRestoreStateGuards pins the fresh-engine-only contract.
func TestRestoreStateGuards(t *testing.T) {
	e := watch.NewEngine(watch.Config{Shards: 1})
	defer e.Close()
	e.Ingest(watch.Event{Prefix: mustPrefix(t, "10.0.0.0/24"), PeerAS: 65001})
	if err := e.RestoreState(&watch.State{Seq: 10}); err == nil {
		t.Fatal("RestoreState accepted an engine that already ingested")
	}
	fresh := watch.NewEngine(watch.Config{Shards: 1})
	defer fresh.Close()
	if err := fresh.RestoreState(nil); err != nil {
		t.Fatalf("nil restore: %v", err)
	}
}

// TestProvidedSeq pins the pre-assigned sequence path: events carrying
// their own Seq keep it, the engine clock follows, and interleaved
// zero-Seq events slot in after.
func TestProvidedSeq(t *testing.T) {
	e := watch.NewEngine(watch.Config{Shards: 1})
	defer e.Close()
	p := mustPrefix(t, "10.1.0.0/24")
	e.Ingest(watch.Event{Seq: 41, Prefix: p, PeerAS: 65001, ASPath: []uint32{65001}})
	e.Ingest(watch.Event{Prefix: p, PeerAS: 65001, ASPath: []uint32{65001}})
	e.Flush()
	info, ok := e.PrefixInfo(p)
	if !ok {
		t.Fatal("prefix not tracked")
	}
	if info.LastSeq != 42 {
		t.Fatalf("zero-Seq event after Seq=41 got seq %d, want 42", info.LastSeq)
	}
}
