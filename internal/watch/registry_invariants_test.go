package watch_test

// Registry-wide invariants: every registered attack scenario must be
// self-describing (a paper §-citation, a title, a declared Table-3
// expectation), must run to completion on the tiny preset, and must be
// accepted by both evaluation harnesses — the detection scorer
// (EvalScenario) and the dictionary-inference scorer
// (EvalDictionaryScenario, which additionally requires the scenario to
// expose its built world for ground truth). New scenarios cannot land
// half-wired to the evaluation layers.

import (
	"strings"
	"testing"

	_ "bgpworms/internal/attack" // registers the builtin scenarios
	"bgpworms/internal/scenario"
	"bgpworms/internal/semantics"
	"bgpworms/internal/watch"
)

func TestRegistryScenarioMetadata(t *testing.T) {
	all := scenario.All()
	if len(all) == 0 {
		t.Fatal("no scenarios registered")
	}
	for _, s := range all {
		if s.Title == "" {
			t.Errorf("scenario %s: empty title", s.Name)
		}
		if s.Summary == "" {
			t.Errorf("scenario %s: empty summary", s.Name)
		}
		if !strings.Contains(s.Section, "§") {
			t.Errorf("scenario %s: section %q does not cite a paper section", s.Name, s.Section)
		}
		if !s.Expected.Plain && !s.Expected.Hijack {
			t.Errorf("scenario %s: declares no expected outcome for either variant", s.Name)
		}
		for _, p := range s.Params {
			if p.Name == "" || p.Help == "" {
				t.Errorf("scenario %s: parameter %+v lacks a name or help text", s.Name, p)
			}
		}
	}
}

func TestRegistryScenariosRunOnTiny(t *testing.T) {
	for _, name := range scenario.Names() {
		t.Run(name, func(t *testing.T) {
			res, err := scenario.Run(name, nil) // nil context = tiny preset defaults
			if err != nil {
				t.Fatalf("scenario %s does not run on tiny: %v", name, err)
			}
			if res == nil || res.Scenario == "" {
				t.Fatalf("scenario %s returned an empty result", name)
			}
			s, _ := scenario.Get(name)
			exp := s.Expected.Plain
			if res.Hijack {
				exp = s.Expected.Hijack
			}
			if res.Success != exp {
				// The Table-3 expectation is declared for the default
				// lab scale; some outcomes (steering's customer-chain
				// targets) need bigger worlds than tiny. Sweeps grade
				// this per cell as AsExpected — here it is informational.
				t.Logf("scenario %s on tiny: success=%v, declared expectation %v (scale-dependent)", name, res.Success, exp)
			}
		})
	}
}

func TestRegistryScenariosAcceptedByEvalHarnesses(t *testing.T) {
	for _, name := range scenario.Names() {
		t.Run(name, func(t *testing.T) {
			rep, err := watch.EvalScenario(name, nil, watch.Config{})
			if err != nil {
				t.Fatalf("EvalScenario rejects %s: %v", name, err)
			}
			if rep.Stats.Ingested == 0 {
				t.Fatalf("EvalScenario saw no update stream for %s (tap unwired?)", name)
			}
			drep, snap, err := watch.EvalDictionaryScenario(name, nil, semantics.Config{})
			if err != nil {
				t.Fatalf("EvalDictionaryScenario rejects %s: %v", name, err)
			}
			if snap == nil || snap.Len() == 0 {
				t.Fatalf("EvalDictionaryScenario inferred an empty dictionary for %s", name)
			}
			if drep.Score.TruthTotal == 0 {
				t.Fatalf("EvalDictionaryScenario found no ground truth for %s", name)
			}
		})
	}
}
