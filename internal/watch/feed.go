package watch

import (
	"io"
	"net/netip"

	"bgpworms/internal/collector"
	"bgpworms/internal/core"
	"bgpworms/internal/policy"
	"bgpworms/internal/simnet"
	"bgpworms/internal/topo"
)

// This file adapts every update source in the repo onto the engine:
// MRT byte streams (the wire path the paper's pipeline consumed),
// collector exports (recorded or live), and simnet session taps (so
// attack scenarios can drive detection as they run).

// FromUpdate converts a normalized core observation into an Event.
func FromUpdate(u *core.Update) Event {
	return Event{
		Time:        u.Time,
		Source:      u.Collector,
		PeerAS:      u.PeerAS,
		Prefix:      u.Prefix,
		ASPath:      u.ASPath,
		Communities: u.Communities,
		Withdraw:    u.Withdraw,
	}
}

// StreamMRT streams a BGP4MP update archive (as written by
// collector.WriteUpdatesMRT) into sink via the non-materializing
// reader, returning how many events were delivered. The source label
// lands on every event. The sink is wherever events should land: an
// engine's Ingest, or a durable store's (which journals before
// forwarding).
func StreamMRT(r io.Reader, source string, sink func(Event)) (int, error) {
	n := 0
	_, err := core.StreamMRTUpdates(source, source, r, func(u *core.Update) error {
		ev := FromUpdate(u)
		ev.Source = source
		sink(ev)
		n++
		return nil
	})
	return n, err
}

// IngestMRT is StreamMRT bound to the engine's lossless ingest.
func (e *Engine) IngestMRT(r io.Reader, source string) (int, error) {
	return StreamMRT(r, source, e.Ingest)
}

// IngestObservations replays a collector's recorded observations in
// sequence order, returning how many events were ingested.
func (e *Engine) IngestObservations(c *collector.Collector) int {
	obs := c.Observations()
	for i := range obs {
		e.Ingest(eventFromObservation(c, &obs[i]))
	}
	return len(obs)
}

// AttachCollector subscribes the engine to a collector's live export:
// every observation the collector records from now on is ingested as it
// happens (blocking ingest — collector recording is already off the
// simulation hot path).
func (e *Engine) AttachCollector(c *collector.Collector) {
	c.OnObservation(func(ob collector.Observation) {
		e.Ingest(eventFromObservation(c, &ob))
	})
}

func eventFromObservation(c *collector.Collector, ob *collector.Observation) Event {
	ev := Event{
		Time:   ob.Time,
		Source: c.Name,
		PeerAS: uint32(ob.PeerAS),
		Prefix: ob.Prefix,
	}
	if ob.Route == nil {
		ev.Withdraw = true
	} else {
		ev.ASPath = ob.Route.ASPath.Sequence()
		ev.Communities = ob.Route.Communities.Clone()
	}
	return ev
}

// LiveTap returns a simnet session tap feeding the engine through the
// non-blocking path: when the engine falls behind, events are dropped
// and counted (Stats.Dropped) rather than stalling the simulation.
// Attach via gen.Params.Tap / scenario.Context.Tap to observe a world
// from its first origin announcement.
func (e *Engine) LiveTap(source string) simnet.UpdateTap {
	return EventTap(source, e.TryIngest)
}

// BlockingTap is LiveTap with lossless ingest: the simulation waits for
// the engine instead of dropping. The scenario ground-truth eval uses
// it, where feed fidelity outranks simulation latency.
func (e *Engine) BlockingTap(source string) simnet.UpdateTap {
	return EventTap(source, e.Ingest)
}

// EventTap converts simnet session updates into Events and hands them
// to sink — the routing point for anything that wants to sit between a
// scenario replay and an engine, like the durable store (which journals
// each event before forwarding).
func EventTap(source string, sink func(Event)) simnet.UpdateTap {
	return func(from, to topo.ASN, prefix netip.Prefix, rt *policy.Route) {
		ev := Event{Source: source, PeerAS: uint32(from), Prefix: prefix}
		if rt == nil {
			ev.Withdraw = true
		} else {
			ev.ASPath = rt.ASPath.Sequence()
			ev.Communities = rt.Communities.Clone()
		}
		sink(ev)
	}
}
