package watch

import (
	"fmt"
	"net/netip"
	"sort"
)

// State is the engine's persistable snapshot: everything needed to
// rebuild an equivalent engine after a restart. The durable store
// (internal/durable) writes it alongside a WAL position so recovery is
// restore-from-State plus replay of the WAL tail.
//
// Exporting while feeds are live yields a consistent but arbitrary cut;
// for an exact cut (the durable snapshot discipline) the caller gates
// ingest around ExportState.
type State struct {
	// Seq is the last assigned ingest sequence number.
	Seq uint64 `json:"seq"`
	// Ingested / Processed / Dropped / AlertsRaised / AlertsTruncated
	// mirror the Stats counters at export time.
	Ingested        uint64 `json:"ingested"`
	Processed       uint64 `json:"processed"`
	Dropped         uint64 `json:"dropped"`
	AlertsRaised    uint64 `json:"alerts_raised"`
	AlertsTruncated uint64 `json:"alerts_truncated"`
	// Prefixes holds every tracked prefix's window, sorted by prefix
	// (address, then length) so the export is byte-stable.
	Prefixes []PrefixWindow `json:"prefixes,omitempty"`
	// Alerts is every retained alert, ordered by Seq.
	Alerts []Alert `json:"alerts,omitempty"`
	// ByDetector carries the per-detector firing totals (they outlive
	// retention truncation, so they cannot be rebuilt from Alerts).
	ByDetector map[string]uint64 `json:"alerts_by_detector,omitempty"`
}

// PrefixWindow is one prefix's persisted sliding-window state.
type PrefixWindow struct {
	Prefix netip.Prefix `json:"prefix"`
	// Total counts every event ever folded for the prefix.
	Total uint64 `json:"total"`
	// Events is the current ring content, oldest first.
	Events []Event `json:"events,omitempty"`
}

// ExportState flushes pending work and snapshots the engine's full
// state. Safe to call while ingesting (it takes the shard locks the way
// Stats does), but only a quiesced export is an exact cut.
func (e *Engine) ExportState() *State {
	e.Flush()
	e.mu.Lock()
	seq := e.seq
	e.mu.Unlock()
	st := &State{
		Seq:             seq,
		Ingested:        e.ingested.Load(),
		Processed:       e.processed.Load(),
		Dropped:         e.dropped.Load(),
		AlertsRaised:    e.alerts.Load(),
		AlertsTruncated: e.truncated.Load(),
		ByDetector:      make(map[string]uint64),
	}
	for _, s := range e.shards {
		s.mu.Lock()
		for p, ps := range s.prefixes {
			w := PrefixWindow{Prefix: p, Total: ps.total}
			for i := 0; i < ps.Len(); i++ {
				w.Events = append(w.Events, *ps.At(i))
			}
			st.Prefixes = append(st.Prefixes, w)
		}
		st.Alerts = append(st.Alerts, s.alerts...)
		for k, v := range s.byDetector {
			st.ByDetector[k] += v
		}
		s.mu.Unlock()
	}
	sort.Slice(st.Prefixes, func(i, j int) bool {
		a, b := st.Prefixes[i].Prefix, st.Prefixes[j].Prefix
		if c := a.Addr().Compare(b.Addr()); c != 0 {
			return c < 0
		}
		return a.Bits() < b.Bits()
	})
	sort.SliceStable(st.Alerts, func(i, j int) bool { return st.Alerts[i].Seq < st.Alerts[j].Seq })
	return st
}

// RestoreState loads a previously exported State into a fresh engine
// (one that has never ingested). Window events are re-pushed through the
// ring, so the restored engine honors the *current* Config's
// WindowEvents/Window bounds; with an unchanged Config the restored
// windows are identical to the exported ones. After restore, ingest
// resumes from State.Seq+1 and detectors see exactly the windows the
// crashed engine held.
func (e *Engine) RestoreState(st *State) error {
	if st == nil {
		return nil
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return fmt.Errorf("watch: restore into closed engine")
	}
	if e.seq != 0 || e.ingested.Load() != 0 {
		e.mu.Unlock()
		return fmt.Errorf("watch: restore into engine that already ingested (seq=%d)", e.seq)
	}
	e.seq = st.Seq
	e.mu.Unlock()
	e.ingested.Store(st.Ingested)
	e.processed.Store(st.Processed)
	e.dropped.Store(st.Dropped)
	e.alerts.Store(st.AlertsRaised)
	e.truncated.Store(st.AlertsTruncated)
	for i := range st.Prefixes {
		w := &st.Prefixes[i]
		p := w.Prefix.Masked()
		s := e.shards[e.shardOf(p)]
		s.mu.Lock()
		ps := newPrefixState(p, e.cfg.WindowEvents)
		for j := range w.Events {
			ps.push(&w.Events[j], e.cfg.Window)
		}
		ps.total = w.Total
		s.prefixes[p] = ps
		s.mu.Unlock()
	}
	for _, a := range st.Alerts {
		s := e.shards[e.shardOf(a.Prefix.Masked())]
		s.mu.Lock()
		s.alerts = append(s.alerts, a)
		s.mu.Unlock()
	}
	if len(st.ByDetector) > 0 {
		// Per-detector totals are only ever read summed across shards, so
		// the whole restored map can live on shard 0.
		s := e.shards[0]
		s.mu.Lock()
		for k, v := range st.ByDetector {
			s.byDetector[k] += v
		}
		s.mu.Unlock()
	}
	e.version.Add(1)
	return nil
}
