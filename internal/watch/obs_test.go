package watch_test

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"sync"
	"testing"

	"bgpworms/internal/obs"
	"bgpworms/internal/watch"
)

// seriesValue extracts one series' value from a Prometheus text render.
func seriesValue(t *testing.T, text, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			t.Fatalf("series %s: bad value %q", name, rest)
		}
		return v
	}
	t.Fatalf("series %s missing from exposition:\n%s", name, text)
	return 0
}

// TestWatchMetricsInvariantAcrossShards pins the determinism contract
// for instrumentation: with a blocking feed, the worker-count-invariant
// series (ingested, processed, alerts, per-detector counts) are
// identical across shard counts, and the alert set itself is
// bit-identical to an uninstrumented engine's. Racy series (drops,
// queue depth, batch timing) are deliberately not asserted.
func TestWatchMetricsInvariantAcrossShards(t *testing.T) {
	feed := churnFeed(t)
	bare, _ := runFeed(t, feed, watch.Config{Shards: 4})
	ref, _ := json.Marshal(bare)

	type invariant struct {
		ingested, processed, alerts float64
		byDetector                  map[string]float64
	}
	var want *invariant
	for _, shards := range []int{1, 4, 16} {
		reg := obs.NewRegistry()
		e := watch.NewEngine(watch.Config{Shards: shards, Metrics: reg})
		feed(e)
		e.Flush()
		st := e.Stats()
		if st.Dropped != 0 {
			t.Fatalf("shards=%d: blocking ingest dropped %d", shards, st.Dropped)
		}
		got, _ := json.Marshal(e.Alerts())
		if !bytes.Equal(ref, got) {
			t.Fatalf("shards=%d: alert set differs from uninstrumented engine", shards)
		}
		// Scrape before Close detaches the collector.
		var sb strings.Builder
		if err := reg.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		text := sb.String()
		inv := invariant{
			ingested:   seriesValue(t, text, "watch_ingested_total"),
			processed:  seriesValue(t, text, "watch_processed_total"),
			alerts:     seriesValue(t, text, "watch_alerts_total"),
			byDetector: map[string]float64{},
		}
		for det, n := range st.ByDetector {
			if n > 0 {
				inv.byDetector[det] = seriesValue(t, text,
					`watch_detector_alerts_total{detector="`+det+`"}`)
			}
		}
		if inv.ingested != inv.processed {
			t.Fatalf("shards=%d: ingested=%v processed=%v after flush", shards, inv.ingested, inv.processed)
		}
		if seriesValue(t, text, "watch_batch_seconds_count") == 0 {
			t.Fatalf("shards=%d: no batch latency observations", shards)
		}
		e.Close()
		if want == nil {
			c := inv
			want = &c
			continue
		}
		if inv.ingested != want.ingested || inv.alerts != want.alerts {
			t.Fatalf("shards=%d: invariant series drifted: %+v vs %+v", shards, inv, *want)
		}
		for det, v := range want.byDetector {
			if inv.byDetector[det] != v {
				t.Fatalf("shards=%d: detector %s count %v != %v", shards, det, inv.byDetector[det], v)
			}
		}
	}
}

// TestWatchMetricsScrapeDuringIngest hammers Prometheus renders and
// Stats against a live blocking feed; under -race this is the proof
// that scraping never torns state or deadlocks against shard workers.
func TestWatchMetricsScrapeDuringIngest(t *testing.T) {
	feed := churnFeed(t)
	reg := obs.NewRegistry()
	e := watch.NewEngine(watch.Config{Shards: 4, Metrics: reg})
	defer e.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var sb strings.Builder
				if err := reg.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
				_ = e.Stats()
			}
		}()
	}
	feed(e)
	e.Flush()
	close(stop)
	wg.Wait()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if got := seriesValue(t, sb.String(), "watch_ingested_total"); got != float64(st.Ingested) {
		t.Fatalf("scrape ingested=%v, stats=%d", got, st.Ingested)
	}
}

// TestWatchMetricsDetachOnClose pins that Close unregisters the
// collector: a dead engine's series stop rendering.
func TestWatchMetricsDetachOnClose(t *testing.T) {
	reg := obs.NewRegistry()
	e := watch.NewEngine(watch.Config{Shards: 1, Metrics: reg})
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "watch_ingested_total") {
		t.Fatal("live engine missing from exposition")
	}
	e.Close()
	sb.Reset()
	reg.WritePrometheus(&sb)
	if strings.Contains(sb.String(), "watch_ingested_total") {
		t.Fatal("closed engine still rendering")
	}
}
