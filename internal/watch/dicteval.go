package watch

import (
	"fmt"

	"bgpworms/internal/gen"
	"bgpworms/internal/scenario"
	"bgpworms/internal/semantics"
)

// This file closes the infer-what-you-generate loop, the dictionary
// analogue of eval.go: a registered scenario replays with a semantics
// tap observing the full simulated update stream, and the inferred
// dictionaries are scored against the world's exported ground truth
// (gen.Registry.Dict / Internet.TruthDict).

// DictEvalReport is the outcome of scoring dictionary inference over
// one scenario replay.
type DictEvalReport struct {
	Scenario string `json:"scenario"`
	// Result is the scenario's own Table-3 outcome.
	Result *scenario.Result `json:"result"`
	// Stats is the semantics engine's operational snapshot.
	Stats semantics.Stats `json:"stats"`
	// Score grades the inferred dictionary against the world ground
	// truth captured after the run (lab-added services included).
	Score semantics.Score `json:"score"`
}

// EvalDictionaryScenario replays the named registered scenario with a
// semantics tap observing every update delivery — world construction,
// probes, and the attack itself — then scores the inferred dictionary
// against the world's ground truth. The returned snapshot is the
// frozen dictionary the run produced (feed it to Config.Dict for
// detection on a second pass). A nil ctx replays with scenario
// defaults; any caller Tap/World hooks on ctx are replaced.
func EvalDictionaryScenario(name string, ctx *scenario.Context, cfg semantics.Config) (*DictEvalReport, *semantics.Snapshot, error) {
	if ctx == nil {
		ctx = &scenario.Context{}
	}
	eng := semantics.NewEngine(cfg)
	defer eng.Close()
	var world *gen.Internet
	ctx.World = func(w *gen.Internet) { world = w }
	ctx.Tap = eng.Tap()
	res, err := scenario.Run(name, ctx)
	if err != nil {
		return nil, nil, err
	}
	if world == nil {
		return nil, nil, fmt.Errorf("watch: scenario %q never exposed its world (no ground truth)", name)
	}
	snap := eng.Snapshot()
	rep := &DictEvalReport{
		Scenario: name,
		Result:   res,
		Stats:    eng.Stats(),
		// TruthDict reads the world after the run, so services the lab
		// provisioned mid-scenario count as ground truth too.
		Score: semantics.ScoreAgainst(snap, world.TruthDict()),
	}
	return rep, snap, nil
}

// RenderDictEval renders the report as the per-class table plus a
// summary line.
func RenderDictEval(r *DictEvalReport) string {
	out := semantics.RenderScore(r.Score)
	out += fmt.Sprintf("scenario=%s success=%v observations=%d communities=%d ases=%d\n",
		r.Scenario, r.Result != nil && r.Result.Success, r.Stats.Processed, r.Stats.Communities, r.Stats.ASes)
	return out
}
