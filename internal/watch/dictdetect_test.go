package watch_test

import (
	"encoding/json"
	"net/netip"
	"testing"

	"bgpworms/internal/attack"
	"bgpworms/internal/bgp"
	"bgpworms/internal/gen"
	"bgpworms/internal/scenario"
	"bgpworms/internal/semantics"
	"bgpworms/internal/watch"
)

// trainDictionary builds the same world the default-scale scenarios
// build (tiny preset, default seed, lab attached) with a semantics tap
// observing construction, then runs a month of churn over it — the
// clean-baseline training pass CommunityWatch-style detection needs.
// It returns the frozen dictionary and the training world.
func trainDictionary(t *testing.T) (*semantics.Snapshot, *gen.Internet) {
	t.Helper()
	eng := semantics.NewEngine(semantics.Config{Workers: 4})
	defer eng.Close()
	p, err := gen.Preset(scenario.DefaultScale)
	if err != nil {
		t.Fatal(err)
	}
	p.Tap = eng.Tap()
	l, err := attack.NewLab(p, scenario.DefaultVPs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.W.RunChurn(); err != nil {
		t.Fatal(err)
	}
	return eng.Snapshot(), l.W
}

// TestDictSquatReducesFalsePositives is the PR-4 acceptance gate: on
// the squatted-decoy scenario, the dictionary-aware squat detector must
// fire strictly less than the PR-3 value-pattern squat detector while
// still catching the actual squat.
func TestDictSquatReducesFalsePositives(t *testing.T) {
	snap, world := trainDictionary(t)
	if len(world.Registry.Likely) == 0 {
		t.Skip("no decoy blackhole community in this topology")
	}
	decoy := world.Registry.Likely[0]

	rep, err := watch.EvalScenario("blackhole-squatting", nil, watch.Config{Shards: 4, Dict: snap})
	if err != nil {
		t.Fatal(err)
	}
	fired := map[string]int{}
	decoyAlerts := map[string]int{}
	for _, a := range rep.Alerts {
		fired[a.Detector]++
		if a.Community == decoy.String() {
			decoyAlerts[a.Detector]++
		}
	}
	if fired[watch.DictSquatName] == 0 {
		t.Fatalf("dict-squat never fired\n%s", watch.RenderEval(rep))
	}
	if fired[watch.DictSquatName] >= fired["community-squat"] {
		t.Fatalf("dict-squat fired %d times, PR-3 community-squat %d — no strict reduction\n%s",
			fired[watch.DictSquatName], fired["community-squat"], watch.RenderEval(rep))
	}
	if decoyAlerts[watch.DictSquatName] == 0 {
		t.Fatalf("dict-squat missed the decoy squat %s (alerts by detector: %v)", decoy, fired)
	}
	if decoyAlerts[watch.UnknownActionName] == 0 {
		t.Fatalf("unknown-action-community missed the decoy %s (alerts: %v)", decoy, fired)
	}
	if rep.Recall != 1 {
		t.Fatalf("recall=%.2f with dict detectors active\n%s", rep.Recall, watch.RenderEval(rep))
	}
	t.Logf("community-squat=%d dict-squat=%d (%.0f%% fewer), decoy caught by both dict detectors",
		fired["community-squat"], fired[watch.DictSquatName],
		100*(1-float64(fired[watch.DictSquatName])/float64(fired["community-squat"])))
}

// TestDictDetectorDeterminismAcrossShards extends the engine's
// shard-count invariance to the dictionary-aware detectors: with a
// frozen snapshot the full alert set is bit-identical at 1 and 8
// shards.
func TestDictDetectorDeterminismAcrossShards(t *testing.T) {
	snap, _ := trainDictionary(t)
	var want []byte
	for _, shards := range []int{1, 8} {
		rep, err := watch.EvalScenario("blackhole-squatting", nil, watch.Config{Shards: shards, Dict: snap})
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(rep.Alerts)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if string(got) != string(want) {
			t.Fatalf("alert set differs between shard counts")
		}
	}
}

// TestSemanticsMirroring checks Config.Semantics: every community-
// carrying event the watch engine ingests lands in the dictionary
// engine with the same sequence numbering.
func TestSemanticsMirroring(t *testing.T) {
	sem := semantics.NewEngine(semantics.Config{Workers: 2})
	defer sem.Close()
	eng := watch.NewEngine(watch.Config{Shards: 2, Semantics: sem})
	n, err := scenarioFeed(t, eng)
	if err != nil {
		t.Fatal(err)
	}
	eng.Flush()
	eng.Close()
	st := sem.Stats()
	if st.Processed == 0 || st.Communities == 0 {
		t.Fatalf("mirroring produced no dictionary: %+v (replayed %d events)", st, n)
	}
	if st.Processed > eng.Stats().Ingested {
		t.Fatalf("semantics processed %d > watch ingested %d", st.Processed, eng.Stats().Ingested)
	}
}

// scenarioFeed replays the rtbh scenario through eng's blocking tap.
func scenarioFeed(t *testing.T, eng *watch.Engine) (uint64, error) {
	t.Helper()
	ctx := &scenario.Context{Tap: eng.BlockingTap("test")}
	if _, err := scenario.Run("rtbh", ctx); err != nil {
		return 0, err
	}
	eng.Flush()
	return eng.Stats().Ingested, nil
}

// TestEvalDictionaryScenario scores dictionary inference against the
// generator's exported ground truth over two scenarios — the
// infer-what-you-generate acceptance gate — and pins the harness's
// worker-count invariance.
func TestEvalDictionaryScenario(t *testing.T) {
	for _, name := range []string{"rtbh", "blackhole-squatting"} {
		t.Run(name, func(t *testing.T) {
			rep, snap, err := watch.EvalDictionaryScenario(name, nil, semantics.Config{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if snap.Len() == 0 {
				t.Fatal("empty inferred dictionary")
			}
			if p := rep.Score.Precision(); p < 0.9 {
				t.Fatalf("precision=%.2f, want >= 0.9\n%s", p, watch.RenderDictEval(rep))
			}
			if r := rep.Score.Recall(); r < 0.5 {
				t.Fatalf("recall=%.2f, want >= 0.5\n%s", r, watch.RenderDictEval(rep))
			}
			t.Logf("\n%s", watch.RenderDictEval(rep))
		})
	}
}

// TestEvalDictionaryDeterminism pins the score across semantics worker
// counts: the same scenario replay must grade identically at 1 and 8
// workers.
func TestEvalDictionaryDeterminism(t *testing.T) {
	var want *watch.DictEvalReport
	for _, workers := range []int{1, 8} {
		rep, _, err := watch.EvalDictionaryScenario("rtbh", nil, semantics.Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = rep
			continue
		}
		a, _ := json.Marshal(want.Score)
		b, _ := json.Marshal(rep.Score)
		if string(a) != string(b) {
			t.Fatalf("score differs across worker counts:\n%s\nvs\n%s", a, b)
		}
	}
}

// TestDictProviderNilSafety: an empty holder behaves like an empty
// dictionary — every off-path community is outside it.
func TestDictProviderNilSafety(t *testing.T) {
	var holder semantics.Holder
	eng := watch.NewEngine(watch.Config{Shards: 1, Dict: &holder})
	defer eng.Close()
	eng.Ingest(watch.Event{
		PeerAS: 1,
		Prefix: netip.MustParsePrefix("10.1.0.0/24"),
		ASPath: []uint32{1, 2},
		Communities: bgp.NewCommunitySet(
			bgp.C(9, 40001),
		),
	})
	eng.Flush()
	found := false
	for _, a := range eng.Alerts() {
		if a.Detector == watch.DictSquatName {
			found = true
		}
	}
	if !found {
		t.Fatal("dict-squat silent with an empty dictionary")
	}
}
