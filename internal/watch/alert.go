package watch

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"time"
)

// Severity grades an alert.
type Severity int

// Severity levels.
const (
	Info Severity = iota
	Warning
	Critical
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Critical:
		return "critical"
	default:
		return "unknown"
	}
}

// MarshalJSON renders the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON parses the severity name (the durable snapshot path
// round-trips alerts through JSON).
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "info":
		*s = Info
	case "warning":
		*s = Warning
	case "critical":
		*s = Critical
	default:
		return fmt.Errorf("watch: unknown severity %q", name)
	}
	return nil
}

// Alert is one typed detector finding. Detectors fill Detector,
// Severity, Community, and Message; the engine stamps the remaining
// fields from the triggering event.
type Alert struct {
	// Seq is the ingest sequence of the triggering event; the global
	// alert order sorts on it.
	Seq      uint64       `json:"seq"`
	Time     time.Time    `json:"time"`
	Detector string       `json:"detector"`
	Severity Severity     `json:"severity"`
	Prefix   netip.Prefix `json:"prefix"`
	PeerAS   uint32       `json:"peer_as"`
	Origin   uint32       `json:"origin_as,omitempty"`
	// Community is the implicated community in presentation form, when
	// one exists.
	Community string `json:"community,omitempty"`
	Source    string `json:"source,omitempty"`
	Message   string `json:"message"`
}

// String renders a one-line log form.
func (a Alert) String() string {
	return fmt.Sprintf("#%d %s [%s] %s: %s", a.Seq, a.Detector, a.Severity, a.Prefix, a.Message)
}
