package watch

import (
	"fmt"

	"bgpworms/internal/semantics"
)

// This file holds the dictionary-aware detectors: where the PR-3
// detectors reason from value patterns and per-prefix windows alone,
// these consult an inferred per-AS community dictionary
// (internal/semantics) — CommunityWatch's move from "looks odd" to
// "departs from this AS's observed vocabulary".
//
// Both detectors bind to a semantics.Provider at construction and are
// NOT in the global registry: a registry detector must be stateless,
// and these carry their dictionary. The engine appends them to the
// default set when Config.Dict is set.
//
// Determinism: with a frozen *semantics.Snapshot the alert set is
// bit-identical across shard counts, exactly like the builtin
// detectors. With a live provider (a semantics.Holder a daemon
// refreshes while ingesting) alerts depend on refresh timing — fine
// for a daemon, wrong for an eval; harnesses freeze.

// DictSquatName and UnknownActionName are the detector registry keys.
const (
	DictSquatName     = "dict-squat"
	UnknownActionName = "unknown-action-community"
)

// NewDictSquat returns the dictionary-aware squat detector: it fires
// only when a community's defining AS is off-path AND the value is
// outside that AS's inferred dictionary. Recurring legitimate off-path
// uses (community bundling, private tags, action requests traveling
// toward their definer) are in the dictionary and stay silent, which is
// what cuts the PR-3 community-squat detector's false positives
// (TestDictSquatReducesFalsePositives).
func NewDictSquat(dict semantics.Provider) Detector {
	return dictSquat{dict: dict}
}

type dictSquat struct{ dict semantics.Provider }

func (dictSquat) Name() string { return DictSquatName }
func (dictSquat) Describe() string {
	return "an off-path community outside the defining AS's inferred dictionary"
}

func (d dictSquat) Observe(st *PrefixState, ev *Event, emit func(Alert)) {
	if ev.Withdraw {
		return
	}
	for _, c := range ev.Communities {
		if c.IsWellKnown() || ev.onPath(uint32(c.ASN())) || st.HasCommunity(c) {
			continue
		}
		if _, known := d.dict.Lookup(c); known {
			continue // inside the AS's observed vocabulary
		}
		emit(Alert{
			Severity:  Warning,
			Community: c.String(),
			Message: fmt.Sprintf("community %s names off-path AS%d and is outside its inferred dictionary (origin AS%d)",
				c, c.ASN(), ev.Origin()),
		})
	}
}

// NewUnknownActionCommunity returns the detector for action-patterned
// communities with no inferred service behind them: a blackhole-valued
// community (:666 / :999 / RFC 7999) whose defining AS's dictionary
// does not classify it as a blackhole action. Real triggers are in the
// dictionary as action-blackhole and stay silent; squatted decoys — the
// §7.6 "likely" population — fire.
func NewUnknownActionCommunity(dict semantics.Provider) Detector {
	return unknownAction{dict: dict}
}

type unknownAction struct{ dict semantics.Provider }

func (unknownAction) Name() string { return UnknownActionName }
func (unknownAction) Describe() string {
	return "an action-patterned community with no inferred service behind it"
}

func (d unknownAction) Observe(st *PrefixState, ev *Event, emit func(Alert)) {
	if ev.Withdraw {
		return
	}
	for _, c := range ev.Communities {
		if c.IsWellKnown() || !semantics.BlackholePattern(c) {
			continue
		}
		if e, ok := d.dict.Lookup(c); ok && e.Class == semantics.ClassActionBlackhole {
			continue // a known trigger: blackhole-onset owns this case
		}
		if st.HasCommunity(c) {
			continue // one alert per windowed episode
		}
		emit(Alert{
			Severity:  Warning,
			Community: c.String(),
			Message: fmt.Sprintf("blackhole-patterned community %s has no inferred RTBH service at AS%d (origin AS%d)",
				c, c.ASN(), ev.Origin()),
		})
	}
}

// DictDetectors builds the dictionary-aware set bound to dict, in name
// order (the registry's ordering discipline). Harnesses that assemble
// detector arms by name (internal/suite) use it to add the pair to an
// explicit Config.Detectors list; Config.Dict adds it implicitly when
// no list is given.
func DictDetectors(dict semantics.Provider) []Detector {
	return []Detector{NewDictSquat(dict), NewUnknownActionCommunity(dict)}
}
