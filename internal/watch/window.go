package watch

import (
	"net/netip"
	"time"

	"bgpworms/internal/bgp"
)

// PrefixState is the sliding-window state one prefix carries: a ring
// buffer of its most recent events, bounded both by count
// (Config.WindowEvents) and by age (Config.Window). Detectors receive
// the state as it was *before* the event under observation, so "new in
// the window" questions need no self-exclusion.
//
// A PrefixState lives wholly inside one shard; detectors must not
// retain it across Observe calls.
type PrefixState struct {
	prefix netip.Prefix
	ring   []Event
	head   int // index of the oldest event
	n      int
	total  uint64
}

func newPrefixState(p netip.Prefix, capacity int) *PrefixState {
	return &PrefixState{prefix: p, ring: make([]Event, capacity)}
}

// Prefix returns the prefix this state tracks.
func (s *PrefixState) Prefix() netip.Prefix { return s.prefix }

// Len is the current window occupancy.
func (s *PrefixState) Len() int { return s.n }

// At returns the i-th windowed event, oldest first (0 <= i < Len).
func (s *PrefixState) At(i int) *Event {
	return &s.ring[(s.head+i)%len(s.ring)]
}

// Last returns the newest windowed event (nil when the window is
// empty).
func (s *PrefixState) Last() *Event {
	if s.n == 0 {
		return nil
	}
	return s.At(s.n - 1)
}

// HasCommunity reports whether any windowed event carries c.
func (s *PrefixState) HasCommunity(c bgp.Community) bool {
	for i := 0; i < s.n; i++ {
		if s.At(i).Communities.Has(c) {
			return true
		}
	}
	return false
}

// push folds ev into the window: age-based eviction first, then the
// count bound (overwriting the oldest when full).
func (s *PrefixState) push(ev *Event, horizon time.Duration) {
	cutoff := ev.Time.Add(-horizon)
	for s.n > 0 && s.ring[s.head].Time.Before(cutoff) {
		s.ring[s.head] = Event{}
		s.head = (s.head + 1) % len(s.ring)
		s.n--
	}
	if s.n == len(s.ring) {
		s.head = (s.head + 1) % len(s.ring)
		s.n--
	}
	s.ring[(s.head+s.n)%len(s.ring)] = *ev
	s.n++
	s.total++
}
