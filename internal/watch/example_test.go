package watch_test

import (
	"fmt"

	"bgpworms/internal/bgp"
	"bgpworms/internal/netx"
	"bgpworms/internal/watch"
)

// ExampleDetectors lists the builtin detector registry — the catalog
// wormwatchd runs over every ingested update.
func ExampleDetectors() {
	for _, d := range watch.Detectors() {
		fmt.Printf("%s — %s\n", d.Name(), d.Describe())
	}
	// Output:
	// blackhole-onset — a blackhole-valued community appeared on a prefix that had none in the window
	// community-squat — a never-before-seen community names an AS that is not on the path
	// prop-distance — a community traveled more than 3 AS hops beyond the AS it names
	// route-leak — the origin AS shifted away from every origin in the window
}

// ExampleEngine_Ingest streams a tiny hand-built feed — a baseline
// announcement followed by a blackhole-tagged re-announcement — and
// prints the alert the onset detector raises.
func ExampleEngine_Ingest() {
	e := watch.NewEngine(watch.Config{Shards: 2})
	defer e.Close()

	victim := netx.MustPrefix("203.0.113.9/32")
	path := []uint32{100, 200}
	e.Ingest(watch.Event{PeerAS: 100, Prefix: victim, ASPath: path})
	e.Ingest(watch.Event{PeerAS: 100, Prefix: victim, ASPath: path,
		Communities: bgp.NewCommunitySet(bgp.C(100, 666))})
	e.Flush()

	for _, a := range e.Alerts() {
		fmt.Printf("%s %s %s\n", a.Detector, a.Prefix, a.Message)
	}
	// Output:
	// blackhole-onset 203.0.113.9/32 blackhole community 100:666 onset (origin AS200)
}
