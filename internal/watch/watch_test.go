package watch_test

import (
	"bytes"
	"encoding/json"
	"testing"

	_ "bgpworms/internal/attack" // registers the builtin scenarios
	"bgpworms/internal/bgp"
	"bgpworms/internal/gen"
	"bgpworms/internal/netx"
	"bgpworms/internal/watch"
)

// churnFeed builds a deterministic real-shaped feed: a tiny Internet
// with a month of churn (including RTBH episodes), exported through
// every collector's recorded observations.
func churnFeed(t testing.TB) func(e *watch.Engine) {
	t.Helper()
	w, err := gen.Build(gen.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.RunChurn(); err != nil {
		t.Fatal(err)
	}
	return func(e *watch.Engine) {
		for _, c := range w.Collectors {
			e.IngestObservations(c)
		}
	}
}

func runFeed(t testing.TB, feed func(*watch.Engine), cfg watch.Config) ([]watch.Alert, watch.Stats) {
	t.Helper()
	e := watch.NewEngine(cfg)
	defer e.Close()
	feed(e)
	e.Flush()
	return e.Alerts(), e.Stats()
}

// TestWatchDeterminismAcrossShards is the acceptance gate: the same
// feed must yield a bit-identical alert set whether one shard or eight
// process it.
func TestWatchDeterminismAcrossShards(t *testing.T) {
	feed := churnFeed(t)
	var ref []byte
	for _, shards := range []int{1, 2, 8} {
		alerts, st := runFeed(t, feed, watch.Config{Shards: shards})
		if st.Dropped != 0 {
			t.Fatalf("shards=%d: blocking ingest dropped %d events", shards, st.Dropped)
		}
		if len(alerts) == 0 {
			t.Fatalf("shards=%d: churn feed raised no alerts", shards)
		}
		b, err := json.Marshal(alerts)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = b
			continue
		}
		if !bytes.Equal(ref, b) {
			t.Fatalf("alert set differs between shard counts:\nshards=1: %s\nshards=%d: %s", ref, shards, b)
		}
	}
}

// TestWatchRepeatability pins that two runs over the identical feed and
// config agree — no map-iteration order leaks into alerts or stats.
func TestWatchRepeatability(t *testing.T) {
	feed := churnFeed(t)
	a1, s1 := runFeed(t, feed, watch.Config{Shards: 4})
	a2, s2 := runFeed(t, feed, watch.Config{Shards: 4})
	j1, _ := json.Marshal(a1)
	j2, _ := json.Marshal(a2)
	if !bytes.Equal(j1, j2) {
		t.Fatalf("alerts differ across identical runs")
	}
	if s1.Alerts != s2.Alerts || s1.Ingested != s2.Ingested || s1.TrackedPrefixes != s2.TrackedPrefixes {
		t.Fatalf("stats differ: %+v vs %+v", s1, s2)
	}
}

// TestWatchQueriesWhileIngesting exercises the concurrent-reader
// contract: stats, alerts, and prefix lookups stay consistent while a
// feed is mid-flight.
func TestWatchQueriesWhileIngesting(t *testing.T) {
	feed := churnFeed(t)
	e := watch.NewEngine(watch.Config{Shards: 4})
	defer e.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-done:
				return
			default:
			}
			st := e.Stats()
			if st.Processed > st.Ingested {
				t.Error("processed ran ahead of ingested")
				return
			}
			_ = e.Alerts()
		}
	}()
	feed(e)
	e.Flush()
	done <- struct{}{}
	<-done
	st := e.Stats()
	if st.Pending != 0 {
		t.Fatalf("pending=%d after flush", st.Pending)
	}
	if st.Processed != st.Ingested {
		t.Fatalf("processed=%d != ingested=%d", st.Processed, st.Ingested)
	}
}

// TestWatchPrefixInfo checks the per-prefix query surface.
func TestWatchPrefixInfo(t *testing.T) {
	e := watch.NewEngine(watch.Config{Shards: 2})
	defer e.Close()
	p := netx.MustPrefix("203.0.113.0/24")
	e.Ingest(watch.Event{PeerAS: 10, Prefix: p, ASPath: []uint32{10, 20, 30},
		Communities: bgp.NewCommunitySet(bgp.C(30, 100))})
	e.Ingest(watch.Event{PeerAS: 10, Prefix: p, Withdraw: true})
	e.Flush()
	info, ok := e.PrefixInfo(p)
	if !ok {
		t.Fatal("prefix not tracked")
	}
	if info.WindowEvents != 2 || info.TotalEvents != 2 || !info.Withdrawn {
		t.Fatalf("info = %+v", info)
	}
	if len(info.Communities) != 1 || info.Communities[0] != "30:100" {
		t.Fatalf("communities = %v", info.Communities)
	}
	if _, ok := e.PrefixInfo(netx.MustPrefix("198.51.100.0/24")); ok {
		t.Fatal("untracked prefix reported present")
	}
}

// TestWatchBackpressureDrops pins the non-blocking contract: a stalled
// engine sheds TryIngest load and accounts for it instead of blocking.
func TestWatchBackpressureDrops(t *testing.T) {
	e := watch.NewEngine(watch.Config{Shards: 1, BatchSize: 1, QueueDepth: 1,
		Detectors: []watch.Detector{stall{}}})
	defer e.Close()
	p := netx.MustPrefix("203.0.113.0/24")
	for i := 0; i < 10000; i++ {
		e.TryIngest(watch.Event{PeerAS: 1, Prefix: p, ASPath: []uint32{1}})
	}
	e.Flush()
	st := e.Stats()
	if st.Dropped == 0 {
		t.Fatal("expected drops under a stalled shard")
	}
	if st.Processed+st.Dropped != st.Ingested {
		t.Fatalf("accounting: processed=%d + dropped=%d != ingested=%d", st.Processed, st.Dropped, st.Ingested)
	}
}

// stall is a test detector slow enough to back the queue up.
type stall struct{}

func (stall) Name() string     { return "stall" }
func (stall) Describe() string { return "test-only: sleeps per event" }
func (stall) Observe(st *watch.PrefixState, ev *watch.Event, emit func(watch.Alert)) {
	for i := 0; i < 1000; i++ {
		_ = i * i
	}
}

// TestWatchAlertRetentionCap pins the long-running-daemon bound: old
// alerts are shed once the cap is reached, and the shedding is
// accounted for.
func TestWatchAlertRetentionCap(t *testing.T) {
	e := watch.NewEngine(watch.Config{Shards: 1, MaxAlerts: 8, WindowEvents: 4})
	defer e.Close()
	p := netx.MustPrefix("203.0.113.0/24")
	const fired = 64
	for i := 0; i < fired; i++ {
		// Every event carries a fresh off-path community: one squat
		// alert each (the 4-event window forgets old communities).
		e.Ingest(watch.Event{PeerAS: 1, Prefix: p, ASPath: []uint32{1, 2},
			Communities: bgp.NewCommunitySet(bgp.C(uint16(5000+i), 1))})
	}
	e.Flush()
	st := e.Stats()
	if st.Alerts < fired {
		t.Fatalf("alerts fired = %d, want >= %d", st.Alerts, fired)
	}
	if st.AlertsTruncated == 0 {
		t.Fatal("cap never truncated")
	}
	retained := len(e.Alerts())
	if uint64(retained)+st.AlertsTruncated != st.Alerts {
		t.Fatalf("retained %d + truncated %d != fired %d", retained, st.AlertsTruncated, st.Alerts)
	}
	if retained > 9 { // per-shard share is MaxAlerts/Shards+1
		t.Fatalf("retained %d exceeds cap", retained)
	}
	// The newest alert must survive truncation.
	alerts := e.Alerts()
	if alerts[len(alerts)-1].Seq != fired {
		t.Fatalf("newest alert seq = %d, want %d", alerts[len(alerts)-1].Seq, fired)
	}
}

// TestWatchIngestAfterClose pins that a closed engine drops ingests
// silently and keeps serving queries.
func TestWatchIngestAfterClose(t *testing.T) {
	e := watch.NewEngine(watch.Config{Shards: 1})
	p := netx.MustPrefix("203.0.113.0/24")
	e.Ingest(watch.Event{PeerAS: 1, Prefix: p, ASPath: []uint32{1}})
	e.Close()
	before := e.Stats().Ingested
	e.Ingest(watch.Event{PeerAS: 1, Prefix: p, ASPath: []uint32{1}})
	if e.Stats().Ingested != before {
		t.Fatal("ingest after close was counted")
	}
	if _, ok := e.PrefixInfo(p); !ok {
		t.Fatal("queries must survive Close")
	}
}
