package watch_test

import (
	"net/netip"
	"strings"
	"testing"

	"bgpworms/internal/bgp"
	"bgpworms/internal/netx"
	"bgpworms/internal/watch"
)

// feedAll runs a fixed event sequence through a fresh single-shard
// engine and returns the alerts.
func feedAll(t *testing.T, events ...watch.Event) []watch.Alert {
	t.Helper()
	e := watch.NewEngine(watch.Config{Shards: 1})
	defer e.Close()
	for _, ev := range events {
		e.Ingest(ev)
	}
	e.Flush()
	return e.Alerts()
}

func byDetector(alerts []watch.Alert, name string) []watch.Alert {
	var out []watch.Alert
	for _, a := range alerts {
		if a.Detector == name {
			out = append(out, a)
		}
	}
	return out
}

func announce(peer uint32, p netip.Prefix, path []uint32, comms ...bgp.Community) watch.Event {
	return watch.Event{PeerAS: peer, Prefix: p, ASPath: path, Communities: bgp.NewCommunitySet(comms...)}
}

func TestBlackholeOnsetFiresOncePerEpisode(t *testing.T) {
	p := netx.MustPrefix("203.0.113.9/32")
	path := []uint32{100, 200}
	bh := bgp.C(100, 666)
	alerts := byDetector(feedAll(t,
		announce(100, p, path),                   // baseline, untagged
		announce(100, p, path, bh),               // onset
		announce(100, p, path, bh),               // same episode: silent
		announce(101, p, []uint32{101, 200}, bh), // other session, same episode: silent
	), "blackhole-onset")
	if len(alerts) != 1 {
		t.Fatalf("onset alerts = %d, want 1: %v", len(alerts), alerts)
	}
	a := alerts[0]
	if a.Seq != 2 || a.Community != "100:666" || a.Severity != watch.Critical {
		t.Fatalf("alert = %+v", a)
	}
	if !strings.Contains(a.Message, "blackhole") {
		t.Fatalf("message = %q", a.Message)
	}
}

func TestCommunitySquatOffPathOnly(t *testing.T) {
	p := netx.MustPrefix("198.51.100.0/24")
	path := []uint32{100, 200, 300}
	onPath := bgp.C(200, 100)   // names a path AS: legitimate
	offPath := bgp.C(4242, 100) // names nobody on the path
	alerts := byDetector(feedAll(t,
		announce(100, p, path, onPath),
		announce(100, p, path, onPath, offPath), // first off-path sighting
		announce(100, p, path, onPath, offPath), // windowed: silent
	), "community-squat")
	if len(alerts) != 1 {
		t.Fatalf("squat alerts = %d, want 1: %v", len(alerts), alerts)
	}
	if alerts[0].Community != "4242:100" || alerts[0].Seq != 2 {
		t.Fatalf("alert = %+v", alerts[0])
	}
}

func TestCommunitySquatIgnoresWellKnown(t *testing.T) {
	p := netx.MustPrefix("198.51.100.0/24")
	alerts := byDetector(feedAll(t,
		announce(100, p, []uint32{100}, bgp.CommunityNoExport),
	), "community-squat")
	if len(alerts) != 0 {
		t.Fatalf("well-known community alerted: %v", alerts)
	}
}

func TestPropDistanceSpike(t *testing.T) {
	p := netx.MustPrefix("192.0.2.0/24")
	far := bgp.C(900, 7) // tagged by the AS 4 hops from the peer
	longPath := []uint32{10, 20, 30, 40, 900, 950}
	alerts := byDetector(feedAll(t,
		announce(10, p, []uint32{10, 900, 950}, far), // traveled 1 hop: quiet
		announce(10, p, longPath, far),               // traveled 4 hops: spike
		announce(10, p, longPath, far),               // windowed repeat: quiet
	), "prop-distance")
	if len(alerts) != 1 {
		t.Fatalf("prop-distance alerts = %d, want 1: %v", len(alerts), alerts)
	}
	if alerts[0].Seq != 2 || alerts[0].Community != "900:7" {
		t.Fatalf("alert = %+v", alerts[0])
	}
}

func TestPropDistanceStripsPrepending(t *testing.T) {
	p := netx.MustPrefix("192.0.2.0/24")
	c := bgp.C(900, 7)
	// 4 raw hops of prepending collapse to 1 stripped hop: no spike.
	alerts := byDetector(feedAll(t,
		announce(10, p, []uint32{10, 10, 10, 10, 900}, c),
	), "prop-distance")
	if len(alerts) != 0 {
		t.Fatalf("prepending counted as travel: %v", alerts)
	}
}

func TestRouteLeakOriginShift(t *testing.T) {
	p := netx.MustPrefix("203.0.113.0/24")
	alerts := byDetector(feedAll(t,
		announce(100, p, []uint32{100, 300}), // origin 300 established
		announce(100, p, []uint32{100, 999}), // origin shifted: leak signature
		announce(100, p, []uint32{100, 999}), // windowed: silent
		announce(100, p, []uint32{100, 300}), // shift back would re-fire only if 300 aged out
	), "route-leak")
	if len(alerts) != 1 {
		t.Fatalf("route-leak alerts = %d, want 1: %v", len(alerts), alerts)
	}
	a := alerts[0]
	if a.Seq != 2 || a.Origin != 999 || a.Severity != watch.Critical {
		t.Fatalf("alert = %+v", a)
	}
}

func TestRouteLeakFirstSightingSilent(t *testing.T) {
	p := netx.MustPrefix("203.0.113.0/24")
	alerts := byDetector(feedAll(t,
		announce(100, p, []uint32{100, 300}),
	), "route-leak")
	if len(alerts) != 0 {
		t.Fatalf("first sighting alerted: %v", alerts)
	}
}

func TestDetectorRegistry(t *testing.T) {
	names := watch.DetectorNames()
	want := []string{"blackhole-onset", "community-squat", "prop-distance", "route-leak"}
	for _, w := range want {
		d, ok := watch.LookupDetector(w)
		if !ok {
			t.Fatalf("builtin detector %q missing (have %v)", w, names)
		}
		if d.Name() != w || d.Describe() == "" {
			t.Fatalf("detector %q misdescribes itself", w)
		}
	}
	if len(watch.Detectors()) != len(names) {
		t.Fatal("Detectors() and DetectorNames() disagree")
	}
}
