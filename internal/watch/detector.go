package watch

import (
	"fmt"
	"sort"
	"sync"

	"bgpworms/internal/bgp"
)

// Detector is one streaming anomaly rule. Observe is called once per
// event with the prefix's window state as it was before the event; it
// emits zero or more alerts. Implementations must keep all mutable
// state inside PrefixState (one Detector instance is shared across
// every shard), and must be deterministic: the same (state, event) pair
// always emits the same alerts.
type Detector interface {
	// Name is the registry key (kebab-case).
	Name() string
	// Describe is a one-line summary for catalogs.
	Describe() string
	// Observe inspects one event against its prefix window.
	Observe(st *PrefixState, ev *Event, emit func(Alert))
}

var (
	detMu  sync.RWMutex
	detReg = map[string]Detector{}
)

// RegisterDetector adds d to the global registry. It panics on empty
// names and duplicates — registration happens from package init, where
// a bad catalog should be fatal (the scenario registry's contract).
func RegisterDetector(d Detector) {
	if d == nil || d.Name() == "" {
		panic("watch: RegisterDetector requires a named detector")
	}
	detMu.Lock()
	defer detMu.Unlock()
	if _, dup := detReg[d.Name()]; dup {
		panic(fmt.Sprintf("watch: duplicate detector %q", d.Name()))
	}
	detReg[d.Name()] = d
}

// LookupDetector returns the registered detector by name.
func LookupDetector(name string) (Detector, bool) {
	detMu.RLock()
	defer detMu.RUnlock()
	d, ok := detReg[name]
	return d, ok
}

// DetectorNames returns every registered detector name, sorted.
func DetectorNames() []string {
	detMu.RLock()
	defer detMu.RUnlock()
	out := make([]string, 0, len(detReg))
	for name := range detReg {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Detectors returns every registered detector, sorted by name — the
// engine's default detector set.
func Detectors() []Detector {
	names := DetectorNames()
	detMu.RLock()
	defer detMu.RUnlock()
	out := make([]Detector, 0, len(names))
	for _, name := range names {
		out = append(out, detReg[name])
	}
	return out
}

func init() {
	RegisterDetector(blackholeOnset{})
	RegisterDetector(communitySquat{})
	RegisterDetector(propDistance{threshold: 3})
	RegisterDetector(routeLeak{})
}

// blackholeOnset fires when a blackhole-valued community (RFC 7999 or a
// :666 label) appears on a prefix whose window carried none — the onset
// of a remote-triggered blackholing episode (§7.3). Subsequent tagged
// deliveries land inside the window and stay silent, so one episode
// raises one alert per prefix.
//
// Value-pattern matching deliberately over-counts: a squatted :666 on
// an AS with no RTBH service fires too. That is CommunityWatch's point
// — only active verification (scenario blackhole-sweep) separates
// triggers from decoys — and the eval ground truth tolerates it.
type blackholeOnset struct{}

func (blackholeOnset) Name() string { return "blackhole-onset" }
func (blackholeOnset) Describe() string {
	return "a blackhole-valued community appeared on a prefix that had none in the window"
}

func (blackholeOnset) Observe(st *PrefixState, ev *Event, emit func(Alert)) {
	if ev.Withdraw {
		return
	}
	var bh bgp.Community
	found := false
	for _, c := range ev.Communities {
		if c.IsBlackhole() {
			bh, found = c, true
			break
		}
	}
	if !found {
		return
	}
	for i := 0; i < st.Len(); i++ {
		for _, c := range st.At(i).Communities {
			if c.IsBlackhole() {
				return // episode already open
			}
		}
	}
	emit(Alert{
		Severity:  Critical,
		Community: bh.String(),
		Message:   fmt.Sprintf("blackhole community %s onset (origin AS%d)", bh, ev.Origin()),
	})
}

// communitySquat fires when an announcement carries a community whose
// ASN part names an AS that is neither on the AS path nor well-known,
// and that the prefix's window has not seen before — the "unexpected
// ASN per origin" noise class of Krenc et al. and the §7.6 decoy
// population. Legitimate off-path uses exist (community bundling,
// action communities aimed upstream), so the severity stays at Warning.
type communitySquat struct{}

func (communitySquat) Name() string { return "community-squat" }
func (communitySquat) Describe() string {
	return "a never-before-seen community names an AS that is not on the path"
}

func (communitySquat) Observe(st *PrefixState, ev *Event, emit func(Alert)) {
	if ev.Withdraw {
		return
	}
	for _, c := range ev.Communities {
		if c.IsWellKnown() || ev.onPath(uint32(c.ASN())) || st.HasCommunity(c) {
			continue
		}
		emit(Alert{
			Severity:  Warning,
			Community: c.String(),
			Message: fmt.Sprintf("community %s names off-path AS%d (origin AS%d announced via AS%d)",
				c, c.ASN(), ev.Origin(), ev.PeerAS),
		})
	}
}

// propDistance fires when a community is observed more than threshold
// AS hops beyond the AS it names — the long tail of the Figure 5
// traveled-distance ECDFs, and the propagation precondition every
// remote-trigger attack needs (§5.4). The distance is measured on the
// prepending-stripped path, as §4.1 normalizes.
type propDistance struct{ threshold int }

func (propDistance) Name() string { return "prop-distance" }
func (d propDistance) Describe() string {
	return fmt.Sprintf("a community traveled more than %d AS hops beyond the AS it names", d.threshold)
}

func (d propDistance) Observe(st *PrefixState, ev *Event, emit func(Alert)) {
	if ev.Withdraw || len(ev.ASPath) == 0 || len(ev.Communities) == 0 {
		return
	}
	stripped := bgp.Path(ev.ASPath...).StripPrepending()
	for _, c := range ev.Communities {
		if c.IsWellKnown() {
			continue
		}
		hops := travelHops(stripped, c)
		if hops <= d.threshold {
			continue
		}
		// One alert per (prefix, community) while the community stays in
		// the window: any windowed sighting at spike distance suppresses.
		repeat := false
		for i := 0; i < st.Len() && !repeat; i++ {
			prior := st.At(i)
			if prior.Withdraw || !prior.Communities.Has(c) {
				continue
			}
			if travelHops(bgp.Path(prior.ASPath...).StripPrepending(), c) > d.threshold {
				repeat = true
			}
		}
		if repeat {
			continue
		}
		emit(Alert{
			Severity:  Info,
			Community: c.String(),
			Message:   fmt.Sprintf("community %s traveled %d AS hops beyond AS%d", c, hops, c.ASN()),
		})
	}
}

// travelHops returns how many AS hops beyond its naming AS the
// community has traveled on a nearest-first stripped path (-1 when the
// naming AS is not on the path).
func travelHops(stripped []uint32, c bgp.Community) int {
	for i, a := range stripped {
		if a == uint32(c.ASN()) {
			return i
		}
	}
	return -1
}

// routeLeak fires when an announcement's origin AS differs from every
// origin the prefix's window has seen — the origin-shift signature a
// leak or hijack leaves in the update stream (§5.2 crossed with §7.3's
// IRR-circumvented origination). The window keeps the alert one-shot:
// once the foreign origin is windowed, repeats stay silent until it
// ages out.
type routeLeak struct{}

func (routeLeak) Name() string { return "route-leak" }
func (routeLeak) Describe() string {
	return "the origin AS shifted away from every origin in the window"
}

func (routeLeak) Observe(st *PrefixState, ev *Event, emit func(Alert)) {
	if ev.Withdraw || len(ev.ASPath) == 0 {
		return
	}
	origin := ev.Origin()
	var prev uint32
	seen := false
	for i := 0; i < st.Len(); i++ {
		prior := st.At(i)
		if prior.Withdraw || len(prior.ASPath) == 0 {
			continue
		}
		po := prior.Origin()
		if po == origin {
			return // origin already established in the window
		}
		prev, seen = po, true
	}
	if !seen {
		return // first sighting: nothing to contradict
	}
	emit(Alert{
		Severity: Critical,
		Origin:   origin,
		Message:  fmt.Sprintf("origin shifted to AS%d (window held AS%d) — route-leak/hijack signature", origin, prev),
	})
}
