package suite

import (
	"fmt"
)

// This file is the paired A/B harness: two suite reports produced from
// the identical cell list (same suite, same seeds) under two detector
// arms, compared cell-by-cell with a sign-test-style decision rule. A
// detector change proves itself by winning on false-positive volume
// without losing recall — the way the PR-4 dictionary detectors
// justified replacing the value-pattern squat rule, turned into a gate.

// ABOptions tune the decision rule.
type ABOptions struct {
	// RecallTolerance is the largest per-cell recall drop (old - new)
	// the rule forgives. Default 0: any recall loss rejects.
	RecallTolerance float64 `json:"recall_tolerance"`
	// PrecisionTolerance is the same for precision.
	PrecisionTolerance float64 `json:"precision_tolerance"`
	// NoiseTolerance is the per-cell noise-alert increase (new - old)
	// tolerated before the cell counts as a loss. Default 0.
	NoiseTolerance int `json:"noise_tolerance"`
}

// WinLossTie is the sign statistic for one metric over all pairs.
type WinLossTie struct {
	Wins    int     `json:"wins"`
	Losses  int     `json:"losses"`
	Ties    int     `json:"ties"`
	OldMean float64 `json:"old_mean"`
	NewMean float64 `json:"new_mean"`
}

func (w *WinLossTie) add(old, new float64, higherBetter bool, n int) {
	w.OldMean += old / float64(n)
	w.NewMean += new / float64(n)
	d := new - old
	if !higherBetter {
		d = -d
	}
	switch {
	case d > 0:
		w.Wins++
	case d < 0:
		w.Losses++
	default:
		w.Ties++
	}
}

// PairDelta records one regressing cell.
type PairDelta struct {
	Cell   string  `json:"cell"`
	Metric string  `json:"metric"`
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
}

// ABReport is the paired comparison outcome.
type ABReport struct {
	Suite  string `json:"suite"`
	OldArm string `json:"old_arm"`
	NewArm string `json:"new_arm"`
	Pairs  int    `json:"pairs"`
	// Precision and Recall count higher-is-better wins for the new
	// arm; Noise counts lower-is-better wins (fewer unrequired
	// alerts).
	Precision WinLossTie `json:"precision"`
	Recall    WinLossTie `json:"recall"`
	Noise     WinLossTie `json:"noise_alerts"`
	// Regressions are the cells that individually breach a tolerance.
	Regressions []PairDelta `json:"regressions,omitempty"`
	// Reasons explain the verdict, one line per applied rule.
	Reasons []string `json:"reasons"`
	Accept  bool     `json:"accept"`
}

// Compare applies the paired decision rule to two reports over the
// identical cell list. The rule, in order:
//
//  1. Pairing must be exact — same suite shape, every cell key present
//     on both sides, no errored cells. Anything else is a harness
//     error, not a verdict.
//  2. No per-cell recall loss beyond RecallTolerance, and no per-cell
//     precision loss beyond PrecisionTolerance. Detection quality is a
//     floor, not a trade.
//  3. On noise volume the new arm must not lose the sign test: strictly
//     more cells with more unrequired alerts than cells with fewer
//     rejects.
//
// A new arm that clears 2 and 3 is accepted; improvements do not have
// to be universal, only unregressed and net-positive.
func Compare(old, new *Report, opt ABOptions) (*ABReport, error) {
	if old == nil || new == nil {
		return nil, fmt.Errorf("suite: Compare needs two reports")
	}
	if old.Suite != new.Suite {
		return nil, fmt.Errorf("suite: reports from different suites (%q vs %q)", old.Suite, new.Suite)
	}
	if len(old.Cells) != len(new.Cells) {
		return nil, fmt.Errorf("suite: cell count mismatch (%d vs %d) — arms must run the identical cell list",
			len(old.Cells), len(new.Cells))
	}
	oldBy := map[string]*CellResult{}
	for i := range old.Cells {
		oldBy[old.Cells[i].Key] = &old.Cells[i]
	}
	ab := &ABReport{Suite: old.Suite, OldArm: old.Arm, NewArm: new.Arm, Pairs: len(new.Cells)}
	n := len(new.Cells)
	for i := range new.Cells {
		nc := &new.Cells[i]
		oc, ok := oldBy[nc.Key]
		if !ok {
			return nil, fmt.Errorf("suite: cell %s missing from old report — arms must run the identical cell list", nc.Key)
		}
		if oc.Err != "" || nc.Err != "" {
			return nil, fmt.Errorf("suite: cell %s errored (old=%q new=%q); fix the run before comparing", nc.Key, oc.Err, nc.Err)
		}
		ab.Recall.add(oc.Recall, nc.Recall, true, n)
		ab.Precision.add(oc.Precision, nc.Precision, true, n)
		ab.Noise.add(float64(oc.NoiseAlerts), float64(nc.NoiseAlerts), false, n)
		if oc.Recall-nc.Recall > opt.RecallTolerance {
			ab.Regressions = append(ab.Regressions, PairDelta{Cell: nc.Key, Metric: "recall", Old: oc.Recall, New: nc.Recall})
		}
		if oc.Precision-nc.Precision > opt.PrecisionTolerance {
			ab.Regressions = append(ab.Regressions, PairDelta{Cell: nc.Key, Metric: "precision", Old: oc.Precision, New: nc.Precision})
		}
		if nc.NoiseAlerts-oc.NoiseAlerts > opt.NoiseTolerance {
			ab.Regressions = append(ab.Regressions, PairDelta{Cell: nc.Key, Metric: "noise_alerts",
				Old: float64(oc.NoiseAlerts), New: float64(nc.NoiseAlerts)})
		}
	}
	qualityRegressed := false
	noiseRegressions := 0
	for _, r := range ab.Regressions {
		if r.Metric == "noise_alerts" {
			noiseRegressions++
		} else {
			qualityRegressed = true
		}
	}
	ab.Accept = true
	if qualityRegressed {
		ab.Accept = false
		ab.Reasons = append(ab.Reasons, "reject: per-cell precision/recall regressions (detection quality is a floor)")
	} else {
		ab.Reasons = append(ab.Reasons, "quality floor held: no per-cell precision/recall loss beyond tolerance")
	}
	if ab.Noise.Losses > ab.Noise.Wins {
		ab.Accept = false
		ab.Reasons = append(ab.Reasons, fmt.Sprintf(
			"reject: noise sign test lost (%d cells noisier vs %d quieter)", ab.Noise.Losses, ab.Noise.Wins))
	} else {
		ab.Reasons = append(ab.Reasons, fmt.Sprintf(
			"noise sign test held: %d quieter / %d noisier / %d tied cells", ab.Noise.Wins, ab.Noise.Losses, ab.Noise.Ties))
	}
	if noiseRegressions > 0 && ab.Accept {
		ab.Reasons = append(ab.Reasons, fmt.Sprintf(
			"note: %d cell(s) above noise tolerance but sign test net-positive", noiseRegressions))
	}
	return ab, nil
}
