package suite

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"time"

	"bgpworms/internal/obs"
)

// Provenance records where a suite report came from: toolchain, commit,
// the exact suite (path plus content hash), the grid that ran, and how
// long it took. It lives in provenance.json next to suite_report.json —
// deliberately a separate file, so the report itself stays byte-stable
// across reruns and only the provenance carries wall-clock state.
type Provenance struct {
	Tool      string `json:"tool"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	GitSHA    string `json:"git_sha"`
	Suite     string `json:"suite"`
	SuitePath string `json:"suite_path,omitempty"`
	// SuiteSHA256 hashes the suite file bytes, pinning exactly which
	// declaration produced the report.
	SuiteSHA256 string   `json:"suite_sha256,omitempty"`
	Arm         string   `json:"arm"`
	Scenarios   []string `json:"scenarios"`
	Scales      []string `json:"scales"`
	Engines     []string `json:"engines"`
	Seeds       []int64  `json:"seeds"`
	Cells       int      `json:"cells"`
	Workers     int      `json:"workers"`
	WallMS      int64    `json:"wall_ms"`
	// SnapshotBuilds/SnapshotForks record warm-world reuse: how many
	// frozen worlds the run built and how many cell executions forked
	// them instead of rebuilding.
	SnapshotBuilds int  `json:"snapshot_builds"`
	SnapshotForks  int  `json:"snapshot_forks"`
	Pass           bool `json:"pass"`
	// Spans is the run's per-cell timing breakdown (Options.Trace):
	// wall-clock state, which is exactly what provenance exists to
	// carry so the report itself can stay byte-stable.
	Spans []obs.SpanRecord `json:"spans,omitempty"`
}

// NewProvenance assembles the record for one completed run. suiteData
// may be nil when the suite was built in memory.
func NewProvenance(s *Suite, path string, suiteData []byte, rep *Report, workers int, wall time.Duration) Provenance {
	build := obs.BuildInfo()
	p := Provenance{
		Tool:           "suiterun",
		GoVersion:      build.GoVersion,
		GOOS:           build.GOOS,
		GOARCH:         build.GOARCH,
		GitSHA:         build.GitSHA,
		Suite:          s.Name,
		SuitePath:      path,
		Arm:            rep.Arm,
		Scenarios:      s.Scenarios(),
		Cells:          rep.Ran,
		Workers:        workers,
		WallMS:         wall.Milliseconds(),
		SnapshotBuilds: rep.SnapshotBuilds,
		SnapshotForks:  rep.SnapshotForks,
		Pass:           rep.Pass,
	}
	if len(suiteData) > 0 {
		sum := sha256.Sum256(suiteData)
		p.SuiteSHA256 = hex.EncodeToString(sum[:])
	}
	scales, engines, seeds := map[string]bool{}, map[string]bool{}, map[int64]bool{}
	for _, spec := range s.cells() {
		scales[spec.scale] = true
		engines[spec.engine] = true
		seeds[spec.seed] = true
	}
	for sc := range scales {
		p.Scales = append(p.Scales, sc)
	}
	sort.Strings(p.Scales)
	for e := range engines {
		p.Engines = append(p.Engines, e)
	}
	sort.Strings(p.Engines)
	for seed := range seeds {
		p.Seeds = append(p.Seeds, seed)
	}
	sort.Slice(p.Seeds, func(i, j int) bool { return p.Seeds[i] < p.Seeds[j] })
	return p
}
