package suite

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from the current run")

// tinySuite is the pinned suite the golden and determinism tests run:
// small enough to execute in well under a second, wide enough to cover
// grouping, both gate kinds, and the confusion matrix.
func tinySuite(t *testing.T) *Suite {
	t.Helper()
	s, err := Load("testdata/golden/tiny_suite.json")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return s
}

func marshalReport(t *testing.T, rep *Report) []byte {
	t.Helper()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return append(data, '\n')
}

// TestGoldenReport pins the exact bytes of suite_report.json for the
// tiny suite. Run `go test ./internal/suite -run Golden -update` after
// an intentional format or metric change.
func TestGoldenReport(t *testing.T) {
	rep, err := Run(tinySuite(t), Options{Workers: 2})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	got := marshalReport(t, rep)
	golden := filepath.Join("testdata", "golden", "suite_report.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("suite_report.json drifted from golden file %s\n"+
			"re-run with -update if the change is intentional\ngot:\n%s", golden, got)
	}
	if !rep.Pass {
		t.Fatalf("tiny suite must pass its own gates: %v", rep.Failures)
	}
}

// TestRunDeterministic asserts the report is byte-identical across
// harness worker counts — the property that makes suite_report.json
// diffable and the A/B pairing sound.
func TestRunDeterministic(t *testing.T) {
	s := tinySuite(t)
	var first []byte
	for _, workers := range []int{1, 4, 16} {
		rep, err := Run(s, Options{Workers: workers})
		if err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		got := marshalReport(t, rep)
		if first == nil {
			first = got
			continue
		}
		if !bytes.Equal(first, got) {
			t.Fatalf("report bytes differ between workers=1 and workers=%d", workers)
		}
	}
}

func TestRunGateBreaches(t *testing.T) {
	zero := 0
	one := 1.0
	s := &Suite{
		Name: "breaches",
		Defaults: Defaults{
			Scales:  []string{"tiny"},
			Seeds:   []int64{1, 2, 3},
			Engines: []string{"delta"},
		},
		Entries: []Entry{{
			Scenario: "rtbh",
			Detectors: map[string]DetectorGate{
				"route-leak":      {MustFire: true},  // never fires on rtbh
				"blackhole-onset": {MaxFired: &zero}, // always fires on rtbh
			},
		}},
	}
	s.Entries[0].MaxNoiseAlerts = &zero // noise is never zero here
	s.Entries[0].MinRecall = &one
	rep, err := Run(s, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Pass {
		t.Fatal("suite with impossible gates passed")
	}
	if rep.Failed != 3 {
		t.Fatalf("Failed = %d, want every cell", rep.Failed)
	}
	wants := []string{"route-leak never fired", "blackhole-onset fired", "noise alerts"}
	for _, want := range wants {
		found := false
		for _, f := range rep.Failures {
			if bytes.Contains([]byte(f), []byte(want)) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no failure mentions %q in %v", want, rep.Failures)
		}
	}
}

// TestRunExpectOverride flips the Table-3 expectation and checks the
// outcome gate follows the override rather than the registry.
func TestRunExpectOverride(t *testing.T) {
	no := false
	s := &Suite{
		Name: "override",
		Defaults: Defaults{
			Scales:  []string{"tiny"},
			Seeds:   []int64{1, 2, 3},
			Engines: []string{"delta"},
		},
		Entries: []Entry{{Scenario: "rtbh", Expect: &no}},
	}
	rep, err := Run(s, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Pass {
		t.Fatal("expect=false on a succeeding scenario must breach the outcome gate")
	}
	if rep.AsExpected != 0 {
		t.Fatalf("AsExpected = %d, want 0", rep.AsExpected)
	}
}

func TestRunRejectsInvalidSuite(t *testing.T) {
	if _, err := Run(&Suite{Name: "empty"}, Options{}); err == nil {
		t.Fatal("Run accepted an invalid suite")
	}
}

func TestAggregate(t *testing.T) {
	a := aggregate([]float64{1, 2, 3})
	if a.Mean != 2 || a.Min != 1 || a.Max != 3 {
		t.Fatalf("aggregate = %+v", a)
	}
	if want := 2.0 / 3.0; a.Variance != want {
		t.Fatalf("variance = %v, want %v", a.Variance, want)
	}
}
