package suite

import (
	"strings"
	"testing"
)

// abSuite is the paired-comparison grid: the detector-relevant
// scenarios with known truth, tiny preset for speed, identical seeds
// on both arms (the pairing invariant).
func abSuite() *Suite {
	return &Suite{
		Name: "ab",
		Defaults: Defaults{
			Scales:  []string{"tiny"},
			Seeds:   []int64{1, 2, 3},
			Engines: []string{"delta"},
		},
		Entries: []Entry{
			{Scenario: "rtbh"},
			{Scenario: "blackhole-squatting"},
			{Scenario: "blackhole-sweep"},
			{Scenario: "dictionary-poisoning"},
		},
	}
}

// TestCompareClassicVsDict reproduces the PR-4 result as a gate: the
// dictionary-backed squat detector replaces the value-pattern rule,
// wins the noise sign test (fewer unrequired alerts), and loses no
// recall — Truth.AnyOf treats either squat detector as satisfying the
// squat-class requirement, so the swap is judged on noise alone.
func TestCompareClassicVsDict(t *testing.T) {
	s := abSuite()
	classic, err := Run(s, Options{Arm: &Arm{
		Name:      "classic",
		Detectors: []string{"blackhole-onset", "community-squat", "prop-distance", "route-leak"},
	}})
	if err != nil {
		t.Fatalf("classic arm: %v", err)
	}
	dict, err := Run(s, Options{Arm: &Arm{
		Name:      "dict",
		Detectors: []string{"blackhole-onset", "dict-squat", "prop-distance", "route-leak"},
		Dict:      true,
	}})
	if err != nil {
		t.Fatalf("dict arm: %v", err)
	}
	ab, err := Compare(classic, dict, ABOptions{})
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if !ab.Accept {
		t.Fatalf("dict arm rejected: %v", ab.Reasons)
	}
	if ab.Noise.Wins <= ab.Noise.Losses {
		t.Fatalf("dict arm must win the noise sign test: wins=%d losses=%d ties=%d",
			ab.Noise.Wins, ab.Noise.Losses, ab.Noise.Ties)
	}
	for _, r := range ab.Regressions {
		if r.Metric == "recall" {
			t.Fatalf("recall regression at %s: %v -> %v", r.Cell, r.Old, r.New)
		}
	}
	if ab.Pairs != len(classic.Cells) {
		t.Fatalf("Pairs = %d, want %d", ab.Pairs, len(classic.Cells))
	}
}

func TestCompareRejectsMismatchedInputs(t *testing.T) {
	a := &Report{Suite: "x", Cells: []CellResult{{Key: "k"}}}
	b := &Report{Suite: "y", Cells: []CellResult{{Key: "k"}}}
	if _, err := Compare(a, b, ABOptions{}); err == nil || !strings.Contains(err.Error(), "different suites") {
		t.Errorf("different suites: err = %v", err)
	}
	if _, err := Compare(nil, a, ABOptions{}); err == nil {
		t.Error("nil report accepted")
	}
	c := &Report{Suite: "x", Cells: []CellResult{{Key: "k"}, {Key: "k2"}}}
	if _, err := Compare(a, c, ABOptions{}); err == nil || !strings.Contains(err.Error(), "cell count") {
		t.Errorf("cell count: err = %v", err)
	}
	d := &Report{Suite: "x", Cells: []CellResult{{Key: "other"}}}
	if _, err := Compare(a, d, ABOptions{}); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("missing key: err = %v", err)
	}
	e := &Report{Suite: "x", Cells: []CellResult{{Key: "k", Err: "boom"}}}
	if _, err := Compare(a, e, ABOptions{}); err == nil || !strings.Contains(err.Error(), "errored") {
		t.Errorf("errored cell: err = %v", err)
	}
}

// TestCompareDecisionRule exercises the verdict logic on synthetic
// reports: quality loss rejects, noise sign-test loss rejects, and
// tolerances forgive per-cell wobble.
func TestCompareDecisionRule(t *testing.T) {
	mk := func(cells ...CellResult) *Report {
		return &Report{Suite: "s", Cells: cells}
	}
	cell := func(key string, recall, precision float64, noise int) CellResult {
		return CellResult{Key: key, Recall: recall, Precision: precision, NoiseAlerts: noise}
	}

	t.Run("recall loss rejects", func(t *testing.T) {
		old := mk(cell("a", 1, 1, 5))
		new := mk(cell("a", 0.9, 1, 1))
		ab, err := Compare(old, new, ABOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if ab.Accept {
			t.Fatal("recall loss accepted")
		}
	})
	t.Run("recall tolerance forgives", func(t *testing.T) {
		old := mk(cell("a", 1, 1, 5))
		new := mk(cell("a", 0.95, 1, 1))
		ab, err := Compare(old, new, ABOptions{RecallTolerance: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		if !ab.Accept {
			t.Fatalf("tolerated recall dip rejected: %v", ab.Reasons)
		}
	})
	t.Run("noise sign test rejects", func(t *testing.T) {
		old := mk(cell("a", 1, 1, 5), cell("b", 1, 1, 5), cell("c", 1, 1, 5))
		new := mk(cell("a", 1, 1, 9), cell("b", 1, 1, 9), cell("c", 1, 1, 1))
		ab, err := Compare(old, new, ABOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if ab.Accept {
			t.Fatal("net-noisier arm accepted")
		}
	})
	t.Run("net quieter accepts", func(t *testing.T) {
		old := mk(cell("a", 1, 1, 5), cell("b", 1, 1, 5), cell("c", 1, 1, 5))
		new := mk(cell("a", 1, 1, 1), cell("b", 1, 1, 1), cell("c", 1, 1, 9))
		ab, err := Compare(old, new, ABOptions{NoiseTolerance: 10})
		if err != nil {
			t.Fatal(err)
		}
		if !ab.Accept {
			t.Fatalf("net-quieter arm rejected: %v", ab.Reasons)
		}
		if ab.Noise.Wins != 2 || ab.Noise.Losses != 1 {
			t.Fatalf("sign counts = %+v", ab.Noise)
		}
	})
}
