package suite

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// corpus returns the checked-in seed inputs under testdata/fuzz: one
// valid suite plus the malformed shapes a gate must reject loudly.
func corpus(t testing.TB) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join("testdata", "fuzz"))
	if err != nil {
		t.Fatalf("read corpus: %v", err)
	}
	out := map[string][]byte{}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join("testdata", "fuzz", e.Name()))
		if err != nil {
			t.Fatalf("read %s: %v", e.Name(), err)
		}
		out[e.Name()] = data
	}
	if len(out) == 0 {
		t.Fatal("empty fuzz corpus")
	}
	return out
}

// TestCorpusOutcomes pins each corpus file's Parse outcome: the valid
// seed parses, every malformed one errors (and, per the fuzz target,
// never panics). This keeps the corpus honest even when fuzzing is
// not run.
func TestCorpusOutcomes(t *testing.T) {
	for name, data := range corpus(t) {
		_, err := Parse(data)
		if strings.HasPrefix(name, "valid") {
			if err != nil {
				t.Errorf("%s: Parse = %v, want success", name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: Parse accepted a malformed suite", name)
		}
	}
}

// FuzzSuiteFile hammers Parse with mutated suite files. The contract
// under fuzz: never panic, and anything that parses must survive grid
// expansion and re-validation — a malformed suite must never reach the
// gate looking like a passing one.
func FuzzSuiteFile(f *testing.F) {
	for _, data := range corpus(f) {
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("Parse accepted a suite Validate rejects: %v", err)
		}
		if got := len(s.cells()); got == 0 {
			t.Fatal("valid suite expanded to zero cells")
		}
		if got := s.Scenarios(); len(got) == 0 {
			t.Fatal("valid suite covers zero scenarios")
		}
	})
}
