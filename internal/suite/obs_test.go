package suite

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"bgpworms/internal/obs"
)

// TestRunTraceAndProgress pins the observability contract for suite
// runs: the trace holds one root span per cell with an eval child, the
// progress callback fires once per cell, and the report bytes are
// identical to an uninstrumented run (instrumentation can never leak
// into suite_report.json).
func TestRunTraceAndProgress(t *testing.T) {
	s := tinySuite(t)
	bare, err := Run(s, Options{Workers: 2})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	tr := obs.NewTrace("suite-test")
	var mu sync.Mutex
	var calls int
	traced, err := Run(s, Options{
		Workers: 2,
		Trace:   tr,
		Progress: func(done, total int, c *CellResult, d time.Duration) {
			mu.Lock()
			defer mu.Unlock()
			calls++
			if done < 1 || done > total || c == nil || c.Key == "" || d < 0 {
				t.Errorf("progress(done=%d, total=%d, c=%+v, d=%v)", done, total, c, d)
			}
		},
	})
	if err != nil {
		t.Fatalf("Run traced: %v", err)
	}
	if !bytes.Equal(marshalReport(t, bare), marshalReport(t, traced)) {
		t.Fatal("trace/progress hooks changed the report bytes")
	}
	if calls != traced.Ran {
		t.Fatalf("progress calls=%d, cells=%d", calls, traced.Ran)
	}

	recs := tr.Records()
	roots, evals := 0, 0
	rootDur := map[int]int64{}
	var childSum int64
	for _, r := range recs {
		switch {
		case r.Parent == 0:
			if !strings.HasPrefix(r.Name, "cell ") {
				t.Fatalf("unexpected root span %q", r.Name)
			}
			roots++
			rootDur[r.ID] = r.DurUS
		case r.Name == "eval":
			evals++
			fallthrough
		default:
			if _, ok := rootDur[r.Parent]; !ok {
				// Records are in start order, so parents precede children.
				t.Fatalf("span %q parented to unknown id %d", r.Name, r.Parent)
			}
			childSum += r.DurUS
		}
	}
	if roots != traced.Ran {
		t.Fatalf("root spans=%d, cells=%d", roots, traced.Ran)
	}
	if evals != traced.Ran {
		t.Fatalf("eval spans=%d, cells=%d", evals, traced.Ran)
	}
	var rootSum int64
	for _, d := range rootDur {
		rootSum += d
	}
	if childSum > rootSum {
		t.Fatalf("child spans (%dus) exceed their roots (%dus)", childSum, rootSum)
	}
}
