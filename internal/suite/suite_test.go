package suite

import (
	"strings"
	"testing"

	"bgpworms/internal/scenario"
)

func validSuiteJSON() string {
	return `{
		"name": "t",
		"defaults": {"scales": ["tiny"], "seeds": [1, 2, 3], "engines": ["delta"]},
		"entries": [{"scenario": "rtbh", "min_precision": 0.9}]
	}`
}

func TestParseValid(t *testing.T) {
	s, err := Parse([]byte(validSuiteJSON()))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := len(s.cells()); got != 3 {
		t.Fatalf("cells = %d, want 3 (one per seed)", got)
	}
	if got := s.Scenarios(); len(got) != 1 || got[0] != "rtbh" {
		t.Fatalf("Scenarios = %v", got)
	}
}

func TestParseRejects(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string
	}{
		{"unknown field", `{"name": "t", "bogus": 1, "entries": [{"scenario": "rtbh"}]}`, "unknown field"},
		{"missing name", `{"entries": [{"scenario": "rtbh", "seeds": [1,2,3]}]}`, "missing name"},
		{"no entries", `{"name": "t", "entries": []}`, "no entries"},
		{"unknown scenario", `{"name": "t", "defaults": {"seeds": [1,2,3]}, "entries": [{"scenario": "nope"}]}`, "unknown scenario"},
		{"too few seeds", `{"name": "t", "entries": [{"scenario": "rtbh", "seeds": [1, 2]}]}`, "at least 3"},
		{"no seeds at all", `{"name": "t", "entries": [{"scenario": "rtbh"}]}`, "at least 3"},
		{"duplicate seeds", `{"name": "t", "entries": [{"scenario": "rtbh", "seeds": [1, 1, 2]}]}`, "duplicate seed"},
		{"bad scale", `{"name": "t", "defaults": {"seeds": [1,2,3]}, "entries": [{"scenario": "rtbh", "scales": ["galactic"]}]}`, "galactic"},
		{"bad engine", `{"name": "t", "defaults": {"seeds": [1,2,3]}, "entries": [{"scenario": "rtbh", "engines": ["warp"]}]}`, "warp"},
		{"bad default scale", `{"name": "t", "defaults": {"scales": ["galactic"], "seeds": [1,2,3]}, "entries": [{"scenario": "rtbh"}]}`, "galactic"},
		{"bad default engine", `{"name": "t", "defaults": {"engines": ["warp"], "seeds": [1,2,3]}, "entries": [{"scenario": "rtbh"}]}`, "warp"},
		{"precision above one", `{"name": "t", "entries": [{"scenario": "rtbh", "seeds": [1,2,3], "min_precision": 1.5}]}`, "min_precision"},
		{"negative variance", `{"name": "t", "entries": [{"scenario": "rtbh", "seeds": [1,2,3], "max_variance": -0.1}]}`, "max_variance"},
		{"negative noise cap", `{"name": "t", "entries": [{"scenario": "rtbh", "seeds": [1,2,3], "max_noise_alerts": -1}]}`, "max_noise_alerts"},
		{"unknown detector", `{"name": "t", "entries": [{"scenario": "rtbh", "seeds": [1,2,3], "detectors": {"nope": {"must_fire": true}}}]}`, "unknown detector"},
		{"contradictory gate", `{"name": "t", "entries": [{"scenario": "rtbh", "seeds": [1,2,3], "detectors": {"blackhole-onset": {"must_fire": true, "max_fired": 0}}}]}`, "never pass"},
		{"dict gate range", `{"name": "t", "entries": [{"scenario": "rtbh", "seeds": [1,2,3], "dict": {"min_precision": 2}}]}`, "outside [0,1]"},
		{"unknown param", `{"name": "t", "entries": [{"scenario": "rtbh", "seeds": [1,2,3], "params": {"warp_factor": "9"}}]}`, "warp_factor"},
		{"dict pair without dict", `{"name": "t", "arm": {"detectors": ["dict-squat"]}, "entries": [{"scenario": "rtbh", "seeds": [1,2,3]}]}`, `"dict": true`},
		{"unknown arm detector", `{"name": "t", "arm": {"detectors": ["nope"]}, "entries": [{"scenario": "rtbh", "seeds": [1,2,3]}]}`, "unknown detector"},
		{"trailing data", validSuiteJSON() + `{"again": true}`, "trailing data"},
		{"not json", `release gates ahoy`, "suite:"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.json))
			if err == nil {
				t.Fatalf("Parse accepted %s", tc.json)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestCheckedInSuitesLoad keeps the shipped suite files parseable —
// the CI gate runs them, so a malformed edit must fail here first.
func TestCheckedInSuitesLoad(t *testing.T) {
	for _, path := range []string{"../../suites/release.json", "../../suites/detectors.json"} {
		if _, err := Load(path); err != nil {
			t.Errorf("Load(%s): %v", path, err)
		}
	}
}

// TestReleaseSuiteCoversRegistry is the coverage invariant: every
// registered attack scenario must appear in suites/release.json, so a
// new scenario cannot land without a release gate. The failure lists
// exactly the missing names.
func TestReleaseSuiteCoversRegistry(t *testing.T) {
	s, err := Load("../../suites/release.json")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	covered := map[string]bool{}
	for _, name := range s.Scenarios() {
		covered[name] = true
	}
	var missing []string
	for _, name := range scenario.Names() {
		if !covered[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		t.Fatalf("scenarios registered but absent from suites/release.json: %v\n"+
			"add an entry (with pinned seeds and thresholds) for each", missing)
	}
}

func TestArmLabel(t *testing.T) {
	cases := []struct {
		arm  *Arm
		want string
	}{
		{nil, "default"},
		{&Arm{}, "custom"},
		{&Arm{Dict: true}, "dict"},
		{&Arm{Name: "pr-123", Dict: true}, "pr-123"},
	}
	for _, tc := range cases {
		if got := tc.arm.label(); got != tc.want {
			t.Errorf("label(%+v) = %q, want %q", tc.arm, got, tc.want)
		}
	}
}

func TestMaxVarianceResolution(t *testing.T) {
	v := 0.5
	s := &Suite{}
	if got := s.maxVariance(&Entry{}); got != DefaultMaxVariance {
		t.Errorf("default bound = %v", got)
	}
	s.Defaults.MaxVariance = &v
	if got := s.maxVariance(&Entry{}); got != 0.5 {
		t.Errorf("suite bound = %v", got)
	}
	w := 0.25
	e := &Entry{Thresholds: scenario.Thresholds{MaxVariance: &w}}
	if got := s.maxVariance(e); got != 0.25 {
		t.Errorf("entry bound = %v", got)
	}
}
