package suite

import (
	"fmt"
	"sort"
	"strings"

	"bgpworms/internal/stats"
)

// Render renders the report as group and confusion-matrix tables plus
// the failure list — the human form of suite_report.json.
func Render(r *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "suite %s · arm %s · detectors: %s\n\n",
		r.Suite, r.Arm, strings.Join(r.Detectors, ", "))

	t := stats.NewTable("Scenario", "Scale", "Engine", "Seeds", "P mean", "P min", "R mean", "R min", "Var(P)", "Noise", "Gate")
	for i := range r.Groups {
		g := &r.Groups[i]
		gate := "pass"
		if len(g.Failures) > 0 {
			gate = "FAIL"
		}
		if hasError(r, g) {
			gate = "ERROR"
		}
		t.Row(g.Scenario, g.Scale, g.Engine, len(g.Seeds),
			fmt.Sprintf("%.3f", g.Precision.Mean), fmt.Sprintf("%.3f", g.Precision.Min),
			fmt.Sprintf("%.3f", g.Recall.Mean), fmt.Sprintf("%.3f", g.Recall.Min),
			fmt.Sprintf("%.5f", g.Precision.Variance),
			fmt.Sprintf("%.1f", g.Noise.Mean), gate)
	}
	b.WriteString(t.String())

	b.WriteString("\nDetector × scenario alert counts (confusion matrix):\n")
	b.WriteString(RenderMatrix(r.Matrix))

	if len(r.Failures) > 0 {
		b.WriteString("\nGate breaches:\n")
		for _, f := range r.Failures {
			fmt.Fprintf(&b, "  - %s\n", f)
		}
	}
	fmt.Fprintf(&b, "\ncells=%d passed=%d failed=%d errored=%d as-expected=%d gate=%s\n",
		r.Ran, r.Passed, r.Failed, r.Errored, r.AsExpected, passStr(r.Pass))
	return b.String()
}

func hasError(r *Report, g *GroupResult) bool {
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Err != "" && c.Scenario == g.Scenario && c.Scale == g.Scale &&
			c.Engine == g.Engine && c.CommunitySet == g.CommunitySet {
			return true
		}
	}
	return false
}

func passStr(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}

// RenderMatrix renders the detector-vs-scenario matrix, scenarios as
// rows and detectors as columns, both sorted.
func RenderMatrix(m map[string]map[string]int) string {
	scenarios := make([]string, 0, len(m))
	detSet := map[string]bool{}
	for sc, row := range m {
		scenarios = append(scenarios, sc)
		for det := range row {
			detSet[det] = true
		}
	}
	sort.Strings(scenarios)
	dets := make([]string, 0, len(detSet))
	for det := range detSet {
		dets = append(dets, det)
	}
	sort.Strings(dets)

	header := append([]string{"Scenario"}, dets...)
	t := stats.NewTable(header...)
	for _, sc := range scenarios {
		row := make([]any, 0, len(dets)+1)
		row = append(row, sc)
		for _, det := range dets {
			row = append(row, m[sc][det])
		}
		t.Row(row...)
	}
	return t.String()
}

// RenderAB renders the paired comparison verdict.
func RenderAB(ab *ABReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "suite %s · A/B: %s (old) vs %s (new) · %d paired cells\n\n",
		ab.Suite, ab.OldArm, ab.NewArm, ab.Pairs)
	t := stats.NewTable("Metric", "Wins", "Losses", "Ties", "Old mean", "New mean")
	t.Row("recall", ab.Recall.Wins, ab.Recall.Losses, ab.Recall.Ties,
		fmt.Sprintf("%.4f", ab.Recall.OldMean), fmt.Sprintf("%.4f", ab.Recall.NewMean))
	t.Row("precision", ab.Precision.Wins, ab.Precision.Losses, ab.Precision.Ties,
		fmt.Sprintf("%.4f", ab.Precision.OldMean), fmt.Sprintf("%.4f", ab.Precision.NewMean))
	t.Row("noise alerts", ab.Noise.Wins, ab.Noise.Losses, ab.Noise.Ties,
		fmt.Sprintf("%.1f", ab.Noise.OldMean), fmt.Sprintf("%.1f", ab.Noise.NewMean))
	b.WriteString(t.String())
	if len(ab.Regressions) > 0 {
		b.WriteString("\nPer-cell regressions beyond tolerance:\n")
		for _, r := range ab.Regressions {
			fmt.Fprintf(&b, "  - %s: %s %.4f -> %.4f\n", r.Cell, r.Metric, r.Old, r.New)
		}
	}
	b.WriteString("\n")
	for _, reason := range ab.Reasons {
		fmt.Fprintf(&b, "%s\n", reason)
	}
	fmt.Fprintf(&b, "verdict: %s\n", map[bool]string{true: "ACCEPT", false: "REJECT"}[ab.Accept])
	return b.String()
}
