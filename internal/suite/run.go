package suite

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bgpworms/internal/attack"
	"bgpworms/internal/conc"
	"bgpworms/internal/gen"
	"bgpworms/internal/obs"
	"bgpworms/internal/scenario"
	"bgpworms/internal/semantics"
	"bgpworms/internal/watch"
)

// Options tune one suite execution.
type Options struct {
	// Workers is the harness parallelism (0 or negative: one per CPU).
	// Reports are bit-identical for any setting.
	Workers int
	// Arm overrides the suite's declared detector configuration.
	Arm *Arm
	// Trace, when set, records one root span per cell with
	// build/detectors/eval/dict children — the per-cell wall-time
	// breakdown suiterun writes into provenance.json. Purely
	// observational: the report bytes are identical with or without it.
	Trace *obs.Trace
	// Progress, when set, is called after each completed cell with the
	// done count, cell total, the finished cell, and its wall time.
	// Calls come concurrently from harness goroutines in completion
	// order — serialize in the callback.
	Progress func(done, total int, c *CellResult, d time.Duration)
}

// DictMetrics is the gateable slice of a dictionary-inference score.
type DictMetrics = semantics.ScoreSummary

// CellResult is one executed grid point with its measured quality and
// gate outcome.
type CellResult struct {
	Key          string `json:"key"`
	Scenario     string `json:"scenario"`
	Scale        string `json:"scale"`
	Seed         int64  `json:"seed"`
	Engine       string `json:"engine"`
	CommunitySet string `json:"community_set"`
	// Success / Expected / AsExpected grade the scenario's own Table-3
	// outcome against its declaration (or the entry's override).
	Success    bool `json:"success"`
	Expected   bool `json:"expected"`
	AsExpected bool `json:"as_expected"`
	// Precision/Recall and the counts mirror watch.Metrics for the
	// evaluated replay.
	Precision   float64        `json:"precision"`
	Recall      float64        `json:"recall"`
	TP          int            `json:"tp"`
	FP          int            `json:"fp"`
	FN          int            `json:"fn"`
	Alerts      int            `json:"alerts"`
	NoiseAlerts int            `json:"noise_alerts"`
	Fired       map[string]int `json:"fired,omitempty"`
	// Dict carries inference quality when the entry gates it.
	Dict *DictMetrics `json:"dict,omitempty"`
	// Failures are this cell's gate breaches; empty means the cell
	// passed.
	Failures []string `json:"failures,omitempty"`
	Err      string   `json:"error,omitempty"`
}

// Aggregate is a cross-seed summary of one metric.
type Aggregate struct {
	Mean     float64 `json:"mean"`
	Min      float64 `json:"min"`
	Max      float64 `json:"max"`
	Variance float64 `json:"variance"`
}

func aggregate(xs []float64) Aggregate {
	a := Aggregate{Min: xs[0], Max: xs[0]}
	for _, x := range xs {
		a.Mean += x
		if x < a.Min {
			a.Min = x
		}
		if x > a.Max {
			a.Max = x
		}
	}
	a.Mean /= float64(len(xs))
	for _, x := range xs {
		d := x - a.Mean
		a.Variance += d * d
	}
	a.Variance /= float64(len(xs))
	return a
}

// GroupResult aggregates one entry×scale×engine group across its
// seeds and applies the variance gate.
type GroupResult struct {
	Key          string    `json:"key"`
	Scenario     string    `json:"scenario"`
	Scale        string    `json:"scale"`
	Engine       string    `json:"engine"`
	CommunitySet string    `json:"community_set"`
	Seeds        []int64   `json:"seeds"`
	Precision    Aggregate `json:"precision"`
	Recall       Aggregate `json:"recall"`
	Noise        Aggregate `json:"noise_alerts"`
	// MaxVariance is the bound the group was gated against.
	MaxVariance float64  `json:"max_variance"`
	Failures    []string `json:"failures,omitempty"`
}

// Report is the machine-readable suite outcome (suite_report.json). It
// contains no wall-clock state: identical suite, seeds, and arm yield
// byte-identical reports (provenance lives in its own file).
type Report struct {
	Suite string `json:"suite"`
	Arm   string `json:"arm"`
	// Detectors are the resolved arm detector names, sorted.
	Detectors  []string      `json:"detectors"`
	Cells      []CellResult  `json:"cells"`
	Groups     []GroupResult `json:"groups"`
	Ran        int           `json:"ran"`
	Passed     int           `json:"passed"`
	Failed     int           `json:"failed"`
	Errored    int           `json:"errored"`
	AsExpected int           `json:"as_expected"`
	// Matrix is the detector-vs-scenario confusion matrix: total alert
	// counts per (scenario, detector) over every cell.
	Matrix map[string]map[string]int `json:"matrix"`
	// Failures flattens every cell and group gate breach, in grid
	// order, each prefixed with the breaching key.
	Failures []string `json:"failures,omitempty"`
	Pass     bool     `json:"pass"`
	// SnapshotBuilds/SnapshotForks count warm-world reuse: how many
	// frozen worlds were built and how many cell runs forked them. They
	// are deterministic for a given suite but are recorded in
	// provenance.json, not here, so the report stays focused on quality.
	SnapshotBuilds int `json:"-"`
	SnapshotForks  int `json:"-"`
}

// trainer builds and caches clean-baseline dictionaries per
// (scale, seed): the cell's world rebuilt without the attack, observed
// by a semantics tap through construction plus a month of churn — the
// CommunityWatch-style training pass the dictionary-aware detectors
// assume. Training is serialized; cells needing the same dictionary
// share one build.
type trainer struct {
	mu    sync.Mutex
	cache map[string]*semantics.Snapshot
}

func (tr *trainer) snapshot(scale string, seed int64) (*semantics.Snapshot, error) {
	key := fmt.Sprintf("%s/%d", scale, seed)
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.cache == nil {
		tr.cache = map[string]*semantics.Snapshot{}
	}
	if snap, ok := tr.cache[key]; ok {
		return snap, nil
	}
	p, err := gen.Preset(scale)
	if err != nil {
		return nil, err
	}
	p.Seed = seed
	eng := semantics.NewEngine(semantics.Config{Workers: 1})
	defer eng.Close()
	p.Tap = eng.Tap()
	l, err := attack.NewLab(p, scenario.DefaultVPs)
	if err != nil {
		return nil, fmt.Errorf("train dictionary %s: %w", key, err)
	}
	if _, err := l.W.RunChurn(); err != nil {
		return nil, fmt.Errorf("train dictionary %s: %w", key, err)
	}
	snap := eng.Snapshot()
	tr.cache[key] = snap
	return snap, nil
}

// detectorsFor resolves the arm into a concrete detector list for one
// cell, training/fetching the cell's dictionary when the arm needs it.
func detectorsFor(arm *Arm, tr *trainer, scale string, seed int64) ([]watch.Detector, error) {
	var dict *semantics.Snapshot
	if arm != nil && arm.Dict {
		var err error
		if dict, err = tr.snapshot(scale, seed); err != nil {
			return nil, err
		}
	}
	if arm == nil || len(arm.Detectors) == 0 {
		dets := watch.Detectors()
		if dict != nil {
			dets = append(dets, watch.DictDetectors(dict)...)
		}
		return dets, nil
	}
	byName := map[string]watch.Detector{}
	if dict != nil {
		for _, d := range watch.DictDetectors(dict) {
			byName[d.Name()] = d
		}
	}
	var dets []watch.Detector
	for _, name := range arm.Detectors {
		if d, ok := byName[name]; ok {
			dets = append(dets, d)
			continue
		}
		d, ok := watch.LookupDetector(name)
		if !ok {
			return nil, fmt.Errorf("arm %s: unknown detector %q", arm.label(), name)
		}
		dets = append(dets, d)
	}
	return dets, nil
}

// Run executes every suite cell — the scenario replayed through the
// watch engine with the arm's detectors, plus a dictionary-inference
// pass where gated — then aggregates seed groups, applies every gate,
// and folds the confusion matrix. Cells land at their grid index and
// all folds run in grid order, so the report is bit-identical across
// worker counts.
func Run(s *Suite, opt Options) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	arm := opt.Arm
	if arm == nil {
		arm = s.Arm
	}
	if err := arm.validate(); err != nil {
		return nil, err
	}
	specs := s.cells()
	cells := make([]CellResult, len(specs))
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	tr := &trainer{}
	// One frozen world per (scale, seed, engine) group: every cell in
	// the group forks it instead of rebuilding. The scenario layer's
	// cache is shared so suite cells and sweep cells run the same code.
	warm := scenario.NewWarmCache()
	var done atomic.Int64
	conc.Do(len(specs), workers, func(i int) {
		start := time.Now()
		sp := opt.Trace.Start("cell " + specs[i].key())
		cells[i] = s.runCell(specs[i], arm, tr, warm, sp)
		sp.End()
		if opt.Progress != nil {
			opt.Progress(int(done.Add(1)), len(specs), &cells[i], time.Since(start))
		}
	})

	rep := &Report{Suite: s.Name, Arm: arm.label(), Cells: cells, Ran: len(cells)}
	rep.SnapshotBuilds, rep.SnapshotForks = warm.Stats()
	rep.Detectors = detectorNames(arm)
	rep.Matrix = map[string]map[string]int{}
	for i := range cells {
		c := &cells[i]
		switch {
		case c.Err != "":
			rep.Errored++
			rep.Failures = append(rep.Failures, fmt.Sprintf("%s: error: %s", c.Key, c.Err))
		case len(c.Failures) > 0:
			rep.Failed++
			for _, f := range c.Failures {
				rep.Failures = append(rep.Failures, fmt.Sprintf("%s: %s", c.Key, f))
			}
		default:
			rep.Passed++
		}
		if c.AsExpected {
			rep.AsExpected++
		}
		row := rep.Matrix[c.Scenario]
		if row == nil {
			row = map[string]int{}
			rep.Matrix[c.Scenario] = row
		}
		for det, n := range c.Fired {
			row[det] += n
		}
	}
	rep.Groups = s.groupCells(specs, cells)
	for i := range rep.Groups {
		for _, f := range rep.Groups[i].Failures {
			rep.Failures = append(rep.Failures, fmt.Sprintf("%s: %s", rep.Groups[i].Key, f))
		}
	}
	rep.Pass = len(rep.Failures) == 0
	return rep, nil
}

// detectorNames lists the arm's detector names (registry defaults
// expanded), sorted — the report's record of what was evaluated.
func detectorNames(arm *Arm) []string {
	var names []string
	if arm == nil || len(arm.Detectors) == 0 {
		names = watch.DetectorNames()
		if arm != nil && arm.Dict {
			names = append(names, watch.DictSquatName, watch.UnknownActionName)
		}
	} else {
		names = append(names, arm.Detectors...)
	}
	sort.Strings(names)
	return names
}

func (s *Suite) runCell(spec cellSpec, arm *Arm, tr *trainer, warm *scenario.WarmCache, sp *obs.Span) CellResult {
	e := &s.Entries[spec.entry]
	out := CellResult{
		Key: spec.key(), Scenario: spec.scenario, Scale: spec.scale,
		Seed: spec.seed, Engine: spec.engine, CommunitySet: spec.communitySet,
	}
	grid := scenario.Grid{
		Scenarios: []string{spec.scenario},
		Values:    scenario.Values(e.Params),
	}
	cell := scenario.Cell{
		Scenario: spec.scenario, Scale: spec.scale, Seed: spec.seed,
		EngineWorkers: 1, Engine: spec.engine, CommunitySet: spec.communitySet,
	}
	ctx, err := grid.ContextFor(cell)
	if err != nil {
		out.Err = err.Error()
		return out
	}
	// Scenarios that manage their own worlds never fork the shared
	// snapshot, so provisioning one for them would be a wasted build.
	warmFork := func(params gen.Params) (*gen.Snapshot, error) {
		if warm == nil {
			return nil, nil
		}
		if sc, _ := scenario.Get(spec.scenario); sc == nil || sc.ManagesWorlds {
			return nil, nil
		}
		return warm.Snapshot(cell, params)
	}
	buildSp := sp.Child("build")
	if snap, err := warmFork(ctx.Gen); err != nil {
		buildSp.End()
		out.Err = err.Error()
		return out
	} else if snap != nil {
		buildSp.SetAttr("warm", "true")
		ctx.Warm = snap
	}
	buildSp.End()
	detSp := sp.Child("detectors")
	dets, err := detectorsFor(arm, tr, spec.scale, spec.seed)
	detSp.End()
	if err != nil {
		out.Err = err.Error()
		return out
	}
	shards := s.Defaults.Shards
	if shards == 0 {
		shards = 2
	}
	evalSp := sp.Child("eval")
	rep, err := watch.EvalScenario(spec.scenario, ctx, watch.Config{Shards: shards, Detectors: dets})
	evalSp.End()
	if err != nil {
		out.Err = err.Error()
		return out
	}
	m := rep.Metrics()
	out.Precision, out.Recall = m.Precision, m.Recall
	out.TP, out.FP, out.FN = m.TP, m.FP, m.FN
	out.Alerts, out.NoiseAlerts, out.Fired = m.Alerts, m.NoiseAlerts, m.Fired
	out.Success = rep.Result != nil && rep.Result.Success
	if e.Expect != nil {
		out.Expected = *e.Expect
	} else if sc, ok := scenario.Get(spec.scenario); ok && rep.Result != nil {
		out.Expected = sc.ExpectedFor(rep.Result.Hijack)
	}
	out.AsExpected = out.Success == out.Expected

	if e.Dict != nil {
		dictSp := sp.Child("dict")
		defer dictSp.End()
		dctx, err := grid.ContextFor(cell)
		if err != nil {
			out.Err = err.Error()
			return out
		}
		if snap, err := warmFork(dctx.Gen); err != nil {
			out.Err = err.Error()
			return out
		} else if snap != nil {
			dctx.Warm = snap
		}
		drep, _, err := watch.EvalDictionaryScenario(spec.scenario, dctx, semantics.Config{Workers: 1})
		if err != nil {
			out.Err = fmt.Sprintf("dictionary eval: %s", err)
			return out
		}
		dm := drep.Score.Summary()
		out.Dict = &dm
	}

	out.Failures = s.gateCell(e, &out)
	return out
}

// gateCell applies every per-cell assertion, returning one line per
// breach.
func (s *Suite) gateCell(e *Entry, c *CellResult) []string {
	var fails []string
	if !c.AsExpected {
		fails = append(fails, fmt.Sprintf("outcome success=%v, expected %v", c.Success, c.Expected))
	}
	if e.MinPrecision != nil && c.Precision < *e.MinPrecision {
		fails = append(fails, fmt.Sprintf("precision %.4f < min %.4f", c.Precision, *e.MinPrecision))
	}
	if e.MinRecall != nil && c.Recall < *e.MinRecall {
		fails = append(fails, fmt.Sprintf("recall %.4f < min %.4f", c.Recall, *e.MinRecall))
	}
	if e.MaxNoiseAlerts != nil && c.NoiseAlerts > *e.MaxNoiseAlerts {
		fails = append(fails, fmt.Sprintf("noise alerts %d > max %d", c.NoiseAlerts, *e.MaxNoiseAlerts))
	}
	for _, name := range sortedKeys(e.Detectors) {
		g := e.Detectors[name]
		fired := c.Fired[name]
		if g.MustFire && fired == 0 {
			fails = append(fails, fmt.Sprintf("detector %s never fired", name))
		}
		if g.MaxFired != nil && fired > *g.MaxFired {
			fails = append(fails, fmt.Sprintf("detector %s fired %d > max %d", name, fired, *g.MaxFired))
		}
	}
	if e.Dict != nil && c.Dict != nil {
		if e.Dict.MinPrecision != nil && c.Dict.Precision < *e.Dict.MinPrecision {
			fails = append(fails, fmt.Sprintf("dict precision %.4f < min %.4f", c.Dict.Precision, *e.Dict.MinPrecision))
		}
		if e.Dict.MinRecall != nil && c.Dict.Recall < *e.Dict.MinRecall {
			fails = append(fails, fmt.Sprintf("dict recall %.4f < min %.4f", c.Dict.Recall, *e.Dict.MinRecall))
		}
		if e.Dict.MinClassAccuracy != nil && c.Dict.ClassAccuracy < *e.Dict.MinClassAccuracy {
			fails = append(fails, fmt.Sprintf("dict class accuracy %.4f < min %.4f", c.Dict.ClassAccuracy, *e.Dict.MinClassAccuracy))
		}
	}
	return fails
}

// groupCells folds cells into their cross-seed groups (grid order) and
// applies the variance gate.
func (s *Suite) groupCells(specs []cellSpec, cells []CellResult) []GroupResult {
	order := []string{}
	byKey := map[string][]int{}
	for i, spec := range specs {
		k := spec.groupKey()
		if _, ok := byKey[k]; !ok {
			order = append(order, k)
		}
		byKey[k] = append(byKey[k], i)
	}
	var groups []GroupResult
	for _, k := range order {
		idx := byKey[k]
		spec := specs[idx[0]]
		e := &s.Entries[spec.entry]
		g := GroupResult{
			Key: k, Scenario: spec.scenario, Scale: spec.scale,
			Engine: spec.engine, CommunitySet: spec.communitySet,
			MaxVariance: s.maxVariance(e),
		}
		var ps, rs, ns []float64
		errored := false
		for _, i := range idx {
			c := &cells[i]
			g.Seeds = append(g.Seeds, c.Seed)
			if c.Err != "" {
				errored = true
				continue
			}
			ps = append(ps, c.Precision)
			rs = append(rs, c.Recall)
			ns = append(ns, float64(c.NoiseAlerts))
		}
		if errored || len(ps) == 0 {
			// Cell errors already fail the report; variance over a
			// partial group would be noise on top of noise.
			groups = append(groups, g)
			continue
		}
		g.Precision, g.Recall, g.Noise = aggregate(ps), aggregate(rs), aggregate(ns)
		if g.Precision.Variance > g.MaxVariance {
			g.Failures = append(g.Failures, fmt.Sprintf(
				"precision variance %.6f > bound %.6f (seed-dependent quality)", g.Precision.Variance, g.MaxVariance))
		}
		if g.Recall.Variance > g.MaxVariance {
			g.Failures = append(g.Failures, fmt.Sprintf(
				"recall variance %.6f > bound %.6f (seed-dependent quality)", g.Recall.Variance, g.MaxVariance))
		}
		groups = append(groups, g)
	}
	return groups
}

func sortedKeys(m map[string]DetectorGate) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
