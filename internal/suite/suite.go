// Package suite is the statistical release-gate harness: declarative
// scenario suites (checked-in JSON under suites/), a multi-seed runner
// that executes every suite cell through the scenario sweep machinery
// and the watch/semantics evaluation loops, cross-seed variance gating
// with per-detector assertion thresholds, a detector-vs-scenario
// confusion matrix, and a paired A/B decision rule (Compare) that two
// detector configurations are judged by before one may replace the
// other.
//
// A suite is the repo's analogue of the paper's Table 3 discipline:
// every registered attack scenario declares what must be detected, the
// suite pins how well, and CI refuses changes that fall below the pins
// or whose quality varies across seeds more than the declared bound.
// Reports are deterministic: the same suite, seeds, and arm produce
// byte-identical suite_report.json regardless of harness worker count.
package suite

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"bgpworms/internal/gen"
	"bgpworms/internal/scenario"
	"bgpworms/internal/simnet"
	"bgpworms/internal/watch"
)

// MinSeeds is the smallest seed list a suite cell may declare: detector
// quality asserted on fewer repetitions is a point estimate, not a
// gate (the variance bound needs spread to measure).
const MinSeeds = 3

// DefaultMaxVariance bounds the cross-seed population variance of
// precision and recall within a cell group when neither the suite nor
// the entry declares one. 0.0025 is a standard deviation of 5 points
// on a [0,1] ratio — far looser than the zero variance healthy
// scenarios show, tight enough to catch seed-dependent flapping.
const DefaultMaxVariance = 0.0025

// Arm names one detector configuration under evaluation: which
// detectors run, and whether a community dictionary is trained (per
// scale and seed, on a clean churn baseline) to back the
// dictionary-aware pair. The zero Arm is the default: every registered
// detector, no dictionary.
type Arm struct {
	Name string `json:"name,omitempty"`
	// Detectors are watch detector registry names (plus the dict pair's
	// names when Dict is set); empty means every registered detector
	// (plus the dict pair when Dict is set).
	Detectors []string `json:"detectors,omitempty"`
	// Dict trains a per-(scale,seed) community dictionary on a clean
	// world plus a month of churn and binds the dictionary-aware
	// detectors to it.
	Dict bool `json:"dict,omitempty"`
}

// label names the arm in reports.
func (a *Arm) label() string {
	if a == nil {
		return "default"
	}
	if a.Name != "" {
		return a.Name
	}
	if a.Dict {
		return "dict"
	}
	return "custom"
}

// validate rejects unknown detector names and dict-pair names without a
// dictionary to back them.
func (a *Arm) validate() error {
	if a == nil {
		return nil
	}
	for _, name := range a.Detectors {
		if name == watch.DictSquatName || name == watch.UnknownActionName {
			if !a.Dict {
				return fmt.Errorf("arm %s: detector %q needs \"dict\": true", a.label(), name)
			}
			continue
		}
		if _, ok := watch.LookupDetector(name); !ok {
			return fmt.Errorf("arm %s: unknown detector %q (registered: %v)",
				a.label(), name, watch.DetectorNames())
		}
	}
	return nil
}

// DetectorGate is one per-detector assertion inside a suite entry.
type DetectorGate struct {
	// MustFire requires at least one alert from this detector in every
	// cell of the entry.
	MustFire bool `json:"must_fire,omitempty"`
	// MaxFired caps this detector's alert count per cell.
	MaxFired *int `json:"max_fired,omitempty"`
}

// DictGate asserts dictionary-inference quality for an entry: the
// scenario is additionally replayed through the semantics engine and
// the inferred dictionary is scored against the generator's ground
// truth (watch.EvalDictionaryScenario).
type DictGate struct {
	MinPrecision     *float64 `json:"min_precision,omitempty"`
	MinRecall        *float64 `json:"min_recall,omitempty"`
	MinClassAccuracy *float64 `json:"min_class_accuracy,omitempty"`
}

func (g *DictGate) validate() error {
	for name, v := range map[string]*float64{
		"min_precision": g.MinPrecision, "min_recall": g.MinRecall,
		"min_class_accuracy": g.MinClassAccuracy,
	} {
		if v != nil && (*v < 0 || *v > 1) {
			return fmt.Errorf("dict.%s %v outside [0,1]", name, *v)
		}
	}
	return nil
}

// SnapshotGroup declares one warm-world reuse group: a (scale, engine)
// pair whose member entries all run on exactly those coordinates, so
// every member cell with the same seed forks one frozen snapshot
// instead of rebuilding the world. The runner derives reuse from cell
// coordinates on its own; a named group is the suite author's pinned
// claim about which entries share worlds, and a member whose grid
// strays from the group's coordinates is a validation error — snapshot
// reuse across mismatched worlds would be a silent equivalence break.
type SnapshotGroup struct {
	Scale  string `json:"scale"`
	Engine string `json:"engine"`
}

// Defaults fill entry dimensions left empty, so a suite states its
// grid once.
type Defaults struct {
	Scales       []string `json:"scales,omitempty"`
	Seeds        []int64  `json:"seeds,omitempty"`
	Engines      []string `json:"engines,omitempty"`
	CommunitySet string   `json:"community_set,omitempty"`
	// VPs is the Atlas vantage-point count per cell (scenario default
	// when 0).
	VPs int `json:"vps,omitempty"`
	// Shards is the watch engine shard count per cell. Alert sets are
	// shard-invariant; the knob only trades memory for parallelism.
	Shards int `json:"shards,omitempty"`
	// MaxVariance is the suite-wide cross-seed variance bound
	// (DefaultMaxVariance when nil).
	MaxVariance *float64 `json:"max_variance,omitempty"`
}

// Entry is one suite row: a registered scenario, the grid it runs on,
// and the gates its runs must clear.
type Entry struct {
	// Scenario is the registry name (internal/attack registrations).
	Scenario string `json:"scenario"`
	// Scales / Seeds / Engines / CommunitySet fan the cell grid; empty
	// dimensions inherit the suite defaults.
	Scales       []string `json:"scales,omitempty"`
	Seeds        []int64  `json:"seeds,omitempty"`
	Engines      []string `json:"engines,omitempty"`
	CommunitySet string   `json:"community_set,omitempty"`
	// Params are fixed scenario parameter overrides for every cell.
	Params map[string]string `json:"params,omitempty"`
	// Expect overrides the scenario's declared Table-3 expectation
	// (rarely needed; nil gates against the registry declaration).
	Expect *bool `json:"expect,omitempty"`
	// Thresholds gate the evaluated replay's micro precision/recall,
	// noise-alert volume, and cross-seed variance.
	scenario.Thresholds
	// Detectors are per-detector assertions, keyed by detector name.
	Detectors map[string]DetectorGate `json:"detectors,omitempty"`
	// Dict, when set, additionally scores dictionary inference over the
	// cell and gates its quality.
	Dict *DictGate `json:"dict,omitempty"`
	// SnapshotGroup names a suite-level SnapshotGroup this entry belongs
	// to; validation pins the entry's scales and engines to the group's.
	SnapshotGroup string `json:"snapshot_group,omitempty"`
}

// Suite is the checked-in declarative format.
type Suite struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Arm is the detector configuration the suite runs under when the
	// caller does not override one.
	Arm      *Arm     `json:"arm,omitempty"`
	Defaults Defaults `json:"defaults,omitempty"`
	// SnapshotGroups are the declared warm-world reuse groups entries
	// may opt into via Entry.SnapshotGroup.
	SnapshotGroups map[string]SnapshotGroup `json:"snapshot_groups,omitempty"`
	Entries        []Entry                  `json:"entries"`
}

// Load reads, parses, and validates a suite file.
func Load(path string) (*Suite, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Parse decodes and validates a suite. Unknown fields, unregistered
// scenarios, short or duplicated seed lists, unparsable parameters, and
// out-of-range thresholds are all errors — a malformed suite must
// never reach the gate looking like a passing one.
func Parse(data []byte) (*Suite, error) {
	var s Suite
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("suite: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("suite: trailing data after suite object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the suite against the scenario and detector
// registries and the simulation preset/engine catalogs.
func (s *Suite) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("suite: missing name")
	}
	if len(s.Entries) == 0 {
		return fmt.Errorf("suite %s: no entries", s.Name)
	}
	if err := s.Arm.validate(); err != nil {
		return fmt.Errorf("suite %s: %w", s.Name, err)
	}
	if s.Defaults.MaxVariance != nil && *s.Defaults.MaxVariance < 0 {
		return fmt.Errorf("suite %s: defaults.max_variance %v negative", s.Name, *s.Defaults.MaxVariance)
	}
	for _, scale := range s.Defaults.Scales {
		if _, err := gen.Preset(scale); err != nil {
			return fmt.Errorf("suite %s: defaults: %w", s.Name, err)
		}
	}
	for _, e := range s.Defaults.Engines {
		if _, err := simnet.ParseEngine(e); err != nil {
			return fmt.Errorf("suite %s: defaults: %w", s.Name, err)
		}
	}
	for name, g := range s.SnapshotGroups {
		if _, err := gen.Preset(g.Scale); err != nil {
			return fmt.Errorf("suite %s: snapshot group %s: %w", s.Name, name, err)
		}
		if _, err := simnet.ParseEngine(g.Engine); err != nil {
			return fmt.Errorf("suite %s: snapshot group %s: %w", s.Name, name, err)
		}
	}
	for i := range s.Entries {
		if err := s.validateEntry(&s.Entries[i]); err != nil {
			return fmt.Errorf("suite %s: entry %d (%s): %w", s.Name, i, s.Entries[i].Scenario, err)
		}
	}
	return nil
}

func (s *Suite) validateEntry(e *Entry) error {
	sc, ok := scenario.Get(e.Scenario)
	if !ok {
		return fmt.Errorf("unknown scenario %q (registered: %v)", e.Scenario, scenario.Names())
	}
	seeds := e.Seeds
	if len(seeds) == 0 {
		seeds = s.Defaults.Seeds
	}
	if len(seeds) < MinSeeds {
		return fmt.Errorf("%d seed(s); a gated cell needs at least %d for the variance bound", len(seeds), MinSeeds)
	}
	seen := map[int64]bool{}
	for _, seed := range seeds {
		if seen[seed] {
			return fmt.Errorf("duplicate seed %d", seed)
		}
		seen[seed] = true
	}
	for _, scale := range e.Scales {
		if _, err := gen.Preset(scale); err != nil {
			return err
		}
	}
	for _, eng := range e.Engines {
		if _, err := simnet.ParseEngine(eng); err != nil {
			return err
		}
	}
	if err := sc.Validate(scenario.Values(e.Params)); err != nil {
		return err
	}
	if err := e.Thresholds.Validate(); err != nil {
		return err
	}
	for name, g := range e.Detectors {
		known := name == watch.DictSquatName || name == watch.UnknownActionName
		if !known {
			if _, ok := watch.LookupDetector(name); !ok {
				return fmt.Errorf("unknown detector %q (registered: %v)", name, watch.DetectorNames())
			}
		}
		if g.MaxFired != nil && *g.MaxFired < 0 {
			return fmt.Errorf("detector %s: max_fired %d negative", name, *g.MaxFired)
		}
		if g.MustFire && g.MaxFired != nil && *g.MaxFired == 0 {
			return fmt.Errorf("detector %s: must_fire with max_fired 0 can never pass", name)
		}
	}
	if e.Dict != nil {
		if err := e.Dict.validate(); err != nil {
			return err
		}
	}
	if e.SnapshotGroup != "" {
		g, ok := s.SnapshotGroups[e.SnapshotGroup]
		if !ok {
			return fmt.Errorf("unknown snapshot group %q", e.SnapshotGroup)
		}
		scales := pick(e.Scales, s.Defaults.Scales, []string{scenario.DefaultScale})
		engines := pick(e.Engines, s.Defaults.Engines, []string{"delta"})
		if len(scales) != 1 || scales[0] != g.Scale {
			return fmt.Errorf("snapshot group %q pins scale %q but the entry runs on %v; "+
				"snapshot reuse across mismatched worlds is not a cache miss, it is a different experiment",
				e.SnapshotGroup, g.Scale, scales)
		}
		if len(engines) != 1 || engines[0] != g.Engine {
			return fmt.Errorf("snapshot group %q pins engine %q but the entry runs on %v",
				e.SnapshotGroup, g.Engine, engines)
		}
	}
	return nil
}

// cellSpec is one expanded grid point, pre-resolution.
type cellSpec struct {
	entry        int
	scenario     string
	scale        string
	seed         int64
	engine       string
	communitySet string
}

// key is the canonical pairing identity of a cell across suite runs
// and A/B arms.
func (c cellSpec) key() string {
	return fmt.Sprintf("%d/%s/%s/%s/%s/seed=%d", c.entry, c.scenario, c.scale, c.engine, c.communitySet, c.seed)
}

// groupKey identifies the cross-seed aggregation group.
func (c cellSpec) groupKey() string {
	return fmt.Sprintf("%d/%s/%s/%s/%s", c.entry, c.scenario, c.scale, c.engine, c.communitySet)
}

// cells expands the suite into canonical order: entry, scale, seed,
// engine (outermost first). Validation has already run; expansion is
// mechanical.
func (s *Suite) cells() []cellSpec {
	var out []cellSpec
	for i := range s.Entries {
		e := &s.Entries[i]
		scales := pick(e.Scales, s.Defaults.Scales, []string{scenario.DefaultScale})
		seeds := e.Seeds
		if len(seeds) == 0 {
			seeds = s.Defaults.Seeds
		}
		engines := pick(e.Engines, s.Defaults.Engines, []string{"delta"})
		set := e.CommunitySet
		if set == "" {
			set = s.Defaults.CommunitySet
		}
		if set == "" {
			set = scenario.DefaultCommunitySet
		}
		for _, scale := range scales {
			for _, seed := range seeds {
				for _, eng := range engines {
					out = append(out, cellSpec{
						entry: i, scenario: e.Scenario, scale: scale,
						seed: seed, engine: eng, communitySet: set,
					})
				}
			}
		}
	}
	return out
}

func pick(own, def, fallback []string) []string {
	if len(own) > 0 {
		return own
	}
	if len(def) > 0 {
		return def
	}
	return fallback
}

// maxVariance resolves the variance bound for an entry.
func (s *Suite) maxVariance(e *Entry) float64 {
	if e.MaxVariance != nil {
		return *e.MaxVariance
	}
	if s.Defaults.MaxVariance != nil {
		return *s.Defaults.MaxVariance
	}
	return DefaultMaxVariance
}

// Scenarios returns the sorted, deduplicated scenario names the suite
// covers (the registry-coverage invariant reads it).
func (s *Suite) Scenarios() []string {
	set := map[string]bool{}
	for i := range s.Entries {
		set[s.Entries[i].Scenario] = true
	}
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
