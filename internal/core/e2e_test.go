package core

import (
	"bytes"
	"testing"

	"bgpworms/internal/gen"
)

// buildDatasetViaMRT runs the full honest pipeline: synthetic Internet →
// collector archives → MRT byte streams → parsed Dataset. The analysis
// layer only ever sees the wire format.
func buildDatasetViaMRT(t *testing.T) (*gen.Internet, *Dataset) {
	t.Helper()
	w, err := gen.Build(gen.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.RunChurn(); err != nil {
		t.Fatal(err)
	}
	ds := &Dataset{}
	for _, c := range w.Collectors {
		var buf bytes.Buffer
		if _, err := c.WriteUpdatesMRT(&buf); err != nil {
			t.Fatal(err)
		}
		part, err := ReadMRTUpdates(string(c.Platform), c.Name, &buf)
		if err != nil {
			t.Fatal(err)
		}
		// MRT streams do not carry session metadata; splice in the real
		// peer list.
		part.Collectors[0].PeerIPs = len(c.Peers())
		part.Collectors[0].PeerASNs = map[uint32]bool{}
		for _, p := range c.Peers() {
			part.Collectors[0].PeerASNs[uint32(p.AS)] = true
		}
		ds.Merge(part)
	}
	return w, ds
}

func TestE2E_MRTPipelineMatchesDirect(t *testing.T) {
	w, viaMRT := buildDatasetViaMRT(t)
	direct := FromCollectors(w.Collectors)
	if len(viaMRT.Updates) != len(direct.Updates) {
		t.Fatalf("MRT %d vs direct %d updates", len(viaMRT.Updates), len(direct.Updates))
	}
	// Spot-check equality of paths and communities.
	for i := range viaMRT.Updates {
		a, b := viaMRT.Updates[i], direct.Updates[i]
		if a.Prefix != b.Prefix || a.Withdraw != b.Withdraw || a.PeerAS != b.PeerAS {
			t.Fatalf("update %d differs: %+v vs %+v", i, a, b)
		}
		if a.Communities.String() != b.Communities.String() {
			t.Fatalf("update %d communities differ", i)
		}
		if len(a.ASPath) != len(b.ASPath) {
			t.Fatalf("update %d paths differ", i)
		}
	}
}

func TestE2E_HeadlineShapesHold(t *testing.T) {
	w, ds := buildDatasetViaMRT(t)

	// Table 1: all four platforms present, v4 dominates.
	rows := Table1(ds)
	if len(rows) != 5 {
		t.Fatalf("table1 rows=%d", len(rows))
	}
	total := rows[len(rows)-1]
	if total.Messages == 0 || total.Communities == 0 {
		t.Fatalf("total=%+v", total)
	}
	if total.IPv4Prefixes <= total.IPv6Prefixes {
		t.Fatalf("v4 should dominate: %+v", total)
	}
	if total.Transit+total.Stub != total.ASes {
		t.Fatalf("role split inconsistent: %+v", total)
	}

	// §4.2: the majority of announcements carry communities.
	if share := OverallCommunityShare(ds); share < 0.5 {
		t.Fatalf("community share=%.2f, want >0.5", share)
	}

	// Table 2: both on-path and off-path community ASes exist.
	t2 := Table2(ds)
	tot2 := t2[len(t2)-1]
	if tot2.OnPath == 0 || tot2.OffPath == 0 {
		t.Fatalf("table2=%+v", tot2)
	}

	// Fig 5a: communities propagate multiple hops; some beyond 2.
	pa := AnalyzePropagation(ds, w.Registry.All())
	all, bh := pa.Figure5a()
	if all.Len() == 0 {
		t.Fatal("no on-path distances")
	}
	if all.At(1) >= 0.95 {
		t.Fatal("communities should travel beyond the first hop")
	}
	// Blackhole communities travel shorter distances than communities at
	// large (the Fig 5a separation) — compare medians when we have
	// enough samples.
	if bh.Len() >= 5 {
		if bh.Quantile(0.5) > all.Quantile(0.9) {
			t.Fatalf("blackhole median %.1f implausibly large vs all p90 %.1f", bh.Quantile(0.5), all.Quantile(0.9))
		}
	}

	// §4.3: a nonzero minority of transit ASes propagate foreign
	// communities.
	rep := TransitPropagators(ds)
	if rep.Propagators == 0 || rep.Propagators >= rep.TransitASes {
		t.Fatalf("transit report=%+v", rep)
	}

	// Fig 6: both forwarding and filtering indications appear.
	fi := InferFiltering(ds)
	s := fi.Summarize(1)
	if s.WithForwardSign == 0 || s.WithFilterSign == 0 {
		t.Fatalf("filter summary=%+v", s)
	}
	// Relationship join runs against the generated graph.
	br := fi.ByRelationship(w.Graph)
	if len(br) != 3 {
		t.Fatalf("breakdown=%v", br)
	}
}

func TestE2E_Figure4Shapes(t *testing.T) {
	_, ds := buildDatasetViaMRT(t)
	fr := Figure4a(ds)
	if len(fr) != 4 {
		t.Fatalf("collectors=%d", len(fr))
	}
	f4b := ComputeFigure4b(ds)
	// Multi-community updates exist.
	if f4b.CommunitiesPerUpdate.Quantile(1) < 2 {
		t.Fatal("no multi-community updates")
	}
	// Some updates reference multiple ASes (transitivity signal, §4.2).
	if f4b.ASesPerUpdate.Quantile(1) < 2 {
		t.Fatal("no multi-AS community sets")
	}
}

func TestE2E_Figure5bRelativeDistances(t *testing.T) {
	w, ds := buildDatasetViaMRT(t)
	pa := AnalyzePropagation(ds, w.Registry.All())
	m := pa.Figure5b(3, 10)
	if len(m) == 0 {
		t.Fatal("no path-length groups")
	}
	// A significant share of communities travel more than half the path.
	anyFar := false
	for _, e := range m {
		if 1-e.At(0.5) > 0.2 {
			anyFar = true
		}
	}
	if !anyFar {
		t.Fatal("no communities travel >50% of their path")
	}
}
