package core

import (
	"errors"
	"fmt"
	"io"
	"time"

	"bgpworms/internal/mrt"
)

// RIBView is one (collector, peer, prefix) path from a TABLE_DUMP_V2
// snapshot — the concurrent table view the paper complements updates with
// ("BGP routing tables and updates", §4.1).
type RIBView struct {
	Platform  string
	Collector string
	PeerAS    uint32
	Time      time.Time
	Update    Update // normalized route content (never a withdrawal)
}

// ReadMRTRIB parses a TABLE_DUMP_V2 snapshot stream (as written by
// collector.WriteRIBSnapshotMRT) into per-peer table entries. The stream
// must start with a PEER_INDEX_TABLE.
func ReadMRTRIB(platform, collectorName string, r io.Reader) ([]RIBView, error) {
	mr := mrt.NewReader(r)
	var out []RIBView
	for {
		rec, err := mr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("core: reading RIB MRT: %w", err)
		}
		rib, ok := rec.(*mrt.RIB)
		if !ok {
			continue // peer index tables are tracked by the reader
		}
		peers := mr.PeerTable()
		for _, e := range rib.Entries {
			if int(e.PeerIndex) >= len(peers) {
				return nil, fmt.Errorf("core: RIB entry references peer %d of %d", e.PeerIndex, len(peers))
			}
			peer := peers[e.PeerIndex]
			out = append(out, RIBView{
				Platform:  platform,
				Collector: collectorName,
				PeerAS:    peer.AS,
				Time:      rib.Timestamp,
				Update: Update{
					Platform:    platform,
					Collector:   collectorName,
					PeerAS:      peer.AS,
					Time:        e.OriginatedTime,
					Prefix:      rib.Prefix,
					ASPath:      e.Attrs.ASPath.Sequence(),
					Communities: e.Attrs.Communities.Clone(),
				},
			})
		}
	}
	return out, nil
}

// DatasetFromRIB builds a Dataset from table snapshots, enabling every §4
// analysis to run on RIB state instead of update streams (the paper uses
// both interchangeably for propagation questions).
func DatasetFromRIB(views []RIBView) *Dataset {
	ds := &Dataset{}
	metaIdx := map[string]int{}
	for _, v := range views {
		i, ok := metaIdx[v.Collector]
		if !ok {
			i = len(ds.Collectors)
			metaIdx[v.Collector] = i
			ds.Collectors = append(ds.Collectors, CollectorMeta{
				Platform: v.Platform, Name: v.Collector, PeerASNs: map[uint32]bool{},
			})
		}
		if !ds.Collectors[i].PeerASNs[v.PeerAS] {
			ds.Collectors[i].PeerASNs[v.PeerAS] = true
			ds.Collectors[i].PeerIPs++
		}
		ds.Updates = append(ds.Updates, v.Update)
	}
	return ds
}

// TableEntryCount sums entries per collector — the "BGP table entries"
// series of Figure 3.
func TableEntryCount(views []RIBView) map[string]int {
	out := map[string]int{}
	for _, v := range views {
		out[v.Collector]++
	}
	return out
}

// CompareUpdateVsRIB cross-checks the two data sources: every prefix in
// the RIB snapshot must appear in the update-derived latest view for the
// same collector and peer (the converse need not hold if updates were
// later withdrawn). Returns the number of RIB entries without a matching
// latest-route update.
func CompareUpdateVsRIB(ds *Dataset, views []RIBView) int {
	type key struct {
		col  string
		peer uint32
		pfx  string
	}
	latest := map[key]bool{}
	for _, u := range ds.LatestRoutes() {
		latest[key{u.Collector, u.PeerAS, u.Prefix.String()}] = true
	}
	missing := 0
	for _, v := range views {
		if !latest[key{v.Collector, v.PeerAS, v.Update.Prefix.String()}] {
			missing++
		}
	}
	return missing
}
