package core

import (
	"net/netip"
	"testing"
	"time"

	"bgpworms/internal/bgp"
	"bgpworms/internal/netx"
)

var (
	t0   = time.Date(2018, 4, 1, 0, 0, 0, 0, time.UTC)
	pfxA = netx.MustPrefix("203.0.113.0/24")
	pfxB = netx.MustPrefix("198.51.100.0/24")
)

func upd(col string, peer uint32, p netip.Prefix, path []uint32, comms ...bgp.Community) Update {
	return Update{
		Platform:    "RIS",
		Collector:   col,
		PeerAS:      peer,
		Time:        t0,
		Prefix:      p,
		ASPath:      path,
		Communities: bgp.NewCommunitySet(comms...),
	}
}

func smallDataset() *Dataset {
	ds := &Dataset{
		Collectors: []CollectorMeta{
			{Platform: "RIS", Name: "rrc00", PeerIPs: 2, PeerASNs: map[uint32]bool{5: true, 7: true}},
			{Platform: "RV", Name: "rv0", PeerIPs: 1, PeerASNs: map[uint32]bool{9: true}},
		},
	}
	// Path display order: nearest first, origin last.
	ds.Updates = []Update{
		// Community 3:100 tagged by AS3 at index 2 — traveled 3 hops.
		upd("rrc00", 5, pfxA, []uint32{5, 4, 3, 2, 1}, bgp.C(3, 100), bgp.C(1, 200)),
		// Prepended path: 4 4 4 3 1 → stripped 4 3 1.
		upd("rrc00", 7, pfxA, []uint32{7, 4, 4, 4, 3, 1}, bgp.C(99, 666)),
		// v6 prefix, no communities (RV platform).
		func() Update {
			u := upd("rv0", 9, netx.MustPrefix("2001:db8::/32"), []uint32{9, 3, 1})
			u.Platform = "RV"
			return u
		}(),
		// Withdrawal.
		{Platform: "RV", Collector: "rv0", PeerAS: 9, Time: t0, Prefix: pfxB, Withdraw: true},
	}
	return ds
}

func TestStrippedPathAndOrigin(t *testing.T) {
	u := upd("c", 5, pfxA, []uint32{5, 4, 4, 4, 3})
	got := u.StrippedPath()
	if len(got) != 3 || got[0] != 5 || got[2] != 3 {
		t.Fatalf("stripped=%v", got)
	}
	if u.OriginAS() != 3 {
		t.Fatalf("origin=%d", u.OriginAS())
	}
	var empty Update
	if empty.OriginAS() != 0 {
		t.Fatal("empty origin")
	}
}

func TestTable1Counts(t *testing.T) {
	rows := Table1(smallDataset())
	if len(rows) != 3 { // RIS, RV, Total
		t.Fatalf("rows=%d", len(rows))
	}
	ris := rows[0]
	if ris.Source != "RIS" || ris.Messages != 2 {
		t.Fatalf("ris=%+v", ris)
	}
	if ris.IPv4Prefixes != 1 || ris.IPv6Prefixes != 0 {
		t.Fatalf("ris prefixes=%+v", ris)
	}
	if ris.Communities != 3 {
		t.Fatalf("ris communities=%d", ris.Communities)
	}
	// RIS paths: {5,4,3,2,1} and {7,4,3,1} → ASes {1,2,3,4,5,7}.
	if ris.ASes != 6 {
		t.Fatalf("ris ASes=%d", ris.ASes)
	}
	// Origins: {1}; transit: {5,4,3,2,7}; stubs = 6-5 = 1.
	if ris.Origin != 1 || ris.Transit != 5 || ris.Stub != 1 {
		t.Fatalf("ris roles=%+v", ris)
	}
	if ris.Collectors != 1 || ris.IPPeers != 2 || ris.ASPeers != 2 {
		t.Fatalf("ris infra=%+v", ris)
	}
	total := rows[2]
	if total.Source != "Total" || total.Messages != 4 {
		t.Fatalf("total=%+v", total)
	}
	if total.IPv6Prefixes != 1 || total.Collectors != 2 || total.ASPeers != 3 {
		t.Fatalf("total=%+v", total)
	}
	if RenderTable1(rows) == "" {
		t.Fatal("render empty")
	}
}

func TestTable2Classification(t *testing.T) {
	rows := Table2(smallDataset())
	ris := rows[0]
	// Communities: 3:100 (AS3 on path), 1:200 (AS1 on path), 99:666 (AS99
	// off path). Total distinct ASes = {3,1,99} = 3.
	if ris.Total != 3 {
		t.Fatalf("total=%d", ris.Total)
	}
	if ris.OnPath != 2 || ris.OffPath != 1 {
		t.Fatalf("on=%d off=%d", ris.OnPath, ris.OffPath)
	}
	// None of {1,3,99} is a collector peer ({5,7}).
	if ris.WithoutCollectorPeer != 3 {
		t.Fatalf("w/o peer=%d", ris.WithoutCollectorPeer)
	}
	// 99 is not private.
	if ris.OffPathWithoutPrivate != 1 {
		t.Fatalf("off w/o private=%d", ris.OffPathWithoutPrivate)
	}
	if RenderTable2(rows) == "" {
		t.Fatal("render empty")
	}
}

func TestTable2PrivateASN(t *testing.T) {
	ds := &Dataset{Collectors: []CollectorMeta{{Platform: "RIS", Name: "c", PeerASNs: map[uint32]bool{}}}}
	ds.Updates = []Update{upd("c", 5, pfxA, []uint32{5, 1}, bgp.C(64512, 1), bgp.C(700, 2))}
	rows := Table2(ds)
	r := rows[0]
	if r.OffPath != 2 || r.OffPathWithoutPrivate != 1 {
		t.Fatalf("row=%+v", r)
	}
}

func TestWellKnownExcludedFromTable2(t *testing.T) {
	ds := &Dataset{Collectors: []CollectorMeta{{Platform: "RIS", Name: "c", PeerASNs: map[uint32]bool{}}}}
	ds.Updates = []Update{upd("c", 5, pfxA, []uint32{5, 1}, bgp.CommunityNoExport, bgp.CommunityBlackhole, bgp.C(0, 4))}
	rows := Table2(ds)
	if rows[0].Total != 0 {
		t.Fatalf("reserved ranges must not count as ASes: %+v", rows[0])
	}
}

func TestFigure4a(t *testing.T) {
	fr := Figure4a(smallDataset())
	if len(fr) != 2 {
		t.Fatalf("fractions=%v", fr)
	}
	// rrc00: both updates have communities (fraction 1.0); rv0: one
	// announcement without communities (fraction 0).
	var rrc, rv CollectorFraction
	for _, f := range fr {
		switch f.Collector {
		case "rrc00":
			rrc = f
		case "rv0":
			rv = f
		}
	}
	if rrc.Fraction() != 1.0 || rrc.Updates != 2 {
		t.Fatalf("rrc=%+v", rrc)
	}
	if rv.Fraction() != 0 || rv.Updates != 1 {
		t.Fatalf("rv=%+v", rv)
	}
	if RenderFigure4a(fr) == "" {
		t.Fatal("render empty")
	}
	share := OverallCommunityShare(smallDataset())
	if share <= 0.6 || share >= 0.7 { // 2 of 3 announcements
		t.Fatalf("share=%v", share)
	}
}

func TestFigure4b(t *testing.T) {
	f := ComputeFigure4b(smallDataset())
	if f.CommunitiesPerUpdate.Len() != 3 {
		t.Fatalf("len=%d", f.CommunitiesPerUpdate.Len())
	}
	// Updates carry 2, 1, 0 communities.
	if got := f.CommunitiesPerUpdate.At(0); got < 0.33 || got > 0.34 {
		t.Fatalf("P[X<=0]=%v", got)
	}
	if got := f.CommunitiesPerUpdate.At(2); got != 1 {
		t.Fatalf("P[X<=2]=%v", got)
	}
	// ASes per update: 2, 1, 0.
	if got := f.ASesPerUpdate.Quantile(1); got != 2 {
		t.Fatalf("max ases=%v", got)
	}
	if RenderFigure4b(f) == "" {
		t.Fatal("render empty")
	}
}

func TestTaggerIndexAndDistance(t *testing.T) {
	path := []uint32{5, 4, 3, 2, 1}
	if got := TaggerIndex(path, bgp.C(3, 1)); got != 2 {
		t.Fatalf("idx=%d", got)
	}
	if got := TaggerIndex(path, bgp.C(5, 1)); got != 0 {
		t.Fatalf("idx=%d", got)
	}
	if got := TaggerIndex(path, bgp.C(99, 1)); got != -1 {
		t.Fatalf("idx=%d", got)
	}
	o := CommunityObservation{TaggerIdx: 2}
	if o.Distance() != 3 {
		t.Fatalf("distance=%d", o.Distance())
	}
	off := CommunityObservation{TaggerIdx: -1}
	if off.Distance() != -1 || off.OnPath() {
		t.Fatal("off-path geometry wrong")
	}
}

func TestAnalyzePropagationAndFig5a(t *testing.T) {
	ds := smallDataset()
	pa := AnalyzePropagation(ds, nil)
	// Communities analyzed: 3:100 (on, idx2), 1:200 (on, idx4), 99:666
	// (off). Total observations = 3.
	if len(pa.Observations) != 3 {
		t.Fatalf("obs=%d", len(pa.Observations))
	}
	all, bh := pa.Figure5a()
	if all.Len() != 2 {
		t.Fatalf("on-path distances=%d", all.Len())
	}
	// Distances: 3 (idx2+1) and 5 (idx4+1).
	if all.At(3) != 0.5 || all.At(5) != 1 {
		t.Fatalf("ecdf: %v %v", all.At(3), all.At(5))
	}
	// 99:666 is blackhole-valued but off-path: no distance sample.
	if bh.Len() != 0 {
		t.Fatalf("bh=%d", bh.Len())
	}
	if RenderFigure5a(all, bh) == "" {
		t.Fatal("render empty")
	}
}

func TestBlackholeClassifier(t *testing.T) {
	cls := IsBlackholeClassifier([]bgp.Community{bgp.C(10, 999)})
	if !cls(bgp.C(5, 666)) || !cls(bgp.C(10, 999)) || cls(bgp.C(10, 100)) {
		t.Fatal("classifier wrong")
	}
}

func TestFigure5bExcludesMonitorPeerTagger(t *testing.T) {
	ds := &Dataset{Collectors: []CollectorMeta{{Platform: "RIS", Name: "c", PeerASNs: map[uint32]bool{}}}}
	ds.Updates = []Update{
		// Tagger = peer (idx 0): excluded. Tagger idx 1: kept.
		upd("c", 5, pfxA, []uint32{5, 4, 1}, bgp.C(5, 1), bgp.C(4, 2)),
	}
	pa := AnalyzePropagation(ds, nil)
	m := pa.Figure5b(3, 10)
	e, ok := m[3]
	if !ok || e.Len() != 1 {
		t.Fatalf("fig5b=%v", m)
	}
	// Distance 2 over path length 3.
	if got := e.Quantile(0.5); got < 0.66 || got > 0.67 {
		t.Fatalf("rel=%v", got)
	}
	if RenderFigure5b(m) == "" {
		t.Fatal("render empty")
	}
}

func TestFigure5cTopValues(t *testing.T) {
	ds := &Dataset{Collectors: []CollectorMeta{{Platform: "RIS", Name: "c", PeerASNs: map[uint32]bool{}}}}
	ds.Updates = []Update{
		upd("c", 5, pfxA, []uint32{5, 1}, bgp.C(1, 100), bgp.C(5, 100), bgp.C(99, 666)),
		upd("c", 5, pfxB, []uint32{5, 1}, bgp.C(1, 100), bgp.C(98, 666)),
	}
	pa := AnalyzePropagation(ds, nil)
	off, on := pa.Figure5c(10)
	if len(off) != 1 || off[0].Value != 666 || off[0].Count != 2 || off[0].Share != 1 {
		t.Fatalf("off=%v", off)
	}
	if len(on) != 1 || on[0].Value != 100 || on[0].Count != 3 {
		t.Fatalf("on=%v", on)
	}
	if RenderFigure5c(off, on) == "" {
		t.Fatal("render empty")
	}
	d, p := pa.OffPathStats()
	if d != 2 || p != 0 {
		t.Fatalf("offpath stats=%d,%d", d, p)
	}
}

func TestTransitPropagators(t *testing.T) {
	ds := &Dataset{Collectors: []CollectorMeta{{Platform: "RIS", Name: "c", PeerASNs: map[uint32]bool{}}}}
	ds.Updates = []Update{
		// Community of AS1 (origin, idx 3): relayers are idx 1,2 = {4,3}.
		// Peer (idx 0 = AS5) excluded.
		upd("c", 5, pfxA, []uint32{5, 4, 3, 1}, bgp.C(1, 100)),
		// No-community update defines more transit ASes.
		upd("c", 9, pfxB, []uint32{9, 8, 7}),
	}
	rep := TransitPropagators(ds)
	// Transit: non-origin positions: {5,4,3} ∪ {9,8} = 5.
	if rep.TransitASes != 5 {
		t.Fatalf("transit=%d", rep.TransitASes)
	}
	if rep.Propagators != 2 {
		t.Fatalf("propagators=%d", rep.Propagators)
	}
	if f := rep.Fraction(); f != 0.4 {
		t.Fatalf("fraction=%v", f)
	}
	if (TransitReport{}).Fraction() != 0 {
		t.Fatal("empty fraction")
	}
}

func TestLatestRoutesDedup(t *testing.T) {
	ds := &Dataset{}
	u1 := upd("c", 5, pfxA, []uint32{5, 1}, bgp.C(1, 1))
	u2 := upd("c", 5, pfxA, []uint32{5, 2, 1}, bgp.C(1, 2))
	w := Update{Collector: "c", PeerAS: 7, Prefix: pfxB, Withdraw: true}
	ds.Updates = []Update{u1, u2, w}
	latest := ds.LatestRoutes()
	if len(latest) != 1 {
		t.Fatalf("latest=%v", latest)
	}
	if !latest[0].Communities.Has(bgp.C(1, 2)) {
		t.Fatal("did not keep the newest route")
	}
	// Announce then withdraw → gone.
	ds2 := &Dataset{Updates: []Update{u1, {Collector: "c", PeerAS: 5, Prefix: pfxA, Withdraw: true}}}
	if len(ds2.LatestRoutes()) != 0 {
		t.Fatal("withdrawn route survived")
	}
}

func TestInferFilteringPaperExample(t *testing.T) {
	// Figure 6a: A1 path (origin-first) AS1,AS2,AS3,AS4 carries AS2:X;
	// A2 path AS1,AS2,AS3,AS5 carries none.
	// Display order is nearest-first: A1 = [4,3,2,1], A2 = [5,3,2,1]...
	// Careful: paper's A2 traverses AS2 as well: AS1,AS2,AS3,AS5 →
	// nearest-first [5,3,2,1].
	ds := &Dataset{}
	ds.Updates = []Update{
		upd("c1", 4, pfxA, []uint32{4, 3, 2, 1}, bgp.C(2, 77)),
		upd("c2", 5, pfxA, []uint32{5, 3, 2, 1}),
	}
	fi := InferFiltering(ds)

	// Added indication on (AS2, AS3).
	if in := fi.Edges[Edge{2, 3}]; in == nil || in.Added != 1 {
		t.Fatalf("added=%+v", fi.Edges[Edge{2, 3}])
	}
	// Forward indication on (AS3, AS4).
	if in := fi.Edges[Edge{3, 4}]; in == nil || in.Forwarded != 1 {
		t.Fatalf("forwarded=%+v", fi.Edges[Edge{3, 4}])
	}
	// Filter indication on (AS3, AS5).
	if in := fi.Edges[Edge{3, 5}]; in == nil || in.Filtered != 1 {
		t.Fatalf("filtered=%+v", fi.Edges[Edge{3, 5}])
	}
	// Path counts: edge (1,2) seen twice.
	if in := fi.Edges[Edge{1, 2}]; in == nil || in.Paths != 2 {
		t.Fatalf("paths=%+v", fi.Edges[Edge{1, 2}])
	}

	s := fi.Summarize(1)
	if s.WithForwardSign != 1 || s.WithFilterSign != 1 {
		t.Fatalf("summary=%+v", s)
	}
	if RenderFilterSummary(s) == "" {
		t.Fatal("render empty")
	}
	if bins := fi.Hexbin(1, 4); len(bins) == 0 {
		t.Fatal("hexbin empty")
	}
}

func TestInferFilteringMixedEdge(t *testing.T) {
	// Same edge forwards one community and filters another.
	ds := &Dataset{}
	ds.Updates = []Update{
		upd("c1", 4, pfxA, []uint32{4, 3, 2, 1}, bgp.C(2, 1)),
		upd("c2", 5, pfxA, []uint32{5, 4, 3, 2, 1}, bgp.C(2, 1)),
		// Second prefix: community from AS2 reaches AS3 via c1's view but
		// is missing on the path via 4→5.
		upd("c1", 4, pfxB, []uint32{4, 3, 2, 1}, bgp.C(2, 2)),
		upd("c2", 5, pfxB, []uint32{5, 4, 3, 2, 1}),
	}
	fi := InferFiltering(ds)
	mixed := fi.MixedEdges(1)
	found := false
	for _, e := range mixed {
		if e == (Edge{4, 5}) {
			found = true
		}
	}
	if !found {
		t.Fatalf("edge (4,5) should be mixed: %v; edges=%+v", mixed, fi.Edges[Edge{4, 5}])
	}
}

func TestEvolutionMetrics(t *testing.T) {
	ua, uc, abs, te := EvolutionMetrics(smallDataset())
	// Communities: 3:100, 1:200, 99:666 → 3 ASes, 3 uniques, 3 absolute.
	if ua != 3 || uc != 3 || abs != 3 {
		t.Fatalf("ua=%d uc=%d abs=%d", ua, uc, abs)
	}
	if te != 3 { // three latest announcements
		t.Fatalf("te=%d", te)
	}
}

func TestSortedASNs(t *testing.T) {
	got := sortedASNs(map[uint32]bool{5: true, 1: true, 3: true})
	if len(got) != 3 || got[0] != 1 || got[2] != 5 {
		t.Fatalf("got=%v", got)
	}
}
