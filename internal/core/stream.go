package core

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"bgpworms/internal/bgp"
	"bgpworms/internal/mrt"
)

// StreamMRTUpdates decodes a BGP4MP update stream (as written by
// collector.WriteUpdatesMRT) and invokes fn once per normalized routing
// observation, without materializing the update slice. It returns the
// collector metadata gathered along the way. fn errors abort the stream.
func StreamMRTUpdates(platform, collectorName string, r io.Reader, fn func(u *Update) error) (CollectorMeta, error) {
	meta := CollectorMeta{Platform: platform, Name: collectorName, PeerASNs: make(map[uint32]bool)}
	mr := mrt.NewReader(r)
	for {
		rec, err := mr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return meta, fmt.Errorf("core: reading MRT: %w", err)
		}
		msg, ok := rec.(*mrt.BGP4MPMessage)
		if !ok {
			continue // state changes etc. carry no routes
		}
		upd, ok := msg.Message.(*bgp.Update)
		if !ok {
			continue
		}
		meta.PeerASNs[msg.PeerAS] = true
		base := Update{
			Platform:  platform,
			Collector: collectorName,
			PeerAS:    msg.PeerAS,
			Time:      msg.Timestamp,
		}
		for _, p := range upd.AllAnnounced() {
			u := base
			u.Prefix = p
			u.ASPath = upd.Attrs.ASPath.Sequence()
			u.Communities = upd.Attrs.Communities.Clone()
			if err := fn(&u); err != nil {
				return meta, err
			}
		}
		for _, p := range upd.AllWithdrawn() {
			u := base
			u.Prefix = p
			u.Withdraw = true
			if err := fn(&u); err != nil {
				return meta, err
			}
		}
	}
	meta.PeerIPs = len(meta.PeerASNs)
	return meta, nil
}

// Accumulator ingests routing observations one at a time and folds every
// §4 aggregate in a single pass: Tables 1/2, Figures 4a/4b, the Figure 5
// propagation observations, the transit-propagator sets, the Figure 3
// evolution counters, and the latest-route view Figure 6 runs on. It is
// the streaming complement of Dataset: MRT byte streams can be classified
// without retaining the update slice (memory stays bounded by the
// aggregate sizes — table entries, distinct sets, and per-community
// observations — not by stream length).
//
// Accumulators also serve as the per-chunk partial aggregates of
// Pipeline.Analyze: Merge combines two accumulators deterministically
// when the receiver folded the earlier portion of the stream.
type Accumulator struct {
	collectors []CollectorMeta
	platforms  []string
	seenPf     map[string]bool

	t1      table1Shards
	t2      table2Shards
	fig4a   *fig4aAgg
	share   *shareAgg
	fig4b   *fig4bAgg
	prop    *propAgg
	transit *transitAgg
	evo     *evolutionAgg
	latest  *latestAgg
}

// NewAccumulator returns an empty accumulator; knownBlackhole seeds the
// Figure 5 blackhole classifier (nil = only :666 classifies).
func NewAccumulator(knownBlackhole []bgp.Community) *Accumulator {
	return newAccumulatorFor(IsBlackholeClassifier(knownBlackhole))
}

func newAccumulatorFor(isBlackhole func(bgp.Community) bool) *Accumulator {
	return &Accumulator{
		seenPf:  make(map[string]bool),
		t1:      make(table1Shards),
		t2:      make(table2Shards),
		fig4a:   newFig4aAgg(),
		share:   &shareAgg{},
		fig4b:   &fig4bAgg{},
		prop:    newPropAgg(isBlackhole),
		transit: newTransitAgg(),
		evo:     newEvolutionAgg(),
		latest:  newLatestAgg(),
	}
}

// AddCollector registers collector metadata (Table 1 infrastructure
// columns and the platform row order).
func (a *Accumulator) AddCollector(meta CollectorMeta) {
	a.collectors = append(a.collectors, meta)
	if !a.seenPf[meta.Platform] {
		a.seenPf[meta.Platform] = true
		a.platforms = append(a.platforms, meta.Platform)
	}
}

// Add folds one observation into every aggregate.
func (a *Accumulator) Add(u *Update) { a.addStripped(u, u.StrippedPath()) }

func (a *Accumulator) addStripped(u *Update, stripped []uint32) {
	a.t1.add(u, stripped)
	a.t2.add(u, stripped)
	a.fig4a.add(u)
	a.share.add(u)
	a.fig4b.add(u)
	a.prop.add(u, stripped)
	a.transit.add(u, stripped)
	a.evo.add(u)
	a.latest.add(u)
}

// Merge folds b into a. a must have ingested the earlier portion of the
// stream: order-sensitive aggregates (latest routes, sample order) treat
// b's contents as later observations.
func (a *Accumulator) Merge(b *Accumulator) {
	for _, c := range b.collectors {
		a.AddCollector(c)
	}
	a.t1.merge(b.t1)
	a.t2.merge(b.t2)
	a.fig4a.merge(b.fig4a)
	a.share.merge(b.share)
	a.fig4b.merge(b.fig4b)
	a.prop.merge(b.prop)
	a.transit.merge(b.transit)
	a.evo.merge(b.evo)
	a.latest.merge(b.latest)
}

// finalize materializes every per-update analysis output. The Figure 6
// inference is attached separately (it needs the latest-route reduction).
func (a *Accumulator) finalize() *Analysis {
	return &Analysis{
		Table1:  a.t1.rows(a.collectors, a.platforms),
		Table2:  a.t2.rows(a.collectors, a.platforms),
		Fig4a:   a.fig4a.finalize(),
		Share:   a.share.finalize(),
		Fig4b:   a.fig4b.finalize(),
		Prop:    a.prop.finalize(),
		Transit: a.transit.finalize(),
	}
}

// Analysis finalizes the accumulator into the full output bundle,
// running the Figure 6 inference over p's worker pool (nil = default).
func (a *Accumulator) Analysis(p *Pipeline) *Analysis {
	if p == nil {
		p = DefaultPipeline
	}
	out := a.finalize()
	out.Filter = p.inferFiltering(a.latest.finalize())
	return out
}

// LatestRoutes returns the accumulated concurrent view (the Figure 6 /
// Figure 3 table-entry reduction).
func (a *Accumulator) LatestRoutes() []Update { return a.latest.finalize() }

// EvolutionMetrics returns the Figure 3 series values accumulated so far.
func (a *Accumulator) EvolutionMetrics() (uniqueASes, uniqueComms, absolute, tableEntries int) {
	return len(a.evo.asSet), len(a.evo.commSet), a.evo.absolute, len(a.latest.finalize())
}

// collectorNameFromFile derives (platform, collector) from an MRT archive
// name like updates.RIS-rrc00.mrt: the collector is the base name between
// "updates." and ".mrt", the platform is its prefix before the first "-".
func collectorNameFromFile(path string) (platform, name string) {
	name = strings.TrimSuffix(strings.TrimPrefix(filepath.Base(path), "updates."), ".mrt")
	platform = name
	if i := strings.Index(name, "-"); i > 0 {
		platform = name[:i]
	}
	return platform, name
}

// LoadMRTDir reads every updates.*.mrt archive under dir into one
// Dataset, decoding archives concurrently over the worker pool and
// merging the fragments in sorted file-name order so the result is
// independent of scheduling.
func (p *Pipeline) LoadMRTDir(dir string) (*Dataset, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "updates.*.mrt"))
	if err != nil {
		return nil, err
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("core: no updates.*.mrt files in %s", dir)
	}
	parts := make([]*Dataset, len(matches))
	errs := make([]error, len(matches))
	parallelDo(len(matches), p.workers(), func(i int) {
		platform, name := collectorNameFromFile(matches[i])
		f, err := os.Open(matches[i])
		if err != nil {
			errs[i] = err
			return
		}
		defer f.Close()
		parts[i], errs[i] = ReadMRTUpdates(platform, name, f)
	})
	ds := &Dataset{}
	for i, part := range parts {
		if errs[i] != nil {
			return nil, errs[i]
		}
		ds.Merge(part)
	}
	return ds, nil
}

// StreamMRTDir runs the fused single-pass analysis over every
// updates.*.mrt archive under dir without materializing any update
// slice: each archive streams into its own accumulator on the worker
// pool, and the accumulators merge in sorted file-name order.
func (p *Pipeline) StreamMRTDir(dir string, knownBlackhole []bgp.Community) (*Analysis, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "updates.*.mrt"))
	if err != nil {
		return nil, err
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("core: no updates.*.mrt files in %s", dir)
	}
	cls := IsBlackholeClassifier(knownBlackhole)
	accs := make([]*Accumulator, len(matches))
	errs := make([]error, len(matches))
	parallelDo(len(matches), p.workers(), func(i int) {
		platform, name := collectorNameFromFile(matches[i])
		f, err := os.Open(matches[i])
		if err != nil {
			errs[i] = err
			return
		}
		defer f.Close()
		acc := newAccumulatorFor(cls)
		meta, err := StreamMRTUpdates(platform, name, f, func(u *Update) error {
			acc.Add(u)
			return nil
		})
		if err != nil {
			errs[i] = err
			return
		}
		acc.AddCollector(meta)
		accs[i] = acc
	})
	var total *Accumulator
	for i, acc := range accs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		if total == nil {
			total = acc
		} else {
			total.Merge(acc)
		}
	}
	return total.Analysis(p), nil
}
