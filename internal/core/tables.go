package core

import (
	"sort"

	"bgpworms/internal/bgp"
	"bgpworms/internal/stats"
)

// Table1Row is one platform row of Table 1 ("Overview of BGP dataset").
type Table1Row struct {
	Source       string
	Messages     int
	IPv4Prefixes int
	IPv6Prefixes int
	Collectors   int
	IPPeers      int
	ASPeers      int
	Communities  int
	ASes         int
	Origin       int
	Transit      int
	Stub         int
}

// Table1 computes the dataset overview per platform plus the union row.
func Table1(ds *Dataset) []Table1Row {
	platforms := append(ds.Platforms(), "Total")
	rows := make([]Table1Row, 0, len(platforms))
	for _, pf := range platforms {
		filter := pf
		if pf == "Total" {
			filter = ""
		}
		rows = append(rows, table1Row(ds, pf, filter))
	}
	return rows
}

func table1Row(ds *Dataset, label, platform string) Table1Row {
	row := Table1Row{Source: label}
	v4 := map[string]bool{}
	v6 := map[string]bool{}
	comms := map[bgp.Community]bool{}
	ases := map[uint32]bool{}
	origins := map[uint32]bool{}
	transit := map[uint32]bool{}
	cols := map[string]bool{}
	for _, c := range ds.Collectors {
		if platform != "" && c.Platform != platform {
			continue
		}
		cols[c.Name] = true
		row.IPPeers += c.PeerIPs
	}
	asPeers := ds.CollectorPeers(platform)
	for _, u := range ds.Updates {
		if platform != "" && u.Platform != platform {
			continue
		}
		row.Messages++
		if u.Prefix.Addr().Is4() {
			v4[u.Prefix.String()] = true
		} else {
			v6[u.Prefix.String()] = true
		}
		if u.Withdraw {
			continue
		}
		for _, c := range u.Communities {
			comms[c] = true
		}
		path := u.StrippedPath()
		for i, a := range path {
			ases[a] = true
			if i == len(path)-1 {
				origins[a] = true
			} else {
				// Neither origin nor the collector itself: transit role
				// (§4.3 footnote 6).
				transit[a] = true
			}
		}
	}
	row.IPv4Prefixes = len(v4)
	row.IPv6Prefixes = len(v6)
	row.Collectors = len(cols)
	row.ASPeers = len(asPeers)
	row.Communities = len(comms)
	row.ASes = len(ases)
	row.Origin = len(origins)
	row.Transit = len(transit)
	row.Stub = len(ases) - len(transit)
	return row
}

// RenderTable1 renders rows in paper layout.
func RenderTable1(rows []Table1Row) string {
	t := stats.NewTable("Source", "Messages", "IPv4pfx", "IPv6pfx", "Collectors", "IPpeers", "ASpeers", "Communities", "ASes", "Origin", "Transit", "Stub")
	for _, r := range rows {
		t.Row(r.Source, r.Messages, r.IPv4Prefixes, r.IPv6Prefixes, r.Collectors, r.IPPeers, r.ASPeers, r.Communities, r.ASes, r.Origin, r.Transit, r.Stub)
	}
	return t.String()
}

// Table2Row is one platform row of Table 2 ("ASes with observed BGP
// communities").
type Table2Row struct {
	Source string
	// Total distinct ASes referenced in community high bits.
	Total int
	// WithoutCollectorPeer excludes ASes directly peering with the
	// platform's collectors.
	WithoutCollectorPeer int
	// OnPath ASes appear on the AS path of an update carrying their
	// community.
	OnPath int
	// OffPath ASes never do.
	OffPath int
	// OffPathWithoutPrivate excludes RFC 6996 private ASNs.
	OffPathWithoutPrivate int
}

// Table2 computes community-AS classification per platform plus union.
func Table2(ds *Dataset) []Table2Row {
	platforms := append(ds.Platforms(), "Total")
	rows := make([]Table2Row, 0, len(platforms))
	for _, pf := range platforms {
		filter := pf
		if pf == "Total" {
			filter = ""
		}
		rows = append(rows, table2Row(ds, pf, filter))
	}
	return rows
}

func table2Row(ds *Dataset, label, platform string) Table2Row {
	row := Table2Row{Source: label}
	all := map[uint32]bool{}
	onPath := map[uint32]bool{}
	for _, u := range ds.Updates {
		if platform != "" && u.Platform != platform {
			continue
		}
		if u.Withdraw || len(u.Communities) == 0 {
			continue
		}
		path := u.StrippedPath()
		inPath := map[uint32]bool{}
		for _, a := range path {
			inPath[a] = true
		}
		for _, c := range u.Communities {
			asn := uint32(c.ASN())
			if asn == 0 || asn == 0xFFFF {
				continue // well-known ranges are not AS references
			}
			all[asn] = true
			if inPath[asn] {
				onPath[asn] = true
			}
		}
	}
	peers := ds.CollectorPeers(platform)
	row.Total = len(all)
	for a := range all {
		if !peers[a] {
			row.WithoutCollectorPeer++
		}
		if onPath[a] {
			row.OnPath++
		} else {
			row.OffPath++
			if !bgp.IsPrivateASN(a) {
				row.OffPathWithoutPrivate++
			}
		}
	}
	return row
}

// RenderTable2 renders rows in paper layout.
func RenderTable2(rows []Table2Row) string {
	t := stats.NewTable("Source", "Total", "w/oCollPeer", "OnPath", "OffPath", "OffPath w/o private")
	for _, r := range rows {
		t.Row(r.Source, r.Total, r.WithoutCollectorPeer, r.OnPath, r.OffPath, r.OffPathWithoutPrivate)
	}
	return t.String()
}

// EvolutionMetrics extracts the four Figure 3 series values from a
// dataset: unique ASes in communities, unique communities, absolute
// community count, and table entries (latest-route count).
func EvolutionMetrics(ds *Dataset) (uniqueASes, uniqueComms, absolute, tableEntries int) {
	asSet := map[uint16]bool{}
	commSet := map[bgp.Community]bool{}
	for _, u := range ds.Updates {
		if u.Withdraw {
			continue
		}
		absolute += len(u.Communities)
		for _, c := range u.Communities {
			commSet[c] = true
			if c.ASN() != 0 && c.ASN() != 0xFFFF {
				asSet[c.ASN()] = true
			}
		}
	}
	return len(asSet), len(commSet), absolute, len(ds.LatestRoutes())
}

// sortedASNs is a test helper exported via the package for deterministic
// set rendering.
func sortedASNs(m map[uint32]bool) []uint32 {
	out := make([]uint32, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
