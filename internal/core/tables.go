package core

import (
	"net/netip"
	"sort"

	"bgpworms/internal/bgp"
	"bgpworms/internal/stats"
)

// Table1Row is one platform row of Table 1 ("Overview of BGP dataset").
type Table1Row struct {
	Source       string
	Messages     int
	IPv4Prefixes int
	IPv6Prefixes int
	Collectors   int
	IPPeers      int
	ASPeers      int
	Communities  int
	ASes         int
	Origin       int
	Transit      int
	Stub         int
}

// table1Agg is the per-shard partial aggregate behind one Table 1 row:
// everything that can be folded update-by-update. Set-valued fields merge
// by union, counters by addition, so shard merging commutes and the
// result is independent of how updates were split across workers.
type table1Agg struct {
	messages int
	v4       map[netip.Prefix]bool
	v6       map[netip.Prefix]bool
	comms    map[bgp.Community]bool
	ases     map[uint32]bool
	origins  map[uint32]bool
	transit  map[uint32]bool
}

func newTable1Agg() *table1Agg {
	return &table1Agg{
		v4:      make(map[netip.Prefix]bool),
		v6:      make(map[netip.Prefix]bool),
		comms:   make(map[bgp.Community]bool),
		ases:    make(map[uint32]bool),
		origins: make(map[uint32]bool),
		transit: make(map[uint32]bool),
	}
}

func (a *table1Agg) add(u *Update, stripped []uint32) {
	a.messages++
	if u.Prefix.Addr().Is4() {
		a.v4[u.Prefix] = true
	} else {
		a.v6[u.Prefix] = true
	}
	if u.Withdraw {
		return
	}
	for _, c := range u.Communities {
		a.comms[c] = true
	}
	for i, as := range stripped {
		a.ases[as] = true
		if i == len(stripped)-1 {
			a.origins[as] = true
		} else {
			// Neither origin nor the collector itself: transit role
			// (§4.3 footnote 6).
			a.transit[as] = true
		}
	}
}

func (a *table1Agg) merge(b *table1Agg) {
	a.messages += b.messages
	for k := range b.v4 {
		a.v4[k] = true
	}
	for k := range b.v6 {
		a.v6[k] = true
	}
	for k := range b.comms {
		a.comms[k] = true
	}
	for k := range b.ases {
		a.ases[k] = true
	}
	for k := range b.origins {
		a.origins[k] = true
	}
	for k := range b.transit {
		a.transit[k] = true
	}
}

// row fills a Table1Row from the fold aggregate plus collector metadata.
func (a *table1Agg) row(label, platform string, collectors []CollectorMeta) Table1Row {
	row := Table1Row{Source: label}
	for _, c := range collectors {
		if platform != "" && c.Platform != platform {
			continue
		}
		row.Collectors++
		row.IPPeers += c.PeerIPs
	}
	row.ASPeers = len(collectorPeers(collectors, platform))
	row.Messages = a.messages
	row.IPv4Prefixes = len(a.v4)
	row.IPv6Prefixes = len(a.v6)
	row.Communities = len(a.comms)
	row.ASes = len(a.ases)
	row.Origin = len(a.origins)
	row.Transit = len(a.transit)
	row.Stub = len(a.ases) - len(a.transit)
	return row
}

// table1Shards keys partial aggregates by platform; the union ("Total")
// row is derived by merging every platform's aggregate, since each
// update belongs to exactly one platform.
type table1Shards map[string]*table1Agg

func (s table1Shards) add(u *Update, stripped []uint32) {
	agg := s[u.Platform]
	if agg == nil {
		agg = newTable1Agg()
		s[u.Platform] = agg
	}
	agg.add(u, stripped)
}

func (s table1Shards) merge(o table1Shards) {
	for pf, agg := range o {
		if mine := s[pf]; mine != nil {
			mine.merge(agg)
		} else {
			s[pf] = agg
		}
	}
}

func (s table1Shards) rows(collectors []CollectorMeta, platforms []string) []Table1Row {
	rows := make([]Table1Row, 0, len(platforms)+1)
	for _, pf := range platforms {
		agg := s[pf]
		if agg == nil {
			agg = newTable1Agg()
		}
		rows = append(rows, agg.row(pf, pf, collectors))
	}
	// The Total row covers every update — including platforms with no
	// collector metadata, which get no row of their own. Set unions and
	// counter sums commute, so map iteration order is immaterial.
	total := newTable1Agg()
	for _, agg := range s {
		total.merge(agg)
	}
	rows = append(rows, total.row("Total", "", collectors))
	return rows
}

// Table1 computes the dataset overview per platform plus the union row.
func Table1(ds *Dataset) []Table1Row { return DefaultPipeline.Table1(ds) }

// Table1 computes Table 1 with the pipeline's worker pool: one fused
// pass over the update stream, sharded into contiguous chunks.
func (p *Pipeline) Table1(ds *Dataset) []Table1Row {
	shards := foldChunks(ds.Updates, p.workers(),
		func() table1Shards { return make(table1Shards) },
		func(s table1Shards, u *Update, stripped []uint32) { s.add(u, stripped) })
	merged := make(table1Shards)
	for _, s := range shards {
		merged.merge(s)
	}
	return merged.rows(ds.Collectors, ds.Platforms())
}

// collectorPeers returns the union of peer ASNs across collectors of a
// platform ("" = all platforms).
func collectorPeers(collectors []CollectorMeta, platform string) map[uint32]bool {
	out := make(map[uint32]bool)
	for _, c := range collectors {
		if platform != "" && c.Platform != platform {
			continue
		}
		for a := range c.PeerASNs {
			out[a] = true
		}
	}
	return out
}

// RenderTable1 renders rows in paper layout.
func RenderTable1(rows []Table1Row) string {
	t := stats.NewTable("Source", "Messages", "IPv4pfx", "IPv6pfx", "Collectors", "IPpeers", "ASpeers", "Communities", "ASes", "Origin", "Transit", "Stub")
	for _, r := range rows {
		t.Row(r.Source, r.Messages, r.IPv4Prefixes, r.IPv6Prefixes, r.Collectors, r.IPPeers, r.ASPeers, r.Communities, r.ASes, r.Origin, r.Transit, r.Stub)
	}
	return t.String()
}

// Table2Row is one platform row of Table 2 ("ASes with observed BGP
// communities").
type Table2Row struct {
	Source string
	// Total distinct ASes referenced in community high bits.
	Total int
	// WithoutCollectorPeer excludes ASes directly peering with the
	// platform's collectors.
	WithoutCollectorPeer int
	// OnPath ASes appear on the AS path of an update carrying their
	// community.
	OnPath int
	// OffPath ASes never do.
	OffPath int
	// OffPathWithoutPrivate excludes RFC 6996 private ASNs.
	OffPathWithoutPrivate int
}

// table2Agg folds the community-AS classification of one platform: both
// sets merge by union across shards.
type table2Agg struct {
	all    map[uint32]bool
	onPath map[uint32]bool
}

func newTable2Agg() *table2Agg {
	return &table2Agg{all: make(map[uint32]bool), onPath: make(map[uint32]bool)}
}

func (a *table2Agg) add(u *Update, stripped []uint32) {
	if u.Withdraw || len(u.Communities) == 0 {
		return
	}
	for _, c := range u.Communities {
		asn := uint32(c.ASN())
		if asn == 0 || asn == 0xFFFF {
			continue // well-known ranges are not AS references
		}
		a.all[asn] = true
		for _, onpath := range stripped {
			if onpath == asn {
				a.onPath[asn] = true
				break
			}
		}
	}
}

func (a *table2Agg) merge(b *table2Agg) {
	for k := range b.all {
		a.all[k] = true
	}
	for k := range b.onPath {
		a.onPath[k] = true
	}
}

func (a *table2Agg) row(label, platform string, collectors []CollectorMeta) Table2Row {
	row := Table2Row{Source: label}
	peers := collectorPeers(collectors, platform)
	row.Total = len(a.all)
	for asn := range a.all {
		if !peers[asn] {
			row.WithoutCollectorPeer++
		}
		if a.onPath[asn] {
			row.OnPath++
		} else {
			row.OffPath++
			if !bgp.IsPrivateASN(asn) {
				row.OffPathWithoutPrivate++
			}
		}
	}
	return row
}

// table2Shards keys partial aggregates by platform, like table1Shards.
type table2Shards map[string]*table2Agg

func (s table2Shards) add(u *Update, stripped []uint32) {
	agg := s[u.Platform]
	if agg == nil {
		agg = newTable2Agg()
		s[u.Platform] = agg
	}
	agg.add(u, stripped)
}

func (s table2Shards) merge(o table2Shards) {
	for pf, agg := range o {
		if mine := s[pf]; mine != nil {
			mine.merge(agg)
		} else {
			s[pf] = agg
		}
	}
}

func (s table2Shards) rows(collectors []CollectorMeta, platforms []string) []Table2Row {
	rows := make([]Table2Row, 0, len(platforms)+1)
	for _, pf := range platforms {
		agg := s[pf]
		if agg == nil {
			agg = newTable2Agg()
		}
		rows = append(rows, agg.row(pf, pf, collectors))
	}
	// Total covers every update, including platforms without collector
	// metadata (see table1Shards.rows).
	total := newTable2Agg()
	for _, agg := range s {
		total.merge(agg)
	}
	rows = append(rows, total.row("Total", "", collectors))
	return rows
}

// Table2 computes community-AS classification per platform plus union.
func Table2(ds *Dataset) []Table2Row { return DefaultPipeline.Table2(ds) }

// Table2 computes Table 2 with the pipeline's worker pool.
func (p *Pipeline) Table2(ds *Dataset) []Table2Row {
	shards := foldChunks(ds.Updates, p.workers(),
		func() table2Shards { return make(table2Shards) },
		func(s table2Shards, u *Update, stripped []uint32) { s.add(u, stripped) })
	merged := make(table2Shards)
	for _, s := range shards {
		merged.merge(s)
	}
	return merged.rows(ds.Collectors, ds.Platforms())
}

// RenderTable2 renders rows in paper layout.
func RenderTable2(rows []Table2Row) string {
	t := stats.NewTable("Source", "Total", "w/oCollPeer", "OnPath", "OffPath", "OffPath w/o private")
	for _, r := range rows {
		t.Row(r.Source, r.Total, r.WithoutCollectorPeer, r.OnPath, r.OffPath, r.OffPathWithoutPrivate)
	}
	return t.String()
}

// evolutionAgg folds the Figure 3 series values.
type evolutionAgg struct {
	asSet    map[uint16]bool
	commSet  map[bgp.Community]bool
	absolute int
}

func newEvolutionAgg() *evolutionAgg {
	return &evolutionAgg{asSet: make(map[uint16]bool), commSet: make(map[bgp.Community]bool)}
}

func (a *evolutionAgg) add(u *Update) {
	if u.Withdraw {
		return
	}
	a.absolute += len(u.Communities)
	for _, c := range u.Communities {
		a.commSet[c] = true
		if c.ASN() != 0 && c.ASN() != 0xFFFF {
			a.asSet[c.ASN()] = true
		}
	}
}

func (a *evolutionAgg) merge(b *evolutionAgg) {
	a.absolute += b.absolute
	for k := range b.asSet {
		a.asSet[k] = true
	}
	for k := range b.commSet {
		a.commSet[k] = true
	}
}

// EvolutionMetrics extracts the four Figure 3 series values from a
// dataset: unique ASes in communities, unique communities, absolute
// community count, and table entries (latest-route count).
func EvolutionMetrics(ds *Dataset) (uniqueASes, uniqueComms, absolute, tableEntries int) {
	return DefaultPipeline.EvolutionMetrics(ds)
}

// EvolutionMetrics computes the Figure 3 values over the worker pool.
func (p *Pipeline) EvolutionMetrics(ds *Dataset) (uniqueASes, uniqueComms, absolute, tableEntries int) {
	aggs := foldChunks(ds.Updates, p.workers(),
		newEvolutionAgg,
		func(a *evolutionAgg, u *Update, _ []uint32) { a.add(u) })
	total := newEvolutionAgg()
	for _, a := range aggs {
		total.merge(a)
	}
	return len(total.asSet), len(total.commSet), total.absolute, len(p.LatestRoutes(ds))
}

// sortedASNs is a test helper exported via the package for deterministic
// set rendering.
func sortedASNs(m map[uint32]bool) []uint32 {
	out := make([]uint32, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
