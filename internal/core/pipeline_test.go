package core

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"bgpworms/internal/gen"
)

// renderAll flattens every analysis output into one golden string so a
// single comparison covers Tables 1/2, Figures 4a/4b/5a/5b/5c, the
// transit report, and the Figure 6 summary.
func renderAll(t1 []Table1Row, t2 []Table2Row, f4a []CollectorFraction, share float64,
	f4b Figure4b, pa *PropagationAnalysis, tr TransitReport, fi *FilterInference) string {
	all, bh := pa.Figure5a()
	off, on := pa.Figure5c(10)
	return RenderTable1(t1) + RenderTable2(t2) + RenderFigure4a(f4a) +
		fmt.Sprintf("share=%.9f\n", share) + RenderFigure4b(f4b) +
		RenderFigure5a(all, bh) + RenderFigure5b(pa.Figure5b(3, 10)) +
		RenderFigure5c(off, on) +
		fmt.Sprintf("transit=%d/%d\n", tr.Propagators, tr.TransitASes) +
		RenderFilterSummary(fi.Summarize(2))
}

func pipelineGolden(p *Pipeline, ds *Dataset) string {
	return renderAll(p.Table1(ds), p.Table2(ds), p.Figure4a(ds), p.OverallCommunityShare(ds),
		p.ComputeFigure4b(ds), p.AnalyzePropagation(ds, nil), p.TransitPropagators(ds),
		p.InferFiltering(ds))
}

// TestPipelineDeterminismAcrossWorkers is the tentpole gate: serial
// (workers=1) and parallel (workers=8) runs must produce bit-identical
// Fig. 4/5/6 and Tables 1/2 output on a generated internet.
func TestPipelineDeterminismAcrossWorkers(t *testing.T) {
	_, ds := buildDatasetViaMRT(t)
	serial := pipelineGolden(NewPipeline(1), ds)
	if serial == "" {
		t.Fatal("empty analysis output")
	}
	for _, w := range []int{2, 8} {
		if got := pipelineGolden(NewPipeline(w), ds); got != serial {
			t.Fatalf("workers=%d output diverges from serial:\n--- serial ---\n%s\n--- workers=%d ---\n%s", w, serial, w, got)
		}
	}
}

// TestLatestRoutesChunkMergeIdentical asserts the concurrent view is the
// exact same slice — order included — for any worker count.
func TestLatestRoutesChunkMergeIdentical(t *testing.T) {
	_, ds := buildDatasetViaMRT(t)
	serial := NewPipeline(1).LatestRoutes(ds)
	if len(serial) == 0 {
		t.Fatal("no latest routes")
	}
	for _, w := range []int{3, 8} {
		got := NewPipeline(w).LatestRoutes(ds)
		if !reflect.DeepEqual(got, serial) {
			t.Fatalf("workers=%d latest-route view diverges (len %d vs %d)", w, len(got), len(serial))
		}
	}
}

// TestFusedAnalyzeMatchesPerFigure asserts the single-pass fused
// pipeline computes exactly what the per-figure entry points compute.
func TestFusedAnalyzeMatchesPerFigure(t *testing.T) {
	w, ds := buildDatasetViaMRT(t)
	known := w.Registry.All()
	for _, workers := range []int{1, 8} {
		p := NewPipeline(workers)
		a := p.Analyze(ds, known)
		got := renderAll(a.Table1, a.Table2, a.Fig4a, a.Share, a.Fig4b, a.Prop, a.Transit, a.Filter)
		want := renderAll(p.Table1(ds), p.Table2(ds), p.Figure4a(ds), p.OverallCommunityShare(ds),
			p.ComputeFigure4b(ds), p.AnalyzePropagation(ds, known), p.TransitPropagators(ds),
			p.InferFiltering(ds))
		if got != want {
			t.Fatalf("workers=%d fused output diverges:\n--- per-figure ---\n%s\n--- fused ---\n%s", workers, want, got)
		}
	}
}

// TestStreamingMatchesMaterialized runs the same MRT archives through
// the materializing loader and the streaming accumulator and demands
// identical analysis output.
func TestStreamingMatchesMaterialized(t *testing.T) {
	world, err := gen.Build(gen.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := world.RunChurn(); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, c := range world.Collectors {
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("updates.%s.mrt", c.Name)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.WriteUpdatesMRT(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	known := world.Registry.All()
	for _, workers := range []int{1, 4} {
		p := NewPipeline(workers)
		ds, err := p.LoadMRTDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(ds.Updates) == 0 {
			t.Fatal("no updates loaded")
		}
		mat := p.Analyze(ds, known)
		str, err := p.StreamMRTDir(dir, known)
		if err != nil {
			t.Fatal(err)
		}
		got := renderAll(str.Table1, str.Table2, str.Fig4a, str.Share, str.Fig4b, str.Prop, str.Transit, str.Filter)
		want := renderAll(mat.Table1, mat.Table2, mat.Fig4a, mat.Share, mat.Fig4b, mat.Prop, mat.Transit, mat.Filter)
		if got != want {
			t.Fatalf("workers=%d streaming output diverges:\n--- materialized ---\n%s\n--- streaming ---\n%s", workers, want, got)
		}
	}
}

// TestAccumulatorEvolutionMetrics checks the streaming Figure 3 values
// agree with the dataset computation.
func TestAccumulatorEvolutionMetrics(t *testing.T) {
	_, ds := buildDatasetViaMRT(t)
	acc := NewAccumulator(nil)
	for i := range ds.Updates {
		acc.Add(&ds.Updates[i])
	}
	ua, uc, abs, te := acc.EvolutionMetrics()
	wua, wuc, wabs, wte := EvolutionMetrics(ds)
	if ua != wua || uc != wuc || abs != wabs || te != wte {
		t.Fatalf("streaming evolution metrics diverge: got %d/%d/%d/%d want %d/%d/%d/%d",
			ua, uc, abs, te, wua, wuc, wabs, wte)
	}
	if got := len(acc.LatestRoutes()); got != te {
		t.Fatalf("latest routes len=%d want %d", got, te)
	}
}

// TestTotalRowCoversMetadataLessPlatforms guards a sharding regression:
// updates whose platform has no CollectorMeta entry (possible via the
// exported Dataset fields or Merge of metadata-less fragments) get no
// per-platform row, but must still count in the Total row, as the
// pre-pipeline full-scan code did.
func TestTotalRowCoversMetadataLessPlatforms(t *testing.T) {
	ds := &Dataset{}
	ds.Updates = []Update{{
		Platform: "GHOST", Collector: "g0", PeerAS: 5,
		Prefix: pfxA, ASPath: []uint32{5, 1},
	}}
	rows := Table1(ds)
	total := rows[len(rows)-1]
	if total.Source != "Total" || total.Messages != 1 || total.IPv4Prefixes != 1 || total.ASes != 2 {
		t.Fatalf("total row dropped metadata-less platform: %+v", total)
	}
}

// TestChunkRanges pins the chunking contract: full cover, no overlap,
// bounded count.
func TestChunkRanges(t *testing.T) {
	for _, tc := range []struct{ n, w int }{{0, 4}, {1, 4}, {7, 3}, {100, 8}, {5, 1}, {3, 0}} {
		rs := chunkRanges(tc.n, tc.w)
		covered := 0
		prev := 0
		for _, r := range rs {
			if r[0] != prev {
				t.Fatalf("n=%d w=%d: gap at %d", tc.n, tc.w, r[0])
			}
			if r[1] <= r[0] {
				t.Fatalf("n=%d w=%d: empty range %v", tc.n, tc.w, r)
			}
			covered += r[1] - r[0]
			prev = r[1]
		}
		if covered != tc.n {
			t.Fatalf("n=%d w=%d: covered %d", tc.n, tc.w, covered)
		}
		if tc.w > 0 && len(rs) > tc.w && tc.n >= tc.w {
			t.Fatalf("n=%d w=%d: %d ranges", tc.n, tc.w, len(rs))
		}
	}
}
