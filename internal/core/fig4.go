package core

import (
	"sort"

	"bgpworms/internal/stats"
)

// CollectorFraction is one point of Figure 4a: the fraction of a
// collector's updates carrying at least one community.
type CollectorFraction struct {
	Platform  string
	Collector string
	Updates   int
	WithComm  int
}

// Fraction returns the with-community share.
func (c CollectorFraction) Fraction() float64 {
	if c.Updates == 0 {
		return 0
	}
	return float64(c.WithComm) / float64(c.Updates)
}

// Figure4a computes per-collector community fractions, sorted ascending
// within each platform as the paper plots them.
func Figure4a(ds *Dataset) []CollectorFraction {
	idx := map[string]int{}
	var out []CollectorFraction
	for _, u := range ds.Updates {
		if u.Withdraw {
			continue
		}
		i, ok := idx[u.Collector]
		if !ok {
			i = len(out)
			idx[u.Collector] = i
			out = append(out, CollectorFraction{Platform: u.Platform, Collector: u.Collector})
		}
		out[i].Updates++
		if len(u.Communities) > 0 {
			out[i].WithComm++
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Platform != out[j].Platform {
			return out[i].Platform < out[j].Platform
		}
		return out[i].Fraction() < out[j].Fraction()
	})
	return out
}

// OverallCommunityShare returns the global fraction of announcements with
// at least one community (the paper's "more than 75%").
func OverallCommunityShare(ds *Dataset) float64 {
	total, with := 0, 0
	for _, u := range ds.Updates {
		if u.Withdraw {
			continue
		}
		total++
		if len(u.Communities) > 0 {
			with++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(with) / float64(total)
}

// Figure4b holds the two per-update ECDFs of Figure 4b.
type Figure4b struct {
	// CommunitiesPerUpdate distributes the community count of each
	// announcement.
	CommunitiesPerUpdate *stats.ECDF
	// ASesPerUpdate distributes the number of distinct ASes referenced by
	// each announcement's communities.
	ASesPerUpdate *stats.ECDF
}

// ComputeFigure4b builds both distributions.
func ComputeFigure4b(ds *Dataset) Figure4b {
	var comms, ases []float64
	for _, u := range ds.Updates {
		if u.Withdraw {
			continue
		}
		comms = append(comms, float64(len(u.Communities)))
		ases = append(ases, float64(len(u.Communities.ASNs())))
	}
	return Figure4b{
		CommunitiesPerUpdate: stats.NewECDF(comms),
		ASesPerUpdate:        stats.NewECDF(ases),
	}
}

// RenderFigure4a renders the per-collector series.
func RenderFigure4a(fracs []CollectorFraction) string {
	t := stats.NewTable("Platform", "Collector", "Updates", "WithCommunities", "Fraction")
	for _, f := range fracs {
		t.Row(f.Platform, f.Collector, f.Updates, f.WithComm, f.Fraction())
	}
	return t.String()
}

// RenderFigure4b renders quantiles of both ECDFs.
func RenderFigure4b(f Figure4b) string {
	t := stats.NewTable("Quantile", "Communities/update", "ASes/update")
	for _, q := range []float64{0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
		t.Row(q, f.CommunitiesPerUpdate.Quantile(q), f.ASesPerUpdate.Quantile(q))
	}
	return t.String()
}
