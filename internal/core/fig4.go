package core

import (
	"sort"

	"bgpworms/internal/stats"
)

// CollectorFraction is one point of Figure 4a: the fraction of a
// collector's updates carrying at least one community.
type CollectorFraction struct {
	Platform  string
	Collector string
	Updates   int
	WithComm  int
}

// Fraction returns the with-community share.
func (c CollectorFraction) Fraction() float64 {
	if c.Updates == 0 {
		return 0
	}
	return float64(c.WithComm) / float64(c.Updates)
}

// fig4aAgg folds per-collector update counts. The first-seen order list
// lets chunk-ordered merging reproduce the serial discovery order
// exactly, which keeps the pre-sort slice identical across worker
// counts.
type fig4aAgg struct {
	idx map[string]int
	out []CollectorFraction
}

func newFig4aAgg() *fig4aAgg { return &fig4aAgg{idx: make(map[string]int)} }

func (a *fig4aAgg) add(u *Update) {
	if u.Withdraw {
		return
	}
	i, ok := a.idx[u.Collector]
	if !ok {
		i = len(a.out)
		a.idx[u.Collector] = i
		a.out = append(a.out, CollectorFraction{Platform: u.Platform, Collector: u.Collector})
	}
	a.out[i].Updates++
	if len(u.Communities) > 0 {
		a.out[i].WithComm++
	}
}

func (a *fig4aAgg) merge(b *fig4aAgg) {
	for _, f := range b.out {
		i, ok := a.idx[f.Collector]
		if !ok {
			i = len(a.out)
			a.idx[f.Collector] = i
			a.out = append(a.out, CollectorFraction{Platform: f.Platform, Collector: f.Collector})
		}
		a.out[i].Updates += f.Updates
		a.out[i].WithComm += f.WithComm
	}
}

// finalize sorts ascending within each platform as the paper plots them,
// with the collector name as a total-order tie break.
func (a *fig4aAgg) finalize() []CollectorFraction {
	out := a.out
	sort.Slice(out, func(i, j int) bool {
		if out[i].Platform != out[j].Platform {
			return out[i].Platform < out[j].Platform
		}
		if fi, fj := out[i].Fraction(), out[j].Fraction(); fi != fj {
			return fi < fj
		}
		return out[i].Collector < out[j].Collector
	})
	return out
}

// Figure4a computes per-collector community fractions, sorted ascending
// within each platform as the paper plots them.
func Figure4a(ds *Dataset) []CollectorFraction { return DefaultPipeline.Figure4a(ds) }

// Figure4a computes the per-collector fractions over the worker pool.
func (p *Pipeline) Figure4a(ds *Dataset) []CollectorFraction {
	aggs := foldChunks(ds.Updates, p.workers(),
		newFig4aAgg,
		func(a *fig4aAgg, u *Update, _ []uint32) { a.add(u) })
	merged := newFig4aAgg()
	for _, a := range aggs {
		merged.merge(a)
	}
	return merged.finalize()
}

// shareAgg folds the global announcement / with-community counters.
type shareAgg struct{ total, with int }

func (a *shareAgg) add(u *Update) {
	if u.Withdraw {
		return
	}
	a.total++
	if len(u.Communities) > 0 {
		a.with++
	}
}

func (a *shareAgg) merge(b *shareAgg) { a.total += b.total; a.with += b.with }

func (a *shareAgg) finalize() float64 {
	if a.total == 0 {
		return 0
	}
	return float64(a.with) / float64(a.total)
}

// OverallCommunityShare returns the global fraction of announcements with
// at least one community (the paper's "more than 75%").
func OverallCommunityShare(ds *Dataset) float64 { return DefaultPipeline.OverallCommunityShare(ds) }

// OverallCommunityShare computes the global share over the worker pool.
func (p *Pipeline) OverallCommunityShare(ds *Dataset) float64 {
	aggs := foldChunks(ds.Updates, p.workers(),
		func() *shareAgg { return &shareAgg{} },
		func(a *shareAgg, u *Update, _ []uint32) { a.add(u) })
	total := &shareAgg{}
	for _, a := range aggs {
		total.merge(a)
	}
	return total.finalize()
}

// Figure4b holds the two per-update ECDFs of Figure 4b.
type Figure4b struct {
	// CommunitiesPerUpdate distributes the community count of each
	// announcement.
	CommunitiesPerUpdate *stats.ECDF
	// ASesPerUpdate distributes the number of distinct ASes referenced by
	// each announcement's communities.
	ASesPerUpdate *stats.ECDF
}

// fig4bAgg accumulates the raw samples; chunk-ordered concatenation
// reproduces the serial sample order.
type fig4bAgg struct {
	comms []float64
	ases  []float64
}

func (a *fig4bAgg) add(u *Update) {
	if u.Withdraw {
		return
	}
	a.comms = append(a.comms, float64(len(u.Communities)))
	a.ases = append(a.ases, float64(len(u.Communities.ASNs())))
}

func (a *fig4bAgg) merge(b *fig4bAgg) {
	a.comms = append(a.comms, b.comms...)
	a.ases = append(a.ases, b.ases...)
}

func (a *fig4bAgg) finalize() Figure4b {
	return Figure4b{
		CommunitiesPerUpdate: stats.NewECDF(a.comms),
		ASesPerUpdate:        stats.NewECDF(a.ases),
	}
}

// ComputeFigure4b builds both distributions.
func ComputeFigure4b(ds *Dataset) Figure4b { return DefaultPipeline.ComputeFigure4b(ds) }

// ComputeFigure4b builds both distributions over the worker pool.
func (p *Pipeline) ComputeFigure4b(ds *Dataset) Figure4b {
	aggs := foldChunks(ds.Updates, p.workers(),
		func() *fig4bAgg { return &fig4bAgg{} },
		func(a *fig4bAgg, u *Update, _ []uint32) { a.add(u) })
	merged := &fig4bAgg{}
	for _, a := range aggs {
		merged.merge(a)
	}
	return merged.finalize()
}

// RenderFigure4a renders the per-collector series.
func RenderFigure4a(fracs []CollectorFraction) string {
	t := stats.NewTable("Platform", "Collector", "Updates", "WithCommunities", "Fraction")
	for _, f := range fracs {
		t.Row(f.Platform, f.Collector, f.Updates, f.WithComm, f.Fraction())
	}
	return t.String()
}

// RenderFigure4b renders quantiles of both ECDFs.
func RenderFigure4b(f Figure4b) string {
	t := stats.NewTable("Quantile", "Communities/update", "ASes/update")
	for _, q := range []float64{0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
		t.Row(q, f.CommunitiesPerUpdate.Quantile(q), f.ASesPerUpdate.Quantile(q))
	}
	return t.String()
}
