package core

import (
	"fmt"
	"sort"

	"bgpworms/internal/bgp"
	"bgpworms/internal/stats"
)

// TaggerIndex returns the position (0 = collector peer, len-1 = origin) of
// the conservative tagger of community c on a prepending-stripped path:
// the AS named by the community's high bits, taking the occurrence nearest
// the observer. Returns -1 when the community is off-path (§4.3).
func TaggerIndex(path []uint32, c bgp.Community) int {
	asn := uint32(c.ASN())
	for i, a := range path {
		if a == asn {
			return i
		}
	}
	return -1
}

// CommunityObservation is one (announcement, community) pair with its
// inferred propagation geometry.
type CommunityObservation struct {
	Community bgp.Community
	// PathLen is the stripped AS path length in hops.
	PathLen int
	// TaggerIdx is the conservative tagger position (-1 = off-path).
	TaggerIdx int
	// Blackhole marks communities identified as blackholing triggers.
	Blackhole bool
}

// Distance returns the AS-hop count the community traveled, counting the
// edge to the monitor (§4.3): a community tagged by the collector peer has
// distance 1. Off-path communities have no distance (-1).
func (o CommunityObservation) Distance() int {
	if o.TaggerIdx < 0 {
		return -1
	}
	return o.TaggerIdx + 1
}

// OnPath reports whether the community's AS appears on the path.
func (o CommunityObservation) OnPath() bool { return o.TaggerIdx >= 0 }

// PropagationAnalysis is the full §4.3 computation over a dataset.
type PropagationAnalysis struct {
	Observations []CommunityObservation
	// isBlackhole classifies community values.
	isBlackhole func(bgp.Community) bool
}

// IsBlackholeClassifier builds the classifier the paper uses: the RFC 7999
// value 666, plus a verified/inferred list (here, the generator registry).
func IsBlackholeClassifier(known []bgp.Community) func(bgp.Community) bool {
	set := make(map[bgp.Community]bool, len(known))
	for _, c := range known {
		set[c] = true
	}
	return func(c bgp.Community) bool {
		return c.Value() == bgp.BlackholeValue || set[c]
	}
}

// propAgg folds per-(announcement, community) observations. Observation
// order within a chunk matches the serial scan; chunk-ordered
// concatenation therefore reproduces the exact serial Observations
// slice. The classifier closure is shared read-only across workers.
type propAgg struct {
	obs         []CommunityObservation
	isBlackhole func(bgp.Community) bool
}

func newPropAgg(isBlackhole func(bgp.Community) bool) *propAgg {
	return &propAgg{isBlackhole: isBlackhole}
}

func (a *propAgg) add(u *Update, stripped []uint32) {
	if u.Withdraw || len(u.Communities) == 0 {
		return
	}
	for _, c := range u.Communities {
		if c.ASN() == 0 || c.ASN() == 0xFFFF {
			// Reserved ranges name no AS; they are "off-path private"
			// by construction and excluded from distance analysis.
			continue
		}
		a.obs = append(a.obs, CommunityObservation{
			Community: c,
			PathLen:   len(stripped),
			TaggerIdx: TaggerIndex(stripped, c),
			Blackhole: a.isBlackhole(c),
		})
	}
}

func (a *propAgg) merge(b *propAgg) { a.obs = append(a.obs, b.obs...) }

func (a *propAgg) finalize() *PropagationAnalysis {
	return &PropagationAnalysis{Observations: a.obs, isBlackhole: a.isBlackhole}
}

// AnalyzePropagation computes per-community propagation geometry for every
// announcement. knownBlackhole may be nil (then only :666 classifies).
func AnalyzePropagation(ds *Dataset, knownBlackhole []bgp.Community) *PropagationAnalysis {
	return DefaultPipeline.AnalyzePropagation(ds, knownBlackhole)
}

// AnalyzePropagation computes the propagation geometry over the worker
// pool.
func (p *Pipeline) AnalyzePropagation(ds *Dataset, knownBlackhole []bgp.Community) *PropagationAnalysis {
	cls := IsBlackholeClassifier(knownBlackhole)
	aggs := foldChunks(ds.Updates, p.workers(),
		func() *propAgg { return newPropAgg(cls) },
		func(a *propAgg, u *Update, stripped []uint32) { a.add(u, stripped) })
	merged := newPropAgg(cls)
	for _, a := range aggs {
		merged.merge(a)
	}
	return merged.finalize()
}

// Figure5a returns the propagation-distance ECDFs for all on-path
// communities and for the blackholing subset.
func (pa *PropagationAnalysis) Figure5a() (all, blackhole *stats.ECDF) {
	var a, b []float64
	for _, o := range pa.Observations {
		d := o.Distance()
		if d < 0 {
			continue
		}
		a = append(a, float64(d))
		if o.Blackhole {
			b = append(b, float64(d))
		}
	}
	return stats.NewECDF(a), stats.NewECDF(b)
}

// Figure5b returns, per AS-path length, the ECDF of relative propagation
// distance (distance / path length). Communities tagged by the monitor's
// direct peer are excluded; the edge to the monitor is counted (§4.3).
func (pa *PropagationAnalysis) Figure5b(minLen, maxLen int) map[int]*stats.ECDF {
	byLen := map[int][]float64{}
	for _, o := range pa.Observations {
		if o.TaggerIdx <= 0 || o.PathLen < minLen || o.PathLen > maxLen {
			continue
		}
		byLen[o.PathLen] = append(byLen[o.PathLen], float64(o.Distance())/float64(o.PathLen))
	}
	out := make(map[int]*stats.ECDF, len(byLen))
	for l, v := range byLen {
		out[l] = stats.NewECDF(v)
	}
	return out
}

// ValueShare is one bar of Figure 5c.
type ValueShare struct {
	Value uint16
	Count int
	// Share is the fraction of community observations in the class.
	Share float64
}

// Figure5c returns the top-K community values for off-path and on-path
// communities.
func (pa *PropagationAnalysis) Figure5c(k int) (offPath, onPath []ValueShare) {
	off := stats.NewCounter()
	on := stats.NewCounter()
	for _, o := range pa.Observations {
		key := fmt.Sprint(o.Community.Value())
		if o.OnPath() {
			on.Add(key)
		} else {
			off.Add(key)
		}
	}
	conv := func(c *stats.Counter) []ValueShare {
		var out []ValueShare
		for _, kv := range c.TopK(k) {
			var v int
			fmt.Sscan(kv.Key, &v)
			out = append(out, ValueShare{Value: uint16(v), Count: kv.Count, Share: float64(kv.Count) / float64(c.Total())})
		}
		return out
	}
	return conv(off), conv(on)
}

// OffPathStats summarizes off-path communities (Table 2 context): total
// distinct off-path community ASNs and how many are private.
func (pa *PropagationAnalysis) OffPathStats() (distinct, private int) {
	seen := map[uint16]bool{}
	for _, o := range pa.Observations {
		if o.OnPath() {
			continue
		}
		asn := o.Community.ASN()
		if seen[asn] {
			continue
		}
		seen[asn] = true
		distinct++
		if bgp.IsPrivateASN(uint32(asn)) {
			private++
		}
	}
	return distinct, private
}

// TransitReport is the §4.3 transit-propagation count.
type TransitReport struct {
	// TransitASes appear on some path in a non-origin position.
	TransitASes int
	// Propagators relayed at least one foreign community (excluding
	// direct collector peers, which have collector-specific configs).
	Propagators int
}

// Fraction returns propagators / transit.
func (t TransitReport) Fraction() float64 {
	if t.TransitASes == 0 {
		return 0
	}
	return float64(t.Propagators) / float64(t.TransitASes)
}

// transitAgg folds the transit / propagator AS sets; both merge by
// union.
type transitAgg struct {
	transit map[uint32]bool
	prop    map[uint32]bool
}

func newTransitAgg() *transitAgg {
	return &transitAgg{transit: make(map[uint32]bool), prop: make(map[uint32]bool)}
}

func (a *transitAgg) add(u *Update, stripped []uint32) {
	if u.Withdraw {
		return
	}
	for i, as := range stripped {
		if i < len(stripped)-1 {
			a.transit[as] = true
		}
	}
	for _, c := range u.Communities {
		if c.ASN() == 0 || c.ASN() == 0xFFFF {
			continue
		}
		ti := TaggerIndex(stripped, c)
		for j := 1; j < ti; j++ {
			a.prop[stripped[j]] = true
		}
	}
}

func (a *transitAgg) merge(b *transitAgg) {
	for k := range b.transit {
		a.transit[k] = true
	}
	for k := range b.prop {
		a.prop[k] = true
	}
}

func (a *transitAgg) finalize() TransitReport {
	return TransitReport{TransitASes: len(a.transit), Propagators: len(a.prop)}
}

// TransitPropagators computes §4.3's headline number: how many transit
// ASes forward received communities onward. An AS at position j counts as
// a propagator when 0 < j < taggerIdx for some observed community (it sat
// strictly between the tagger and the collector's direct peer).
func TransitPropagators(ds *Dataset) TransitReport { return DefaultPipeline.TransitPropagators(ds) }

// TransitPropagators computes the transit-propagator sets over the
// worker pool.
func (p *Pipeline) TransitPropagators(ds *Dataset) TransitReport {
	aggs := foldChunks(ds.Updates, p.workers(),
		newTransitAgg,
		func(a *transitAgg, u *Update, stripped []uint32) { a.add(u, stripped) })
	merged := newTransitAgg()
	for _, a := range aggs {
		merged.merge(a)
	}
	return merged.finalize()
}

// RenderFigure5a renders the two ECDFs at the paper's anchor points.
func RenderFigure5a(all, blackhole *stats.ECDF) string {
	t := stats.NewTable("Hops<=", "All", "Blackholing")
	for _, h := range []float64{1, 2, 3, 4, 5, 6, 8, 10, 12} {
		t.Row(h, all.At(h), blackhole.At(h))
	}
	return t.String()
}

// RenderFigure5b renders relative-distance quantiles per path length.
func RenderFigure5b(m map[int]*stats.ECDF) string {
	lens := make([]int, 0, len(m))
	for l := range m {
		lens = append(lens, l)
	}
	sort.Ints(lens)
	t := stats.NewTable("PathLen", "N", "p25", "p50", "p75", "p90")
	for _, l := range lens {
		e := m[l]
		t.Row(l, e.Len(), e.Quantile(0.25), e.Quantile(0.5), e.Quantile(0.75), e.Quantile(0.9))
	}
	return t.String()
}

// RenderFigure5c renders both top-10 bars.
func RenderFigure5c(off, on []ValueShare) string {
	t := stats.NewTable("Rank", "OffPathValue", "OffShare", "OnPathValue", "OnShare")
	n := len(off)
	if len(on) > n {
		n = len(on)
	}
	for i := 0; i < n; i++ {
		var ov, os, nv, ns any = "", "", "", ""
		if i < len(off) {
			ov, os = off[i].Value, off[i].Share
		}
		if i < len(on) {
			nv, ns = on[i].Value, on[i].Share
		}
		t.Row(i+1, ov, os, nv, ns)
	}
	return t.String()
}
