package core_test

// Golden-file regression tests for the fused analysis figures: the
// paper-facing numbers (Table 1/2, Fig 3-6) computed from a pinned tiny
// world are serialized to testdata/golden/*.json and compared byte for
// byte. Scale and engine work cannot silently shift the reproduction's
// numbers: any change here must be reviewed and re-recorded with
//
//	go test ./internal/core -run TestGolden -update
//
// The fixture runs the default serial engine, so these files also pin
// the serial delivery order the collector archives depend on.

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"bgpworms/internal/core"
	"bgpworms/internal/gen"
	"bgpworms/internal/stats"
)

var update = flag.Bool("update", false, "rewrite the golden files with current results")

var (
	goldenOnce sync.Once
	goldenDS   *core.Dataset
	goldenReg  *gen.Registry
	goldenErr  error
)

func goldenFixture(t *testing.T) (*core.Dataset, *gen.Registry) {
	t.Helper()
	goldenOnce.Do(func() {
		p := gen.Tiny()
		w, err := gen.Build(p)
		if err != nil {
			goldenErr = err
			return
		}
		if _, err := w.RunChurn(); err != nil {
			goldenErr = err
			return
		}
		goldenDS = core.FromCollectors(w.Collectors)
		goldenReg = w.Registry
	})
	if goldenErr != nil {
		t.Fatal(goldenErr)
	}
	return goldenDS, goldenReg
}

// ecdfSummary pins a distribution by its size and shape statistics.
type ecdfSummary struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	P25  float64 `json:"p25"`
	P50  float64 `json:"p50"`
	P75  float64 `json:"p75"`
	P90  float64 `json:"p90"`
	Max  float64 `json:"max"`
}

func summarizeECDF(e *stats.ECDF) ecdfSummary {
	if e == nil || e.Len() == 0 {
		return ecdfSummary{}
	}
	return ecdfSummary{
		N:    e.Len(),
		Mean: e.Mean(),
		P25:  e.Quantile(0.25),
		P50:  e.Quantile(0.50),
		P75:  e.Quantile(0.75),
		P90:  e.Quantile(0.90),
		Max:  e.Quantile(1),
	}
}

func checkGolden(t *testing.T, name string, v any) {
	t.Helper()
	got, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to record): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from the recorded paper numbers.\ngot:\n%s\nwant:\n%s\nIf the change is intended, re-record with -update.", name, got, want)
	}
}

func TestGoldenTable1(t *testing.T) {
	ds, _ := goldenFixture(t)
	checkGolden(t, "table1.json", core.Table1(ds))
}

func TestGoldenTable2(t *testing.T) {
	ds, _ := goldenFixture(t)
	checkGolden(t, "table2.json", core.Table2(ds))
}

func TestGoldenFig3Evolution(t *testing.T) {
	pts, err := gen.Evolution(gen.Tiny(), []int{2010, 2014, 2018}, func(w *gen.Internet) (int, int, int, int) {
		return core.EvolutionMetrics(core.FromCollectors(w.Collectors))
	})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig3.json", pts)
}

func TestGoldenFig4(t *testing.T) {
	ds, _ := goldenFixture(t)
	f4b := core.ComputeFigure4b(ds)
	checkGolden(t, "fig4.json", map[string]any{
		"collector_fractions":    core.Figure4a(ds),
		"overall_share":          core.OverallCommunityShare(ds),
		"communities_per_update": summarizeECDF(f4b.CommunitiesPerUpdate),
		"ases_per_update":        summarizeECDF(f4b.ASesPerUpdate),
	})
}

func TestGoldenFig5(t *testing.T) {
	ds, reg := goldenFixture(t)
	pa := core.AnalyzePropagation(ds, reg.All())
	all, bh := pa.Figure5a()
	byLen := map[int]ecdfSummary{}
	for l, e := range pa.Figure5b(3, 10) {
		byLen[l] = summarizeECDF(e)
	}
	off, on := pa.Figure5c(10)
	distinct, private := pa.OffPathStats()
	checkGolden(t, "fig5.json", map[string]any{
		"distance_all":        summarizeECDF(all),
		"distance_blackhole":  summarizeECDF(bh),
		"relative_by_pathlen": byLen,
		"top_values_offpath":  off,
		"top_values_onpath":   on,
		"offpath_distinct":    distinct,
		"offpath_private":     private,
		"transit":             core.TransitPropagators(ds),
	})
}

func TestGoldenFig6(t *testing.T) {
	ds, _ := goldenFixture(t)
	fi := core.InferFiltering(ds)
	checkGolden(t, "fig6.json", map[string]any{
		"summary": fi.Summarize(10),
		"hexbin":  fi.Hexbin(1, 4),
	})
}
