// Package core implements the paper's primary contribution: the BGP
// community propagation analysis pipeline of §4. It consumes route
// collector data (in-memory observations or MRT byte streams), normalizes
// AS paths (prepending removal), classifies communities as on-/off-path,
// measures propagation distances (Fig. 5), counts transit propagators
// (§4.3), infers per-edge community filtering from indication counts
// (Fig. 6), and produces the dataset summaries of Tables 1 and 2 and the
// use statistics of Figures 3 and 4.
package core

import (
	"io"
	"net/netip"
	"sort"
	"time"

	"bgpworms/internal/bgp"
	"bgpworms/internal/collector"
)

// Update is one normalized routing observation at a collector.
type Update struct {
	Platform  string
	Collector string
	PeerAS    uint32
	Time      time.Time
	Prefix    netip.Prefix
	// ASPath is nearest-AS-first (peer first, origin last), raw (with
	// prepending).
	ASPath []uint32
	// Communities is the normalized community set.
	Communities bgp.CommunitySet
	// Withdraw marks withdrawals; attribute fields are empty for them.
	Withdraw bool
}

// StrippedPath returns the path with consecutive duplicates (prepending)
// collapsed — the normalization §4.1 applies before all analysis.
func (u *Update) StrippedPath() []uint32 {
	return bgp.Path(u.ASPath...).StripPrepending()
}

// OriginAS returns the originating AS (0 for empty paths).
func (u *Update) OriginAS() uint32 {
	if len(u.ASPath) == 0 {
		return 0
	}
	return u.ASPath[len(u.ASPath)-1]
}

// CollectorMeta identifies one collector and its peering sessions.
type CollectorMeta struct {
	Platform string
	Name     string
	// PeerIPs is the number of peering sessions ("IP peers" in Table 1).
	PeerIPs int
	// PeerASNs are the distinct ASes peered with.
	PeerASNs map[uint32]bool
}

// Dataset is the pipeline input: a month of updates across collectors.
type Dataset struct {
	Updates    []Update
	Collectors []CollectorMeta
}

// FromCollectors converts attached collectors' archives into a Dataset.
func FromCollectors(cs []*collector.Collector) *Dataset {
	ds := &Dataset{}
	for _, c := range cs {
		meta := CollectorMeta{
			Platform: string(c.Platform),
			Name:     c.Name,
			PeerASNs: make(map[uint32]bool),
		}
		for _, p := range c.Peers() {
			meta.PeerIPs++
			meta.PeerASNs[uint32(p.AS)] = true
		}
		ds.Collectors = append(ds.Collectors, meta)
		for _, ob := range c.Observations() {
			u := Update{
				Platform:  string(c.Platform),
				Collector: c.Name,
				PeerAS:    uint32(ob.PeerAS),
				Time:      ob.Time,
				Prefix:    ob.Prefix,
			}
			if ob.Route == nil {
				u.Withdraw = true
			} else {
				u.ASPath = ob.Route.ASPath.Sequence()
				u.Communities = ob.Route.Communities.Clone()
			}
			ds.Updates = append(ds.Updates, u)
		}
	}
	return ds
}

// ReadMRTUpdates parses a BGP4MP update stream (as written by
// collector.WriteUpdatesMRT) into a Dataset fragment for one collector.
// It materializes the stream; use StreamMRTUpdates to classify without
// retaining the update slice.
func ReadMRTUpdates(platform, collectorName string, r io.Reader) (*Dataset, error) {
	ds := &Dataset{}
	meta, err := StreamMRTUpdates(platform, collectorName, r, func(u *Update) error {
		ds.Updates = append(ds.Updates, *u)
		return nil
	})
	if err != nil {
		return nil, err
	}
	ds.Collectors = append(ds.Collectors, meta)
	return ds, nil
}

// Merge appends other's updates and collectors into ds.
func (ds *Dataset) Merge(other *Dataset) {
	ds.Updates = append(ds.Updates, other.Updates...)
	ds.Collectors = append(ds.Collectors, other.Collectors...)
}

// Announcements returns only non-withdrawal updates.
func (ds *Dataset) Announcements() []Update {
	out := make([]Update, 0, len(ds.Updates))
	for _, u := range ds.Updates {
		if !u.Withdraw {
			out = append(out, u)
		}
	}
	return out
}

// Platforms lists distinct platforms in first-seen order.
func (ds *Dataset) Platforms() []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range ds.Collectors {
		if !seen[c.Platform] {
			seen[c.Platform] = true
			out = append(out, c.Platform)
		}
	}
	return out
}

// CollectorPeers returns the union of peer ASNs across collectors of a
// platform ("" = all platforms).
func (ds *Dataset) CollectorPeers(platform string) map[uint32]bool {
	return collectorPeers(ds.Collectors, platform)
}

// routeKey identifies one (collector, peer, prefix) table slot.
type routeKey struct {
	col    string
	peer   uint32
	prefix netip.Prefix
}

// latestAgg folds the update stream down to the final route per
// (collector, peer, prefix). The first-seen order list makes
// chunk-ordered merging reproduce the serial scan exactly: a later
// chunk's entry overrides an earlier chunk's (it came later in the
// stream), and keys keep their global first-seen position.
type latestAgg struct {
	last  map[routeKey]Update
	order []routeKey
}

func newLatestAgg() *latestAgg { return &latestAgg{last: make(map[routeKey]Update)} }

func (a *latestAgg) add(u *Update) {
	k := routeKey{u.Collector, u.PeerAS, u.Prefix}
	if _, seen := a.last[k]; !seen {
		a.order = append(a.order, k)
	}
	a.last[k] = *u
}

func (a *latestAgg) merge(b *latestAgg) {
	for _, k := range b.order {
		if _, seen := a.last[k]; !seen {
			a.order = append(a.order, k)
		}
		a.last[k] = b.last[k]
	}
}

func (a *latestAgg) finalize() []Update {
	out := make([]Update, 0, len(a.order))
	for _, k := range a.order {
		if u := a.last[k]; !u.Withdraw {
			out = append(out, u)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Collector != out[j].Collector {
			return out[i].Collector < out[j].Collector
		}
		return out[i].PeerAS < out[j].PeerAS
	})
	return out
}

// LatestRoutes reduces the update stream to the final route per
// (collector, peer, prefix) — the "at the same time" concurrent view the
// §4.4 filter inference iterates over. Withdrawn entries are removed.
func (ds *Dataset) LatestRoutes() []Update { return DefaultPipeline.LatestRoutes(ds) }

// LatestRoutes computes the concurrent view over the worker pool.
func (p *Pipeline) LatestRoutes(ds *Dataset) []Update {
	aggs := foldChunks(ds.Updates, p.workers(),
		newLatestAgg,
		func(a *latestAgg, u *Update, _ []uint32) { a.add(u) })
	merged := newLatestAgg()
	for _, a := range aggs {
		merged.merge(a)
	}
	return merged.finalize()
}
