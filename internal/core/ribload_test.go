package core

import (
	"bytes"
	"testing"

	"bgpworms/internal/gen"
)

func buildRIBViews(t *testing.T) (*gen.Internet, []RIBView) {
	t.Helper()
	w, err := gen.Build(gen.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.RunChurn(); err != nil {
		t.Fatal(err)
	}
	var views []RIBView
	for _, c := range w.Collectors {
		var buf bytes.Buffer
		if _, err := c.WriteRIBSnapshotMRT(&buf, gen.BaseTime.AddDate(0, 1, 0)); err != nil {
			t.Fatal(err)
		}
		vs, err := ReadMRTRIB(string(c.Platform), c.Name, &buf)
		if err != nil {
			t.Fatal(err)
		}
		views = append(views, vs...)
	}
	return w, views
}

func TestReadMRTRIBRoundTrip(t *testing.T) {
	_, views := buildRIBViews(t)
	if len(views) == 0 {
		t.Fatal("no RIB views")
	}
	for _, v := range views {
		if v.PeerAS == 0 || len(v.Update.ASPath) == 0 {
			t.Fatalf("malformed view: %+v", v)
		}
		if v.Update.Withdraw {
			t.Fatal("RIB views cannot be withdrawals")
		}
	}
}

func TestDatasetFromRIBRunsAnalyses(t *testing.T) {
	w, views := buildRIBViews(t)
	ds := DatasetFromRIB(views)
	if len(ds.Collectors) != len(w.Collectors) {
		t.Fatalf("collectors=%d", len(ds.Collectors))
	}
	// The §4 analyses run unchanged on RIB state.
	rows := Table1(ds)
	if rows[len(rows)-1].Communities == 0 {
		t.Fatal("no communities in RIB-derived dataset")
	}
	pa := AnalyzePropagation(ds, w.Registry.All())
	all, _ := pa.Figure5a()
	if all.Len() == 0 {
		t.Fatal("no propagation distances from RIB state")
	}
	if rep := TransitPropagators(ds); rep.Propagators == 0 {
		t.Fatal("no propagators visible in RIB state")
	}
}

func TestTableEntryCount(t *testing.T) {
	_, views := buildRIBViews(t)
	counts := TableEntryCount(views)
	if len(counts) == 0 {
		t.Fatal("no collectors counted")
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != len(views) {
		t.Fatalf("count mismatch: %d vs %d", total, len(views))
	}
}

// The cross-check between data sources: every RIB entry must have a
// matching latest update on the same session (the collector's Adj-RIB-In
// is exactly the replay of its update stream).
func TestCompareUpdateVsRIBConsistency(t *testing.T) {
	w, views := buildRIBViews(t)
	ds := FromCollectors(w.Collectors)
	if missing := CompareUpdateVsRIB(ds, views); missing != 0 {
		t.Fatalf("%d RIB entries lack matching updates", missing)
	}
}
