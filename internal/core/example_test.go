package core_test

import (
	"fmt"

	"bgpworms/internal/core"
	"bgpworms/internal/gen"
)

// ExamplePipeline_Analyze runs the full §4 passive pipeline — every
// table and figure in one fused parallel pass — over a freshly
// generated tiny Internet. Results are bit-identical for any worker
// count.
func ExamplePipeline_Analyze() {
	w, err := gen.Build(gen.Tiny())
	if err != nil {
		panic(err)
	}
	ds := core.FromCollectors(w.Collectors)
	a := core.NewPipeline(4).Analyze(ds, w.Registry.All())
	fmt.Printf("Table 1 rows (4 platforms + total): %d\n", len(a.Table1))
	fmt.Printf("majority of updates carry communities: %v\n", a.Share > 0.5)
	// Output:
	// Table 1 rows (4 platforms + total): 5
	// majority of updates carry communities: true
}
