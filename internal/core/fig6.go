package core

import (
	"net/netip"
	"sort"

	"bgpworms/internal/bgp"
	"bgpworms/internal/stats"
	"bgpworms/internal/topo"
)

// Edge is a directed AS adjacency (From forwarded to To).
type Edge struct {
	From, To uint32
}

// Indications accumulates the §4.4 per-edge evidence counts.
type Indications struct {
	// Forwarded counts (community, path) events where From demonstrably
	// relayed a foreign community to To.
	Forwarded int
	// Filtered counts events where the community was known to reach From
	// but was absent beyond it toward To.
	Filtered int
	// Added counts community-added indications (the tagger's egress edge).
	Added int
	// Paths counts concurrent routes traversing the edge (visibility).
	Paths int
}

func (in *Indications) merge(o *Indications) {
	in.Forwarded += o.Forwarded
	in.Filtered += o.Filtered
	in.Added += o.Added
	in.Paths += o.Paths
}

// FilterInference is the Figure 6 computation output.
type FilterInference struct {
	Edges map[Edge]*Indications
}

func newFilterInference() *FilterInference {
	return &FilterInference{Edges: make(map[Edge]*Indications)}
}

func (fi *FilterInference) get(e Edge) *Indications {
	in := fi.Edges[e]
	if in == nil {
		in = &Indications{}
		fi.Edges[e] = in
	}
	return in
}

func (fi *FilterInference) merge(o *FilterInference) {
	for e, in := range o.Edges {
		fi.get(e).merge(in)
	}
}

// inferPrefix runs the §4.4 heuristic over the concurrent announcements
// of one prefix, accumulating edge indications into fi. Every
// contribution is a commutative count, so the result is independent of
// announcement and community iteration order — the property that makes
// prefix-sharded parallel execution bit-identical to the serial scan.
func (fi *FilterInference) inferPrefix(anns []Update) {
	// Path visibility counts (origin-first edges).
	for i := range anns {
		o := originFirst(anns[i].StrippedPath())
		for k := 0; k+1 < len(o); k++ {
			fi.get(Edge{o[k], o[k+1]}).Paths++
		}
	}
	// Candidate communities for this prefix.
	commSet := map[bgp.Community]bool{}
	for i := range anns {
		for _, c := range anns[i].Communities {
			if c.ASN() != 0 && c.ASN() != 0xFFFF {
				commSet[c] = true
			}
		}
	}
	for c := range commSet {
		// Receivers: tagger and everyone after it on each carrying
		// path.
		received := map[uint32]bool{}
		for i := range anns {
			if !anns[i].Communities.Has(c) {
				continue
			}
			path := anns[i].StrippedPath()
			ti := TaggerIndex(path, c)
			if ti < 0 {
				continue // off-path: no geometry to reason about
			}
			o := originFirst(path)
			oi := len(o) - 1 - ti
			// Added indication on the tagger's egress edge.
			if oi+1 < len(o) {
				fi.get(Edge{o[oi], o[oi+1]}).Added++
			}
			// Forward indications: each AS after the tagger that
			// passed the community on (not counting the collector
			// session, which is config-special per §4.3 footnote).
			for k := oi + 1; k+1 < len(o); k++ {
				fi.get(Edge{o[k], o[k+1]}).Forwarded++
			}
			for k := oi; k < len(o); k++ {
				received[o[k]] = true
			}
		}
		if len(received) == 0 {
			continue
		}
		// Filtered indications: announcements of the same prefix
		// without c that pass through a known receiver.
		for i := range anns {
			if anns[i].Communities.Has(c) {
				continue
			}
			o := originFirst(anns[i].StrippedPath())
			// The LAST receiver on the path is where the community
			// was dropped toward the next hop.
			for k := len(o) - 2; k >= 0; k-- {
				if received[o[k]] {
					fi.get(Edge{o[k], o[k+1]}).Filtered++
					break
				}
			}
		}
	}
}

// InferFiltering runs the §4.4 heuristic over the dataset's concurrent
// view (latest route per collector peer): for every prefix and community,
// ASes downstream of the conservative tagger are known receivers; an
// announcement of the same prefix passing through a known receiver without
// the community yields a filtered indication on the egress edge where it
// went missing.
func InferFiltering(ds *Dataset) *FilterInference { return DefaultPipeline.InferFiltering(ds) }

// InferFiltering computes the Figure 6 inference with prefixes sharded
// across the worker pool.
func (p *Pipeline) InferFiltering(ds *Dataset) *FilterInference {
	return p.inferFiltering(p.LatestRoutes(ds))
}

// inferFiltering shards the concurrent route view by prefix: each worker
// owns a disjoint set of prefix groups and accumulates a private edge
// map; the per-worker maps merge by summation.
func (p *Pipeline) inferFiltering(routes []Update) *FilterInference {
	byPrefix := make(map[netip.Prefix][]Update)
	var order []netip.Prefix
	for _, u := range routes {
		if _, seen := byPrefix[u.Prefix]; !seen {
			order = append(order, u.Prefix)
		}
		byPrefix[u.Prefix] = append(byPrefix[u.Prefix], u)
	}

	w := p.workers()
	shards := chunkRanges(len(order), w)
	partial := make([]*FilterInference, len(shards))
	parallelDo(len(shards), w, func(i int) {
		fi := newFilterInference()
		for _, pfx := range order[shards[i][0]:shards[i][1]] {
			fi.inferPrefix(byPrefix[pfx])
		}
		partial[i] = fi
	})
	fi := newFilterInference()
	for _, part := range partial {
		fi.merge(part)
	}
	return fi
}

func originFirst(path []uint32) []uint32 {
	out := make([]uint32, len(path))
	for i, a := range path {
		out[len(path)-1-i] = a
	}
	return out
}

// FilterSummary holds the §4.4 headline percentages.
type FilterSummary struct {
	TotalEdges      int
	WithForwardSign int
	WithFilterSign  int
	// AtThreshold restricts to edges with >= MinPaths concurrent paths.
	MinPaths            int
	EdgesAtThreshold    int
	ForwardAtThreshold  int
	FilteredAtThreshold int
}

// Summarize computes edge-level statistics; minPaths mirrors the paper's
// ">= 100 AS paths" visibility threshold (scaled for synthetic data).
func (fi *FilterInference) Summarize(minPaths int) FilterSummary {
	s := FilterSummary{MinPaths: minPaths}
	for _, in := range fi.Edges {
		s.TotalEdges++
		if in.Forwarded > 0 {
			s.WithForwardSign++
		}
		if in.Filtered > 0 {
			s.WithFilterSign++
		}
		if in.Paths >= minPaths {
			s.EdgesAtThreshold++
			if in.Forwarded > 0 {
				s.ForwardAtThreshold++
			}
			if in.Filtered > 0 {
				s.FilteredAtThreshold++
			}
		}
	}
	return s
}

// Hexbin produces the Figure 6b log-log density: x = filtered+1, y =
// forwarded+1 per edge (edges with either indication and >= minPaths
// paths).
func (fi *FilterInference) Hexbin(minPaths, cellsPerDecade int) []stats.Bin {
	h := stats.NewLogBin2D(cellsPerDecade)
	for _, in := range fi.Edges {
		if in.Paths < minPaths || (in.Forwarded == 0 && in.Filtered == 0) {
			continue
		}
		h.Add(float64(in.Filtered), float64(in.Forwarded))
	}
	return h.Bins()
}

// MixedEdges returns edges showing BOTH forward and filter indications —
// the paper's "mixed picture" population.
func (fi *FilterInference) MixedEdges(minPaths int) []Edge {
	var out []Edge
	for e, in := range fi.Edges {
		if in.Paths >= minPaths && in.Forwarded > 0 && in.Filtered > 0 {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// RelBreakdown cross-references indications with AS relationships (the
// CAIDA join the paper attempts): counts of forward-/filter-signed edges
// per relationship of To as seen from From.
type RelBreakdown struct {
	Rel             topo.Rel
	Edges           int
	WithForwardSign int
	WithFilterSign  int
}

// ByRelationship joins edge indications with graph relationships.
func (fi *FilterInference) ByRelationship(g *topo.Graph) []RelBreakdown {
	acc := map[topo.Rel]*RelBreakdown{}
	for _, r := range []topo.Rel{topo.RelCustomer, topo.RelPeer, topo.RelProvider} {
		acc[r] = &RelBreakdown{Rel: r}
	}
	for e, in := range fi.Edges {
		rel := g.Relationship(topo.ASN(e.From), topo.ASN(e.To))
		b, ok := acc[rel]
		if !ok {
			continue
		}
		b.Edges++
		if in.Forwarded > 0 {
			b.WithForwardSign++
		}
		if in.Filtered > 0 {
			b.WithFilterSign++
		}
	}
	out := []RelBreakdown{*acc[topo.RelCustomer], *acc[topo.RelPeer], *acc[topo.RelProvider]}
	return out
}

// RenderFilterSummary renders the §4.4 percentages.
func RenderFilterSummary(s FilterSummary) string {
	t := stats.NewTable("Metric", "Value")
	t.Row("edges observed", s.TotalEdges)
	t.Row("w/ forward indication", stats.Pct(s.WithForwardSign, s.TotalEdges))
	t.Row("w/ filter indication", stats.Pct(s.WithFilterSign, s.TotalEdges))
	t.Row("edges >= min paths", s.EdgesAtThreshold)
	t.Row("forward @ threshold", stats.Pct(s.ForwardAtThreshold, s.EdgesAtThreshold))
	t.Row("filter @ threshold", stats.Pct(s.FilteredAtThreshold, s.EdgesAtThreshold))
	return t.String()
}
