package core

import (
	"runtime"
	"sync"

	"bgpworms/internal/bgp"
	"bgpworms/internal/conc"
)

// Pipeline executes the §4 analyses over a worker pool. Work is sharded
// two ways, matching the two shapes of computation in the paper:
//
//   - per-update folds (Tables 1/2, Figures 4/5, transit propagators)
//     split the update stream into contiguous chunks, fold each chunk
//     into a partial aggregate on its own worker, and merge the partial
//     aggregates in chunk order;
//   - per-prefix reductions (the Figure 6 filter inference) shard the
//     concurrent route view by prefix, process each shard independently,
//     and merge the per-edge indication counts by summation.
//
// Both merge strategies are deterministic: chunk-ordered merging
// reproduces the exact serial fold order, and indication counts commute.
// Every result is therefore bit-identical across worker counts; the
// determinism tests assert workers=1 and workers=8 agree on rendered
// output.
type Pipeline struct {
	// Workers is the parallelism degree; 0 or negative means
	// runtime.GOMAXPROCS(0).
	Workers int
}

// NewPipeline returns a pipeline with the given worker count (0 = one
// worker per available CPU).
func NewPipeline(workers int) *Pipeline { return &Pipeline{Workers: workers} }

// DefaultPipeline is used by the package-level convenience functions
// (Table1, Figure4a, ...); it sizes itself to the machine.
var DefaultPipeline = &Pipeline{}

func (p *Pipeline) workers() int {
	if p == nil || p.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p.Workers
}

// chunkRanges splits [0, n) into at most w near-equal contiguous ranges.
func chunkRanges(n, w int) [][2]int { return conc.Chunks(n, w) }

// foldChunks folds contiguous chunks of updates concurrently, one
// aggregate per chunk, and returns the aggregates in chunk order so the
// caller can merge them deterministically. fold receives each update
// together with its prepending-stripped AS path (computed once per
// update, shared by every consumer).
func foldChunks[A any](updates []Update, workers int, mk func() A, fold func(agg A, u *Update, stripped []uint32)) []A {
	ranges := chunkRanges(len(updates), workers)
	aggs := make([]A, len(ranges))
	var wg sync.WaitGroup
	for i, r := range ranges {
		wg.Add(1)
		go func(i int, lo, hi int) {
			defer wg.Done()
			agg := mk()
			for j := lo; j < hi; j++ {
				u := &updates[j]
				fold(agg, u, u.StrippedPath())
			}
			aggs[i] = agg
		}(i, r[0], r[1])
	}
	wg.Wait()
	return aggs
}

// parallelDo runs fn(i) for i in [0, n) over the pipeline's workers.
func parallelDo(n, workers int, fn func(i int)) { conc.Do(n, workers, fn) }

// Analysis bundles every passive-measurement output of §4, produced in a
// single fused pass over the update stream (plus the concurrent-view
// reduction for Figure 6). Use Pipeline.Analyze when more than one
// figure is needed: the fused pass strips each AS path once and feeds
// all aggregates, where the per-figure entry points each rescan the
// dataset.
type Analysis struct {
	Table1  []Table1Row
	Table2  []Table2Row
	Fig4a   []CollectorFraction
	Share   float64
	Fig4b   Figure4b
	Prop    *PropagationAnalysis
	Transit TransitReport
	Filter  *FilterInference
}

// Analyze runs the full §4 pipeline fused: one chunked parallel fold
// builds every per-update aggregate, then the Figure 6 inference runs
// over the latest-route view sharded by prefix.
func (p *Pipeline) Analyze(ds *Dataset, knownBlackhole []bgp.Community) *Analysis {
	cls := IsBlackholeClassifier(knownBlackhole)
	accs := foldChunks(ds.Updates, p.workers(),
		func() *Accumulator { return newAccumulatorFor(cls) },
		func(a *Accumulator, u *Update, stripped []uint32) { a.addStripped(u, stripped) })
	var acc *Accumulator
	if len(accs) == 0 {
		acc = newAccumulatorFor(cls)
	} else {
		acc = accs[0]
		for _, b := range accs[1:] {
			acc.Merge(b)
		}
	}
	for _, c := range ds.Collectors {
		acc.AddCollector(c)
	}
	return acc.Analysis(p)
}
