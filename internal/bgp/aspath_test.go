package bgp

import (
	"testing"
	"testing/quick"
)

func TestPathBasics(t *testing.T) {
	p := Path(4, 3, 2, 1)
	if p.HopLength() != 4 {
		t.Fatalf("HopLength=%d", p.HopLength())
	}
	if p.Origin() != 1 || p.First() != 4 {
		t.Fatalf("origin=%d first=%d", p.Origin(), p.First())
	}
	if !p.Contains(3) || p.Contains(9) {
		t.Fatal("Contains wrong")
	}
	var empty ASPath
	if empty.Origin() != 0 || empty.First() != 0 || empty.HopLength() != 0 {
		t.Fatal("empty path accessors wrong")
	}
	if Path() != nil {
		t.Fatal("Path() should be nil")
	}
}

func TestHopLengthCountsSetAsOne(t *testing.T) {
	p := ASPath{
		{Type: SegmentSequence, ASNs: []uint32{10, 20}},
		{Type: SegmentSet, ASNs: []uint32{30, 40, 50}},
	}
	if p.HopLength() != 3 {
		t.Fatalf("HopLength=%d want 3", p.HopLength())
	}
}

func TestPrepend(t *testing.T) {
	p := Path(2, 1)
	q := p.Prepend(3, 3)
	want := []uint32{3, 3, 3, 2, 1}
	got := q.Sequence()
	if len(got) != len(want) {
		t.Fatalf("seq=%v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("seq=%v want %v", got, want)
		}
	}
	// Original untouched.
	if p.HopLength() != 2 {
		t.Fatal("Prepend mutated receiver")
	}
	// Prepend onto empty and onto leading set.
	if e := (ASPath)(nil).Prepend(7, 2); e.HopLength() != 2 || e.Origin() != 7 {
		t.Fatalf("prepend onto empty: %v", e)
	}
	withSet := ASPath{{Type: SegmentSet, ASNs: []uint32{1, 2}}}
	ps := withSet.Prepend(9, 1)
	if ps[0].Type != SegmentSequence || ps[0].ASNs[0] != 9 {
		t.Fatalf("prepend onto set: %v", ps)
	}
	if n := Path(1).Prepend(2, 0); n.HopLength() != 1 {
		t.Fatal("prepend zero should be identity")
	}
}

func TestStripPrepending(t *testing.T) {
	p := Path(3, 3, 3, 2, 2, 1)
	got := p.StripPrepending()
	want := []uint32{3, 2, 1}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	// Non-consecutive repeats (poisoning) survive.
	p2 := Path(3, 2, 3, 1)
	if len(p2.StripPrepending()) != 4 {
		t.Fatal("non-consecutive repeats must be kept")
	}
}

func TestIsPrivateASN(t *testing.T) {
	cases := []struct {
		asn  uint32
		want bool
	}{
		{0, true}, {1, false}, {64511, false}, {64512, true}, {65534, true},
		{65535, true}, {65536, false}, {4199999999, false}, {4200000000, true},
		{4294967294, true}, {3320, false},
	}
	for _, c := range cases {
		if got := IsPrivateASN(c.asn); got != c.want {
			t.Errorf("IsPrivateASN(%d)=%v want %v", c.asn, got, c.want)
		}
	}
}

func TestASPathString(t *testing.T) {
	p := ASPath{
		{Type: SegmentSequence, ASNs: []uint32{10, 20}},
		{Type: SegmentSet, ASNs: []uint32{30, 40}},
	}
	if p.String() != "10 20 {30,40}" {
		t.Fatalf("String=%q", p.String())
	}
}

// Property: StripPrepending never lengthens the sequence and preserves the
// origin and first AS.
func TestProperty_StripPrepending(t *testing.T) {
	f := func(asns []uint32) bool {
		if len(asns) == 0 {
			return true
		}
		p := Path(asns...)
		s := p.StripPrepending()
		if len(s) > len(asns) || len(s) == 0 {
			return false
		}
		return s[0] == asns[0] && s[len(s)-1] == asns[len(asns)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Prepend(a, n) always increases HopLength by n and keeps origin.
func TestProperty_Prepend(t *testing.T) {
	f := func(asns []uint32, a uint32, n uint8) bool {
		k := int(n % 8)
		p := Path(asns...)
		q := p.Prepend(a, k)
		return q.HopLength() == p.HopLength()+k && q.Origin() == p.Origin() || (len(asns) == 0 && q.Origin() == a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
