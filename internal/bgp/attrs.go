package bgp

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Origin is the ORIGIN well-known mandatory attribute.
type Origin uint8

// Origin values (RFC 4271).
const (
	OriginIGP        Origin = 0
	OriginEGP        Origin = 1
	OriginIncomplete Origin = 2
)

// String renders the conventional single-letter display form.
func (o Origin) String() string {
	switch o {
	case OriginIGP:
		return "i"
	case OriginEGP:
		return "e"
	default:
		return "?"
	}
}

// Path attribute type codes.
const (
	AttrTypeOrigin           uint8 = 1
	AttrTypeASPath           uint8 = 2
	AttrTypeNextHop          uint8 = 3
	AttrTypeMED              uint8 = 4
	AttrTypeLocalPref        uint8 = 5
	AttrTypeAtomicAggregate  uint8 = 6
	AttrTypeAggregator       uint8 = 7
	AttrTypeCommunities      uint8 = 8
	AttrTypeMPReachNLRI      uint8 = 14
	AttrTypeMPUnreachNLRI    uint8 = 15
	AttrTypeLargeCommunities uint8 = 32
)

// Attribute flag bits.
const (
	flagOptional   = 0x80
	flagTransitive = 0x40
	flagPartial    = 0x20
	flagExtLen     = 0x10
)

// Aggregator is the AGGREGATOR attribute (4-octet AS form, RFC 6793).
type Aggregator struct {
	ASN  uint32
	Addr netip.Addr
}

// RawAttr preserves an attribute this codec does not interpret, so that
// transitive unknown attributes survive re-encoding, as RFC 4271 requires.
type RawAttr struct {
	Flags uint8
	Type  uint8
	Value []byte
}

// PathAttributes is the parsed attribute set of an UPDATE.
type PathAttributes struct {
	Origin           Origin
	ASPath           ASPath
	NextHop          netip.Addr // unset => no NEXT_HOP attribute
	MED              *uint32
	LocalPref        *uint32
	AtomicAggregate  bool
	Aggregator       *Aggregator
	Communities      CommunitySet
	LargeCommunities []LargeCommunity

	// MPReach/MPUnreach carry IPv6 unicast NLRI (RFC 4760).
	MPReachNextHop netip.Addr
	MPReachNLRI    []netip.Prefix
	MPUnreachNLRI  []netip.Prefix

	Unknown []RawAttr
}

// Clone deep-copies the attributes. RIB entries share decoded updates, so
// any mutation path must clone first.
func (a *PathAttributes) Clone() PathAttributes {
	out := *a
	out.ASPath = a.ASPath.Clone()
	out.Communities = a.Communities.Clone()
	if a.MED != nil {
		v := *a.MED
		out.MED = &v
	}
	if a.LocalPref != nil {
		v := *a.LocalPref
		out.LocalPref = &v
	}
	if a.Aggregator != nil {
		v := *a.Aggregator
		out.Aggregator = &v
	}
	out.LargeCommunities = append([]LargeCommunity(nil), a.LargeCommunities...)
	out.MPReachNLRI = append([]netip.Prefix(nil), a.MPReachNLRI...)
	out.MPUnreachNLRI = append([]netip.Prefix(nil), a.MPUnreachNLRI...)
	if a.Unknown != nil {
		out.Unknown = make([]RawAttr, len(a.Unknown))
		for i, u := range a.Unknown {
			out.Unknown[i] = RawAttr{Flags: u.Flags, Type: u.Type, Value: append([]byte(nil), u.Value...)}
		}
	}
	return out
}

func appendAttrHeader(dst []byte, flags, typ uint8, length int) []byte {
	if length > 0xFF {
		flags |= flagExtLen
		dst = append(dst, flags, typ, byte(length>>8), byte(length))
	} else {
		dst = append(dst, flags, typ, byte(length))
	}
	return dst
}

// Encode serializes the attribute set in ascending type order using
// 4-octet AS_PATH encoding.
func (a *PathAttributes) Encode() []byte {
	var dst []byte

	// ORIGIN — well-known mandatory when a route is present.
	dst = appendAttrHeader(dst, flagTransitive, AttrTypeOrigin, 1)
	dst = append(dst, byte(a.Origin))

	// AS_PATH — always emitted (may be zero-length for locally originated
	// iBGP routes).
	body := encodeASPath(a.ASPath)
	dst = appendAttrHeader(dst, flagTransitive, AttrTypeASPath, len(body))
	dst = append(dst, body...)

	if a.NextHop.IsValid() && a.NextHop.Is4() {
		b := a.NextHop.As4()
		dst = appendAttrHeader(dst, flagTransitive, AttrTypeNextHop, 4)
		dst = append(dst, b[:]...)
	}
	if a.MED != nil {
		dst = appendAttrHeader(dst, flagOptional, AttrTypeMED, 4)
		dst = binary.BigEndian.AppendUint32(dst, *a.MED)
	}
	if a.LocalPref != nil {
		dst = appendAttrHeader(dst, flagTransitive, AttrTypeLocalPref, 4)
		dst = binary.BigEndian.AppendUint32(dst, *a.LocalPref)
	}
	if a.AtomicAggregate {
		dst = appendAttrHeader(dst, flagTransitive, AttrTypeAtomicAggregate, 0)
	}
	if a.Aggregator != nil {
		dst = appendAttrHeader(dst, flagOptional|flagTransitive, AttrTypeAggregator, 8)
		dst = binary.BigEndian.AppendUint32(dst, a.Aggregator.ASN)
		b := a.Aggregator.Addr.As4()
		dst = append(dst, b[:]...)
	}
	if len(a.Communities) > 0 {
		dst = appendAttrHeader(dst, flagOptional|flagTransitive, AttrTypeCommunities, 4*len(a.Communities))
		for _, c := range a.Communities {
			dst = binary.BigEndian.AppendUint32(dst, uint32(c))
		}
	}
	if len(a.MPReachNLRI) > 0 {
		body := encodeMPReach(a.MPReachNextHop, a.MPReachNLRI)
		dst = appendAttrHeader(dst, flagOptional, AttrTypeMPReachNLRI, len(body))
		dst = append(dst, body...)
	}
	if len(a.MPUnreachNLRI) > 0 {
		body := encodeMPUnreach(a.MPUnreachNLRI)
		dst = appendAttrHeader(dst, flagOptional, AttrTypeMPUnreachNLRI, len(body))
		dst = append(dst, body...)
	}
	if len(a.LargeCommunities) > 0 {
		dst = appendAttrHeader(dst, flagOptional|flagTransitive, AttrTypeLargeCommunities, 12*len(a.LargeCommunities))
		for _, l := range a.LargeCommunities {
			dst = binary.BigEndian.AppendUint32(dst, l.GlobalAdmin)
			dst = binary.BigEndian.AppendUint32(dst, l.Data1)
			dst = binary.BigEndian.AppendUint32(dst, l.Data2)
		}
	}
	for _, u := range a.Unknown {
		dst = appendAttrHeader(dst, u.Flags&^flagExtLen, u.Type, len(u.Value))
		dst = append(dst, u.Value...)
	}
	return dst
}

func encodeASPath(p ASPath) []byte {
	var dst []byte
	for _, seg := range p {
		dst = append(dst, byte(seg.Type), byte(len(seg.ASNs)))
		for _, a := range seg.ASNs {
			dst = binary.BigEndian.AppendUint32(dst, a)
		}
	}
	return dst
}

func decodeASPath(b []byte) (ASPath, error) {
	var p ASPath
	for len(b) > 0 {
		if len(b) < 2 {
			return nil, fmt.Errorf("bgp: truncated AS_PATH segment header")
		}
		typ, cnt := SegmentType(b[0]), int(b[1])
		if typ != SegmentSet && typ != SegmentSequence {
			return nil, fmt.Errorf("bgp: bad AS_PATH segment type %d", typ)
		}
		b = b[2:]
		if len(b) < 4*cnt {
			return nil, fmt.Errorf("bgp: truncated AS_PATH segment body")
		}
		asns := make([]uint32, cnt)
		for i := 0; i < cnt; i++ {
			asns[i] = binary.BigEndian.Uint32(b[4*i:])
		}
		b = b[4*cnt:]
		p = append(p, PathSegment{Type: typ, ASNs: asns})
	}
	return p, nil
}

func encodeMPReach(nh netip.Addr, nlri []netip.Prefix) []byte {
	var dst []byte
	dst = binary.BigEndian.AppendUint16(dst, AFIIPv6)
	dst = append(dst, SAFIUnicast)
	if nh.IsValid() && nh.Is6() {
		b := nh.As16()
		dst = append(dst, 16)
		dst = append(dst, b[:]...)
	} else {
		dst = append(dst, 0)
	}
	dst = append(dst, 0) // reserved
	return encodeNLRIList(dst, nlri)
}

func encodeMPUnreach(nlri []netip.Prefix) []byte {
	var dst []byte
	dst = binary.BigEndian.AppendUint16(dst, AFIIPv6)
	dst = append(dst, SAFIUnicast)
	return encodeNLRIList(dst, nlri)
}

// DecodeAttributes parses the path attribute block of an UPDATE.
func DecodeAttributes(b []byte) (PathAttributes, error) {
	var a PathAttributes
	for len(b) > 0 {
		if len(b) < 3 {
			return a, fmt.Errorf("bgp: truncated attribute header")
		}
		flags, typ := b[0], b[1]
		var length, hdr int
		if flags&flagExtLen != 0 {
			if len(b) < 4 {
				return a, fmt.Errorf("bgp: truncated extended attribute header")
			}
			length, hdr = int(binary.BigEndian.Uint16(b[2:])), 4
		} else {
			length, hdr = int(b[2]), 3
		}
		if len(b) < hdr+length {
			return a, fmt.Errorf("bgp: attribute %d body truncated (want %d, have %d)", typ, length, len(b)-hdr)
		}
		val := b[hdr : hdr+length]
		b = b[hdr+length:]
		if err := a.decodeOne(flags, typ, val); err != nil {
			return a, err
		}
	}
	return a, nil
}

func (a *PathAttributes) decodeOne(flags, typ uint8, val []byte) error {
	switch typ {
	case AttrTypeOrigin:
		if len(val) != 1 {
			return fmt.Errorf("bgp: ORIGIN length %d", len(val))
		}
		a.Origin = Origin(val[0])
	case AttrTypeASPath:
		p, err := decodeASPath(val)
		if err != nil {
			return err
		}
		a.ASPath = p
	case AttrTypeNextHop:
		if len(val) != 4 {
			return fmt.Errorf("bgp: NEXT_HOP length %d", len(val))
		}
		a.NextHop = netip.AddrFrom4([4]byte(val))
	case AttrTypeMED:
		if len(val) != 4 {
			return fmt.Errorf("bgp: MED length %d", len(val))
		}
		v := binary.BigEndian.Uint32(val)
		a.MED = &v
	case AttrTypeLocalPref:
		if len(val) != 4 {
			return fmt.Errorf("bgp: LOCAL_PREF length %d", len(val))
		}
		v := binary.BigEndian.Uint32(val)
		a.LocalPref = &v
	case AttrTypeAtomicAggregate:
		a.AtomicAggregate = true
	case AttrTypeAggregator:
		if len(val) != 8 {
			return fmt.Errorf("bgp: AGGREGATOR length %d", len(val))
		}
		a.Aggregator = &Aggregator{
			ASN:  binary.BigEndian.Uint32(val),
			Addr: netip.AddrFrom4([4]byte(val[4:8])),
		}
	case AttrTypeCommunities:
		if len(val)%4 != 0 {
			return fmt.Errorf("bgp: COMMUNITIES length %d", len(val))
		}
		cs := make([]Community, len(val)/4)
		for i := range cs {
			cs[i] = Community(binary.BigEndian.Uint32(val[4*i:]))
		}
		a.Communities = NewCommunitySet(cs...)
	case AttrTypeMPReachNLRI:
		return a.decodeMPReach(val)
	case AttrTypeMPUnreachNLRI:
		return a.decodeMPUnreach(val)
	case AttrTypeLargeCommunities:
		if len(val)%12 != 0 {
			return fmt.Errorf("bgp: LARGE_COMMUNITY length %d", len(val))
		}
		for i := 0; i+12 <= len(val); i += 12 {
			a.LargeCommunities = append(a.LargeCommunities, LargeCommunity{
				GlobalAdmin: binary.BigEndian.Uint32(val[i:]),
				Data1:       binary.BigEndian.Uint32(val[i+4:]),
				Data2:       binary.BigEndian.Uint32(val[i+8:]),
			})
		}
	default:
		a.Unknown = append(a.Unknown, RawAttr{Flags: flags, Type: typ, Value: append([]byte(nil), val...)})
	}
	return nil
}

func (a *PathAttributes) decodeMPReach(val []byte) error {
	if len(val) < 5 {
		return fmt.Errorf("bgp: MP_REACH too short")
	}
	afi := binary.BigEndian.Uint16(val)
	safi := val[2]
	nhLen := int(val[3])
	if len(val) < 4+nhLen+1 {
		return fmt.Errorf("bgp: MP_REACH next-hop truncated")
	}
	if nhLen == 16 {
		a.MPReachNextHop = netip.AddrFrom16([16]byte(val[4 : 4+16]))
	}
	rest := val[4+nhLen+1:]
	if afi != AFIIPv6 || safi != SAFIUnicast {
		// Preserve unsupported families untouched.
		a.Unknown = append(a.Unknown, RawAttr{Flags: flagOptional, Type: AttrTypeMPReachNLRI, Value: append([]byte(nil), val...)})
		return nil
	}
	nlri, err := decodeNLRIList(rest, true)
	if err != nil {
		return err
	}
	a.MPReachNLRI = nlri
	return nil
}

func (a *PathAttributes) decodeMPUnreach(val []byte) error {
	if len(val) < 3 {
		return fmt.Errorf("bgp: MP_UNREACH too short")
	}
	afi := binary.BigEndian.Uint16(val)
	safi := val[2]
	if afi != AFIIPv6 || safi != SAFIUnicast {
		a.Unknown = append(a.Unknown, RawAttr{Flags: flagOptional, Type: AttrTypeMPUnreachNLRI, Value: append([]byte(nil), val...)})
		return nil
	}
	nlri, err := decodeNLRIList(val[3:], true)
	if err != nil {
		return err
	}
	a.MPUnreachNLRI = nlri
	return nil
}
