package bgp

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"

	"bgpworms/internal/netx"
)

func u32(v uint32) *uint32 { return &v }

func sampleUpdate() *Update {
	return &Update{
		Withdrawn: []netip.Prefix{netx.MustPrefix("198.51.100.0/24")},
		Attrs: PathAttributes{
			Origin:           OriginIGP,
			ASPath:           Path(65000, 3320, 1299),
			NextHop:          netip.MustParseAddr("192.0.2.1"),
			MED:              u32(50),
			LocalPref:        u32(120),
			Communities:      NewCommunitySet(C(3320, 9000), CommunityBlackhole, C(1299, 50)),
			Aggregator:       &Aggregator{ASN: 1299, Addr: netip.MustParseAddr("192.0.2.9")},
			LargeCommunities: []LargeCommunity{{GlobalAdmin: 206499, Data1: 1, Data2: 2}},
		},
		NLRI: []netip.Prefix{netx.MustPrefix("203.0.113.0/24"), netx.MustPrefix("10.0.0.0/8")},
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	in := sampleUpdate()
	wire, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	msg, err := DecodeMessage(wire)
	if err != nil {
		t.Fatal(err)
	}
	out, ok := msg.(*Update)
	if !ok {
		t.Fatalf("decoded %T", msg)
	}
	if len(out.NLRI) != 2 || out.NLRI[0] != in.NLRI[0] || out.NLRI[1] != in.NLRI[1] {
		t.Fatalf("NLRI=%v", out.NLRI)
	}
	if len(out.Withdrawn) != 1 || out.Withdrawn[0] != in.Withdrawn[0] {
		t.Fatalf("Withdrawn=%v", out.Withdrawn)
	}
	a := out.Attrs
	if a.Origin != OriginIGP {
		t.Errorf("Origin=%v", a.Origin)
	}
	if a.ASPath.String() != "65000 3320 1299" {
		t.Errorf("ASPath=%s", a.ASPath)
	}
	if a.NextHop != in.Attrs.NextHop {
		t.Errorf("NextHop=%s", a.NextHop)
	}
	if a.MED == nil || *a.MED != 50 || a.LocalPref == nil || *a.LocalPref != 120 {
		t.Errorf("MED/LP=%v/%v", a.MED, a.LocalPref)
	}
	if len(a.Communities) != 3 || !a.Communities.Has(CommunityBlackhole) {
		t.Errorf("Communities=%v", a.Communities)
	}
	if !a.Communities.IsSorted() {
		t.Error("communities not normalized on decode")
	}
	if a.Aggregator == nil || a.Aggregator.ASN != 1299 {
		t.Errorf("Aggregator=%v", a.Aggregator)
	}
	if len(a.LargeCommunities) != 1 || a.LargeCommunities[0].GlobalAdmin != 206499 {
		t.Errorf("LargeCommunities=%v", a.LargeCommunities)
	}
}

func TestUpdateReencodeStable(t *testing.T) {
	wire, err := sampleUpdate().Encode()
	if err != nil {
		t.Fatal(err)
	}
	msg, err := DecodeMessage(wire)
	if err != nil {
		t.Fatal(err)
	}
	wire2, err := msg.(*Update).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wire, wire2) {
		t.Fatal("re-encoding is not byte-stable")
	}
}

func TestIPv6ViaMPReach(t *testing.T) {
	in := &Update{
		Attrs: PathAttributes{
			Origin:         OriginIGP,
			ASPath:         Path(65001, 64501),
			MPReachNextHop: netip.MustParseAddr("2001:db8::1"),
			MPReachNLRI:    []netip.Prefix{netx.MustPrefix("2001:db8:1000::/48")},
			MPUnreachNLRI:  []netip.Prefix{netx.MustPrefix("2001:db8:2000::/48")},
		},
	}
	wire, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	out := mustUpdate(t, wire)
	if len(out.Attrs.MPReachNLRI) != 1 || out.Attrs.MPReachNLRI[0] != in.Attrs.MPReachNLRI[0] {
		t.Fatalf("MPReach=%v", out.Attrs.MPReachNLRI)
	}
	if out.Attrs.MPReachNextHop != in.Attrs.MPReachNextHop {
		t.Fatalf("MPReachNextHop=%s", out.Attrs.MPReachNextHop)
	}
	if len(out.Attrs.MPUnreachNLRI) != 1 || out.Attrs.MPUnreachNLRI[0] != in.Attrs.MPUnreachNLRI[0] {
		t.Fatalf("MPUnreach=%v", out.Attrs.MPUnreachNLRI)
	}
	if got := out.AllAnnounced(); len(got) != 1 {
		t.Fatalf("AllAnnounced=%v", got)
	}
	if got := out.AllWithdrawn(); len(got) != 1 {
		t.Fatalf("AllWithdrawn=%v", got)
	}
}

func TestRejectDirectV6NLRI(t *testing.T) {
	u := &Update{NLRI: []netip.Prefix{netx.MustPrefix("2001:db8::/32")}}
	if _, err := u.Encode(); err == nil {
		t.Fatal("expected error for v6 in classic NLRI")
	}
	w := &Update{Withdrawn: []netip.Prefix{netx.MustPrefix("2001:db8::/32")}}
	if _, err := w.Encode(); err == nil {
		t.Fatal("expected error for v6 in classic withdrawals")
	}
}

func TestUnknownAttributePreserved(t *testing.T) {
	in := sampleUpdate()
	in.Attrs.Unknown = []RawAttr{{Flags: flagOptional | flagTransitive, Type: 99, Value: []byte{1, 2, 3}}}
	wire, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	out := mustUpdate(t, wire)
	if len(out.Attrs.Unknown) != 1 || out.Attrs.Unknown[0].Type != 99 || !bytes.Equal(out.Attrs.Unknown[0].Value, []byte{1, 2, 3}) {
		t.Fatalf("Unknown=%v", out.Attrs.Unknown)
	}
}

func TestOpenKeepaliveNotification(t *testing.T) {
	o := &Open{ASN: 65001, HoldTime: 90, RouterID: netip.MustParseAddr("10.0.0.1")}
	wire, err := o.Encode()
	if err != nil {
		t.Fatal(err)
	}
	m, err := DecodeMessage(wire)
	if err != nil {
		t.Fatal(err)
	}
	oo := m.(*Open)
	if oo.ASN != 65001 || oo.HoldTime != 90 || oo.Version != 4 {
		t.Fatalf("Open=%+v", oo)
	}

	// 4-octet ASN goes out as AS_TRANS in the 2-byte field.
	o4 := &Open{ASN: 4200000001, RouterID: netip.MustParseAddr("10.0.0.1")}
	wire, err = o4.Encode()
	if err != nil {
		t.Fatal(err)
	}
	m, _ = DecodeMessage(wire)
	if m.(*Open).ASN != uint32(ASTrans) {
		t.Fatalf("AS_TRANS expected, got %d", m.(*Open).ASN)
	}

	kw, err := Keepalive{}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if m, err := DecodeMessage(kw); err != nil || m.Type() != MsgTypeKeepalive {
		t.Fatalf("keepalive: %v %v", m, err)
	}

	n := &Notification{Code: 6, Subcode: 2, Data: []byte("bye")}
	nw, err := n.Encode()
	if err != nil {
		t.Fatal(err)
	}
	m, err = DecodeMessage(nw)
	if err != nil {
		t.Fatal(err)
	}
	nn := m.(*Notification)
	if nn.Code != 6 || nn.Subcode != 2 || string(nn.Data) != "bye" {
		t.Fatalf("Notification=%+v", nn)
	}
}

func TestDecodeErrors(t *testing.T) {
	valid, _ := sampleUpdate().Encode()

	t.Run("short", func(t *testing.T) {
		if _, err := DecodeMessage(valid[:10]); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("bad marker", func(t *testing.T) {
		bad := append([]byte(nil), valid...)
		bad[0] = 0
		if _, err := DecodeMessage(bad); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("truncated body", func(t *testing.T) {
		if _, err := DecodeMessage(valid[:len(valid)-3]); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("bad type", func(t *testing.T) {
		bad := append([]byte(nil), valid...)
		bad[18] = 77
		if _, err := DecodeMessage(bad); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("keepalive with body", func(t *testing.T) {
		w, _ := Keepalive{}.Encode()
		w[16], w[17] = 0, 20
		w = append(w, 0)
		if _, err := DecodeMessage(w); err == nil {
			t.Fatal("want error")
		}
	})
}

func TestAttributeDecodeErrors(t *testing.T) {
	cases := map[string][]byte{
		"truncated header":     {0x40},
		"truncated ext header": {0x50, 1, 0},
		"body truncated":       {0x40, 1, 5, 0},
		"bad origin len":       {0x40, 1, 2, 0, 0},
		"bad nexthop len":      {0x40, 3, 2, 1, 2},
		"bad med len":          {0x80, 4, 1, 9},
		"bad lp len":           {0x40, 5, 1, 9},
		"bad aggregator len":   {0xC0, 7, 2, 0, 0},
		"bad communities len":  {0xC0, 8, 3, 0, 0, 0},
		"bad large len":        {0xC0, 32, 4, 0, 0, 0, 0},
		"bad aspath seg type":  {0x40, 2, 6, 9, 1, 0, 0, 0, 1},
		"truncated aspath":     {0x40, 2, 3, 2, 2, 0},
	}
	for name, b := range cases {
		if _, err := DecodeAttributes(b); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestMessageSizeLimit(t *testing.T) {
	var cs []Community
	for i := 0; i < 1100; i++ {
		cs = append(cs, C(uint16(i), uint16(i)))
	}
	u := &Update{
		Attrs: PathAttributes{ASPath: Path(1), NextHop: netip.MustParseAddr("10.0.0.1"), Communities: NewCommunitySet(cs...)},
		NLRI:  []netip.Prefix{netx.MustPrefix("10.0.0.0/8")},
	}
	if _, err := u.Encode(); err == nil {
		t.Fatal("4400+ byte message must exceed the 4096 cap")
	}
}

func mustUpdate(t *testing.T, wire []byte) *Update {
	t.Helper()
	m, err := DecodeMessage(wire)
	if err != nil {
		t.Fatal(err)
	}
	u, ok := m.(*Update)
	if !ok {
		t.Fatalf("decoded %T", m)
	}
	return u
}

// Property: any update built from generated prefixes/communities round-trips.
func TestProperty_UpdateRoundTrip(t *testing.T) {
	f := func(seed uint32, nComm uint8, a, b byte, bits uint8) bool {
		var cs []Community
		for i := 0; i < int(nComm%40); i++ {
			cs = append(cs, Community(seed+uint32(i)*2654435761))
		}
		p := netip.PrefixFrom(netx.V4(a%224, b, 0, 0), int(8+bits%17)).Masked()
		u := &Update{
			Attrs: PathAttributes{
				Origin:      OriginIGP,
				ASPath:      Path(seed%64000+1, seed%1000+1),
				NextHop:     netip.MustParseAddr("192.0.2.1"),
				Communities: NewCommunitySet(cs...),
			},
			NLRI: []netip.Prefix{p},
		}
		wire, err := u.Encode()
		if err != nil {
			return false
		}
		m, err := DecodeMessage(wire)
		if err != nil {
			return false
		}
		out := m.(*Update)
		if len(out.NLRI) != 1 || out.NLRI[0] != p {
			return false
		}
		if len(out.Attrs.Communities) != len(u.Attrs.Communities) {
			return false
		}
		return out.Attrs.ASPath.String() == u.Attrs.ASPath.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUpdateEncode(b *testing.B) {
	u := sampleUpdate()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := u.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUpdateDecode(b *testing.B) {
	wire, _ := sampleUpdate().Encode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeMessage(wire); err != nil {
			b.Fatal(err)
		}
	}
}
