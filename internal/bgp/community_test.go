package bgp

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestCommunityParts(t *testing.T) {
	c := C(3130, 411)
	if c.ASN() != 3130 || c.Value() != 411 {
		t.Fatalf("parts=%d:%d", c.ASN(), c.Value())
	}
	if c.String() != "3130:411" {
		t.Fatalf("String=%q", c)
	}
}

func TestParseCommunity(t *testing.T) {
	cases := []struct {
		in   string
		want Community
		ok   bool
	}{
		{"3130:411", C(3130, 411), true},
		{"0:0", 0, true},
		{"65535:666", CommunityBlackhole, true},
		{"no-export", CommunityNoExport, true},
		{"NO-EXPORT", CommunityNoExport, true},
		{"no-advertise", CommunityNoAdvertise, true},
		{"no-peer", CommunityNoPeer, true},
		{"blackhole", CommunityBlackhole, true},
		{"65536:1", 0, false},
		{"1:65536", 0, false},
		{"nocolon", 0, false},
		{"a:b", 0, false},
	}
	for _, c := range cases {
		got, err := ParseCommunity(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseCommunity(%q) err=%v ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseCommunity(%q)=%v want %v", c.in, got, c.want)
		}
	}
}

// TestProperty_CommunityStringParseRoundTrip: every 32-bit community
// survives String → ParseCommunity and MarshalText → UnmarshalText
// unchanged.
func TestProperty_CommunityStringParseRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		c := Community(v)
		back, err := ParseCommunity(c.String())
		if err != nil || back != c {
			return false
		}
		b, err := c.MarshalText()
		if err != nil {
			return false
		}
		var u Community
		if err := u.UnmarshalText(b); err != nil || u != c {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestWellKnownNames pins the symbolic-name round trip: Name/Display on
// the well-known constants, case- and separator-insensitive parsing,
// and "" for ordinary communities.
func TestWellKnownNames(t *testing.T) {
	cases := []struct {
		c    Community
		name string
	}{
		{CommunityNoExport, "NO_EXPORT"},
		{CommunityNoAdvertise, "NO_ADVERTISE"},
		{CommunityNoExportSubconfed, "NO_EXPORT_SUBCONFED"},
		{CommunityNoPeer, "NOPEER"},
		{CommunityBlackhole, "BLACKHOLE"},
	}
	for _, tc := range cases {
		if tc.c.Name() != tc.name || tc.c.Display() != tc.name {
			t.Errorf("%s: Name=%q Display=%q, want %q", tc.c, tc.c.Name(), tc.c.Display(), tc.name)
		}
		for _, spelling := range []string{
			tc.name,
			strings.ToLower(tc.name),
			strings.ReplaceAll(strings.ToLower(tc.name), "_", "-"),
		} {
			got, err := ParseCommunity(spelling)
			if err != nil || got != tc.c {
				t.Errorf("ParseCommunity(%q) = (%v, %v), want %s", spelling, got, err, tc.c)
			}
		}
		// The numeric form parses back to the same value too.
		if got := MustCommunity(tc.c.String()); got != tc.c {
			t.Errorf("numeric round trip of %s = %s", tc.c, got)
		}
	}
	if C(3356, 666).Name() != "" {
		t.Error("ordinary community has a well-known name")
	}
	if C(3356, 666).Display() != "3356:666" {
		t.Errorf("Display=%q", C(3356, 666).Display())
	}
}

func TestMustCommunityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustCommunity("bad")
}

func TestWellKnownValues(t *testing.T) {
	if CommunityNoExport.String() != "65535:65281" {
		t.Errorf("NoExport=%s", CommunityNoExport)
	}
	if CommunityBlackhole.String() != "65535:666" {
		t.Errorf("Blackhole=%s", CommunityBlackhole)
	}
	if !CommunityBlackhole.IsWellKnown() || !CommunityBlackhole.IsBlackhole() {
		t.Error("blackhole classification wrong")
	}
	if !C(2914, 666).IsBlackhole() {
		t.Error("provider :666 should classify as blackhole")
	}
	if C(2914, 421).IsBlackhole() {
		t.Error("2914:421 is not blackhole")
	}
	if C(2914, 421).IsWellKnown() {
		t.Error("2914:421 is not well-known")
	}
	if !C(0, 7).IsWellKnown() {
		t.Error("0:* is reserved")
	}
}

func TestCommunitySetOps(t *testing.T) {
	s := NewCommunitySet(C(3, 3), C(1, 1), C(2, 2), C(1, 1))
	if len(s) != 3 || !s.IsSorted() {
		t.Fatalf("set=%v", s)
	}
	if !s.Has(C(2, 2)) || s.Has(C(4, 4)) {
		t.Fatal("Has wrong")
	}
	s = s.Add(C(2, 2))
	if len(s) != 3 {
		t.Fatal("duplicate add grew set")
	}
	s = s.Remove(C(2, 2))
	if s.Has(C(2, 2)) || len(s) != 2 {
		t.Fatal("Remove failed")
	}
	s = s.Remove(C(9, 9)) // absent: no-op
	if len(s) != 2 {
		t.Fatal("Remove of absent changed set")
	}
}

func TestCommunitySetRemoveASN(t *testing.T) {
	s := NewCommunitySet(C(10, 1), C(10, 2), C(20, 1), C(30, 5))
	s = s.RemoveASN(10)
	if len(s) != 2 || s.Has(C(10, 1)) || s.Has(C(10, 2)) {
		t.Fatalf("RemoveASN: %v", s)
	}
}

func TestCommunitySetASNs(t *testing.T) {
	s := NewCommunitySet(C(10, 1), C(10, 2), C(20, 1), C(5, 9))
	asns := s.ASNs()
	want := []uint16{5, 10, 20}
	if len(asns) != len(want) {
		t.Fatalf("ASNs=%v", asns)
	}
	for i := range want {
		if asns[i] != want[i] {
			t.Fatalf("ASNs=%v want %v", asns, want)
		}
	}
}

func TestCommunitySetCloneIndependence(t *testing.T) {
	s := NewCommunitySet(C(1, 1), C(2, 2))
	c := s.Clone()
	c = c.Add(C(3, 3))
	if s.Has(C(3, 3)) {
		t.Fatal("clone mutated original")
	}
	var nilSet CommunitySet
	if nilSet.Clone() != nil {
		t.Fatal("nil clone should stay nil")
	}
}

func TestCommunitySetString(t *testing.T) {
	s := NewCommunitySet(C(2, 2), C(1, 1))
	if s.String() != "1:1 2:2" {
		t.Fatalf("String=%q", s.String())
	}
}

// Property: Add keeps the set sorted and unique for arbitrary inserts.
func TestProperty_CommunitySetSortedUnique(t *testing.T) {
	f := func(vals []uint32) bool {
		var s CommunitySet
		for _, v := range vals {
			s = s.Add(Community(v))
		}
		if !s.IsSorted() {
			return false
		}
		for i := 1; i < len(s); i++ {
			if s[i] == s[i-1] {
				return false
			}
		}
		for _, v := range vals {
			if !s.Has(Community(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Add then Remove restores non-membership.
func TestProperty_CommunityAddRemove(t *testing.T) {
	f := func(base []uint32, x uint32) bool {
		var s CommunitySet
		for _, v := range base {
			if Community(v) != Community(x) {
				s = s.Add(Community(v))
			}
		}
		before := len(s)
		s = s.Add(Community(x))
		s = s.Remove(Community(x))
		return !s.Has(Community(x)) && len(s) == before && s.IsSorted()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestParseLargeCommunity(t *testing.T) {
	l, err := ParseLargeCommunity("4200000000:1:2")
	if err != nil || l.GlobalAdmin != 4200000000 || l.Data1 != 1 || l.Data2 != 2 {
		t.Fatalf("got %v err %v", l, err)
	}
	if l.String() != "4200000000:1:2" {
		t.Fatalf("String=%q", l.String())
	}
	for _, bad := range []string{"1:2", "1:2:3:4", "x:1:2", "1:99999999999:2"} {
		if _, err := ParseLargeCommunity(bad); err == nil {
			t.Errorf("ParseLargeCommunity(%q) should fail", bad)
		}
	}
}

func TestCommunitySetAddKeepsOrderAgainstSort(t *testing.T) {
	vals := []Community{C(9, 9), C(1, 2), C(5, 0), C(1, 1), C(65535, 666)}
	var s CommunitySet
	for _, v := range vals {
		s = s.Add(v)
	}
	ref := append([]Community(nil), vals...)
	sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
	for i := range ref {
		if s[i] != ref[i] {
			t.Fatalf("set=%v ref=%v", s, ref)
		}
	}
}
