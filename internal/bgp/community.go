// Package bgp implements the BGP-4 wire protocol elements needed by the
// study: communities (RFC 1997), large communities (RFC 8092), path
// attributes, UPDATE/OPEN/KEEPALIVE/NOTIFICATION messages with 4-octet AS
// support, and IPv4/IPv6 NLRI encoding including MP_REACH/MP_UNREACH.
//
// The codec follows the decode-from-bytes / serialize-to-buffer style used
// by packet libraries: every wire element has an Encode method appending to
// a byte slice and a Decode counterpart returning the parsed value and the
// number of bytes consumed.
package bgp

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Community is a 32-bit RFC 1997 BGP community. By convention the high 16
// bits hold the ASN that defines the community and the low 16 bits hold an
// AS-chosen label, rendered as "ASN:label".
type Community uint32

// Well-known communities (RFC 1997, RFC 3765, RFC 7999).
const (
	CommunityNoExport          Community = 0xFFFFFF01 // 65535:65281
	CommunityNoAdvertise       Community = 0xFFFFFF02 // 65535:65282
	CommunityNoExportSubconfed Community = 0xFFFFFF03 // 65535:65283
	CommunityNoPeer            Community = 0xFFFFFF04 // 65535:65284
	CommunityBlackhole         Community = 0xFFFF029A // 65535:666, RFC 7999
)

// BlackholeValue is the conventional low-16-bit label for blackholing
// communities (RFC 7999 and widespread provider practice).
const BlackholeValue uint16 = 666

// C builds a community from an ASN and a label value.
func C(asn, value uint16) Community {
	return Community(uint32(asn)<<16 | uint32(value))
}

// ASN returns the high 16 bits, conventionally the defining AS.
func (c Community) ASN() uint16 { return uint16(c >> 16) }

// Value returns the low 16 bits, the AS-chosen label.
func (c Community) Value() uint16 { return uint16(c) }

// IsWellKnown reports whether c falls in the reserved 65535:* range or the
// 0:* range, which are not attributable to a routed AS.
func (c Community) IsWellKnown() bool {
	return c.ASN() == 0xFFFF || c.ASN() == 0
}

// IsBlackhole reports whether c is the RFC 7999 BLACKHOLE community or uses
// the conventional :666 label.
func (c Community) IsBlackhole() bool {
	return c == CommunityBlackhole || c.Value() == BlackholeValue
}

// String renders the canonical "ASN:value" presentation format.
func (c Community) String() string {
	return strconv.Itoa(int(c.ASN())) + ":" + strconv.Itoa(int(c.Value()))
}

// wellKnownNames maps the reserved well-known communities to their
// RFC symbolic names. Name and ParseCommunity round-trip through it.
var wellKnownNames = map[Community]string{
	CommunityNoExport:          "NO_EXPORT",
	CommunityNoAdvertise:       "NO_ADVERTISE",
	CommunityNoExportSubconfed: "NO_EXPORT_SUBCONFED",
	CommunityNoPeer:            "NOPEER",
	CommunityBlackhole:         "BLACKHOLE",
}

// Name returns the RFC symbolic name of a well-known community
// (NO_EXPORT, BLACKHOLE, …) and "" for everything else.
func (c Community) Name() string { return wellKnownNames[c] }

// Display renders the symbolic name for well-known communities and the
// "ASN:value" form otherwise — the human-facing print form shared by
// the CLIs.
func (c Community) Display() string {
	if n := wellKnownNames[c]; n != "" {
		return n
	}
	return c.String()
}

// MarshalText renders the canonical "ASN:value" form; together with
// UnmarshalText it makes Community round-trip through JSON object keys
// and text encodings.
func (c Community) MarshalText() ([]byte, error) { return []byte(c.String()), nil }

// UnmarshalText parses the same forms ParseCommunity accepts.
func (c *Community) UnmarshalText(b []byte) error {
	v, err := ParseCommunity(string(b))
	if err != nil {
		return err
	}
	*c = v
	return nil
}

// ParseCommunity parses the "ASN:value" presentation format, plus the
// symbolic names of the well-known communities (case-insensitive, with
// "-" and "_" interchangeable: NO_EXPORT, no-export, …).
func ParseCommunity(s string) (Community, error) {
	switch strings.ReplaceAll(strings.ToLower(s), "_", "-") {
	case "no-export":
		return CommunityNoExport, nil
	case "no-advertise":
		return CommunityNoAdvertise, nil
	case "no-export-subconfed":
		return CommunityNoExportSubconfed, nil
	case "no-peer", "nopeer":
		return CommunityNoPeer, nil
	case "blackhole":
		return CommunityBlackhole, nil
	}
	a, v, ok := strings.Cut(s, ":")
	if !ok {
		return 0, fmt.Errorf("bgp: community %q: missing colon", s)
	}
	asn, err := strconv.ParseUint(a, 10, 16)
	if err != nil {
		return 0, fmt.Errorf("bgp: community %q: bad ASN: %v", s, err)
	}
	val, err := strconv.ParseUint(v, 10, 16)
	if err != nil {
		return 0, fmt.Errorf("bgp: community %q: bad value: %v", s, err)
	}
	return C(uint16(asn), uint16(val)), nil
}

// MustCommunity is ParseCommunity that panics; for tests and constants.
func MustCommunity(s string) Community {
	c, err := ParseCommunity(s)
	if err != nil {
		panic(err)
	}
	return c
}

// LargeCommunity is an RFC 8092 96-bit community: GlobalAdmin (a 4-octet
// ASN) plus two 32-bit data parts, rendered "ga:d1:d2".
type LargeCommunity struct {
	GlobalAdmin uint32
	Data1       uint32
	Data2       uint32
}

// String renders the canonical "ga:d1:d2" form.
func (l LargeCommunity) String() string {
	return fmt.Sprintf("%d:%d:%d", l.GlobalAdmin, l.Data1, l.Data2)
}

// ParseLargeCommunity parses the "ga:d1:d2" presentation format.
func ParseLargeCommunity(s string) (LargeCommunity, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return LargeCommunity{}, fmt.Errorf("bgp: large community %q: need 3 parts", s)
	}
	var vals [3]uint32
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 32)
		if err != nil {
			return LargeCommunity{}, fmt.Errorf("bgp: large community %q: %v", s, err)
		}
		vals[i] = uint32(v)
	}
	return LargeCommunity{vals[0], vals[1], vals[2]}, nil
}

// CommunitySet maintains a sorted, duplicate-free community list, the
// canonical form routers use on the wire and in display (both Cisco and
// JunOS numerically sort communities, §6.3 of the paper).
type CommunitySet []Community

// NewCommunitySet builds a normalized set from arbitrary input.
func NewCommunitySet(cs ...Community) CommunitySet {
	out := make(CommunitySet, 0, len(cs))
	out = out.AddAll(cs...)
	return out
}

// Has reports membership.
func (s CommunitySet) Has(c Community) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= c })
	return i < len(s) && s[i] == c
}

// Add returns the set with c inserted in order, without duplicates. The
// receiver is not modified if reallocation occurs; use the return value.
func (s CommunitySet) Add(c Community) CommunitySet {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= c })
	if i < len(s) && s[i] == c {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = c
	return s
}

// AddAll inserts every community in cs.
func (s CommunitySet) AddAll(cs ...Community) CommunitySet {
	for _, c := range cs {
		s = s.Add(c)
	}
	return s
}

// Remove returns the set without c.
func (s CommunitySet) Remove(c Community) CommunitySet {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= c })
	if i >= len(s) || s[i] != c {
		return s
	}
	return append(s[:i], s[i+1:]...)
}

// RemoveIf returns the set without any community matching pred.
func (s CommunitySet) RemoveIf(pred func(Community) bool) CommunitySet {
	out := s[:0]
	for _, c := range s {
		if !pred(c) {
			out = append(out, c)
		}
	}
	return out
}

// RemoveASN strips every community whose high bits equal asn. This is the
// common "delete communities directed at me" provider policy.
func (s CommunitySet) RemoveASN(asn uint16) CommunitySet {
	return s.RemoveIf(func(c Community) bool { return c.ASN() == asn })
}

// Clone returns an independent copy; needed because updates are shared
// between RIB entries in the simulator.
func (s CommunitySet) Clone() CommunitySet {
	if s == nil {
		return nil
	}
	out := make(CommunitySet, len(s))
	copy(out, s)
	return out
}

// ASNs returns the distinct high-16-bit ASNs referenced by the set, in
// ascending order.
func (s CommunitySet) ASNs() []uint16 {
	var out []uint16
	var last uint16
	for i, c := range s {
		a := c.ASN()
		if i == 0 || a != last {
			out = append(out, a)
			last = a
		}
	}
	return out
}

// String renders a space-separated presentation form.
func (s CommunitySet) String() string {
	parts := make([]string, len(s))
	for i, c := range s {
		parts[i] = c.String()
	}
	return strings.Join(parts, " ")
}

// Display renders the space-separated human-facing form: well-known
// communities by their RFC names, everything else as "ASN:value" (the
// per-element Community.Display, shared by the CLIs).
func (s CommunitySet) Display() string {
	parts := make([]string, len(s))
	for i, c := range s {
		parts[i] = c.Display()
	}
	return strings.Join(parts, " ")
}

// IsSorted verifies the set invariant; used by property tests.
func (s CommunitySet) IsSorted() bool {
	return sort.SliceIsSorted(s, func(i, j int) bool { return s[i] < s[j] })
}
