package bgp

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Message type codes (RFC 4271 §4.1).
const (
	MsgTypeOpen         uint8 = 1
	MsgTypeUpdate       uint8 = 2
	MsgTypeNotification uint8 = 3
	MsgTypeKeepalive    uint8 = 4
)

// headerLen is the fixed BGP message header size: 16-byte marker, 2-byte
// length, 1-byte type.
const headerLen = 19

// MaxMessageLen is the RFC 4271 maximum BGP message size.
const MaxMessageLen = 4096

// Message is any decoded BGP message.
type Message interface {
	// Type returns the message type code.
	Type() uint8
	// Encode serializes the full message including the header.
	Encode() ([]byte, error)
}

// Open is a minimal OPEN message (no optional capabilities beyond what the
// simulator needs; the 4-octet-AS capability is implied by the codec).
type Open struct {
	Version  uint8
	ASN      uint32 // encoded as AS_TRANS in the 2-byte field when > 65535
	HoldTime uint16
	RouterID netip.Addr
}

// ASTrans is the 2-octet placeholder ASN for 4-octet AS speakers (RFC 6793).
const ASTrans uint16 = 23456

// Type implements Message.
func (o *Open) Type() uint8 { return MsgTypeOpen }

// Encode implements Message.
func (o *Open) Encode() ([]byte, error) {
	body := make([]byte, 0, 10)
	version := o.Version
	if version == 0 {
		version = 4
	}
	body = append(body, version)
	as2 := uint16(o.ASN)
	if o.ASN > 0xFFFF {
		as2 = ASTrans
	}
	body = binary.BigEndian.AppendUint16(body, as2)
	body = binary.BigEndian.AppendUint16(body, o.HoldTime)
	rid := o.RouterID
	if !rid.IsValid() || !rid.Is4() {
		rid = netip.AddrFrom4([4]byte{0, 0, 0, 0})
	}
	b := rid.As4()
	body = append(body, b[:]...)
	body = append(body, 0) // no optional parameters
	return wrapMessage(MsgTypeOpen, body)
}

// Keepalive is a KEEPALIVE message.
type Keepalive struct{}

// Type implements Message.
func (Keepalive) Type() uint8 { return MsgTypeKeepalive }

// Encode implements Message.
func (Keepalive) Encode() ([]byte, error) { return wrapMessage(MsgTypeKeepalive, nil) }

// Notification is a NOTIFICATION message.
type Notification struct {
	Code    uint8
	Subcode uint8
	Data    []byte
}

// Type implements Message.
func (n *Notification) Type() uint8 { return MsgTypeNotification }

// Encode implements Message.
func (n *Notification) Encode() ([]byte, error) {
	body := append([]byte{n.Code, n.Subcode}, n.Data...)
	return wrapMessage(MsgTypeNotification, body)
}

// Update is an UPDATE message. IPv4 routes ride the classic fields; IPv6
// routes ride MP_REACH/MP_UNREACH inside Attrs.
type Update struct {
	Withdrawn []netip.Prefix
	Attrs     PathAttributes
	NLRI      []netip.Prefix
}

// Type implements Message.
func (u *Update) Type() uint8 { return MsgTypeUpdate }

// AllAnnounced returns IPv4 NLRI plus IPv6 MP_REACH NLRI.
func (u *Update) AllAnnounced() []netip.Prefix {
	out := append([]netip.Prefix(nil), u.NLRI...)
	return append(out, u.Attrs.MPReachNLRI...)
}

// AllWithdrawn returns IPv4 withdrawals plus IPv6 MP_UNREACH NLRI.
func (u *Update) AllWithdrawn() []netip.Prefix {
	out := append([]netip.Prefix(nil), u.Withdrawn...)
	return append(out, u.Attrs.MPUnreachNLRI...)
}

// Encode implements Message.
func (u *Update) Encode() ([]byte, error) {
	for _, p := range u.Withdrawn {
		if !p.Addr().Is4() {
			return nil, fmt.Errorf("bgp: IPv6 withdrawal %s must use MP_UNREACH", p)
		}
	}
	for _, p := range u.NLRI {
		if !p.Addr().Is4() {
			return nil, fmt.Errorf("bgp: IPv6 NLRI %s must use MP_REACH", p)
		}
	}
	var body []byte
	wd := encodeNLRIList(nil, u.Withdrawn)
	body = binary.BigEndian.AppendUint16(body, uint16(len(wd)))
	body = append(body, wd...)
	attrs := u.Attrs.Encode()
	if len(u.NLRI) == 0 && len(u.Attrs.MPReachNLRI) == 0 && len(u.Withdrawn) == 0 && len(u.Attrs.MPUnreachNLRI) == 0 {
		attrs = nil // pure end-of-rib style empty update
	}
	body = binary.BigEndian.AppendUint16(body, uint16(len(attrs)))
	body = append(body, attrs...)
	body = encodeNLRIList(body, u.NLRI)
	return wrapMessage(MsgTypeUpdate, body)
}

func wrapMessage(typ uint8, body []byte) ([]byte, error) {
	total := headerLen + len(body)
	if total > MaxMessageLen {
		return nil, fmt.Errorf("bgp: message length %d exceeds %d", total, MaxMessageLen)
	}
	out := make([]byte, headerLen, total)
	for i := 0; i < 16; i++ {
		out[i] = 0xFF
	}
	binary.BigEndian.PutUint16(out[16:], uint16(total))
	out[18] = typ
	return append(out, body...), nil
}

// DecodeMessage parses one BGP message from b, which must contain exactly
// one whole message.
func DecodeMessage(b []byte) (Message, error) {
	if len(b) < headerLen {
		return nil, fmt.Errorf("bgp: message shorter than header (%d bytes)", len(b))
	}
	for i := 0; i < 16; i++ {
		if b[i] != 0xFF {
			return nil, fmt.Errorf("bgp: bad marker byte at %d", i)
		}
	}
	length := int(binary.BigEndian.Uint16(b[16:]))
	if length < headerLen || length > MaxMessageLen {
		return nil, fmt.Errorf("bgp: bad message length %d", length)
	}
	if len(b) < length {
		return nil, fmt.Errorf("bgp: message truncated (header says %d, have %d)", length, len(b))
	}
	typ := b[18]
	body := b[headerLen:length]
	switch typ {
	case MsgTypeOpen:
		return decodeOpen(body)
	case MsgTypeUpdate:
		return decodeUpdate(body)
	case MsgTypeKeepalive:
		if len(body) != 0 {
			return nil, fmt.Errorf("bgp: KEEPALIVE with %d body bytes", len(body))
		}
		return Keepalive{}, nil
	case MsgTypeNotification:
		if len(body) < 2 {
			return nil, fmt.Errorf("bgp: NOTIFICATION too short")
		}
		return &Notification{Code: body[0], Subcode: body[1], Data: append([]byte(nil), body[2:]...)}, nil
	default:
		return nil, fmt.Errorf("bgp: unknown message type %d", typ)
	}
}

func decodeOpen(body []byte) (*Open, error) {
	if len(body) < 10 {
		return nil, fmt.Errorf("bgp: OPEN too short")
	}
	return &Open{
		Version:  body[0],
		ASN:      uint32(binary.BigEndian.Uint16(body[1:])),
		HoldTime: binary.BigEndian.Uint16(body[3:]),
		RouterID: netip.AddrFrom4([4]byte(body[5:9])),
	}, nil
}

func decodeUpdate(body []byte) (*Update, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("bgp: UPDATE too short")
	}
	wdLen := int(binary.BigEndian.Uint16(body))
	if len(body) < 2+wdLen+2 {
		return nil, fmt.Errorf("bgp: UPDATE withdrawn block truncated")
	}
	wd, err := decodeNLRIList(body[2:2+wdLen], false)
	if err != nil {
		return nil, err
	}
	attrLenOff := 2 + wdLen
	attrLen := int(binary.BigEndian.Uint16(body[attrLenOff:]))
	attrOff := attrLenOff + 2
	if len(body) < attrOff+attrLen {
		return nil, fmt.Errorf("bgp: UPDATE attribute block truncated")
	}
	attrs, err := DecodeAttributes(body[attrOff : attrOff+attrLen])
	if err != nil {
		return nil, err
	}
	nlri, err := decodeNLRIList(body[attrOff+attrLen:], false)
	if err != nil {
		return nil, err
	}
	return &Update{Withdrawn: wd, Attrs: attrs, NLRI: nlri}, nil
}

// MaxCommunitiesPerMessage is the ceiling derived in §6.1: the attribute
// length field is 2 bytes and each community is 4 bytes, so a single
// UPDATE can carry at most 2^16/4 = 16384 communities (before the overall
// 4096-byte message cap bites first in practice).
const MaxCommunitiesPerMessage = 1 << 16 / 4
