package bgp

import (
	"fmt"
	"net/netip"
)

// AFI values (address family identifiers).
const (
	AFIIPv4 uint16 = 1
	AFIIPv6 uint16 = 2
)

// SAFIUnicast is the unicast subsequent address family.
const SAFIUnicast uint8 = 1

// appendNLRI appends the RFC 4271 NLRI encoding of p: one length byte in
// bits followed by the minimum number of prefix octets.
func appendNLRI(dst []byte, p netip.Prefix) []byte {
	p = p.Masked()
	dst = append(dst, byte(p.Bits()))
	n := (p.Bits() + 7) / 8
	if p.Addr().Is4() {
		b := p.Addr().As4()
		return append(dst, b[:n]...)
	}
	b := p.Addr().As16()
	return append(dst, b[:n]...)
}

// decodeNLRI reads one NLRI-encoded prefix of the given family from b,
// returning the prefix and bytes consumed.
func decodeNLRI(b []byte, v6 bool) (netip.Prefix, int, error) {
	if len(b) < 1 {
		return netip.Prefix{}, 0, fmt.Errorf("bgp: truncated NLRI")
	}
	bits := int(b[0])
	maxBits := 32
	if v6 {
		maxBits = 128
	}
	if bits > maxBits {
		return netip.Prefix{}, 0, fmt.Errorf("bgp: NLRI length %d exceeds %d bits", bits, maxBits)
	}
	n := (bits + 7) / 8
	if len(b) < 1+n {
		return netip.Prefix{}, 0, fmt.Errorf("bgp: truncated NLRI body (want %d bytes, have %d)", n, len(b)-1)
	}
	var addr netip.Addr
	if v6 {
		var raw [16]byte
		copy(raw[:], b[1:1+n])
		addr = netip.AddrFrom16(raw)
	} else {
		var raw [4]byte
		copy(raw[:], b[1:1+n])
		addr = netip.AddrFrom4(raw)
	}
	p := netip.PrefixFrom(addr, bits)
	if p.Masked() != p {
		// Trailing bits beyond the mask must be zero per convention; be
		// liberal and mask rather than reject.
		p = p.Masked()
	}
	return p, 1 + n, nil
}

// encodeNLRIList appends each prefix in ps.
func encodeNLRIList(dst []byte, ps []netip.Prefix) []byte {
	for _, p := range ps {
		dst = appendNLRI(dst, p)
	}
	return dst
}

// decodeNLRIList parses back-to-back NLRI entries filling exactly b.
func decodeNLRIList(b []byte, v6 bool) ([]netip.Prefix, error) {
	var out []netip.Prefix
	for len(b) > 0 {
		p, n, err := decodeNLRI(b, v6)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
		b = b[n:]
	}
	return out, nil
}
