package bgp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: DecodeMessage never panics on arbitrary input — it either
// errors or returns a message.
func TestProperty_DecodeMessageNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %x: %v", data, r)
			}
		}()
		_, _ = DecodeMessage(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: DecodeAttributes never panics on arbitrary input.
func TestProperty_DecodeAttributesNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %x: %v", data, r)
			}
		}()
		_, _ = DecodeAttributes(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Mutation robustness: flip bytes in valid messages; decoding must never
// panic, and successful decodes must re-encode without panicking.
func TestMutatedMessageRobustness(t *testing.T) {
	wire, err := sampleUpdate().Encode()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		mut := append([]byte(nil), wire...)
		flips := 1 + rng.Intn(4)
		for f := 0; f < flips; f++ {
			mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
		}
		msg, err := DecodeMessage(mut)
		if err != nil {
			continue
		}
		if u, ok := msg.(*Update); ok {
			_, _ = u.Encode()
		}
	}
}

// FuzzCommunityText is the native fuzzer for the community text codec:
// any input either fails ParseCommunity or yields a community whose
// String, Display, and MarshalText forms all parse back to the same
// 32-bit value. The seed corpus under testdata/fuzz/FuzzCommunityText
// covers the canonical form, every well-known name in both separator
// styles, boundary values, and malformed shapes.
func FuzzCommunityText(f *testing.F) {
	for _, seed := range []string{
		"0:0", "1:2", "65535:666", "65535:65281", "64512:100",
		"NO_EXPORT", "no-export", "BLACKHOLE", "blackhole", "NOPEER",
		"no_export_subconfed", "NO_ADVERTISE",
		"", ":", "1:", ":1", "1:2:3", "-1:5", "65536:0", "0:65536",
		"0x10:1", " 1:2", "1:2 ", "999999999999:1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		c, err := ParseCommunity(s)
		if err != nil {
			return // malformed input is allowed to fail, never to panic
		}
		for _, form := range []string{c.String(), c.Display()} {
			back, err := ParseCommunity(form)
			if err != nil {
				t.Fatalf("ParseCommunity(%q) ok but %q does not reparse: %v", s, form, err)
			}
			if back != c {
				t.Fatalf("round trip changed value: %q -> %v -> %q -> %v", s, c, form, back)
			}
		}
		text, err := c.MarshalText()
		if err != nil {
			t.Fatalf("MarshalText(%v): %v", c, err)
		}
		var um Community
		if err := um.UnmarshalText(text); err != nil {
			t.Fatalf("UnmarshalText(%q): %v", text, err)
		}
		if um != c {
			t.Fatalf("text round trip changed value: %v -> %s -> %v", c, text, um)
		}
	})
}

// Truncation robustness: every prefix of a valid message either errors or
// decodes (short prefixes must error).
func TestTruncatedMessageRobustness(t *testing.T) {
	wire, err := sampleUpdate().Encode()
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(wire); n++ {
		if _, err := DecodeMessage(wire[:n]); err == nil {
			t.Fatalf("truncated message of %d bytes decoded successfully", n)
		}
	}
}
