package bgp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: DecodeMessage never panics on arbitrary input — it either
// errors or returns a message.
func TestProperty_DecodeMessageNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %x: %v", data, r)
			}
		}()
		_, _ = DecodeMessage(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: DecodeAttributes never panics on arbitrary input.
func TestProperty_DecodeAttributesNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %x: %v", data, r)
			}
		}()
		_, _ = DecodeAttributes(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Mutation robustness: flip bytes in valid messages; decoding must never
// panic, and successful decodes must re-encode without panicking.
func TestMutatedMessageRobustness(t *testing.T) {
	wire, err := sampleUpdate().Encode()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		mut := append([]byte(nil), wire...)
		flips := 1 + rng.Intn(4)
		for f := 0; f < flips; f++ {
			mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
		}
		msg, err := DecodeMessage(mut)
		if err != nil {
			continue
		}
		if u, ok := msg.(*Update); ok {
			_, _ = u.Encode()
		}
	}
}

// Truncation robustness: every prefix of a valid message either errors or
// decodes (short prefixes must error).
func TestTruncatedMessageRobustness(t *testing.T) {
	wire, err := sampleUpdate().Encode()
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(wire); n++ {
		if _, err := DecodeMessage(wire[:n]); err == nil {
			t.Fatalf("truncated message of %d bytes decoded successfully", n)
		}
	}
}
