package bgp

import (
	"strconv"
	"strings"
)

// SegmentType identifies an AS_PATH segment kind (RFC 4271 §4.3).
type SegmentType uint8

const (
	// SegmentSet is an unordered AS_SET, counting as one hop.
	SegmentSet SegmentType = 1
	// SegmentSequence is an ordered AS_SEQUENCE.
	SegmentSequence SegmentType = 2
)

// PathSegment is one AS_PATH segment.
type PathSegment struct {
	Type SegmentType
	ASNs []uint32
}

// ASPath is an ordered list of path segments, nearest AS first.
type ASPath []PathSegment

// Path builds a single-sequence AS path from asns (nearest first).
func Path(asns ...uint32) ASPath {
	if len(asns) == 0 {
		return nil
	}
	return ASPath{{Type: SegmentSequence, ASNs: asns}}
}

// Sequence flattens the path into a single ASN list, expanding sets in
// their stored order. Nearest AS first.
func (p ASPath) Sequence() []uint32 {
	var out []uint32
	for _, seg := range p {
		out = append(out, seg.ASNs...)
	}
	return out
}

// HopLength returns the path length as used by best-path selection: each
// sequence ASN counts one, each AS_SET counts one regardless of size.
func (p ASPath) HopLength() int {
	n := 0
	for _, seg := range p {
		if seg.Type == SegmentSet {
			n++
		} else {
			n += len(seg.ASNs)
		}
	}
	return n
}

// Origin returns the last (origin) AS of the path, or 0 for an empty path.
func (p ASPath) Origin() uint32 {
	seq := p.Sequence()
	if len(seq) == 0 {
		return 0
	}
	return seq[len(seq)-1]
}

// First returns the first (neighbor) AS of the path, or 0 if empty.
func (p ASPath) First() uint32 {
	seq := p.Sequence()
	if len(seq) == 0 {
		return 0
	}
	return seq[0]
}

// Contains reports whether asn appears anywhere in the path.
func (p ASPath) Contains(asn uint32) bool {
	for _, seg := range p {
		for _, a := range seg.ASNs {
			if a == asn {
				return true
			}
		}
	}
	return false
}

// Prepend returns a new path with asn prepended n times as part of the
// leading sequence segment.
func (p ASPath) Prepend(asn uint32, n int) ASPath {
	if n <= 0 {
		return p.Clone()
	}
	pre := make([]uint32, n)
	for i := range pre {
		pre[i] = asn
	}
	out := p.Clone()
	if len(out) > 0 && out[0].Type == SegmentSequence {
		out[0].ASNs = append(pre, out[0].ASNs...)
		return out
	}
	return append(ASPath{{Type: SegmentSequence, ASNs: pre}}, out...)
}

// EqualSequence reports whether both paths flatten to the same ASN
// sequence (segment boundaries ignored, as Sequence would produce),
// without allocating — the hot-path form of comparing two Sequence()
// results.
func (p ASPath) EqualSequence(q ASPath) bool {
	pi, po, qi, qo := 0, 0, 0, 0
	for {
		for pi < len(p) && po >= len(p[pi].ASNs) {
			pi, po = pi+1, 0
		}
		for qi < len(q) && qo >= len(q[qi].ASNs) {
			qi, qo = qi+1, 0
		}
		pDone, qDone := pi >= len(p), qi >= len(q)
		if pDone || qDone {
			return pDone && qDone
		}
		if p[pi].ASNs[po] != q[qi].ASNs[qo] {
			return false
		}
		po++
		qo++
	}
}

// StripPrepending returns the flattened sequence with consecutive
// duplicates collapsed, the normalization the paper applies before all
// propagation analysis ("We remove AS path prepending to not bias the AS
// path", §4.1).
func (p ASPath) StripPrepending() []uint32 {
	seq := p.Sequence()
	out := seq[:0:0]
	for i, a := range seq {
		if i == 0 || a != seq[i-1] {
			out = append(out, a)
		}
	}
	return out
}

// Clone deep-copies the path.
func (p ASPath) Clone() ASPath {
	if p == nil {
		return nil
	}
	out := make(ASPath, len(p))
	for i, seg := range p {
		out[i] = PathSegment{Type: seg.Type, ASNs: append([]uint32(nil), seg.ASNs...)}
	}
	return out
}

// HasLoop reports whether any ASN repeats non-consecutively, or whether
// asn itself appears — the standard eBGP loop check an AS applies before
// accepting a route.
func (p ASPath) HasLoop(asn uint32) bool {
	return p.Contains(asn)
}

// String renders the path in the usual "A B C" display form, with sets as
// "{A,B}".
func (p ASPath) String() string {
	var b strings.Builder
	for i, seg := range p {
		if i > 0 {
			b.WriteByte(' ')
		}
		if seg.Type == SegmentSet {
			b.WriteByte('{')
			for j, a := range seg.ASNs {
				if j > 0 {
					b.WriteByte(',')
				}
				b.WriteString(strconv.FormatUint(uint64(a), 10))
			}
			b.WriteByte('}')
			continue
		}
		for j, a := range seg.ASNs {
			if j > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(strconv.FormatUint(uint64(a), 10))
		}
	}
	return b.String()
}

// IsPrivateASN reports whether asn falls in the RFC 6996 private ranges
// (64512–65534 16-bit, 4200000000–4294967294 32-bit) or is reserved
// (0, 65535, AS_TRANS boundary cases are not included).
func IsPrivateASN(asn uint32) bool {
	if asn >= 64512 && asn <= 65534 {
		return true
	}
	if asn >= 4200000000 && asn <= 4294967294 {
		return true
	}
	return asn == 0 || asn == 65535
}
