package simnet

import (
	"testing"

	"bgpworms/internal/bgp"
	"bgpworms/internal/netx"
	"bgpworms/internal/policy"
	"bgpworms/internal/router"
	"bgpworms/internal/topo"
)

// TestForwardingLoopDetected crafts inconsistent FIBs (two ASes pointing
// at each other) by injecting routes directly, and verifies the data
// plane reports a loop instead of spinning.
func TestForwardingLoopDetected(t *testing.T) {
	g := topo.NewGraph()
	g.AddPeering(1, 2)
	n := New(g, nil)
	p := netx.MustPrefix("203.0.113.0/24")

	mk := func(via topo.ASN) *policy.Route {
		r := policy.NewLocalRoute(p)
		r.ASPath = bgp.Path(via, 99)
		return r
	}
	// Inject contradicting state directly at the routers (bypassing
	// convergence, as a buggy or transiently-converging network would).
	if res, _ := n.Router(1).ReceiveUpdate(2, mk(2)); res != router.ImportAccepted {
		t.Fatal(res)
	}
	if res, _ := n.Router(2).ReceiveUpdate(1, mk(1)); res != router.ImportAccepted {
		t.Fatal(res)
	}
	tr := n.Forward(1, netx.NthAddr(p, 1))
	if tr.Outcome != ForwardingLoop {
		t.Fatalf("want loop, got %s", tr)
	}
	if len(tr.Hops) < 2 {
		t.Fatalf("hops=%v", tr.Hops)
	}
}

// TestFlapStormConvergence exercises repeated announce/withdraw cycles
// and verifies state returns exactly to baseline each time.
func TestFlapStormConvergence(t *testing.T) {
	g := topo.NewGraph()
	for _, e := range [][2]topo.ASN{{1, 2}, {2, 4}, {4, 3}, {4, 5}, {3, 6}, {5, 6}} {
		if err := g.AddCustomerProvider(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	n := New(g, nil)
	p := netx.MustPrefix("203.0.113.0/24")
	for i := 0; i < 25; i++ {
		if _, err := n.Announce(1, p, bgp.C(1, uint16(i))); err != nil {
			t.Fatal(err)
		}
		rt, ok := n.Router(6).BestRoute(p)
		if !ok || !rt.Communities.Has(bgp.C(1, uint16(i))) {
			t.Fatalf("iteration %d: AS6 state stale: %v", i, rt)
		}
		if _, err := n.Withdraw(1, p); err != nil {
			t.Fatal(err)
		}
		for _, asn := range n.ASes() {
			if _, ok := n.Router(asn).BestRoute(p); ok {
				t.Fatalf("iteration %d: AS%d kept a withdrawn route", i, asn)
			}
		}
	}
}

// TestConcurrentPrefixIndependence verifies prefixes converge
// independently: withdrawing one never disturbs another.
func TestConcurrentPrefixIndependence(t *testing.T) {
	g := topo.NewGraph()
	for _, e := range [][2]topo.ASN{{1, 2}, {2, 4}, {4, 3}, {3, 6}} {
		if err := g.AddCustomerProvider(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	n := New(g, nil)
	p1 := netx.MustPrefix("203.0.113.0/24")
	p2 := netx.MustPrefix("198.51.100.0/24")
	if _, err := n.Announce(1, p1); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Announce(1, p2); err != nil {
		t.Fatal(err)
	}
	before, _ := n.Router(6).BestRoute(p2)
	if _, err := n.Withdraw(1, p1); err != nil {
		t.Fatal(err)
	}
	after, ok := n.Router(6).BestRoute(p2)
	if !ok || after.ASPath.String() != before.ASPath.String() {
		t.Fatal("withdrawing p1 disturbed p2")
	}
}
