package simnet_test

// The differential engine property test: random worlds must converge to
// identical collector archives (the tap-derived record of every
// delivery), identical RIBs, and identical delivery counts under the
// rounds and delta engines and under 1/4/16 workers. The serial engine
// must agree on the converged RIBs (its delivery interleaving is
// different by design). On failure the harness shrinks the world —
// halving each topology/churn dimension while the failure reproduces —
// and reports the minimal failing configuration, which is the one worth
// debugging.

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"bgpworms/internal/gen"
)

// worldCfg is a shrinkable world recipe.
type worldCfg struct {
	Tier1, Mid, Stubs int
	Churn, RTBH       int
	Seed              int64
}

func (c worldCfg) String() string {
	return fmt.Sprintf("tier1=%d mid=%d stubs=%d churn=%d rtbh=%d seed=%d",
		c.Tier1, c.Mid, c.Stubs, c.Churn, c.RTBH, c.Seed)
}

func (c worldCfg) params() gen.Params {
	p := gen.Tiny()
	p.Tier1, p.Mid, p.Stubs = c.Tier1, c.Mid, c.Stubs
	p.ChurnEvents, p.RTBHEvents = c.Churn, c.RTBH
	p.Seed = c.Seed
	return p
}

// randomCfg draws a random small world; sizes stay in the range where a
// full build takes tens of milliseconds, so the property test can
// afford several configurations per run.
func randomCfg(rng *rand.Rand) worldCfg {
	return worldCfg{
		Tier1: 2 + rng.Intn(3),
		Mid:   4 + rng.Intn(12),
		Stubs: 10 + rng.Intn(50),
		Churn: 5 + rng.Intn(15),
		RTBH:  rng.Intn(4),
		Seed:  int64(1 + rng.Intn(1000)),
	}
}

// outcome captures everything the engines must agree on.
type outcome struct {
	steps    int
	archives []byte
	ribs     string
}

// buildOutcome builds the world under one engine/worker setting and
// collapses its observable state.
func buildOutcome(t *testing.T, cfg worldCfg, engine string, workers int) (*outcome, error) {
	t.Helper()
	p := cfg.params()
	p.Engine = engine
	p.Workers = workers
	w, err := gen.Build(p)
	if err != nil {
		return nil, err
	}
	return perturbAndCollapse(w)
}

// buildWarmOutcome builds the same world warm: freeze right after
// construction, fork, and run the identical perturbation on the fork.
// Its outcome must be bit-identical to buildOutcome's for every engine
// and worker count — the copy-on-write equivalence the snapshot layer
// promises.
func buildWarmOutcome(t *testing.T, cfg worldCfg, engine string, workers int) (*outcome, error) {
	t.Helper()
	p := cfg.params()
	p.Engine = engine
	p.Workers = workers
	snap, err := gen.BuildSnapshot(p)
	if err != nil {
		return nil, err
	}
	w, err := snap.Fork(nil)
	if err != nil {
		return nil, err
	}
	return perturbAndCollapse(w)
}

// perturbAndCollapse runs the churn month and collapses the observable
// state: delivery count, collector archives (updates + RIB dumps), and
// every router's converged RIB.
func perturbAndCollapse(w *gen.Internet) (*outcome, error) {
	if _, err := w.RunChurn(); err != nil {
		return nil, err
	}
	var arch bytes.Buffer
	for _, c := range w.Collectors {
		if _, err := c.WriteUpdatesMRT(&arch); err != nil {
			return nil, err
		}
		if _, err := c.WriteRIBSnapshotMRT(&arch, gen.BaseTime.AddDate(0, 1, 0)); err != nil {
			return nil, err
		}
	}
	var ribs strings.Builder
	for _, asn := range w.Net.ASes() {
		r := w.Net.Router(asn)
		for _, rt := range r.RIB() {
			fmt.Fprintf(&ribs, "AS%d %s\n", asn, rt)
		}
	}
	return &outcome{steps: w.Net.Steps(), archives: arch.Bytes(), ribs: ribs.String()}, nil
}

// checkCfg reports a non-empty divergence description if the engines
// disagree on cfg.
func checkCfg(t *testing.T, cfg worldCfg) string {
	t.Helper()
	ref, err := buildOutcome(t, cfg, "rounds", 1)
	if err != nil {
		return "rounds/1 build error: " + err.Error()
	}
	if ref.steps == 0 {
		return "rounds/1 produced an empty world"
	}
	for _, v := range []struct {
		engine  string
		workers int
	}{
		{"delta", 1}, {"delta", 4}, {"delta", 16},
		{"rounds", 4}, {"rounds", 16},
	} {
		got, err := buildOutcome(t, cfg, v.engine, v.workers)
		if err != nil {
			return fmt.Sprintf("%s/%d build error: %v", v.engine, v.workers, err)
		}
		if got.steps != ref.steps {
			return fmt.Sprintf("%s/%d deliveries %d != rounds/1 %d", v.engine, v.workers, got.steps, ref.steps)
		}
		if !bytes.Equal(got.archives, ref.archives) {
			return fmt.Sprintf("%s/%d collector archives diverge from rounds/1", v.engine, v.workers)
		}
		if got.ribs != ref.ribs {
			return fmt.Sprintf("%s/%d RIBs diverge from rounds/1", v.engine, v.workers)
		}
	}
	// The serial engine interleaves differently, so only the converged
	// control plane must agree.
	serial, err := buildOutcome(t, cfg, "serial", 1)
	if err != nil {
		return "serial/1 build error: " + err.Error()
	}
	if serial.ribs != ref.ribs {
		return "serial/1 converged RIBs diverge from rounds/1"
	}
	return ""
}

// shrink halves one dimension at a time while the failure (under check)
// reproduces, returning the smallest still-failing configuration and its
// failure.
func shrink(t *testing.T, cfg worldCfg, failure string, check func(*testing.T, worldCfg) string) (worldCfg, string) {
	t.Helper()
	for improved := true; improved; {
		improved = false
		for _, cand := range shrinkSteps(cfg) {
			if msg := check(t, cand); msg != "" {
				cfg, failure = cand, msg
				improved = true
				break
			}
		}
	}
	return cfg, failure
}

func shrinkSteps(c worldCfg) []worldCfg {
	var out []worldCfg
	add := func(n worldCfg) {
		if n != c {
			out = append(out, n)
		}
	}
	half := func(v, min int) int {
		if v/2 < min {
			return min
		}
		return v / 2
	}
	n := c
	n.Stubs = half(c.Stubs, 2)
	add(n)
	n = c
	n.Mid = half(c.Mid, 2)
	add(n)
	n = c
	n.Tier1 = half(c.Tier1, 1)
	add(n)
	n = c
	n.Churn = half(c.Churn, 0)
	add(n)
	n = c
	n.RTBH = half(c.RTBH, 0)
	add(n)
	return out
}

// TestDifferentialEngines is the randomized rounds-vs-delta oracle
// check with shrinking.
func TestDifferentialEngines(t *testing.T) {
	rng := rand.New(rand.NewSource(20180401))
	configs := 4
	if testing.Short() {
		configs = 1
	}
	for i := 0; i < configs; i++ {
		cfg := randomCfg(rng)
		if msg := checkCfg(t, cfg); msg != "" {
			min, minMsg := shrink(t, cfg, msg, checkCfg)
			t.Fatalf("engines diverge on {%s}: %s\nminimal failing config: {%s}: %s",
				cfg, msg, min, minMsg)
		}
	}
}

// checkWarmCfg reports a non-empty divergence description if a warm
// fork-then-perturb world differs from the scratch build anywhere: any
// engine, any worker count, any observable (delivery count, collector
// archives, converged RIBs).
func checkWarmCfg(t *testing.T, cfg worldCfg) string {
	t.Helper()
	for _, v := range []struct {
		engine  string
		workers int
	}{
		{"serial", 1},
		{"rounds", 1}, {"rounds", 4}, {"rounds", 16},
		{"delta", 1}, {"delta", 4}, {"delta", 16},
	} {
		cold, err := buildOutcome(t, cfg, v.engine, v.workers)
		if err != nil {
			return fmt.Sprintf("%s/%d cold build error: %v", v.engine, v.workers, err)
		}
		warm, err := buildWarmOutcome(t, cfg, v.engine, v.workers)
		if err != nil {
			return fmt.Sprintf("%s/%d warm build error: %v", v.engine, v.workers, err)
		}
		if warm.steps != cold.steps {
			return fmt.Sprintf("%s/%d warm deliveries %d != cold %d", v.engine, v.workers, warm.steps, cold.steps)
		}
		if !bytes.Equal(warm.archives, cold.archives) {
			return fmt.Sprintf("%s/%d warm collector archives diverge from cold", v.engine, v.workers)
		}
		if warm.ribs != cold.ribs {
			return fmt.Sprintf("%s/%d warm RIBs diverge from cold", v.engine, v.workers)
		}
	}
	return ""
}

// TestDifferentialWarmForks is the randomized fork-vs-scratch
// equivalence check with shrinking: a perturbed fork of a frozen world
// must be indistinguishable from the same world built and perturbed
// from scratch.
func TestDifferentialWarmForks(t *testing.T) {
	rng := rand.New(rand.NewSource(20180402))
	configs := 3
	if testing.Short() {
		configs = 1
	}
	for i := 0; i < configs; i++ {
		cfg := randomCfg(rng)
		if msg := checkWarmCfg(t, cfg); msg != "" {
			min, minMsg := shrink(t, cfg, msg, checkWarmCfg)
			t.Fatalf("warm fork diverges from scratch on {%s}: %s\nminimal failing config: {%s}: %s",
				cfg, msg, min, minMsg)
		}
	}
}

// TestDifferentialWarmForkTinyPreset pins the canonical tiny preset.
func TestDifferentialWarmForkTinyPreset(t *testing.T) {
	cfg := worldCfg{Tier1: 3, Mid: 10, Stubs: 40, Churn: 25, RTBH: 4, Seed: 1} // == gen.Tiny()
	if msg := checkWarmCfg(t, cfg); msg != "" {
		t.Fatalf("warm fork diverges from scratch on the tiny preset: %s", msg)
	}
}

// TestDifferentialEnginesTinyPreset pins the canonical presets the
// acceptance criteria name: tiny always, small unless -short.
func TestDifferentialEnginesTinyPreset(t *testing.T) {
	cfg := worldCfg{Tier1: 3, Mid: 10, Stubs: 40, Churn: 25, RTBH: 4, Seed: 1} // == gen.Tiny()
	if msg := checkCfg(t, cfg); msg != "" {
		t.Fatalf("engines diverge on the tiny preset: %s", msg)
	}
}

func TestDifferentialEnginesSmallPreset(t *testing.T) {
	if testing.Short() {
		t.Skip("small preset differential check skipped in -short mode")
	}
	cfg := worldCfg{Tier1: 5, Mid: 40, Stubs: 200, Churn: 120, RTBH: 12, Seed: 1} // == gen.Small()
	if msg := checkCfg(t, cfg); msg != "" {
		t.Fatalf("engines diverge on the small preset: %s", msg)
	}
}
