package simnet

import (
	"fmt"
	"net/netip"
	"slices"
	"sync"

	"bgpworms/internal/conc"
	"bgpworms/internal/netx"
	"bgpworms/internal/policy"
	"bgpworms/internal/router"
	"bgpworms/internal/topo"
)

// The delta engine (EngineDelta) converges the same propagation queue
// as the rounds engine but is organized around change, not rounds over
// sorted global frontiers:
//
//   - work lives in per-router dirty-prefix buckets keyed by a dense
//     router index, so a round never sorts a global frontier or clears
//     a global dedup map — only the dirty router ids (ints) and each
//     router's few dirty prefixes are ordered;
//   - exports run through router.ExportAll, which does the
//     neighbor-independent work once per (router, prefix) and shares
//     one route object per policy class across sessions — the compact
//     AS-path/community slabs that keep memory flat at large scale;
//   - receives run through router.ReceiveShared, whose copy-on-write
//     import keeps those slabs shared until a router actually tags the
//     route;
//   - all scratch (buckets, outboxes, inboxes) is reused across rounds
//     and runs, so steady-state convergence allocates only real routing
//     state.
//
// Determinism contract: the delta engine delivers updates in exactly
// the canonical order the rounds engine uses (sources ascending, dirty
// prefixes in canonical order, neighbors ascending), applies them under
// the same barriers, and therefore produces bit-identical tap streams,
// delivery counts, and final RIBs — for any worker count, and equal to
// EngineRounds on the same workload. TestDifferentialEngines holds both
// engines to that contract on randomized worlds.

// deltaState is the delta engine's cached world view plus reusable
// scratch. It is rebuilt when routers are added and refreshed per run
// when sessions changed (Router.NeighborVersion).
type deltaState struct {
	order []topo.ASN            // all routers, ascending
	index map[topo.ASN]int      // ASN -> dense index (fallback)
	byASN []int32               // dense ASN -> index table (fast path)
	nbs   [][]topo.ASN          // modelled neighbors per router, ascending
	hints []*router.ExportHints // per-neighbor export policy, nbs-aligned
	nbVer []int                 // Router.NeighborVersion at last refresh

	items   [][]netip.Prefix      // per-router dirty prefixes (current round)
	srcs    []int                 // dirty router indices, ascending
	next    []int                 // dirty router indices for the next round
	outs    [][]delivery          // per-dirty-router outboxes, reused
	exp     [][]router.ExportItem // per-chunk export scratch, reused
	inbox   [][]delivery          // per-router inboxes, reused
	touched []int                 // router indices with non-empty inboxes
	changed [][]netip.Prefix      // per-touched changed prefixes, reused
}

// maxDenseASN bounds the direct-index table; generated worlds stay far
// below it, and anything above (real 4-byte ASNs from sampled CAIDA
// tables) falls back to the map.
const maxDenseASN = 1 << 21

func (st *deltaState) idx(asn topo.ASN) int {
	if st.byASN != nil && asn < maxDenseASN {
		return int(st.byASN[asn])
	}
	return st.index[asn]
}

// invalidateDelta drops the cached dense index; the next delta run
// rebuilds it. Called when routers are added out of band.
func (n *Network) invalidateDelta() { n.delta = nil }

// deltaStateFor returns a fresh or refreshed state for the current
// router and session population.
func (n *Network) deltaStateFor() *deltaState {
	st := n.delta
	if st == nil || len(st.order) != len(n.routers) {
		st = &deltaState{
			order: make([]topo.ASN, 0, len(n.routers)),
			index: make(map[topo.ASN]int, len(n.routers)),
		}
		maxASN := topo.ASN(0)
		for a := range n.routers {
			st.order = append(st.order, a)
			if a > maxASN {
				maxASN = a
			}
		}
		slices.Sort(st.order)
		for i, a := range st.order {
			st.index[a] = i
		}
		if maxASN < maxDenseASN {
			st.byASN = make([]int32, maxASN+1)
			for i, a := range st.order {
				st.byASN[a] = int32(i)
			}
		}
		st.nbs = make([][]topo.ASN, len(st.order))
		st.hints = make([]*router.ExportHints, len(st.order))
		st.nbVer = make([]int, len(st.order))
		st.items = make([][]netip.Prefix, len(st.order))
		st.inbox = make([][]delivery, len(st.order))
		n.delta = st
	}
	// Refresh neighbor caches for routers whose session set changed.
	for i, asn := range st.order {
		r := n.routers[asn]
		if v := r.NeighborVersion(); st.nbs[i] == nil || v != st.nbVer[i] {
			st.nbVer[i] = v
			nbs := st.nbs[i][:0]
			for _, nb := range r.Neighbors() {
				if n.routers[nb] != nil { // skip sessions to unmodelled nodes
					nbs = append(nbs, nb)
				}
			}
			st.nbs[i] = nbs
			if st.nbs[i] == nil {
				st.nbs[i] = []topo.ASN{}
			}
			st.hints[i] = r.Hints(st.nbs[i])
		}
	}
	return st
}

// runDelta drains the propagation queue with the delta engine.
func (n *Network) runDelta(workers int) (int, error) {
	st := n.deltaStateFor()
	delivered := 0
	maxWork := n.maxDeliveries()
	// Compact the tap list once per run; the per-delivery loop in phase
	// 2 is the engine's hottest serial section.
	taps := make([]UpdateTap, 0, len(n.taps))
	for _, t := range n.taps {
		if t != nil {
			taps = append(taps, t)
		}
	}

	// Seed the dirty buckets from the externally scheduled queue, then
	// keep all rounds internal: the global queue and its dedup map stay
	// tiny (they only ever see Announce/Withdraw entry points).
	st.srcs = st.srcs[:0]
	for _, it := range n.queue {
		ri := st.idx(it.asn)
		if len(st.items[ri]) == 0 {
			st.srcs = append(st.srcs, ri)
		}
		if !containsPrefix(st.items[ri], it.prefix) {
			st.items[ri] = append(st.items[ri], it.prefix)
		}
	}
	n.queue = n.queue[:0]
	clear(n.queued)

	// Churn tallies accumulate locally in the serial sections and flush
	// to the package counters once per run (obs.go).
	var tally deltaRoundTally
	defer tally.flush()

	for len(st.srcs) > 0 {
		tally.rounds++
		tally.exports += uint64(len(st.srcs))
		slices.Sort(st.srcs)
		if n.cow {
			// Copy-on-write barrier: phase 1 mutates source Adj-RIB-Outs
			// from worker goroutines; clone sealed sources here, in the
			// serial section. Destinations are cloned at first touch in
			// the (serial) phase-2 binning loop below.
			for _, ri := range st.srcs {
				n.mutable(st.order[ri])
			}
		}
		for _, ri := range st.srcs {
			ps := st.items[ri]
			tally.prefixes += uint64(len(ps))
			slices.SortFunc(ps, netx.ComparePrefix)
		}
		for len(st.outs) < len(st.srcs) {
			st.outs = append(st.outs, nil)
		}
		for len(st.exp) < len(st.srcs) {
			st.exp = append(st.exp, nil)
		}

		// Phase 1: exports, sharded by source router. ExportAll and
		// RecordAdvertised touch only the source, so each shard owns its
		// routers' state.
		doChunked(len(st.srcs), workers, func(k int) {
			ri := st.srcs[k]
			src := n.routers[st.order[ri]]
			out := st.outs[k][:0]
			for _, p := range st.items[ri] {
				exp := src.ExportAll(p, st.nbs[ri], st.hints[ri], st.exp[k][:0])
				st.exp[k] = exp
				// One Adj-RIB-Out merge per (router, prefix): only
				// sessions whose advertisement changed become
				// deliveries (suppressed exports withdraw if
				// previously sent).
				src.RecordAdvertisedAll(p, exp, func(nb topo.ASN, rt *policy.Route) {
					out = append(out, delivery{from: st.order[ri], to: nb, prefix: p, rt: rt})
				})
			}
			st.outs[k] = out
			st.items[ri] = st.items[ri][:0]
		})

		// Phase 2: fire taps in canonical order and bin deliveries into
		// per-destination inboxes (serial, so tap streams and inbox
		// order are worker-count invariant).
		st.touched = st.touched[:0]
		for k := range st.srcs {
			for _, d := range st.outs[k] {
				delivered++
				n.steps++
				for _, t := range taps {
					t(d.from, d.to, d.prefix, d.rt)
				}
				if delivered > maxWork {
					// Scratch (inboxes, buckets) is mid-round dirty;
					// drop the cached state so a later Run starts clean
					// instead of silently swallowing stale deliveries.
					n.invalidateDelta()
					return delivered, fmt.Errorf("simnet: no convergence after %d deliveries", delivered)
				}
				di := st.idx(d.to)
				if len(st.inbox[di]) == 0 {
					st.touched = append(st.touched, di)
					if n.cow {
						n.mutable(d.to)
					}
				}
				st.inbox[di] = append(st.inbox[di], d)
			}
		}

		// Phase 3: apply inboxes, sharded by destination router.
		for len(st.changed) < len(st.touched) {
			st.changed = append(st.changed, nil)
		}
		doChunked(len(st.touched), workers, func(k int) {
			di := st.touched[k]
			dst := n.routers[st.order[di]]
			// Apply every delivery first, then decide once per mutated
			// prefix: the candidate set after the whole inbox is what a
			// per-delivery decide sequence converges to, and transient
			// intermediate bests could only have triggered no-op
			// re-exports (see Router.ReceiveSharedNoDecide).
			dirty := st.changed[k][:0]
			for _, d := range st.inbox[di] {
				mutated := false
				if d.rt != nil {
					mutated = dst.ReceiveSharedNoDecide(d.from, d.rt) == router.ImportAccepted
				} else {
					mutated = dst.WithdrawNoDecide(d.from, d.prefix)
				}
				if mutated && !containsPrefix(dirty, d.prefix) {
					dirty = append(dirty, d.prefix)
				}
			}
			ch := dirty[:0]
			for _, p := range dirty {
				if dst.Decide(p) {
					ch = append(ch, p)
				}
			}
			st.inbox[di] = st.inbox[di][:0]
			st.changed[k] = ch
		})

		// Phase 4: the changed prefixes become the next round's dirty
		// buckets directly — no global queue, no dedup map. Each touched
		// router appears once and its changed set is already deduped.
		st.next = st.next[:0]
		for k, di := range st.touched {
			if len(st.changed[k]) == 0 {
				continue
			}
			if len(st.items[di]) != 0 {
				// Defensive: buckets are empty between rounds.
				panic("simnet: delta bucket not drained")
			}
			st.items[di] = append(st.items[di], st.changed[k]...)
			st.next = append(st.next, di)
		}
		st.srcs, st.next = st.next, st.srcs
	}
	return delivered, nil
}

// doChunked runs fn(i) for i in [0, n) over at most workers goroutines,
// handing each worker one contiguous chunk instead of streaming single
// indices through a channel (conc.Do): the delta engine's shards are
// fine-grained, and per-index dispatch costs more than the work on
// small rounds. Chunking cannot change results — every fn(i) writes
// only slot i's state.
func doChunked(n, workers int, fn func(i int)) {
	if workers <= 1 || n <= 32 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	for _, c := range conc.Chunks(n, workers) {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(c[0], c[1])
	}
	wg.Wait()
}

// containsPrefix is the small-slice membership check used for the
// per-destination changed set; a round rarely dirties more than a
// handful of prefixes per router, so linear scan beats a map.
func containsPrefix(ps []netip.Prefix, p netip.Prefix) bool {
	for _, q := range ps {
		if q == p {
			return true
		}
	}
	return false
}
