package simnet

import (
	"fmt"
	"net/netip"
	"runtime"
	"sort"

	"bgpworms/internal/conc"
	"bgpworms/internal/netx"
	"bgpworms/internal/policy"
	"bgpworms/internal/router"
	"bgpworms/internal/topo"
)

// SetWorkers sizes the parallel engines' shard pool. Under the default
// EngineAuto, 1 keeps the serial FIFO work-queue engine and any other
// value switches Run to the delta engine with that many workers (0 =
// one per available CPU); SetEngine overrides the choice. The parallel
// engines' results — convergence counts, tap delivery order, and final
// RIB state — are independent of the worker count: rounds are logical
// barriers and all cross-router effects are applied in a canonical
// order, so workers only split work inside a phase.
func (n *Network) SetWorkers(w int) {
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	n.workers = w
}

// Workers returns the configured engine parallelism (1 = serial engine).
func (n *Network) Workers() int {
	if n.workers == 0 {
		return 1
	}
	return n.workers
}

// delivery is one update crossing a session during a round: rt is nil
// for withdrawals, mirroring UpdateTap.
type delivery struct {
	from, to topo.ASN
	prefix   netip.Prefix
	rt       *policy.Route
}

// runRounds drains the propagation queue with the parallel engine. Each
// round is a synchronous step over the current frontier:
//
//  1. export (parallel, sharded by source router): every frontier item
//     computes its per-neighbor exports; ExportTo reads only the source
//     and RecordAdvertised writes only the source's Adj-RIB-Out, so
//     sharding by source keeps router state single-owner;
//  2. observe (serial): deliveries fire the taps in canonical frontier
//     order — sources ascending, items in (ASN, prefix) order, neighbors
//     ascending — and the convergence bound is enforced;
//  3. receive (parallel, sharded by destination router): each router
//     drains its inbox in the canonical order of step 2; ReceiveUpdate /
//     ReceiveWithdraw mutate only the destination;
//  4. schedule (serial): routers whose best route changed enqueue the
//     next frontier, again in canonical order.
//
// The barriers between phases mean every phase sees the same router
// state regardless of how many workers split the shards, which is what
// makes the engine deterministic for any worker count.
func (n *Network) runRounds(workers int) (int, error) {
	delivered := 0
	for len(n.queue) > 0 {
		frontier := n.queue
		n.queue = nil
		clear(n.queued)
		sort.Slice(frontier, func(i, j int) bool {
			if frontier[i].asn != frontier[j].asn {
				return frontier[i].asn < frontier[j].asn
			}
			return netx.ComparePrefix(frontier[i].prefix, frontier[j].prefix) < 0
		})

		// Group frontier items by source router, preserving sort order.
		var srcOrder []topo.ASN
		bySrc := make(map[topo.ASN][]workItem)
		for _, it := range frontier {
			if _, seen := bySrc[it.asn]; !seen {
				srcOrder = append(srcOrder, it.asn)
			}
			bySrc[it.asn] = append(bySrc[it.asn], it)
		}

		// Copy-on-write barrier: phase 1 mutates source Adj-RIB-Outs from
		// worker goroutines, so any still-sealed sources are cloned here,
		// in the serial section, where the router map is single-owner.
		if n.cow {
			for _, a := range srcOrder {
				n.mutable(a)
			}
		}

		// Phase 1: compute exports per source.
		outs := make([][]delivery, len(srcOrder))
		conc.Do(len(srcOrder), workers, func(i int) {
			src := n.routers[srcOrder[i]]
			var ds []delivery
			for _, it := range bySrc[srcOrder[i]] {
				for _, nb := range src.Neighbors() {
					if n.routers[nb] == nil {
						continue // session to an unmodelled node (e.g. a pure tap)
					}
					out, decision := src.ExportTo(nb, it.prefix)
					if decision != router.ExportSent {
						out = nil // anything not sent is a withdrawal if previously sent
					}
					if !src.RecordAdvertised(nb, it.prefix, out) {
						continue // nothing new on this session
					}
					ds = append(ds, delivery{from: it.asn, to: nb, prefix: it.prefix, rt: out})
				}
			}
			outs[i] = ds
		})

		// Phase 2: count deliveries and fire taps in canonical order.
		var round []delivery
		for _, ds := range outs {
			round = append(round, ds...)
		}
		for _, d := range round {
			delivered++
			n.steps++
			for _, t := range n.taps {
				if t != nil {
					t(d.from, d.to, d.prefix, d.rt)
				}
			}
			if delivered > n.maxDeliveries() {
				return delivered, fmt.Errorf("simnet: no convergence after %d deliveries", delivered)
			}
		}

		// Phase 3: apply inboxes per destination.
		var dstOrder []topo.ASN
		byDst := make(map[topo.ASN][]delivery)
		for _, d := range round {
			if _, seen := byDst[d.to]; !seen {
				dstOrder = append(dstOrder, d.to)
				if n.cow {
					// Destinations mutate in phase 3's worker pool; clone
					// sealed ones now, while still serial.
					n.mutable(d.to)
				}
			}
			byDst[d.to] = append(byDst[d.to], d)
		}
		changed := make([][]netip.Prefix, len(dstOrder))
		conc.Do(len(dstOrder), workers, func(i int) {
			dst := n.routers[dstOrder[i]]
			seen := make(map[netip.Prefix]bool)
			var ch []netip.Prefix
			for _, d := range byDst[dstOrder[i]] {
				reschedule := false
				if d.rt != nil {
					res, chg := dst.ReceiveUpdate(d.from, d.rt)
					reschedule = res == router.ImportAccepted && chg
				} else {
					reschedule = dst.ReceiveWithdraw(d.from, d.prefix)
				}
				if reschedule && !seen[d.prefix] {
					seen[d.prefix] = true
					ch = append(ch, d.prefix)
				}
			}
			changed[i] = ch
		})

		// Phase 4: build the next frontier in canonical order.
		for i, dst := range dstOrder {
			for _, p := range changed[i] {
				n.schedule(dst, p)
			}
		}
	}
	return delivered, nil
}
