package simnet

import (
	"net/netip"
	"testing"

	"bgpworms/internal/bgp"
	"bgpworms/internal/netx"
	"bgpworms/internal/policy"
	"bgpworms/internal/router"
	"bgpworms/internal/topo"
)

var pfx = netx.MustPrefix("203.0.113.0/24")

// paperFig2 builds the Figure 2 topology:
// AS1 -- AS2 -- AS4 -- {AS3, AS5} -- AS6, with AS1 customer of AS2,
// AS2 customer of AS4, AS3/AS5 customers of AS4... Actually in Figure 2
// AS4 announces to AS3 and AS5, which announce to AS6. Model AS4 as
// customer of AS3 and AS5, and AS3/AS5 as customers of AS6's providers.
// For test purposes: AS1<AS2<AS4<{AS3,AS5}<AS6 (X<Y: X customer of Y).
func paperFig2(t *testing.T) *topo.Graph {
	t.Helper()
	g := topo.NewGraph()
	for _, e := range [][2]topo.ASN{{1, 2}, {2, 4}, {4, 3}, {4, 5}, {3, 6}, {5, 6}} {
		if err := g.AddCustomerProvider(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestAnnouncePropagatesEverywhere(t *testing.T) {
	g := paperFig2(t)
	n := New(g, nil)
	if _, err := n.Announce(1, pfx, bgp.C(1, 200)); err != nil {
		t.Fatal(err)
	}
	for _, asn := range n.ASes() {
		rt, ok := n.Router(asn).BestRoute(pfx)
		if !ok {
			t.Fatalf("AS%d has no route", asn)
		}
		if asn != 1 && rt.ASPath.Origin() != 1 {
			t.Fatalf("AS%d origin=%d", asn, rt.ASPath.Origin())
		}
	}
	// Communities propagated through forward-all defaults.
	rt, _ := n.Router(6).BestRoute(pfx)
	if !rt.Communities.Has(bgp.C(1, 200)) {
		t.Fatalf("AS6 lost origin community: %v", rt.Communities)
	}
	// AS6 reached via shortest valley-free path: 6 gets the route through
	// 3 or 5 (both length 4: 3/5,4,2,1); tie-break = lower ASN 3.
	seq := rt.ASPath.Sequence()
	if len(seq) != 4 || seq[0] != 3 {
		t.Fatalf("AS6 path=%v", seq)
	}
}

func TestWithdrawReconverges(t *testing.T) {
	g := paperFig2(t)
	n := New(g, nil)
	if _, err := n.Announce(1, pfx); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Withdraw(1, pfx); err != nil {
		t.Fatal(err)
	}
	for _, asn := range n.ASes() {
		if _, ok := n.Router(asn).BestRoute(pfx); ok {
			t.Fatalf("AS%d still has a route after withdrawal", asn)
		}
	}
}

func TestGaoRexfordValleyPrevention(t *testing.T) {
	// Two providers peering, each with one customer. Customers must reach
	// each other through the peering, but one provider must never transit
	// the other's traffic upward (no valley).
	g := topo.NewGraph()
	g.AddPeering(10, 20)
	g.AddCustomerProvider(11, 10)
	g.AddCustomerProvider(21, 20)
	n := New(g, nil)
	if _, err := n.Announce(11, pfx); err != nil {
		t.Fatal(err)
	}
	// 21 must have the route via 20,10,11.
	rt, ok := n.Router(21).BestRoute(pfx)
	if !ok {
		t.Fatal("AS21 unreachable")
	}
	want := []uint32{20, 10, 11}
	seq := rt.ASPath.Sequence()
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("path=%v", seq)
		}
	}
	// Peer 20 must NOT re-export a peer route to its peer 10 (checked via
	// the valley-free property of all paths).
	if !g.ValleyFree(seq) {
		t.Fatalf("path %v is not valley-free", seq)
	}
}

func TestDataPlaneForwardDeliver(t *testing.T) {
	g := paperFig2(t)
	n := New(g, nil)
	n.Announce(1, pfx)
	dst := netx.NthAddr(pfx, 1)
	tr := n.Forward(6, dst)
	if tr.Outcome != Delivered || tr.FinalAS != 1 {
		t.Fatalf("trace=%s", tr)
	}
	if len(tr.Hops) < 3 || tr.Hops[0] != 6 {
		t.Fatalf("hops=%v", tr.Hops)
	}
	if !n.Ping(6, dst) {
		t.Fatal("ping should succeed")
	}
	// Unknown destination.
	tr = n.Forward(6, netip.MustParseAddr("8.8.8.8"))
	if tr.Outcome != NoRoute {
		t.Fatalf("want no-route, got %v", tr.Outcome)
	}
	if n.Ping(6, netip.MustParseAddr("8.8.8.8")) {
		t.Fatal("ping to unknown must fail")
	}
}

func TestBlackholeStopsDataPlane(t *testing.T) {
	// AS3 offers RTBH. AS2 (attacker, on path) tags AS1's prefix.
	g := topo.NewGraph()
	g.AddCustomerProvider(1, 2)
	g.AddCustomerProvider(2, 3)
	g.AddCustomerProvider(4, 3)
	bh := bgp.C(3, 666)
	n := New(g, func(asn topo.ASN) router.Config {
		cfg := DefaultConfig(asn)
		if asn == 3 {
			cfg.Catalog = policy.NewCatalog(3).Add(policy.Service{Community: bh, Kind: policy.SvcBlackhole})
			cfg.BlackholeMinLen = 24
		}
		return cfg
	})
	// AS1 announces tagged with AS3's blackhole community (fat-finger or
	// malicious AS2 is equivalent here: community arrives at AS3).
	n.Announce(1, pfx, bh)
	rt, _ := n.Router(3).BestRoute(pfx)
	if !rt.Blackhole {
		t.Fatal("AS3 should null-route")
	}
	tr := n.Forward(4, netx.NthAddr(pfx, 1))
	if tr.Outcome != Blackholed || tr.FinalAS != 3 {
		t.Fatalf("trace=%s", tr)
	}
	// AS2 itself still reaches AS1 (it is below the blackhole point).
	if !n.Ping(2, netx.NthAddr(pfx, 1)) {
		t.Fatal("AS2 should still reach AS1")
	}
}

func TestLookingGlass(t *testing.T) {
	g := paperFig2(t)
	n := New(g, nil)
	n.Announce(1, pfx, bgp.C(1, 200))
	lg := n.LookingGlass(6)
	rt, ok := lg.Route(pfx)
	if !ok || rt.ASPath.Origin() != 1 {
		t.Fatalf("lg route=%v ok=%v", rt, ok)
	}
	if lg.Show(pfx) == "" || len(lg.RIB()) != 1 {
		t.Fatal("lg views wrong")
	}
	if got := lg.Show(netx.MustPrefix("10.0.0.0/8")); got == "" {
		t.Fatal("missing-prefix view should explain itself")
	}
	// Glass at unknown AS.
	if _, ok := n.LookingGlass(999).Route(pfx); ok {
		t.Fatal("unknown AS glass must be empty")
	}
	if n.LookingGlass(999).RIB() != nil {
		t.Fatal("unknown AS RIB must be nil")
	}
}

func TestTapObservesUpdatesAndWithdrawals(t *testing.T) {
	g := paperFig2(t)
	n := New(g, nil)
	var updates, withdrawals int
	n.Tap(func(from, to topo.ASN, p netip.Prefix, rt *policy.Route) {
		if rt != nil {
			updates++
		} else {
			withdrawals++
		}
	})
	n.Announce(1, pfx)
	if updates == 0 {
		t.Fatal("tap saw no updates")
	}
	n.Withdraw(1, pfx)
	if withdrawals == 0 {
		t.Fatal("tap saw no withdrawals")
	}
}

func TestConnectAndAddRouter(t *testing.T) {
	g := paperFig2(t)
	n := New(g, nil)
	extra := router.New(router.Config{ASN: 99, Vendor: router.VendorJuniper})
	n.AddRouter(extra)
	if err := n.Connect(99, 2, topo.RelProvider); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect(99, 1000, topo.RelPeer); err == nil {
		t.Fatal("connect to missing router must fail")
	}
	if _, err := n.Announce(99, netx.MustPrefix("198.51.100.0/24")); err != nil {
		t.Fatal(err)
	}
	// The new stub's prefix reaches the whole network.
	if _, ok := n.Router(6).BestRoute(netx.MustPrefix("198.51.100.0/24")); !ok {
		t.Fatal("AS6 missing extra router's prefix")
	}
	// Unknown-AS announce errors.
	if _, err := n.Announce(12345, pfx); err == nil {
		t.Fatal("unknown announce must fail")
	}
	if _, err := n.Withdraw(12345, pfx); err == nil {
		t.Fatal("unknown withdraw must fail")
	}
}

func TestPrependSteersPathSelection(t *testing.T) {
	// Figure 2: AS6 reaches p via AS3 (tie-break) until AS3:x3 prepending
	// makes the AS5 path shorter.
	g := paperFig2(t)
	prependComm := bgp.C(3, 103)
	n := New(g, func(asn topo.ASN) router.Config {
		cfg := DefaultConfig(asn)
		if asn == 3 {
			cfg.Catalog = policy.NewCatalog(3).Add(policy.Service{Community: prependComm, Kind: policy.SvcPrepend, Param: 3})
		}
		return cfg
	})
	// Baseline.
	n.Announce(1, pfx)
	rt, _ := n.Router(6).BestRoute(pfx)
	if rt.ASPath.First() != 3 {
		t.Fatalf("baseline path=%v", rt.ASPath)
	}
	// Attacker AS1 (origin side) retags with AS3's prepend community.
	n.Withdraw(1, pfx)
	n.Announce(1, pfx, prependComm)
	rt, _ = n.Router(6).BestRoute(pfx)
	if rt.ASPath.First() != 5 {
		t.Fatalf("steered path=%v (want via AS5)", rt.ASPath)
	}
}

func TestTransparentRouteServerOffPath(t *testing.T) {
	// Two members peer via a transparent route server (the IXP pattern).
	g := topo.NewGraph()
	g.AddAS(100)
	g.AddAS(200)
	n := New(g, nil)
	rs := router.New(router.Config{
		ASN: 900, Vendor: router.VendorJuniper,
		Propagation: policy.PropForwardAll,
		Transparent: true, ReflectAll: true,
	})
	n.AddRouter(rs)
	n.Connect(100, 900, topo.RelPeer)
	n.Connect(200, 900, topo.RelPeer)

	if _, err := n.Announce(100, pfx, bgp.C(900, 77)); err != nil {
		t.Fatal(err)
	}
	rt, ok := n.Router(200).BestRoute(pfx)
	if !ok {
		t.Fatal("member 200 missing route")
	}
	if rt.ASPath.Contains(900) {
		t.Fatalf("route server must stay off path: %v", rt.ASPath)
	}
	// The RS community (900:77) is off-path at AS200.
	if !rt.Communities.Has(bgp.C(900, 77)) {
		t.Fatal("RS community lost")
	}
	// Data plane: 200 -> RS -> 100 still delivers.
	tr := n.Forward(200, netx.NthAddr(pfx, 1))
	if tr.Outcome != Delivered || tr.FinalAS != 100 {
		t.Fatalf("trace=%s", tr)
	}
}

func TestConvergenceBoundTriggers(t *testing.T) {
	g := paperFig2(t)
	n := New(g, nil)
	n.SetMaxDeliveries(1)
	if _, err := n.Announce(1, pfx); err == nil {
		t.Fatal("tiny bound should trip")
	}
}

func TestOutcomeStrings(t *testing.T) {
	for _, o := range []Outcome{Delivered, Blackholed, NoRoute, ForwardingLoop, Outcome(99)} {
		if o.String() == "" {
			t.Fatal("empty outcome string")
		}
	}
}

func TestStepsAccumulate(t *testing.T) {
	g := paperFig2(t)
	n := New(g, nil)
	n.Announce(1, pfx)
	if n.Steps() == 0 {
		t.Fatal("steps should accumulate")
	}
}

func BenchmarkConvergenceFig2(b *testing.B) {
	g := topo.NewGraph()
	for _, e := range [][2]topo.ASN{{1, 2}, {2, 4}, {4, 3}, {4, 5}, {3, 6}, {5, 6}} {
		g.AddCustomerProvider(e[0], e[1])
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := New(g, nil)
		if _, err := n.Announce(1, pfx); err != nil {
			b.Fatal(err)
		}
	}
}
