package simnet

import (
	"fmt"
	"net/netip"

	"bgpworms/internal/policy"
	"bgpworms/internal/topo"
)

// Outcome classifies what happened to a forwarded packet.
type Outcome int

// Forwarding outcomes.
const (
	// Delivered: the packet reached the AS originating a covering prefix.
	Delivered Outcome = iota
	// Blackholed: an AS on the path null-routed the destination (RTBH).
	Blackholed
	// NoRoute: an AS had no FIB entry for the destination.
	NoRoute
	// ForwardingLoop: the AS-level path revisited an AS.
	ForwardingLoop
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Delivered:
		return "delivered"
	case Blackholed:
		return "blackholed"
	case NoRoute:
		return "no-route"
	case ForwardingLoop:
		return "loop"
	default:
		return "unknown"
	}
}

// Trace is an AS-level forwarding trace — the simulator's traceroute.
type Trace struct {
	Src     topo.ASN
	Dst     netip.Addr
	Hops    []topo.ASN // ASes traversed, source first
	Outcome Outcome
	// FinalAS is where the packet ended up (delivery, drop, or no-route
	// point).
	FinalAS topo.ASN
}

// String renders a one-line trace.
func (t Trace) String() string {
	return fmt.Sprintf("AS%d -> %s: %v hops=%v (at AS%d)", t.Src, t.Dst, t.Outcome, t.Hops, t.FinalAS)
}

// maxForwardHops caps AS-level forwarding; Internet AS paths rarely exceed
// a dozen hops.
const maxForwardHops = 64

// Forward walks the data plane from srcAS toward dst using each hop's FIB,
// the mechanism behind every in-the-wild validation in §7 (Atlas pings and
// traceroutes are reachability tests over exactly this).
func (n *Network) Forward(srcAS topo.ASN, dst netip.Addr) Trace {
	tr := Trace{Src: srcAS, Dst: dst}
	cur := srcAS
	visited := make(map[topo.ASN]bool)
	for hop := 0; hop < maxForwardHops; hop++ {
		tr.Hops = append(tr.Hops, cur)
		tr.FinalAS = cur
		if visited[cur] {
			tr.Outcome = ForwardingLoop
			return tr
		}
		visited[cur] = true
		r := n.routers[cur]
		if r == nil {
			tr.Outcome = NoRoute
			return tr
		}
		rt, ok := r.LookupFIB(dst)
		if !ok {
			tr.Outcome = NoRoute
			return tr
		}
		if rt.Blackhole {
			tr.Outcome = Blackholed
			return tr
		}
		if rt.NextHopAS == 0 {
			tr.Outcome = Delivered
			return tr
		}
		cur = rt.NextHopAS
	}
	tr.Outcome = ForwardingLoop
	return tr
}

// Ping reports binary reachability from srcAS to dst — the Atlas ICMP
// test of §7.6.
func (n *Network) Ping(srcAS topo.ASN, dst netip.Addr) bool {
	return n.Forward(srcAS, dst).Outcome == Delivered
}

// LookingGlass is a read-only RIB view at one AS, the validation tool used
// throughout §7 ("we examined the pre￿xes using the target's looking
// glass, before and after these announcements").
type LookingGlass struct {
	asn topo.ASN
	n   *Network
}

// LookingGlass returns the glass for asn (nil router yields empty views).
func (n *Network) LookingGlass(asn topo.ASN) *LookingGlass {
	return &LookingGlass{asn: asn, n: n}
}

// Route returns the best route for exactly p.
func (g *LookingGlass) Route(p netip.Prefix) (*policy.Route, bool) {
	r := g.n.routers[g.asn]
	if r == nil {
		return nil, false
	}
	return r.BestRoute(p)
}

// Show renders the best route for p, or a not-found line.
func (g *LookingGlass) Show(p netip.Prefix) string {
	rt, ok := g.Route(p)
	if !ok {
		return fmt.Sprintf("AS%d: %% no route for %s", g.asn, p)
	}
	return fmt.Sprintf("AS%d: %s", g.asn, rt)
}

// RIB lists all best routes at the AS.
func (g *LookingGlass) RIB() []*policy.Route {
	r := g.n.routers[g.asn]
	if r == nil {
		return nil
	}
	return r.RIB()
}
