package simnet

import (
	"fmt"
	"net/netip"
	"strings"
	"testing"

	"bgpworms/internal/bgp"
	"bgpworms/internal/netx"
	"bgpworms/internal/policy"
	"bgpworms/internal/topo"
)

// meshGraph builds a 3-tier multihomed topology big enough to exercise
// concurrent rounds: a tier-1 clique, mid transits with two providers
// each, and stubs.
func meshGraph(t *testing.T) *topo.Graph {
	t.Helper()
	g := topo.NewGraph()
	for i := topo.ASN(1); i <= 4; i++ {
		for j := i + 1; j <= 4; j++ {
			if err := g.AddPeering(i, j); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := topo.ASN(10); i < 22; i++ {
		if err := g.AddCustomerProvider(i, 1+(i%4)); err != nil {
			t.Fatal(err)
		}
		if err := g.AddCustomerProvider(i, 1+((i+1)%4)); err != nil {
			t.Fatal(err)
		}
	}
	for i := topo.ASN(100); i < 140; i++ {
		if err := g.AddCustomerProvider(i, 10+(i%12)); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// announceAll originates one prefix per stub plus communities, recording
// every tap delivery, and returns (tap transcript, total deliveries).
func announceAll(t *testing.T, n *Network) (string, int) {
	t.Helper()
	var tape strings.Builder
	n.Tap(func(from, to topo.ASN, prefix netip.Prefix, rt *policy.Route) {
		if rt != nil {
			fmt.Fprintf(&tape, "%d>%d %s %v %v\n", from, to, prefix, rt.ASPath.Sequence(), rt.Communities)
		} else {
			fmt.Fprintf(&tape, "%d>%d %s withdraw\n", from, to, prefix)
		}
	})
	total := 0
	for i := topo.ASN(100); i < 140; i++ {
		p := netip.PrefixFrom(netx.V4(10, byte(i>>8), byte(i), 0), 24)
		d, err := n.Announce(i, p, bgp.C(uint16(i), 100))
		if err != nil {
			t.Fatal(err)
		}
		total += d
	}
	// Withdraw a few to exercise the withdrawal path under rounds.
	for i := topo.ASN(100); i < 104; i++ {
		p := netip.PrefixFrom(netx.V4(10, byte(i>>8), byte(i), 0), 24)
		d, err := n.Withdraw(i, p)
		if err != nil {
			t.Fatal(err)
		}
		total += d
	}
	return tape.String(), total
}

// ribFingerprint renders every router's best routes deterministically.
func ribFingerprint(n *Network) string {
	var b strings.Builder
	for _, asn := range n.ASes() {
		r := n.Router(asn)
		for _, p := range r.Prefixes() {
			rt, ok := r.BestRoute(p)
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "AS%d %s %v %v\n", asn, p, rt.ASPath.Sequence(), rt.Communities)
		}
	}
	return b.String()
}

// TestParallelEngineWorkerCountInvariance is the simnet determinism
// gate: the round-based engine must produce identical tap transcripts,
// delivery counts, and final RIBs for every worker count.
func TestParallelEngineWorkerCountInvariance(t *testing.T) {
	type result struct {
		tape  string
		total int
		rib   string
	}
	var results []result
	for _, w := range []int{1, 2, 8} {
		n := New(meshGraph(t), nil)
		n.workers = w // direct: SetWorkers(1) would select the serial engine
		if n.workers > 1 && n.Workers() != w {
			t.Fatalf("workers=%d", n.Workers())
		}
		// Force the round engine regardless of w so w=1 is the
		// parallel engine's own baseline, not the serial engine.
		tape, total := announceAllRounds(t, n)
		results = append(results, result{tape, total, ribFingerprint(n)})
	}
	for i := 1; i < len(results); i++ {
		if results[i].total != results[0].total {
			t.Fatalf("deliveries diverge: %d vs %d", results[i].total, results[0].total)
		}
		if results[i].tape != results[0].tape {
			t.Fatal("tap transcripts diverge across worker counts")
		}
		if results[i].rib != results[0].rib {
			t.Fatal("final RIBs diverge across worker counts")
		}
	}
}

// announceAllRounds mirrors announceAll but drives runRounds directly so
// worker count 1 also exercises the round engine.
func announceAllRounds(t *testing.T, n *Network) (string, int) {
	t.Helper()
	var tape strings.Builder
	n.Tap(func(from, to topo.ASN, prefix netip.Prefix, rt *policy.Route) {
		if rt != nil {
			fmt.Fprintf(&tape, "%d>%d %s %v %v\n", from, to, prefix, rt.ASPath.Sequence(), rt.Communities)
		} else {
			fmt.Fprintf(&tape, "%d>%d %s withdraw\n", from, to, prefix)
		}
	})
	w := n.workers
	if w < 1 {
		w = 1
	}
	total := 0
	run := func(asn topo.ASN, p netip.Prefix, withdraw bool) {
		r := n.Router(asn)
		if withdraw {
			if r.WithdrawLocal(p) {
				n.schedule(asn, p)
			}
		} else {
			if r.Originate(p, bgp.C(uint16(asn), 100)) {
				n.schedule(asn, p)
			}
		}
		d, err := n.runRounds(w)
		if err != nil {
			t.Fatal(err)
		}
		total += d
	}
	for i := topo.ASN(100); i < 140; i++ {
		run(i, netip.PrefixFrom(netx.V4(10, byte(i>>8), byte(i), 0), 24), false)
	}
	for i := topo.ASN(100); i < 104; i++ {
		run(i, netip.PrefixFrom(netx.V4(10, byte(i>>8), byte(i), 0), 24), true)
	}
	return tape.String(), total
}

// TestParallelEngineMatchesSerialRIBs checks the two engines agree on
// the converged control-plane state (the fixed point is engine-
// independent even though delivery interleavings differ).
func TestParallelEngineMatchesSerialRIBs(t *testing.T) {
	serial := New(meshGraph(t), nil)
	_, serialTotal := announceAll(t, serial)

	parallel := New(meshGraph(t), nil)
	parallel.SetWorkers(4)
	_, parTotal := announceAll(t, parallel)

	if serialTotal == 0 || parTotal == 0 {
		t.Fatal("no deliveries")
	}
	if got, want := ribFingerprint(parallel), ribFingerprint(serial); got != want {
		t.Fatalf("engines converge to different RIBs:\nserial:\n%s\nparallel:\n%s", want, got)
	}
}

// TestParallelEngineConvergenceBound ensures the round engine still
// enforces the delivery cap instead of hanging on oscillation.
func TestParallelEngineConvergenceBound(t *testing.T) {
	n := New(meshGraph(t), nil)
	n.SetWorkers(4)
	n.SetMaxDeliveries(3)
	if _, err := n.Announce(100, netip.PrefixFrom(netx.V4(10, 0, 100, 0), 24)); err == nil {
		t.Fatal("expected convergence-bound error")
	}
}

// TestSetWorkersDefaults covers the GOMAXPROCS fallback.
func TestSetWorkersDefaults(t *testing.T) {
	n := New(meshGraph(t), nil)
	if n.Workers() != 1 {
		t.Fatalf("default workers=%d", n.Workers())
	}
	n.SetWorkers(0)
	if n.Workers() < 1 {
		t.Fatalf("workers=%d", n.Workers())
	}
	n.SetWorkers(6)
	if n.Workers() != 6 {
		t.Fatalf("workers=%d", n.Workers())
	}
}
