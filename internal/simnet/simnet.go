// Package simnet runs a deterministic AS-level BGP network to convergence:
// a work-queue propagation engine over router.Router instances, a
// resolvable data plane (forward / traceroute / ping over the converged
// FIBs), looking-glass views, and a session tap that collectors use to
// record MRT-faithful update streams.
//
// Three engines share the Network API (see the Engine option): the
// serial FIFO queue (default for one worker), the delta-driven event
// engine (default for SetWorkers > 1, and the one that scales to the
// large/internet presets), and the legacy round-based parallel engine
// kept as the delta engine's differential oracle. The parallel engines
// produce bit-identical convergence counts, tap ordering, and final
// RIBs for any worker count — and for each other — under a fixed seed.
// That invariance is what lets the layers above — gen.Params.Workers,
// core.Pipeline, and the scenario sweep's engine-workers grid dimension
// — change parallelism without changing results (see ARCHITECTURE.md,
// "Determinism contracts" and "Engines").
package simnet

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"bgpworms/internal/bgp"
	"bgpworms/internal/policy"
	"bgpworms/internal/router"
	"bgpworms/internal/topo"
)

// UpdateTap observes every delivered announcement (rt != nil) or
// withdrawal (rt == nil) on the session from→to. Collectors attach here.
type UpdateTap func(from, to topo.ASN, prefix netip.Prefix, rt *policy.Route)

// Network is a set of interconnected routers plus the propagation engine.
type Network struct {
	Graph   *topo.Graph
	routers map[topo.ASN]*router.Router

	// queue of (asn, prefix) pairs whose exports must be recomputed.
	queue   []workItem
	queued  map[workItem]bool
	taps    []UpdateTap
	steps   int
	maxWork int
	// noDedup disables work-item coalescing (ablation knob; see the
	// event-queue convergence benchmarks in bench_test.go).
	noDedup bool
	// workers is the parallel engines' shard pool size; with the
	// default EngineAuto it also selects the engine (<=1 serial FIFO,
	// >1 delta).
	workers int
	// engine pins the propagation engine (EngineAuto derives it from
	// workers).
	engine Engine
	// delta is the delta engine's cached index and scratch (delta.go).
	delta *deltaState
	// frozen marks a network sealed by Freeze: its routers are shared
	// with a Snapshot and every mutation panics (snapshot.go).
	frozen bool
	// cow marks a network created by Snapshot.Fork: some routers may be
	// sealed originals that engines must copy-on-write before mutating.
	cow bool
	// cloned counts routers this fork has copy-on-written.
	cloned int
}

// Engine selects the propagation algorithm Run uses. All engines
// converge to identical RIBs; the parallel ones (rounds, delta) also
// share one canonical delivery order, so their tap streams and
// collector archives are interchangeable. The serial FIFO engine
// interleaves exports and receives and therefore orders deliveries
// differently.
type Engine int

// Engines.
const (
	// EngineAuto derives the engine from the worker count: serial for
	// SetWorkers <= 1, delta otherwise.
	EngineAuto Engine = iota
	// EngineSerial is the original FIFO work-queue engine: one delivery
	// at a time, exports interleaved with receives.
	EngineSerial
	// EngineRounds is the legacy barrier-round parallel engine
	// (parallel.go). It is kept behind this option as the differential
	// oracle the delta engine is checked against.
	EngineRounds
	// EngineDelta is the delta-driven event engine (delta.go): per-router
	// dirty sets, batched class-shared exports, copy-on-write receives.
	EngineDelta
)

// String names the engine.
func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineSerial:
		return "serial"
	case EngineRounds:
		return "rounds"
	case EngineDelta:
		return "delta"
	default:
		return "unknown"
	}
}

// EngineNames lists the engine names ParseEngine accepts.
func EngineNames() []string { return []string{"auto", "serial", "rounds", "delta"} }

// ParseEngine parses an engine name ("" and "auto" mean EngineAuto).
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "auto":
		return EngineAuto, nil
	case "serial":
		return EngineSerial, nil
	case "rounds":
		return EngineRounds, nil
	case "delta":
		return EngineDelta, nil
	default:
		return EngineAuto, fmt.Errorf("simnet: unknown engine %q (want one of %v)", s, EngineNames())
	}
}

type workItem struct {
	asn    topo.ASN
	prefix netip.Prefix
}

// ConfigFunc builds the router configuration for an AS. The returned
// config's ASN field is overwritten with asn.
type ConfigFunc func(asn topo.ASN) router.Config

// DefaultConfig gives every AS JunOS-style forward-all behaviour.
func DefaultConfig(asn topo.ASN) router.Config {
	return router.Config{ASN: asn, Vendor: router.VendorJuniper, Propagation: policy.PropForwardAll}
}

// New builds a network over g, configuring each AS via mk (nil =
// DefaultConfig) and wiring sessions for every graph edge.
func New(g *topo.Graph, mk ConfigFunc) *Network {
	if mk == nil {
		mk = DefaultConfig
	}
	n := &Network{
		Graph:   g,
		routers: make(map[topo.ASN]*router.Router, g.NumASes()),
		queued:  make(map[workItem]bool),
		maxWork: 0,
	}
	for _, asn := range g.ASes() {
		cfg := mk(asn)
		cfg.ASN = asn
		n.routers[asn] = router.New(cfg)
	}
	for _, asn := range g.ASes() {
		r := n.routers[asn]
		for _, nb := range g.Neighbors(asn) {
			r.AddNeighbor(nb, g.Relationship(asn, nb))
		}
	}
	return n
}

// Router returns the speaker for asn (nil if absent).
func (n *Network) Router(asn topo.ASN) *router.Router { return n.routers[asn] }

// AddRouter inserts an extra node (e.g. a route server or an injection
// platform) that is not part of the relationship graph. Sessions must be
// wired explicitly with Connect.
func (n *Network) AddRouter(r *router.Router) {
	if n.frozen {
		panic(fmt.Sprintf("simnet: AddRouter(AS%d) on frozen network — fork the snapshot instead", r.ASN()))
	}
	n.routers[r.ASN()] = r
	n.invalidateDelta()
}

// Connect wires a bilateral session between two present routers, with rel
// describing what b is to a.
func (n *Network) Connect(a, b topo.ASN, rel topo.Rel) error {
	if n.routers[a] == nil || n.routers[b] == nil {
		return fmt.Errorf("simnet: connect %d-%d: missing router", a, b)
	}
	ra, rb := n.mutable(a), n.mutable(b)
	ra.AddNeighbor(b, rel)
	var back topo.Rel
	switch rel {
	case topo.RelCustomer:
		back = topo.RelProvider
	case topo.RelProvider:
		back = topo.RelCustomer
	default:
		back = topo.RelPeer
	}
	rb.AddNeighbor(a, back)
	return nil
}

// Tap registers an update observer and returns a handle for Untap.
// Both engines fire taps serially in canonical delivery order, so a tap
// observes a deterministic stream for any worker count.
func (n *Network) Tap(t UpdateTap) int {
	n.taps = append(n.taps, t)
	return len(n.taps) - 1
}

// Untap detaches the observer registered under id (a no-op for invalid
// handles). Detaching keeps other handles stable, so short-lived
// observers — a detection engine watching one attack window, say — can
// come and go without disturbing collectors.
func (n *Network) Untap(id int) {
	if id >= 0 && id < len(n.taps) {
		n.taps[id] = nil
	}
}

// Steps returns the number of update deliveries processed so far.
func (n *Network) Steps() int { return n.steps }

func (n *Network) schedule(asn topo.ASN, p netip.Prefix) {
	it := workItem{asn: asn, prefix: p.Masked()}
	if !n.noDedup {
		if n.queued[it] {
			return
		}
		n.queued[it] = true
	}
	n.queue = append(n.queue, it)
}

// SetSchedulingDedup toggles work-item coalescing; disabling it is the
// naive scheduling baseline measured by the convergence ablation bench.
func (n *Network) SetSchedulingDedup(enabled bool) { n.noDedup = !enabled }

// Announce originates prefix at asn with optional communities and runs the
// network to convergence, returning the number of deliveries processed.
func (n *Network) Announce(asn topo.ASN, p netip.Prefix, comms ...bgp.Community) (int, error) {
	if n.routers[asn] == nil {
		return 0, fmt.Errorf("simnet: announce from unknown AS%d", asn)
	}
	if n.mutable(asn).Originate(p, comms...) {
		n.schedule(asn, p)
	}
	return n.Run()
}

// Withdraw removes a locally originated prefix at asn and reconverges.
func (n *Network) Withdraw(asn topo.ASN, p netip.Prefix) (int, error) {
	if n.routers[asn] == nil {
		return 0, fmt.Errorf("simnet: withdraw from unknown AS%d", asn)
	}
	if n.mutable(asn).WithdrawLocal(p) {
		n.schedule(asn, p)
	}
	return n.Run()
}

// maxDeliveries bounds a single convergence run; policy-driven BGP can
// oscillate, and a deterministic bound turns that into a diagnosable error
// instead of a hang. The bound scales with network size.
func (n *Network) maxDeliveries() int {
	if n.maxWork > 0 {
		return n.maxWork
	}
	return 400*len(n.routers)*len(n.routers) + 100000
}

// SetMaxDeliveries overrides the convergence bound (0 = default).
func (n *Network) SetMaxDeliveries(v int) { n.maxWork = v }

// SetEngine pins the propagation engine Run uses; EngineAuto (the
// default) derives it from the worker count. Selecting EngineRounds or
// EngineDelta with one worker runs that engine's canonical-order
// algorithm serially — the baseline the differential tests compare.
func (n *Network) SetEngine(e Engine) { n.engine = e }

// EngineChoice returns the pinned engine option (EngineAuto unless
// SetEngine was called); ResolvedEngine reports what Run will execute.
func (n *Network) EngineChoice() Engine { return n.engine }

// ResolvedEngine reports the engine Run executes for the current
// engine/worker configuration.
func (n *Network) ResolvedEngine() Engine {
	if n.engine != EngineAuto {
		return n.engine
	}
	if n.workers > 1 {
		return EngineDelta
	}
	return EngineSerial
}

// Run processes the propagation queue until convergence, returning the
// number of deliveries. With the default EngineAuto, SetWorkers(>1)
// selects the delta engine; SetEngine pins a specific one.
func (n *Network) Run() (int, error) {
	eng := n.ResolvedEngine()
	start := time.Now()
	var delivered int
	var err error
	switch eng {
	case EngineRounds:
		delivered, err = n.runRounds(n.Workers())
	case EngineDelta:
		delivered, err = n.runDelta(n.Workers())
	default:
		delivered, err = n.runSerial()
	}
	observeRun(eng, delivered, start)
	return delivered, err
}

// runSerial is the original FIFO work-queue engine: one delivery at a
// time, exports interleaved with receives.
func (n *Network) runSerial() (int, error) {
	delivered := 0
	for len(n.queue) > 0 {
		it := n.queue[0]
		n.queue = n.queue[1:]
		delete(n.queued, it)

		// The serial engine is single-threaded, so copy-on-write can happen
		// right at the touch points: the source when its exports are
		// recomputed, each destination when a delivery actually lands.
		src := n.mutable(it.asn)
		for _, nb := range src.Neighbors() {
			if n.routers[nb] == nil {
				continue // session to an unmodelled node (e.g. a pure tap)
			}
			out, decision := src.ExportTo(nb, it.prefix)
			switch decision {
			case router.ExportSent:
				if !src.RecordAdvertised(nb, it.prefix, out) {
					continue // nothing new on this session
				}
				delivered++
				n.steps++
				for _, t := range n.taps {
					if t != nil {
						t(it.asn, nb, it.prefix, out)
					}
				}
				if res, changed := n.mutable(nb).ReceiveUpdate(it.asn, out); res == router.ImportAccepted && changed {
					n.schedule(nb, it.prefix)
				}
			default:
				// Anything not sent is a withdrawal if previously sent.
				if !src.RecordAdvertised(nb, it.prefix, nil) {
					continue
				}
				delivered++
				n.steps++
				for _, t := range n.taps {
					if t != nil {
						t(it.asn, nb, it.prefix, nil)
					}
				}
				if n.mutable(nb).ReceiveWithdraw(it.asn, it.prefix) {
					n.schedule(nb, it.prefix)
				}
			}
			if delivered > n.maxDeliveries() {
				return delivered, fmt.Errorf("simnet: no convergence after %d deliveries", delivered)
			}
		}
	}
	return delivered, nil
}

// ASes lists all router ASNs in ascending order.
func (n *Network) ASes() []topo.ASN {
	out := make([]topo.ASN, 0, len(n.routers))
	for a := range n.routers {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
