package simnet

// Snapshot lifecycle and isolation properties. The randomized test
// below is meant to run under the race detector: concurrent forks of
// one snapshot perform interleaved announce/withdraw/discard work, and
// nothing may bleed between forks or back into the frozen parent.

import (
	"fmt"
	"math/rand"
	"net/netip"
	"strings"
	"sync"
	"testing"

	"bgpworms/internal/bgp"
	"bgpworms/internal/netx"
	"bgpworms/internal/topo"
)

// frozenWorld builds the Fig. 2 topology, converges two announcements,
// and freezes it.
func frozenWorld(t *testing.T) (*Network, *Snapshot) {
	t.Helper()
	g := paperFig2(t)
	n := New(g, nil)
	if _, err := n.Announce(1, pfx, bgp.C(1, 200)); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Announce(6, netx.MustPrefix("198.51.100.0/24")); err != nil {
		t.Fatal(err)
	}
	snap, err := n.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return n, snap
}

// collapseRIBs renders every router's RIB, the byte-wise state the
// frozen parent must hold forever.
func collapseRIBs(n *Network) string {
	var b strings.Builder
	for _, asn := range n.ASes() {
		for _, rt := range n.Router(asn).RIB() {
			fmt.Fprintf(&b, "AS%d %s\n", asn, rt)
		}
	}
	return b.String()
}

// TestSnapshotForkIsolation is the property test: randomized
// fork/mutate/discard interleavings on one snapshot, concurrently,
// with the race detector watching. Each fork announces and withdraws
// its own prefixes; afterwards the parent must be byte-identical to
// its frozen state and no fork may see a sibling's prefix.
func TestSnapshotForkIsolation(t *testing.T) {
	parent, snap := frozenWorld(t)
	before := collapseRIBs(parent)

	const goroutines = 8
	forks := make([]*Network, goroutines)
	prefixes := make([]netip.Prefix, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + i)))
			f, err := snap.Fork()
			if err != nil {
				t.Errorf("fork %d: %v", i, err)
				return
			}
			own := netx.MustPrefix(fmt.Sprintf("10.%d.0.0/16", i))
			origin := topo.ASN(1 + rng.Intn(6))
			for op := 0; op < 4+rng.Intn(4); op++ {
				switch rng.Intn(3) {
				case 0:
					if _, err := f.Announce(origin, own, bgp.C(uint16(origin), uint16(600+i))); err != nil {
						t.Errorf("fork %d announce: %v", i, err)
						return
					}
				case 1:
					if _, err := f.Withdraw(origin, own); err != nil {
						t.Errorf("fork %d withdraw: %v", i, err)
						return
					}
				case 2:
					// Perturb shared state: withdraw and re-announce the
					// snapshot's own prefix inside this fork only.
					if _, err := f.Withdraw(1, pfx); err != nil {
						t.Errorf("fork %d withdraw shared: %v", i, err)
						return
					}
					if _, err := f.Announce(1, pfx, bgp.C(1, 200)); err != nil {
						t.Errorf("fork %d re-announce shared: %v", i, err)
						return
					}
				}
			}
			// Leave the fork with its own prefix present.
			if _, err := f.Announce(origin, own, bgp.C(uint16(origin), uint16(600+i))); err != nil {
				t.Errorf("fork %d final announce: %v", i, err)
				return
			}
			forks[i], prefixes[i] = f, own
		}(i)
	}
	wg.Wait()

	if after := collapseRIBs(parent); after != before {
		t.Fatal("frozen parent state changed under concurrent forks")
	}
	for i, f := range forks {
		if f == nil {
			continue
		}
		if _, ok := f.Router(6).BestRoute(prefixes[i]); !ok {
			t.Errorf("fork %d lost its own prefix %s", i, prefixes[i])
		}
		for j, p := range prefixes {
			if j == i {
				continue
			}
			if _, ok := f.Router(6).BestRoute(p); ok {
				t.Errorf("fork %d sees fork %d's prefix %s — cross-fork bleed", i, j, p)
			}
		}
		if _, ok := parent.Router(6).BestRoute(prefixes[i]); ok {
			t.Errorf("frozen parent sees fork %d's prefix — fork leaked upward", i)
		}
	}
	if snap.Forks() != goroutines {
		t.Errorf("Forks() = %d, want %d", snap.Forks(), goroutines)
	}
}

// TestFreezeLifecycleErrors pins every loud failure mode of the
// freeze/fork/discard lifecycle.
func TestFreezeLifecycleErrors(t *testing.T) {
	parent, snap := frozenWorld(t)

	// Double freeze.
	if _, err := parent.Freeze(); err == nil {
		t.Error("second Freeze succeeded")
	}
	// Freezing a fork: its routers are sealed originals shared with
	// siblings.
	f, err := snap.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Freeze(); err == nil {
		t.Error("Freeze of a fork succeeded")
	}
	// Freezing an unconverged network.
	g := paperFig2(t)
	n := New(g, nil)
	if _, err := n.Announce(1, pfx); err != nil {
		t.Fatal(err)
	}
	n.schedule(1, pfx)
	if _, err := n.Freeze(); err == nil {
		t.Error("Freeze of unconverged network succeeded")
	}

	// Discard: forks fail afterwards, existing forks keep working,
	// double discard is an error.
	if err := snap.Discard(); err != nil {
		t.Fatalf("discard: %v", err)
	}
	if _, err := snap.Fork(); err == nil {
		t.Error("Fork of discarded snapshot succeeded")
	}
	if err := snap.Discard(); err == nil {
		t.Error("second Discard succeeded")
	}
	if _, err := f.Announce(2, netx.MustPrefix("10.99.0.0/16")); err != nil {
		t.Errorf("existing fork broken by discard: %v", err)
	}
}

// TestFrozenNetworkMutationPanics pins the missed-copy failure mode:
// touching a frozen network mutably must panic, not corrupt forks.
func TestFrozenNetworkMutationPanics(t *testing.T) {
	parent, _ := frozenWorld(t)
	defer func() {
		if recover() == nil {
			t.Error("mutation of frozen network did not panic")
		}
	}()
	parent.Announce(2, netx.MustPrefix("10.50.0.0/16"))
}
