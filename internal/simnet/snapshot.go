package simnet

import (
	"fmt"
	"maps"
	"sync"

	"bgpworms/internal/router"
	"bgpworms/internal/topo"
)

// Warm-world snapshots: Freeze seals a converged network into an
// immutable Snapshot whose routers — route slabs, per-prefix state, LPM
// tries — are shared, and Fork yields a mutable network backed by that
// shared state. A fork pays one shallow map copy up front; routers are
// then copied-on-write the first time a run actually touches them, so a
// scenario's perturbation costs O(dirty routers), not O(world). The
// engines pre-clone exactly the routers a round will mutate during their
// serial phases (see runSerial/runRounds/runDelta), and every mutating
// entry point on a sealed router panics, so a missed copy is a loud
// failure instead of cross-fork corruption.

// Snapshot is an immutable, converged world: the shared backbone any
// number of concurrent forks read through. It is created by
// Network.Freeze and is safe for concurrent Fork calls.
type Snapshot struct {
	graph   *topo.Graph
	routers map[topo.ASN]*router.Router
	steps   int
	maxWork int
	noDedup bool
	workers int
	engine  Engine

	mu        sync.Mutex
	forks     int
	discarded bool
}

// Freeze seals the network into a Snapshot. The network must be
// converged (empty propagation queue) and not itself derive from a
// snapshot — refreezing a fork (or freezing twice) is an error, because
// its sealed routers are shared with sibling forks. After Freeze the
// original network is read-only: any mutation attempt panics.
func (n *Network) Freeze() (*Snapshot, error) {
	if n.frozen {
		return nil, fmt.Errorf("simnet: network already frozen")
	}
	if len(n.queue) > 0 {
		return nil, fmt.Errorf("simnet: freeze of unconverged network (%d queued items); call Run first", len(n.queue))
	}
	for asn, r := range n.routers {
		if r.Sealed() {
			return nil, fmt.Errorf("simnet: freeze would re-seal AS%d — forks cannot be frozen", asn)
		}
	}
	for _, r := range n.routers {
		r.Seal()
	}
	n.frozen = true
	return &Snapshot{
		graph:   n.Graph,
		routers: n.routers,
		steps:   n.steps,
		maxWork: n.maxWork,
		noDedup: n.noDedup,
		workers: n.workers,
		engine:  n.engine,
	}, nil
}

// Frozen reports whether the network has been sealed by Freeze.
func (n *Network) Frozen() bool { return n.frozen }

// Fork returns a mutable network backed by the snapshot's sealed
// routers. The fork inherits the engine configuration and delivery
// counter captured at freeze time, so a run on the fork resolves to the
// same engine and counts steps exactly as a scratch-built world would.
// Forks are independent: mutations copy-on-write the touched routers and
// can never reach the snapshot or sibling forks.
func (s *Snapshot) Fork() (*Network, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.discarded {
		return nil, fmt.Errorf("simnet: fork of discarded snapshot")
	}
	s.forks++
	return &Network{
		Graph:   s.graph,
		routers: maps.Clone(s.routers),
		queued:  make(map[workItem]bool),
		steps:   s.steps,
		maxWork: s.maxWork,
		noDedup: s.noDedup,
		workers: s.workers,
		engine:  s.engine,
		cow:     true,
	}, nil
}

// Forks returns how many forks the snapshot has handed out.
func (s *Snapshot) Forks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.forks
}

// Discard retires the snapshot: subsequent Fork calls fail. Existing
// forks keep working — they hold their own references to the sealed
// routers. Discarding twice is an error (use-after-discard bugs should
// surface, not idle).
func (s *Snapshot) Discard() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.discarded {
		return fmt.Errorf("simnet: snapshot already discarded")
	}
	s.discarded = true
	return nil
}

// mutable returns the router for asn, copy-on-writing it into this
// network's router map if it is still the snapshot's sealed original.
// Callers must be in a serial section (engine phases pre-clone before
// fanning out; see the COW-serialization note on each engine). Returns
// nil if the router is absent.
func (n *Network) mutable(asn topo.ASN) *router.Router {
	r := n.routers[asn]
	if r == nil || !r.Sealed() {
		return r
	}
	if n.frozen {
		panic(fmt.Sprintf("simnet: mutation of frozen network (AS%d) — fork the snapshot instead", asn))
	}
	cp := r.Clone()
	n.routers[asn] = cp
	n.cloned++
	return cp
}

// MutableRouter is the public copy-on-write accessor: like Router, but
// the returned speaker is safe to mutate in this world. Harness code
// that edits configs or catalogs after a fork must come through here.
func (n *Network) MutableRouter(asn topo.ASN) *router.Router { return n.mutable(asn) }

// ClonedRouters reports how many routers this fork has copy-on-written —
// the O(dirty) denominator warm-path benchmarks track.
func (n *Network) ClonedRouters() int { return n.cloned }
