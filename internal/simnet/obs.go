package simnet

import (
	"time"

	"bgpworms/internal/obs"
)

// Package-level instrumentation on obs.Default: simnet has no config
// surface to thread a registry through (networks are built by gen and
// scenarios everywhere), and its series are process-global by nature —
// a daemon replaying scenarios feeds its /metrics page automatically.
// All writes happen at run or round granularity in serial sections, so
// the hot per-delivery loops are untouched. Metrics are observational
// only: tap streams and convergence results are identical either way.
var (
	simnetRuns       = make(map[Engine]*obs.Counter)
	simnetDeliveries = make(map[Engine]*obs.Counter)
	simnetRunSecs    = make(map[Engine]*obs.Histogram)

	deltaRounds        = obs.Default.Counter("simnet_delta_rounds_total", "delta engine convergence rounds")
	deltaDirtyPrefixes = obs.Default.Counter("simnet_delta_dirty_prefixes_total", "dirty (router,prefix) work items across delta rounds")
	deltaExports       = obs.Default.Counter("simnet_delta_export_batches_total", "phase-1 export shards (one per dirty source router per round)")
)

func init() {
	for _, e := range []Engine{EngineSerial, EngineRounds, EngineDelta} {
		label := `{engine="` + e.String() + `"}`
		simnetRuns[e] = obs.Default.Counter("simnet_runs_total"+label, "convergence runs")
		simnetDeliveries[e] = obs.Default.Counter("simnet_deliveries_total"+label, "route deliveries (convergence steps)")
		simnetRunSecs[e] = obs.Default.Histogram("simnet_run_seconds"+label, "convergence wall time", obs.DurationBuckets)
	}
}

// observeRun tallies one Run() invocation.
func observeRun(e Engine, delivered int, start time.Time) {
	simnetRuns[e].Inc()
	simnetDeliveries[e].Add(uint64(delivered))
	simnetRunSecs[e].ObserveSince(start)
}

// deltaRoundTally accumulates per-round churn locally inside runDelta
// (the counters are flushed once per run, not per round).
type deltaRoundTally struct {
	rounds, prefixes, exports uint64
}

func (t *deltaRoundTally) flush() {
	if t.rounds == 0 {
		return
	}
	deltaRounds.Add(t.rounds)
	deltaDirtyPrefixes.Add(t.prefixes)
	deltaExports.Add(t.exports)
}
