// Package stats provides the small statistics toolkit the figure harness
// needs: empirical CDFs, top-K counters, log-log hex/grid binning for the
// §4.4 filtering scatter, and aligned text tables for paper-style output.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// ECDF is an empirical cumulative distribution over float64 samples.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from samples (copied and sorted).
func NewECDF(samples []float64) *ECDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// Len returns the sample count.
func (e *ECDF) Len() int { return len(e.sorted) }

// At returns P[X <= x].
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-th quantile (0<=q<=1) by nearest-rank.
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	i := int(math.Ceil(q*float64(len(e.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return e.sorted[i]
}

// Points returns (x, P[X<=x]) pairs at each distinct sample value —
// exactly the polyline a paper figure plots.
func (e *ECDF) Points() (xs, ys []float64) {
	n := len(e.sorted)
	for i := 0; i < n; {
		j := i
		for j < n && e.sorted[j] == e.sorted[i] {
			j++
		}
		xs = append(xs, e.sorted[i])
		ys = append(ys, float64(j)/float64(n))
		i = j
	}
	return xs, ys
}

// Mean returns the sample mean (NaN when empty).
func (e *ECDF) Mean() float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range e.sorted {
		sum += v
	}
	return sum / float64(len(e.sorted))
}

// Counter counts occurrences of string keys and reports top-K.
type Counter struct {
	m map[string]int
	n int
}

// NewCounter returns an empty counter.
func NewCounter() *Counter { return &Counter{m: make(map[string]int)} }

// Add increments key by one.
func (c *Counter) Add(key string) { c.m[key]++; c.n++ }

// AddN increments key by n.
func (c *Counter) AddN(key string, n int) { c.m[key] += n; c.n += n }

// Total returns the sum of all counts.
func (c *Counter) Total() int { return c.n }

// Distinct returns the number of distinct keys.
func (c *Counter) Distinct() int { return len(c.m) }

// Count returns the count for key.
func (c *Counter) Count(key string) int { return c.m[key] }

// KV is a key with its count.
type KV struct {
	Key   string
	Count int
}

// TopK returns the k most frequent keys (ties broken by key order).
func (c *Counter) TopK(k int) []KV {
	out := make([]KV, 0, len(c.m))
	for key, n := range c.m {
		out = append(out, KV{key, n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// LogBin2D grid-bins (x, y) points on log10(v+1) axes — the §4.4 Figure 6b
// scatter of filtering vs forwarding indications per AS edge.
type LogBin2D struct {
	// CellsPerDecade controls bin resolution.
	CellsPerDecade int
	bins           map[[2]int]int
}

// NewLogBin2D builds a binner with the given resolution (cells per decade).
func NewLogBin2D(cellsPerDecade int) *LogBin2D {
	if cellsPerDecade <= 0 {
		cellsPerDecade = 4
	}
	return &LogBin2D{CellsPerDecade: cellsPerDecade, bins: make(map[[2]int]int)}
}

func (h *LogBin2D) cell(v float64) int {
	return int(math.Floor(math.Log10(v+1) * float64(h.CellsPerDecade)))
}

// Add bins one point.
func (h *LogBin2D) Add(x, y float64) {
	h.bins[[2]int{h.cell(x), h.cell(y)}]++
}

// Bin is one populated cell.
type Bin struct {
	// X, Y are the cell's lower-corner values on the log10(v+1) axes.
	X, Y  float64
	Count int
}

// Bins returns populated cells in deterministic order.
func (h *LogBin2D) Bins() []Bin {
	keys := make([][2]int, 0, len(h.bins))
	for k := range h.bins {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	out := make([]Bin, len(keys))
	for i, k := range keys {
		out[i] = Bin{
			X:     float64(k[0]) / float64(h.CellsPerDecade),
			Y:     float64(k[1]) / float64(h.CellsPerDecade),
			Count: h.bins[k],
		}
	}
	return out
}

// Table renders aligned text tables in paper style.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row; cells are formatted with %v.
func (t *Table) Row(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(cols-1)))
	b.WriteString("\n")
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Pct formats a ratio as "NN.N%".
func Pct(num, den int) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}
