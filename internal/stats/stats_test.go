package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	if e.Len() != 4 {
		t.Fatalf("Len=%d", e.Len())
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {99, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("At(%v)=%v want %v", c.x, got, c.want)
		}
	}
}

func TestECDFQuantileAndMean(t *testing.T) {
	e := NewECDF([]float64{10, 20, 30, 40})
	if q := e.Quantile(0.5); q != 20 {
		t.Errorf("median=%v", q)
	}
	if q := e.Quantile(0); q != 10 {
		t.Errorf("min=%v", q)
	}
	if q := e.Quantile(1); q != 40 {
		t.Errorf("max=%v", q)
	}
	if m := e.Mean(); m != 25 {
		t.Errorf("mean=%v", m)
	}
	empty := NewECDF(nil)
	if !math.IsNaN(empty.Quantile(0.5)) || !math.IsNaN(empty.Mean()) || empty.At(1) != 0 {
		t.Error("empty ECDF misbehaves")
	}
}

func TestECDFPoints(t *testing.T) {
	e := NewECDF([]float64{1, 1, 2, 5})
	xs, ys := e.Points()
	if len(xs) != 3 || xs[0] != 1 || xs[2] != 5 {
		t.Fatalf("xs=%v", xs)
	}
	if ys[0] != 0.5 || ys[2] != 1 {
		t.Fatalf("ys=%v", ys)
	}
}

// Property: ECDF is monotone nondecreasing and bounded by [0,1].
func TestProperty_ECDFMonotone(t *testing.T) {
	f := func(vals []float64, probe []float64) bool {
		for i := range vals {
			if math.IsNaN(vals[i]) || math.IsInf(vals[i], 0) {
				vals[i] = 0
			}
		}
		e := NewECDF(vals)
		last := -1.0
		for _, p := range probe {
			if math.IsNaN(p) || math.IsInf(p, 0) {
				continue
			}
			_ = p
		}
		// probe on sorted copies of vals
		for _, x := range e.sorted {
			y := e.At(x)
			if y < last-1e-12 || y < 0 || y > 1 {
				return false
			}
			last = y
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCounterTopK(t *testing.T) {
	c := NewCounter()
	c.Add("a")
	c.AddN("b", 5)
	c.Add("a")
	c.Add("c")
	if c.Total() != 8 || c.Distinct() != 3 || c.Count("b") != 5 {
		t.Fatalf("total=%d distinct=%d", c.Total(), c.Distinct())
	}
	top := c.TopK(2)
	if len(top) != 2 || top[0].Key != "b" || top[1].Key != "a" {
		t.Fatalf("top=%v", top)
	}
	// Tie-break by key order.
	c2 := NewCounter()
	c2.Add("z")
	c2.Add("y")
	top2 := c2.TopK(10)
	if top2[0].Key != "y" {
		t.Fatalf("tie-break wrong: %v", top2)
	}
}

func TestLogBin2D(t *testing.T) {
	h := NewLogBin2D(1)
	h.Add(0, 0)    // cell (0,0)
	h.Add(0, 0)    // same
	h.Add(9, 0)    // log10(10)=1 → cell (1,0)
	h.Add(99, 999) // (2,3) — log10(100)=2, log10(1000)=3
	bins := h.Bins()
	if len(bins) != 3 {
		t.Fatalf("bins=%v", bins)
	}
	if bins[0].Count != 2 || bins[0].X != 0 || bins[0].Y != 0 {
		t.Fatalf("bin0=%v", bins[0])
	}
	if bins[2].X != 2 || bins[2].Y != 3 {
		t.Fatalf("bin2=%v", bins[2])
	}
	// Default resolution guard.
	if NewLogBin2D(0).CellsPerDecade <= 0 {
		t.Fatal("default resolution not applied")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Source", "Msgs", "Frac")
	tb.Row("RIS", 123, 0.5)
	tb.Row("RV", 45678, 0.25)
	s := tb.String()
	if !strings.Contains(s, "RIS") || !strings.Contains(s, "45678") || !strings.Contains(s, "0.25") {
		t.Fatalf("table:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d", len(lines))
	}
	// Header columns align with data columns.
	if !strings.HasPrefix(lines[0], "Source") {
		t.Fatalf("header=%q", lines[0])
	}
}

func TestPct(t *testing.T) {
	if Pct(1, 4) != "25.0%" {
		t.Fatalf("Pct=%s", Pct(1, 4))
	}
	if Pct(1, 0) != "n/a" {
		t.Fatal("div by zero")
	}
}
