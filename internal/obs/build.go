package obs

import (
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync"
)

// Build identifies the binary: toolchain, platform, and the commit it
// was built from. Suite provenance and the wormwatchd health endpoint
// serve the same record, so an archived suite report and a scraped
// daemon agree on what ran.
type Build struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	GitSHA    string `json:"git_sha"`
}

var buildOnce = sync.OnceValue(func() Build {
	return Build{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		GitSHA:    GitSHA(),
	}
})

// BuildInfo returns the cached build record.
func BuildInfo() Build { return buildOnce() }

// GitSHA reads the checked-out commit: `git rev-parse HEAD`, then the
// GITHUB_SHA CI fallback, then "unknown" — build info must never fail
// a run.
func GitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err == nil {
		if sha := strings.TrimSpace(string(out)); sha != "" {
			return sha
		}
	}
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		return sha
	}
	return "unknown"
}
