package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span tracing: the flight-recorder half of the package. A Trace is a
// flat, append-only list of named spans with start/end times, string
// attributes, and parent links; it serializes as one JSON document and
// renders as an aggregated summary table. Traces are wall-clock
// artifacts and therefore live beside deterministic outputs, never
// inside them (suite reports stay byte-identical; provenance.json and
// -trace files carry the timings).
//
// Every method is safe on a nil *Trace and nil *Span and does nothing,
// so call sites plumb an optional trace with no conditionals:
//
//	sp := trace.Start("cell "+key)   // nil trace -> nil span
//	defer sp.End()                   // no-op on nil
type Trace struct {
	mu    sync.Mutex
	name  string
	start time.Time
	spans []*Span
}

// Span is one named timed region. Fields are written only by the
// owning goroutine between Start and End; Records snapshots them under
// the trace lock.
type Span struct {
	t      *Trace
	id     int
	parent int // 0 = root
	name   string
	attrs  map[string]string
	start  time.Time
	end    time.Time
}

// NewTrace starts an empty trace.
func NewTrace(name string) *Trace {
	return &Trace{name: name, start: time.Now()}
}

// Start opens a root span.
func (t *Trace) Start(name string) *Span {
	return t.add(name, 0)
}

func (t *Trace) add(name string, parent int) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Span{t: t, id: len(t.spans) + 1, parent: parent, name: name, start: time.Now()}
	t.spans = append(t.spans, s)
	return s
}

// Child opens a span nested under s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.t.add(name, s.id)
}

// SetAttr attaches a string attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string)
	}
	s.attrs[key] = value
	s.t.mu.Unlock()
}

// End closes the span. A second End is a no-op (first end time wins).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.t.mu.Unlock()
}

// SpanRecord is the exported, serializable form of one span. An open
// span records a zero duration.
type SpanRecord struct {
	ID     int    `json:"id"`
	Parent int    `json:"parent,omitempty"`
	Name   string `json:"name"`
	// StartUS is microseconds since the trace started.
	StartUS int64 `json:"start_us"`
	// DurUS is the span duration in microseconds (0 if never ended).
	DurUS int64             `json:"dur_us"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// TraceRecord is the JSON document shape a -trace file holds.
type TraceRecord struct {
	Trace string       `json:"trace"`
	Start time.Time    `json:"start"`
	Spans []SpanRecord `json:"spans"`
}

// Records snapshots every span in start order.
func (t *Trace) Records() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, len(t.spans))
	for _, s := range t.spans {
		r := SpanRecord{
			ID:      s.id,
			Parent:  s.parent,
			Name:    s.name,
			StartUS: s.start.Sub(t.start).Microseconds(),
		}
		if !s.end.IsZero() {
			r.DurUS = s.end.Sub(s.start).Microseconds()
		}
		if len(s.attrs) > 0 {
			r.Attrs = make(map[string]string, len(s.attrs))
			for k, v := range s.attrs {
				r.Attrs[k] = v
			}
		}
		out = append(out, r)
	}
	return out
}

// WriteJSON serializes the trace as one indented JSON document.
func (t *Trace) WriteJSON(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	name, start := t.name, t.start
	t.mu.Unlock()
	doc := TraceRecord{Trace: name, Start: start, Spans: t.Records()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteFile writes the JSON trace to path. A nil trace writes nothing.
func (t *Trace) WriteFile(path string) error {
	if t == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Summary renders an aggregate table: spans grouped by name (root and
// child names alike), with count, total, min, max, and the share of
// the trace's wall clock. Open spans count with zero duration.
func (t *Trace) Summary() string {
	if t == nil {
		return ""
	}
	recs := t.Records()
	type agg struct {
		name     string
		count    int
		total    time.Duration
		min, max time.Duration
	}
	order := []string{}
	byName := map[string]*agg{}
	var last time.Duration
	for _, r := range recs {
		d := time.Duration(r.DurUS) * time.Microsecond
		if end := time.Duration(r.StartUS+r.DurUS) * time.Microsecond; end > last {
			last = end
		}
		a := byName[r.Name]
		if a == nil {
			a = &agg{name: r.Name, min: d}
			byName[r.Name] = a
			order = append(order, r.Name)
		}
		a.count++
		a.total += d
		if d < a.min {
			a.min = d
		}
		if d > a.max {
			a.max = d
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		return byName[order[i]].total > byName[order[j]].total
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace %s: %d spans, %s wall\n", t.name, len(recs), last.Round(time.Millisecond))
	fmt.Fprintf(&sb, "%-40s %7s %12s %12s %12s %6s\n", "span", "count", "total", "min", "max", "share")
	for _, name := range order {
		a := byName[name]
		share := 0.0
		if last > 0 {
			share = float64(a.total) / float64(last) * 100
		}
		fmt.Fprintf(&sb, "%-40s %7d %12s %12s %12s %5.1f%%\n",
			a.name, a.count, a.total.Round(time.Microsecond),
			a.min.Round(time.Microsecond), a.max.Round(time.Microsecond), share)
	}
	return sb.String()
}
