package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceSpans(t *testing.T) {
	tr := NewTrace("test")
	root := tr.Start("cell a")
	child := root.Child("eval")
	child.SetAttr("scenario", "rtbh")
	time.Sleep(2 * time.Millisecond)
	child.End()
	root.End()
	root.End() // second End keeps the first end time

	recs := tr.Records()
	if len(recs) != 2 {
		t.Fatalf("spans=%d", len(recs))
	}
	if recs[0].Name != "cell a" || recs[0].Parent != 0 {
		t.Fatalf("root record: %+v", recs[0])
	}
	if recs[1].Parent != recs[0].ID || recs[1].Attrs["scenario"] != "rtbh" {
		t.Fatalf("child record: %+v", recs[1])
	}
	if recs[1].DurUS <= 0 || recs[0].DurUS < recs[1].DurUS {
		t.Fatalf("durations: root=%dus child=%dus", recs[0].DurUS, recs[1].DurUS)
	}
}

// TestTraceNilSafety pins the plumb-through contract: every method on
// a nil trace or span is a no-op, so optional tracing needs no
// conditionals at call sites.
func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	sp := tr.Start("x")
	if sp != nil {
		t.Fatal("nil trace returned a span")
	}
	sp.Child("y").SetAttr("k", "v")
	sp.End()
	if tr.Records() != nil || tr.Summary() != "" {
		t.Fatal("nil trace produced records")
	}
	if err := tr.WriteJSON(nil); err != nil {
		t.Fatal(err)
	}
}

func TestTraceJSONAndSummary(t *testing.T) {
	tr := NewTrace("suite")
	for i := 0; i < 3; i++ {
		sp := tr.Start("cell")
		sp.Child("eval").End()
		sp.End()
	}
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"trace": "suite"`, `"spans"`, `"name": "cell"`, `"dur_us"`} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("JSON missing %q:\n%s", want, sb.String())
		}
	}
	sum := tr.Summary()
	if !strings.Contains(sum, "6 spans") || !strings.Contains(sum, "cell") || !strings.Contains(sum, "eval") {
		t.Fatalf("summary:\n%s", sum)
	}
}

// TestTraceConcurrentStarts proves concurrent span creation from
// harness workers is safe (the sweep and suite integration point).
func TestTraceConcurrentStarts(t *testing.T) {
	tr := NewTrace("parallel")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := tr.Start("cell")
				sp.Child("inner").End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	if n := len(tr.Records()); n != 1600 {
		t.Fatalf("spans=%d want 1600", n)
	}
}
