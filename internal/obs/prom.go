package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format exposition (version 0.0.4): one HELP/TYPE
// header per family, series sorted by name within the family, families
// sorted by name — the render is deterministic for a fixed registry
// state, which is what the golden test pins.

func floatBits(v float64) uint64 { return math.Float64bits(v) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

// series is one rendered line-in-waiting.
type series struct {
	name  string // full series name, labels included
	value string
}

// WritePrometheus renders every instrument and collector sample in
// Prometheus text format. It holds the registry read lock for the
// duration; collector callbacks run inside it.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()

	fams := make(map[string]family, len(r.families))
	for k, v := range r.families {
		fams[k] = v
	}
	byFam := make(map[string][]series)
	add := func(name, value string) {
		fam, _ := splitName(name)
		byFam[fam] = append(byFam[fam], series{name: name, value: value})
	}

	for name, c := range r.counters {
		add(name, formatUint(c.Value()))
	}
	for name, g := range r.gauges {
		add(name, formatFloat(g.Value()))
	}
	// Histograms expand under their own family in canonical order
	// (buckets ascending, +Inf, sum, count), per label set sorted by
	// series name.
	histsByFam := make(map[string][]histSeries)
	for name, h := range r.hists {
		fam, labels := splitName(name)
		histsByFam[fam] = append(histsByFam[fam], histSeries{labels: labels, snap: h.snapshot()})
	}
	for _, fn := range r.collectors {
		fn(func(s Sample) {
			fam, _ := splitName(s.Name)
			if f, ok := fams[fam]; !ok || (f.help == "" && s.Help != "") {
				fams[fam] = family{typ: s.Type, help: s.Help}
			}
			add(s.Name, formatFloat(s.Value))
		})
	}

	names := make([]string, 0, len(byFam)+len(histsByFam))
	for fam := range byFam {
		names = append(names, fam)
	}
	for fam := range histsByFam {
		if _, dup := byFam[fam]; !dup {
			names = append(names, fam)
		}
	}
	sort.Strings(names)
	for _, fam := range names {
		f := fams[fam]
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, f.typ); err != nil {
			return err
		}
		ss := byFam[fam]
		sort.Slice(ss, func(i, j int) bool { return ss[i].name < ss[j].name })
		for _, s := range ss {
			if _, err := fmt.Fprintf(w, "%s %s\n", s.name, s.value); err != nil {
				return err
			}
		}
		hs := histsByFam[fam]
		sort.Slice(hs, func(i, j int) bool { return hs[i].labels < hs[j].labels })
		for _, hsr := range hs {
			if err := writeHistSeries(w, fam, hsr); err != nil {
				return err
			}
		}
	}
	return nil
}

// histSeries is one histogram's labels plus a consistent snapshot.
type histSeries struct {
	labels string
	snap   histSnapshot
}

func writeHistSeries(w io.Writer, fam string, hs histSeries) error {
	for i, b := range hs.snap.bounds {
		if _, err := fmt.Fprintf(w, "%s %s\n", bucketName(fam, hs.labels, formatFloat(b)), formatUint(hs.snap.cum[i])); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s %s\n", bucketName(fam, hs.labels, "+Inf"), formatUint(hs.snap.total)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %s\n", withLabels(fam+"_sum", hs.labels), formatFloat(hs.snap.sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %s\n", withLabels(fam+"_count", hs.labels), formatUint(hs.snap.total))
	return err
}

// bucketName builds `fam_bucket{...,le="bound"}`, merging the le label
// into an existing label set.
func bucketName(fam, labels, bound string) string {
	le := `le="` + bound + `"`
	if labels == "" {
		return fam + "_bucket{" + le + "}"
	}
	return fam + "_bucket{" + labels + "," + le + "}"
}

// withLabels re-attaches a label set to a derived family name
// (histogram _sum/_count lines).
func withLabels(fam, labels string) string {
	if labels == "" {
		return fam
	}
	return fam + "{" + labels + "}"
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry at GET /metrics in Prometheus text
// format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		io.WriteString(w, sb.String())
	})
}
