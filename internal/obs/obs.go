// Package obs is the repo's zero-dependency observability substrate: a
// metrics registry (counters, gauges, histograms with fixed bucket
// layouts) rendered in Prometheus text format, plus lightweight span
// tracing (trace.go) for flight-recorder timing breakdowns, and the
// build-info plumbing (build.go) shared by suite provenance and the
// wormwatchd health endpoint.
//
// The design splits metrics by write frequency:
//
//   - hot-path instruments (Counter, Gauge) are single atomics — an
//     Add is one uncontended atomic add, cheap enough to sit on a
//     per-batch or per-run boundary of any engine in the repo;
//   - histograms take a per-histogram mutex per Observe. Every
//     instrumented site observes at batch granularity (one watch shard
//     batch, one simnet convergence run), never per event, so the lock
//     is a few dozen acquisitions per second, not millions;
//   - values that already live in an engine's own counters (queue
//     depths, per-detector firing counts) are pulled at scrape time via
//     RegisterCollector callbacks, so the engine's hot path is not
//     touched at all.
//
// Metrics are observational only: nothing in the repo branches on a
// metric value, so attaching or detaching a registry can never change
// a report, a tap stream, or an alert set (the determinism exemptions
// are documented in ARCHITECTURE.md, "Observability"). Counters that
// are worker-count invariant by construction (events ingested via the
// blocking path, alerts) are asserted invariant in tests; inherently
// racy ones (drops, queue depth, batch timing) are explicitly exempt.
//
// Series names carry their labels Prometheus-style:
//
//	r.Counter(`watch_ingested_total`, "events accepted")
//	r.Counter(`simnet_runs_total{engine="delta"}`, "convergence runs")
//
// Instruments are get-or-create: the same name always returns the same
// instrument, so package-level callers need no registration ceremony.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Default is the process-wide registry. Package-level instrumentation
// (simnet, collector, gen) binds here; daemons serve it at /metrics.
// Engines with per-instance series (watch, semantics) take an explicit
// *Registry so tests can isolate them.
var Default = NewRegistry()

// MetricType tags a family for the TYPE line of the text exposition.
type MetricType int

// Metric types.
const (
	TypeCounter MetricType = iota
	TypeGauge
	TypeHistogram
)

// String renders the Prometheus TYPE keyword.
func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Sample is one scrape-time measurement emitted by a registered
// collector callback: a full series name (labels included) with its
// current value. Help may be empty; the first non-empty help for a
// family wins.
type Sample struct {
	Name  string
	Help  string
	Type  MetricType
	Value float64
}

// Registry holds instruments and scrape-time collector callbacks. The
// zero value is not usable; create with NewRegistry.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	families   map[string]family // family name -> type + help
	collectors map[int]func(emit func(Sample))
	nextColl   int
}

type family struct {
	typ  MetricType
	help string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		hists:      make(map[string]*Histogram),
		families:   make(map[string]family),
		collectors: make(map[int]func(emit func(Sample))),
	}
}

// splitName separates a series name into its family and label portion:
// `foo{a="b"}` -> ("foo", `a="b"`). Names without labels return an
// empty label string.
func splitName(name string) (fam, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// register records the family's type and help, failing loudly on a
// type clash — two call sites disagreeing on what a family is would
// otherwise render an unparseable exposition.
func (r *Registry) register(name string, typ MetricType, help string) {
	fam, _ := splitName(name)
	if f, ok := r.families[fam]; ok {
		if f.typ != typ {
			panic(fmt.Sprintf("obs: family %s registered as both %s and %s", fam, f.typ, typ))
		}
		if f.help == "" && help != "" {
			r.families[fam] = family{typ: typ, help: help}
		}
		return
	}
	r.families[fam] = family{typ: typ, help: help}
}

// Counter returns the monotone counter registered under name (labels
// included), creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		r.register(name, TypeCounter, help)
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		r.register(name, TypeGauge, help)
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds (ascending; +Inf is implicit) on
// first use. Later calls return the existing histogram regardless of
// the buckets argument — bucket layouts are fixed at first
// registration, which is what keeps pane-of-glass dashboards stable.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		r.register(name, TypeHistogram, help)
		h = newHistogram(buckets)
		r.hists[name] = h
	}
	return h
}

// CollectorHandle identifies one registered scrape callback for
// Unregister.
type CollectorHandle struct {
	r  *Registry
	id int
}

// RegisterCollector adds a scrape-time callback: at every render the
// registry invokes fn, and every Sample it emits appears in the
// exposition alongside the instrument series. Collectors are how
// engines expose state they already track (queue depths, per-detector
// counts) without any hot-path writes. Callbacks run under the
// registry's read lock and must not create instruments on the same
// registry.
func (r *Registry) RegisterCollector(fn func(emit func(Sample))) *CollectorHandle {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := r.nextColl
	r.nextColl++
	r.collectors[id] = fn
	return &CollectorHandle{r: r, id: id}
}

// Unregister removes the callback; safe to call more than once and on
// a nil handle.
func (h *CollectorHandle) Unregister() {
	if h == nil || h.r == nil {
		return
	}
	h.r.mu.Lock()
	delete(h.r.collectors, h.id)
	h.r.mu.Unlock()
}

// Counter is a monotone uint64. The zero value is usable but callers
// normally obtain one from Registry.Counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable signed value (stored as float bits so fractional
// gauges work).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(floatBits(v)) }

// Add adjusts the gauge by d (CAS loop; gauges are low-frequency).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(bitsFloat(old)+d)) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 { return bitsFloat(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Observe takes the
// histogram's mutex, which also makes scrape-time snapshots exact:
// bucket counts, sum, and count are always mutually consistent.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; +Inf implicit
	counts []uint64  // len(bounds)+1, last is the +Inf bucket
	sum    float64
	total  uint64
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram buckets not ascending at %v", bounds[i]))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// ObserveSince records the seconds elapsed since start — the idiom for
// batch-latency and convergence-wall-time sites.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// histSnapshot is one consistent read of the histogram.
type histSnapshot struct {
	bounds []float64
	cum    []uint64 // cumulative per bound, then total at +Inf
	sum    float64
	total  uint64
}

func (h *Histogram) snapshot() histSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := histSnapshot{bounds: h.bounds, sum: h.sum, total: h.total}
	s.cum = make([]uint64, len(h.counts))
	var run uint64
	for i, c := range h.counts {
		run += c
		s.cum[i] = run
	}
	return s
}

// Count reads the number of observations so far.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum reads the sum of observed values so far.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// DurationBuckets is the fixed layout for wall-time histograms, in
// seconds: 100µs to 60s, roughly 2.5x steps. Every duration histogram
// in the repo uses it, so panes line up across subsystems.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// SizeBuckets is the fixed layout for count-per-batch histograms:
// powers of four from 1 to ~1M.
var SizeBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}
