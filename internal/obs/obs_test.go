package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestGetOrCreateIdentity pins the registration contract: the same
// name always yields the same instrument, and label variants are
// distinct series in one family.
func TestGetOrCreateIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "things")
	b := r.Counter("x_total", "")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	l1 := r.Counter(`y_total{k="1"}`, "labeled")
	l2 := r.Counter(`y_total{k="2"}`, "")
	if l1 == l2 {
		t.Fatal("distinct label sets shared a counter")
	}
	l1.Add(3)
	l2.Inc()
	if l1.Value() != 3 || l2.Value() != 1 {
		t.Fatalf("values: %d, %d", l1.Value(), l2.Value())
	}
}

func TestRegistryTypeClashPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on counter/gauge family clash")
		}
	}()
	r := NewRegistry()
	r.Counter("clash_total", "")
	r.Gauge(`clash_total{k="v"}`, "")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	snap := h.snapshot()
	// 0.05 and 0.1 land in le=0.1 (inclusive upper bound); 0.5 in le=1;
	// 2 in le=10; 100 in +Inf.
	want := []uint64{2, 3, 4}
	for i, w := range want {
		if snap.cum[i] != w {
			t.Fatalf("cum[%d]=%d want %d", i, snap.cum[i], w)
		}
	}
	if snap.total != 5 {
		t.Fatalf("total=%d", snap.total)
	}
	if h.Count() != 5 || h.Sum() != 102.65 {
		t.Fatalf("count=%d sum=%v", h.Count(), h.Sum())
	}
}

// goldenExposition is the exact render the golden test pins: family
// ordering, HELP/TYPE placement, label handling, histogram expansion,
// and collector samples all in one page.
const goldenExposition = `# HELP alerts_total alerts raised
# TYPE alerts_total counter
alerts_total{detector="blackhole-onset"} 4
alerts_total{detector="route-leak"} 1
# HELP batch_seconds shard batch latency
# TYPE batch_seconds histogram
batch_seconds_bucket{shard="0",le="0.25"} 1
batch_seconds_bucket{shard="0",le="0.5"} 2
batch_seconds_bucket{shard="0",le="+Inf"} 3
batch_seconds_sum{shard="0"} 1.25
batch_seconds_count{shard="0"} 3
# HELP ingested_total events accepted
# TYPE ingested_total counter
ingested_total 42
# HELP queue_depth live queue depth
# TYPE queue_depth gauge
queue_depth 7
# HELP tracked_prefixes prefixes with window state
# TYPE tracked_prefixes gauge
tracked_prefixes 19
`

// TestGoldenPrometheusRender pins the text exposition byte for byte.
func TestGoldenPrometheusRender(t *testing.T) {
	r := NewRegistry()
	r.Counter("ingested_total", "events accepted").Add(42)
	r.Counter(`alerts_total{detector="blackhole-onset"}`, "alerts raised").Add(4)
	r.Counter(`alerts_total{detector="route-leak"}`, "").Inc()
	r.Gauge("queue_depth", "live queue depth").Set(7)
	// Binary-exact observations so the rendered _sum is stable.
	h := r.Histogram(`batch_seconds{shard="0"}`, "shard batch latency", []float64{0.25, 0.5})
	h.Observe(0.125)
	h.Observe(0.375)
	h.Observe(0.75)
	r.RegisterCollector(func(emit func(Sample)) {
		emit(Sample{Name: "tracked_prefixes", Help: "prefixes with window state", Type: TypeGauge, Value: 19})
	})
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != goldenExposition {
		t.Fatalf("exposition drifted from golden:\n--- got ---\n%s--- want ---\n%s", sb.String(), goldenExposition)
	}
}

func TestCollectorUnregister(t *testing.T) {
	r := NewRegistry()
	h := r.RegisterCollector(func(emit func(Sample)) {
		emit(Sample{Name: "ghost", Type: TypeGauge, Value: 1})
	})
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "ghost 1") {
		t.Fatal("collector sample missing before unregister")
	}
	h.Unregister()
	h.Unregister() // idempotent
	sb.Reset()
	r.WritePrometheus(&sb)
	if strings.Contains(sb.String(), "ghost") {
		t.Fatal("collector sample survived unregister")
	}
}

// TestConcurrentScrapeAndWrite hammers renders against instrument
// writes and instrument creation; run under -race this is the
// registry's thread-safety proof.
func TestConcurrentScrapeAndWrite(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot_total", "")
	h := r.Histogram("hot_seconds", "", DurationBuckets)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Observe(float64(i%100) / 1000)
				r.Gauge("g", "").Set(float64(i))
				if i%50 == 0 {
					r.Counter("hot_total", "").Inc()
				}
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Error(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestBuildInfo(t *testing.T) {
	b := BuildInfo()
	if b.GoVersion == "" || b.GitSHA == "" {
		t.Fatalf("incomplete build info: %+v", b)
	}
	if b != BuildInfo() {
		t.Fatal("build info not cached")
	}
}
