package scenario

import (
	"fmt"
	"sort"
	"sync"

	"bgpworms/internal/stats"
)

var (
	regMu    sync.RWMutex
	registry = map[string]*Scenario{}
)

// Register adds s to the global registry. It panics on nil Run, empty
// name, or duplicate registration — registration happens from package
// init, where a bad catalog should be fatal.
func Register(s *Scenario) {
	if s == nil || s.Name == "" || s.Run == nil {
		panic("scenario: Register requires a name and a Run func")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate registration of %q", s.Name))
	}
	registry[s.Name] = s
}

// Get returns the registered scenario by name.
func Get(name string) (*Scenario, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Names returns every registered scenario name, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// All returns every registered scenario, sorted by name.
func All() []*Scenario {
	names := Names()
	out := make([]*Scenario, 0, len(names))
	regMu.RLock()
	defer regMu.RUnlock()
	for _, name := range names {
		out = append(out, registry[name])
	}
	return out
}

// RenderCatalog renders the registry as a text table (attacklab -list).
func RenderCatalog(scenarios []*Scenario) string {
	t := stats.NewTable("Name", "Section", "Difficulty", "Params", "Summary")
	for _, s := range scenarios {
		params := ""
		for i, p := range s.Params {
			if i > 0 {
				params += ","
			}
			params += p.Name
		}
		if params == "" {
			params = "-"
		}
		t.Row(s.Name, s.Section, s.Difficulty.String(), params, s.Summary)
	}
	return t.String()
}
