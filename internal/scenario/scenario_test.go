package scenario_test

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	_ "bgpworms/internal/attack" // registers the builtin scenarios
	"bgpworms/internal/scenario"
)

func TestRegistryPopulation(t *testing.T) {
	names := scenario.Names()
	if len(names) < 7 {
		t.Fatalf("registry has %d scenarios, want >= 7: %v", len(names), names)
	}
	for _, want := range []string{
		// The Table 3 matrix.
		"rtbh", "steering-localpref", "steering-prepend", "route-manipulation",
		// §7.6 and the extensions beyond the paper.
		"blackhole-sweep", "propagation-distance", "blackhole-squatting",
		"selective-prepend", "route-leak-amplification",
	} {
		if _, ok := scenario.Get(want); !ok {
			t.Fatalf("scenario %q not registered (have %v)", want, names)
		}
	}
	// Names must come back sorted for stable catalogs.
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}

func TestCatalogSelfDescription(t *testing.T) {
	for _, s := range scenario.All() {
		if s.Title == "" || s.Section == "" || s.Summary == "" {
			t.Fatalf("scenario %q lacks catalog metadata: %+v", s.Name, s)
		}
		if !strings.Contains(s.Section, "§") {
			t.Fatalf("scenario %q cites no paper section: %q", s.Name, s.Section)
		}
		for _, p := range s.Params {
			if p.Name == "" || p.Help == "" {
				t.Fatalf("scenario %q has an undocumented parameter: %+v", s.Name, p)
			}
			if err := s.Validate(scenario.Values{p.Name: p.Default}); err != nil {
				t.Fatalf("scenario %q default for %s does not validate: %v", s.Name, p.Name, err)
			}
		}
	}
	if out := scenario.RenderCatalog(scenario.All()); out == "" {
		t.Fatal("catalog render empty")
	}
	// The catalog must serialize for attacklab -list -json.
	b, err := json.Marshal(scenario.All())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"difficulty":"easy"`) {
		t.Fatalf("difficulty not serialized as a name: %s", b)
	}
}

// TestREADMECatalogMatchesRegistry keeps the README's scenario-catalog
// table (generated via `attacklab -list -json`) from drifting out of
// sync with the registry.
func TestREADMECatalogMatchesRegistry(t *testing.T) {
	b, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(b)
	all := scenario.All()
	for _, s := range all {
		row := "| `" + s.Name + "` | " + s.Section + " | " + s.Difficulty.String() + " |"
		if !strings.Contains(text, row) {
			t.Errorf("README catalog row for %q missing or stale (want a row starting %q); regenerate with attacklab -list -json", s.Name, row)
		}
	}
	if got := strings.Count(text, "\n| `"); got != len(all) {
		t.Errorf("README catalog has %d rows, registry has %d scenarios; regenerate with attacklab -list -json", got, len(all))
	}
}

func TestValidateRejectsBadValues(t *testing.T) {
	s, _ := scenario.Get("rtbh")
	if err := s.Validate(scenario.Values{"hijack": "yes-please"}); err == nil {
		t.Fatal("bad bool accepted")
	}
	if err := s.Validate(scenario.Values{"no-such-param": "1"}); err == nil {
		t.Fatal("unknown parameter accepted")
	}
	if err := s.Validate(scenario.Values{"hijack": "true"}); err != nil {
		t.Fatal(err)
	}
	sp, _ := scenario.Get("selective-prepend")
	if err := sp.Validate(scenario.Values{"min-prepend": "two"}); err == nil {
		t.Fatal("bad int accepted")
	}
}

func TestRunUnknownScenario(t *testing.T) {
	if _, err := scenario.Run("no-such-scenario", nil); err == nil {
		t.Fatal("unknown scenario ran")
	}
}

func TestRunWithDefaults(t *testing.T) {
	res, err := scenario.Run("rtbh", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success || res.Hijack {
		t.Fatalf("rtbh defaults: success=%v hijack=%v %v", res.Success, res.Hijack, res.Evidence)
	}
	res, err = scenario.Run("rtbh", &scenario.Context{Values: scenario.Values{"hijack": "true"}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success || !res.Hijack {
		t.Fatalf("rtbh hijack variant: success=%v hijack=%v %v", res.Success, res.Hijack, res.Evidence)
	}
}
