// Package scenario is the attack-scenario engine: a registry of named,
// self-describing attack scenarios (the paper's §5–§7 taxonomy, Table 3)
// and a parallel sweep harness that fans a scenario grid — topology
// scale × generator seed × community set × simulation-engine workers —
// over the worker pool shared with the measurement pipeline.
//
// The package sits between the simulation stack and the CLIs: scenario
// implementations live where the lab machinery lives (internal/attack)
// and register themselves here; cmd/attacklab and the examples are thin
// clients of the registry. Scenario results and sweep reports are
// deterministic: a fixed (scale, seed, community set, engine workers)
// cell produces a bit-identical Result regardless of how many harness
// workers execute the sweep.
package scenario

import (
	"encoding/json"
	"fmt"
	"strconv"

	"bgpworms/internal/gen"
	"bgpworms/internal/simnet"
)

// Difficulty grades a scenario as the paper's Table 3 does.
type Difficulty int

// Difficulty levels.
const (
	Easy Difficulty = iota
	Medium
	Hard
)

// String names the difficulty.
func (d Difficulty) String() string {
	switch d {
	case Easy:
		return "easy"
	case Medium:
		return "medium"
	case Hard:
		return "hard"
	default:
		return "unknown"
	}
}

// MarshalJSON renders the difficulty as its name.
func (d Difficulty) MarshalJSON() ([]byte, error) { return json.Marshal(d.String()) }

// Result is one Table 3 row with evidence.
type Result struct {
	Scenario   string     `json:"scenario"`
	Hijack     bool       `json:"hijack"`
	Success    bool       `json:"success"`
	Difficulty Difficulty `json:"difficulty"`
	Insights   []string   `json:"insights,omitempty"`
	Evidence   []string   `json:"evidence,omitempty"`
}

// Notef appends a formatted evidence line.
func (r *Result) Notef(format string, args ...any) {
	r.Evidence = append(r.Evidence, fmt.Sprintf(format, args...))
}

// ParamKind types a scenario parameter.
type ParamKind int

// Parameter kinds.
const (
	KindBool ParamKind = iota
	KindInt
	KindString
)

// String names the kind.
func (k ParamKind) String() string {
	switch k {
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindString:
		return "string"
	default:
		return "unknown"
	}
}

// MarshalJSON renders the kind as its name.
func (k ParamKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// Param describes one typed scenario parameter.
type Param struct {
	Name    string    `json:"name"`
	Kind    ParamKind `json:"kind"`
	Default string    `json:"default"`
	Help    string    `json:"help"`
}

// Values carries parameter overrides as strings; Validate checks them
// against the scenario's typed declarations before Run parses them.
type Values map[string]string

// Expectation is the scenario's expected Table-3 outcome per variant. A
// variant the scenario cannot run is false: Hijack when there is no
// "hijack" parameter, Plain when the scenario is inherently a hijack
// (its Results always carry Hijack=true, e.g. a route leak).
type Expectation struct {
	Plain  bool `json:"plain"`
	Hijack bool `json:"hijack"`
}

// Thresholds declares detector-quality bounds a release harness gates a
// scenario run on. The zero value gates nothing; nil pointer fields are
// "not declared". The scenario registry exposes the type so suites
// (internal/suite) and scenario declarations speak the same gate
// vocabulary as the Expectation above speaks Table-3 outcomes.
type Thresholds struct {
	// MinPrecision and MinRecall bound the micro-averaged detector
	// precision/recall of an evaluated replay (watch.EvalScenario).
	MinPrecision *float64 `json:"min_precision,omitempty"`
	MinRecall    *float64 `json:"min_recall,omitempty"`
	// MaxNoiseAlerts caps the per-run count of alerts the ground truth
	// did not require (false-positive alert volume).
	MaxNoiseAlerts *int `json:"max_noise_alerts,omitempty"`
	// MaxVariance bounds the cross-seed population variance of
	// precision and recall within one suite cell group.
	MaxVariance *float64 `json:"max_variance,omitempty"`
}

// Validate rejects thresholds outside their meaningful ranges.
func (t Thresholds) Validate() error {
	if t.MinPrecision != nil && (*t.MinPrecision < 0 || *t.MinPrecision > 1) {
		return fmt.Errorf("min_precision %v outside [0,1]", *t.MinPrecision)
	}
	if t.MinRecall != nil && (*t.MinRecall < 0 || *t.MinRecall > 1) {
		return fmt.Errorf("min_recall %v outside [0,1]", *t.MinRecall)
	}
	if t.MaxNoiseAlerts != nil && *t.MaxNoiseAlerts < 0 {
		return fmt.Errorf("max_noise_alerts %d negative", *t.MaxNoiseAlerts)
	}
	if t.MaxVariance != nil && *t.MaxVariance < 0 {
		return fmt.Errorf("max_variance %v negative", *t.MaxVariance)
	}
	return nil
}

// RunFunc executes a scenario in a context.
type RunFunc func(*Context) (*Result, error)

// Scenario is a named, self-describing attack.
type Scenario struct {
	// Name is the registry key (kebab-case).
	Name string `json:"name"`
	// Title is the human-readable Table 3 row label.
	Title string `json:"title"`
	// Section cites the paper section the scenario reproduces or extends.
	Section string `json:"section"`
	// Summary is a one-line description for catalogs.
	Summary string `json:"summary"`
	// Difficulty is the Table 3 grading.
	Difficulty Difficulty `json:"difficulty"`
	// Expected is the Table 3 ground truth the run is scored against.
	Expected Expectation `json:"expected"`
	// Params declares the scenario's typed parameters.
	Params []Param `json:"params,omitempty"`
	// Run executes the scenario. It must be deterministic for a fixed
	// Context.
	Run RunFunc `json:"-"`
	// ManagesWorlds marks scenarios that build their own worlds (several
	// per run, or with modified generator parameters). Warm harnesses
	// skip snapshot provisioning for them: Context.Warm would go unused.
	ManagesWorlds bool `json:"manages_worlds,omitempty"`
}

// ExpectedFor returns the declared Table-3 expectation for the variant
// that ran: the hijack expectation when the result carries Hijack, the
// plain expectation otherwise.
func (s *Scenario) ExpectedFor(hijack bool) bool {
	if hijack {
		return s.Expected.Hijack
	}
	return s.Expected.Plain
}

// Param returns the declared parameter by name.
func (s *Scenario) Param(name string) (Param, bool) {
	for _, p := range s.Params {
		if p.Name == name {
			return p, true
		}
	}
	return Param{}, false
}

// Validate rejects unknown parameter names and values that do not parse
// as the declared kind.
func (s *Scenario) Validate(v Values) error {
	for name, raw := range v {
		p, ok := s.Param(name)
		if !ok {
			return fmt.Errorf("scenario %s: unknown parameter %q", s.Name, name)
		}
		switch p.Kind {
		case KindBool:
			if _, err := strconv.ParseBool(raw); err != nil {
				return fmt.Errorf("scenario %s: parameter %s=%q is not a bool", s.Name, name, raw)
			}
		case KindInt:
			if _, err := strconv.Atoi(raw); err != nil {
				return fmt.Errorf("scenario %s: parameter %s=%q is not an int", s.Name, name, raw)
			}
		}
	}
	return nil
}

// Shared run defaults: a single run (Context.withDefaults) and a sweep
// cell (Grid.withDefaults) fill empty dimensions from the same values,
// so the two entry points stay bit-identical for identical cells.
const (
	// DefaultScale is the gen preset used when none is given.
	DefaultScale = "tiny"
	// DefaultVPs is the Atlas vantage-point count used when none is given.
	DefaultVPs = 12
	// DefaultCommunitySet is the registry slice used when none is given.
	DefaultCommunitySet = "verified"
)

// Context carries everything a scenario run needs. The zero value is
// usable: defaults are a tiny Internet, DefaultVPs vantage points, and
// the DefaultCommunitySet registry slice.
type Context struct {
	// Gen sizes and seeds the synthetic Internet the scenario builds.
	// Gen.Workers selects the simnet engine parallelism per cell.
	Gen gen.Params
	// VPs is the Atlas vantage-point count.
	VPs int
	// CommunitySet names the registry slice candidate-driven scenarios
	// sweep: "verified", "likely", or "all".
	CommunitySet string
	// Values overrides scenario parameters.
	Values Values
	// Tap, when non-nil, observes every update delivery in the
	// scenario's simulated network — world construction included (it is
	// plumbed through Gen.Tap, surviving the scale default). The watch
	// engine attaches here to detect the attack it is replaying.
	Tap simnet.UpdateTap
	// World, when non-nil, is invoked with the scenario's built
	// synthetic Internet as soon as it exists (and before the attack
	// runs). Evaluation harnesses capture it to read ground truth —
	// e.g. the community dictionary the semantics engine is scored
	// against. Scenarios that build several worlds invoke it per world.
	World func(*gen.Internet)
	// Warm, when non-nil, is a frozen world snapshot the scenario forks
	// instead of building from scratch. The snapshot must have been
	// built with exactly this context's generator parameters
	// (gen.Snapshot.Compatible) — a mismatch is a loud error, never a
	// silent rebuild. Tap and World behave identically on the warm
	// path: the tap sees the full construction stream (replayed), and
	// World receives the forked Internet.
	Warm *gen.Snapshot

	scenario *Scenario
}

func (c *Context) withDefaults(s *Scenario) *Context {
	out := *c
	out.scenario = s
	if out.Gen.Stubs == 0 {
		out.Gen, _ = gen.Preset(DefaultScale)
	}
	if out.VPs == 0 {
		out.VPs = DefaultVPs
	}
	if out.CommunitySet == "" {
		out.CommunitySet = DefaultCommunitySet
	}
	if out.Tap != nil {
		out.Gen.Tap = out.Tap
	}
	return &out
}

func (c *Context) raw(name string) (string, bool) {
	if v, ok := c.Values[name]; ok {
		return v, true
	}
	if c.scenario != nil {
		if p, ok := c.scenario.Param(name); ok {
			return p.Default, true
		}
	}
	return "", false
}

// Bool reads a bool parameter, falling back to the declared default.
func (c *Context) Bool(name string) bool {
	raw, ok := c.raw(name)
	if !ok {
		return false
	}
	v, _ := strconv.ParseBool(raw)
	return v
}

// Int reads an int parameter, falling back to the declared default.
func (c *Context) Int(name string) int {
	raw, ok := c.raw(name)
	if !ok {
		return 0
	}
	v, _ := strconv.Atoi(raw)
	return v
}

// String reads a string parameter, falling back to the declared default.
func (c *Context) String(name string) string {
	raw, _ := c.raw(name)
	return raw
}

// Run executes the named registered scenario. A nil ctx runs with
// defaults (tiny Internet, 12 VPs, verified community set).
func Run(name string, ctx *Context) (*Result, error) {
	s, ok := Get(name)
	if !ok {
		return nil, fmt.Errorf("scenario: unknown scenario %q (have %v)", name, Names())
	}
	if ctx == nil {
		ctx = &Context{}
	}
	if err := s.Validate(ctx.Values); err != nil {
		return nil, err
	}
	return s.Run(ctx.withDefaults(s))
}
