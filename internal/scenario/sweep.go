package scenario

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"bgpworms/internal/conc"
	"bgpworms/internal/gen"
	"bgpworms/internal/obs"
	"bgpworms/internal/simnet"
	"bgpworms/internal/stats"
)

// Grid is a sweep specification: the cross product of every dimension.
// Empty dimensions default to a single canonical value, so the zero Grid
// (plus at least one scenario name, or none for "all registered") is
// runnable.
type Grid struct {
	// Scenarios are registry names; empty means every registered scenario.
	Scenarios []string `json:"scenarios"`
	// Scales are gen presets ("tiny", "small", "medium"); default tiny.
	Scales []string `json:"scales"`
	// Seeds are generator seeds; default {1}.
	Seeds []int64 `json:"seeds"`
	// EngineWorkers fans gen.Params.Workers — the simnet engine
	// parallelism per cell; default {1} (the serial FIFO engine).
	EngineWorkers []int `json:"engine_workers"`
	// Engines fans gen.Params.Engine — the simnet propagation engine
	// per cell ("auto", "serial", "rounds", "delta"); default {"auto"}.
	// Sweeping {"rounds", "delta"} is the grid form of the differential
	// engine check.
	Engines []string `json:"engines,omitempty"`
	// CommunitySets names registry slices for candidate-driven scenarios
	// ("verified", "likely", "all"); default {"verified"}.
	CommunitySets []string `json:"community_sets"`
	// VPs is the Atlas vantage-point count per cell; default 12.
	VPs int `json:"vps"`
	// Values applies fixed parameter overrides to every cell.
	Values Values `json:"values,omitempty"`
	// Cold disables warm-world snapshot reuse: every cell builds its
	// world from scratch, as sweeps did before snapshots existed. The
	// warm path is provably equivalent (the differential warm suite),
	// so this is an escape hatch for benchmarking and bisection, not a
	// correctness knob.
	Cold bool `json:"cold,omitempty"`
}

func (g Grid) withDefaults() Grid {
	if len(g.Scenarios) == 0 {
		g.Scenarios = Names()
	}
	if len(g.Scales) == 0 {
		g.Scales = []string{DefaultScale}
	}
	if len(g.Seeds) == 0 {
		g.Seeds = []int64{1}
	}
	if len(g.EngineWorkers) == 0 {
		g.EngineWorkers = []int{1}
	}
	if len(g.Engines) == 0 {
		g.Engines = []string{"auto"}
	}
	if len(g.CommunitySets) == 0 {
		g.CommunitySets = []string{DefaultCommunitySet}
	}
	if g.VPs == 0 {
		g.VPs = DefaultVPs
	}
	return g
}

// Cell is one grid point and, after the sweep, its outcome.
type Cell struct {
	Scenario      string  `json:"scenario"`
	Scale         string  `json:"scale"`
	Seed          int64   `json:"seed"`
	EngineWorkers int     `json:"engine_workers"`
	Engine        string  `json:"engine,omitempty"`
	CommunitySet  string  `json:"community_set"`
	Result        *Result `json:"result,omitempty"`
	Err           string  `json:"error,omitempty"`
	// Expected is the scenario's declared Table-3 outcome for the
	// variant that ran (Result.Hijack selects plain vs hijack), and
	// AsExpected grades Result.Success against it, making sweep JSON
	// self-describing. Both are meaningful only when Result is set.
	Expected   bool `json:"expected"`
	AsExpected bool `json:"as_expected"`
}

// Cells enumerates the grid in canonical order (scenario, scale, seed,
// engine workers, community set — outermost first) and validates every
// dimension value up front.
func (g Grid) Cells() ([]Cell, error) {
	g = g.withDefaults()
	for _, name := range g.Scenarios {
		if _, ok := Get(name); !ok {
			return nil, fmt.Errorf("scenario: sweep names unknown scenario %q", name)
		}
	}
	// Fixed Values apply per cell to scenarios that declare the
	// parameter; scenarios without it ignore it, so one -p flag can
	// parameterize a mixed grid. A name no swept scenario declares is a
	// typo and rejected up front; a declared value must parse everywhere
	// it applies.
	for name, raw := range g.Values {
		declared := false
		for _, sn := range g.Scenarios {
			s := mustGet(sn)
			if _, ok := s.Param(name); !ok {
				continue
			}
			declared = true
			if err := s.Validate(Values{name: raw}); err != nil {
				return nil, err
			}
		}
		if !declared {
			return nil, fmt.Errorf("scenario: no swept scenario declares parameter %q", name)
		}
	}
	for _, scale := range g.Scales {
		if _, err := gen.Preset(scale); err != nil {
			return nil, err
		}
	}
	for _, e := range g.Engines {
		if _, err := simnet.ParseEngine(e); err != nil {
			return nil, err
		}
	}
	var cells []Cell
	for _, name := range g.Scenarios {
		for _, scale := range g.Scales {
			for _, seed := range g.Seeds {
				for _, ew := range g.EngineWorkers {
					for _, eng := range g.Engines {
						for _, set := range g.CommunitySets {
							cells = append(cells, Cell{
								Scenario: name, Scale: scale, Seed: seed,
								EngineWorkers: ew, Engine: eng, CommunitySet: set,
							})
						}
					}
				}
			}
		}
	}
	return cells, nil
}

func mustGet(name string) *Scenario {
	s, _ := Get(name)
	return s
}

// SweepReport folds per-cell Results into an aggregate. Cells keep grid
// order, so the report is bit-identical for any harness worker count.
type SweepReport struct {
	Cells     []Cell `json:"cells"`
	Ran       int    `json:"ran"`
	Succeeded int    `json:"succeeded"`
	Failed    int    `json:"failed"`
	Errored   int    `json:"errored"`
	// AsExpected counts cells whose Success matches the scenario's
	// declared Table-3 expectation for the variant that ran.
	AsExpected int `json:"as_expected"`
	// SnapshotBuilds and SnapshotForks account for warm-world reuse:
	// how many worlds were actually built from scratch and how many
	// cells ran on cheap forks of them. A cold sweep reports zero for
	// both.
	SnapshotBuilds int `json:"snapshot_builds,omitempty"`
	SnapshotForks  int `json:"snapshot_forks,omitempty"`
}

// warmKey identifies one shared world build: cells agreeing on every
// generator-relevant coordinate fork the same snapshot.
type warmKey struct {
	scale   string
	seed    int64
	workers int
	engine  string
}

// WarmCache lazily builds at most one frozen world snapshot per (scale,
// seed, engine, engine-workers) coordinate. Each snapshot is built by
// the first cell that needs it (under sync.Once, so concurrent harness
// workers block instead of double-building) and forked by the rest.
// Sweep uses one per sweep; external cell executors (internal/suite)
// share the same mechanism so a suite cell and a sweep cell stay
// bit-identical runs.
type WarmCache struct {
	mu      sync.Mutex
	entries map[warmKey]*warmEntry
}

type warmEntry struct {
	once sync.Once
	snap *gen.Snapshot
	err  error
}

// NewWarmCache returns an empty cache.
func NewWarmCache() *WarmCache {
	return &WarmCache{entries: make(map[warmKey]*warmEntry)}
}

// Snapshot returns the frozen world for the cell's coordinates, building
// it exactly once. The build uses params with the tap stripped: per-cell
// taps are replayed at fork time, never recorded into the shared world.
func (wc *WarmCache) Snapshot(c Cell, params gen.Params) (*gen.Snapshot, error) {
	key := warmKey{scale: c.Scale, seed: c.Seed, workers: c.EngineWorkers, engine: c.Engine}
	wc.mu.Lock()
	e := wc.entries[key]
	if e == nil {
		e = &warmEntry{}
		wc.entries[key] = e
	}
	wc.mu.Unlock()
	e.once.Do(func() {
		params.Tap = nil
		e.snap, e.err = gen.BuildSnapshot(params)
	})
	return e.snap, e.err
}

// Stats reports how many worlds were built and how many forks they
// served.
func (wc *WarmCache) Stats() (builds, forks int) {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	for _, e := range wc.entries {
		if e.snap != nil {
			builds++
			forks += e.snap.Forks()
		}
	}
	return builds, forks
}

// Sweep executes every grid cell over a pool of at most workers harness
// goroutines (0 or negative: one per CPU). Cells agreeing on (scale,
// seed, engine, engine workers) share one frozen world build and fork it
// per run (unless Grid.Cold), so cells share no mutable state; results
// land at their grid index and the fold runs in grid order — the report
// is therefore bit-identical across harness worker counts, warm or cold.
func Sweep(g Grid, workers int) (*SweepReport, error) {
	return SweepOpts(g, workers, SweepOpt{})
}

// SweepOpt carries the sweep's optional observability hooks. The zero
// value is a plain sweep; nothing here can change the report.
type SweepOpt struct {
	// Progress, when set, is called after every completed cell with the
	// done count, the grid total, the cell just finished, and its wall
	// time. Calls come concurrently from harness goroutines and in
	// completion order, not grid order — serialize in the callback.
	Progress func(done, total int, c *Cell, d time.Duration)
	// Trace, when set, records one "cell <scenario>" span per grid cell
	// (scale/seed/engine attributes attached). Nil is a no-op.
	Trace *obs.Trace
}

// SweepOpts is Sweep with observability hooks attached.
func SweepOpts(g Grid, workers int, opt SweepOpt) (*SweepReport, error) {
	g = g.withDefaults()
	cells, err := g.Cells()
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var warm *WarmCache
	if !g.Cold {
		warm = NewWarmCache()
	}
	var done atomic.Int64
	conc.Do(len(cells), workers, func(i int) {
		c := &cells[i]
		start := time.Now()
		sp := opt.Trace.Start("cell " + c.Scenario)
		sp.SetAttr("scale", c.Scale)
		sp.SetAttr("seed", strconv.FormatInt(c.Seed, 10))
		sp.SetAttr("engine", c.Engine)
		runCell(c, g, warm)
		sp.End()
		if opt.Progress != nil {
			opt.Progress(int(done.Add(1)), len(cells), c, time.Since(start))
		}
	})
	rep := &SweepReport{Cells: cells, Ran: len(cells)}
	if warm != nil {
		rep.SnapshotBuilds, rep.SnapshotForks = warm.Stats()
	}
	for i := range cells {
		c := &cells[i]
		switch {
		case c.Err != "":
			rep.Errored++
		case c.Result != nil && c.Result.Success:
			rep.Succeeded++
		default:
			rep.Failed++
		}
		if c.Result != nil {
			c.Expected = mustGet(c.Scenario).ExpectedFor(c.Result.Hijack)
			c.AsExpected = c.Result.Success == c.Expected
			if c.AsExpected {
				rep.AsExpected++
			}
		}
	}
	return rep, nil
}

// ContextFor builds the run context for one grid cell exactly as Sweep
// does: the cell's preset seeded and engined, the grid's vantage-point
// count, and the grid's fixed Values filtered down to the parameters
// the cell's scenario declares. External harnesses (internal/suite)
// execute their cells through it so a suite cell and a sweep cell with
// the same coordinates are bit-identical runs.
func (g Grid) ContextFor(c Cell) (*Context, error) {
	p, err := gen.Preset(c.Scale)
	if err != nil {
		return nil, err
	}
	p.Seed = c.Seed
	p.Workers = c.EngineWorkers
	p.Engine = c.Engine
	// Pass only the parameters this cell's scenario declares, so fixed
	// Values can span a mixed-scenario grid.
	var vals Values
	if s, _ := Get(c.Scenario); s != nil {
		for name, raw := range g.Values {
			if _, ok := s.Param(name); ok {
				if vals == nil {
					vals = Values{}
				}
				vals[name] = raw
			}
		}
	}
	vps := g.VPs
	if vps == 0 {
		vps = DefaultVPs
	}
	return &Context{Gen: p, VPs: vps, CommunitySet: c.CommunitySet, Values: vals}, nil
}

func runCell(c *Cell, g Grid, warm *WarmCache) {
	ctx, err := g.ContextFor(*c)
	if err != nil {
		c.Err = err.Error()
		return
	}
	// Scenarios that manage their own worlds never fork the shared
	// snapshot; provisioning one for them would build a world nobody
	// uses.
	if warm != nil {
		if s, _ := Get(c.Scenario); s != nil && !s.ManagesWorlds {
			snap, err := warm.Snapshot(*c, ctx.Gen)
			if err != nil {
				c.Err = err.Error()
				return
			}
			ctx.Warm = snap
		}
	}
	res, err := Run(c.Scenario, ctx)
	if err != nil {
		c.Err = err.Error()
		return
	}
	c.Result = res
}

// RenderSweep renders the report as a text table, one row per cell.
func RenderSweep(r *SweepReport) string {
	t := stats.NewTable("Scenario", "Scale", "Seed", "Engine", "EngWorkers", "Set", "Success", "Expected", "Note")
	for i := range r.Cells {
		c := &r.Cells[i]
		note := ""
		switch {
		case c.Err != "":
			note = "error: " + c.Err
		case c.Result != nil && len(c.Result.Evidence) > 0:
			note = c.Result.Evidence[0]
		}
		success := false
		expected := "-"
		if c.Result != nil {
			success = c.Result.Success
			expected = strconv.FormatBool(c.Expected)
		}
		eng := c.Engine
		if eng == "" {
			eng = "auto"
		}
		t.Row(c.Scenario, c.Scale, c.Seed, eng, c.EngineWorkers, c.CommunitySet, success, expected, note)
	}
	out := t.String()
	out += fmt.Sprintf("\ncells=%d succeeded=%d failed=%d errored=%d as-expected=%d\n",
		r.Ran, r.Succeeded, r.Failed, r.Errored, r.AsExpected)
	return out
}
