package scenario_test

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"

	_ "bgpworms/internal/attack" // registers the builtin scenarios
	"bgpworms/internal/obs"
	"bgpworms/internal/scenario"
)

func TestGridCellEnumeration(t *testing.T) {
	g := scenario.Grid{
		Scenarios:     []string{"rtbh", "propagation-distance"},
		Scales:        []string{"tiny"},
		Seeds:         []int64{1, 2},
		EngineWorkers: []int{1, 4},
		CommunitySets: []string{"verified"},
	}
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2*1*2*2*1 {
		t.Fatalf("cells=%d", len(cells))
	}
	// Canonical order: scenario outermost, then scale, seed, workers, set.
	if cells[0].Scenario != "rtbh" || cells[0].Seed != 1 || cells[0].EngineWorkers != 1 {
		t.Fatalf("cell 0 = %+v", cells[0])
	}
	if cells[3].Scenario != "rtbh" || cells[3].Seed != 2 || cells[3].EngineWorkers != 4 {
		t.Fatalf("cell 3 = %+v", cells[3])
	}
	if cells[4].Scenario != "propagation-distance" {
		t.Fatalf("cell 4 = %+v", cells[4])
	}
}

func TestGridRejectsUnknownDimensions(t *testing.T) {
	if _, err := (scenario.Grid{Scenarios: []string{"nope"}}).Cells(); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if _, err := (scenario.Grid{Scales: []string{"galactic"}}).Cells(); err == nil {
		t.Fatal("unknown scale accepted")
	}
	if _, err := (scenario.Grid{
		Scenarios: []string{"rtbh"},
		Values:    scenario.Values{"bogus": "1"},
	}).Cells(); err == nil {
		t.Fatal("unknown fixed value accepted")
	}
}

// TestSweepDeterminismAcrossWorkers is the acceptance gate: the rendered
// sweep report must be bit-identical whether one harness worker or eight
// execute the grid.
func TestSweepDeterminismAcrossWorkers(t *testing.T) {
	g := scenario.Grid{
		Scenarios: []string{
			"rtbh", "route-manipulation", "propagation-distance", "blackhole-squatting",
		},
		Scales: []string{"tiny"},
		Seeds:  []int64{1, 2},
	}
	one, err := scenario.Sweep(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := scenario.Sweep(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := json.Marshal(one)
	if err != nil {
		t.Fatal(err)
	}
	b8, err := json.Marshal(eight)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b8) {
		t.Fatalf("sweep output differs across harness workers:\nworkers=1: %s\nworkers=8: %s", b1, b8)
	}
	if one.Ran != 8 || one.Ran != one.Succeeded+one.Failed+one.Errored {
		t.Fatalf("report counts inconsistent: %+v", one)
	}
	if one.Errored != 0 {
		t.Fatalf("cells errored: %s", b1)
	}
	if scenario.RenderSweep(one) == "" {
		t.Fatal("render empty")
	}
}

// TestSweepCellExpectations pins the self-describing report rows: every
// run cell carries the scenario's declared Table-3 expectation for the
// variant that ran, graded against the actual outcome, and the report
// total agrees with the per-cell grades.
func TestSweepCellExpectations(t *testing.T) {
	g := scenario.Grid{
		Scenarios: []string{"rtbh", "route-leak-amplification"},
		Values:    scenario.Values{"hijack": "true"},
	}
	rep, err := scenario.Sweep(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	asExpected := 0
	for i := range rep.Cells {
		c := &rep.Cells[i]
		if c.Err != "" || c.Result == nil {
			t.Fatalf("cell %d errored: %q", i, c.Err)
		}
		s, _ := scenario.Get(c.Scenario)
		want := s.Expected.Plain
		if c.Result.Hijack {
			want = s.Expected.Hijack
		}
		if c.Expected != want {
			t.Fatalf("cell %s: Expected=%v, scenario declares %v (hijack=%v)",
				c.Scenario, c.Expected, want, c.Result.Hijack)
		}
		if c.AsExpected != (c.Result.Success == c.Expected) {
			t.Fatalf("cell %s: AsExpected=%v inconsistent with Success=%v Expected=%v",
				c.Scenario, c.AsExpected, c.Result.Success, c.Expected)
		}
		if c.AsExpected {
			asExpected++
		}
	}
	if rep.AsExpected != asExpected {
		t.Fatalf("report AsExpected=%d, cells say %d", rep.AsExpected, asExpected)
	}
	b, err := json.Marshal(rep.Cells[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"expected"`, `"as_expected"`} {
		if !bytes.Contains(b, []byte(key)) {
			t.Fatalf("cell JSON missing %s: %s", key, b)
		}
	}
}

// TestSweepEngineWorkerInvariance pins the simnet guarantee the sweep
// leans on: under the parallel engine, scenario outcomes are invariant
// to the engine worker count.
func TestSweepEngineWorkerInvariance(t *testing.T) {
	g := scenario.Grid{
		Scenarios:     []string{"rtbh"},
		EngineWorkers: []int{2, 8},
	}
	rep, err := scenario.Sweep(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("cells=%d", len(rep.Cells))
	}
	a, b := rep.Cells[0], rep.Cells[1]
	if a.Err != "" || b.Err != "" {
		t.Fatalf("cell errors: %q %q", a.Err, b.Err)
	}
	ja, _ := json.Marshal(a.Result)
	jb, _ := json.Marshal(b.Result)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("engine workers changed the outcome:\nw=2: %s\nw=8: %s", ja, jb)
	}
}

// TestSweepOptsHooks pins the observability satellite: the progress
// callback sees every cell exactly once with a sane done/total, the
// trace records one span per cell, and attaching the hooks leaves the
// report bit-identical to a bare sweep.
func TestSweepOptsHooks(t *testing.T) {
	g := scenario.Grid{
		Scenarios: []string{"rtbh", "propagation-distance"},
		Scales:    []string{"tiny"},
		Seeds:     []int64{1, 2},
	}
	bare, err := scenario.Sweep(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var calls int
	seen := map[string]int{}
	tr := obs.NewTrace("sweep-test")
	hooked, err := scenario.SweepOpts(g, 2, scenario.SweepOpt{
		Trace: tr,
		Progress: func(done, total int, c *scenario.Cell, d time.Duration) {
			mu.Lock()
			defer mu.Unlock()
			calls++
			seen[c.Scenario]++
			if done < 1 || done > total || total != 4 || d < 0 {
				t.Errorf("progress(done=%d, total=%d, d=%v)", done, total, d)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 4 || seen["rtbh"] != 2 || seen["propagation-distance"] != 2 {
		t.Fatalf("progress calls=%d seen=%v", calls, seen)
	}
	recs := tr.Records()
	if len(recs) != 4 {
		t.Fatalf("trace spans=%d want 4", len(recs))
	}
	for _, r := range recs {
		if r.DurUS <= 0 || r.Attrs["scale"] != "tiny" {
			t.Fatalf("span %+v", r)
		}
	}
	b1, _ := json.Marshal(bare)
	b2, _ := json.Marshal(hooked)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("hooks changed the report:\nbare:   %s\nhooked: %s", b1, b2)
	}
}
