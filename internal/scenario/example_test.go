package scenario_test

import (
	"fmt"

	_ "bgpworms/internal/attack" // registers the builtin scenarios
	"bgpworms/internal/scenario"
)

// ExampleRun executes one registered scenario against the default tiny
// Internet. A nil context means tiny scale, seed 1, 12 vantage points.
func ExampleRun() {
	res, err := scenario.Run("rtbh", nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: success=%v difficulty=%s\n", res.Scenario, res.Success, res.Difficulty)
	// Output:
	// Blackholing: success=true difficulty=easy
}

// ExampleSweep fans a scenario grid over the harness worker pool. The
// report is bit-identical for any worker count.
func ExampleSweep() {
	rep, err := scenario.Sweep(scenario.Grid{
		Scenarios: []string{"rtbh", "route-manipulation"},
		Seeds:     []int64{1, 2},
	}, 4)
	if err != nil {
		panic(err)
	}
	fmt.Printf("cells=%d errored=%d\n", rep.Ran, rep.Errored)
	// Output:
	// cells=4 errored=0
}
