package router

import (
	"net/netip"
	"testing"

	"bgpworms/internal/bgp"
	"bgpworms/internal/netx"
	"bgpworms/internal/policy"
	"bgpworms/internal/topo"
)

var pfx = netx.MustPrefix("203.0.113.0/24")

func route(p netip.Prefix, path ...uint32) *policy.Route {
	r := policy.NewLocalRoute(p)
	r.ASPath = bgp.Path(path...)
	return r
}

func newRouter(asn topo.ASN) *Router {
	return New(Config{ASN: asn, Vendor: VendorJuniper})
}

func TestOriginateAndBest(t *testing.T) {
	r := newRouter(65001)
	if !r.Originate(pfx, bgp.C(65001, 100)) {
		t.Fatal("originate should change RIB")
	}
	best, ok := r.BestRoute(pfx)
	if !ok || best.NextHopAS != 0 || !best.Communities.Has(bgp.C(65001, 100)) {
		t.Fatalf("best=%v ok=%v", best, ok)
	}
	if got := r.LocalPrefixes(); len(got) != 1 || got[0] != pfx {
		t.Fatalf("locals=%v", got)
	}
	if !r.WithdrawLocal(pfx) {
		t.Fatal("withdraw should change RIB")
	}
	if _, ok := r.BestRoute(pfx); ok {
		t.Fatal("route should be gone")
	}
	if r.WithdrawLocal(pfx) {
		t.Fatal("double withdraw should be no-op")
	}
}

func TestReceiveUpdateBasics(t *testing.T) {
	r := newRouter(65001)
	r.AddNeighbor(64500, topo.RelCustomer)

	res, changed := r.ReceiveUpdate(64500, route(pfx, 64500))
	if res != ImportAccepted || !changed {
		t.Fatalf("res=%v changed=%v", res, changed)
	}
	best, _ := r.BestRoute(pfx)
	if best.NextHopAS != 64500 || best.FromRel != topo.RelCustomer || best.LocalPref != LocalPrefCustomer {
		t.Fatalf("best=%+v", best)
	}

	// Unknown neighbor.
	if res, _ := r.ReceiveUpdate(9999, route(pfx, 9999)); res != ImportRejectedUnknownNeighbor {
		t.Fatalf("res=%v", res)
	}
	// Loop.
	if res, _ := r.ReceiveUpdate(64500, route(pfx, 64500, 65001, 1)); res != ImportRejectedLoop {
		t.Fatalf("res=%v", res)
	}
}

func TestLocalPrefByRelationshipWinsOverPathLength(t *testing.T) {
	r := newRouter(65001)
	r.AddNeighbor(64500, topo.RelCustomer)
	r.AddNeighbor(64501, topo.RelPeer)
	r.AddNeighbor(64502, topo.RelProvider)

	// Provider offers the shortest path, customer the longest; the
	// customer must still win on local-pref.
	r.ReceiveUpdate(64502, route(pfx, 64502, 1))
	r.ReceiveUpdate(64501, route(pfx, 64501, 9, 1))
	r.ReceiveUpdate(64500, route(pfx, 64500, 7, 8, 9, 1))

	best, _ := r.BestRoute(pfx)
	if best.NextHopAS != 64500 {
		t.Fatalf("best via AS%d, want customer 64500", best.NextHopAS)
	}
}

func TestDecisionTieBreaks(t *testing.T) {
	r := newRouter(65001)
	r.AddNeighbor(64500, topo.RelPeer)
	r.AddNeighbor(64501, topo.RelPeer)

	// Same LP, shorter path wins.
	r.ReceiveUpdate(64500, route(pfx, 64500, 2, 1))
	r.ReceiveUpdate(64501, route(pfx, 64501, 1))
	best, _ := r.BestRoute(pfx)
	if best.NextHopAS != 64501 {
		t.Fatalf("shorter path should win, got AS%d", best.NextHopAS)
	}

	// Same LP and length: lower neighbor ASN wins.
	p2 := netx.MustPrefix("198.51.100.0/24")
	r.ReceiveUpdate(64501, route(p2, 64501, 1))
	r.ReceiveUpdate(64500, route(p2, 64500, 1))
	best, _ = r.BestRoute(p2)
	if best.NextHopAS != 64500 {
		t.Fatalf("lower ASN should win, got AS%d", best.NextHopAS)
	}

	// Origin tie-break: lower origin value preferred.
	p3 := netx.MustPrefix("192.0.2.0/24")
	egp := route(p3, 64500, 1)
	egp.Origin = bgp.OriginIncomplete
	r.ReceiveUpdate(64500, egp)
	igp := route(p3, 64501, 1)
	igp.Origin = bgp.OriginIGP
	r.ReceiveUpdate(64501, igp)
	best, _ = r.BestRoute(p3)
	if best.NextHopAS != 64501 {
		t.Fatalf("IGP origin should win, got AS%d", best.NextHopAS)
	}
}

func TestLocallyOriginatedBeatsLearned(t *testing.T) {
	r := newRouter(65001)
	r.AddNeighbor(64500, topo.RelCustomer)
	r.Originate(pfx)
	got, _ := r.ReceiveUpdate(64500, route(pfx, 64500, 1))
	if got != ImportAccepted {
		t.Fatal("accept expected")
	}
	best, _ := r.BestRoute(pfx)
	// Weight semantics: the local origination wins even against the
	// higher customer LP — an AS always prefers its own prefix.
	if best.NextHopAS != 0 {
		t.Fatalf("local origination should win, got AS%d", best.NextHopAS)
	}
}

func TestReceiveWithdraw(t *testing.T) {
	r := newRouter(65001)
	r.AddNeighbor(64500, topo.RelCustomer)
	r.AddNeighbor(64501, topo.RelCustomer)
	r.ReceiveUpdate(64500, route(pfx, 64500, 1))
	r.ReceiveUpdate(64501, route(pfx, 64501, 2, 1))

	if !r.ReceiveWithdraw(64500, pfx) {
		t.Fatal("withdraw of best should change RIB")
	}
	best, _ := r.BestRoute(pfx)
	if best.NextHopAS != 64501 {
		t.Fatalf("fallback failed: AS%d", best.NextHopAS)
	}
	if r.ReceiveWithdraw(64500, pfx) {
		t.Fatal("repeat withdraw is a no-op")
	}
	if r.ReceiveWithdraw(64500, netx.MustPrefix("10.0.0.0/8")) {
		t.Fatal("unknown prefix withdraw is a no-op")
	}
}

func TestRTBHServiceAcceptsAndNullRoutes(t *testing.T) {
	bh := bgp.C(65001, 666)
	r := New(Config{
		ASN: 65001, Vendor: VendorJuniper,
		Catalog:         policy.NewCatalog(65001).Add(policy.Service{Community: bh, Kind: policy.SvcBlackhole}),
		BlackholeMinLen: 24,
		MaxPrefixLen:    24,
	})
	r.AddNeighbor(64500, topo.RelCustomer)
	r.AddNeighbor(64501, topo.RelPeer)

	// Attackee path: short, no community.
	r.ReceiveUpdate(64501, route(pfx, 64501, 1))
	// Attacker path: longer but blackhole-tagged — must win on LP 200.
	tagged := route(pfx, 64500, 5, 6, 1)
	tagged.Communities = bgp.NewCommunitySet(bh)
	res, changed := r.ReceiveUpdate(64500, tagged)
	if res != ImportAccepted || !changed {
		t.Fatalf("res=%v changed=%v", res, changed)
	}
	best, _ := r.BestRoute(pfx)
	if !best.Blackhole || best.NextHopAS != 64500 || best.LocalPref != LocalPrefBlackhole {
		t.Fatalf("best=%+v", best)
	}

	// A /32 blackhole is accepted even with MaxPrefixLen 24.
	host := route(netx.MustPrefix("203.0.113.7/32"), 64500, 1)
	host.Communities = bgp.NewCommunitySet(bgp.CommunityBlackhole) // RFC 7999 honoured too
	if res, _ := r.ReceiveUpdate(64500, host); res != ImportAccepted {
		t.Fatalf("res=%v", res)
	}
	hb, _ := r.BestRoute(netx.MustPrefix("203.0.113.7/32"))
	if !hb.Blackhole {
		t.Fatal("RFC 7999 blackhole not honoured")
	}

	// A /32 without blackhole tag is too specific.
	if res, _ := r.ReceiveUpdate(64500, route(netx.MustPrefix("203.0.113.9/32"), 64500, 1)); res != ImportRejectedTooSpecific {
		t.Fatalf("res=%v", res)
	}

	// Blackhole tag on a /16: too coarse for RTBH (min /24), treated as
	// a normal route.
	coarse := route(netx.MustPrefix("203.0.0.0/16"), 64500, 1)
	coarse.Communities = bgp.NewCommunitySet(bh)
	r.ReceiveUpdate(64500, coarse)
	cb, _ := r.BestRoute(netx.MustPrefix("203.0.0.0/16"))
	if cb.Blackhole {
		t.Fatal("/16 must not be blackholed")
	}
}

func TestOriginValidationOrdering(t *testing.T) {
	bh := bgp.C(65001, 666)
	mk := func(misconfig bool) *Router {
		cust := (&policy.PrefixList{}).AddRange(netx.MustPrefix("192.0.2.0/24"), 24, 32)
		r := New(Config{
			ASN: 65001, Vendor: VendorJuniper,
			Catalog:                 policy.NewCatalog(65001).Add(policy.Service{Community: bh, Kind: policy.SvcBlackhole}),
			CustomerPrefixes:        map[topo.ASN]*policy.PrefixList{64500: cust},
			ValidateOrigin:          true,
			BlackholeMinLen:         24,
			BlackholeBeforeValidate: misconfig,
		})
		r.AddNeighbor(64500, topo.RelCustomer)
		return r
	}

	hijack := route(pfx, 64500, 1) // pfx is NOT in 64500's allowed list
	hijack.Communities = bgp.NewCommunitySet(bh)

	// Correct order: validation rejects the hijack despite the tag.
	if res, _ := mk(false).ReceiveUpdate(64500, hijack.Clone()); res != ImportRejectedOriginInvalid {
		t.Fatalf("correct order: res=%v", res)
	}
	// Misconfigured order: blackhole precedence lets the hijack in.
	r := mk(true)
	if res, _ := r.ReceiveUpdate(64500, hijack.Clone()); res != ImportAccepted {
		t.Fatal("misconfig must accept tagged hijack")
	}
	best, _ := r.BestRoute(pfx)
	if !best.Blackhole {
		t.Fatal("hijack should be null-routed")
	}
	// Untagged hijack rejected either way.
	plain := route(pfx, 64500, 1)
	if res, _ := mk(true).ReceiveUpdate(64500, plain); res != ImportRejectedOriginInvalid {
		t.Fatalf("untagged hijack: res=%v", res)
	}
}

func TestLocalPrefServiceCustomerGating(t *testing.T) {
	lp := bgp.C(65001, 80)
	cat := policy.NewCatalog(65001).Add(policy.Service{
		Community: lp, Kind: policy.SvcLocalPref, Param: 80, CustomerOnly: true,
	})
	r := New(Config{ASN: 65001, Vendor: VendorJuniper, Catalog: cat})
	r.AddNeighbor(64500, topo.RelCustomer)
	r.AddNeighbor(64501, topo.RelPeer)

	tagged := route(pfx, 64500, 1)
	tagged.Communities = bgp.NewCommunitySet(lp)
	r.ReceiveUpdate(64500, tagged)
	best, _ := r.BestRoute(pfx)
	if best.LocalPref != 80 {
		t.Fatalf("customer-set LP service should fire: lp=%d", best.LocalPref)
	}

	// Same tag from a peer: service must NOT fire (§7.4 gating).
	p2 := netx.MustPrefix("198.51.100.0/24")
	tagged2 := route(p2, 64501, 1)
	tagged2.Communities = bgp.NewCommunitySet(lp)
	r.ReceiveUpdate(64501, tagged2)
	best, _ = r.BestRoute(p2)
	if best.LocalPref != LocalPrefPeer {
		t.Fatalf("peer-set LP service must not fire: lp=%d", best.LocalPref)
	}
}

func TestLocationTagging(t *testing.T) {
	r := New(Config{
		ASN: 65001, Vendor: VendorJuniper,
		LocationTags: map[topo.ASN]bgp.Community{64500: bgp.C(65001, 201)},
	})
	r.AddNeighbor(64500, topo.RelPeer)
	r.ReceiveUpdate(64500, route(pfx, 64500, 1))
	best, _ := r.BestRoute(pfx)
	if !best.Communities.Has(bgp.C(65001, 201)) {
		t.Fatalf("location tag missing: %v", best.Communities)
	}
}

func TestExportGaoRexford(t *testing.T) {
	r := newRouter(65001)
	r.AddNeighbor(64500, topo.RelCustomer)
	r.AddNeighbor(64501, topo.RelPeer)
	r.AddNeighbor(64502, topo.RelProvider)
	r.AddNeighbor(64503, topo.RelPeer)

	// Peer-learned route: only customers get it.
	r.ReceiveUpdate(64501, route(pfx, 64501, 1))
	if _, d := r.ExportTo(64500, pfx); d != ExportSent {
		t.Fatalf("to customer: %v", d)
	}
	if _, d := r.ExportTo(64503, pfx); d != ExportSuppressedGaoRexford {
		t.Fatalf("to other peer: %v", d)
	}
	if _, d := r.ExportTo(64502, pfx); d != ExportSuppressedGaoRexford {
		t.Fatalf("to provider: %v", d)
	}
	// Never back to the source.
	if _, d := r.ExportTo(64501, pfx); d != ExportSuppressedGaoRexford {
		t.Fatalf("back to source: %v", d)
	}

	// Customer-learned route goes everywhere else.
	p2 := netx.MustPrefix("198.51.100.0/24")
	r.ReceiveUpdate(64500, route(p2, 64500, 1))
	for _, n := range []topo.ASN{64501, 64502, 64503} {
		if _, d := r.ExportTo(n, p2); d != ExportSent {
			t.Fatalf("customer route to %d: %v", n, d)
		}
	}
	// Unknown prefix / neighbor.
	if _, d := r.ExportTo(64500, netx.MustPrefix("10.0.0.0/8")); d != ExportNothing {
		t.Fatalf("unknown prefix: %v", d)
	}
	if _, d := r.ExportTo(999, p2); d != ExportNothing {
		t.Fatalf("unknown neighbor: %v", d)
	}
}

func TestExportAppendsOwnASNAndResetsLP(t *testing.T) {
	r := newRouter(65001)
	r.AddNeighbor(64500, topo.RelCustomer)
	r.AddNeighbor(64501, topo.RelCustomer)
	r.ReceiveUpdate(64500, route(pfx, 64500, 1))
	out, d := r.ExportTo(64501, pfx)
	if d != ExportSent {
		t.Fatal(d)
	}
	seq := out.ASPath.Sequence()
	if len(seq) != 3 || seq[0] != 65001 {
		t.Fatalf("path=%v", seq)
	}
	if out.LocalPref != policy.DefaultLocalPref || out.Blackhole {
		t.Fatalf("lp=%d bh=%v", out.LocalPref, out.Blackhole)
	}
}

func TestWellKnownCommunityExportControl(t *testing.T) {
	r := newRouter(65001)
	r.AddNeighbor(64500, topo.RelCustomer)
	r.AddNeighbor(64501, topo.RelCustomer)
	r.AddNeighbor(64502, topo.RelPeer)

	ne := route(pfx, 64500, 1)
	ne.Communities = bgp.NewCommunitySet(bgp.CommunityNoExport)
	r.ReceiveUpdate(64500, ne)
	if _, d := r.ExportTo(64501, pfx); d != ExportSuppressedNoExport {
		t.Fatalf("NO_EXPORT: %v", d)
	}

	p2 := netx.MustPrefix("198.51.100.0/24")
	na := route(p2, 64500, 1)
	na.Communities = bgp.NewCommunitySet(bgp.CommunityNoAdvertise)
	r.ReceiveUpdate(64500, na)
	if _, d := r.ExportTo(64501, p2); d != ExportSuppressedNoAdvertise {
		t.Fatalf("NO_ADVERTISE: %v", d)
	}

	p3 := netx.MustPrefix("192.0.2.0/24")
	np := route(p3, 64500, 1)
	np.Communities = bgp.NewCommunitySet(bgp.CommunityNoPeer)
	r.ReceiveUpdate(64500, np)
	if _, d := r.ExportTo(64502, p3); d != ExportSuppressedNoExport {
		t.Fatalf("NO_PEER to peer: %v", d)
	}
	if _, d := r.ExportTo(64501, p3); d != ExportSent {
		t.Fatalf("NO_PEER to customer: %v", d)
	}
}

func TestPrependService(t *testing.T) {
	pp := bgp.C(65001, 103)
	cat := policy.NewCatalog(65001).Add(policy.Service{Community: pp, Kind: policy.SvcPrepend, Param: 3})
	r := New(Config{ASN: 65001, Vendor: VendorJuniper, Catalog: cat})
	r.AddNeighbor(64500, topo.RelCustomer)
	r.AddNeighbor(64501, topo.RelPeer)

	tagged := route(pfx, 64500, 1)
	tagged.Communities = bgp.NewCommunitySet(pp)
	r.ReceiveUpdate(64500, tagged)
	out, d := r.ExportTo(64501, pfx)
	if d != ExportSent {
		t.Fatal(d)
	}
	seq := out.ASPath.Sequence()
	// 1 regular + 3 service prepends = 4 copies of 65001.
	count := 0
	for _, a := range seq {
		if a == 65001 {
			count++
		}
	}
	if count != 4 {
		t.Fatalf("path=%v want 4 copies of 65001", seq)
	}
}

func TestSelectiveAnnouncementServices(t *testing.T) {
	annTo := bgp.C(65001, 1)
	noAnnTo := bgp.C(65001, 2)
	cat := policy.NewCatalog(65001).
		Add(policy.Service{Community: noAnnTo, Kind: policy.SvcNoAnnounceTo, Param: 64501}).
		Add(policy.Service{Community: annTo, Kind: policy.SvcAnnounceTo, Param: 64501})
	r := New(Config{ASN: 65001, Vendor: VendorJuniper, Catalog: cat})
	r.AddNeighbor(64500, topo.RelCustomer)
	r.AddNeighbor(64501, topo.RelCustomer)
	r.AddNeighbor(64502, topo.RelCustomer)

	// announce-to only: 64501 gets it, 64502 does not.
	a := route(pfx, 64500, 1)
	a.Communities = bgp.NewCommunitySet(annTo)
	r.ReceiveUpdate(64500, a)
	if _, d := r.ExportTo(64501, pfx); d != ExportSent {
		t.Fatalf("announce-to target: %v", d)
	}
	if _, d := r.ExportTo(64502, pfx); d != ExportSuppressedService {
		t.Fatalf("announce-to non-target: %v", d)
	}

	// Conflict: both tags. Catalog lists no-announce first, so it wins —
	// the §5.3 route-server evaluation-order exploit at AS level.
	p2 := netx.MustPrefix("198.51.100.0/24")
	b := route(p2, 64500, 1)
	b.Communities = bgp.NewCommunitySet(annTo, noAnnTo)
	r.ReceiveUpdate(64500, b)
	if _, d := r.ExportTo(64501, p2); d != ExportSuppressedService {
		t.Fatalf("conflict should suppress: %v", d)
	}
}

func TestNoExportService(t *testing.T) {
	nx := bgp.C(65001, 9)
	cat := policy.NewCatalog(65001).Add(policy.Service{Community: nx, Kind: policy.SvcNoExport})
	r := New(Config{ASN: 65001, Vendor: VendorJuniper, Catalog: cat})
	r.AddNeighbor(64500, topo.RelCustomer)
	r.AddNeighbor(64501, topo.RelCustomer)
	a := route(pfx, 64500, 1)
	a.Communities = bgp.NewCommunitySet(nx)
	r.ReceiveUpdate(64500, a)
	if _, d := r.ExportTo(64501, pfx); d != ExportSuppressedService {
		t.Fatalf("no-export service: %v", d)
	}
}

func TestVendorCommunityDefaults(t *testing.T) {
	mk := func(v Vendor, send bool) *Router {
		cfg := Config{ASN: 65001, Vendor: v}
		if send {
			cfg.SendCommunity = map[topo.ASN]bool{64501: true}
		}
		r := New(cfg)
		r.AddNeighbor(64500, topo.RelCustomer)
		r.AddNeighbor(64501, topo.RelCustomer)
		a := route(pfx, 64500, 1)
		a.Communities = bgp.NewCommunitySet(bgp.C(7, 7))
		r.ReceiveUpdate(64500, a)
		return r
	}
	// Juniper forwards by default.
	out, _ := mk(VendorJuniper, false).ExportTo(64501, pfx)
	if !out.Communities.Has(bgp.C(7, 7)) {
		t.Fatal("juniper must forward by default")
	}
	// Cisco strips without send-community.
	out, _ = mk(VendorCisco, false).ExportTo(64501, pfx)
	if len(out.Communities) != 0 {
		t.Fatalf("cisco default must strip: %v", out.Communities)
	}
	// Cisco with send-community forwards.
	out, _ = mk(VendorCisco, true).ExportTo(64501, pfx)
	if !out.Communities.Has(bgp.C(7, 7)) {
		t.Fatal("cisco with send-community must forward")
	}
}

func TestPropagationModesOnExport(t *testing.T) {
	mk := func(mode policy.PropagationMode) bgp.CommunitySet {
		r := New(Config{ASN: 65001, Vendor: VendorJuniper, Propagation: mode})
		r.AddNeighbor(64500, topo.RelCustomer)
		r.AddNeighbor(64501, topo.RelCustomer)
		a := route(pfx, 64500, 1)
		a.Communities = bgp.NewCommunitySet(bgp.C(65001, 5), bgp.C(7, 7))
		r.ReceiveUpdate(64500, a)
		out, _ := r.ExportTo(64501, pfx)
		return out.Communities
	}
	if cs := mk(policy.PropStripAll); len(cs) != 0 {
		t.Fatalf("strip-all: %v", cs)
	}
	cs := mk(policy.PropActStripOwn)
	if cs.Has(bgp.C(65001, 5)) || !cs.Has(bgp.C(7, 7)) {
		t.Fatalf("act-strip-own: %v", cs)
	}
	cs = mk(policy.PropStripForeign)
	if !cs.Has(bgp.C(65001, 5)) || cs.Has(bgp.C(7, 7)) {
		t.Fatalf("strip-foreign: %v", cs)
	}
}

func TestPerNeighborPropagationOverride(t *testing.T) {
	r := New(Config{
		ASN: 65001, Vendor: VendorJuniper,
		Propagation:            policy.PropForwardAll,
		PropagationPerNeighbor: map[topo.ASN]policy.PropagationMode{64501: policy.PropStripAll},
	})
	r.AddNeighbor(64500, topo.RelCustomer)
	r.AddNeighbor(64501, topo.RelCustomer)
	r.AddNeighbor(64502, topo.RelCustomer)
	a := route(pfx, 64500, 1)
	a.Communities = bgp.NewCommunitySet(bgp.C(7, 7))
	r.ReceiveUpdate(64500, a)

	out, _ := r.ExportTo(64501, pfx)
	if len(out.Communities) != 0 {
		t.Fatal("override should strip")
	}
	out, _ = r.ExportTo(64502, pfx)
	if !out.Communities.Has(bgp.C(7, 7)) {
		t.Fatal("default should forward")
	}
}

func TestExportMapApplied(t *testing.T) {
	rm := &policy.RouteMap{Terms: []policy.Term{{MatchMinLen: 25, Deny: true}}}
	r := New(Config{ASN: 65001, Vendor: VendorJuniper, ExportMaps: map[topo.ASN]*policy.RouteMap{64501: rm}})
	r.AddNeighbor(64500, topo.RelCustomer)
	r.AddNeighbor(64501, topo.RelCustomer)
	long := netx.MustPrefix("203.0.113.128/25")
	r.ReceiveUpdate(64500, route(long, 64500, 1))
	if _, d := r.ExportTo(64501, long); d != ExportSuppressedPolicy {
		t.Fatalf("export map: %v", d)
	}
}

func TestImportMapApplied(t *testing.T) {
	rm := &policy.RouteMap{Terms: []policy.Term{{MatchNeighbor: 64500, Deny: true}}}
	r := New(Config{ASN: 65001, Vendor: VendorJuniper, ImportMaps: map[topo.ASN]*policy.RouteMap{64500: rm}})
	r.AddNeighbor(64500, topo.RelCustomer)
	if res, _ := r.ReceiveUpdate(64500, route(pfx, 64500, 1)); res != ImportRejectedPolicy {
		t.Fatalf("res=%v", res)
	}
}

func TestRecordAdvertisedChangeDetection(t *testing.T) {
	r := newRouter(65001)
	r.AddNeighbor(64500, topo.RelCustomer)
	r.AddNeighbor(64501, topo.RelCustomer)
	r.ReceiveUpdate(64500, route(pfx, 64500, 1))
	out, _ := r.ExportTo(64501, pfx)

	if !r.RecordAdvertised(64501, pfx, out) {
		t.Fatal("first advertisement is a change")
	}
	if r.RecordAdvertised(64501, pfx, out.Clone()) {
		t.Fatal("identical advertisement is not a change")
	}
	mod := out.Clone()
	mod.Communities = mod.Communities.Add(bgp.C(1, 1))
	if !r.RecordAdvertised(64501, pfx, mod) {
		t.Fatal("community change is a change")
	}
	if got, ok := r.Advertised(64501, pfx); !ok || !got.Communities.Has(bgp.C(1, 1)) {
		t.Fatal("Advertised lookup failed")
	}
	if !r.RecordAdvertised(64501, pfx, nil) {
		t.Fatal("withdrawal after advertisement is a change")
	}
	if r.RecordAdvertised(64501, pfx, nil) {
		t.Fatal("repeat withdrawal is not a change")
	}
}

func TestLookupFIBLongestMatch(t *testing.T) {
	r := newRouter(65001)
	r.AddNeighbor(64500, topo.RelCustomer)
	r.AddNeighbor(64501, topo.RelCustomer)
	r.ReceiveUpdate(64500, route(netx.MustPrefix("203.0.113.0/24"), 64500, 1))
	r.ReceiveUpdate(64501, route(netx.MustPrefix("203.0.113.0/25"), 64501, 2))

	rt, ok := r.LookupFIB(netip.MustParseAddr("203.0.113.5"))
	if !ok || rt.NextHopAS != 64501 {
		t.Fatalf("LPM failed: %+v", rt)
	}
	rt, ok = r.LookupFIB(netip.MustParseAddr("203.0.113.200"))
	if !ok || rt.NextHopAS != 64500 {
		t.Fatalf("fallback to /24 failed: %+v", rt)
	}
	if _, ok := r.LookupFIB(netip.MustParseAddr("8.8.8.8")); ok {
		t.Fatal("no default route expected")
	}
}

func TestRIBAndStringViews(t *testing.T) {
	r := newRouter(65001)
	r.AddNeighbor(64500, topo.RelCustomer)
	r.ReceiveUpdate(64500, route(pfx, 64500, 1))
	r.Originate(netx.MustPrefix("192.0.2.0/24"))
	rib := r.RIB()
	if len(rib) != 2 {
		t.Fatalf("RIB len=%d", len(rib))
	}
	if len(r.Prefixes()) != 2 {
		t.Fatal("Prefixes wrong")
	}
	if r.String() == "" || rib[0].String() == "" {
		t.Fatal("string views empty")
	}
	if r.NeighborRel(64500) != topo.RelCustomer || len(r.Neighbors()) != 1 {
		t.Fatal("neighbor accessors wrong")
	}
}

func TestCiscoCommunityAdditionCap(t *testing.T) {
	// An import map adding many communities on a Cisco router is capped at
	// 32 additions via location-tag/service paths. Route-map additions are
	// modelled as explicit config (not capped), so exercise the service
	// path: many location services triggered simultaneously.
	cat := policy.NewCatalog(65001)
	var comms []bgp.Community
	for i := 0; i < 40; i++ {
		c := bgp.C(64999, uint16(i))
		cat.Add(policy.Service{Community: c, Kind: policy.SvcLocation, Param: uint32(1000 + i)})
		comms = append(comms, c)
	}
	r := New(Config{ASN: 65001, Vendor: VendorCisco, Catalog: cat})
	r.AddNeighbor(64500, topo.RelCustomer)
	in := route(pfx, 64500, 1)
	in.Communities = bgp.NewCommunitySet(comms...)
	r.ReceiveUpdate(64500, in)
	best, _ := r.BestRoute(pfx)
	added := 0
	for _, c := range best.Communities {
		if c.ASN() == 65001 {
			added++
		}
	}
	if added != CiscoMaxAddedCommunities {
		t.Fatalf("added=%d want %d", added, CiscoMaxAddedCommunities)
	}

	// Juniper has no such cap.
	rj := New(Config{ASN: 65001, Vendor: VendorJuniper, Catalog: cat})
	rj.AddNeighbor(64500, topo.RelCustomer)
	in2 := route(pfx, 64500, 1)
	in2.Communities = bgp.NewCommunitySet(comms...)
	rj.ReceiveUpdate(64500, in2)
	bj, _ := rj.BestRoute(pfx)
	addedJ := 0
	for _, c := range bj.Communities {
		if c.ASN() == 65001 {
			addedJ++
		}
	}
	if addedJ != 40 {
		t.Fatalf("juniper added=%d want 40", addedJ)
	}
}

func TestImportResultStrings(t *testing.T) {
	for _, ir := range []ImportResult{ImportAccepted, ImportRejectedLoop, ImportRejectedUnknownNeighbor, ImportRejectedTooSpecific, ImportRejectedOriginInvalid, ImportRejectedPolicy, ImportResult(99)} {
		if ir.String() == "" {
			t.Fatal("empty result string")
		}
	}
	for _, d := range []ExportDecision{ExportSent, ExportSuppressedGaoRexford, ExportSuppressedNoExport, ExportSuppressedNoAdvertise, ExportSuppressedService, ExportSuppressedPolicy, ExportNothing} {
		if d.String() == "" {
			t.Fatal("empty decision string")
		}
	}
}
