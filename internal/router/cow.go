package router

import (
	"fmt"
	"maps"
	"net/netip"
	"slices"
)

// Sealing turns a converged router into the shared, immutable backbone of
// a world snapshot (simnet.Network.Freeze). A sealed router may be read
// concurrently by any number of forked worlds; every mutating entry point
// panics, so a fork that forgets to copy-on-write a router before touching
// it fails loudly instead of silently corrupting every sibling fork. The
// one sanctioned "write" on a sealed router is the lazy Loc-RIB trie
// rebuild in ensureRIB, which is a deterministic cache fill guarded by
// ribMu (see decision.go).

// Seal marks the router immutable. There is no Unseal: forks obtain a
// mutable descendant via Clone.
func (r *Router) Seal() { r.sealed = true }

// Sealed reports whether the router has been sealed.
func (r *Router) Sealed() bool { return r.sealed }

// mustMutable guards every mutating entry point against sealed routers.
func (r *Router) mustMutable() {
	if r.sealed {
		panic(fmt.Sprintf("router: mutation of sealed AS%d (fork the snapshot and use MutableRouter)", r.cfg.ASN))
	}
}

// Clone returns an unsealed deep-enough copy for copy-on-write forking:
// table structure (neighbor sets, per-prefix candidate and Adj-RIB-Out
// slices, config maps) is private to the clone, while the immutable route
// objects themselves — AS-path and community slabs — stay shared with the
// sealed original. Mutating the clone can therefore never reach a sibling
// fork: every in-place write path (storeAdjIn, withdraw, RecordAdvertised,
// EnableFullCommunityExport) lands in clone-owned backing arrays or maps,
// and routes are replaced wholesale, never edited.
func (r *Router) Clone() *Router {
	cp := &Router{
		cfg:       r.cfg,
		neighbors: maps.Clone(r.neighbors),
		nbVersion: r.nbVersion,
		locals:    maps.Clone(r.locals),
		state:     make(map[netip.Prefix]*prefixState, len(r.state)),
		bestLen:   r.bestLen,
	}
	cp.cfg.SendCommunity = maps.Clone(r.cfg.SendCommunity)
	cp.cfg.PropagationPerNeighbor = maps.Clone(r.cfg.PropagationPerNeighbor)
	cp.cfg.ImportMaps = maps.Clone(r.cfg.ImportMaps)
	cp.cfg.ExportMaps = maps.Clone(r.cfg.ExportMaps)
	cp.cfg.LocationTags = maps.Clone(r.cfg.LocationTags)
	cp.cfg.CustomerPrefixes = maps.Clone(r.cfg.CustomerPrefixes)
	cp.cfg.OriginAuth = maps.Clone(r.cfg.OriginAuth)
	for p, st := range r.state {
		cp.state[p] = &prefixState{
			in:   slices.Clone(st.in),
			best: st.best,
			out:  slices.Clone(st.out),
		}
	}
	// The LPM trie is rebuilt from scratch whenever it goes stale, never
	// patched in place, so sharing the current trie (or the stale flag)
	// with the sealed parent is safe — but a sibling fork may be driving
	// the parent's lazy rebuild concurrently, so read under its lock.
	if r.sealed {
		r.ribMu.Lock()
		cp.locRIB, cp.ribStale = r.locRIB, r.ribStale
		r.ribMu.Unlock()
	} else {
		cp.locRIB, cp.ribStale = r.locRIB, r.ribStale
	}
	return cp
}
