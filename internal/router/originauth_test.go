package router

import (
	"net/netip"
	"testing"

	"bgpworms/internal/netx"
	"bgpworms/internal/policy"
	"bgpworms/internal/topo"
)

// TestOriginAuthROV covers prefix→origin bindings (IRR route objects /
// RPKI ROAs): a route for a bound prefix with the wrong origin is
// rejected on any session type, and the §6.3 misconfiguration bypasses
// even this.
func TestOriginAuthROV(t *testing.T) {
	victim := netx.MustPrefix("203.0.113.0/24")
	mk := func(misconfig bool) *Router {
		bh := policy.NewCatalog(65001)
		bh.Add(policy.Service{Community: 65001<<16 | 666, Kind: policy.SvcBlackhole})
		r := New(Config{
			ASN: 65001, Vendor: VendorJuniper,
			ValidateOrigin:          true,
			OriginAuth:              map[netip.Prefix]topo.ASN{victim: 111},
			Catalog:                 bh,
			BlackholeMinLen:         24,
			BlackholeBeforeValidate: misconfig,
		})
		r.AddNeighbor(64500, topo.RelPeer) // peers: no CustomerPrefixes check
		return r
	}

	// Correct origin passes.
	r := mk(false)
	legit := route(victim, 64500, 111)
	if res, _ := r.ReceiveUpdate(64500, legit); res != ImportAccepted {
		t.Fatalf("legit origin rejected: %v", res)
	}

	// Wrong origin rejected even from a peer.
	bad := route(victim, 64500, 222)
	if res, _ := r.ReceiveUpdate(64500, bad); res != ImportRejectedOriginInvalid {
		t.Fatalf("hijack accepted: %v", res)
	}

	// Unbound prefixes are unaffected (not-found = unknown, accepted).
	other := route(netx.MustPrefix("198.51.100.0/24"), 64500, 222)
	if res, _ := r.ReceiveUpdate(64500, other); res != ImportAccepted {
		t.Fatalf("unbound prefix rejected: %v", res)
	}

	// Misconfigured order: blackhole-tagged hijack slips through ROV too.
	rm := mk(true)
	tagged := route(victim, 64500, 222)
	tagged.Communities = tagged.Communities.Add(65001<<16 | 666)
	res, _ := rm.ReceiveUpdate(64500, tagged)
	if res != ImportAccepted {
		t.Fatalf("misconfig should accept tagged hijack: %v", res)
	}
	best, _ := rm.BestRoute(victim)
	if !best.Blackhole {
		t.Fatal("tagged hijack should be null-routed")
	}
}
