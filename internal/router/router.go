// Package router models an AS-level BGP speaker: Adj-RIB-In, Loc-RIB with
// the full decision process, per-neighbor import/export policy, the
// community-triggered services of §2, and the vendor-specific behaviours
// §6 measured in the lab (JunOS forwards communities by default, IOS
// strips them unless send-community is configured, IOS caps community
// additions at 32, and route-map term order decides whether blackhole
// processing happens before or after origin validation).
package router

import (
	"fmt"
	"net/netip"
	"sort"

	"bgpworms/internal/bgp"
	"bgpworms/internal/netx"
	"bgpworms/internal/policy"
	"bgpworms/internal/topo"
)

// Vendor selects default community-handling behaviour (§6.1).
type Vendor int

// Vendors exercised in the paper's lab.
const (
	// VendorJuniper propagates received communities by default.
	VendorJuniper Vendor = iota
	// VendorCisco strips communities on export unless send-community is
	// configured per neighbor, and caps added communities at 32.
	VendorCisco
)

// CiscoMaxAddedCommunities is the IOS limit on distinct communities a
// configuration can add to a prefix (§6.1).
const CiscoMaxAddedCommunities = 32

// Default local preferences by relationship; customers are preferred, the
// standard Gao-Rexford economic ordering.
const (
	LocalPrefCustomer  uint32 = 140
	LocalPrefPeer      uint32 = 120
	LocalPrefProvider  uint32 = 100
	LocalPrefBlackhole uint32 = 200 // RTBH configs raise precedence (§5.1)
)

// Config parameterizes a router.
type Config struct {
	ASN    topo.ASN
	Vendor Vendor

	// SendCommunity enables community export toward a neighbor. Relevant
	// for VendorCisco only; VendorJuniper sends regardless.
	SendCommunity map[topo.ASN]bool

	// Propagation is the AS-wide community forwarding mode, overridable
	// per neighbor.
	Propagation            policy.PropagationMode
	PropagationPerNeighbor map[topo.ASN]policy.PropagationMode

	// Catalog lists the community services this AS offers.
	Catalog *policy.Catalog

	// ImportMaps / ExportMaps are per-neighbor route-maps; nil accepts.
	ImportMaps map[topo.ASN]*policy.RouteMap
	ExportMaps map[topo.ASN]*policy.RouteMap

	// LocationTags are ingress-point communities added to routes learned
	// from the keyed neighbor (the AS6 LAX/FRA tagging of Figure 1).
	LocationTags map[topo.ASN]bgp.Community

	// MaxPrefixLen rejects announcements more specific than this (0 =
	// unlimited). Blackhole-tagged announcements are exempt up to /32 when
	// the AS offers RTBH, per §7.3 "blackhole announcements typically must
	// be for a /24 or more specific prefix".
	MaxPrefixLen int

	// BlackholeMinLen requires blackhole announcements to be at least this
	// specific (commonly 24, some providers require /32).
	BlackholeMinLen int

	// BlackholeAddNoExport tags accepted blackhole routes with NO_EXPORT,
	// the RFC 7999 recommendation most RTBH deployments follow — the
	// reason blackholing communities travel shorter distances than
	// communities at large (Fig. 5a).
	BlackholeAddNoExport bool

	// CustomerPrefixes is the IRR-derived per-customer allowed prefix
	// list. When ValidateOrigin is set, customer announcements outside the
	// list are rejected.
	CustomerPrefixes map[topo.ASN]*policy.PrefixList
	ValidateOrigin   bool

	// OriginAuth binds prefixes to their authorized origin AS (IRR route
	// objects / RPKI ROAs). With ValidateOrigin set, a route for a bound
	// prefix whose AS-path origin differs is rejected — on any session.
	OriginAuth map[netip.Prefix]topo.ASN

	// BlackholeBeforeValidate reproduces the §6.3 misconfiguration: the
	// blackhole community is honoured before origin validation runs,
	// enabling hijack-based blackholing.
	BlackholeBeforeValidate bool

	// Transparent suppresses prepending the local ASN on export — IXP
	// route servers are "by convention not on the AS path" (§4.3), which
	// is what makes their communities appear off-path.
	Transparent bool

	// ReflectAll disables Gao-Rexford export filtering, redistributing
	// every best route to every session — route-server semantics.
	ReflectAll bool
}

// Router is a single-AS BGP speaker.
type Router struct {
	cfg       Config
	neighbors map[topo.ASN]topo.Rel
	locals    map[netip.Prefix]*policy.Route
	adjIn     map[netip.Prefix]map[topo.ASN]*policy.Route
	locRIB    *netx.Trie[*policy.Route]
	adjOut    map[topo.ASN]map[netip.Prefix]*policy.Route
}

// New constructs a router from cfg.
func New(cfg Config) *Router {
	return &Router{
		cfg:       cfg,
		neighbors: make(map[topo.ASN]topo.Rel),
		locals:    make(map[netip.Prefix]*policy.Route),
		adjIn:     make(map[netip.Prefix]map[topo.ASN]*policy.Route),
		locRIB:    netx.NewTrie[*policy.Route](),
		adjOut:    make(map[topo.ASN]map[netip.Prefix]*policy.Route),
	}
}

// ASN returns the router's AS number.
func (r *Router) ASN() topo.ASN { return r.cfg.ASN }

// Config exposes the configuration for inspection by the lab harness.
func (r *Router) Config() *Config { return &r.cfg }

// AddNeighbor registers an eBGP session with the given relationship
// (what the neighbor is to us).
func (r *Router) AddNeighbor(asn topo.ASN, rel topo.Rel) {
	r.neighbors[asn] = rel
	if r.adjOut[asn] == nil {
		r.adjOut[asn] = make(map[netip.Prefix]*policy.Route)
	}
}

// EnableFullCommunityExport makes the session to neighbor fully
// community-transparent regardless of the AS-wide policy. Route-collector
// peerings are configured this way in practice — "the configuration for
// these peerings is often collector specific and may differ from the
// regular policy of the AS" (§4.3).
func (r *Router) EnableFullCommunityExport(neighbor topo.ASN) {
	if r.cfg.PropagationPerNeighbor == nil {
		r.cfg.PropagationPerNeighbor = make(map[topo.ASN]policy.PropagationMode)
	}
	r.cfg.PropagationPerNeighbor[neighbor] = policy.PropForwardAll
	if r.cfg.SendCommunity == nil {
		r.cfg.SendCommunity = make(map[topo.ASN]bool)
	}
	r.cfg.SendCommunity[neighbor] = true
}

// Neighbors returns all sessions in ascending ASN order.
func (r *Router) Neighbors() []topo.ASN {
	out := make([]topo.ASN, 0, len(r.neighbors))
	for n := range r.neighbors {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NeighborRel returns the relationship of a neighbor.
func (r *Router) NeighborRel(asn topo.ASN) topo.Rel { return r.neighbors[asn] }

// Originate injects a locally-originated prefix, optionally pre-tagged
// with communities (the attacker's tool in every scenario), and reports
// whether the Loc-RIB changed.
func (r *Router) Originate(p netip.Prefix, comms ...bgp.Community) bool {
	rt := policy.NewLocalRoute(p)
	rt.Communities = bgp.NewCommunitySet(comms...)
	r.locals[rt.Prefix] = rt
	return r.decide(rt.Prefix)
}

// WithdrawLocal removes a locally-originated prefix.
func (r *Router) WithdrawLocal(p netip.Prefix) bool {
	p = p.Masked()
	if _, ok := r.locals[p]; !ok {
		return false
	}
	delete(r.locals, p)
	return r.decide(p)
}

// LocalPrefixes lists locally originated prefixes in canonical order.
func (r *Router) LocalPrefixes() []netip.Prefix {
	out := make([]netip.Prefix, 0, len(r.locals))
	for p := range r.locals {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return netx.ComparePrefix(out[i], out[j]) < 0 })
	return out
}

// ImportResult describes the fate of a received update for diagnostics.
type ImportResult int

// Import outcomes.
const (
	ImportAccepted ImportResult = iota
	ImportRejectedLoop
	ImportRejectedUnknownNeighbor
	ImportRejectedTooSpecific
	ImportRejectedOriginInvalid
	ImportRejectedPolicy
)

// String names the outcome.
func (ir ImportResult) String() string {
	switch ir {
	case ImportAccepted:
		return "accepted"
	case ImportRejectedLoop:
		return "rejected-loop"
	case ImportRejectedUnknownNeighbor:
		return "rejected-unknown-neighbor"
	case ImportRejectedTooSpecific:
		return "rejected-too-specific"
	case ImportRejectedOriginInvalid:
		return "rejected-origin-invalid"
	case ImportRejectedPolicy:
		return "rejected-policy"
	default:
		return "unknown"
	}
}

// ReceiveUpdate processes an announcement from neighbor `from`. It returns
// the import outcome and whether the Loc-RIB best route changed.
func (r *Router) ReceiveUpdate(from topo.ASN, in *policy.Route) (ImportResult, bool) {
	rel, ok := r.neighbors[from]
	if !ok {
		return ImportRejectedUnknownNeighbor, false
	}
	if in.ASPath.HasLoop(r.cfg.ASN) {
		return ImportRejectedLoop, false
	}
	rt := in.Clone()
	rt.NextHopAS = from
	rt.FromRel = rel
	rt.Blackhole = false

	fromCustomer := rel == topo.RelCustomer

	// Determine whether the update triggers our RTBH service.
	blackholeTagged := false
	if r.cfg.Catalog != nil {
		if bh, ok := r.cfg.Catalog.BlackholeCommunity(); ok && rt.Communities.Has(bh) {
			blackholeTagged = true
		}
	}
	// RFC 7999 well-known BLACKHOLE is honoured by ASes offering RTBH.
	if !blackholeTagged && r.cfg.Catalog != nil {
		if _, offers := r.cfg.Catalog.BlackholeCommunity(); offers && rt.Communities.Has(bgp.CommunityBlackhole) {
			blackholeTagged = true
		}
	}
	if blackholeTagged && r.cfg.BlackholeMinLen > 0 && rt.Prefix.Bits() < r.cfg.BlackholeMinLen {
		blackholeTagged = false // too coarse for RTBH; treat as ordinary route
	}

	applyBlackhole := func() {
		rt.Blackhole = true
		rt.LocalPref = LocalPrefBlackhole
		if r.cfg.BlackholeAddNoExport {
			rt.Communities = rt.Communities.Add(bgp.CommunityNoExport)
		}
	}

	validated := true
	if r.cfg.ValidateOrigin && fromCustomer {
		pl := r.cfg.CustomerPrefixes[from]
		if !pl.Matches(rt.Prefix) {
			validated = false
		}
	}
	if validated && r.cfg.ValidateOrigin && len(r.cfg.OriginAuth) > 0 {
		if want, ok := r.cfg.OriginAuth[rt.Prefix]; ok && rt.ASPath.Origin() != want {
			validated = false
		}
	}

	if blackholeTagged && r.cfg.BlackholeBeforeValidate {
		// §6.3 misconfiguration: blackhole precedence skips validation.
		applyBlackhole()
	} else {
		if !validated {
			return ImportRejectedOriginInvalid, false
		}
		if blackholeTagged {
			applyBlackhole()
		}
	}

	if !rt.Blackhole && r.cfg.MaxPrefixLen > 0 {
		// MaxPrefixLen is the IPv4 hygiene limit; the IPv6 convention is
		// /48 (twice the host-bit headroom).
		limit := r.cfg.MaxPrefixLen
		if rt.Prefix.Addr().Is6() {
			limit = 48
		}
		if rt.Prefix.Bits() > limit {
			return ImportRejectedTooSpecific, false
		}
	}

	if !rt.Blackhole {
		switch rel {
		case topo.RelCustomer:
			rt.LocalPref = LocalPrefCustomer
		case topo.RelPeer:
			rt.LocalPref = LocalPrefPeer
		default:
			rt.LocalPref = LocalPrefProvider
		}
	}

	// Community services at ingress (local-pref class; prepend and
	// announce-control act at export; location is additive).
	added := 0
	for _, svc := range r.cfg.Catalog.Active(rt.Communities, fromCustomer) {
		switch svc.Kind {
		case policy.SvcLocalPref:
			rt.LocalPref = svc.Param
		case policy.SvcLocation:
			// Location services bundle-tag on ingress.
			if r.allowAdd(added) {
				rt.Communities = rt.Communities.Add(bgp.C(uint16(r.cfg.ASN), uint16(svc.Param)))
				added++
			}
		}
	}

	// Ingress location tagging per neighbor (Figure 1, AS6 style).
	if tag, ok := r.cfg.LocationTags[from]; ok && r.allowAdd(added) {
		rt.Communities = rt.Communities.Add(tag)
		added++
	}

	if rm := r.cfg.ImportMaps[from]; rm != nil {
		if !rm.Apply(rt, r.cfg.ASN) {
			return ImportRejectedPolicy, false
		}
	}

	m := r.adjIn[rt.Prefix]
	if m == nil {
		m = make(map[topo.ASN]*policy.Route)
		r.adjIn[rt.Prefix] = m
	}
	m[from] = rt
	return ImportAccepted, r.decide(rt.Prefix)
}

// ReceiveWithdraw processes a withdrawal from a neighbor and reports
// whether the best route changed.
func (r *Router) ReceiveWithdraw(from topo.ASN, p netip.Prefix) bool {
	p = p.Masked()
	m := r.adjIn[p]
	if m == nil {
		return false
	}
	if _, ok := m[from]; !ok {
		return false
	}
	delete(m, from)
	return r.decide(p)
}

// allowAdd enforces the IOS 32-addition cap (§6.1).
func (r *Router) allowAdd(added int) bool {
	return r.cfg.Vendor != VendorCisco || added < CiscoMaxAddedCommunities
}

func (r *Router) String() string {
	return fmt.Sprintf("AS%d (%d neighbors, %d prefixes)", r.cfg.ASN, len(r.neighbors), r.locRIB.Len())
}
