// Package router models an AS-level BGP speaker: Adj-RIB-In, Loc-RIB with
// the full decision process, per-neighbor import/export policy, the
// community-triggered services of §2, and the vendor-specific behaviours
// §6 measured in the lab (JunOS forwards communities by default, IOS
// strips them unless send-community is configured, IOS caps community
// additions at 32, and route-map term order decides whether blackhole
// processing happens before or after origin validation).
package router

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"bgpworms/internal/bgp"
	"bgpworms/internal/netx"
	"bgpworms/internal/policy"
	"bgpworms/internal/topo"
)

// Vendor selects default community-handling behaviour (§6.1).
type Vendor int

// Vendors exercised in the paper's lab.
const (
	// VendorJuniper propagates received communities by default.
	VendorJuniper Vendor = iota
	// VendorCisco strips communities on export unless send-community is
	// configured per neighbor, and caps added communities at 32.
	VendorCisco
)

// CiscoMaxAddedCommunities is the IOS limit on distinct communities a
// configuration can add to a prefix (§6.1).
const CiscoMaxAddedCommunities = 32

// Default local preferences by relationship; customers are preferred, the
// standard Gao-Rexford economic ordering.
const (
	LocalPrefCustomer  uint32 = 140
	LocalPrefPeer      uint32 = 120
	LocalPrefProvider  uint32 = 100
	LocalPrefBlackhole uint32 = 200 // RTBH configs raise precedence (§5.1)
)

// Config parameterizes a router.
type Config struct {
	ASN    topo.ASN
	Vendor Vendor

	// SendCommunity enables community export toward a neighbor. Relevant
	// for VendorCisco only; VendorJuniper sends regardless.
	SendCommunity map[topo.ASN]bool

	// Propagation is the AS-wide community forwarding mode, overridable
	// per neighbor.
	Propagation            policy.PropagationMode
	PropagationPerNeighbor map[topo.ASN]policy.PropagationMode

	// Catalog lists the community services this AS offers.
	Catalog *policy.Catalog

	// ImportMaps / ExportMaps are per-neighbor route-maps; nil accepts.
	ImportMaps map[topo.ASN]*policy.RouteMap
	ExportMaps map[topo.ASN]*policy.RouteMap

	// LocationTags are ingress-point communities added to routes learned
	// from the keyed neighbor (the AS6 LAX/FRA tagging of Figure 1).
	LocationTags map[topo.ASN]bgp.Community

	// MaxPrefixLen rejects announcements more specific than this (0 =
	// unlimited). Blackhole-tagged announcements are exempt up to /32 when
	// the AS offers RTBH, per §7.3 "blackhole announcements typically must
	// be for a /24 or more specific prefix".
	MaxPrefixLen int

	// BlackholeMinLen requires blackhole announcements to be at least this
	// specific (commonly 24, some providers require /32).
	BlackholeMinLen int

	// BlackholeAddNoExport tags accepted blackhole routes with NO_EXPORT,
	// the RFC 7999 recommendation most RTBH deployments follow — the
	// reason blackholing communities travel shorter distances than
	// communities at large (Fig. 5a).
	BlackholeAddNoExport bool

	// CustomerPrefixes is the IRR-derived per-customer allowed prefix
	// list. When ValidateOrigin is set, customer announcements outside the
	// list are rejected.
	CustomerPrefixes map[topo.ASN]*policy.PrefixList
	ValidateOrigin   bool

	// OriginAuth binds prefixes to their authorized origin AS (IRR route
	// objects / RPKI ROAs). With ValidateOrigin set, a route for a bound
	// prefix whose AS-path origin differs is rejected — on any session.
	OriginAuth map[netip.Prefix]topo.ASN

	// BlackholeBeforeValidate reproduces the §6.3 misconfiguration: the
	// blackhole community is honoured before origin validation runs,
	// enabling hijack-based blackholing.
	BlackholeBeforeValidate bool

	// Transparent suppresses prepending the local ASN on export — IXP
	// route servers are "by convention not on the AS path" (§4.3), which
	// is what makes their communities appear off-path.
	Transparent bool

	// ReflectAll disables Gao-Rexford export filtering, redistributing
	// every best route to every session — route-server semantics.
	ReflectAll bool
}

// nbRoute is one Adj-RIB-Out entry: the neighbor plus the route last
// sent to it. Entries for a prefix are kept as a slice sorted by
// neighbor ASN — routers hold a handful of sessions per prefix, where a
// sorted slice beats a map on every axis the hot path cares about
// (lookup, ordered iteration, and GC footprint at internet scale).
type nbRoute struct {
	from topo.ASN
	rt   *policy.Route
}

// inEntry is one Adj-RIB-In candidate — the compact interned form. The
// import-derived attributes (next hop, relationship, local preference,
// blackhole) live in the entry, not in a per-entry route copy, so a
// receiver whose import policy neither tags nor rewrites the update
// stores the sender's shared route object directly: one
// AS-path/community slab per export class serves every session and
// every receiver that accepted it unchanged. Readers must take nexthop,
// relationship, local-pref, and blackhole from the entry; rt is
// authoritative only for prefix, path, communities, origin, and MED.
type inEntry struct {
	from topo.ASN
	rel  topo.Rel
	lp   uint32
	bh   bool
	rt   *policy.Route
}

// prefixState bundles every per-prefix table — Adj-RIB-In candidates,
// the Loc-RIB best route, and the Adj-RIB-Out record — so the hot path
// pays one prefix-keyed map access per operation instead of one per
// table. The state pointer is stable once created; empty states are
// garbage-collected with their prefix on withdrawal.
type prefixState struct {
	in   []inEntry
	best *policy.Route
	out  []nbRoute
}

// Router is a single-AS BGP speaker.
type Router struct {
	cfg       Config
	neighbors map[topo.ASN]topo.Rel
	nbVersion int
	locals    map[netip.Prefix]*policy.Route
	// state is the unified per-prefix routing table; locRIB is the
	// longest-prefix-match view (data plane), rebuilt lazily from it
	// because convergence churns best routes thousands of times between
	// data-plane queries.
	state    map[netip.Prefix]*prefixState
	bestLen  int
	locRIB   *netx.Trie[*policy.Route]
	ribStale bool

	// sealed marks the router as part of a frozen world snapshot: shared
	// read-only across forks, with every mutator panicking (cow.go). ribMu
	// guards the one sanctioned write on a sealed router — the lazy
	// Loc-RIB rebuild in ensureRIB — plus reads of locRIB/ribStale by
	// concurrent cloners.
	sealed bool
	ribMu  sync.Mutex
}

// New constructs a router from cfg.
func New(cfg Config) *Router {
	return &Router{
		cfg:       cfg,
		neighbors: make(map[topo.ASN]topo.Rel),
		locals:    make(map[netip.Prefix]*policy.Route),
		state:     make(map[netip.Prefix]*prefixState),
		locRIB:    netx.NewTrie[*policy.Route](),
	}
}

// stateFor returns the per-prefix state, creating it on demand.
func (r *Router) stateFor(p netip.Prefix) *prefixState {
	st := r.state[p]
	if st == nil {
		st = &prefixState{}
		r.state[p] = st
	}
	return st
}

// gcState drops the state entry if every table is empty.
func (r *Router) gcState(p netip.Prefix, st *prefixState) {
	if len(st.in) == 0 && st.best == nil && len(st.out) == 0 {
		delete(r.state, p)
	}
}

// ASN returns the router's AS number.
func (r *Router) ASN() topo.ASN { return r.cfg.ASN }

// Config exposes the configuration for inspection by the lab harness.
func (r *Router) Config() *Config { return &r.cfg }

// AddNeighbor registers an eBGP session with the given relationship
// (what the neighbor is to us).
func (r *Router) AddNeighbor(asn topo.ASN, rel topo.Rel) {
	r.mustMutable()
	r.neighbors[asn] = rel
	r.nbVersion++
}

// NeighborVersion counts AddNeighbor calls; engines that cache sorted
// neighbor lists use it to notice sessions added behind their back.
func (r *Router) NeighborVersion() int { return r.nbVersion }

// EnableFullCommunityExport makes the session to neighbor fully
// community-transparent regardless of the AS-wide policy. Route-collector
// peerings are configured this way in practice — "the configuration for
// these peerings is often collector specific and may differ from the
// regular policy of the AS" (§4.3).
func (r *Router) EnableFullCommunityExport(neighbor topo.ASN) {
	r.mustMutable()
	if r.cfg.PropagationPerNeighbor == nil {
		r.cfg.PropagationPerNeighbor = make(map[topo.ASN]policy.PropagationMode)
	}
	r.cfg.PropagationPerNeighbor[neighbor] = policy.PropForwardAll
	if r.cfg.SendCommunity == nil {
		r.cfg.SendCommunity = make(map[topo.ASN]bool)
	}
	r.cfg.SendCommunity[neighbor] = true
	// Per-neighbor export policy changed: invalidate cached ExportHints.
	r.nbVersion++
}

// Neighbors returns all sessions in ascending ASN order.
func (r *Router) Neighbors() []topo.ASN {
	out := make([]topo.ASN, 0, len(r.neighbors))
	for n := range r.neighbors {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NeighborRel returns the relationship of a neighbor.
func (r *Router) NeighborRel(asn topo.ASN) topo.Rel { return r.neighbors[asn] }

// Originate injects a locally-originated prefix, optionally pre-tagged
// with communities (the attacker's tool in every scenario), and reports
// whether the Loc-RIB changed.
func (r *Router) Originate(p netip.Prefix, comms ...bgp.Community) bool {
	r.mustMutable()
	rt := policy.NewLocalRoute(p)
	rt.Communities = bgp.NewCommunitySet(comms...)
	r.locals[rt.Prefix] = rt
	return r.decide(rt.Prefix)
}

// WithdrawLocal removes a locally-originated prefix.
func (r *Router) WithdrawLocal(p netip.Prefix) bool {
	r.mustMutable()
	p = p.Masked()
	if _, ok := r.locals[p]; !ok {
		return false
	}
	delete(r.locals, p)
	return r.decide(p)
}

// LocalPrefixes lists locally originated prefixes in canonical order.
func (r *Router) LocalPrefixes() []netip.Prefix {
	out := make([]netip.Prefix, 0, len(r.locals))
	for p := range r.locals {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return netx.ComparePrefix(out[i], out[j]) < 0 })
	return out
}

// ImportResult describes the fate of a received update for diagnostics.
type ImportResult int

// Import outcomes.
const (
	ImportAccepted ImportResult = iota
	ImportRejectedLoop
	ImportRejectedUnknownNeighbor
	ImportRejectedTooSpecific
	ImportRejectedOriginInvalid
	ImportRejectedPolicy
)

// String names the outcome.
func (ir ImportResult) String() string {
	switch ir {
	case ImportAccepted:
		return "accepted"
	case ImportRejectedLoop:
		return "rejected-loop"
	case ImportRejectedUnknownNeighbor:
		return "rejected-unknown-neighbor"
	case ImportRejectedTooSpecific:
		return "rejected-too-specific"
	case ImportRejectedOriginInvalid:
		return "rejected-origin-invalid"
	case ImportRejectedPolicy:
		return "rejected-policy"
	default:
		return "unknown"
	}
}

// ReceiveUpdate processes an announcement from neighbor `from`. It returns
// the import outcome and whether the Loc-RIB best route changed.
func (r *Router) ReceiveUpdate(from topo.ASN, in *policy.Route) (ImportResult, bool) {
	r.mustMutable()
	res := r.receive(from, in, false)
	if res != ImportAccepted {
		return res, false
	}
	return res, r.decide(in.Prefix)
}

// ReceiveShared is ReceiveUpdate for engines that deliver one shared
// route object to many receivers (the delta engine's export classes).
// Instead of deep-cloning the input up front it takes a shallow copy
// whose AS-path and community slices alias the sender's slabs, and
// copies the community set only at the first local mutation. The import
// outcome and resulting RIB state are identical to ReceiveUpdate's; the
// caller guarantees the shared input is never mutated in place.
func (r *Router) ReceiveShared(from topo.ASN, in *policy.Route) (ImportResult, bool) {
	r.mustMutable()
	res := r.receive(from, in, true)
	if res != ImportAccepted {
		return res, false
	}
	return res, r.decide(in.Prefix)
}

// ReceiveSharedNoDecide stores a shared update in the Adj-RIB-In
// without running the decision process, reporting whether the import
// was accepted. Engines that batch several deliveries for one prefix
// (the delta engine's per-destination inboxes) apply them all and then
// call Decide once per prefix: the final candidate set — and therefore
// the decision — is order-identical to deciding after every delivery,
// while transient intermediate best routes (which could only trigger
// no-op re-exports) are never computed.
func (r *Router) ReceiveSharedNoDecide(from topo.ASN, in *policy.Route) ImportResult {
	r.mustMutable()
	return r.receive(from, in, true)
}

// Decide runs the decision process for p and reports whether the best
// route changed. Pair with ReceiveSharedNoDecide / WithdrawNoDecide.
func (r *Router) Decide(p netip.Prefix) bool {
	r.mustMutable()
	return r.decide(p.Masked())
}

// receive runs the import policy for an update and stores the accepted
// candidate in the Adj-RIB-In; callers run the decision process.
//
// For shared inputs it first runs a pure decision pass (importScan): if
// the import neither tags nor rewrites the route, the accepted entry
// aliases the sender's route object with zero allocation — the interned
// fast path the delta engine lives on. Anything that mutates (blackhole
// NO_EXPORT, location services, ingress tags, route maps) falls through
// to the classic build-a-private-route path below.
func (r *Router) receive(from topo.ASN, in *policy.Route, shared bool) ImportResult {
	rel, ok := r.neighbors[from]
	if !ok {
		return ImportRejectedUnknownNeighbor
	}
	if in.ASPath.HasLoop(r.cfg.ASN) {
		return ImportRejectedLoop
	}
	if shared {
		res, entry, pristine := r.importScan(from, rel, in)
		if res != ImportAccepted {
			return res
		}
		if pristine {
			r.storeAdjIn(entry)
			return ImportAccepted
		}
	}
	var rt *policy.Route
	ownComms := true
	if shared {
		cp := *in // slices still alias the shared slabs
		rt = &cp
		ownComms = false
	} else {
		rt = in.Clone()
	}
	// addComm is the copy-on-write community append: shared routes get a
	// private set the first time this router tags the route.
	addComm := func(c bgp.Community) {
		if !ownComms {
			rt.Communities = rt.Communities.Clone()
			ownComms = true
		}
		rt.Communities = rt.Communities.Add(c)
	}
	rt.NextHopAS = from
	rt.FromRel = rel
	rt.Blackhole = false

	fromCustomer := rel == topo.RelCustomer

	// Determine whether the update triggers our RTBH service.
	blackholeTagged := false
	if r.cfg.Catalog != nil {
		if bh, ok := r.cfg.Catalog.BlackholeCommunity(); ok && rt.Communities.Has(bh) {
			blackholeTagged = true
		}
	}
	// RFC 7999 well-known BLACKHOLE is honoured by ASes offering RTBH.
	if !blackholeTagged && r.cfg.Catalog != nil {
		if _, offers := r.cfg.Catalog.BlackholeCommunity(); offers && rt.Communities.Has(bgp.CommunityBlackhole) {
			blackholeTagged = true
		}
	}
	if blackholeTagged && r.cfg.BlackholeMinLen > 0 && rt.Prefix.Bits() < r.cfg.BlackholeMinLen {
		blackholeTagged = false // too coarse for RTBH; treat as ordinary route
	}

	applyBlackhole := func() {
		rt.Blackhole = true
		rt.LocalPref = LocalPrefBlackhole
		if r.cfg.BlackholeAddNoExport {
			addComm(bgp.CommunityNoExport)
		}
	}

	validated := true
	if r.cfg.ValidateOrigin && fromCustomer {
		pl := r.cfg.CustomerPrefixes[from]
		if !pl.Matches(rt.Prefix) {
			validated = false
		}
	}
	if validated && r.cfg.ValidateOrigin && len(r.cfg.OriginAuth) > 0 {
		if want, ok := r.cfg.OriginAuth[rt.Prefix]; ok && rt.ASPath.Origin() != want {
			validated = false
		}
	}

	if blackholeTagged && r.cfg.BlackholeBeforeValidate {
		// §6.3 misconfiguration: blackhole precedence skips validation.
		applyBlackhole()
	} else {
		if !validated {
			return ImportRejectedOriginInvalid
		}
		if blackholeTagged {
			applyBlackhole()
		}
	}

	if !rt.Blackhole && r.cfg.MaxPrefixLen > 0 {
		// MaxPrefixLen is the IPv4 hygiene limit; the IPv6 convention is
		// /48 (twice the host-bit headroom).
		limit := r.cfg.MaxPrefixLen
		if rt.Prefix.Addr().Is6() {
			limit = 48
		}
		if rt.Prefix.Bits() > limit {
			return ImportRejectedTooSpecific
		}
	}

	if !rt.Blackhole {
		switch rel {
		case topo.RelCustomer:
			rt.LocalPref = LocalPrefCustomer
		case topo.RelPeer:
			rt.LocalPref = LocalPrefPeer
		default:
			rt.LocalPref = LocalPrefProvider
		}
	}

	// Community services at ingress (local-pref class; prepend and
	// announce-control act at export; location is additive).
	added := 0
	for _, svc := range r.cfg.Catalog.Active(rt.Communities, fromCustomer) {
		switch svc.Kind {
		case policy.SvcLocalPref:
			rt.LocalPref = svc.Param
		case policy.SvcLocation:
			// Location services bundle-tag on ingress.
			if r.allowAdd(added) {
				addComm(bgp.C(uint16(r.cfg.ASN), uint16(svc.Param)))
				added++
			}
		}
	}

	// Ingress location tagging per neighbor (Figure 1, AS6 style).
	if tag, ok := r.cfg.LocationTags[from]; ok && r.allowAdd(added) {
		addComm(tag)
		added++
	}

	if rm := r.cfg.ImportMaps[from]; rm != nil {
		if !ownComms {
			// Route maps mutate the community set in place; detach from
			// the shared slab first. (Prepend actions already copy.)
			rt.Communities = rt.Communities.Clone()
			ownComms = true
		}
		if !rm.Apply(rt, r.cfg.ASN) {
			return ImportRejectedPolicy
		}
	}

	r.storeAdjIn(inEntry{from: from, rel: rel, lp: rt.LocalPref, bh: rt.Blackhole, rt: rt})
	return ImportAccepted
}

// storeAdjIn inserts or replaces the candidate entry for (prefix, from).
func (r *Router) storeAdjIn(e inEntry) {
	st := r.stateFor(e.rt.Prefix)
	cands := st.in
	i := sort.Search(len(cands), func(i int) bool { return cands[i].from >= e.from })
	if i < len(cands) && cands[i].from == e.from {
		cands[i] = e
	} else {
		cands = append(cands, inEntry{})
		copy(cands[i+1:], cands[i:])
		cands[i] = e
		st.in = cands
	}
}

// importScan is the allocation-free decision half of the import policy:
// it computes the outcome, effective local-pref, and blackhole flag for
// an update without building a route, and reports whether the import is
// pristine — nothing would tag or rewrite the route, so the shared
// input can be stored as-is. Non-pristine accepted imports are replayed
// by the mutating path in receive; the two must agree, which the
// engine differential tests cross-check (the rounds oracle never takes
// this path).
func (r *Router) importScan(from topo.ASN, rel topo.Rel, in *policy.Route) (ImportResult, inEntry, bool) {
	fromCustomer := rel == topo.RelCustomer

	blackholeTagged := false
	if r.cfg.Catalog != nil {
		if bh, ok := r.cfg.Catalog.BlackholeCommunity(); ok && in.Communities.Has(bh) {
			blackholeTagged = true
		}
		if !blackholeTagged {
			if _, offers := r.cfg.Catalog.BlackholeCommunity(); offers && in.Communities.Has(bgp.CommunityBlackhole) {
				blackholeTagged = true
			}
		}
	}
	if blackholeTagged && r.cfg.BlackholeMinLen > 0 && in.Prefix.Bits() < r.cfg.BlackholeMinLen {
		blackholeTagged = false
	}

	validated := true
	if r.cfg.ValidateOrigin && fromCustomer {
		if !r.cfg.CustomerPrefixes[from].Matches(in.Prefix) {
			validated = false
		}
	}
	if validated && r.cfg.ValidateOrigin && len(r.cfg.OriginAuth) > 0 {
		if want, ok := r.cfg.OriginAuth[in.Prefix]; ok && in.ASPath.Origin() != want {
			validated = false
		}
	}

	bh := false
	if blackholeTagged && r.cfg.BlackholeBeforeValidate {
		bh = true
	} else {
		if !validated {
			return ImportRejectedOriginInvalid, inEntry{}, false
		}
		bh = blackholeTagged
	}

	if !bh && r.cfg.MaxPrefixLen > 0 {
		limit := r.cfg.MaxPrefixLen
		if in.Prefix.Addr().Is6() {
			limit = 48
		}
		if in.Prefix.Bits() > limit {
			return ImportRejectedTooSpecific, inEntry{}, false
		}
	}

	var lp uint32
	mutates := false
	if bh {
		lp = LocalPrefBlackhole
		if r.cfg.BlackholeAddNoExport {
			mutates = true
		}
	} else {
		switch rel {
		case topo.RelCustomer:
			lp = LocalPrefCustomer
		case topo.RelPeer:
			lp = LocalPrefPeer
		default:
			lp = LocalPrefProvider
		}
	}

	added := 0
	for _, svc := range r.cfg.Catalog.Active(in.Communities, fromCustomer) {
		switch svc.Kind {
		case policy.SvcLocalPref:
			lp = svc.Param
		case policy.SvcLocation:
			if r.allowAdd(added) {
				mutates = true
				added++
			}
		}
	}
	if _, ok := r.cfg.LocationTags[from]; ok && r.allowAdd(added) {
		mutates = true
	}
	if r.cfg.ImportMaps[from] != nil {
		mutates = true
	}

	return ImportAccepted, inEntry{from: from, rel: rel, lp: lp, bh: bh, rt: in}, !mutates
}

// ReceiveWithdraw processes a withdrawal from a neighbor and reports
// whether the best route changed.
func (r *Router) ReceiveWithdraw(from topo.ASN, p netip.Prefix) bool {
	r.mustMutable()
	p = p.Masked()
	if !r.withdraw(from, p) {
		return false
	}
	return r.decide(p)
}

// WithdrawNoDecide removes the neighbor's Adj-RIB-In entry without
// running the decision process, reporting whether an entry was removed;
// the ReceiveSharedNoDecide batching contract applies.
func (r *Router) WithdrawNoDecide(from topo.ASN, p netip.Prefix) bool {
	r.mustMutable()
	return r.withdraw(from, p.Masked())
}

func (r *Router) withdraw(from topo.ASN, p netip.Prefix) bool {
	st := r.state[p]
	if st == nil {
		return false
	}
	cands := st.in
	i := sort.Search(len(cands), func(i int) bool { return cands[i].from >= from })
	if i >= len(cands) || cands[i].from != from {
		return false
	}
	st.in = append(cands[:i], cands[i+1:]...)
	if len(st.in) == 0 {
		st.in = nil
		r.gcState(p, st)
	}
	return true
}

// allowAdd enforces the IOS 32-addition cap (§6.1).
func (r *Router) allowAdd(added int) bool {
	return r.cfg.Vendor != VendorCisco || added < CiscoMaxAddedCommunities
}

func (r *Router) String() string {
	return fmt.Sprintf("AS%d (%d neighbors, %d prefixes)", r.cfg.ASN, len(r.neighbors), r.bestLen)
}
