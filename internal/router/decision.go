package router

import (
	"net/netip"
	"sort"

	"bgpworms/internal/netx"
	"bgpworms/internal/policy"
	"bgpworms/internal/topo"
)

// decide recomputes the best route for p and reports whether it changed.
// Only the exact-match map is maintained eagerly; the longest-prefix-
// match trie is marked stale and rebuilt on the next data-plane read
// (ensureRIB), since convergence changes best routes thousands of times
// between FIB queries.
func (r *Router) decide(p netip.Prefix) bool {
	st := r.state[p]
	e, ok := r.selectBest(p, st)
	if !ok {
		if st == nil || st.best == nil {
			return false
		}
		st.best = nil
		r.bestLen--
		r.gcState(p, st)
		r.ribStale = true
		return true
	}
	if st == nil {
		st = r.stateFor(p) // locally originated, first decision
	}
	if st.best != nil && sameEntryRoute(st.best, e) {
		// The stored best already equals the winning candidate (including
		// community-only changes — sameEntryRoute compares them).
		return false
	}
	if st.best == nil {
		r.bestLen++
	}
	st.best = materialize(e)
	r.ribStale = true
	return true
}

// materialize turns the winning Adj-RIB-In entry into a full Loc-RIB
// route. Entries whose route already carries the entry attributes
// (locally originated prefixes, and routes the mutating import path
// built privately) are stored as-is; interned entries that alias a
// shared export object get one private copy here — per best-route
// change, not per delivery.
func materialize(e inEntry) *policy.Route {
	rt := e.rt
	if rt.NextHopAS == e.from && rt.FromRel == e.rel && rt.LocalPref == e.lp && rt.Blackhole == e.bh {
		return rt
	}
	out := *rt
	out.NextHopAS = e.from
	out.FromRel = e.rel
	out.LocalPref = e.lp
	out.Blackhole = e.bh
	return &out
}

// ensureRIB rebuilds the longest-prefix-match trie from the exact-match
// Loc-RIB if best routes changed since the last data-plane read. The
// trie's shape depends only on the stored prefixes (bit paths), so the
// rebuild is deterministic regardless of map iteration order.
func (r *Router) ensureRIB() {
	if r.sealed {
		// Sealed routers are shared read-only across concurrent forks, and
		// the lazy rebuild is the one write they still perform — serialize
		// it (and the stale check) so two forks' data-plane reads cannot
		// race. The rebuilt trie is deterministic, so whoever wins builds
		// the same view.
		r.ribMu.Lock()
		defer r.ribMu.Unlock()
	}
	if !r.ribStale {
		return
	}
	t := netx.NewTrie[*policy.Route]()
	for p, st := range r.state {
		if st.best != nil {
			t.Insert(p, st.best)
		}
	}
	r.locRIB = t
	r.ribStale = false
}

// selectBest runs the decision process over local + Adj-RIB-In
// candidates. Candidates are already sorted by neighbor ASN, so the
// scan needs no allocation and ties break deterministically.
func (r *Router) selectBest(p netip.Prefix, st *prefixState) (inEntry, bool) {
	var best inEntry
	found := false
	if len(r.locals) > 0 {
		if lr, ok := r.locals[p]; ok {
			best = inEntry{from: 0, rel: topo.RelNone, lp: lr.LocalPref, bh: lr.Blackhole, rt: lr}
			found = true
		}
	}
	if st != nil {
		for _, c := range st.in {
			if !found || betterEntry(c, best) {
				best = c
				found = true
			}
		}
	}
	return best, found
}

// betterEntry implements the BGP decision process over Adj-RIB-In
// entries, with the RTBH twist baked into LocalPref (blackhole routes
// arrive with LocalPrefBlackhole, which is why they win "even though
// the AS path of the tagged route is longer", §5.1):
//
//  1. locally-originated beats learned (vendor "weight" semantics: an AS
//     always prefers its own origination)
//  2. higher LocalPref
//  3. shorter AS path
//  4. lower Origin
//  5. lower MED
//  6. lower neighbor ASN (deterministic tie-break)
func betterEntry(a, b inEntry) bool {
	aLocal := a.from == 0
	bLocal := b.from == 0
	if aLocal != bLocal {
		return aLocal
	}
	if a.lp != b.lp {
		return a.lp > b.lp
	}
	al, bl := a.rt.ASPath.HopLength(), b.rt.ASPath.HopLength()
	if al != bl {
		return al < bl
	}
	if a.rt.Origin != b.rt.Origin {
		return a.rt.Origin < b.rt.Origin
	}
	if a.rt.MED != b.rt.MED {
		return a.rt.MED < b.rt.MED
	}
	return a.from < b.from
}

// sameRoute compares the fields that matter for re-advertisement.
func sameRoute(a, b *policy.Route) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	if a.Prefix != b.Prefix || a.NextHopAS != b.NextHopAS || a.LocalPref != b.LocalPref ||
		a.Blackhole != b.Blackhole || a.Origin != b.Origin || a.MED != b.MED {
		return false
	}
	return samePathAndComms(a, b)
}

// sameEntryRoute is sameRoute against an Adj-RIB-In entry, reading the
// import-derived attributes from the entry.
func sameEntryRoute(old *policy.Route, e inEntry) bool {
	if old == nil {
		return false
	}
	if old.Prefix != e.rt.Prefix || old.NextHopAS != e.from || old.LocalPref != e.lp ||
		old.Blackhole != e.bh || old.Origin != e.rt.Origin || old.MED != e.rt.MED {
		return false
	}
	return samePathAndComms(old, e.rt)
}

func samePathAndComms(a, b *policy.Route) bool {
	if !a.ASPath.EqualSequence(b.ASPath) {
		return false
	}
	if len(a.Communities) != len(b.Communities) {
		return false
	}
	for i := range a.Communities {
		if a.Communities[i] != b.Communities[i] {
			return false
		}
	}
	return true
}

// BestRoute returns the Loc-RIB entry for exactly p.
func (r *Router) BestRoute(p netip.Prefix) (*policy.Route, bool) {
	st := r.state[p.Masked()]
	if st == nil || st.best == nil {
		return nil, false
	}
	return st.best, true
}

// LookupFIB performs longest-prefix match for a destination address,
// returning the best route covering it — the data-plane view.
func (r *Router) LookupFIB(addr netip.Addr) (*policy.Route, bool) {
	r.ensureRIB()
	_, rt, ok := r.locRIB.Lookup(addr)
	return rt, ok
}

// RIB returns every Loc-RIB route in canonical prefix order — the looking
// glass view (§7 uses looking glasses for all validation).
func (r *Router) RIB() []*policy.Route {
	r.ensureRIB()
	out := make([]*policy.Route, 0, r.locRIB.Len())
	r.locRIB.Walk(func(_ netip.Prefix, rt *policy.Route) bool {
		out = append(out, rt)
		return true
	})
	return out
}

// EachAdjIn visits every Adj-RIB-In entry in deterministic order
// (canonical prefix order, then ascending neighbor ASN). Collectors use
// this to emit TABLE_DUMP_V2 snapshots with one entry per peer.
func (r *Router) EachAdjIn(fn func(p netip.Prefix, from topo.ASN, rt *policy.Route)) {
	prefixes := make([]netip.Prefix, 0, len(r.state))
	for p, st := range r.state {
		if len(st.in) > 0 {
			prefixes = append(prefixes, p)
		}
	}
	sort.Slice(prefixes, func(i, j int) bool { return netx.ComparePrefix(prefixes[i], prefixes[j]) < 0 })
	for _, p := range prefixes {
		for _, c := range r.state[p].in { // already sorted by neighbor ASN
			fn(p, c.from, materialize(c))
		}
	}
}

// Prefixes returns all Loc-RIB prefixes in canonical order.
func (r *Router) Prefixes() []netip.Prefix {
	r.ensureRIB()
	out := make([]netip.Prefix, 0, r.locRIB.Len())
	r.locRIB.Walk(func(p netip.Prefix, _ *policy.Route) bool {
		out = append(out, p)
		return true
	})
	return out
}
