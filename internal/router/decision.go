package router

import (
	"net/netip"
	"sort"

	"bgpworms/internal/netx"
	"bgpworms/internal/policy"
	"bgpworms/internal/topo"
)

// decide recomputes the best route for p and reports whether it changed.
func (r *Router) decide(p netip.Prefix) bool {
	best := r.selectBest(p)
	old, had := r.locRIB.Get(p)
	if best == nil {
		if !had {
			return false
		}
		r.locRIB.Delete(p)
		return true
	}
	if had && sameRoute(old, best) {
		// Replace stored pointer to pick up community-only changes too;
		// sameRoute compares them, so reaching here means no change.
		return false
	}
	r.locRIB.Insert(p, best)
	return true
}

// selectBest runs the decision process over local + Adj-RIB-In candidates.
func (r *Router) selectBest(p netip.Prefix) *policy.Route {
	var candidates []*policy.Route
	if lr, ok := r.locals[p]; ok {
		candidates = append(candidates, lr)
	}
	if m := r.adjIn[p]; m != nil {
		keys := make([]topo.ASN, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			candidates = append(candidates, m[k])
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	best := candidates[0]
	for _, c := range candidates[1:] {
		if betterRoute(c, best) {
			best = c
		}
	}
	return best
}

// betterRoute implements the BGP decision process, with the RTBH twist
// baked into LocalPref (blackhole routes arrive with LocalPrefBlackhole,
// which is why they win "even though the AS path of the tagged route is
// longer", §5.1):
//
//  1. locally-originated beats learned (vendor "weight" semantics: an AS
//     always prefers its own origination)
//  2. higher LocalPref
//  3. shorter AS path
//  4. lower Origin
//  5. lower MED
//  6. lower neighbor ASN (deterministic tie-break)
func betterRoute(a, b *policy.Route) bool {
	aLocal := a.NextHopAS == 0
	bLocal := b.NextHopAS == 0
	if aLocal != bLocal {
		return aLocal
	}
	if a.LocalPref != b.LocalPref {
		return a.LocalPref > b.LocalPref
	}
	al, bl := a.ASPath.HopLength(), b.ASPath.HopLength()
	if al != bl {
		return al < bl
	}
	if a.Origin != b.Origin {
		return a.Origin < b.Origin
	}
	if a.MED != b.MED {
		return a.MED < b.MED
	}
	return a.NextHopAS < b.NextHopAS
}

// sameRoute compares the fields that matter for re-advertisement.
func sameRoute(a, b *policy.Route) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	if a.Prefix != b.Prefix || a.NextHopAS != b.NextHopAS || a.LocalPref != b.LocalPref ||
		a.Blackhole != b.Blackhole || a.Origin != b.Origin || a.MED != b.MED {
		return false
	}
	as, bs := a.ASPath.Sequence(), b.ASPath.Sequence()
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	if len(a.Communities) != len(b.Communities) {
		return false
	}
	for i := range a.Communities {
		if a.Communities[i] != b.Communities[i] {
			return false
		}
	}
	return true
}

// BestRoute returns the Loc-RIB entry for exactly p.
func (r *Router) BestRoute(p netip.Prefix) (*policy.Route, bool) {
	return r.locRIB.Get(p.Masked())
}

// LookupFIB performs longest-prefix match for a destination address,
// returning the best route covering it — the data-plane view.
func (r *Router) LookupFIB(addr netip.Addr) (*policy.Route, bool) {
	_, rt, ok := r.locRIB.Lookup(addr)
	return rt, ok
}

// RIB returns every Loc-RIB route in canonical prefix order — the looking
// glass view (§7 uses looking glasses for all validation).
func (r *Router) RIB() []*policy.Route {
	out := make([]*policy.Route, 0, r.locRIB.Len())
	r.locRIB.Walk(func(_ netip.Prefix, rt *policy.Route) bool {
		out = append(out, rt)
		return true
	})
	return out
}

// EachAdjIn visits every Adj-RIB-In entry in deterministic order
// (canonical prefix order, then ascending neighbor ASN). Collectors use
// this to emit TABLE_DUMP_V2 snapshots with one entry per peer.
func (r *Router) EachAdjIn(fn func(p netip.Prefix, from topo.ASN, rt *policy.Route)) {
	prefixes := make([]netip.Prefix, 0, len(r.adjIn))
	for p := range r.adjIn {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool { return netx.ComparePrefix(prefixes[i], prefixes[j]) < 0 })
	for _, p := range prefixes {
		m := r.adjIn[p]
		peers := make([]topo.ASN, 0, len(m))
		for a := range m {
			peers = append(peers, a)
		}
		sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
		for _, a := range peers {
			fn(p, a, m[a])
		}
	}
}

// Prefixes returns all Loc-RIB prefixes in canonical order.
func (r *Router) Prefixes() []netip.Prefix {
	out := make([]netip.Prefix, 0, r.locRIB.Len())
	r.locRIB.Walk(func(p netip.Prefix, _ *policy.Route) bool {
		out = append(out, p)
		return true
	})
	return out
}
