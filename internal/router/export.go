package router

import (
	"net/netip"

	"bgpworms/internal/bgp"
	"bgpworms/internal/policy"
	"bgpworms/internal/topo"
)

// ExportDecision explains why an export did or did not happen.
type ExportDecision int

// Export outcomes.
const (
	ExportSent ExportDecision = iota
	ExportSuppressedGaoRexford
	ExportSuppressedNoExport
	ExportSuppressedNoAdvertise
	ExportSuppressedService
	ExportSuppressedPolicy
	ExportNothing
)

// String names the outcome.
func (d ExportDecision) String() string {
	switch d {
	case ExportSent:
		return "sent"
	case ExportSuppressedGaoRexford:
		return "suppressed-gao-rexford"
	case ExportSuppressedNoExport:
		return "suppressed-no-export"
	case ExportSuppressedNoAdvertise:
		return "suppressed-no-advertise"
	case ExportSuppressedService:
		return "suppressed-service"
	case ExportSuppressedPolicy:
		return "suppressed-policy"
	default:
		return "nothing"
	}
}

// ExportTo computes the route this AS would announce to neighbor for
// prefix p, applying Gao-Rexford export rules, well-known communities,
// selective-announcement services, prepending services, vendor community
// handling, propagation mode, and the per-neighbor export map.
//
// The returned route is a fresh copy safe for the receiver to mutate.
func (r *Router) ExportTo(neighbor topo.ASN, p netip.Prefix) (*policy.Route, ExportDecision) {
	best, ok := r.locRIB.Get(p.Masked())
	if !ok {
		return nil, ExportNothing
	}
	rel, ok := r.neighbors[neighbor]
	if !ok {
		return nil, ExportNothing
	}
	// Never send a route back to the neighbor we learned it from.
	if best.NextHopAS == neighbor {
		return nil, ExportSuppressedGaoRexford
	}
	// Gao-Rexford: routes from peers/providers go to customers only.
	// Route servers (ReflectAll) redistribute everything.
	fromCustomerOrLocal := best.NextHopAS == 0 || best.FromRel == topo.RelCustomer
	if !fromCustomerOrLocal && rel != topo.RelCustomer && !r.cfg.ReflectAll {
		return nil, ExportSuppressedGaoRexford
	}
	// Well-known communities.
	if best.Communities.Has(bgp.CommunityNoAdvertise) {
		return nil, ExportSuppressedNoAdvertise
	}
	if best.Communities.Has(bgp.CommunityNoExport) {
		return nil, ExportSuppressedNoExport
	}
	if best.Communities.Has(bgp.CommunityNoPeer) && rel == topo.RelPeer {
		return nil, ExportSuppressedNoExport
	}

	// Community services owned by this AS, evaluated in catalog order —
	// the order itself resolves announce/no-announce conflicts (§5.3).
	fromCustomer := best.FromRel == topo.RelCustomer
	prepend := 0
	hasAnnounceTo := false
	announceDecided := false
	announceAllowed := true
	for _, svc := range r.cfg.Catalog.Active(best.Communities, fromCustomer || best.NextHopAS == 0) {
		switch svc.Kind {
		case policy.SvcNoExport:
			return nil, ExportSuppressedService
		case policy.SvcNoAnnounceTo:
			if topo.ASN(svc.Param) == neighbor && !announceDecided {
				announceAllowed = false
				announceDecided = true
			}
		case policy.SvcAnnounceTo:
			hasAnnounceTo = true
			if topo.ASN(svc.Param) == neighbor && !announceDecided {
				announceAllowed = true
				announceDecided = true
			}
		case policy.SvcPrepend:
			if prepend == 0 {
				prepend = int(svc.Param)
			}
		}
	}
	if announceDecided && !announceAllowed {
		return nil, ExportSuppressedService
	}
	if !announceDecided && hasAnnounceTo {
		// Selective announcement: targets were named and this neighbor is
		// not among them.
		return nil, ExportSuppressedService
	}

	out := best.Clone()
	selfHops := 1 + prepend
	if r.cfg.Transparent {
		selfHops = prepend // route servers stay off the AS path
	}
	out.ASPath = out.ASPath.Prepend(r.cfg.ASN, selfHops)
	out.LocalPref = policy.DefaultLocalPref // LP is not transitive across eBGP
	out.Blackhole = false                   // the *receiver* decides to null-route
	out.NextHopAS = r.cfg.ASN
	out.FromRel = topo.RelNone

	// Vendor default: IOS without send-community strips everything (§6.1).
	if r.cfg.Vendor == VendorCisco && !r.cfg.SendCommunity[neighbor] {
		out.Communities = nil
	} else {
		mode := r.cfg.Propagation
		if m, ok := r.cfg.PropagationPerNeighbor[neighbor]; ok {
			mode = m
		}
		out.Communities = policy.ApplyPropagation(mode, uint16(r.cfg.ASN), out.Communities)
	}

	if rm := r.cfg.ExportMaps[neighbor]; rm != nil {
		if !rm.Apply(out, r.cfg.ASN) {
			return nil, ExportSuppressedPolicy
		}
	}
	return out, ExportSent
}

// RecordAdvertised stores what was last sent to a neighbor, letting the
// simulator deliver only genuine changes. It returns true when the new
// announcement differs from the previous one.
func (r *Router) RecordAdvertised(neighbor topo.ASN, p netip.Prefix, rt *policy.Route) bool {
	m := r.adjOut[neighbor]
	if m == nil {
		m = make(map[netip.Prefix]*policy.Route)
		r.adjOut[neighbor] = m
	}
	p = p.Masked()
	prev, had := m[p]
	if rt == nil {
		if !had {
			return false
		}
		delete(m, p)
		return true
	}
	if had && sameRoute(prev, rt) {
		return false
	}
	m[p] = rt
	return true
}

// Advertised returns the last route recorded as sent to neighbor for p.
func (r *Router) Advertised(neighbor topo.ASN, p netip.Prefix) (*policy.Route, bool) {
	rt, ok := r.adjOut[neighbor][p.Masked()]
	return rt, ok
}
