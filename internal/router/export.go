package router

import (
	"net/netip"
	"sort"

	"bgpworms/internal/bgp"
	"bgpworms/internal/policy"
	"bgpworms/internal/topo"
)

// ExportDecision explains why an export did or did not happen.
type ExportDecision int

// Export outcomes.
const (
	ExportSent ExportDecision = iota
	ExportSuppressedGaoRexford
	ExportSuppressedNoExport
	ExportSuppressedNoAdvertise
	ExportSuppressedService
	ExportSuppressedPolicy
	ExportNothing
)

// String names the outcome.
func (d ExportDecision) String() string {
	switch d {
	case ExportSent:
		return "sent"
	case ExportSuppressedGaoRexford:
		return "suppressed-gao-rexford"
	case ExportSuppressedNoExport:
		return "suppressed-no-export"
	case ExportSuppressedNoAdvertise:
		return "suppressed-no-advertise"
	case ExportSuppressedService:
		return "suppressed-service"
	case ExportSuppressedPolicy:
		return "suppressed-policy"
	default:
		return "nothing"
	}
}

// ExportTo computes the route this AS would announce to neighbor for
// prefix p, applying Gao-Rexford export rules, well-known communities,
// selective-announcement services, prepending services, vendor community
// handling, propagation mode, and the per-neighbor export map.
//
// The returned route is a fresh copy safe for the receiver to mutate.
func (r *Router) ExportTo(neighbor topo.ASN, p netip.Prefix) (*policy.Route, ExportDecision) {
	pst := r.state[p.Masked()]
	if pst == nil || pst.best == nil {
		return nil, ExportNothing
	}
	best := pst.best
	rel, ok := r.neighbors[neighbor]
	if !ok {
		return nil, ExportNothing
	}
	// Never send a route back to the neighbor we learned it from.
	if best.NextHopAS == neighbor {
		return nil, ExportSuppressedGaoRexford
	}
	// Gao-Rexford: routes from peers/providers go to customers only.
	// Route servers (ReflectAll) redistribute everything.
	fromCustomerOrLocal := best.NextHopAS == 0 || best.FromRel == topo.RelCustomer
	if !fromCustomerOrLocal && rel != topo.RelCustomer && !r.cfg.ReflectAll {
		return nil, ExportSuppressedGaoRexford
	}
	// Well-known communities.
	if best.Communities.Has(bgp.CommunityNoAdvertise) {
		return nil, ExportSuppressedNoAdvertise
	}
	if best.Communities.Has(bgp.CommunityNoExport) {
		return nil, ExportSuppressedNoExport
	}
	if best.Communities.Has(bgp.CommunityNoPeer) && rel == topo.RelPeer {
		return nil, ExportSuppressedNoExport
	}

	// Community services owned by this AS, evaluated in catalog order —
	// the order itself resolves announce/no-announce conflicts (§5.3).
	fromCustomer := best.FromRel == topo.RelCustomer
	prepend := 0
	hasAnnounceTo := false
	announceDecided := false
	announceAllowed := true
	for _, svc := range r.cfg.Catalog.Active(best.Communities, fromCustomer || best.NextHopAS == 0) {
		switch svc.Kind {
		case policy.SvcNoExport:
			return nil, ExportSuppressedService
		case policy.SvcNoAnnounceTo:
			if topo.ASN(svc.Param) == neighbor && !announceDecided {
				announceAllowed = false
				announceDecided = true
			}
		case policy.SvcAnnounceTo:
			hasAnnounceTo = true
			if topo.ASN(svc.Param) == neighbor && !announceDecided {
				announceAllowed = true
				announceDecided = true
			}
		case policy.SvcPrepend:
			if prepend == 0 {
				prepend = int(svc.Param)
			}
		}
	}
	if announceDecided && !announceAllowed {
		return nil, ExportSuppressedService
	}
	if !announceDecided && hasAnnounceTo {
		// Selective announcement: targets were named and this neighbor is
		// not among them.
		return nil, ExportSuppressedService
	}

	out := best.Clone()
	selfHops := 1 + prepend
	if r.cfg.Transparent {
		selfHops = prepend // route servers stay off the AS path
	}
	out.ASPath = out.ASPath.Prepend(r.cfg.ASN, selfHops)
	out.LocalPref = policy.DefaultLocalPref // LP is not transitive across eBGP
	out.Blackhole = false                   // the *receiver* decides to null-route
	out.NextHopAS = r.cfg.ASN
	out.FromRel = topo.RelNone

	// Vendor default: IOS without send-community strips everything (§6.1).
	if r.cfg.Vendor == VendorCisco && !r.cfg.SendCommunity[neighbor] {
		out.Communities = nil
	} else {
		mode := r.cfg.Propagation
		if m, ok := r.cfg.PropagationPerNeighbor[neighbor]; ok {
			mode = m
		}
		out.Communities = policy.ApplyPropagation(mode, uint16(r.cfg.ASN), out.Communities)
	}

	if rm := r.cfg.ExportMaps[neighbor]; rm != nil {
		if !rm.Apply(out, r.cfg.ASN) {
			return nil, ExportSuppressedPolicy
		}
	}
	return out, ExportSent
}

// ExportItem is one session's export outcome from ExportAll: Rt is
// non-nil only when Dec == ExportSent.
type ExportItem struct {
	NB  topo.ASN
	Rt  *policy.Route
	Dec ExportDecision
}

// ExportHints carries engine-cached per-neighbor export policy, each
// slice aligned with the nbs argument ExportAll is called with. The
// fields are pure functions of the router's session set and config;
// engines refresh them whenever NeighborVersion changes (which
// EnableFullCommunityExport bumps precisely so collector-transparency
// changes invalidate caches). A nil hints falls back to live lookups.
type ExportHints struct {
	// Rels is the relationship of each neighbor.
	Rels []topo.Rel
	// Strip marks sessions that strip all communities (IOS without
	// send-community, §6.1).
	Strip []bool
	// Mode is the effective propagation mode per session (per-neighbor
	// override or the AS-wide default).
	Mode []policy.PropagationMode
	// Rmap is the per-session export route-map (usually nil).
	Rmap []*policy.RouteMap
}

// Hints builds the ExportHints for nbs (aligned slices). Engines cache
// the result keyed on NeighborVersion.
func (r *Router) Hints(nbs []topo.ASN) *ExportHints {
	h := &ExportHints{
		Rels:  make([]topo.Rel, len(nbs)),
		Strip: make([]bool, len(nbs)),
		Mode:  make([]policy.PropagationMode, len(nbs)),
		Rmap:  make([]*policy.RouteMap, len(nbs)),
	}
	for i, nb := range nbs {
		h.Rels[i] = r.neighbors[nb]
		h.Strip[i] = r.cfg.Vendor == VendorCisco && !r.cfg.SendCommunity[nb]
		h.Mode[i] = r.cfg.Propagation
		if m, ok := r.cfg.PropagationPerNeighbor[nb]; ok {
			h.Mode[i] = m
		}
		h.Rmap[i] = r.cfg.ExportMaps[nb]
	}
	return h
}

// ExportAll computes the export of p toward every neighbor in nbs,
// appending one ExportItem per neighbor to buf — exactly what ExportTo
// would decide and build, in nbs order — while doing the
// neighbor-independent work (best-route lookup, service-catalog scan,
// AS-path prepending, community propagation) once per call instead of
// once per session. Neighbors with the same effective community policy
// share one outbound route object, so a router keeps a single
// AS-path/community slab per (prefix, policy class) export instead of
// one private copy per session. Emitted routes are therefore shared:
// receivers must not mutate them in place (the delta engine pairs this
// with ReceiveShared, whose copy-on-write import honours that
// contract). Every nbs entry must be a registered neighbor when hints
// is non-nil; with nil hints unknown neighbors emit ExportNothing.
func (r *Router) ExportAll(p netip.Prefix, nbs []topo.ASN, hints *ExportHints, buf []ExportItem) []ExportItem {
	pst := r.state[p.Masked()]
	if pst == nil || pst.best == nil {
		for _, nb := range nbs {
			buf = append(buf, ExportItem{NB: nb, Dec: ExportNothing})
		}
		return buf
	}
	best := pst.best
	fromCustomerOrLocal := best.NextHopAS == 0 || best.FromRel == topo.RelCustomer
	noAdv := best.Communities.Has(bgp.CommunityNoAdvertise)
	noExp := best.Communities.Has(bgp.CommunityNoExport)
	noPeer := best.Communities.Has(bgp.CommunityNoPeer)

	// Service scan, neighbor-independent: catalog order still resolves
	// announce/no-announce conflicts (§5.3) — the first service naming a
	// neighbor decides for it, and SvcNoExport suppresses everything
	// (ExportTo returns at that service, so later ones are irrelevant).
	fromCustomer := best.FromRel == topo.RelCustomer
	prepend := 0
	suppressAll := false
	hasAnnounceTo := false
	var annCtl []policy.Service
	for _, svc := range r.cfg.Catalog.Active(best.Communities, fromCustomer || best.NextHopAS == 0) {
		switch svc.Kind {
		case policy.SvcNoExport:
			suppressAll = true
		case policy.SvcNoAnnounceTo, policy.SvcAnnounceTo:
			if svc.Kind == policy.SvcAnnounceTo {
				hasAnnounceTo = true
			}
			annCtl = append(annCtl, svc)
		case policy.SvcPrepend:
			if prepend == 0 {
				prepend = int(svc.Param)
			}
		}
		if suppressAll {
			break
		}
	}

	selfHops := 1 + prepend
	if r.cfg.Transparent {
		selfHops = prepend // route servers stay off the AS path
	}
	var path bgp.ASPath
	pathReady := false
	// classes[0] is the stripped-communities class (IOS without
	// send-community); classes[1+mode] applies the propagation mode.
	var classes [8]*policy.Route
	classRoute := func(idx int, mode policy.PropagationMode) *policy.Route {
		out := classes[idx]
		if out == nil {
			if !pathReady {
				if selfHops > 0 {
					path = best.ASPath.Prepend(uint32(r.cfg.ASN), selfHops)
				} else {
					// Transparent, no prepending: alias the stored path.
					// Paths are never mutated in place (Prepend copies),
					// so aliasing is content-identical to ExportTo's Clone.
					path = best.ASPath
				}
				pathReady = true
			}
			var comms bgp.CommunitySet
			switch {
			case idx == 0:
				comms = nil
			case mode == policy.PropForwardAll:
				// Alias instead of cloning: shared-slab classes are
				// immutable downstream.
				comms = best.Communities
			default:
				comms = policy.ApplyPropagation(mode, uint16(r.cfg.ASN), best.Communities)
			}
			out = &policy.Route{
				Prefix:      best.Prefix,
				ASPath:      path,
				Communities: comms,
				Origin:      best.Origin,
				MED:         best.MED,
				LocalPref:   policy.DefaultLocalPref, // LP is not transitive across eBGP
				NextHopAS:   r.cfg.ASN,
			}
			classes[idx] = out
		}
		return out
	}

	for ni, nb := range nbs {
		var rel topo.Rel
		if hints != nil {
			rel = hints.Rels[ni]
		} else {
			var ok bool
			rel, ok = r.neighbors[nb]
			if !ok {
				buf = append(buf, ExportItem{NB: nb, Dec: ExportNothing})
				continue
			}
		}
		if best.NextHopAS == nb {
			buf = append(buf, ExportItem{NB: nb, Dec: ExportSuppressedGaoRexford})
			continue
		}
		if !fromCustomerOrLocal && rel != topo.RelCustomer && !r.cfg.ReflectAll {
			buf = append(buf, ExportItem{NB: nb, Dec: ExportSuppressedGaoRexford})
			continue
		}
		if noAdv {
			buf = append(buf, ExportItem{NB: nb, Dec: ExportSuppressedNoAdvertise})
			continue
		}
		if noExp || (noPeer && rel == topo.RelPeer) {
			buf = append(buf, ExportItem{NB: nb, Dec: ExportSuppressedNoExport})
			continue
		}
		if suppressAll {
			buf = append(buf, ExportItem{NB: nb, Dec: ExportSuppressedService})
			continue
		}
		if len(annCtl) > 0 {
			decided, allowed := false, true
			for _, svc := range annCtl {
				if topo.ASN(svc.Param) == nb {
					allowed = svc.Kind == policy.SvcAnnounceTo
					decided = true
					break
				}
			}
			if (decided && !allowed) || (!decided && hasAnnounceTo) {
				buf = append(buf, ExportItem{NB: nb, Dec: ExportSuppressedService})
				continue
			}
		}

		var strip bool
		var mode policy.PropagationMode
		var rm *policy.RouteMap
		if hints != nil {
			strip, mode, rm = hints.Strip[ni], hints.Mode[ni], hints.Rmap[ni]
		} else {
			strip = r.cfg.Vendor == VendorCisco && !r.cfg.SendCommunity[nb]
			mode = r.cfg.Propagation
			if m, ok := r.cfg.PropagationPerNeighbor[nb]; ok {
				mode = m
			}
			rm = r.cfg.ExportMaps[nb]
		}
		idx := 0
		if !strip {
			idx = 1 + int(mode)
			if idx < 1 || idx >= len(classes) {
				// Unknown future mode: fall back to the per-neighbor path.
				rt, dec := r.ExportTo(nb, p)
				buf = append(buf, ExportItem{NB: nb, Rt: rt, Dec: dec})
				continue
			}
		}
		out := classRoute(idx, mode)

		if rm != nil {
			// Route maps mutate in place: give them a private copy.
			priv := out.Clone()
			if !rm.Apply(priv, r.cfg.ASN) {
				buf = append(buf, ExportItem{NB: nb, Dec: ExportSuppressedPolicy})
				continue
			}
			buf = append(buf, ExportItem{NB: nb, Rt: priv, Dec: ExportSent})
			continue
		}
		buf = append(buf, ExportItem{NB: nb, Rt: out, Dec: ExportSent})
	}
	return buf
}

// RecordAdvertised stores what was last sent to a neighbor, letting the
// simulator deliver only genuine changes. It returns true when the new
// announcement differs from the previous one.
func (r *Router) RecordAdvertised(neighbor topo.ASN, p netip.Prefix, rt *policy.Route) bool {
	r.mustMutable()
	p = p.Masked()
	st := r.state[p]
	if st == nil {
		if rt == nil {
			return false
		}
		st = r.stateFor(p)
	}
	sent := st.out
	i := sort.Search(len(sent), func(i int) bool { return sent[i].from >= neighbor })
	had := i < len(sent) && sent[i].from == neighbor
	if rt == nil {
		if !had {
			return false
		}
		st.out = append(sent[:i], sent[i+1:]...)
		if len(st.out) == 0 {
			st.out = nil
			r.gcState(p, st)
		}
		return true
	}
	if had {
		if sameRoute(sent[i].rt, rt) {
			return false
		}
		sent[i].rt = rt
		return true
	}
	sent = append(sent, nbRoute{})
	copy(sent[i+1:], sent[i:])
	sent[i] = nbRoute{from: neighbor, rt: rt}
	st.out = sent
	return true
}

// RecordAdvertisedAll merges a full per-neighbor export round for p
// into the Adj-RIB-Out with a single map access, calling emit for every
// session whose advertisement actually changed (rt nil = withdraw) —
// the batch form of RecordAdvertised the delta engine drives. items
// must be ordered by neighbor ascending with each session at most once
// (ExportAll output); sessions absent from items keep their recorded
// state. Items whose Dec is not ExportSent count as withdrawals.
func (r *Router) RecordAdvertisedAll(p netip.Prefix, items []ExportItem, emit func(nb topo.ASN, rt *policy.Route)) {
	r.mustMutable()
	p = p.Masked()
	st := r.state[p]
	if st == nil {
		st = r.stateFor(p)
	}
	sent := st.out
	changed := false
	for _, it := range items {
		rt := it.Rt
		if it.Dec != ExportSent {
			rt = nil
		}
		i := sort.Search(len(sent), func(i int) bool { return sent[i].from >= it.NB })
		present := i < len(sent) && sent[i].from == it.NB
		if rt == nil {
			if !present {
				continue
			}
			sent = append(sent[:i], sent[i+1:]...)
			changed = true
			emit(it.NB, nil)
			continue
		}
		if present {
			if sameRoute(sent[i].rt, rt) {
				continue
			}
			sent[i].rt = rt
			changed = true
			emit(it.NB, rt)
			continue
		}
		sent = append(sent, nbRoute{})
		copy(sent[i+1:], sent[i:])
		sent[i] = nbRoute{from: it.NB, rt: rt}
		changed = true
		emit(it.NB, rt)
	}
	if changed {
		// Always write back: an append above may have moved the backing
		// array away from what the state still references.
		st.out = sent
		if len(sent) == 0 {
			st.out = nil
		}
	}
	r.gcState(p, st)
}

// Advertised returns the last route recorded as sent to neighbor for p.
func (r *Router) Advertised(neighbor topo.ASN, p netip.Prefix) (*policy.Route, bool) {
	st := r.state[p.Masked()]
	if st == nil {
		return nil, false
	}
	i := sort.Search(len(st.out), func(i int) bool { return st.out[i].from >= neighbor })
	if i < len(st.out) && st.out[i].from == neighbor {
		return st.out[i].rt, true
	}
	return nil, false
}
