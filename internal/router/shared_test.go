package router

import (
	"net/netip"
	"testing"

	"bgpworms/internal/bgp"
	"bgpworms/internal/netx"
	"bgpworms/internal/policy"
	"bgpworms/internal/topo"
)

// mkSharedPair builds two identically configured routers for the
// shared-vs-classic receive comparison.
func mkSharedPair(cfg Config) (classic, shared *Router) {
	mk := func() *Router {
		r := New(cfg)
		r.AddNeighbor(100, topo.RelProvider)
		r.AddNeighbor(200, topo.RelCustomer)
		r.AddNeighbor(300, topo.RelPeer)
		return r
	}
	return mk(), mk()
}

// TestReceiveSharedMatchesReceiveUpdate pins the contract the delta
// engine rests on: ReceiveShared (shallow copy + copy-on-write) must
// produce the same import results and the same Loc-RIB as ReceiveUpdate
// (deep clone) — and must never mutate the shared input.
func TestReceiveSharedMatchesReceiveUpdate(t *testing.T) {
	cat := policy.NewCatalog(65001)
	cat.Add(policy.Service{Community: bgp.C(65001, 666), Kind: policy.SvcBlackhole})
	cat.Add(policy.Service{Community: bgp.C(65001, 70), Kind: policy.SvcLocalPref, Param: 70, CustomerOnly: true})
	cat.Add(policy.Service{Community: bgp.C(65001, 500), Kind: policy.SvcLocation, Param: 9})
	cfgs := map[string]Config{
		"plain": {ASN: 65001},
		"services": {
			ASN: 65001, Catalog: cat,
			BlackholeMinLen: 24, BlackholeAddNoExport: true,
		},
		"tagging": {
			ASN:          65001,
			LocationTags: map[topo.ASN]bgp.Community{200: bgp.C(65001, 42)},
			ImportMaps: map[topo.ASN]*policy.RouteMap{
				300: {Terms: []policy.Term{{AddCommunities: []bgp.Community{bgp.C(65001, 7)}, Continue: true}}},
			},
		},
		"hygiene": {ASN: 65001, MaxPrefixLen: 24},
	}
	routes := []*policy.Route{
		func() *policy.Route {
			rt := policy.NewLocalRoute(netx.MustPrefix("203.0.113.0/24"))
			rt.ASPath = bgp.Path(100, 3320)
			rt.Communities = bgp.NewCommunitySet(bgp.C(3320, 100))
			return rt
		}(),
		func() *policy.Route {
			rt := policy.NewLocalRoute(netip.PrefixFrom(netx.V4(203, 0, 113, 9), 32))
			rt.ASPath = bgp.Path(200, 64999)
			rt.Communities = bgp.NewCommunitySet(bgp.C(65001, 666), bgp.C(65001, 500))
			return rt
		}(),
		func() *policy.Route {
			rt := policy.NewLocalRoute(netx.MustPrefix("198.51.100.0/25"))
			rt.ASPath = bgp.Path(300, 65001, 9)
			return rt
		}(),
	}
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			classic, shared := mkSharedPair(cfg)
			for _, from := range []topo.ASN{100, 200, 300} {
				for _, rt := range routes {
					want := rt.Clone() // guard against input mutation
					resC, chgC := classic.ReceiveUpdate(from, rt)
					resS, chgS := shared.ReceiveShared(from, rt)
					if resC != resS || chgC != chgS {
						t.Fatalf("from=%d %s: classic=(%v,%v) shared=(%v,%v)", from, rt.Prefix, resC, chgC, resS, chgS)
					}
					if !sameRoute(rt, want) || rt.LocalPref != want.LocalPref || rt.FromRel != want.FromRel {
						t.Fatalf("shared input mutated: %v != %v", rt, want)
					}
				}
			}
			// The resulting RIBs and Adj-RIB-Ins must match field for field.
			for _, rt := range routes {
				bc, okc := classic.BestRoute(rt.Prefix)
				bs, oks := shared.BestRoute(rt.Prefix)
				if okc != oks {
					t.Fatalf("best presence diverges for %s: %v vs %v", rt.Prefix, okc, oks)
				}
				if okc && (!sameRoute(bc, bs) || bc.FromRel != bs.FromRel) {
					t.Fatalf("best diverges for %s:\nclassic: %v\nshared:  %v", rt.Prefix, bc, bs)
				}
			}
			type adj struct {
				p    netip.Prefix
				from topo.ASN
				line string
			}
			collect := func(r *Router) []adj {
				var out []adj
				r.EachAdjIn(func(p netip.Prefix, from topo.ASN, rt *policy.Route) {
					out = append(out, adj{p, from, rt.String()})
				})
				return out
			}
			ac, as := collect(classic), collect(shared)
			if len(ac) != len(as) {
				t.Fatalf("adj-in sizes diverge: %d vs %d", len(ac), len(as))
			}
			for i := range ac {
				if ac[i] != as[i] {
					t.Fatalf("adj-in diverges at %d:\nclassic: %+v\nshared:  %+v", i, ac[i], as[i])
				}
			}
		})
	}
}

// TestNoDecideBatchingMatchesPerDelivery pins the batched-decide
// contract: applying a group of deliveries with ReceiveSharedNoDecide /
// WithdrawNoDecide and deciding once converges to the same Loc-RIB as
// deciding after every delivery.
func TestNoDecideBatchingMatchesPerDelivery(t *testing.T) {
	pfx := netx.MustPrefix("203.0.113.0/24")
	mk := func() *Router {
		r := New(Config{ASN: 65001})
		r.AddNeighbor(100, topo.RelProvider)
		r.AddNeighbor(200, topo.RelCustomer)
		return r
	}
	rtFrom := func(first uint32, med uint32) *policy.Route {
		rt := policy.NewLocalRoute(pfx)
		rt.ASPath = bgp.Path(first, 3320)
		rt.MED = med
		return rt
	}
	perDelivery, batched := mk(), mk()

	perDelivery.ReceiveUpdate(100, rtFrom(100, 5))
	perDelivery.ReceiveUpdate(200, rtFrom(200, 9))
	perDelivery.ReceiveWithdraw(100, pfx)

	batched.ReceiveSharedNoDecide(100, rtFrom(100, 5))
	batched.ReceiveSharedNoDecide(200, rtFrom(200, 9))
	batched.WithdrawNoDecide(100, pfx)
	if !batched.Decide(pfx) {
		t.Fatal("batched decide reported no change for a new prefix")
	}

	bp, okp := perDelivery.BestRoute(pfx)
	bb, okb := batched.BestRoute(pfx)
	if !okp || !okb {
		t.Fatalf("missing best route: per-delivery=%v batched=%v", okp, okb)
	}
	if !sameRoute(bp, bb) || bp.FromRel != bb.FromRel {
		t.Fatalf("batched decide diverges:\nper-delivery: %v\nbatched:      %v", bp, bb)
	}
}
