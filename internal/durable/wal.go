package durable

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"bgpworms/internal/obs"
)

// Segment layout:
//
//	header  magic "WWALSEG1" (8 bytes) + first-record seq (u64 BE)
//	frame   payload length (u32 BE) + CRC32-IEEE over seq||payload
//	        (u32 BE) + record seq (u64 BE) + payload
//
// Record sequence numbers are carried per frame (not derived from the
// segment position) because the sharded daemon skips non-owned events:
// a shard's WAL holds a gapped subsequence of the global feed, and the
// gaps must survive a restart.

const (
	segMagic    = "WWALSEG1"
	segHeader   = 16
	frameHeader = 16
)

var crcTable = crc32.MakeTable(crc32.IEEE)

// WALOptions sizes the log. The zero value is usable.
type WALOptions struct {
	// SegmentBytes is the rotation threshold (default 64 MiB): a
	// segment that grows past it is sealed and a new one started.
	// Sealed segments are the truncation unit after a snapshot.
	SegmentBytes int64
	// FsyncInterval is the group-commit cadence (default 50ms): appends
	// buffer in user space and a background syncer flushes+fsyncs the
	// active segment this often. 0 keeps the default; negative disables
	// fsync entirely (the OS still sees every byte on Close).
	FsyncInterval time.Duration
	// Metrics, when non-nil, exposes the log: a wal_fsync_seconds
	// latency histogram, append counters, and scrape-time gauges for
	// on-disk bytes, segment count, and the last appended/durable
	// sequence numbers.
	Metrics *obs.Registry
}

func (o WALOptions) withDefaults() WALOptions {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.FsyncInterval == 0 {
		o.FsyncInterval = 50 * time.Millisecond
	}
	return o
}

// WALRecovery reports what OpenWAL found on disk.
type WALRecovery struct {
	// LastSeq is the highest record sequence recovered (0 for an empty
	// log).
	LastSeq uint64
	// Records is the total number of intact records across segments.
	Records int
	// TornBytes counts bytes truncated off the final segment's tail
	// (an interrupted write).
	TornBytes int64
	// Segments is the number of live segment files.
	Segments int
}

// WAL is the segmented write-ahead log. One goroutine may Append at a
// time (the Store serializes); Sync and Close are safe concurrently
// with the background syncer.
type WAL struct {
	dir  string
	opts WALOptions

	mu       sync.Mutex
	f        *os.File
	bw       *bufio.Writer
	segStart uint64 // first record seq in the active segment
	segBytes int64
	sealed   int64 // on-disk bytes across sealed segments
	lastSeq  uint64
	synced   uint64 // highest seq known flushed+fsynced
	dirty    bool
	closed   bool

	stopSync chan struct{}
	syncDone chan struct{}

	fsyncHist *obs.Histogram
	records   *obs.Counter
	bytes     *obs.Counter
	collector *obs.CollectorHandle
}

// OpenWAL opens (or creates) the log in dir, recovering existing
// segments: the final segment's torn tail, if any, is truncated in
// place; corruption anywhere else is an error.
func OpenWAL(dir string, opts WALOptions) (*WAL, WALRecovery, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, WALRecovery{}, err
	}
	w := &WAL{dir: dir, opts: opts, stopSync: make(chan struct{}), syncDone: make(chan struct{})}
	rec, err := w.recover()
	if err != nil {
		return nil, rec, err
	}
	if opts.Metrics != nil {
		w.bindMetrics(opts.Metrics)
	}
	go w.runSyncer()
	return w, rec, nil
}

func (w *WAL) bindMetrics(reg *obs.Registry) {
	w.fsyncHist = reg.Histogram("wal_fsync_seconds",
		"WAL group-commit flush+fsync latency", obs.DurationBuckets)
	w.records = reg.Counter("wal_records_total", "records appended to the WAL")
	w.bytes = reg.Counter("wal_appended_bytes_total", "bytes appended to the WAL")
	w.collector = reg.RegisterCollector(func(emit func(obs.Sample)) {
		w.mu.Lock()
		bytes, segs := w.sealed+w.segBytes, w.segmentCountLocked()
		last, synced := w.lastSeq, w.synced
		w.mu.Unlock()
		gauge := func(name, help string, v float64) {
			emit(obs.Sample{Name: name, Help: help, Type: obs.TypeGauge, Value: v})
		}
		gauge("wal_bytes", "on-disk bytes across all WAL segments", float64(bytes))
		gauge("wal_segments", "live WAL segment files", float64(segs))
		gauge("wal_last_seq", "highest appended record sequence", float64(last))
		gauge("wal_durable_seq", "highest record sequence known fsynced", float64(synced))
	})
}

func segName(firstSeq uint64) string { return fmt.Sprintf("wal-%020d.seg", firstSeq) }

// segments lists segment paths in first-seq order.
func (w *WAL) segments() ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(w.dir, "wal-*.seg"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

func (w *WAL) segmentCountLocked() int {
	paths, _ := w.segments()
	return len(paths)
}

// recover scans the on-disk segments, truncates a torn tail off the
// last one, and positions the writer.
func (w *WAL) recover() (WALRecovery, error) {
	var rec WALRecovery
	paths, err := w.segments()
	if err != nil {
		return rec, err
	}
	rec.Segments = len(paths)
	for i, p := range paths {
		last := i == len(paths)-1
		info, err := scanSegment(p, 0, nil)
		if err != nil {
			return rec, fmt.Errorf("durable: segment %s: %w", filepath.Base(p), err)
		}
		if info.tornBytes > 0 {
			if !last {
				return rec, fmt.Errorf("durable: segment %s has a torn tail but is not the final segment", filepath.Base(p))
			}
			if err := os.Truncate(p, info.goodBytes); err != nil {
				return rec, err
			}
			rec.TornBytes = info.tornBytes
		}
		rec.Records += info.records
		if info.lastSeq > rec.LastSeq {
			rec.LastSeq = info.lastSeq
		}
		w.sealed += info.goodBytes
	}
	w.lastSeq = rec.LastSeq
	w.synced = rec.LastSeq
	if len(paths) > 0 {
		// Reopen the final segment for appending.
		p := paths[len(paths)-1]
		f, err := os.OpenFile(p, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return rec, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return rec, err
		}
		first, err := parseSegName(filepath.Base(p))
		if err != nil {
			f.Close()
			return rec, err
		}
		w.f, w.bw = f, bufio.NewWriterSize(f, 1<<16)
		w.segStart, w.segBytes = first, st.Size()
		w.sealed -= st.Size()
	}
	return rec, nil
}

func parseSegName(base string) (uint64, error) {
	var seq uint64
	if _, err := fmt.Sscanf(base, "wal-%d.seg", &seq); err != nil {
		return 0, fmt.Errorf("durable: bad segment name %q: %w", base, err)
	}
	return seq, nil
}

// segInfo is one segment scan's result.
type segInfo struct {
	firstSeq  uint64
	lastSeq   uint64
	records   int
	goodBytes int64 // header + intact frames
	tornBytes int64 // trailing bytes past the last intact frame
}

// scanSegment walks a segment's frames, calling fn (when non-nil) for
// every record with seq >= fromSeq. A malformed tail is reported via
// tornBytes rather than an error; only header-level corruption errors.
func scanSegment(path string, fromSeq uint64, fn func(seq uint64, payload []byte) error) (segInfo, error) {
	var info segInfo
	f, err := os.Open(path)
	if err != nil {
		return info, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return info, err
	}
	size := st.Size()
	br := bufio.NewReaderSize(f, 1<<16)
	var hdr [segHeader]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		// A header that never finished writing is a torn (empty)
		// segment, not corruption.
		info.tornBytes = size
		return info, nil
	}
	if string(hdr[:8]) != segMagic {
		return info, fmt.Errorf("bad magic %q", hdr[:8])
	}
	info.firstSeq = binary.BigEndian.Uint64(hdr[8:])
	info.goodBytes = segHeader
	var fh [frameHeader]byte
	payload := make([]byte, 0, 4096)
	for info.goodBytes < size {
		if _, err := io.ReadFull(br, fh[:]); err != nil {
			break // torn frame header
		}
		length := binary.BigEndian.Uint32(fh[0:4])
		sum := binary.BigEndian.Uint32(fh[4:8])
		seq := binary.BigEndian.Uint64(fh[8:16])
		if length > maxRecord || info.goodBytes+frameHeader+int64(length) > size {
			break // implausible length or runs past EOF: torn
		}
		payload = payload[:length]
		if _, err := io.ReadFull(br, payload); err != nil {
			break
		}
		crc := crc32.Update(0, crcTable, fh[8:16])
		crc = crc32.Update(crc, crcTable, payload)
		if crc != sum {
			break // torn or bit-rotted tail record
		}
		if fn != nil && seq >= fromSeq {
			if err := fn(seq, payload); err != nil {
				return info, err
			}
		}
		info.records++
		info.lastSeq = seq
		info.goodBytes += frameHeader + int64(length)
	}
	info.tornBytes = size - info.goodBytes
	return info, nil
}

// Append writes one record. seq must exceed every previously appended
// sequence (gaps are fine — the sharded daemon skips non-owned
// events). The write is buffered; durability arrives with the next
// group commit (or an explicit Sync).
func (w *WAL) Append(seq uint64, payload []byte) error {
	if len(payload) > maxRecord {
		return fmt.Errorf("durable: record %d bytes exceeds %d", len(payload), maxRecord)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("durable: append to closed WAL")
	}
	if seq <= w.lastSeq {
		return fmt.Errorf("durable: append seq %d not after %d", seq, w.lastSeq)
	}
	if w.f == nil || w.segBytes >= w.opts.SegmentBytes {
		if err := w.rotateLocked(seq); err != nil {
			return err
		}
	}
	var fh [frameHeader]byte
	binary.BigEndian.PutUint32(fh[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint64(fh[8:16], seq)
	crc := crc32.Update(0, crcTable, fh[8:16])
	crc = crc32.Update(crc, crcTable, payload)
	binary.BigEndian.PutUint32(fh[4:8], crc)
	if _, err := w.bw.Write(fh[:]); err != nil {
		return err
	}
	if _, err := w.bw.Write(payload); err != nil {
		return err
	}
	w.lastSeq = seq
	w.segBytes += frameHeader + int64(len(payload))
	w.dirty = true
	if w.records != nil {
		w.records.Inc()
		w.bytes.Add(uint64(frameHeader + len(payload)))
	}
	return nil
}

// rotateLocked seals the active segment (flush+fsync) and starts a new
// one whose first record will be nextSeq.
func (w *WAL) rotateLocked(nextSeq uint64) error {
	if w.f != nil {
		if err := w.flushLocked(true); err != nil {
			return err
		}
		w.sealed += w.segBytes
		if err := w.f.Close(); err != nil {
			return err
		}
		w.f, w.bw = nil, nil
	}
	f, err := os.OpenFile(filepath.Join(w.dir, segName(nextSeq)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	var hdr [segHeader]byte
	copy(hdr[:8], segMagic)
	binary.BigEndian.PutUint64(hdr[8:], nextSeq)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	w.f, w.bw = f, bufio.NewWriterSize(f, 1<<16)
	w.segStart, w.segBytes = nextSeq, segHeader
	return nil
}

// flushLocked drains the user-space buffer and optionally fsyncs,
// advancing the durable watermark.
func (w *WAL) flushLocked(fsync bool) error {
	if w.bw == nil {
		return nil
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if fsync && w.opts.FsyncInterval >= 0 {
		var start time.Time
		if w.fsyncHist != nil {
			start = time.Now()
		}
		if err := w.f.Sync(); err != nil {
			return err
		}
		if w.fsyncHist != nil {
			w.fsyncHist.ObserveSince(start)
		}
	}
	w.synced = w.lastSeq
	w.dirty = false
	return nil
}

// Sync forces a group commit now: everything appended so far is
// durable when it returns.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	return w.flushLocked(true)
}

// runSyncer is the group-commit loop.
func (w *WAL) runSyncer() {
	defer close(w.syncDone)
	interval := w.opts.FsyncInterval
	if interval <= 0 {
		interval = 50 * time.Millisecond // flush cadence even when fsync is off
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-w.stopSync:
			return
		case <-tick.C:
			w.mu.Lock()
			if w.dirty && !w.closed {
				_ = w.flushLocked(true)
			}
			w.mu.Unlock()
		}
	}
}

// LastSeq is the highest appended record sequence.
func (w *WAL) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastSeq
}

// DurableSeq is the highest record sequence known flushed and fsynced.
func (w *WAL) DurableSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.synced
}

// SizeBytes is the current on-disk size across segments.
func (w *WAL) SizeBytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sealed + w.segBytes
}

// Replay calls fn for every record with seq >= fromSeq, in order. It
// reads the on-disk state and is meant for recovery, before appends
// start; calling it on a live WAL sees whatever has been flushed.
func (w *WAL) Replay(fromSeq uint64, fn func(seq uint64, payload []byte) error) error {
	w.mu.Lock()
	if err := w.flushLocked(false); err != nil {
		w.mu.Unlock()
		return err
	}
	paths, err := w.segments()
	w.mu.Unlock()
	if err != nil {
		return err
	}
	for i, p := range paths {
		// Skip whole segments that end before fromSeq: the next
		// segment's name is the first seq after this one.
		if i+1 < len(paths) {
			next, err := parseSegName(filepath.Base(paths[i+1]))
			if err == nil && next > 0 && next-1 < fromSeq {
				continue
			}
		}
		if _, err := scanSegment(p, fromSeq, fn); err != nil {
			return err
		}
	}
	return nil
}

// TruncateBefore deletes sealed segments whose every record is below
// seq — the retention step after a snapshot covers them. The active
// segment is never deleted. A sealed segment is deleted iff its
// successor's first seq is <= seq: the successor's name is the first
// sequence after the segment, so every record inside is strictly below
// it. With gapped sequences (the sharded Owner filter) this is
// conservative — a segment whose last record is below seq survives
// when the gap pushes its successor's first seq past seq — but never
// deletes a record >= seq (TestTruncateBeforeProperty).
func (w *WAL) TruncateBefore(seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	paths, err := w.segments()
	if err != nil {
		return err
	}
	for i, p := range paths {
		if i+1 >= len(paths) {
			break // active segment
		}
		next, err := parseSegName(filepath.Base(paths[i+1]))
		if err != nil {
			return err
		}
		// next >= 1 always: segment names carry their first record seq,
		// and Append rejects seq 0 (a fresh WAL starts at lastSeq 0 and
		// requires seq > lastSeq), so next-1 cannot underflow.
		if next-1 >= seq {
			break
		}
		st, statErr := os.Stat(p)
		if err := os.Remove(p); err != nil {
			return err
		}
		if statErr == nil {
			w.sealed -= st.Size()
		}
	}
	return nil
}

// Close flushes, fsyncs, and closes the active segment, stopping the
// group-commit loop.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	err := w.flushLocked(true)
	if w.f != nil {
		if cerr := w.f.Close(); err == nil {
			err = cerr
		}
	}
	w.mu.Unlock()
	close(w.stopSync)
	<-w.syncDone
	w.collector.Unregister()
	return err
}

// crash simulates a kill -9 for tests: the user-space buffer is
// abandoned (exactly what the kernel never saw) and the file handles
// drop without flush or fsync.
func (w *WAL) crash() {
	w.mu.Lock()
	w.closed = true
	if w.f != nil {
		w.f.Close() // buffered bytes in w.bw are lost, as under SIGKILL
		w.f, w.bw = nil, nil
	}
	w.mu.Unlock()
	close(w.stopSync)
	<-w.syncDone
	w.collector.Unregister()
}
