// Package durable is wormwatchd's persistence subsystem: a segmented
// write-ahead log of ingested events (length+CRC framed records,
// batched group-commit fsync, segment rotation, torn-tail truncation
// on recovery) plus periodic snapshot/restore of the watch and
// semantics engine state. A daemon killed mid-feed restarts into
// restore-from-snapshot followed by replay of the WAL tail, with zero
// loss of durable alerts.
//
// The layering mirrors a classic log-structured store:
//
//   - codec.go    one watch.Event <-> one compact binary record
//   - wal.go      records -> CRC-framed frames -> rotating segments
//   - snapshot.go engine state -> atomic checkpoint files
//   - store.go    the Store: sequencing, ownership filtering for the
//     sharded daemon, recovery, snapshot scheduling, retention
//
// Determinism is inherited from the engines: events are replayed with
// their original global sequence numbers, the watch engine trusts
// pre-assigned sequence numbers, and logical timestamps are a pure
// function of the sequence — so a recovered engine is byte-identical
// to one that never crashed (TestStoreCrashRecovery).
package durable

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"time"

	"bgpworms/internal/bgp"
	"bgpworms/internal/watch"
)

// Codec flag bits.
const (
	flagWithdraw = 1 << 0
	flagV6       = 1 << 1
	flagNoPrefix = 1 << 2
)

// maxRecord bounds one encoded event; anything larger in a frame
// header means corruption, not data.
const maxRecord = 1 << 20

// EncodeEvent appends the compact binary form of ev to buf and returns
// the extended slice. The encoding is self-contained: DecodeEvent
// rebuilds the event exactly (times carry UTC wall-clock nanoseconds;
// the zero time round-trips as zero, so replay re-synthesizes logical
// clocks identically).
func EncodeEvent(buf []byte, ev *watch.Event) []byte {
	buf = binary.AppendUvarint(buf, ev.Seq)
	if ev.Time.IsZero() {
		buf = binary.AppendVarint(buf, 0)
	} else {
		buf = binary.AppendVarint(buf, ev.Time.UnixNano())
	}
	var flags byte
	if ev.Withdraw {
		flags |= flagWithdraw
	}
	addr := ev.Prefix.Addr()
	switch {
	case !ev.Prefix.IsValid():
		flags |= flagNoPrefix
	case !addr.Is4():
		flags |= flagV6
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(len(ev.Source)))
	buf = append(buf, ev.Source...)
	buf = binary.AppendUvarint(buf, uint64(ev.PeerAS))
	if ev.Prefix.IsValid() {
		if addr.Is4() {
			a4 := addr.As4()
			buf = append(buf, a4[:]...)
		} else {
			a16 := addr.As16()
			buf = append(buf, a16[:]...)
		}
		buf = append(buf, byte(ev.Prefix.Bits()))
	}
	buf = binary.AppendUvarint(buf, uint64(len(ev.ASPath)))
	for _, a := range ev.ASPath {
		buf = binary.AppendUvarint(buf, uint64(a))
	}
	buf = binary.AppendUvarint(buf, uint64(len(ev.Communities)))
	for _, c := range ev.Communities {
		buf = binary.BigEndian.AppendUint32(buf, uint32(c))
	}
	return buf
}

// DecodeEvent parses one encoded event. It never panics: any
// truncation or implausible length yields an error, which is what
// makes it safe as the WAL recovery (and fuzzing) surface.
func DecodeEvent(data []byte) (watch.Event, error) {
	var ev watch.Event
	r := reader{data: data}
	ev.Seq = r.uvarint()
	if nanos := r.varint(); nanos != 0 {
		ev.Time = time.Unix(0, nanos).UTC()
	}
	flags := r.byte()
	srcLen := r.uvarint()
	if srcLen > maxRecord {
		return ev, fmt.Errorf("durable: source length %d implausible", srcLen)
	}
	ev.Source = string(r.bytes(int(srcLen)))
	ev.PeerAS = uint32(r.uvarint())
	if flags&flagNoPrefix == 0 {
		if flags&flagV6 != 0 {
			var a16 [16]byte
			copy(a16[:], r.bytes(16))
			ev.Prefix = netip.PrefixFrom(netip.AddrFrom16(a16), int(r.byte()))
		} else {
			var a4 [4]byte
			copy(a4[:], r.bytes(4))
			ev.Prefix = netip.PrefixFrom(netip.AddrFrom4(a4), int(r.byte()))
		}
		if !ev.Prefix.IsValid() && !r.failed {
			return ev, fmt.Errorf("durable: invalid prefix bits")
		}
	}
	pathLen := r.uvarint()
	if pathLen > maxRecord/2 {
		return ev, fmt.Errorf("durable: path length %d implausible", pathLen)
	}
	if pathLen > 0 && !r.failed {
		ev.ASPath = make([]uint32, 0, pathLen)
		for i := uint64(0); i < pathLen && !r.failed; i++ {
			ev.ASPath = append(ev.ASPath, uint32(r.uvarint()))
		}
	}
	commLen := r.uvarint()
	if commLen > maxRecord/4 {
		return ev, fmt.Errorf("durable: community count %d implausible", commLen)
	}
	if commLen > 0 && !r.failed {
		ev.Communities = make(bgp.CommunitySet, 0, commLen)
		for i := uint64(0); i < commLen && !r.failed; i++ {
			ev.Communities = append(ev.Communities, bgp.Community(binary.BigEndian.Uint32(r.bytes(4))))
		}
	}
	ev.Withdraw = flags&flagWithdraw != 0
	if r.failed {
		return ev, fmt.Errorf("durable: truncated event record (%d bytes)", len(data))
	}
	if r.pos != len(data) {
		return ev, fmt.Errorf("durable: %d trailing bytes after event record", len(data)-r.pos)
	}
	return ev, nil
}

// reader is a bounds-checked cursor: reads past the end flip failed
// instead of panicking, so decode error handling lives in one place.
type reader struct {
	data   []byte
	pos    int
	failed bool
}

func (r *reader) uvarint() uint64 {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.failed = true
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) varint() int64 {
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		r.failed = true
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) byte() byte {
	if r.pos >= len(r.data) {
		r.failed = true
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

var empty [16]byte

func (r *reader) bytes(n int) []byte {
	if r.pos+n > len(r.data) {
		r.failed = true
		return empty[:min(n, len(empty))]
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b
}
