package durable

import (
	"net/netip"
	"testing"
	"time"

	"bgpworms/internal/bgp"
	"bgpworms/internal/watch"
)

func sampleEvents() []watch.Event {
	return []watch.Event{
		{
			Seq:    1,
			Time:   time.Date(2018, 4, 3, 12, 30, 0, 123456789, time.UTC),
			Source: "rrc00",
			PeerAS: 64512,
			Prefix: netip.MustParsePrefix("203.0.113.0/24"),
			ASPath: []uint32{64512, 3356, 65001},
			Communities: bgp.NewCommunitySet(
				bgp.C(3356, 666), bgp.C(65001, 100),
			),
		},
		{
			// Withdrawal: no path, no communities, zero (synthesized) time.
			Seq:      7,
			Source:   "tap",
			PeerAS:   64512,
			Prefix:   netip.MustParsePrefix("203.0.113.0/24"),
			Withdraw: true,
		},
		{
			// IPv6 host route.
			Seq:    9,
			Time:   time.Unix(1522540800, 0).UTC(),
			PeerAS: 65000,
			Prefix: netip.MustParsePrefix("2001:db8::1/128"),
			ASPath: []uint32{65000, 65001},
		},
		{
			// No prefix at all (a malformed-but-representable event).
			Seq:    10,
			Source: "odd",
			PeerAS: 1,
		},
		{
			// Default-route corner: zero address, zero bits.
			Seq:         11,
			PeerAS:      2,
			Prefix:      netip.MustParsePrefix("0.0.0.0/0"),
			ASPath:      []uint32{2},
			Communities: bgp.NewCommunitySet(bgp.C(2, 666)),
		},
	}
}

func eventsEqual(a, b *watch.Event) bool {
	if a.Seq != b.Seq || !a.Time.Equal(b.Time) || a.Source != b.Source ||
		a.PeerAS != b.PeerAS || a.Prefix != b.Prefix || a.Withdraw != b.Withdraw ||
		len(a.ASPath) != len(b.ASPath) || len(a.Communities) != len(b.Communities) {
		return false
	}
	for i := range a.ASPath {
		if a.ASPath[i] != b.ASPath[i] {
			return false
		}
	}
	for i := range a.Communities {
		if a.Communities[i] != b.Communities[i] {
			return false
		}
	}
	return true
}

func TestEventCodecRoundTrip(t *testing.T) {
	for i, ev := range sampleEvents() {
		buf := EncodeEvent(nil, &ev)
		got, err := DecodeEvent(buf)
		if err != nil {
			t.Fatalf("event %d: decode: %v", i, err)
		}
		if !eventsEqual(&ev, &got) {
			t.Fatalf("event %d round-trip mismatch:\nin  %+v\nout %+v", i, ev, got)
		}
	}
}

// TestDecodeEventRejectsDamage walks every truncation point and a byte
// flip through the decoder: each must error (or decode to a valid
// event, for flips that stay in-grammar), never panic.
func TestDecodeEventRejectsDamage(t *testing.T) {
	for _, ev := range sampleEvents() {
		buf := EncodeEvent(nil, &ev)
		for cut := 0; cut < len(buf); cut++ {
			if _, err := DecodeEvent(buf[:cut]); err == nil {
				t.Fatalf("truncation to %d/%d bytes decoded cleanly", cut, len(buf))
			}
		}
		for i := range buf {
			mut := append([]byte(nil), buf...)
			mut[i] ^= 0x55
			_, _ = DecodeEvent(mut) // must not panic
		}
	}
}

func TestDecodeEventRejectsTrailing(t *testing.T) {
	ev := sampleEvents()[0]
	buf := append(EncodeEvent(nil, &ev), 0x00)
	if _, err := DecodeEvent(buf); err == nil {
		t.Fatal("trailing byte decoded cleanly")
	}
}
