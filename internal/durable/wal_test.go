package durable

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"slices"
	"testing"
	"time"
)

// noSync keeps the background group-commit loop effectively inert so
// tests control durability explicitly.
const noSync = time.Hour

func appendN(t testing.TB, w *WAL, seqs []uint64) {
	t.Helper()
	for _, seq := range seqs {
		if err := w.Append(seq, []byte(fmt.Sprintf("payload-%d", seq))); err != nil {
			t.Fatalf("append %d: %v", seq, err)
		}
	}
}

func replayAll(t testing.TB, w *WAL, from uint64) []uint64 {
	t.Helper()
	var got []uint64
	if err := w.Replay(from, func(seq uint64, payload []byte) error {
		if want := fmt.Sprintf("payload-%d", seq); string(payload) != want {
			return fmt.Errorf("seq %d payload %q, want %q", seq, payload, want)
		}
		got = append(got, seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

func seqRange(from, to uint64) []uint64 {
	out := make([]uint64, 0, to-from+1)
	for s := from; s <= to; s++ {
		out = append(out, s)
	}
	return out
}

func seqsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestWALAppendCloseReopenReplay(t *testing.T) {
	dir := t.TempDir()
	w, rec, err := OpenWAL(dir, WALOptions{FsyncInterval: noSync})
	if err != nil {
		t.Fatal(err)
	}
	if rec.LastSeq != 0 || rec.Records != 0 {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	// Gapped sequence, like a sharded store's WAL.
	seqs := []uint64{1, 2, 5, 6, 10, 11, 12, 100}
	appendN(t, w, seqs)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, rec2, err := OpenWAL(dir, WALOptions{FsyncInterval: noSync})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if rec2.LastSeq != 100 || rec2.Records != len(seqs) {
		t.Fatalf("recovered %+v, want last=100 records=%d", rec2, len(seqs))
	}
	if got := replayAll(t, w2, 0); !seqsEqual(got, seqs) {
		t.Fatalf("replayed %v, want %v", got, seqs)
	}
	if got := replayAll(t, w2, 6); !seqsEqual(got, []uint64{6, 10, 11, 12, 100}) {
		t.Fatalf("replay from 6 got %v", got)
	}
	// Appends must continue after the recovered tail.
	if err := w2.Append(50, nil); err == nil {
		t.Fatal("append below recovered last seq succeeded")
	}
	appendN(t, w2, []uint64{101})
	if got := replayAll(t, w2, 100); !seqsEqual(got, []uint64{100, 101}) {
		t.Fatalf("replay after reopen-append got %v", got)
	}
}

func TestWALRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every few records.
	w, _, err := OpenWAL(dir, WALOptions{SegmentBytes: 256, FsyncInterval: noSync})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendN(t, w, seqRange(1, 100))
	segs, _ := w.segments()
	if len(segs) < 5 {
		t.Fatalf("expected many segments at 256B rotation, got %d", len(segs))
	}
	if got := replayAll(t, w, 0); !seqsEqual(got, seqRange(1, 100)) {
		t.Fatalf("replay across segments lost records: %d", len(got))
	}
	before := w.SizeBytes()

	// A checkpoint at 60 retires every segment fully below it.
	if err := w.TruncateBefore(61); err != nil {
		t.Fatal(err)
	}
	if after := w.SizeBytes(); after >= before {
		t.Fatalf("truncation did not shrink the log: %d -> %d", before, after)
	}
	got := replayAll(t, w, 61)
	if !seqsEqual(got, seqRange(61, 100)) {
		t.Fatalf("post-truncation replay from 61 got %v", got)
	}
	// Records >= 61 in a partially-covered segment must survive; the
	// replay from 0 may legitimately start earlier than 61 but never
	// after it.
	all := replayAll(t, w, 0)
	if len(all) == 0 || all[0] > 61 {
		t.Fatalf("truncation deleted covered boundary: first remaining %v", all[:min(len(all), 3)])
	}
}

func TestWALTornTailTruncatedOnRecovery(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenWAL(dir, WALOptions{FsyncInterval: noSync})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, seqRange(1, 20))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) != 1 {
		t.Fatalf("expected one segment, got %d", len(segs))
	}
	// Tear the final record: chop 3 bytes off the file.
	st, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], st.Size()-3); err != nil {
		t.Fatal(err)
	}

	w2, rec, err := OpenWAL(dir, WALOptions{FsyncInterval: noSync})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if rec.LastSeq != 19 || rec.TornBytes == 0 {
		t.Fatalf("recovered %+v, want last=19 with torn bytes", rec)
	}
	if got := replayAll(t, w2, 0); !seqsEqual(got, seqRange(1, 19)) {
		t.Fatalf("post-tear replay got %d records", len(got))
	}
	// The torn record is gone from disk too: seq 20 can be re-appended.
	appendN(t, w2, []uint64{20})
	if got := replayAll(t, w2, 0); !seqsEqual(got, seqRange(1, 20)) {
		t.Fatalf("re-append after tear got %v", got)
	}
}

func TestWALCorruptMiddleRecordIsTornTail(t *testing.T) {
	// A CRC mismatch mid-segment truncates from that point: everything
	// before stays, everything after is discarded (it was never
	// acknowledged durable in order).
	dir := t.TempDir()
	w, _, err := OpenWAL(dir, WALOptions{FsyncInterval: noSync})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, seqRange(1, 10))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the 5th record region (well past header).
	frame := int64(frameHeader + len("payload-1"))
	off := segHeader + 4*frame + frameHeader
	raw[off] ^= 0xFF
	if err := os.WriteFile(segs[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, rec, err := OpenWAL(dir, WALOptions{FsyncInterval: noSync})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if rec.LastSeq != 4 {
		t.Fatalf("recovered last seq %d, want 4 (corruption at record 5)", rec.LastSeq)
	}
}

func TestWALCrashLosesOnlyUnsyncedTail(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenWAL(dir, WALOptions{FsyncInterval: noSync})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, seqRange(1, 100))
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if w.DurableSeq() != 100 {
		t.Fatalf("durable seq %d after Sync", w.DurableSeq())
	}
	appendN(t, w, seqRange(101, 150)) // buffered, never flushed
	w.crash()

	w2, rec, err := OpenWAL(dir, WALOptions{FsyncInterval: noSync})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if rec.LastSeq != 100 {
		t.Fatalf("crash recovery found seq %d, want exactly the synced 100", rec.LastSeq)
	}
}

func TestWALHeaderCorruptionIsAnError(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenWAL(dir, WALOptions{FsyncInterval: noSync})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, seqRange(1, 3))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	raw, _ := os.ReadFile(segs[0])
	copy(raw[:8], "NOTAWAL!")
	if err := os.WriteFile(segs[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenWAL(dir, WALOptions{FsyncInterval: noSync}); err == nil {
		t.Fatal("bad segment magic opened cleanly")
	}
}

func TestWALGroupCommitAdvancesDurable(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenWAL(dir, WALOptions{FsyncInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendN(t, w, seqRange(1, 10))
	deadline := time.Now().Add(5 * time.Second)
	for w.DurableSeq() != 10 {
		if time.Now().After(deadline) {
			t.Fatalf("group commit never advanced durable seq (at %d)", w.DurableSeq())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestWALRejectsOversizeRecord(t *testing.T) {
	w, _, err := OpenWAL(t.TempDir(), WALOptions{FsyncInterval: noSync})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(1, make([]byte, maxRecord+1)); err == nil {
		t.Fatal("oversize record accepted")
	}
}

// Frame-header sanity: the on-disk length field really is the payload
// length (guards against accidental format drift).
func TestWALFrameLayout(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenWAL(dir, WALOptions{FsyncInterval: noSync})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("hello wal")
	if err := w.Append(42, payload); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	raw, _ := os.ReadFile(segs[0])
	if string(raw[:8]) != segMagic {
		t.Fatalf("segment magic %q", raw[:8])
	}
	if first := binary.BigEndian.Uint64(raw[8:16]); first != 42 {
		t.Fatalf("header first seq %d", first)
	}
	if l := binary.BigEndian.Uint32(raw[segHeader:]); int(l) != len(payload) {
		t.Fatalf("frame length %d, want %d", l, len(payload))
	}
	if seq := binary.BigEndian.Uint64(raw[segHeader+8:]); seq != 42 {
		t.Fatalf("frame seq %d", seq)
	}
}

// TestTruncateBeforeProperty is a randomized property test of the
// retention boundary. For random gapped sequence streams (the sharded
// Owner filter's shape) cut into small segments, and random truncation
// points, it asserts the documented contract:
//
//   - a sealed segment is deleted iff its successor's first seq <= seq
//     (the gapped case included: a gap that pushes the successor's
//     first seq past the truncation point keeps the segment alive even
//     when its own last record is below it);
//   - the active segment always survives;
//   - no record >= seq is ever lost (replay still serves them all).
func TestTruncateBeforeProperty(t *testing.T) {
	for round := 0; round < 30; round++ {
		rng := rand.New(rand.NewSource(int64(round) + 7))
		dir := t.TempDir()
		w, _, err := OpenWAL(dir, WALOptions{SegmentBytes: 128, FsyncInterval: noSync})
		if err != nil {
			t.Fatal(err)
		}
		// A gapped monotone stream: each record jumps 1..8 seqs ahead.
		var seqs []uint64
		next := uint64(0)
		n := 10 + rng.Intn(60)
		for i := 0; i < n; i++ {
			next += uint64(1 + rng.Intn(8))
			seqs = append(seqs, next)
			payload := make([]byte, 8+rng.Intn(48))
			if err := w.Append(next, payload); err != nil {
				t.Fatalf("round %d: append seq %d: %v", round, next, err)
			}
		}
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}

		// Segment layout before truncation: names are first seqs.
		paths, err := w.segments()
		if err != nil {
			t.Fatal(err)
		}
		firsts := make([]uint64, len(paths))
		for i, p := range paths {
			if firsts[i], err = parseSegName(filepath.Base(p)); err != nil {
				t.Fatal(err)
			}
		}

		cut := uint64(rng.Intn(int(next) + 10))
		if err := w.TruncateBefore(cut); err != nil {
			t.Fatalf("round %d: TruncateBefore(%d): %v", round, cut, err)
		}
		after, err := w.segments()
		if err != nil {
			t.Fatal(err)
		}
		kept := map[string]bool{}
		for _, p := range after {
			kept[filepath.Base(p)] = true
		}
		for i, p := range paths {
			want := true // the active (last) segment always survives
			if i+1 < len(paths) {
				want = firsts[i+1] > cut // deleted iff successor first <= cut
			}
			if got := kept[filepath.Base(p)]; got != want {
				t.Fatalf("round %d cut %d: segment %s (firsts=%v) kept=%v want=%v",
					round, cut, filepath.Base(p), firsts, got, want)
			}
		}

		// Every record >= cut must still replay, in order.
		var wantTail []uint64
		for _, s := range seqs {
			if s >= cut {
				wantTail = append(wantTail, s)
			}
		}
		var gotTail []uint64
		if err := w.Replay(cut, func(seq uint64, _ []byte) error {
			gotTail = append(gotTail, seq)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(gotTail, wantTail) {
			t.Fatalf("round %d cut %d: replay lost records:\ngot  %v\nwant %v", round, cut, gotTail, wantTail)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
