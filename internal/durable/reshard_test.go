package durable

import (
	"bytes"
	"encoding/json"
	"hash/fnv"
	"net/netip"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"bgpworms/internal/watch"
)

// fnvIndex is the int-valued form of hashOwner's partition: hashOwner
// (index, of) accepts exactly the prefixes with fnvIndex(p, of) ==
// index, so a source fleet built on hashOwner and a reshard driven by
// fnvIndex agree on ownership.
func fnvIndex(of int) func(netip.Prefix) int {
	return func(p netip.Prefix) int {
		h := fnv.New32a()
		a := p.Addr().As16()
		h.Write(a[:])
		h.Write([]byte{byte(p.Bits())})
		return int(h.Sum32()) % of
	}
}

// runSrcFleet drives a 2-shard fleet over the full feed with
// deliberately different durability histories: shard 0 checkpoints
// mid-stream and then dies kill -9 style (its state is cp@mid plus a
// WAL tail), shard 1 shuts down gracefully (its state is entirely a
// cp@end, with every WAL record checkpoint-covered). Returns the two
// directories and the mid-stream watermark.
func runSrcFleet(t *testing.T, events []watch.Event) (dirs []string, mid uint64) {
	t.Helper()
	mid = uint64(len(events) / 2)
	for k := 0; k < 2; k++ {
		dir := filepath.Join(t.TempDir(), "src")
		dirs = append(dirs, dir)
		eng, sem := newPair(2 + k)
		st, _, err := Open(eng, sem, Options{
			Dir:           dir,
			Owner:         hashOwner(k, 2),
			FsyncInterval: noSync,
		})
		if err != nil {
			t.Fatal(err)
		}
		sink := st.Sink()
		if k == 0 {
			for _, ev := range events[:mid] {
				sink(ev)
			}
			if err := st.Snapshot(); err != nil {
				t.Fatal(err)
			}
			for _, ev := range events[mid:] {
				sink(ev)
			}
			if err := st.wal.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := st.Err(); err != nil {
				t.Fatal(err)
			}
			st.crash()
		} else {
			for _, ev := range events {
				sink(ev)
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
		}
		eng.Close()
		sem.Close()
	}
	return dirs, mid
}

// mergedAlerts boots one store per destination directory, lets
// recovery rebuild it, and returns the sequence-merged alert union —
// the byte surface the frontend serves.
func mergedAlerts(t *testing.T, dirs []string, wantCpSeq uint64) []byte {
	t.Helper()
	var merged []watch.Alert
	for k, dir := range dirs {
		eng, sem := newPair(2 + k)
		st, rec, err := Open(eng, sem, Options{
			Dir:           dir,
			Owner:         hashOwner(k, len(dirs)),
			FsyncInterval: noSync,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rec.CheckpointSeq != wantCpSeq {
			t.Fatalf("dst %d recovered checkpoint %d, want %d", k, rec.CheckpointSeq, wantCpSeq)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		merged = append(merged, eng.Alerts()...)
		eng.Close()
		sem.Close()
	}
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].Seq < merged[j].Seq })
	b, err := json.Marshal(merged)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestReshardByteIdentity is the tentpole proof: a 2-shard fleet with
// mixed durability histories resharded to 3 shards (and, from the same
// sources, collapsed to 1) serves a merged alert surface byte-identical
// to an uninterrupted single-process run over the same feed.
func TestReshardByteIdentity(t *testing.T) {
	events := churnEvents(t)
	wantAlerts, _, _ := referenceRun(t, events)
	srcs, mid := runSrcFleet(t, events)

	dst3 := []string{
		filepath.Join(t.TempDir(), "d0"),
		filepath.Join(t.TempDir(), "d1"),
		filepath.Join(t.TempDir(), "d2"),
	}
	rep, err := Reshard(ReshardOptions{SrcDirs: srcs, DstDirs: dst3, Owner: fnvIndex(3)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CheckpointSeq != mid {
		t.Fatalf("reshard checkpoint seq %d, want min source watermark %d", rep.CheckpointSeq, mid)
	}
	// Shard 1 closed gracefully: its whole WAL is checkpoint-covered and
	// must have been dropped rather than re-applied.
	if rep.Covered == 0 {
		t.Fatal("no covered records dropped; shard 1's graceful-close WAL should be fully covered")
	}
	if rep.Records == 0 {
		t.Fatal("reshard scattered no records; shard 0's post-checkpoint tail should survive")
	}
	if got := mergedAlerts(t, dst3, mid); !bytes.Equal(got, wantAlerts) {
		t.Fatalf("2→3 resharded alert union differs from uninterrupted run (%d vs %d bytes)", len(got), len(wantAlerts))
	}

	// Collapse the same sources to a single shard: the union must fold
	// into one directory that recovers to the identical surface.
	dst1 := []string{filepath.Join(t.TempDir(), "solo")}
	if _, err := Reshard(ReshardOptions{SrcDirs: srcs, DstDirs: dst1, Owner: fnvIndex(1)}); err != nil {
		t.Fatal(err)
	}
	if got := mergedAlerts(t, dst1, mid); !bytes.Equal(got, wantAlerts) {
		t.Fatal("2→1 resharded alert set differs from uninterrupted run")
	}
}

// TestReshardWithoutCheckpoints covers the checkpoint-less fleet: every
// source is WAL-only (crashed before any snapshot), so the reshard
// scatters raw records and writes no destination checkpoint.
func TestReshardWithoutCheckpoints(t *testing.T) {
	events := churnEvents(t)
	wantAlerts, _, _ := referenceRun(t, events)
	var srcs []string
	for k := 0; k < 2; k++ {
		dir := filepath.Join(t.TempDir(), "src")
		srcs = append(srcs, dir)
		eng, sem := newPair(3)
		st, _, err := Open(eng, sem, Options{Dir: dir, Owner: hashOwner(k, 2), FsyncInterval: noSync})
		if err != nil {
			t.Fatal(err)
		}
		sink := st.Sink()
		for _, ev := range events {
			sink(ev)
		}
		if err := st.wal.Sync(); err != nil {
			t.Fatal(err)
		}
		st.crash()
		eng.Close()
		sem.Close()
	}
	dst := []string{filepath.Join(t.TempDir(), "d0"), filepath.Join(t.TempDir(), "d1"), filepath.Join(t.TempDir(), "d2")}
	rep, err := Reshard(ReshardOptions{SrcDirs: srcs, DstDirs: dst, Owner: fnvIndex(3)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CheckpointSeq != 0 {
		t.Fatalf("checkpoint-less sources produced checkpoint seq %d", rep.CheckpointSeq)
	}
	if rep.Covered != 0 {
		t.Fatalf("checkpoint-less sources dropped %d covered records", rep.Covered)
	}
	if got := mergedAlerts(t, dst, 0); !bytes.Equal(got, wantAlerts) {
		t.Fatal("WAL-only resharded alert union differs from uninterrupted run")
	}
}

// TestReshardInvalidPrefixDuplicates pins the every-shard-journals-it
// invariant: an invalid-prefix event appears in both source WAL tails
// under the same sequence, is collapsed to one logical record, and is
// scattered to every destination.
func TestReshardInvalidPrefixDuplicates(t *testing.T) {
	feed := []watch.Event{
		{Source: "c1", PeerAS: 64500, Prefix: netip.MustParsePrefix("10.0.0.0/24"), ASPath: []uint32{64500, 64501}},
		{Source: "c1", PeerAS: 64500, Prefix: netip.MustParsePrefix("192.0.2.0/24"), ASPath: []uint32{64500, 64502}},
		{Source: "c1", PeerAS: 64500}, // no prefix: journaled by every shard
		{Source: "c1", PeerAS: 64500, Prefix: netip.MustParsePrefix("198.51.100.0/24"), Withdraw: true},
	}
	var srcs []string
	for k := 0; k < 2; k++ {
		dir := filepath.Join(t.TempDir(), "src")
		srcs = append(srcs, dir)
		eng, sem := newPair(2)
		st, _, err := Open(eng, sem, Options{Dir: dir, Owner: hashOwner(k, 2), FsyncInterval: noSync})
		if err != nil {
			t.Fatal(err)
		}
		sink := st.Sink()
		// Checkpoint before the feed so the invalid record lands in the
		// uncovered WAL tail of both shards.
		if err := st.Snapshot(); err != nil {
			t.Fatal(err)
		}
		for _, ev := range feed {
			sink(ev)
		}
		if err := st.wal.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := st.Err(); err != nil {
			t.Fatal(err)
		}
		st.crash()
		eng.Close()
		sem.Close()
	}
	dst := []string{filepath.Join(t.TempDir(), "d0"), filepath.Join(t.TempDir(), "d1"), filepath.Join(t.TempDir(), "d2")}
	rep, err := Reshard(ReshardOptions{SrcDirs: srcs, DstDirs: dst, Owner: fnvIndex(3)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Duplicates != 1 {
		t.Fatalf("collapsed %d duplicate records, want 1 (the invalid-prefix event)", rep.Duplicates)
	}
	if rep.Records != len(feed) {
		t.Fatalf("scattered %d unique records, want %d", rep.Records, len(feed))
	}
	// Three valid records went to one destination each; the invalid one
	// went to all three.
	total := 0
	for _, n := range rep.PerDst {
		total += n
	}
	if want := (len(feed) - 1) + len(dst); total != want {
		t.Fatalf("wrote %d records across destinations, want %d", total, want)
	}
	for k, dir := range dst {
		eng, sem := newPair(2)
		st, rec, err := Open(eng, sem, Options{Dir: dir, Owner: hashOwner(k, 3), FsyncInterval: noSync})
		if err != nil {
			t.Fatalf("dst %d failed to open after reshard: %v", k, err)
		}
		// A shard's watermark is its last owned record; the invalid event
		// (seq 3) reached every destination, so no watermark may trail it.
		if rec.Seq < 3 || rec.Seq > uint64(len(feed)) {
			t.Fatalf("dst %d recovered watermark %d, want within [3,%d]", k, rec.Seq, len(feed))
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		eng.Close()
		sem.Close()
	}
}

// TestReshardRefusesMixedSources: one checkpointed source and one
// WAL-only source cannot be merged safely (the checkpointed source may
// have truncated records only its snapshot reflects), so Reshard must
// refuse with actionable advice.
func TestReshardRefusesMixedSources(t *testing.T) {
	events := churnEvents(t)
	var srcs []string
	for k := 0; k < 2; k++ {
		dir := filepath.Join(t.TempDir(), "src")
		srcs = append(srcs, dir)
		eng, sem := newPair(2)
		st, _, err := Open(eng, sem, Options{Dir: dir, Owner: hashOwner(k, 2), FsyncInterval: noSync})
		if err != nil {
			t.Fatal(err)
		}
		sink := st.Sink()
		for _, ev := range events[:50] {
			sink(ev)
		}
		if k == 0 {
			if err := st.Close(); err != nil { // graceful: checkpoint
				t.Fatal(err)
			}
		} else {
			if err := st.wal.Sync(); err != nil {
				t.Fatal(err)
			}
			st.crash() // WAL only, never checkpointed
		}
		eng.Close()
		sem.Close()
	}
	dst := []string{filepath.Join(t.TempDir(), "d0")}
	_, err := Reshard(ReshardOptions{SrcDirs: srcs, DstDirs: dst, Owner: fnvIndex(1)})
	if err == nil || !strings.Contains(err.Error(), "mix") {
		t.Fatalf("mixed sources must be refused, got %v", err)
	}
}

// TestReshardRefusesDirtyDestination: scattering into a directory that
// already holds durability state would interleave sequence histories.
func TestReshardRefusesDirtyDestination(t *testing.T) {
	src := filepath.Join(t.TempDir(), "src")
	eng, sem := newPair(2)
	st, _, err := Open(eng, sem, Options{Dir: src, FsyncInterval: noSync})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	eng.Close()
	sem.Close()

	dirty := t.TempDir()
	if err := os.WriteFile(filepath.Join(dirty, "wal-00000000000000000001.seg"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Reshard(ReshardOptions{SrcDirs: []string{src}, DstDirs: []string{dirty}, Owner: fnvIndex(1)}); err == nil {
		t.Fatal("dirty destination must be refused")
	}
	if _, err := Reshard(ReshardOptions{SrcDirs: []string{src}, DstDirs: []string{src}, Owner: fnvIndex(1)}); err == nil {
		t.Fatal("source reused as destination must be refused")
	}
}
