package durable

import (
	"testing"
)

// FuzzWALRecord is the native fuzzer for the WAL record codec:
// arbitrary byte strings must never panic DecodeEvent, and any input
// that decodes must re-encode to a record that decodes back to the
// identical event (the codec is canonicalizing: a non-minimal varint
// in the input may shrink, but the event it denotes is fixed). The
// seed corpus is the sample-event encodings plus framing edge cases.
func FuzzWALRecord(f *testing.F) {
	for _, ev := range sampleEvents() {
		f.Add(EncodeEvent(nil, &ev))
	}
	f.Add([]byte{})
	f.Add([]byte{0x00})
	// A huge declared source length must be rejected, not allocated.
	f.Add([]byte{0x01, 0x00, 0x00, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		ev, err := DecodeEvent(data)
		if err != nil {
			return // malformed records error out; they must not panic
		}
		re := EncodeEvent(nil, &ev)
		ev2, err := DecodeEvent(re)
		if err != nil {
			t.Fatalf("re-encoded record fails to decode: %v\nevent %+v", err, ev)
		}
		if !eventsEqual(&ev, &ev2) {
			t.Fatalf("re-encode round trip drifted:\nfirst  %+v\nsecond %+v", ev, ev2)
		}
	})
}
