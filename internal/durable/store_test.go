package durable

import (
	"bytes"
	"encoding/json"
	"hash/fnv"
	"net/netip"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"bgpworms/internal/gen"
	"bgpworms/internal/semantics"
	"bgpworms/internal/watch"
)

// churnEvents flattens the deterministic churn feed into an event list
// (the same harness the watch-engine state tests use), so durability
// tests can cut the stream anywhere and replay the remainder.
func churnEvents(t testing.TB) []watch.Event {
	t.Helper()
	w, err := gen.Build(gen.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.RunChurn(); err != nil {
		t.Fatal(err)
	}
	var events []watch.Event
	for _, c := range w.Collectors {
		obs := c.Observations()
		for i := range obs {
			ob := &obs[i]
			ev := watch.Event{
				Time:   ob.Time,
				Source: c.Name,
				PeerAS: uint32(ob.PeerAS),
				Prefix: ob.Prefix,
			}
			if ob.Route == nil {
				ev.Withdraw = true
			} else {
				ev.ASPath = ob.Route.ASPath.Sequence()
				ev.Communities = ob.Route.Communities.Clone()
			}
			events = append(events, ev)
		}
	}
	if len(events) < 300 {
		t.Fatalf("churn feed too small for durability splits: %d events", len(events))
	}
	return events
}

// newPair builds a watch engine with a mirrored semantics engine, the
// daemon's engine arrangement.
func newPair(shards int) (*watch.Engine, *semantics.Engine) {
	sem := semantics.NewEngine(semantics.Config{Workers: 2})
	eng := watch.NewEngine(watch.Config{Shards: shards, Semantics: sem})
	return eng, sem
}

// referenceRun ingests every event into a fresh engine pair and returns
// the canonical outputs an uninterrupted daemon would serve.
func referenceRun(t testing.TB, events []watch.Event) (alerts, dict []byte, stats watch.Stats) {
	t.Helper()
	eng, sem := newPair(4)
	defer eng.Close()
	defer sem.Close()
	for _, ev := range events {
		eng.Ingest(ev)
	}
	eng.Flush()
	return alertsJSON(t, eng), dictJSON(t, sem), eng.Stats()
}

func alertsJSON(t testing.TB, e *watch.Engine) []byte {
	t.Helper()
	b, err := json.Marshal(e.Alerts())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func dictJSON(t testing.TB, s *semantics.Engine) []byte {
	t.Helper()
	s.Flush()
	b, err := json.Marshal(s.Snapshot().Entries())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestStoreCrashRecoveryResumeSkip is the tentpole proof: feed part of
// a stream through a durable store, checkpoint mid-way, make the WAL
// tail durable, then die as a kill -9 would (buffered bytes lost, no
// final checkpoint). A fresh process recovers and — because the feed is
// re-readable — re-reads from the start, with the store skipping
// everything recovery already applied. The final alert set, dictionary,
// and counters must be byte-identical to a run that never crashed.
func TestStoreCrashRecoveryResumeSkip(t *testing.T) {
	events := churnEvents(t)
	wantAlerts, wantDict, wantStats := referenceRun(t, events)
	cut := 2 * len(events) / 3
	snapAt := cut / 2
	dir := t.TempDir()
	opts := Options{Dir: dir, ResumeSkip: true, FsyncInterval: noSync}

	eng1, sem1 := newPair(4)
	st1, rec, err := Open(eng1, sem1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 0 || rec.Replayed != 0 {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	sink := st1.Sink()
	for _, ev := range events[:snapAt] {
		sink(ev)
	}
	if err := st1.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events[snapAt:cut] {
		sink(ev)
	}
	if err := st1.wal.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := st1.Err(); err != nil {
		t.Fatal(err)
	}
	st1.crash()
	eng1.Close()
	sem1.Close()

	// Restart: different shard/worker counts on purpose — the alert set
	// is invariant to both.
	eng2, sem2 := newPair(7)
	defer eng2.Close()
	defer sem2.Close()
	st2, rec2, err := Open(eng2, sem2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.CheckpointSeq != uint64(snapAt) {
		t.Fatalf("recovered checkpoint %d, want %d", rec2.CheckpointSeq, snapAt)
	}
	if rec2.Seq != uint64(cut) {
		t.Fatalf("recovered watermark %d, want %d (synced tail)", rec2.Seq, cut)
	}
	if rec2.Replayed != cut-snapAt {
		t.Fatalf("replayed %d WAL records, want %d", rec2.Replayed, cut-snapAt)
	}
	// The re-readable feed starts over; the store must skip the first
	// cut events and splice the rest on.
	sink2 := st2.Sink()
	for _, ev := range events {
		sink2(ev)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}

	if got := alertsJSON(t, eng2); !bytes.Equal(got, wantAlerts) {
		t.Fatalf("recovered alert set differs from uninterrupted run (%d vs %d bytes)", len(got), len(wantAlerts))
	}
	if got := dictJSON(t, sem2); !bytes.Equal(got, wantDict) {
		t.Fatalf("recovered dictionary differs from uninterrupted run")
	}
	gotStats := eng2.Stats()
	if gotStats.Ingested != wantStats.Ingested || gotStats.Alerts != wantStats.Alerts ||
		gotStats.Processed != wantStats.Processed {
		t.Fatalf("recovered stats %+v, want %+v", gotStats, wantStats)
	}
}

// TestStoreLiveResume covers the non-re-readable path: the feed resumes
// mid-stream after recovery, so the store continues the recovered
// numbering instead of skipping.
func TestStoreLiveResume(t *testing.T) {
	events := churnEvents(t)
	wantAlerts, wantDict, _ := referenceRun(t, events)
	cut := len(events) / 2
	dir := t.TempDir()
	opts := Options{Dir: dir, FsyncInterval: noSync}

	eng1, sem1 := newPair(3)
	st1, _, err := Open(eng1, sem1, opts)
	if err != nil {
		t.Fatal(err)
	}
	sink := st1.Sink()
	for _, ev := range events[:cut] {
		sink(ev)
	}
	// Checkpoint, then die without it being the final flush: this is a
	// crash immediately after a snapshot, so nothing is lost and a live
	// feed can resume exactly at the cut.
	if err := st1.Snapshot(); err != nil {
		t.Fatal(err)
	}
	st1.crash()
	eng1.Close()
	sem1.Close()

	eng2, sem2 := newPair(5)
	defer eng2.Close()
	defer sem2.Close()
	st2, rec, err := Open(eng2, sem2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq != uint64(cut) {
		t.Fatalf("recovered watermark %d, want %d", rec.Seq, cut)
	}
	sink2 := st2.Sink()
	for _, ev := range events[cut:] {
		sink2(ev)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := alertsJSON(t, eng2); !bytes.Equal(got, wantAlerts) {
		t.Fatal("live-resume alert set differs from uninterrupted run")
	}
	if got := dictJSON(t, sem2); !bytes.Equal(got, wantDict) {
		t.Fatal("live-resume dictionary differs from uninterrupted run")
	}
}

// hashOwner partitions the prefix space by FNV hash, the simplest
// deterministic 1-of-n ownership function.
func hashOwner(index, of int) func(netip.Prefix) bool {
	return func(p netip.Prefix) bool {
		h := fnv.New32a()
		a := p.Addr().As16()
		h.Write(a[:])
		h.Write([]byte{byte(p.Bits())})
		return int(h.Sum32())%of == index
	}
}

// TestStoreShardedByteIdentity proves the scatter-gather claim at the
// store level: N stores, each owning a slice of the prefix space, all
// consuming the identical full feed. Because every store assigns the
// same global sequence numbers, the union of their alert sets — merged
// by sequence — must be byte-identical to a single-process run.
func TestStoreShardedByteIdentity(t *testing.T) {
	events := churnEvents(t)
	wantAlerts, _, wantStats := referenceRun(t, events)

	const shards = 3
	var merged []watch.Alert
	var skippedTotal uint64
	for k := 0; k < shards; k++ {
		eng, sem := newPair(2 + k)
		st, _, err := Open(eng, sem, Options{
			Dir:           filepath.Join(t.TempDir(), "shard"),
			Owner:         hashOwner(k, shards),
			FsyncInterval: noSync,
		})
		if err != nil {
			t.Fatal(err)
		}
		sink := st.Sink()
		for _, ev := range events {
			sink(ev)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		skippedTotal += st.Status().Skipped
		merged = append(merged, eng.Alerts()...)
		eng.Close()
		sem.Close()
	}
	// Prefix ownership is disjoint, so sequence numbers never collide
	// across shards and a stable sort by Seq is the exact global order.
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].Seq < merged[j].Seq })
	got, err := json.Marshal(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantAlerts) {
		t.Fatalf("sharded alert union differs from single-process run (%d vs %d bytes)", len(got), len(wantAlerts))
	}
	if want := uint64((shards - 1) * len(events)); skippedTotal != want {
		t.Fatalf("shards skipped %d events in total, want %d", skippedTotal, want)
	}
	if wantStats.Dropped != 0 {
		t.Fatalf("reference run dropped %d events; the identity claim needs a lossless feed", wantStats.Dropped)
	}
}

// TestStoreSnapshotRetention pins the garbage-collection behavior:
// checkpoints prune to KeepSnapshots and fully-covered WAL segments are
// deleted.
func TestStoreSnapshotRetention(t *testing.T) {
	events := churnEvents(t)
	eng, sem := newPair(2)
	defer eng.Close()
	defer sem.Close()
	dir := t.TempDir()
	st, _, err := Open(eng, sem, Options{
		Dir:           dir,
		SegmentBytes:  4096,
		KeepSnapshots: 2,
		FsyncInterval: noSync,
	})
	if err != nil {
		t.Fatal(err)
	}
	sink := st.Sink()
	chunk := len(events) / 4
	for round := 0; round < 3; round++ {
		for _, ev := range events[round*chunk : (round+1)*chunk] {
			sink(ev)
		}
		if err := st.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}
	snaps, err := snapshotPaths(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("retained %d checkpoints, want 2", len(snaps))
	}
	status := st.Status()
	if status.SnapshotSeq != uint64(3*chunk) {
		t.Fatalf("snapshot seq %d, want %d", status.SnapshotSeq, 3*chunk)
	}
	// Everything is checkpointed, so only the active segment survives.
	segs, err := st.wal.segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("WAL kept %d segments after full checkpoint, want 1", len(segs))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreBackgroundLoops smoke-tests the automatic snapshot loop and
// the WAL group-commit together under a live feed.
func TestStoreBackgroundLoops(t *testing.T) {
	events := churnEvents(t)
	eng, sem := newPair(2)
	defer eng.Close()
	defer sem.Close()
	st, _, err := Open(eng, sem, Options{
		Dir:              t.TempDir(),
		FsyncInterval:    2 * time.Millisecond,
		SnapshotInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	sink := st.Sink()
	for _, ev := range events {
		sink(ev)
		time.Sleep(10 * time.Microsecond)
		if st.Status().SnapshotSeq > 0 {
			break
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for st.Status().SnapshotSeq == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background snapshot loop never checkpointed")
		}
		time.Sleep(time.Millisecond)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Status().Err != "" {
		t.Fatalf("store error after background run: %s", st.Status().Err)
	}
}
