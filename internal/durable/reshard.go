package durable

import (
	"bytes"
	"fmt"
	"iter"
	"net/netip"
	"os"
	"path/filepath"
	"sort"
	"time"

	"bgpworms/internal/watch"
)

// Resharding: scatter N per-shard durability directories into M new
// ones by re-evaluating prefix ownership per record, preserving global
// sequence numbers. The fleet changes shape offline — stop the old
// shards, reshard, boot the new layout — without replaying the feed.
//
// Correctness model. A shard's durable state is (checkpoint, WAL tail):
// the checkpoint covers every owned event with seq <= cp.Seq and the
// WAL holds owned records after (and, because TruncateBefore is
// conservative, possibly some at-or-before) that watermark. State is
// prefix-keyed end to end — watch.State stores per-prefix windows and
// per-alert prefixes — so a new owner map re-partitions it exactly:
//
//   - WAL records with seq <= their source's cp.Seq are dropped (the
//     checkpoint already reflects them; keeping them would double-apply
//     on recovery). Survivors route to Owner(prefix).
//   - Checkpoint windows and alerts route to Owner(prefix) verbatim.
//   - The merged checkpoint's Seq is the minimum source cp.Seq: a
//     prefix from a source with a higher watermark has state beyond
//     that minimum, but its WAL records were dropped up to the same
//     higher watermark, so replay-from-minimum applies each surviving
//     record exactly once per prefix.
//
// Events with an invalid prefix are journaled by every shard
// (Store.Ingest owns them unconditionally), so their records appear in
// every source WAL and their state in every source checkpoint. Records
// are deduplicated by sequence during the merge and scattered to every
// destination; invalid-prefix state is taken only from the source with
// the minimum cp.Seq — states from higher-watermark sources cover
// records that other sources' WALs will replay.
//
// Non-splittable residue: semantics state is keyed by AS, not prefix,
// and is dropped (destinations rebuild it from the replayed tail and
// the live feed); global engine counters (Ingested, Dropped,
// AlertsTruncated) and the store's Skipped count are per-shard
// accounting and restart from the splittable evidence — retained
// window totals and alerts. The /alerts surface, which is built purely
// from prefix-keyed state, is preserved byte-for-byte.

// ReshardOptions configures one offline reshard run.
type ReshardOptions struct {
	// SrcDirs are the existing per-shard durability directories. Every
	// source must either have a checkpoint (the normal case — Close
	// writes one on graceful shutdown) or none may have one; mixing is
	// refused because a checkpointed source may have truncated WAL
	// records that only its checkpoint reflects.
	SrcDirs []string
	// DstDirs are the new per-shard directories, one per new shard, in
	// shard-index order. Each must be empty or absent.
	DstDirs []string
	// Owner maps a valid masked prefix to its new shard index in
	// [0, len(DstDirs)). Invalid prefixes are handled internally (they
	// go to every destination, mirroring Store.Ingest).
	Owner func(netip.Prefix) int
	// SegmentBytes is the destination WAL rotation threshold (0 keeps
	// the WAL default).
	SegmentBytes int64
}

// ReshardReport summarizes what Reshard moved.
type ReshardReport struct {
	// Records is the number of unique records scattered into the new
	// WALs (an invalid-prefix record written to every destination
	// counts once).
	Records int
	// Covered counts source WAL records dropped because their source's
	// checkpoint already reflected them.
	Covered int
	// Duplicates counts cross-source duplicate sequences collapsed
	// (invalid-prefix records journaled by every shard).
	Duplicates int
	// CheckpointSeq is the destination checkpoints' watermark (0 when
	// no source had a checkpoint and none was written).
	CheckpointSeq uint64
	// PerDst is the per-destination WAL record count.
	PerDst []int
}

// walRecord is one frame surfaced by iterSrcRecords.
type walRecord struct {
	seq     uint64
	payload []byte
}

// iterSrcRecords streams every record in dir's segments in sequence
// order. The payload slice is only valid until the iterator advances —
// scanSegment reuses its buffer — so consumers must finish with a
// record before pulling the next from the same iterator. A torn tail
// on the final segment is tolerated (a crash artifact, exactly what
// recovery would truncate); anywhere else it is corruption.
func iterSrcRecords(dir string) iter.Seq2[walRecord, error] {
	return func(yield func(walRecord, error) bool) {
		paths, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
		if err != nil {
			yield(walRecord{}, err)
			return
		}
		sort.Strings(paths)
		for i, p := range paths {
			stop := false
			info, err := scanSegment(p, 0, func(seq uint64, payload []byte) error {
				if !yield(walRecord{seq: seq, payload: payload}, nil) {
					stop = true
					return errStopScan
				}
				return nil
			})
			if stop {
				return
			}
			if err != nil {
				yield(walRecord{}, fmt.Errorf("durable: reshard source %s: %w", filepath.Base(p), err))
				return
			}
			if info.tornBytes > 0 && i != len(paths)-1 {
				yield(walRecord{}, fmt.Errorf("durable: reshard source %s has a torn tail but is not the final segment", filepath.Base(p)))
				return
			}
		}
	}
}

var errStopScan = fmt.Errorf("durable: stop scan")

// dstDirUsable refuses a destination that already holds durability
// state — resharding into a live directory would interleave two
// incompatible sequence histories.
func dstDirUsable(dir string) error {
	for _, pat := range []string{"wal-*.seg", "snap-*.ckpt"} {
		m, err := filepath.Glob(filepath.Join(dir, pat))
		if err != nil {
			return err
		}
		if len(m) > 0 {
			return fmt.Errorf("durable: reshard destination %s is not empty (%s)", dir, filepath.Base(m[0]))
		}
	}
	return nil
}

// Reshard scatters the source shards' durable state into the
// destination layout. Sources must be stopped (the tool reads their
// directories directly); destinations are created. On success each
// destination directory opens as a normal Store whose merged alert
// surface is byte-identical to the old fleet's.
func Reshard(opts ReshardOptions) (ReshardReport, error) {
	var rep ReshardReport
	if len(opts.SrcDirs) == 0 || len(opts.DstDirs) == 0 {
		return rep, fmt.Errorf("durable: reshard needs at least one source and one destination")
	}
	if opts.Owner == nil {
		return rep, fmt.Errorf("durable: reshard needs an ownership function")
	}
	seen := map[string]bool{}
	for _, d := range append(append([]string{}, opts.SrcDirs...), opts.DstDirs...) {
		abs, err := filepath.Abs(d)
		if err != nil {
			return rep, err
		}
		if seen[abs] {
			return rep, fmt.Errorf("durable: reshard directory %s appears twice", d)
		}
		seen[abs] = true
	}
	for _, d := range opts.DstDirs {
		if err := dstDirUsable(d); err != nil {
			return rep, err
		}
	}

	// Load source checkpoints and decide the merged watermark.
	cps := make([]*Checkpoint, len(opts.SrcDirs))
	withCp, withoutCp := 0, 0
	for i, d := range opts.SrcDirs {
		cp, err := loadLatestSnapshot(d)
		if err != nil {
			return rep, fmt.Errorf("durable: reshard source %s: %w", d, err)
		}
		cps[i] = cp
		if cp != nil {
			withCp++
		} else {
			withoutCp++
		}
	}
	if withCp > 0 && withoutCp > 0 {
		return rep, fmt.Errorf("durable: reshard sources mix checkpointed and checkpoint-less directories; shut the fleet down gracefully (Close writes a final checkpoint) and retry")
	}
	var minSeq uint64
	minSrc := -1
	if withCp > 0 {
		for i, cp := range cps {
			if minSrc < 0 || cp.Seq < minSeq {
				minSeq, minSrc = cp.Seq, i
			}
		}
		rep.CheckpointSeq = minSeq
	}

	// Open the destination WALs.
	nDst := len(opts.DstDirs)
	rep.PerDst = make([]int, nDst)
	dsts := make([]*WAL, nDst)
	closeDsts := func() {
		for _, w := range dsts {
			if w != nil {
				w.Close()
			}
		}
	}
	for i, d := range opts.DstDirs {
		w, _, err := OpenWAL(d, WALOptions{SegmentBytes: opts.SegmentBytes})
		if err != nil {
			closeDsts()
			return rep, err
		}
		dsts[i] = w
	}

	// Streaming k-way merge by sequence across the source WALs. Each
	// source yields in ascending order; equal sequences across sources
	// are the invalid-prefix records every shard journals — verified
	// byte-identical and written once (to every destination).
	heads := make([]walRecord, len(opts.SrcDirs))
	nexts := make([]func() (walRecord, error, bool), len(opts.SrcDirs))
	alive := make([]bool, len(opts.SrcDirs))
	for i, d := range opts.SrcDirs {
		next, stop := iter.Pull2(iterSrcRecords(d))
		defer stop()
		nexts[i] = next
	}
	advance := func(i int) error {
		for {
			r, err, ok := nexts[i]()
			if err != nil {
				return err
			}
			if !ok {
				alive[i] = false
				return nil
			}
			// Drop records the source's own checkpoint covers:
			// TruncateBefore keeps whole segments, so the tail can retain
			// covered records that recovery would skip but a re-scatter
			// must not re-apply.
			if cps[i] != nil && r.seq <= cps[i].Seq {
				rep.Covered++
				continue
			}
			heads[i], alive[i] = r, true
			return nil
		}
	}
	for i := range nexts {
		if err := advance(i); err != nil {
			closeDsts()
			return rep, err
		}
	}
	var lastSeq uint64
	for {
		lead := -1
		for i, ok := range alive {
			if ok && (lead < 0 || heads[i].seq < heads[lead].seq) {
				lead = i
			}
		}
		if lead < 0 {
			break
		}
		rec := heads[lead]
		if rec.seq == lastSeq && rep.Records > 0 {
			closeDsts()
			return rep, fmt.Errorf("durable: reshard sequence %d repeats after being scattered", rec.seq)
		}
		// Collapse duplicates before advancing anything: every head's
		// payload is stable until its own iterator moves.
		dups := []int{lead}
		for i, ok := range alive {
			if ok && i != lead && heads[i].seq == rec.seq {
				if !bytes.Equal(heads[i].payload, rec.payload) {
					closeDsts()
					return rep, fmt.Errorf("durable: reshard sequence %d differs between %s and %s", rec.seq, opts.SrcDirs[lead], opts.SrcDirs[i])
				}
				dups = append(dups, i)
				rep.Duplicates++
			}
		}
		ev, err := DecodeEvent(rec.payload)
		if err != nil {
			closeDsts()
			return rep, fmt.Errorf("durable: reshard record %d: %w", rec.seq, err)
		}
		if ev.Seq != rec.seq {
			closeDsts()
			return rep, fmt.Errorf("durable: reshard frame %d carries event seq %d", rec.seq, ev.Seq)
		}
		targets := []int{}
		if ev.Prefix.IsValid() {
			o := opts.Owner(ev.Prefix.Masked())
			if o < 0 || o >= nDst {
				closeDsts()
				return rep, fmt.Errorf("durable: reshard owner(%s) = %d outside [0,%d)", ev.Prefix, o, nDst)
			}
			targets = append(targets, o)
		} else {
			for i := 0; i < nDst; i++ {
				targets = append(targets, i)
			}
		}
		for _, t := range targets {
			if err := dsts[t].Append(rec.seq, rec.payload); err != nil {
				closeDsts()
				return rep, err
			}
			rep.PerDst[t]++
		}
		rep.Records++
		lastSeq = rec.seq
		for _, i := range dups {
			if err := advance(i); err != nil {
				closeDsts()
				return rep, err
			}
		}
	}
	for i, w := range dsts {
		if err := w.Close(); err != nil {
			return rep, err
		}
		dsts[i] = nil
	}

	// Split the checkpoints. Each destination gets the union of the
	// per-prefix state it now owns, under the minimum source watermark.
	if withCp > 0 {
		savedAt := time.Now().UTC()
		for dst, dir := range opts.DstDirs {
			st := &watch.State{Seq: minSeq, ByDetector: map[string]uint64{}}
			for src, cp := range cps {
				if cp.Watch == nil {
					continue
				}
				for _, w := range cp.Watch.Prefixes {
					if w.Prefix.IsValid() {
						if opts.Owner(w.Prefix.Masked()) == dst {
							st.Prefixes = append(st.Prefixes, w)
						}
					} else if src == minSrc {
						st.Prefixes = append(st.Prefixes, w)
					}
				}
				for _, a := range cp.Watch.Alerts {
					if a.Prefix.IsValid() {
						if opts.Owner(a.Prefix.Masked()) == dst {
							st.Alerts = append(st.Alerts, a)
						}
					} else if src == minSrc {
						st.Alerts = append(st.Alerts, a)
					}
				}
			}
			sort.Slice(st.Prefixes, func(i, j int) bool {
				a, b := st.Prefixes[i].Prefix, st.Prefixes[j].Prefix
				if c := a.Addr().Compare(b.Addr()); c != 0 {
					return c < 0
				}
				return a.Bits() < b.Bits()
			})
			sort.SliceStable(st.Alerts, func(i, j int) bool { return st.Alerts[i].Seq < st.Alerts[j].Seq })
			for _, w := range st.Prefixes {
				st.Ingested += w.Total
			}
			st.Processed = st.Ingested
			st.AlertsRaised = uint64(len(st.Alerts))
			for _, a := range st.Alerts {
				st.ByDetector[a.Detector]++
			}
			if len(st.ByDetector) == 0 {
				st.ByDetector = nil
			}
			cp := &Checkpoint{Seq: minSeq, SavedAt: savedAt, Watch: st}
			if _, err := writeSnapshot(dir, cp); err != nil {
				return rep, err
			}
		}
	}
	return rep, nil
}

// ValidateDirs is the pre-flight used by cmd/walreshard: every source
// must exist (a typo must not silently reshard a partial fleet).
func ValidateDirs(srcs []string) error {
	for _, d := range srcs {
		st, err := os.Stat(d)
		if err != nil {
			return fmt.Errorf("durable: reshard source %s: %w", d, err)
		}
		if !st.IsDir() {
			return fmt.Errorf("durable: reshard source %s is not a directory", d)
		}
	}
	return nil
}
