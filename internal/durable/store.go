package durable

import (
	"fmt"
	"net/netip"
	"os"
	"sync"
	"time"

	"bgpworms/internal/obs"
	"bgpworms/internal/semantics"
	"bgpworms/internal/watch"
)

// Options configures a Store. Dir is required; everything else has a
// default.
type Options struct {
	// Dir is the durability directory: WAL segments and checkpoint
	// files live side by side in it.
	Dir string
	// SegmentBytes / FsyncInterval pass through to the WAL.
	SegmentBytes  int64
	FsyncInterval time.Duration
	// SnapshotInterval is the automatic checkpoint cadence (0 disables
	// the background loop; Snapshot can still be called directly, and
	// Close always writes a final checkpoint).
	SnapshotInterval time.Duration
	// KeepSnapshots is how many checkpoint files to retain (default 2:
	// the newest plus one fallback against a torn write).
	KeepSnapshots int
	// Owner, when non-nil, is the sharded daemon's ownership filter:
	// events whose prefix it rejects still consume a global sequence
	// number (so every shard assigns identical sequences) but are
	// neither journaled nor ingested. Invalid prefixes are always owned.
	Owner func(netip.Prefix) bool
	// ResumeSkip declares the feed re-readable: after a restart the
	// source replays from its beginning, and the store skips events
	// until the stream passes the recovery watermark. Leave false for
	// live feeds, which resume mid-stream — their events continue the
	// recovered numbering instead.
	ResumeSkip bool
	// Metrics, when non-nil, exposes the store and its WAL: fsync
	// latency, wal_bytes, snapshot_age_seconds, sequence watermarks.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.KeepSnapshots <= 0 {
		o.KeepSnapshots = 2
	}
	return o
}

// Recovery reports what Open rebuilt.
type Recovery struct {
	// CheckpointSeq is the restored snapshot's watermark (0 if none).
	CheckpointSeq uint64
	// Replayed counts WAL records re-ingested after the checkpoint.
	Replayed int
	// Seq is the global watermark after recovery: snapshot coverage
	// plus the replayed WAL tail.
	Seq uint64
	// TornBytes were truncated off the final WAL segment (a write the
	// crash interrupted).
	TornBytes int64
}

// Store is the durability front door: it assigns global sequence
// numbers, journals every owned event to the WAL before handing it to
// the watch engine, and checkpoints engine state so recovery is
// restore + replay-the-tail. One Store owns one engine pair.
//
// Feed everything through Ingest (or the Sink adapter) from however
// many goroutines; the store serializes, which is also what keeps the
// WAL order identical to the engine's ingest order.
type Store struct {
	opts Options
	eng  *watch.Engine
	sem  *semantics.Engine
	wal  *WAL

	mu          sync.Mutex
	pos         uint64 // global position of the last event seen from the feed
	recovered   uint64 // recovery watermark: everything <= is already applied
	skipped     uint64 // events consumed but not owned (sharded mode)
	resumeSkips uint64 // events skipped while a re-read feed caught up
	snapSeq     uint64
	snapAt      time.Time
	encBuf      []byte
	err         error
	closed      bool

	stopSnap  chan struct{}
	snapDone  chan struct{}
	snapshots *obs.Counter
	collector *obs.CollectorHandle
}

// Open recovers (or initializes) the durability directory and binds it
// to the engines: the newest valid checkpoint is restored into eng and
// sem (both must be fresh — never ingested), then the WAL tail beyond
// it is replayed through eng.Ingest with original sequence numbers.
// sem may be nil; when present it is restored here but fed via the
// watch engine's Semantics mirroring, not by the store.
func Open(eng *watch.Engine, sem *semantics.Engine, opts Options) (*Store, Recovery, error) {
	opts = opts.withDefaults()
	var rec Recovery
	if opts.Dir == "" {
		return nil, rec, fmt.Errorf("durable: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, rec, err
	}
	cp, err := loadLatestSnapshot(opts.Dir)
	if err != nil {
		return nil, rec, err
	}
	s := &Store{
		opts: opts, eng: eng, sem: sem,
		stopSnap: make(chan struct{}), snapDone: make(chan struct{}),
	}
	if cp != nil {
		if err := eng.RestoreState(cp.Watch); err != nil {
			return nil, rec, err
		}
		if sem != nil {
			if err := sem.RestoreState(cp.Semantics); err != nil {
				return nil, rec, err
			}
		}
		rec.CheckpointSeq = cp.Seq
		s.skipped = cp.Skipped
		s.snapSeq, s.snapAt = cp.Seq, cp.SavedAt
	}
	wal, wrec, err := OpenWAL(opts.Dir, WALOptions{
		SegmentBytes:  opts.SegmentBytes,
		FsyncInterval: opts.FsyncInterval,
		Metrics:       opts.Metrics,
	})
	if err != nil {
		return nil, rec, err
	}
	rec.TornBytes = wrec.TornBytes
	s.wal = wal
	if err := wal.Replay(rec.CheckpointSeq+1, func(seq uint64, payload []byte) error {
		ev, err := DecodeEvent(payload)
		if err != nil {
			return err
		}
		if ev.Seq != seq {
			return fmt.Errorf("durable: frame seq %d carries event seq %d", seq, ev.Seq)
		}
		eng.Ingest(ev)
		rec.Replayed++
		return nil
	}); err != nil {
		wal.Close()
		return nil, rec, err
	}
	eng.Flush()
	rec.Seq = max(rec.CheckpointSeq, wrec.LastSeq)
	s.recovered = rec.Seq
	if !opts.ResumeSkip {
		s.pos = rec.Seq
	}
	if opts.Metrics != nil {
		s.bindMetrics(opts.Metrics)
	}
	go s.runSnapshots()
	return s, rec, nil
}

func (s *Store) bindMetrics(reg *obs.Registry) {
	s.snapshots = reg.Counter("durable_snapshots_total", "checkpoints written")
	s.collector = reg.RegisterCollector(func(emit func(obs.Sample)) {
		s.mu.Lock()
		seq, skipped := s.watermarkLocked(), s.skipped
		snapSeq, snapAt := s.snapSeq, s.snapAt
		s.mu.Unlock()
		gauge := func(name, help string, v float64) {
			emit(obs.Sample{Name: name, Help: help, Type: obs.TypeGauge, Value: v})
		}
		gauge("durable_seq", "global event sequence watermark", float64(seq))
		gauge("durable_skipped_events", "events consumed but not owned by this shard", float64(skipped))
		gauge("snapshot_seq", "sequence covered by the newest checkpoint", float64(snapSeq))
		age := -1.0 // no checkpoint yet
		if !snapAt.IsZero() {
			age = time.Since(snapAt).Seconds()
		}
		gauge("snapshot_age_seconds", "seconds since the newest checkpoint was written", age)
	})
}

// watermarkLocked is the global sequence covered so far. While a
// re-read feed is still catching up (ResumeSkip), the recovery
// watermark stays authoritative.
func (s *Store) watermarkLocked() uint64 { return max(s.pos, s.recovered) }

// Ingest journals one event and forwards it to the watch engine. The
// store assigns the global sequence number; any Seq already on the
// event is overwritten. Events a sharded store does not own consume a
// sequence but go no further.
func (s *Store) Ingest(ev watch.Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("durable: ingest into closed store")
	}
	s.pos++
	seq := s.pos
	if s.opts.ResumeSkip && seq <= s.recovered {
		s.resumeSkips++
		return nil
	}
	ev.Seq = seq
	if s.opts.Owner != nil && ev.Prefix.IsValid() && !s.opts.Owner(ev.Prefix.Masked()) {
		s.skipped++
		return nil
	}
	s.encBuf = EncodeEvent(s.encBuf[:0], &ev)
	if err := s.wal.Append(seq, s.encBuf); err != nil {
		s.err = err
		return err
	}
	// Journal first, then apply: holding mu across both keeps the WAL
	// order identical to the engine's ingest order.
	s.eng.Ingest(ev)
	return nil
}

// Sink adapts Ingest to the plain sink shape the feed adapters take
// (watch.EventTap, watch.StreamMRT). The first error sticks and is
// reported by Err; later events are still journaled when possible.
func (s *Store) Sink() func(watch.Event) {
	return func(ev watch.Event) {
		if err := s.Ingest(ev); err != nil {
			s.mu.Lock()
			if s.err == nil {
				s.err = err
			}
			s.mu.Unlock()
		}
	}
}

// Err reports the first ingest error swallowed by Sink (nil when
// healthy).
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Snapshot writes a checkpoint now: ingest is gated, both engines are
// flushed and exported, the checkpoint lands atomically, and WAL
// segments it fully covers are deleted.
func (s *Store) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("durable: snapshot of closed store")
	}
	return s.snapshotLocked()
}

func (s *Store) snapshotLocked() error {
	// Make the covered tail durable before claiming coverage.
	if err := s.wal.Sync(); err != nil {
		return err
	}
	cp := &Checkpoint{
		Seq:     s.watermarkLocked(),
		Skipped: s.skipped,
		SavedAt: time.Now().UTC(),
		Watch:   s.eng.ExportState(),
	}
	if s.sem != nil {
		cp.Semantics = s.sem.ExportState()
	}
	if _, err := writeSnapshot(s.opts.Dir, cp); err != nil {
		return err
	}
	s.snapSeq, s.snapAt = cp.Seq, cp.SavedAt
	if s.snapshots != nil {
		s.snapshots.Inc()
	}
	if err := s.wal.TruncateBefore(cp.Seq + 1); err != nil {
		return err
	}
	return pruneSnapshots(s.opts.Dir, s.opts.KeepSnapshots)
}

// runSnapshots is the background checkpoint loop.
func (s *Store) runSnapshots() {
	defer close(s.snapDone)
	if s.opts.SnapshotInterval <= 0 {
		<-s.stopSnap
		return
	}
	tick := time.NewTicker(s.opts.SnapshotInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.stopSnap:
			return
		case <-tick.C:
			s.mu.Lock()
			if !s.closed && s.watermarkLocked() > s.snapSeq {
				if err := s.snapshotLocked(); err != nil && s.err == nil {
					s.err = err
				}
			}
			s.mu.Unlock()
		}
	}
}

// Status is the store's operational snapshot, rendered into /stats.
type Status struct {
	// Seq is the global sequence watermark.
	Seq uint64 `json:"seq"`
	// Recovered is the watermark recovery rebuilt at startup.
	Recovered uint64 `json:"recovered"`
	// Skipped counts events consumed but not owned (sharded mode).
	Skipped uint64 `json:"skipped,omitempty"`
	// WALBytes / WALDurableSeq describe the live log.
	WALBytes      int64  `json:"wal_bytes"`
	WALDurableSeq uint64 `json:"wal_durable_seq"`
	// SnapshotSeq / SnapshotAt describe the newest checkpoint (zero
	// values when none has been written yet).
	SnapshotSeq uint64    `json:"snapshot_seq"`
	SnapshotAt  time.Time `json:"snapshot_at,omitempty"`
	// Err is the first sticky ingest/snapshot error, if any.
	Err string `json:"error,omitempty"`
}

// Status reports the store's current watermarks. Safe concurrently
// with ingest.
func (s *Store) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{
		Seq:           s.watermarkLocked(),
		Recovered:     s.recovered,
		Skipped:       s.skipped,
		WALBytes:      s.wal.SizeBytes(),
		WALDurableSeq: s.wal.DurableSeq(),
		SnapshotSeq:   s.snapSeq,
		SnapshotAt:    s.snapAt,
	}
	if s.err != nil {
		st.Err = s.err.Error()
	}
	return st
}

// Close writes a final checkpoint and closes the WAL. The engines are
// left open — they belong to the caller.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.snapshotLocked()
	s.mu.Unlock()
	close(s.stopSnap)
	<-s.snapDone
	if werr := s.wal.Close(); err == nil {
		err = werr
	}
	s.collector.Unregister()
	return err
}

// crash simulates a kill -9 for tests: no final checkpoint, no flush —
// only what the group commits already pushed to the kernel survives.
func (s *Store) crash() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	close(s.stopSnap)
	<-s.snapDone
	s.wal.crash()
	s.collector.Unregister()
}
