package durable

import (
	"bytes"
	"fmt"
	"net/netip"
	"testing"

	"bgpworms/internal/bgp"
	"bgpworms/internal/watch"
)

// benchEvents synthesizes a uniform announce feed (distinct prefixes,
// paths, and communities) sized for WAL benchmarks — the churn fixture
// is too small to show replay scaling.
func benchEvents(n int) []watch.Event {
	events := make([]watch.Event, n)
	for i := range events {
		idx := i % 4096
		peer := uint32(100 + i%7)
		origin := uint32(10000 + idx)
		events[i] = watch.Event{
			Source:      "bench",
			PeerAS:      peer,
			Prefix:      netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(idx >> 8), byte(idx), 0}), 24),
			ASPath:      []uint32{peer, 1000 + uint32(i%29), origin},
			Communities: bgp.NewCommunitySet(bgp.C(uint16(origin), uint16(i%1024))),
		}
	}
	return events
}

// BenchmarkWALAppend measures raw journal throughput with group-commit
// fsync disabled: the encode-frame-buffer cost every durable ingest
// pays before the engine sees the event.
func BenchmarkWALAppend(b *testing.B) {
	w, _, err := OpenWAL(b.TempDir(), WALOptions{FsyncInterval: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	payload := bytes.Repeat([]byte("x"), 128)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Append(uint64(i+1), payload); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := w.Sync(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStoreIngest measures the durable ingest path end to end —
// sequence assignment, event encoding, WAL append, engine ingest —
// against which BenchmarkWatchIngest (the bare engine) bounds the
// durability tax.
func BenchmarkStoreIngest(b *testing.B) {
	events := benchEvents(4096)
	eng, sem := newPair(0)
	defer eng.Close()
	defer sem.Close()
	store, _, err := Open(eng, sem, Options{Dir: b.TempDir(), FsyncInterval: -1})
	if err != nil {
		b.Fatal(err)
	}
	sink := store.Sink()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink(events[i%len(events)])
	}
	b.StopTimer()
	if err := store.Err(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "updates/sec")
	store.crash()
}

// BenchmarkRecovery measures cold-start recovery — open, decode, and
// replay the whole WAL into fresh engines — as a function of WAL size,
// the number behind the "recovery time vs WAL size" row in
// BENCHMARKS.md and the reason snapshots bound the tail.
func BenchmarkRecovery(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 50_000} {
		b.Run(fmt.Sprintf("records=%d", n), func(b *testing.B) {
			dir := b.TempDir()
			{
				eng, sem := newPair(0)
				store, _, err := Open(eng, sem, Options{Dir: dir, FsyncInterval: -1})
				if err != nil {
					b.Fatal(err)
				}
				sink := store.Sink()
				for _, ev := range benchEvents(n) {
					sink(ev)
				}
				if err := store.Err(); err != nil {
					b.Fatal(err)
				}
				if err := store.wal.Sync(); err != nil {
					b.Fatal(err)
				}
				// crash, not Close: a final checkpoint would truncate the
				// WAL this benchmark exists to replay.
				store.crash()
				eng.Close()
				sem.Close()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				eng, sem := newPair(0)
				b.StartTimer()
				store, rec, err := Open(eng, sem, Options{Dir: dir, FsyncInterval: -1})
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if rec.Replayed != n || rec.Seq != uint64(n) {
					b.Fatalf("recovery replayed %d to seq %d, want %d", rec.Replayed, rec.Seq, n)
				}
				store.crash()
				eng.Close()
				sem.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "replayed/sec")
		})
	}
}
