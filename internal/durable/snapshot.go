package durable

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"time"

	"bgpworms/internal/semantics"
	"bgpworms/internal/watch"
)

// Checkpoint files: magic "WWSNAP01" (8 bytes) + payload CRC32-IEEE
// (u32 BE) + JSON payload, written to a temp file and renamed into
// place so a crash mid-write leaves the previous checkpoint intact.
// File names carry the covered sequence (snap-%020d.ckpt) so recovery
// picks the newest without parsing, and WAL truncation knows what a
// checkpoint covers.

const snapMagic = "WWSNAP01"

// Checkpoint is the durable snapshot payload: both engines' exported
// state plus the store's global sequence watermark.
type Checkpoint struct {
	// Seq is the global event sequence covered: every event with seq <=
	// Seq is reflected in the states below, so recovery replays the WAL
	// strictly after it.
	Seq uint64 `json:"seq"`
	// Skipped counts events the store consumed but did not own (the
	// sharded daemon's non-owned feed share); recovery needs it only
	// for accounting.
	Skipped uint64 `json:"skipped,omitempty"`
	// SavedAt is the wall-clock write time (snapshot_age_seconds).
	SavedAt   time.Time        `json:"saved_at"`
	Watch     *watch.State     `json:"watch,omitempty"`
	Semantics *semantics.State `json:"semantics,omitempty"`
}

func snapName(seq uint64) string { return fmt.Sprintf("snap-%020d.ckpt", seq) }

// writeSnapshot persists cp atomically into dir and returns the path.
func writeSnapshot(dir string, cp *Checkpoint) (string, error) {
	payload, err := json.Marshal(cp)
	if err != nil {
		return "", err
	}
	buf := make([]byte, 0, len(snapMagic)+4+len(payload))
	buf = append(buf, snapMagic...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(payload, crcTable))
	buf = append(buf, payload...)

	tmp, err := os.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return "", err
	}
	tmpName := tmp.Name()
	cleanup := func() { os.Remove(tmpName) }
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		cleanup()
		return "", err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		cleanup()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return "", err
	}
	final := filepath.Join(dir, snapName(cp.Seq))
	if err := os.Rename(tmpName, final); err != nil {
		cleanup()
		return "", err
	}
	// fsync the directory so the rename itself is durable.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return final, nil
}

// readSnapshot loads and validates one checkpoint file.
func readSnapshot(path string) (*Checkpoint, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < len(snapMagic)+4 {
		return nil, fmt.Errorf("durable: snapshot %s truncated (%d bytes)", filepath.Base(path), len(raw))
	}
	if string(raw[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("durable: snapshot %s bad magic", filepath.Base(path))
	}
	sum := binary.BigEndian.Uint32(raw[len(snapMagic):])
	payload := raw[len(snapMagic)+4:]
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, fmt.Errorf("durable: snapshot %s checksum mismatch", filepath.Base(path))
	}
	var cp Checkpoint
	if err := json.Unmarshal(payload, &cp); err != nil {
		return nil, fmt.Errorf("durable: snapshot %s: %w", filepath.Base(path), err)
	}
	return &cp, nil
}

// snapshotPaths lists checkpoint files, oldest first.
func snapshotPaths(dir string) ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "snap-*.ckpt"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// loadLatestSnapshot returns the newest checkpoint that validates,
// walking backwards past corrupt ones (a torn rename can only affect
// the newest; older files are immutable). Returns nil when none exist.
func loadLatestSnapshot(dir string) (*Checkpoint, error) {
	paths, err := snapshotPaths(dir)
	if err != nil {
		return nil, err
	}
	var lastErr error
	for i := len(paths) - 1; i >= 0; i-- {
		cp, err := readSnapshot(paths[i])
		if err == nil {
			return cp, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// pruneSnapshots deletes all but the newest keep checkpoints.
func pruneSnapshots(dir string, keep int) error {
	if keep < 1 {
		keep = 1
	}
	paths, err := snapshotPaths(dir)
	if err != nil {
		return err
	}
	for _, p := range paths[:max(0, len(paths)-keep)] {
		if err := os.Remove(p); err != nil {
			return err
		}
	}
	return nil
}
