// Package atlas models a RIPE-Atlas-style active measurement platform over
// the simulated data plane: a fixed, randomly drawn set of vantage points
// that can ping and traceroute targets, with per-vantage-point result
// diffing — the §7.6 protocol ("issue Atlas ICMP probes from 200 vantage
// points toward p ... re-issue the same probes ... compare responses on a
// per-vantage point basis").
package atlas

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"

	"bgpworms/internal/simnet"
	"bgpworms/internal/topo"
)

// VantagePoint is one measurement probe, hosted inside an AS.
type VantagePoint struct {
	ID int
	AS topo.ASN
}

// Platform is a set of vantage points bound to a network.
type Platform struct {
	net *simnet.Network
	vps []VantagePoint
}

// New draws count vantage points from candidates using a deterministic
// seed; the set stays "constant across all measurements" as in §7.6. When
// count exceeds the candidate pool, every candidate hosts one probe.
func New(n *simnet.Network, candidates []topo.ASN, count int, seed int64) *Platform {
	rng := rand.New(rand.NewSource(seed))
	pool := append([]topo.ASN(nil), candidates...)
	sort.Slice(pool, func(i, j int) bool { return pool[i] < pool[j] })
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if count > len(pool) {
		count = len(pool)
	}
	p := &Platform{net: n}
	for i := 0; i < count; i++ {
		p.vps = append(p.vps, VantagePoint{ID: i, AS: pool[i]})
	}
	return p
}

// VPs returns the vantage points in ID order.
func (p *Platform) VPs() []VantagePoint { return p.vps }

// PingResult is one measurement batch: per-VP reachability of a target.
type PingResult struct {
	Target    netip.Addr
	Reachable map[int]bool // VP ID -> responded
}

// PingAll probes target from every vantage point.
func (p *Platform) PingAll(target netip.Addr) PingResult {
	res := PingResult{Target: target, Reachable: make(map[int]bool, len(p.vps))}
	for _, vp := range p.vps {
		res.Reachable[vp.ID] = p.net.Ping(vp.AS, target)
	}
	return res
}

// ResponsiveCount returns how many VPs reached the target.
func (r PingResult) ResponsiveCount() int {
	n := 0
	for _, ok := range r.Reachable {
		if ok {
			n++
		}
	}
	return n
}

// LostVPs returns IDs responsive in before but unresponsive in after — the
// signature of a blackhole community taking effect.
func LostVPs(before, after PingResult) []int {
	var out []int
	for id, ok := range before.Reachable {
		if ok && !after.Reachable[id] {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// TracerouteAll issues AS-level traceroutes from every VP.
func (p *Platform) TracerouteAll(target netip.Addr) []simnet.Trace {
	out := make([]simnet.Trace, 0, len(p.vps))
	for _, vp := range p.vps {
		out = append(out, p.net.Forward(vp.AS, target))
	}
	return out
}

// VP returns the vantage point with the given ID.
func (p *Platform) VP(id int) (VantagePoint, bool) {
	for _, vp := range p.vps {
		if vp.ID == id {
			return vp, true
		}
	}
	return VantagePoint{}, false
}

// String describes the platform.
func (p *Platform) String() string {
	return fmt.Sprintf("atlas: %d vantage points", len(p.vps))
}
