package atlas

import (
	"testing"

	"bgpworms/internal/bgp"
	"bgpworms/internal/netx"
	"bgpworms/internal/policy"
	"bgpworms/internal/router"
	"bgpworms/internal/simnet"
	"bgpworms/internal/topo"
)

var pfx = netx.MustPrefix("203.0.113.0/24")

// chainNet: 1 < 2 < 3 > 4 > 5 and 3 offers RTBH via 3:666.
func chainNet(t *testing.T) *simnet.Network {
	t.Helper()
	g := topo.NewGraph()
	for _, e := range [][2]topo.ASN{{1, 2}, {2, 3}, {4, 3}, {5, 4}} {
		if err := g.AddCustomerProvider(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return simnet.New(g, func(asn topo.ASN) router.Config {
		cfg := simnet.DefaultConfig(asn)
		if asn == 3 {
			cfg.Catalog = policy.NewCatalog(3).Add(policy.Service{Community: bgp.C(3, 666), Kind: policy.SvcBlackhole})
			cfg.BlackholeMinLen = 24
		}
		return cfg
	})
}

func TestVantagePointSelectionDeterministic(t *testing.T) {
	n := chainNet(t)
	cands := []topo.ASN{1, 2, 3, 4, 5}
	p1 := New(n, cands, 3, 42)
	p2 := New(n, cands, 3, 42)
	if len(p1.VPs()) != 3 {
		t.Fatalf("vps=%d", len(p1.VPs()))
	}
	for i := range p1.VPs() {
		if p1.VPs()[i] != p2.VPs()[i] {
			t.Fatal("selection not deterministic")
		}
	}
	p3 := New(n, cands, 3, 43)
	same := true
	for i := range p1.VPs() {
		if p1.VPs()[i] != p3.VPs()[i] {
			same = false
		}
	}
	if same {
		t.Log("different seed produced same draw (possible but unlikely)")
	}
	// Count larger than pool.
	p4 := New(n, cands, 100, 1)
	if len(p4.VPs()) != 5 {
		t.Fatalf("overdraw=%d", len(p4.VPs()))
	}
	if p4.String() == "" {
		t.Fatal("String empty")
	}
}

func TestPingBeforeAfterBlackhole(t *testing.T) {
	n := chainNet(t)
	platform := New(n, []topo.ASN{4, 5}, 2, 7)
	dst := netx.NthAddr(pfx, 1)

	// Step 1: announce plain.
	if _, err := n.Announce(1, pfx); err != nil {
		t.Fatal(err)
	}
	before := platform.PingAll(dst)
	if before.ResponsiveCount() != 2 {
		t.Fatalf("before=%d", before.ResponsiveCount())
	}

	// Step 3: re-announce tagged with AS3's blackhole community.
	n.Withdraw(1, pfx)
	if _, err := n.Announce(1, pfx, bgp.C(3, 666)); err != nil {
		t.Fatal(err)
	}
	after := platform.PingAll(dst)
	if after.ResponsiveCount() != 0 {
		t.Fatalf("after=%d (traffic from 4,5 must die at AS3)", after.ResponsiveCount())
	}
	lost := LostVPs(before, after)
	if len(lost) != 2 {
		t.Fatalf("lost=%v", lost)
	}
}

func TestTracerouteAll(t *testing.T) {
	n := chainNet(t)
	platform := New(n, []topo.ASN{4, 5}, 2, 7)
	n.Announce(1, pfx)
	traces := platform.TracerouteAll(netx.NthAddr(pfx, 1))
	if len(traces) != 2 {
		t.Fatalf("traces=%d", len(traces))
	}
	for _, tr := range traces {
		if tr.Outcome != simnet.Delivered || tr.FinalAS != 1 {
			t.Fatalf("trace=%s", tr)
		}
	}
}

func TestVPAccessor(t *testing.T) {
	n := chainNet(t)
	platform := New(n, []topo.ASN{1, 2}, 2, 1)
	if _, ok := platform.VP(0); !ok {
		t.Fatal("VP 0 missing")
	}
	if _, ok := platform.VP(99); ok {
		t.Fatal("VP 99 should be absent")
	}
}

func TestLostVPsEmptyWhenNoChange(t *testing.T) {
	n := chainNet(t)
	platform := New(n, []topo.ASN{4, 5}, 2, 7)
	n.Announce(1, pfx)
	dst := netx.NthAddr(pfx, 1)
	a := platform.PingAll(dst)
	b := platform.PingAll(dst)
	if len(LostVPs(a, b)) != 0 {
		t.Fatal("no VPs should be lost")
	}
}
