package gen

import (
	"bgpworms/internal/bgp"
	"bgpworms/internal/semantics"
)

// This file exports the world's community dictionary ground truth: the
// complete set of communities the generated policies define or attach,
// each with its true usage class. The semantics engine infers
// dictionaries from the wire alone; scoring that inference needs the
// oracle only the generator has.

// TruthDict assembles the ground-truth dictionary from the world's
// current state: every catalog service (including services attack labs
// added after Build), every network-attached informational tag
// (ingress, location, bundling), every origin tag, and the well-known
// values. Call it after the runs whose policies should count;
// Registry.Dict is the snapshot Build itself seals.
func (w *Internet) TruthDict() semantics.Truth {
	t := make(semantics.Truth)
	for _, cat := range w.Catalogs {
		for _, svc := range cat.Services {
			t.Add(svc.Community, semantics.ClassOfService(svc.Kind))
		}
	}
	// IXP route servers publish their own announce/suppress scheme
	// outside the per-AS catalogs.
	for _, rs := range w.RouteServers {
		for _, svc := range rs.Router().Config().Catalog.Services {
			t.Add(svc.Community, semantics.ClassOfService(svc.Kind))
		}
	}
	for c, cl := range w.tagTruth {
		t.Add(c, cl)
	}
	for _, tags := range w.OriginTags {
		for _, c := range tags {
			t.Add(c, semantics.ClassInformational)
		}
	}
	for _, c := range []bgp.Community{
		bgp.CommunityNoExport, bgp.CommunityNoAdvertise,
		bgp.CommunityNoExportSubconfed, bgp.CommunityNoPeer,
		bgp.CommunityBlackhole,
	} {
		t.Add(c, semantics.ClassWellKnown)
	}
	return t
}
